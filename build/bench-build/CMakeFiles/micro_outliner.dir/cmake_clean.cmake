file(REMOVE_RECURSE
  "../bench/micro_outliner"
  "../bench/micro_outliner.pdb"
  "CMakeFiles/micro_outliner.dir/micro_outliner.cpp.o"
  "CMakeFiles/micro_outliner.dir/micro_outliner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_outliner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
