# Empty compiler generated dependencies file for micro_outliner.
# This may be replaced when dependencies are built.
