file(REMOVE_RECURSE
  "../bench/fig08_length_histogram"
  "../bench/fig08_length_histogram.pdb"
  "CMakeFiles/fig08_length_histogram.dir/fig08_length_histogram.cpp.o"
  "CMakeFiles/fig08_length_histogram.dir/fig08_length_histogram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_length_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
