# Empty dependencies file for fig08_length_histogram.
# This may be replaced when dependencies are built.
