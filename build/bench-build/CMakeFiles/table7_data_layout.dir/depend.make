# Empty dependencies file for table7_data_layout.
# This may be replaced when dependencies are built.
