file(REMOVE_RECURSE
  "../bench/table7_data_layout"
  "../bench/table7_data_layout.pdb"
  "CMakeFiles/table7_data_layout.dir/table7_data_layout.cpp.o"
  "CMakeFiles/table7_data_layout.dir/table7_data_layout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_data_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
