# Empty dependencies file for fig07_cumulative_savings.
# This may be replaced when dependencies are built.
