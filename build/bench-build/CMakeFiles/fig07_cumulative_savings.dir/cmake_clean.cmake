file(REMOVE_RECURSE
  "../bench/fig07_cumulative_savings"
  "../bench/fig07_cumulative_savings.pdb"
  "CMakeFiles/fig07_cumulative_savings.dir/fig07_cumulative_savings.cpp.o"
  "CMakeFiles/fig07_cumulative_savings.dir/fig07_cumulative_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cumulative_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
