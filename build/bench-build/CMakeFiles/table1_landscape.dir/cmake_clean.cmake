file(REMOVE_RECURSE
  "../bench/table1_landscape"
  "../bench/table1_landscape.pdb"
  "CMakeFiles/table1_landscape.dir/table1_landscape.cpp.o"
  "CMakeFiles/table1_landscape.dir/table1_landscape.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
