# Empty dependencies file for fig13_span_heatmap.
# This may be replaced when dependencies are built.
