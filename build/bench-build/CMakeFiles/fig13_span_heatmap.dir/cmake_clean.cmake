file(REMOVE_RECURSE
  "../bench/fig13_span_heatmap"
  "../bench/fig13_span_heatmap.pdb"
  "CMakeFiles/fig13_span_heatmap.dir/fig13_span_heatmap.cpp.o"
  "CMakeFiles/fig13_span_heatmap.dir/fig13_span_heatmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_span_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
