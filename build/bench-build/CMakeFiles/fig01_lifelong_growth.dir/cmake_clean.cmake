file(REMOVE_RECURSE
  "../bench/fig01_lifelong_growth"
  "../bench/fig01_lifelong_growth.pdb"
  "CMakeFiles/fig01_lifelong_growth.dir/fig01_lifelong_growth.cpp.o"
  "CMakeFiles/fig01_lifelong_growth.dir/fig01_lifelong_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_lifelong_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
