# Empty compiler generated dependencies file for fig06_fractal_lengths.
# This may be replaced when dependencies are built.
