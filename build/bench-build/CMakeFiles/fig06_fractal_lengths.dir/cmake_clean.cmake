file(REMOVE_RECURSE
  "../bench/fig06_fractal_lengths"
  "../bench/fig06_fractal_lengths.pdb"
  "CMakeFiles/fig06_fractal_lengths.dir/fig06_fractal_lengths.cpp.o"
  "CMakeFiles/fig06_fractal_lengths.dir/fig06_fractal_lengths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_fractal_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
