file(REMOVE_RECURSE
  "../bench/fig05_power_law"
  "../bench/fig05_power_law.pdb"
  "CMakeFiles/fig05_power_law.dir/fig05_power_law.cpp.o"
  "CMakeFiles/fig05_power_law.dir/fig05_power_law.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_power_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
