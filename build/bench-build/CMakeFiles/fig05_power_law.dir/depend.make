# Empty dependencies file for fig05_power_law.
# This may be replaced when dependencies are built.
