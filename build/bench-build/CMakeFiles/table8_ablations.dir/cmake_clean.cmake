file(REMOVE_RECURSE
  "../bench/table8_ablations"
  "../bench/table8_ablations.pdb"
  "CMakeFiles/table8_ablations.dir/table8_ablations.cpp.o"
  "CMakeFiles/table8_ablations.dir/table8_ablations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
