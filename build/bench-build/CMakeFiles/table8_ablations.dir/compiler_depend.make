# Empty compiler generated dependencies file for table8_ablations.
# This may be replaced when dependencies are built.
