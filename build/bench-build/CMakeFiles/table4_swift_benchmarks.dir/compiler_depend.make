# Empty compiler generated dependencies file for table4_swift_benchmarks.
# This may be replaced when dependencies are built.
