# Empty dependencies file for table6_generality.
# This may be replaced when dependencies are built.
