file(REMOVE_RECURSE
  "../bench/table6_generality"
  "../bench/table6_generality.pdb"
  "CMakeFiles/table6_generality.dir/table6_generality.cpp.o"
  "CMakeFiles/table6_generality.dir/table6_generality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
