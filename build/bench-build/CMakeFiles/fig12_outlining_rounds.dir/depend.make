# Empty dependencies file for fig12_outlining_rounds.
# This may be replaced when dependencies are built.
