file(REMOVE_RECURSE
  "../bench/fig12_outlining_rounds"
  "../bench/fig12_outlining_rounds.pdb"
  "CMakeFiles/fig12_outlining_rounds.dir/fig12_outlining_rounds.cpp.o"
  "CMakeFiles/fig12_outlining_rounds.dir/fig12_outlining_rounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_outlining_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
