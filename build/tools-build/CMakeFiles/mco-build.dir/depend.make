# Empty dependencies file for mco-build.
# This may be replaced when dependencies are built.
