file(REMOVE_RECURSE
  "../tools/mco-build"
  "../tools/mco-build.pdb"
  "CMakeFiles/mco-build.dir/mco-build.cpp.o"
  "CMakeFiles/mco-build.dir/mco-build.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco-build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
