# Empty dependencies file for mco-run.
# This may be replaced when dependencies are built.
