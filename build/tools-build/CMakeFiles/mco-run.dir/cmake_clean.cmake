file(REMOVE_RECURSE
  "../tools/mco-run"
  "../tools/mco-run.pdb"
  "CMakeFiles/mco-run.dir/mco-run.cpp.o"
  "CMakeFiles/mco-run.dir/mco-run.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
