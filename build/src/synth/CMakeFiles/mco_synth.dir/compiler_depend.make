# Empty compiler generated dependencies file for mco_synth.
# This may be replaced when dependencies are built.
