file(REMOVE_RECURSE
  "CMakeFiles/mco_synth.dir/AppProfile.cpp.o"
  "CMakeFiles/mco_synth.dir/AppProfile.cpp.o.d"
  "CMakeFiles/mco_synth.dir/CorpusSynthesizer.cpp.o"
  "CMakeFiles/mco_synth.dir/CorpusSynthesizer.cpp.o.d"
  "libmco_synth.a"
  "libmco_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
