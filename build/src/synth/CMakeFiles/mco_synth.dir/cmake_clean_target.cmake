file(REMOVE_RECURSE
  "libmco_synth.a"
)
