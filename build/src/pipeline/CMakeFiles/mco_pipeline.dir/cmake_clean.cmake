file(REMOVE_RECURSE
  "CMakeFiles/mco_pipeline.dir/BuildPipeline.cpp.o"
  "CMakeFiles/mco_pipeline.dir/BuildPipeline.cpp.o.d"
  "libmco_pipeline.a"
  "libmco_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
