# Empty compiler generated dependencies file for mco_pipeline.
# This may be replaced when dependencies are built.
