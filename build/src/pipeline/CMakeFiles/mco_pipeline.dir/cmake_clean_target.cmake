file(REMOVE_RECURSE
  "libmco_pipeline.a"
)
