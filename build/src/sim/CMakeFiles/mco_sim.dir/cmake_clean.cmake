file(REMOVE_RECURSE
  "CMakeFiles/mco_sim.dir/CacheModel.cpp.o"
  "CMakeFiles/mco_sim.dir/CacheModel.cpp.o.d"
  "CMakeFiles/mco_sim.dir/Interpreter.cpp.o"
  "CMakeFiles/mco_sim.dir/Interpreter.cpp.o.d"
  "CMakeFiles/mco_sim.dir/Memory.cpp.o"
  "CMakeFiles/mco_sim.dir/Memory.cpp.o.d"
  "libmco_sim.a"
  "libmco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
