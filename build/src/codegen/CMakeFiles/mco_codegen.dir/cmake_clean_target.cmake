file(REMOVE_RECURSE
  "libmco_codegen.a"
)
