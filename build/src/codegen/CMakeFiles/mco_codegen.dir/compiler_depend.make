# Empty compiler generated dependencies file for mco_codegen.
# This may be replaced when dependencies are built.
