file(REMOVE_RECURSE
  "CMakeFiles/mco_codegen.dir/Codegen.cpp.o"
  "CMakeFiles/mco_codegen.dir/Codegen.cpp.o.d"
  "libmco_codegen.a"
  "libmco_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
