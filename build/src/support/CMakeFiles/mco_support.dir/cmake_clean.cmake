file(REMOVE_RECURSE
  "CMakeFiles/mco_support.dir/Statistics.cpp.o"
  "CMakeFiles/mco_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/mco_support.dir/SuffixTree.cpp.o"
  "CMakeFiles/mco_support.dir/SuffixTree.cpp.o.d"
  "libmco_support.a"
  "libmco_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
