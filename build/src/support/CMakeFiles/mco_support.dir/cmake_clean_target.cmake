file(REMOVE_RECURSE
  "libmco_support.a"
)
