# Empty dependencies file for mco_support.
# This may be replaced when dependencies are built.
