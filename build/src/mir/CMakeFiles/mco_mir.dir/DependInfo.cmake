
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mir/Liveness.cpp" "src/mir/CMakeFiles/mco_mir.dir/Liveness.cpp.o" "gcc" "src/mir/CMakeFiles/mco_mir.dir/Liveness.cpp.o.d"
  "/root/repo/src/mir/MIRParser.cpp" "src/mir/CMakeFiles/mco_mir.dir/MIRParser.cpp.o" "gcc" "src/mir/CMakeFiles/mco_mir.dir/MIRParser.cpp.o.d"
  "/root/repo/src/mir/MIRPrinter.cpp" "src/mir/CMakeFiles/mco_mir.dir/MIRPrinter.cpp.o" "gcc" "src/mir/CMakeFiles/mco_mir.dir/MIRPrinter.cpp.o.d"
  "/root/repo/src/mir/MIRVerifier.cpp" "src/mir/CMakeFiles/mco_mir.dir/MIRVerifier.cpp.o" "gcc" "src/mir/CMakeFiles/mco_mir.dir/MIRVerifier.cpp.o.d"
  "/root/repo/src/mir/MachineInstr.cpp" "src/mir/CMakeFiles/mco_mir.dir/MachineInstr.cpp.o" "gcc" "src/mir/CMakeFiles/mco_mir.dir/MachineInstr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
