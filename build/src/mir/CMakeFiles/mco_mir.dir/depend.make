# Empty dependencies file for mco_mir.
# This may be replaced when dependencies are built.
