file(REMOVE_RECURSE
  "CMakeFiles/mco_mir.dir/Liveness.cpp.o"
  "CMakeFiles/mco_mir.dir/Liveness.cpp.o.d"
  "CMakeFiles/mco_mir.dir/MIRParser.cpp.o"
  "CMakeFiles/mco_mir.dir/MIRParser.cpp.o.d"
  "CMakeFiles/mco_mir.dir/MIRPrinter.cpp.o"
  "CMakeFiles/mco_mir.dir/MIRPrinter.cpp.o.d"
  "CMakeFiles/mco_mir.dir/MIRVerifier.cpp.o"
  "CMakeFiles/mco_mir.dir/MIRVerifier.cpp.o.d"
  "CMakeFiles/mco_mir.dir/MachineInstr.cpp.o"
  "CMakeFiles/mco_mir.dir/MachineInstr.cpp.o.d"
  "libmco_mir.a"
  "libmco_mir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_mir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
