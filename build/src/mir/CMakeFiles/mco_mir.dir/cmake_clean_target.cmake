file(REMOVE_RECURSE
  "libmco_mir.a"
)
