file(REMOVE_RECURSE
  "libmco_outliner.a"
)
