file(REMOVE_RECURSE
  "CMakeFiles/mco_outliner.dir/InstructionMapper.cpp.o"
  "CMakeFiles/mco_outliner.dir/InstructionMapper.cpp.o.d"
  "CMakeFiles/mco_outliner.dir/MachineOutliner.cpp.o"
  "CMakeFiles/mco_outliner.dir/MachineOutliner.cpp.o.d"
  "CMakeFiles/mco_outliner.dir/PatternStats.cpp.o"
  "CMakeFiles/mco_outliner.dir/PatternStats.cpp.o.d"
  "libmco_outliner.a"
  "libmco_outliner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_outliner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
