
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/outliner/InstructionMapper.cpp" "src/outliner/CMakeFiles/mco_outliner.dir/InstructionMapper.cpp.o" "gcc" "src/outliner/CMakeFiles/mco_outliner.dir/InstructionMapper.cpp.o.d"
  "/root/repo/src/outliner/MachineOutliner.cpp" "src/outliner/CMakeFiles/mco_outliner.dir/MachineOutliner.cpp.o" "gcc" "src/outliner/CMakeFiles/mco_outliner.dir/MachineOutliner.cpp.o.d"
  "/root/repo/src/outliner/PatternStats.cpp" "src/outliner/CMakeFiles/mco_outliner.dir/PatternStats.cpp.o" "gcc" "src/outliner/CMakeFiles/mco_outliner.dir/PatternStats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mir/CMakeFiles/mco_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
