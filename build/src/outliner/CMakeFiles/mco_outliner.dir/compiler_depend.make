# Empty compiler generated dependencies file for mco_outliner.
# This may be replaced when dependencies are built.
