file(REMOVE_RECURSE
  "libmco_linker.a"
)
