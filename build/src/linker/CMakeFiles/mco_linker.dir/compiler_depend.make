# Empty compiler generated dependencies file for mco_linker.
# This may be replaced when dependencies are built.
