file(REMOVE_RECURSE
  "CMakeFiles/mco_linker.dir/Linker.cpp.o"
  "CMakeFiles/mco_linker.dir/Linker.cpp.o.d"
  "libmco_linker.a"
  "libmco_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
