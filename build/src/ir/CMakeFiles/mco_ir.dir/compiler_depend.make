# Empty compiler generated dependencies file for mco_ir.
# This may be replaced when dependencies are built.
