file(REMOVE_RECURSE
  "CMakeFiles/mco_ir.dir/IR.cpp.o"
  "CMakeFiles/mco_ir.dir/IR.cpp.o.d"
  "libmco_ir.a"
  "libmco_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
