file(REMOVE_RECURSE
  "libmco_ir.a"
)
