file(REMOVE_RECURSE
  "CMakeFiles/mco_swiftbench.dir/GraphBenches.cpp.o"
  "CMakeFiles/mco_swiftbench.dir/GraphBenches.cpp.o.d"
  "CMakeFiles/mco_swiftbench.dir/MathBenches.cpp.o"
  "CMakeFiles/mco_swiftbench.dir/MathBenches.cpp.o.d"
  "CMakeFiles/mco_swiftbench.dir/SortBenches.cpp.o"
  "CMakeFiles/mco_swiftbench.dir/SortBenches.cpp.o.d"
  "CMakeFiles/mco_swiftbench.dir/StringBenches.cpp.o"
  "CMakeFiles/mco_swiftbench.dir/StringBenches.cpp.o.d"
  "CMakeFiles/mco_swiftbench.dir/SwiftBench.cpp.o"
  "CMakeFiles/mco_swiftbench.dir/SwiftBench.cpp.o.d"
  "CMakeFiles/mco_swiftbench.dir/TreeBenches.cpp.o"
  "CMakeFiles/mco_swiftbench.dir/TreeBenches.cpp.o.d"
  "libmco_swiftbench.a"
  "libmco_swiftbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_swiftbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
