file(REMOVE_RECURSE
  "libmco_swiftbench.a"
)
