
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swiftbench/GraphBenches.cpp" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/GraphBenches.cpp.o" "gcc" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/GraphBenches.cpp.o.d"
  "/root/repo/src/swiftbench/MathBenches.cpp" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/MathBenches.cpp.o" "gcc" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/MathBenches.cpp.o.d"
  "/root/repo/src/swiftbench/SortBenches.cpp" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/SortBenches.cpp.o" "gcc" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/SortBenches.cpp.o.d"
  "/root/repo/src/swiftbench/StringBenches.cpp" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/StringBenches.cpp.o" "gcc" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/StringBenches.cpp.o.d"
  "/root/repo/src/swiftbench/SwiftBench.cpp" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/SwiftBench.cpp.o" "gcc" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/SwiftBench.cpp.o.d"
  "/root/repo/src/swiftbench/TreeBenches.cpp" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/TreeBenches.cpp.o" "gcc" "src/swiftbench/CMakeFiles/mco_swiftbench.dir/TreeBenches.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mco_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
