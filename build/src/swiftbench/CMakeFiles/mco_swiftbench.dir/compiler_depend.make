# Empty compiler generated dependencies file for mco_swiftbench.
# This may be replaced when dependencies are built.
