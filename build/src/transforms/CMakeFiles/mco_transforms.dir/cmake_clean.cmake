file(REMOVE_RECURSE
  "CMakeFiles/mco_transforms.dir/Transforms.cpp.o"
  "CMakeFiles/mco_transforms.dir/Transforms.cpp.o.d"
  "libmco_transforms.a"
  "libmco_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
