# Empty dependencies file for mco_transforms.
# This may be replaced when dependencies are built.
