file(REMOVE_RECURSE
  "libmco_transforms.a"
)
