file(REMOVE_RECURSE
  "../examples/span_simulation"
  "../examples/span_simulation.pdb"
  "CMakeFiles/span_simulation.dir/span_simulation.cpp.o"
  "CMakeFiles/span_simulation.dir/span_simulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/span_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
