
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/span_simulation.cpp" "examples-build/CMakeFiles/span_simulation.dir/span_simulation.cpp.o" "gcc" "examples-build/CMakeFiles/span_simulation.dir/span_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swiftbench/CMakeFiles/mco_swiftbench.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/mco_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/mco_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/mco_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/mco_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/outliner/CMakeFiles/mco_outliner.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/mco_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mco_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/mco_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
