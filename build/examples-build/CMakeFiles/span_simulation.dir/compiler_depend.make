# Empty compiler generated dependencies file for span_simulation.
# This may be replaced when dependencies are built.
