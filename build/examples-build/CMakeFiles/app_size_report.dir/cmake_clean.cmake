file(REMOVE_RECURSE
  "../examples/app_size_report"
  "../examples/app_size_report.pdb"
  "CMakeFiles/app_size_report.dir/app_size_report.cpp.o"
  "CMakeFiles/app_size_report.dir/app_size_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_size_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
