# Empty dependencies file for app_size_report.
# This may be replaced when dependencies are built.
