file(REMOVE_RECURSE
  "../examples/compile_and_run"
  "../examples/compile_and_run.pdb"
  "CMakeFiles/compile_and_run.dir/compile_and_run.cpp.o"
  "CMakeFiles/compile_and_run.dir/compile_and_run.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
