# Empty compiler generated dependencies file for linker_tests.
# This may be replaced when dependencies are built.
