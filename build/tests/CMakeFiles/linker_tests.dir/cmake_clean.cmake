file(REMOVE_RECURSE
  "CMakeFiles/linker_tests.dir/LinkerTest.cpp.o"
  "CMakeFiles/linker_tests.dir/LinkerTest.cpp.o.d"
  "CMakeFiles/linker_tests.dir/PipelineTest.cpp.o"
  "CMakeFiles/linker_tests.dir/PipelineTest.cpp.o.d"
  "linker_tests"
  "linker_tests.pdb"
  "linker_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linker_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
