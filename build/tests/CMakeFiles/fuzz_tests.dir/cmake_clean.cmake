file(REMOVE_RECURSE
  "CMakeFiles/fuzz_tests.dir/OptionsMatrixTest.cpp.o"
  "CMakeFiles/fuzz_tests.dir/OptionsMatrixTest.cpp.o.d"
  "CMakeFiles/fuzz_tests.dir/RandomIRDifferentialTest.cpp.o"
  "CMakeFiles/fuzz_tests.dir/RandomIRDifferentialTest.cpp.o.d"
  "CMakeFiles/fuzz_tests.dir/RandomMirDifferentialTest.cpp.o"
  "CMakeFiles/fuzz_tests.dir/RandomMirDifferentialTest.cpp.o.d"
  "fuzz_tests"
  "fuzz_tests.pdb"
  "fuzz_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
