# Empty dependencies file for swiftbench_tests.
# This may be replaced when dependencies are built.
