# Empty compiler generated dependencies file for swiftbench_tests.
# This may be replaced when dependencies are built.
