file(REMOVE_RECURSE
  "CMakeFiles/swiftbench_tests.dir/SwiftBenchTest.cpp.o"
  "CMakeFiles/swiftbench_tests.dir/SwiftBenchTest.cpp.o.d"
  "swiftbench_tests"
  "swiftbench_tests.pdb"
  "swiftbench_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftbench_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
