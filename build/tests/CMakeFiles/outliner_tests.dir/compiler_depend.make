# Empty compiler generated dependencies file for outliner_tests.
# This may be replaced when dependencies are built.
