file(REMOVE_RECURSE
  "CMakeFiles/outliner_tests.dir/InstructionMapperTest.cpp.o"
  "CMakeFiles/outliner_tests.dir/InstructionMapperTest.cpp.o.d"
  "CMakeFiles/outliner_tests.dir/OutlinerTest.cpp.o"
  "CMakeFiles/outliner_tests.dir/OutlinerTest.cpp.o.d"
  "CMakeFiles/outliner_tests.dir/PatternStatsTest.cpp.o"
  "CMakeFiles/outliner_tests.dir/PatternStatsTest.cpp.o.d"
  "CMakeFiles/outliner_tests.dir/RepeatedOutlinerTest.cpp.o"
  "CMakeFiles/outliner_tests.dir/RepeatedOutlinerTest.cpp.o.d"
  "outliner_tests"
  "outliner_tests.pdb"
  "outliner_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outliner_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
