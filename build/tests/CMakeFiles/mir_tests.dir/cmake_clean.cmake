file(REMOVE_RECURSE
  "CMakeFiles/mir_tests.dir/LivenessTest.cpp.o"
  "CMakeFiles/mir_tests.dir/LivenessTest.cpp.o.d"
  "CMakeFiles/mir_tests.dir/MIRParserTest.cpp.o"
  "CMakeFiles/mir_tests.dir/MIRParserTest.cpp.o.d"
  "CMakeFiles/mir_tests.dir/MIRVerifierTest.cpp.o"
  "CMakeFiles/mir_tests.dir/MIRVerifierTest.cpp.o.d"
  "CMakeFiles/mir_tests.dir/MachineInstrTest.cpp.o"
  "CMakeFiles/mir_tests.dir/MachineInstrTest.cpp.o.d"
  "mir_tests"
  "mir_tests.pdb"
  "mir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
