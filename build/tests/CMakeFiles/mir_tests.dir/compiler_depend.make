# Empty compiler generated dependencies file for mir_tests.
# This may be replaced when dependencies are built.
