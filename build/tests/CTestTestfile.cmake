# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/mir_tests[1]_include.cmake")
include("/root/repo/build/tests/outliner_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/linker_tests[1]_include.cmake")
include("/root/repo/build/tests/transforms_tests[1]_include.cmake")
include("/root/repo/build/tests/synth_tests[1]_include.cmake")
include("/root/repo/build/tests/swiftbench_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/fuzz_tests[1]_include.cmake")
