//===- tests/DeadStripTest.cpp - Whole-program dead-strip tests -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The dead-strip contract, in rising order of strength:
///
///   - disabled is a no-op; a fully-live program is untouched;
///   - every synthetically injected unreachable function and global is
///     removed, and the byte accounting matches what left the program;
///   - no reachable code is ever removed — proven by differential
///     execution: every span of a stripped corpus computes the same value
///     with the same instruction count as the unstripped baseline;
///   - address-taken functions (ADR then indirect call) stay live even
///     with no direct call edge;
///   - stripping composes with outlining: for a fully-live program, the
///     outlined result is bit-identical with and without the pass.
///
//===----------------------------------------------------------------------===//

#include "objfile/DeadStrip.h"

#include "linker/Linker.h"
#include "mir/MIRBuilder.h"
#include "mir/MIRPrinter.h"
#include "mir/Program.h"
#include "pipeline/BuildPipeline.h"
#include "sim/Interpreter.h"
#include "synth/CorpusSynthesizer.h"
#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace mco;

namespace {

AppProfile tinyProfile() {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 6;
  P.FunctionsPerModule = 10;
  return P;
}

/// Plants \p N unreachable functions (a chain: dead_fn_0 calls dead_fn_1
/// calls ...) plus one global referenced only from the chain, in the last
/// module of \p Prog. Nothing live references any of it.
void injectDeadCode(Program &Prog, unsigned N) {
  Module &M = *Prog.Modules.back();
  for (unsigned I = 0; I < N; ++I) {
    M.Functions.emplace_back();
    MachineFunction &F = M.Functions.back();
    F.Name = Prog.internSymbol("dead_fn_" + std::to_string(I));
    MIRBuilder B(F.addBlock());
    B.movri(Reg::X0, static_cast<int64_t>(I));
    if (I == 0)
      B.adr(Reg::X1, Prog.internSymbol("dead_data"));
    if (I + 1 < N)
      B.bl(Prog.internSymbol("dead_fn_" + std::to_string(I + 1)));
    B.ret();
  }
  M.Globals.emplace_back();
  GlobalData &G = M.Globals.back();
  G.Name = Prog.internSymbol("dead_data");
  G.Bytes = {0xde, 0xad, 0xde, 0xad};
}

bool programHasSymbolNamed(const Program &Prog, const std::string &Prefix) {
  for (const auto &M : Prog.Modules) {
    for (const MachineFunction &MF : M->Functions)
      if (Prog.symbolName(MF.Name).rfind(Prefix, 0) == 0)
        return true;
    for (const GlobalData &G : M->Globals)
      if (Prog.symbolName(G.Name).rfind(Prefix, 0) == 0)
        return true;
  }
  return false;
}

TEST(DeadStripTest, DisabledIsANoOp) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  injectDeadCode(*Prog, 3);
  const uint64_t Before = Prog->codeSize();
  DeadStripOptions Opts; // Enabled defaults to false.
  DeadStripStats St = runDeadStrip(*Prog, Opts);
  EXPECT_EQ(St.FunctionsRemoved, 0u);
  EXPECT_EQ(St.GlobalsRemoved, 0u);
  EXPECT_EQ(Prog->codeSize(), Before);
  EXPECT_TRUE(programHasSymbolNamed(*Prog, "dead_fn_"));
}

TEST(DeadStripTest, RemovesEveryInjectedUnreachableSymbol) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  injectDeadCode(*Prog, 5);
  const uint64_t CodeBefore = Prog->codeSize();
  const uint64_t DataBefore = Prog->dataSize();

  DeadStripOptions Opts;
  Opts.Enabled = true;
  DeadStripStats St = runDeadStrip(*Prog, Opts);

  // 100% of the injected dead code is gone...
  EXPECT_FALSE(programHasSymbolNamed(*Prog, "dead_fn_"));
  EXPECT_FALSE(programHasSymbolNamed(*Prog, "dead_data"));
  EXPECT_GE(St.FunctionsRemoved, 5u);
  EXPECT_GE(St.GlobalsRemoved, 1u);
  EXPECT_GT(St.Roots, 0u);

  // ...and the byte accounting matches what actually left the program.
  EXPECT_EQ(Prog->codeSize() + St.BytesRemoved, CodeBefore);
  EXPECT_EQ(Prog->dataSize() + St.GlobalBytesRemoved, DataBefore);
}

TEST(DeadStripTest, NeverRemovesReachableCode) {
  // Differential execution: the synthesizer is deterministic, so two
  // generate() calls yield identical corpora. Strip one (with dead code
  // injected first) and compare every span's value and instruction count
  // against the untouched baseline.
  const AppProfile P = tinyProfile();
  auto Baseline = CorpusSynthesizer(P).generate();
  auto Stripped = CorpusSynthesizer(P).generate();
  injectDeadCode(*Stripped, 4);

  DeadStripOptions Opts;
  Opts.Enabled = true;
  runDeadStrip(*Stripped, Opts);

  BinaryImage BaseImg(*Baseline);
  Interpreter BI(BaseImg, *Baseline);
  BinaryImage StripImg(*Stripped);
  Interpreter SI(StripImg, *Stripped);
  for (unsigned S = 0; S < P.NumSpans; ++S) {
    const std::string Span = CorpusSynthesizer::spanFunctionName(S);
    const int64_t Want = BI.call(Span);
    const uint64_t WantInstrs = BI.counters().Instrs;
    EXPECT_EQ(SI.call(Span), Want) << Span;
    EXPECT_EQ(SI.counters().Instrs, WantInstrs) << Span;
  }
}

TEST(DeadStripTest, ExtraExportRootsKeepOtherwiseDeadCode) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  injectDeadCode(*Prog, 3);

  DeadStripOptions Opts;
  Opts.Enabled = true;
  Opts.ExportedSymbols = {"dead_fn_0"}; // --export dead_fn_0
  runDeadStrip(*Prog, Opts);

  // dead_fn_0 is now a root; its whole chain and the global it addresses
  // stay live.
  EXPECT_TRUE(programHasSymbolNamed(*Prog, "dead_fn_0"));
  EXPECT_TRUE(programHasSymbolNamed(*Prog, "dead_fn_2"));
  EXPECT_TRUE(programHasSymbolNamed(*Prog, "dead_data"));
}

TEST(DeadStripTest, AddressTakenFunctionsStayLive) {
  // An ADR of a function with no direct call edge models an indirect
  // call (ADR then BLR): reachability must treat any symbol operand as a
  // reference, not just BL/Btail targets.
  Program Prog;
  Module &M = Prog.addModule("addr.taken");
  M.Functions.emplace_back();
  MachineFunction &Main = M.Functions.back();
  Main.Name = Prog.internSymbol("main");
  MIRBuilder B(Main.addBlock());
  B.adr(Reg::X1, Prog.internSymbol("indirect_target"));
  B.ret();
  M.Functions.emplace_back();
  MachineFunction &T = M.Functions.back();
  T.Name = Prog.internSymbol("indirect_target");
  MIRBuilder TB(T.addBlock());
  TB.movri(Reg::X0, 99);
  TB.ret();

  DeadStripOptions Opts;
  Opts.Enabled = true;
  DeadStripStats St = runDeadStrip(Prog, Opts);
  EXPECT_EQ(St.FunctionsRemoved, 0u);
  EXPECT_TRUE(programHasSymbolNamed(Prog, "indirect_target"));
}

TEST(DeadStripTest, ComposesWithOutliningForFullyLivePrograms) {
  // Pre-strip both corpora so they are fully live, then build one with
  // the pass enabled and one without: for a fully-live program stripping
  // is the identity, so the outlined results must be bit-identical.
  const AppProfile P = tinyProfile();
  DeadStripOptions Pre;
  Pre.Enabled = true;

  auto A = CorpusSynthesizer(P).generate();
  runDeadStrip(*A, Pre);
  PipelineOptions OA;
  OA.OutlineRounds = 3;
  OA.DeadStrip.Enabled = true;
  BuildResult RA = buildProgram(*A, OA);
  EXPECT_EQ(RA.DeadStrip.FunctionsRemoved, 0u);

  auto B = CorpusSynthesizer(P).generate();
  runDeadStrip(*B, Pre);
  PipelineOptions OB;
  OB.OutlineRounds = 3;
  BuildResult RB = buildProgram(*B, OB);

  ASSERT_EQ(A->Modules.size(), 1u);
  ASSERT_EQ(B->Modules.size(), 1u);
  EXPECT_EQ(RA.CodeSize, RB.CodeSize);
  EXPECT_EQ(printModule(*A->Modules[0], *A), printModule(*B->Modules[0], *B));
}

TEST(DeadStripTest, PipelinePassRemovesDeadCodeBeforeOutlining) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  injectDeadCode(*Prog, 4);

  PipelineOptions Opts;
  Opts.OutlineRounds = 2;
  Opts.DeadStrip.Enabled = true;
  BuildResult R = buildProgram(*Prog, Opts);

  EXPECT_FALSE(programHasSymbolNamed(*Prog, "dead_fn_"));
  EXPECT_GE(R.DeadStrip.FunctionsRemoved, 4u);
  EXPECT_GT(R.DeadStrip.BytesRemoved, 0u);
  EXPECT_GT(R.DeadStrip.Roots, 0u);
  EXPECT_GT(R.DeadStrip.FunctionsScanned, 0u);
}

} // namespace
