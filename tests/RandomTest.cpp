//===- tests/RandomTest.cpp - PRNG & Zipf unit tests ----------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include "gtest/gtest.h"

#include <vector>

using namespace mco;

namespace {

TEST(RandomTest, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(RandomTest, BoundedStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.nextBounded(13), 13u);
}

TEST(RandomTest, RangeInclusive) {
  Rng R(8);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 10000; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Rng R(10);
  double Sum = 0, SumSq = 0;
  const int N = 50000;
  for (int I = 0; I < N; ++I) {
    double G = R.nextGaussian();
    Sum += G;
    SumSq += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.02);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(RandomTest, ZipfRankOneDominates) {
  ZipfSampler Z(100, 1.1);
  Rng R(11);
  std::vector<unsigned> Counts(101, 0);
  for (int I = 0; I < 100000; ++I) {
    unsigned Rank = Z.sample(R);
    ASSERT_GE(Rank, 1u);
    ASSERT_LE(Rank, 100u);
    ++Counts[Rank];
  }
  // Monotone-ish decay: rank 1 well above rank 10 well above rank 100.
  EXPECT_GT(Counts[1], Counts[10]);
  EXPECT_GT(Counts[10], Counts[100]);
  // Rank 1 frequency should be roughly 2^1.1 times rank 2.
  EXPECT_GT(Counts[1], Counts[2]);
}

TEST(RandomTest, LogNormalPositive) {
  Rng R(12);
  for (int I = 0; I < 1000; ++I)
    EXPECT_GT(R.nextLogNormal(0.0, 0.25), 0.0);
}

} // namespace
