//===- tests/IntegrationTest.cpp - End-to-end pipeline tests --------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Full-stack integration: corpus synthesis -> build pipelines ->
/// link/layout -> execution under the performance model, checking the
/// cross-cutting invariants the paper's evaluation depends on.
///
//===----------------------------------------------------------------------===//

#include "outliner/PatternStats.h"
#include "pipeline/BuildPipeline.h"
#include "sim/Interpreter.h"
#include "support/Statistics.h"
#include "synth/AppEvolution.h"
#include "synth/CorpusSynthesizer.h"
#include "transforms/Transforms.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

AppProfile testProfile() {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 30;
  return P;
}

TEST(IntegrationTest, FullPipelineSizeOrdering) {
  // None >= PM1 >= PM5 > WP5 and WP1 >= WP5: the Fig. 12 ordering.
  auto Build = [&](bool WP, unsigned Rounds) {
    auto Prog = CorpusSynthesizer(testProfile()).generate();
    PipelineOptions Opts;
    Opts.WholeProgram = WP;
    Opts.OutlineRounds = Rounds;
    return buildProgram(*Prog, Opts).CodeSize;
  };
  uint64_t None = Build(false, 0);
  uint64_t PM1 = Build(false, 1);
  uint64_t PM5 = Build(false, 5);
  uint64_t WP1 = Build(true, 1);
  uint64_t WP5 = Build(true, 5);
  EXPECT_GT(None, PM1);
  EXPECT_GE(PM1, PM5);
  EXPECT_GT(PM5, WP5);
  EXPECT_GE(WP1, WP5);
}

TEST(IntegrationTest, OutliningStatsMatchImageSizes) {
  auto Prog = CorpusSynthesizer(testProfile()).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 3;
  BuildResult R = buildProgram(*Prog, Opts);
  BinaryImage Image(*Prog);
  EXPECT_EQ(Image.codeSize(), R.CodeSize);
  EXPECT_EQ(Image.dataSize(), R.DataSize);
  // Stats record outlined-function sizes at creation time; later rounds
  // may shrink those bodies further, so the module's current outlined
  // bytes are bounded above by the stats total.
  uint64_t OutlinedBytes = 0;
  for (const MachineFunction &MF : Prog->Modules[0]->Functions)
    if (MF.IsOutlined)
      OutlinedBytes += MF.codeSize();
  EXPECT_LE(OutlinedBytes, R.OutlineStats.totalOutlinedFunctionBytes());
  EXPECT_GT(OutlinedBytes, 0u);
}

TEST(IntegrationTest, AllSpansEquivalentAcrossAllBuildConfigs) {
  // The strongest end-to-end property: every span computes the same
  // observable global state under every build configuration.
  AppProfile P = testProfile();

  auto RunAll = [&](bool WP, unsigned Rounds, DataLayoutMode Layout) {
    auto Prog = CorpusSynthesizer(P).generate();
    PipelineOptions Opts;
    Opts.WholeProgram = WP;
    Opts.OutlineRounds = Rounds;
    Opts.DataLayout = Layout;
    buildProgram(*Prog, Opts);
    BinaryImage Image(*Prog);
    Interpreter I(Image, *Prog);
    uint64_t Sum = 1469598103934665603ull;
    for (unsigned S = 0; S < P.NumSpans; ++S)
      I.call(CorpusSynthesizer::spanFunctionName(S));
    for (unsigned M = 0; M < P.NumModules; ++M)
      for (unsigned G = 0; G < P.GlobalsPerModule; ++G) {
        uint32_t Sym = Prog->lookupSymbol(
            "g_" + std::to_string(M) + "_" + std::to_string(G));
        uint64_t Addr = Image.globalAddr(Sym);
        for (unsigned W = 0; W < P.GlobalWords; ++W) {
          Sum ^= I.memory().read64(Addr + 8 * W);
          Sum *= 1099511628211ull;
        }
      }
    EXPECT_EQ(I.memory().liveHeapBytes(), 0u);
    return Sum;
  };

  uint64_t Reference =
      RunAll(false, 0, DataLayoutMode::PreserveModuleOrder);
  EXPECT_EQ(RunAll(false, 5, DataLayoutMode::PreserveModuleOrder),
            Reference);
  EXPECT_EQ(RunAll(true, 1, DataLayoutMode::PreserveModuleOrder),
            Reference);
  EXPECT_EQ(RunAll(true, 5, DataLayoutMode::PreserveModuleOrder),
            Reference);
  EXPECT_EQ(RunAll(true, 5, DataLayoutMode::Interleaved), Reference);
}

TEST(IntegrationTest, TransformsComposeWithOutlining) {
  // Run the Table I merging passes *then* outlining; everything must
  // still execute correctly.
  AppProfile P = testProfile();
  auto Prog = CorpusSynthesizer(P).generate();
  Module &M = linkProgram(*Prog);
  idiomOutliner(*Prog, M);
  mergeIdenticalFunctions(*Prog, M);
  mergeSimilarFunctions(*Prog, M);
  runRepeatedOutliner(*Prog, M, 3);
  BinaryImage Image(*Prog);
  Interpreter I(Image, *Prog);
  for (unsigned S = 0; S < P.NumSpans; ++S)
    I.call(CorpusSynthesizer::spanFunctionName(S));
  EXPECT_EQ(I.memory().liveHeapBytes(), 0u);
}

TEST(IntegrationTest, EvolutionSavingsGrowWithAge) {
  // Fig. 1's mechanism: the whole-program saving percentage must not
  // shrink as the app grows (later modules are more redundant).
  AppEvolution Evo(testProfile(), /*BaseModules=*/10,
                   /*ModulesPerMonth=*/10);
  double PrevSaving = -1;
  for (unsigned Month : {0u, 2u}) {
    auto Base = Evo.snapshot(Month);
    uint64_t None = Base->codeSize();
    auto Opt = Evo.snapshot(Month);
    PipelineOptions Opts;
    Opts.OutlineRounds = 5;
    BuildResult R = buildProgram(*Opt, Opts);
    double Saving = 100.0 * (double(None) - double(R.CodeSize)) /
                    double(None);
    EXPECT_GT(Saving, PrevSaving);
    PrevSaving = Saving;
  }
}

TEST(IntegrationTest, PerfModelSeesFootprintDifference) {
  // Under a small instruction cache, the optimized build must touch
  // fewer distinct lines *of original code* even though it executes more
  // instructions. (Cold-footprint check with an effectively infinite
  // cache so misses == distinct lines.)
  AppProfile P = testProfile();

  auto ColdLines = [&](bool Optimized) {
    auto Prog = CorpusSynthesizer(P).generate();
    PipelineOptions Opts;
    Opts.WholeProgram = Optimized;
    Opts.OutlineRounds = Optimized ? 5 : 0;
    buildProgram(*Prog, Opts);
    BinaryImage Image(*Prog);
    PerfConfig Cfg;
    Cfg.ICacheBytes = 64 << 20;
    Interpreter I(Image, *Prog, &Cfg);
    // Stream the whole app: every span back to back.
    for (unsigned S = 0; S < P.NumSpans; ++S)
      I.call(CorpusSynthesizer::spanFunctionName(S));
    return std::pair<uint64_t, uint64_t>(I.counters().ICacheMisses,
                                         I.counters().Instrs);
  };
  auto [BaseLines, BaseInstrs] = ColdLines(false);
  auto [OptLines, OptInstrs] = ColdLines(true);
  EXPECT_GT(OptInstrs, BaseInstrs); // Outlining adds instructions...
  // ...and the touched-line counts stay within a few percent of each
  // other (outlined bodies replace inline copies).
  EXPECT_LT(double(OptLines), double(BaseLines) * 1.15);
}

TEST(IntegrationTest, PatternStatsConsistentWithOutlinerGains) {
  // The Section IV profitability estimate must roughly predict what the
  // outliner achieves in round 1 (within 2x, since the estimate ignores
  // overlaps and call-variant differences).
  auto Prog = CorpusSynthesizer(testProfile()).generate();
  Module &Linked = linkProgram(*Prog);
  PatternAnalysis A = analyzePatterns(*Prog, Linked);
  // Per-pattern potentials overlap heavily (every affix of a pattern has
  // its own entry), so their sum is an upper bound; the single best
  // pattern's saving is a lower bound for greedy round 1.
  auto Cum = A.cumulativeSavingsBestFirst();
  ASSERT_FALSE(Cum.empty());
  int64_t Best = Cum.front();
  int64_t UpperBound = Cum.back();
  OutlineRoundStats R = runOutlinerRound(*Prog, Linked, 1);
  EXPECT_GE(int64_t(R.bytesSaved()), Best);
  EXPECT_LT(int64_t(R.bytesSaved()), UpperBound);
}

} // namespace
