//===- tests/TransformsTest.cpp - Table I baseline pass tests -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "transforms/Transforms.h"

#include "outliner/MachineOutliner.h"

#include "mir/MIRBuilder.h"
#include "linker/Linker.h"
#include "sim/Interpreter.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

/// Adds a leaf function computing (P1 + P2) ^ P1 with given immediates.
void addCfgFn(Program &P, Module &M, const std::string &Name, int64_t A,
              int64_t B0) {
  MachineFunction MF;
  MF.Name = P.internSymbol(Name);
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X9, A);
  B.movri(Reg::X10, B0);
  B.addrr(Reg::X11, Reg::X9, Reg::X10);
  B.eorrr(Reg::X0, Reg::X11, Reg::X9);
  B.ret();
  M.Functions.push_back(MF);
}

TEST(MergeIdenticalTest, MergesExactClones) {
  Program P;
  Module &M = P.addModule("m");
  addCfgFn(P, M, "a", 1, 2);
  addCfgFn(P, M, "b", 1, 2); // Identical to a.
  addCfgFn(P, M, "c", 3, 4); // Different.
  // A caller referencing the duplicate.
  MachineFunction Caller;
  Caller.Name = P.internSymbol("caller");
  MIRBuilder B(Caller.addBlock());
  B.strpre(LR, Reg::SP, -16);
  B.bl(P.lookupSymbol("b"));
  B.ldrpost(LR, Reg::SP, 16);
  B.ret();
  M.Functions.push_back(Caller);

  TransformStats S = mergeIdenticalFunctions(P, M);
  EXPECT_EQ(S.FunctionsMerged, 1u);
  EXPECT_GT(S.bytesSaved(), 0u);
  // b is gone; the caller now calls a.
  bool FoundB = false;
  for (const MachineFunction &MF : M.Functions)
    if (P.symbolName(MF.Name) == "b")
      FoundB = true;
  EXPECT_FALSE(FoundB);
  const MachineFunction &C = M.Functions.back();
  EXPECT_EQ(C.Blocks[0].Instrs[1].operand(0).getSym(), P.lookupSymbol("a"));

  // Behaviour preserved.
  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("caller"), ((1 + 2) ^ 1));
}

TEST(MergeIdenticalTest, NoMergeOfDistinctBodies) {
  Program P;
  Module &M = P.addModule("m");
  addCfgFn(P, M, "a", 1, 2);
  addCfgFn(P, M, "c", 3, 4);
  TransformStats S = mergeIdenticalFunctions(P, M);
  EXPECT_EQ(S.FunctionsMerged, 0u);
  EXPECT_EQ(S.CodeSizeBefore, S.CodeSizeAfter);
}

TEST(IdiomOutlinerTest, OutlinesWhitelistedPairs) {
  Program P;
  uint32_t Release = P.internSymbol("swift_release");
  Module &M = P.addModule("m");
  for (int F = 0; F < 5; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X9, 100 + F);
    B.movrr(Reg::X0, Reg::X20);
    B.bl(Release);
    B.movri(Reg::X10, 200 + F);
    M.Functions.push_back(MF);
  }
  TransformStats S = idiomOutliner(P, M);
  EXPECT_EQ(S.FunctionsMerged, 1u); // One helper created.
  EXPECT_EQ(S.SequencesRewritten, 5u);
  EXPECT_GT(S.bytesSaved(), 0u);
  // Helper body: mov x0, x20; b.tail swift_release.
  const MachineFunction &H = M.Functions.back();
  EXPECT_TRUE(H.IsOutlined);
  ASSERT_EQ(H.numInstrs(), 2u);
  EXPECT_EQ(H.Blocks[0].Instrs[1].opcode(), Opcode::Btail);
}

TEST(IdiomOutlinerTest, IgnoresNonWhitelistedCalls) {
  Program P;
  uint32_t G = P.internSymbol("some_helper");
  Module &M = P.addModule("m");
  for (int F = 0; F < 5; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movrr(Reg::X0, Reg::X20);
    B.bl(G);
    M.Functions.push_back(MF);
  }
  TransformStats S = idiomOutliner(P, M);
  EXPECT_EQ(S.FunctionsMerged, 0u);
}

TEST(IdiomOutlinerTest, RespectsMinFrequency) {
  Program P;
  uint32_t Release = P.internSymbol("swift_release");
  Module &M = P.addModule("m");
  for (int F = 0; F < 2; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movrr(Reg::X0, Reg::X20);
    B.bl(Release);
    M.Functions.push_back(MF);
  }
  EXPECT_EQ(idiomOutliner(P, M, 3).FunctionsMerged, 0u);
}

TEST(MergeSimilarTest, MergesImmediateVariants) {
  Program P;
  Module &M = P.addModule("m");
  addCfgFn(P, M, "a", 10, 20);
  addCfgFn(P, M, "b", 30, 40);
  addCfgFn(P, M, "c", 50, 60);

  TransformStats S = mergeSimilarFunctions(P, M);
  EXPECT_EQ(S.FunctionsMerged, 3u);
  EXPECT_GT(S.bytesSaved(), 0u);

  // All three became thunks into one merged body; behaviour preserved.
  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("a"), ((10 + 20) ^ 10));
  EXPECT_EQ(I.call("b"), ((30 + 40) ^ 30));
  EXPECT_EQ(I.call("c"), ((50 + 60) ^ 50));
}

TEST(MergeSimilarTest, SkipsFunctionsWithCallsBeforeDiffs) {
  // If the immediates load after a call, x6/x7 would be clobbered; the
  // pass must skip such functions.
  Program P;
  uint32_t G = P.internSymbol("g");
  Module &M = P.addModule("m");
  auto Add = [&](const std::string &N, int64_t Imm) {
    MachineFunction MF;
    MF.Name = P.internSymbol(N);
    MIRBuilder B(MF.addBlock());
    B.strpre(LR, Reg::SP, -16);
    B.bl(G);
    B.movri(Reg::X9, Imm);
    B.addrr(Reg::X0, Reg::X0, Reg::X9);
    B.ldrpost(LR, Reg::SP, 16);
    B.ret();
    M.Functions.push_back(MF);
  };
  Add("a", 10);
  Add("b", 20);
  TransformStats S = mergeSimilarFunctions(P, M);
  EXPECT_EQ(S.FunctionsMerged, 0u);
}

TEST(MergeSimilarTest, SkipsBodiesMentioningParamRegs) {
  Program P;
  Module &M = P.addModule("m");
  auto Add = [&](const std::string &N, int64_t Imm) {
    MachineFunction MF;
    MF.Name = P.internSymbol(N);
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X9, Imm);
    B.movrr(Reg::X6, Reg::X9); // Mentions x6.
    B.addrr(Reg::X0, Reg::X6, Reg::X9);
    B.eorrr(Reg::X0, Reg::X0, Reg::X9);
    B.ret();
    M.Functions.push_back(MF);
  };
  Add("a", 10);
  Add("b", 20);
  EXPECT_EQ(mergeSimilarFunctions(P, M).FunctionsMerged, 0u);
}

TEST(MergeSimilarTest, RejectsThreeOrMoreDiffs) {
  Program P;
  Module &M = P.addModule("m");
  auto Add = [&](const std::string &N, int64_t A, int64_t B0, int64_t C) {
    MachineFunction MF;
    MF.Name = P.internSymbol(N);
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X9, A);
    B.movri(Reg::X10, B0);
    B.movri(Reg::X11, C);
    B.addrr(Reg::X0, Reg::X9, Reg::X10);
    B.addrr(Reg::X0, Reg::X0, Reg::X11);
    B.ret();
    M.Functions.push_back(MF);
  };
  Add("a", 1, 2, 3);
  Add("b", 4, 5, 6);
  EXPECT_EQ(mergeSimilarFunctions(P, M).FunctionsMerged, 0u);
}

TEST(DeadFunctionTest, RemovesUnreachable) {
  Program P;
  Module &M = P.addModule("m");
  addCfgFn(P, M, "root", 1, 2);
  addCfgFn(P, M, "reachable", 3, 4);
  addCfgFn(P, M, "dead", 5, 6);
  // root calls reachable.
  M.Functions[0].Blocks[0].Instrs.insert(
      M.Functions[0].Blocks[0].Instrs.begin(),
      MachineInstr(Opcode::BL,
                   MachineOperand::sym(P.lookupSymbol("reachable"))));

  TransformStats S = eliminateDeadFunctions(P, M, {"root"});
  EXPECT_EQ(S.FunctionsMerged, 1u); // One function removed.
  EXPECT_EQ(M.Functions.size(), 2u);
}

TEST(HotLayoutTest, SortsOutlinedByCallSites) {
  Program P;
  Module &M = P.addModule("m");
  auto AddOutlined = [&](const std::string &N, uint32_t Sites) {
    MachineFunction MF;
    MF.Name = P.internSymbol(N);
    MF.IsOutlined = true;
    MF.FrameKind = OutlinedFrameKind::AppendedRet;
    MF.OutlinedCallSites = Sites;
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X1, 1);
    B.ret();
    M.Functions.push_back(MF);
  };
  addCfgFn(P, M, "orig1", 1, 2);
  AddOutlined("out_cold", 2);
  addCfgFn(P, M, "orig2", 3, 4);
  AddOutlined("out_hot", 90);
  AddOutlined("out_warm", 10);

  uint64_t Before = M.codeSize();
  TransformStats S = layoutOutlinedByHotness(P, M);
  EXPECT_EQ(S.CodeSizeBefore, S.CodeSizeAfter);
  EXPECT_EQ(M.codeSize(), Before);
  EXPECT_EQ(S.SequencesRewritten, 3u);
  // Originals first, in order; outlined after, hottest first.
  ASSERT_EQ(M.Functions.size(), 5u);
  EXPECT_EQ(P.symbolName(M.Functions[0].Name), "orig1");
  EXPECT_EQ(P.symbolName(M.Functions[1].Name), "orig2");
  EXPECT_EQ(P.symbolName(M.Functions[2].Name), "out_hot");
  EXPECT_EQ(P.symbolName(M.Functions[3].Name), "out_warm");
  EXPECT_EQ(P.symbolName(M.Functions[4].Name), "out_cold");
}

TEST(CommutativeNormalizationTest, CanonicalizesAndEnablesOutlining) {
  // Two groups of functions whose bodies differ only in commuted operand
  // order: without normalization the outliner sees two patterns; with it,
  // one pattern with twice the occurrences.
  auto Build = [](bool Normalize) {
    Program P;
    Module &M = P.addModule("m");
    for (int F = 0; F < 6; ++F) {
      MachineFunction MF;
      MF.Name = P.internSymbol("f" + std::to_string(F));
      MIRBuilder B(MF.addBlock());
      B.movri(Reg::X9, 9000 + F); // Unique.
      if (F % 2 == 0) {
        B.addrr(Reg::X0, Reg::X1, Reg::X2);
        B.eorrr(Reg::X3, Reg::X4, Reg::X5);
        B.mulrr(Reg::X6, Reg::X7, Reg::X8);
      } else {
        B.addrr(Reg::X0, Reg::X2, Reg::X1);
        B.eorrr(Reg::X3, Reg::X5, Reg::X4);
        B.mulrr(Reg::X6, Reg::X8, Reg::X7);
      }
      M.Functions.push_back(MF);
    }
    if (Normalize) {
      TransformStats NS = normalizeCommutativeOperands(P, M);
      EXPECT_EQ(NS.CodeSizeBefore, NS.CodeSizeAfter);
      EXPECT_EQ(NS.SequencesRewritten, 9u); // Three ops in three odd fns.
    }
    OutlineRoundStats S = runOutlinerRound(P, M, 1);
    return std::pair<uint64_t, uint64_t>(S.bytesSaved(),
                                         S.FunctionsCreated);
  };
  auto [SavedPlain, FnPlain] = Build(false);
  auto [SavedNorm, FnNorm] = Build(true);
  // Normalized: one shared pattern with 6 occurrences beats two separate
  // 3-occurrence patterns in both bytes and function count.
  EXPECT_GT(SavedNorm, SavedPlain);
  EXPECT_LE(FnNorm, FnPlain + 1);
}

TEST(CommutativeNormalizationTest, PreservesExecutionSemantics) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X5, 100);
  B.movri(Reg::X3, 42);
  B.addrr(Reg::X0, Reg::X5, Reg::X3); // Sources out of canonical order.
  B.mulrr(Reg::X0, Reg::X0, Reg::X3);
  B.ret();
  M.Functions.push_back(MF);

  BinaryImage Before(P);
  int64_t Ref = Interpreter(Before, P).call("f");
  normalizeCommutativeOperands(P, M);
  BinaryImage After(P);
  EXPECT_EQ(Interpreter(After, P).call("f"), Ref);
  // The add's sources are now ordered x3, x5.
  EXPECT_EQ(M.Functions[0].Blocks[0].Instrs[2].operand(1).getReg(),
            Reg::X3);
}

TEST(DeadFunctionTest, ADRKeepsFunctionAlive) {
  Program P;
  Module &M = P.addModule("m");
  addCfgFn(P, M, "root", 1, 2);
  addCfgFn(P, M, "pointee", 3, 4);
  M.Functions[0].Blocks[0].Instrs.insert(
      M.Functions[0].Blocks[0].Instrs.begin(),
      MachineInstr(Opcode::ADR, MachineOperand::reg(Reg::X9),
                   MachineOperand::sym(P.lookupSymbol("pointee"))));
  TransformStats S = eliminateDeadFunctions(P, M, {"root"});
  EXPECT_EQ(S.FunctionsMerged, 0u);
}

} // namespace
