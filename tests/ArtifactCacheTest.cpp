//===- tests/ArtifactCacheTest.cpp - Artifact cache & crash-safe IO -------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Unit coverage for the crash-safe storage layer: CRC32C known answers,
/// the sealed-artifact envelope, atomic file writes, pid lock files with
/// stale-owner recovery, the MCOM binary module codec, and the
/// content-addressed artifact cache (hit/miss, corruption quarantine,
/// LRU eviction, concurrent same-key writers, injected corruption).
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"

#include "mir/MIRBuilder.h"
#include "objfile/ObjectFile.h"
#include "support/Checksum.h"
#include "support/FaultInjection.h"
#include "support/FileAtomics.h"
#include "gtest/gtest.h"

#include <csignal>
#include <filesystem>
#include <fstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

using namespace mco;
namespace fs = std::filesystem;

namespace {

/// Configures fault injection for one test and clears it on exit.
struct FaultScope {
  explicit FaultScope(const std::string &Spec) {
    Status S = FaultInjection::instance().configure(Spec);
    EXPECT_TRUE(S.ok()) << S.message();
  }
  ~FaultScope() { FaultInjection::instance().clear(); }
};

/// A fresh scratch directory per test, removed on teardown.
struct ScratchDir {
  fs::path P;
  explicit ScratchDir(const std::string &Name) {
    P = fs::temp_directory_path() /
        ("mco_cache_test_" + std::to_string(::getpid()) + "_" + Name);
    fs::remove_all(P);
    fs::create_directories(P);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(P, EC);
  }
  std::string str(const std::string &Leaf = "") const {
    return (Leaf.empty() ? P : P / Leaf).string();
  }
};

/// Builds a module exercising every serialized feature: symbol operands,
/// condition codes, immediates, block refs, outlining metadata, globals.
Module &makeRichModule(Program &Prog, const std::string &Name) {
  Module &M = Prog.addModule(Name);

  M.Functions.emplace_back();
  MachineFunction &F = M.Functions.back();
  F.Name = Prog.internSymbol("rich_main");
  F.OriginModule = 7;
  F.addBlock();
  F.addBlock();
  MIRBuilder B(F.Blocks[0]);
  B.movri(Reg::X0, 42);
  B.addri(Reg::X1, Reg::X0, -9);
  B.cmpri(Reg::X1, 0);
  B.cset(Reg::X2, Cond::HS);
  B.adr(Reg::X3, Prog.internSymbol("rich_data"));
  B.bl(Prog.internSymbol("rich_callee"));
  B.bcc(Cond::NE, 1);
  B.setBlock(F.Blocks[1]);
  B.ret();

  M.Functions.emplace_back();
  MachineFunction &G = M.Functions.back();
  G.Name = Prog.internSymbol("OUTLINED_0_0@" + Name);
  G.IsOutlined = true;
  G.FrameKind = OutlinedFrameKind::Thunk;
  G.OutlinedCallSites = 3;
  G.OriginModule = 7;
  MIRBuilder GB(G.addBlock());
  GB.movri(Reg::X9, 1);
  GB.btail(Prog.internSymbol("rich_callee"));

  M.Globals.emplace_back();
  GlobalData &D = M.Globals.back();
  D.Name = Prog.internSymbol("rich_data");
  D.Bytes = {0xde, 0xad, 0xbe, 0xef, 0x00};
  D.OriginModule = 7;
  return M;
}

RepeatedOutlineStats makeStats() {
  RepeatedOutlineStats St;
  St.Rounds.emplace_back();
  St.Rounds.back().SequencesOutlined = 11;
  St.Rounds.back().FunctionsCreated = 2;
  St.Rounds.back().CodeSizeBefore = 400;
  St.Rounds.back().CodeSizeAfter = 360;
  St.Rounds.emplace_back();
  St.Rounds.back().PatternsQuarantined = 1;
  St.Rounds.back().RoundsRolledBack = 4;
  return St;
}

SymbolNameFn nameFn(const Program &Prog) {
  return [&Prog](uint32_t Id) { return Prog.symbolName(Id); };
}

//===----------------------------------------------------------------------===//
// Checksums & the sealed envelope
//===----------------------------------------------------------------------===//

TEST(ChecksumTest, Crc32cKnownAnswer) {
  // The canonical CRC32C check value.
  EXPECT_EQ(Crc32c::of("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c::of(""), 0u);
}

TEST(ChecksumTest, Crc32cStreamingMatchesOneShot) {
  Crc32c C;
  C.update("1234");
  C.update("56789");
  EXPECT_EQ(C.value(), Crc32c::of("123456789"));
}

TEST(ChecksumTest, SealUnsealRoundTrip) {
  const std::string Payload("binary\0payload\nwith newlines", 28);
  Expected<std::string> Back = unsealArtifact(sealArtifact(Payload));
  ASSERT_TRUE(Back.ok()) << Back.status().message();
  EXPECT_EQ(*Back, Payload);
}

TEST(ChecksumTest, UnsealDetectsEveryMangling) {
  const std::string Sealed = sealArtifact("the payload");
  // Bad magic.
  EXPECT_FALSE(unsealArtifact("XXXX1 11 00000000\npayload").ok());
  // Truncations at every prefix length: a kill -9 mid-write can stop
  // anywhere (atomicWriteFile prevents this on the real path, but the
  // seal must stand on its own).
  for (size_t Len = 0; Len < Sealed.size(); ++Len)
    EXPECT_FALSE(unsealArtifact(Sealed.substr(0, Len)).ok()) << Len;
  // A single bit flip anywhere must be caught.
  for (size_t I = 0; I < Sealed.size(); ++I) {
    std::string Bad = Sealed;
    Bad[I] ^= 0x10;
    EXPECT_FALSE(unsealArtifact(Bad).ok()) << "flip at " << I;
  }
}

TEST(ChecksumTest, UnsealRejectsHostileHeaders) {
  // Table-driven header damage, one named case per envelope field. Every
  // rejection must be a clean CorruptInput Status, never an allocation
  // driven by the claimed size.
  const struct {
    const char *Name;
    const char *Input;
  } Cases[] = {
      {"empty", ""},
      {"magic only", "MCOA1 "},
      {"wrong magic", "MCOB1 3 00000000\nabc"},
      {"lowercase magic", "mcoa1 3 00000000\nabc"},
      {"no size digits", "MCOA1  00000000\nabc"},
      {"negative size", "MCOA1 -3 00000000\nabc"},
      {"size overflows u64", "MCOA1 99999999999999999999 00000000\nabc"},
      {"size inflated past payload", "MCOA1 4294967295 00000000\nabc"},
      {"size smaller than payload", "MCOA1 2 00000000\nabc"},
      {"crc not hex", "MCOA1 3 zzzzzzzz\nabc"},
      {"crc too short", "MCOA1 3 0000000\nabc"},
      {"missing space before crc", "MCOA1 3_00000000\nabc"},
      {"missing newline", "MCOA1 3 00000000 abc"},
      {"wrong crc", "MCOA1 3 deadbeef\nabc"},
  };
  for (const auto &C : Cases) {
    Expected<std::string> P = unsealArtifact(C.Input);
    EXPECT_FALSE(P.ok()) << C.Name;
    if (!P.ok())
      EXPECT_EQ(P.status().code(), StatusCode::CorruptInput) << C.Name;
  }
  // And the exact valid header still works, so the table above is testing
  // the fields, not some always-failing path.
  const std::string Ok = sealArtifact("abc");
  EXPECT_TRUE(unsealArtifact(Ok).ok());
}

//===----------------------------------------------------------------------===//
// Atomic files & locks
//===----------------------------------------------------------------------===//

TEST(FileAtomicsTest, AtomicWriteThenRead) {
  ScratchDir D("atomic");
  const std::string Path = D.str("file.bin");
  EXPECT_FALSE(fileExists(Path));
  ASSERT_TRUE(atomicWriteFile(Path, "first").ok());
  ASSERT_TRUE(fileExists(Path));
  // Replacement is in-place atomic: the path always reads complete bytes.
  ASSERT_TRUE(atomicWriteFile(Path, std::string("sec\0nd", 6)).ok());
  Expected<std::string> Back = readFileBytes(Path);
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(*Back, std::string("sec\0nd", 6));
  // No temp droppings left behind.
  size_t Entries = 0;
  for (const auto &E : fs::directory_iterator(D.P)) {
    (void)E;
    ++Entries;
  }
  EXPECT_EQ(Entries, 1u);
  EXPECT_TRUE(removeFileIfExists(Path).ok());
  EXPECT_TRUE(removeFileIfExists(Path).ok()); // Idempotent.
  EXPECT_FALSE(readFileBytes(Path).ok());
}

TEST(FileAtomicsTest, LockExcludesLiveOwnerAndReleases) {
  ScratchDir D("lock");
  const std::string Path = D.str("build.lock");
  // A lock held by a live foreign process must hold (pid 1 is always
  // alive; kill(1, 0) yields EPERM, which still means "exists"). A lock
  // recorded under our *own* pid is deliberately treated as stale — a
  // crashed earlier incarnation that recycled the pid — so it cannot be
  // used to test exclusion in-process.
  ASSERT_TRUE(atomicWriteFile(Path, "pid 1\n").ok());
  FileLock B;
  EXPECT_FALSE(B.acquire(Path).ok());
  EXPECT_FALSE(B.held());
  ASSERT_TRUE(removeFileIfExists(Path).ok());
  ASSERT_TRUE(B.acquire(Path).ok());
  EXPECT_TRUE(B.held());
  // Re-acquiring through an object that already holds is an error.
  EXPECT_FALSE(B.acquire(Path).ok());
  B.release();
  EXPECT_FALSE(B.held());
  FileLock C;
  EXPECT_TRUE(C.acquire(Path).ok());
}

TEST(FileAtomicsTest, LockRecoversDeadOwner) {
  ScratchDir D("stale");
  const std::string Path = D.str("build.lock");
  // Plant a lock whose owner pid cannot exist (beyond any pid_max).
  ASSERT_TRUE(atomicWriteFile(Path, "pid 536870911\n").ok());
  FileLock L;
  ASSERT_TRUE(L.acquire(Path).ok());
  EXPECT_EQ(L.staleLocksRecovered(), 1u);
}

TEST(FileAtomicsTest, LockStaleFaultSitePlantsAndRecovers) {
  ScratchDir D("stalefault");
  FaultScope F("cache.lock.stale:1");
  FileLock L;
  ASSERT_TRUE(L.acquire(D.str("build.lock")).ok());
  EXPECT_GE(L.staleLocksRecovered(), 1u);
}

TEST(FileAtomicsTest, StaleTakeoverRaceLosesCleanlyToConcurrentStealer) {
  // Regression: two clients observe the same dead-owner lock and both
  // start takeover. The unlink-based recovery this replaced let the
  // slower client delete the *winner's* fresh lock, leaving both holding.
  // The rename-steal protocol consumes exactly one stale incarnation, so
  // the loser must end with "held by live pid" and the winner's lock
  // intact on disk.
  ScratchDir D("steal_race");
  const std::string Path = D.str("writer.lock");
  const std::string Flag = D.str("child_holds");
  ASSERT_TRUE(atomicWriteFile(Path, "pid 536870911\n").ok());

  pid_t Child = -1;
  FileLock Loser;
  Loser.TestHookBeforeSteal = [&] {
    // Between "saw a stale owner" and our rename-steal, a rival process
    // completes the whole takeover and holds a live lock.
    Child = ::fork();
    if (Child == 0) {
      FileLock Winner;
      if (!Winner.acquire(Path).ok())
        ::_exit(3);
      if (!atomicWriteFile(Flag, "held\n").ok())
        ::_exit(4);
      for (;;) // Hold until the parent kills us.
        ::usleep(50 * 1000);
    }
    ASSERT_GT(Child, 0);
    for (int I = 0; I < 2000 && !fileExists(Flag); ++I)
      ::usleep(1000);
    ASSERT_TRUE(fileExists(Flag)) << "rival never acquired";
  };

  Status S = Loser.acquire(Path);
  ASSERT_FALSE(S.ok()) << "both clients hold the lock";
  EXPECT_FALSE(Loser.held());
  EXPECT_NE(S.message().find("held by live pid"), std::string::npos)
      << S.message();

  // The winner's lock survived the loser's rollback: the file still names
  // the (live) child, and no .stale.* intermediate leaked.
  Expected<std::string> Bytes = readFileBytes(Path);
  ASSERT_TRUE(Bytes.ok());
  EXPECT_EQ(*Bytes, "pid " + std::to_string(Child) + "\n");
  size_t StaleDroppings = 0;
  for (const auto &E : fs::directory_iterator(D.P))
    StaleDroppings +=
        E.path().filename().string().find(".stale.") != std::string::npos;
  EXPECT_EQ(StaleDroppings, 0u);

  // Once the winner dies, its lock is an ordinary dead-owner stale and
  // the loser's next acquire takes it over normally.
  ASSERT_GT(Child, 0);
  ::kill(Child, SIGKILL);
  int WStatus = 0;
  ::waitpid(Child, &WStatus, 0);
  FileLock Retry;
  ASSERT_TRUE(Retry.acquire(Path).ok());
  EXPECT_EQ(Retry.staleLocksRecovered(), 1u);
}

//===----------------------------------------------------------------------===//
// The MCOM codec
//===----------------------------------------------------------------------===//

TEST(ModuleArtifactTest, RoundTripPreservesEverything) {
  Program Prog;
  Module &M = makeRichModule(Prog, "m_rt");
  RepeatedOutlineStats St = makeStats();
  std::string Bytes = serializeModuleArtifact(M, St, 4, 1, nameFn(Prog));

  Program Fresh; // Different interner: ids must not leak through names.
  Fresh.internSymbol("occupy_id_0");
  Expected<ModuleArtifact> A = deserializeModuleArtifact(Bytes, Fresh);
  ASSERT_TRUE(A.ok()) << A.status().message();
  EXPECT_EQ(A->M.Name, "m_rt");
  ASSERT_EQ(A->M.Functions.size(), 2u);
  EXPECT_EQ(Fresh.symbolName(A->M.Functions[0].Name), "rich_main");
  const MachineFunction &G = A->M.Functions[1];
  EXPECT_TRUE(G.IsOutlined);
  EXPECT_EQ(G.FrameKind, OutlinedFrameKind::Thunk);
  EXPECT_EQ(G.OutlinedCallSites, 3u);
  EXPECT_EQ(G.OriginModule, 7u);
  ASSERT_EQ(A->M.Globals.size(), 1u);
  EXPECT_EQ(Fresh.symbolName(A->M.Globals[0].Name), "rich_data");
  EXPECT_EQ(A->M.Globals[0].Bytes,
            (std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef, 0x00}));
  ASSERT_EQ(A->Stats.Rounds.size(), 2u);
  EXPECT_EQ(A->Stats.Rounds[0].SequencesOutlined, 11u);
  EXPECT_EQ(A->Stats.Rounds[1].RoundsRolledBack, 4u);
  EXPECT_EQ(A->RoundsRolledBack, 4u);
  EXPECT_EQ(A->PatternsQuarantined, 1u);

  // Content serialization is id-independent: re-serializing from the
  // fresh program reproduces the original bytes.
  EXPECT_EQ(serializeModuleContent(A->M, nameFn(Fresh)),
            serializeModuleContent(M, nameFn(Prog)));
}

TEST(ModuleArtifactTest, CacheKeyTracksContentAndOptions) {
  Program Prog;
  Module &M = makeRichModule(Prog, "m_key");
  std::string K1 = cacheKey(M, nameFn(Prog), "opts-a");
  EXPECT_EQ(K1.size(), 32u);
  EXPECT_EQ(K1, cacheKey(M, nameFn(Prog), "opts-a"));
  EXPECT_NE(K1, cacheKey(M, nameFn(Prog), "opts-b"));
  M.Functions[0].Blocks[0].Instrs[0].operand(1) = MachineOperand::imm(43);
  EXPECT_NE(K1, cacheKey(M, nameFn(Prog), "opts-a"));
}

TEST(ModuleArtifactTest, DeserializeRejectsStructuralDamage) {
  Program Prog;
  Module &M = makeRichModule(Prog, "m_bad");
  std::string Bytes =
      serializeModuleArtifact(M, makeStats(), 0, 0, nameFn(Prog));
  // Truncation at any point must fail, never crash or mis-parse.
  for (size_t Len = 0; Len < Bytes.size(); Len += 3) {
    Program Fresh;
    EXPECT_FALSE(deserializeModuleArtifact(Bytes.substr(0, Len), Fresh).ok())
        << Len;
  }
}

//===----------------------------------------------------------------------===//
// The cache proper
//===----------------------------------------------------------------------===//

TEST(ArtifactCacheTest, MissThenStoreThenHit) {
  ScratchDir D("hitmiss");
  Program Prog;
  Module &M = makeRichModule(Prog, "m_c");
  const std::string Key = cacheKey(M, nameFn(Prog), "o");

  ArtifactCache C(D.str(), 1 << 20);
  ASSERT_TRUE(C.prepare().ok());
  EXPECT_EQ(C.load(Key, Prog).Outcome, ArtifactCache::LoadOutcome::Miss);
  ASSERT_TRUE(C.store(Key, M, makeStats(), 4, 1, nameFn(Prog)).ok());

  Program Fresh;
  ArtifactCache::LoadResult LR = C.load(Key, Fresh);
  ASSERT_EQ(LR.Outcome, ArtifactCache::LoadOutcome::Hit) << LR.Note;
  EXPECT_EQ(serializeModuleContent(LR.Artifact.M, nameFn(Fresh)),
            serializeModuleContent(M, nameFn(Prog)));
  EXPECT_EQ(LR.Artifact.RoundsRolledBack, 4u);
  EXPECT_EQ(C.hits(), 1u);
  EXPECT_EQ(C.misses(), 1u);
}

TEST(ArtifactCacheTest, BitFlipQuarantinesAndRebuilds) {
  ScratchDir D("flip");
  Program Prog;
  Module &M = makeRichModule(Prog, "m_f");
  const std::string Key = cacheKey(M, nameFn(Prog), "o");
  ArtifactCache C(D.str(), 1 << 20);
  ASSERT_TRUE(C.prepare().ok());
  ASSERT_TRUE(C.store(Key, M, {}, 0, 0, nameFn(Prog)).ok());

  // Flip one payload bit on disk.
  Expected<std::string> Raw = readFileBytes(C.objectPath(Key));
  ASSERT_TRUE(Raw.ok());
  std::string Bad = *Raw;
  Bad[Bad.size() / 2] ^= 0x01;
  ASSERT_TRUE(atomicWriteFile(C.objectPath(Key), Bad).ok());

  Program Fresh;
  ArtifactCache::LoadResult LR = C.load(Key, Fresh);
  EXPECT_EQ(LR.Outcome, ArtifactCache::LoadOutcome::Corrupt);
  EXPECT_FALSE(LR.Note.empty());
  EXPECT_EQ(C.corrupt(), 1u);
  // The damaged entry was moved aside: the next lookup is a clean miss,
  // and the evidence survives in quarantine/ for post-mortem.
  EXPECT_FALSE(fileExists(C.objectPath(Key)));
  EXPECT_EQ(C.load(Key, Fresh).Outcome, ArtifactCache::LoadOutcome::Miss);
  EXPECT_FALSE(fs::is_empty(C.quarantineDir()));
  // Storing again repairs the entry.
  ASSERT_TRUE(C.store(Key, M, {}, 0, 0, nameFn(Prog)).ok());
  EXPECT_EQ(C.load(Key, Fresh).Outcome, ArtifactCache::LoadOutcome::Hit);
}

TEST(ArtifactCacheTest, InjectedCorruptionIsDetected) {
  ScratchDir D("inject");
  Program Prog;
  Module &M = makeRichModule(Prog, "m_i");
  const std::string Key = cacheKey(M, nameFn(Prog), "o");
  ArtifactCache C(D.str(), 1 << 20);
  ASSERT_TRUE(C.prepare().ok());
  {
    FaultScope F("cache.entry.corrupt:1");
    ASSERT_TRUE(C.store(Key, M, {}, 0, 0, nameFn(Prog)).ok());
  }
  Program Fresh;
  EXPECT_EQ(C.load(Key, Fresh).Outcome, ArtifactCache::LoadOutcome::Corrupt);
}

TEST(ArtifactCacheTest, SealGarbleFaultIsDetectedAndQuarantined) {
  // artifact.seal.garble mangles the *envelope* mid-bytes (vs
  // cache.entry.corrupt, which flips a payload byte): the header/CRC
  // machinery itself is the thing under attack. The cache must classify
  // the entry corrupt and quarantine it like any other damage.
  ScratchDir D("garble");
  Program Prog;
  Module &M = makeRichModule(Prog, "m_g");
  const std::string Key = cacheKey(M, nameFn(Prog), "o");
  ArtifactCache C(D.str(), 1 << 20);
  ASSERT_TRUE(C.prepare().ok());
  {
    FaultScope F("artifact.seal.garble:1");
    ASSERT_TRUE(C.store(Key, M, {}, 0, 0, nameFn(Prog)).ok());
  }
  Program Fresh;
  EXPECT_EQ(C.load(Key, Fresh).Outcome, ArtifactCache::LoadOutcome::Corrupt);
  EXPECT_TRUE(fs::exists(fs::path(D.str()) / "quarantine"));
  EXPECT_FALSE(fs::is_empty(fs::path(D.str()) / "quarantine"));
  // A re-store with the fault gone heals the entry (quarantine-and-
  // rebuild, not fail-forever).
  ASSERT_TRUE(C.store(Key, M, {}, 0, 0, nameFn(Prog)).ok());
  Program Fresh2;
  EXPECT_EQ(C.load(Key, Fresh2).Outcome, ArtifactCache::LoadOutcome::Hit);
}

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsedPastLimit) {
  ScratchDir D("evict");
  Program Prog;
  Module &M = makeRichModule(Prog, "m_e");
  const SymbolNameFn NameOf = nameFn(Prog);
  // Each sealed entry is a few hundred bytes (the cache stores sealed
  // MCOB1 containers); cap the store at roughly two entries so the third
  // store must evict.
  const uint64_t EntryBytes =
      sealArtifact(serializeObjectFile(M, {}, 0, 0, NameOf)).size();
  ArtifactCache C(D.str(), EntryBytes * 2 + EntryBytes / 2);
  ASSERT_TRUE(C.prepare().ok());

  ASSERT_TRUE(C.store("a" + std::string(31, '0'), M, {}, 0, 0, NameOf).ok());
  // Backdate entry "a" so it is unambiguously the LRU victim.
  fs::last_write_time(C.objectPath("a" + std::string(31, '0')),
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(2));
  ASSERT_TRUE(C.store("b" + std::string(31, '0'), M, {}, 0, 0, NameOf).ok());
  ASSERT_TRUE(C.store("c" + std::string(31, '0'), M, {}, 0, 0, NameOf).ok());

  EXPECT_GE(C.evicted(), 1u);
  EXPECT_FALSE(fileExists(C.objectPath("a" + std::string(31, '0'))));
  EXPECT_TRUE(fileExists(C.objectPath("c" + std::string(31, '0'))));
}

TEST(ArtifactCacheTest, ConcurrentSameKeyWritersAreSafe) {
  ScratchDir D("race");
  Program Prog;
  Module &M = makeRichModule(Prog, "m_r");
  const SymbolNameFn NameOf = nameFn(Prog);
  const std::string Key = cacheKey(M, NameOf, "o");
  ArtifactCache C(D.str(), 1 << 20);
  ASSERT_TRUE(C.prepare().ok());

  // Same-key stores are bit-identical by construction; whatever
  // interleaving of temp writes and renames happens, the final file must
  // be a complete, valid entry.
  std::vector<std::thread> Ws;
  for (int T = 0; T < 8; ++T)
    Ws.emplace_back([&] {
      for (int Rep = 0; Rep < 8; ++Rep)
        EXPECT_TRUE(C.store(Key, M, {}, 0, 0, NameOf).ok());
    });
  for (std::thread &W : Ws)
    W.join();

  Program Fresh;
  ArtifactCache::LoadResult LR = C.load(Key, Fresh);
  ASSERT_EQ(LR.Outcome, ArtifactCache::LoadOutcome::Hit) << LR.Note;
  EXPECT_EQ(serializeModuleContent(LR.Artifact.M, nameFn(Fresh)),
            serializeModuleContent(M, NameOf));
}

} // namespace
