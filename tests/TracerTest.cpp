//===- tests/TracerTest.cpp - Tracer + metrics registry tests -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"
#include "telemetry/Tracer.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace mco;

namespace {

/// Every test owns the process-global tracer/registry for its duration and
/// leaves both disabled/empty behind.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    Tracer::instance().disable();
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    Tracer::instance().disable();
    MetricsRegistry::global().reset();
  }
};

TEST_F(TelemetryTest, DisabledSpansAreNoOps) {
  const uint64_t Before = Tracer::instance().eventsRecorded();
  {
    MCO_TRACE_SPAN("should.not.record", "test");
    MCO_TRACE_SPAN(std::string("also.not.recorded"), "test");
  }
  EXPECT_EQ(Tracer::instance().eventsRecorded(), Before);
}

TEST_F(TelemetryTest, RecordsNestedScopedSpans) {
  Tracer &T = Tracer::instance();
  T.enable();
  {
    MCO_TRACE_SPAN("outer", "test");
    { MCO_TRACE_SPAN("inner", "test"); }
  }
  T.disable();

  std::vector<TraceEvent> Ev = T.snapshot();
  ASSERT_EQ(Ev.size(), 2u);
  // The inner span ends (and records) first.
  EXPECT_EQ(Ev[0].Name, "inner");
  EXPECT_EQ(Ev[1].Name, "outer");
  EXPECT_STREQ(Ev[0].Cat, "test");
  // The inner span nests inside the outer one on the monotonic clock.
  EXPECT_GE(Ev[0].StartNs, Ev[1].StartNs);
  EXPECT_LE(Ev[0].StartNs + Ev[0].DurNs, Ev[1].StartNs + Ev[1].DurNs);
}

TEST_F(TelemetryTest, RingKeepsNewestOnOverflow) {
  Tracer &T = Tracer::instance();
  T.enable(/*Capacity=*/8);
  for (int I = 0; I < 20; ++I)
    T.record("span" + std::to_string(I), "test", /*StartNs=*/I, /*DurNs=*/1);
  T.disable();

  EXPECT_EQ(T.eventsRecorded(), 20u);
  EXPECT_EQ(T.eventsDropped(), 12u);
  std::vector<TraceEvent> Ev = T.snapshot();
  ASSERT_EQ(Ev.size(), 8u);
  // The newest 8 survive, oldest first.
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Ev[I].Name, "span" + std::to_string(12 + I));
}

TEST_F(TelemetryTest, ThreadPoolFanOutRecordsEverySpan) {
  Tracer &T = Tracer::instance();
  T.enable();
  constexpr size_t N = 500;
  ThreadPool Pool(8);
  Pool.parallelFor(N, [](size_t I) {
    MCO_TRACE_SPAN("worker:" + std::to_string(I), "test");
  });
  T.disable();
  EXPECT_EQ(T.eventsRecorded(), N);
  EXPECT_EQ(T.snapshot().size(), N);
}

TEST_F(TelemetryTest, ChromeJsonIsWellFormedAndStable) {
  Tracer &T = Tracer::instance();
  T.enable();
  T.record("alpha", "test", 1000, 500);
  T.record("beta \"quoted\"\\", "test", 2000, 250);
  T.disable();

  const std::string J = T.toChromeJson();
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"alpha\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  // Escaping: the quote and backslash must not leak raw into the JSON.
  EXPECT_NE(J.find("beta \\\"quoted\\\"\\\\"), std::string::npos);
  // Same buffer renders byte-identically.
  EXPECT_EQ(J, T.toChromeJson());
}

TEST_F(TelemetryTest, ExportWritesTraceFile) {
  Tracer &T = Tracer::instance();
  T.enable();
  { MCO_TRACE_SPAN("exported", "test"); }
  T.disable();

  const std::string Path = ::testing::TempDir() + "tracer_export.trace.json";
  ASSERT_TRUE(T.exportChromeJson(Path).ok());
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), T.toChromeJson());
  std::remove(Path.c_str());
}

TEST_F(TelemetryTest, CounterAddSetAndAbsentReads) {
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("test.events").add();
  M.counter("test.events").add(4);
  EXPECT_EQ(M.counterValue("test.events"), 5u);
  // set() overwrites live increments — authoritative totals win.
  M.counter("test.events").set(2);
  EXPECT_EQ(M.counterValue("test.events"), 2u);
  // Absent counters read as zero, not as an error.
  EXPECT_EQ(M.counterValue("test.never_touched"), 0u);
}

TEST_F(TelemetryTest, LabelsDistinguishSeriesAndAreOrderInsensitive) {
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("test.hits", {{"module", "a"}}).add(1);
  M.counter("test.hits", {{"module", "b"}}).add(2);
  EXPECT_EQ(M.counterValue("test.hits", {{"module", "a"}}), 1u);
  EXPECT_EQ(M.counterValue("test.hits", {{"module", "b"}}), 2u);
  EXPECT_EQ(M.counterValue("test.hits"), 0u); // Unlabeled is its own series.

  M.counter("test.pair", {{"x", "1"}, {"y", "2"}}).add(7);
  EXPECT_EQ(M.counterValue("test.pair", {{"y", "2"}, {"x", "1"}}), 7u);
}

TEST_F(TelemetryTest, HistogramPercentilesAndGauges) {
  MetricsRegistry &M = MetricsRegistry::global();
  Histogram &H = M.histogram("test.latency");
  for (int I = 1; I <= 100; ++I)
    H.observe(double(I));
  EXPECT_EQ(H.count(), 100u);
  EXPECT_DOUBLE_EQ(H.min(), 1.0);
  EXPECT_DOUBLE_EQ(H.max(), 100.0);
  EXPECT_NEAR(H.percentile(50), 50.5, 1.0);
  EXPECT_NEAR(H.percentile(95), 95.0, 1.5);
  EXPECT_DOUBLE_EQ(H.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(H.percentile(100), 100.0);

  M.gauge("test.seconds").set(1.25);
  EXPECT_DOUBLE_EQ(M.gauge("test.seconds").value(), 1.25);
}

TEST_F(TelemetryTest, ConcurrentCounterAddsAreExact) {
  MetricsRegistry &M = MetricsRegistry::global();
  Counter &C = M.counter("test.concurrent");
  constexpr size_t N = 10000;
  ThreadPool Pool(8);
  Pool.parallelFor(N, [&](size_t) { C.add(); });
  EXPECT_EQ(C.value(), N);
}

TEST_F(TelemetryTest, JsonExportIsSortedAndResetDropsAll) {
  MetricsRegistry &M = MetricsRegistry::global();
  // Insert deliberately out of order; export must sort by name.
  M.counter("test.zebra").add(1);
  M.counter("test.apple").add(2);
  M.gauge("test.mid").set(3);
  const std::string J = M.toJson();
  const size_t A = J.find("test.apple");
  const size_t Z = J.find("test.zebra");
  ASSERT_NE(A, std::string::npos);
  ASSERT_NE(Z, std::string::npos);
  EXPECT_LT(A, Z);
  EXPECT_EQ(J, M.toJson());

  M.reset();
  EXPECT_EQ(M.counterValue("test.zebra"), 0u);
  EXPECT_EQ(M.toJson().find("test.apple"), std::string::npos);
}

} // namespace
