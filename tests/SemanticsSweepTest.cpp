//===- tests/SemanticsSweepTest.cpp - ISA semantic edge cases -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Parameterized sweeps over the ISA's tricky semantic corners: AArch64
/// division conventions, NZCV flag computation for every condition code,
/// conditional select/set, and shift masking. These pin the interpreter's
/// contract so the differential fuzzers can trust it as an oracle.
///
//===----------------------------------------------------------------------===//

#include "mir/MIRBuilder.h"
#include "linker/Linker.h"
#include "sim/Interpreter.h"
#include "gtest/gtest.h"

#include <climits>

using namespace mco;

namespace {

/// Runs a tiny function computing one operation over two arguments.
int64_t runBinop(Opcode Op, int64_t A, int64_t B0) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  switch (Op) {
  case Opcode::SDIVrr:
    B.sdivrr(Reg::X0, Reg::X0, Reg::X1);
    break;
  case Opcode::LSLrr:
    B.lslrr(Reg::X0, Reg::X0, Reg::X1);
    break;
  case Opcode::ASRrr:
    B.asrrr(Reg::X0, Reg::X0, Reg::X1);
    break;
  case Opcode::MULrr:
    B.mulrr(Reg::X0, Reg::X0, Reg::X1);
    break;
  default:
    ADD_FAILURE() << "unsupported op in helper";
  }
  B.ret();
  M.Functions.push_back(MF);
  BinaryImage Img(P);
  Interpreter I(Img, P);
  return I.call("f", {A, B0});
}

TEST(SemanticsTest, DivisionByZeroYieldsZero) {
  EXPECT_EQ(runBinop(Opcode::SDIVrr, 42, 0), 0);
  EXPECT_EQ(runBinop(Opcode::SDIVrr, -42, 0), 0);
  EXPECT_EQ(runBinop(Opcode::SDIVrr, 0, 0), 0);
}

TEST(SemanticsTest, DivisionOverflowWraps) {
  // INT64_MIN / -1 == INT64_MIN on AArch64 (no trap).
  EXPECT_EQ(runBinop(Opcode::SDIVrr, INT64_MIN, -1), INT64_MIN);
}

TEST(SemanticsTest, SignedDivisionTruncatesTowardZero) {
  EXPECT_EQ(runBinop(Opcode::SDIVrr, 7, 2), 3);
  EXPECT_EQ(runBinop(Opcode::SDIVrr, -7, 2), -3);
  EXPECT_EQ(runBinop(Opcode::SDIVrr, 7, -2), -3);
  EXPECT_EQ(runBinop(Opcode::SDIVrr, -7, -2), 3);
}

TEST(SemanticsTest, ShiftAmountsMaskTo64) {
  EXPECT_EQ(runBinop(Opcode::LSLrr, 1, 65), 2);  // 65 & 63 == 1.
  EXPECT_EQ(runBinop(Opcode::LSLrr, 1, 64), 1);  // 64 & 63 == 0.
  EXPECT_EQ(runBinop(Opcode::ASRrr, -8, 66), -2);
}

TEST(SemanticsTest, MulWrapsModulo64) {
  EXPECT_EQ(runBinop(Opcode::MULrr, INT64_MAX, 2), -2);
}

/// (cond, a, b, expected-taken) rows for the condition sweep.
struct CondCase {
  Cond C;
  int64_t A;
  int64_t B;
  bool Taken;
};

class CondSweepTest : public ::testing::TestWithParam<CondCase> {};

TEST_P(CondSweepTest, CSETMatchesComparison) {
  const CondCase &TC = GetParam();
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.cmprr(Reg::X0, Reg::X1);
  B.cset(Reg::X0, TC.C);
  B.ret();
  M.Functions.push_back(MF);
  BinaryImage Img(P);
  Interpreter I(Img, P);
  EXPECT_EQ(I.call("f", {TC.A, TC.B}), TC.Taken ? 1 : 0)
      << condName(TC.C) << " " << TC.A << " vs " << TC.B;
}

TEST_P(CondSweepTest, BccTakesTheSameDecision) {
  const CondCase &TC = GetParam();
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B0(MF.addBlock());
  B0.cmprr(Reg::X0, Reg::X1);
  B0.bcc(TC.C, 2);
  B0.b(1);
  MIRBuilder B1(MF.addBlock());
  B1.movri(Reg::X0, 0);
  B1.ret();
  MIRBuilder B2(MF.addBlock());
  B2.movri(Reg::X0, 1);
  B2.ret();
  M.Functions.push_back(MF);
  BinaryImage Img(P);
  Interpreter I(Img, P);
  EXPECT_EQ(I.call("f", {TC.A, TC.B}), TC.Taken ? 1 : 0)
      << condName(TC.C) << " " << TC.A << " vs " << TC.B;
}

TEST_P(CondSweepTest, CSELSelectsAccordingly) {
  const CondCase &TC = GetParam();
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X2, 111);
  B.movri(Reg::X3, 222);
  B.cmprr(Reg::X0, Reg::X1);
  B.csel(Reg::X0, Reg::X2, Reg::X3, TC.C);
  B.ret();
  M.Functions.push_back(MF);
  BinaryImage Img(P);
  Interpreter I(Img, P);
  EXPECT_EQ(I.call("f", {TC.A, TC.B}), TC.Taken ? 111 : 222);
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, CondSweepTest,
    ::testing::Values(
        // EQ / NE.
        CondCase{Cond::EQ, 5, 5, true}, CondCase{Cond::EQ, 5, 6, false},
        CondCase{Cond::NE, 5, 6, true}, CondCase{Cond::NE, 5, 5, false},
        // Signed orderings, incl. overflow-sensitive pairs.
        CondCase{Cond::LT, -1, 0, true}, CondCase{Cond::LT, 0, -1, false},
        CondCase{Cond::LT, INT64_MIN, INT64_MAX, true},
        CondCase{Cond::GT, INT64_MAX, INT64_MIN, true},
        CondCase{Cond::LE, 3, 3, true}, CondCase{Cond::LE, 4, 3, false},
        CondCase{Cond::GE, 3, 3, true}, CondCase{Cond::GE, 2, 3, false},
        // Unsigned orderings: -1 is the largest unsigned value.
        CondCase{Cond::LO, 0, -1, true}, CondCase{Cond::LO, -1, 0, false},
        CondCase{Cond::HS, -1, 0, true}, CondCase{Cond::HS, 0, 1, false},
        CondCase{Cond::HS, 7, 7, true}),
    [](const ::testing::TestParamInfo<CondCase> &Info) {
      return std::string(condName(Info.param.C)) + "_" +
             std::to_string(Info.index);
    });

} // namespace
