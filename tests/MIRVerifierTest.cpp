//===- tests/MIRVerifierTest.cpp - Machine verifier tests -----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/MIRVerifier.h"

#include "mir/MIRBuilder.h"
#include "outliner/MachineOutliner.h"
#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

using MO = MachineOperand;

MachineFunction simpleFn(Program &P, const std::string &Name) {
  MachineFunction MF;
  MF.Name = P.internSymbol(Name);
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X0, 1);
  B.ret();
  return MF;
}

TEST(MIRVerifierTest, AcceptsWellFormedFunction) {
  Program P;
  MachineFunction MF = simpleFn(P, "f");
  EXPECT_EQ(verifyFunction(P, MF), "");
}

TEST(MIRVerifierTest, RejectsEmptyFunction) {
  Program P;
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  EXPECT_NE(verifyFunction(P, MF), "");
}

TEST(MIRVerifierTest, RejectsWrongOperandCount) {
  Program P;
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MF.addBlock().push(MachineInstr(Opcode::MOVri, MO::reg(Reg::X0)));
  EXPECT_NE(verifyFunction(P, MF), "");
}

TEST(MIRVerifierTest, RejectsWrongOperandKind) {
  Program P;
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MF.addBlock().push(
      MachineInstr(Opcode::MOVri, MO::imm(1), MO::imm(2)));
  EXPECT_NE(verifyFunction(P, MF), "");
}

TEST(MIRVerifierTest, RejectsBadBranchTarget) {
  Program P;
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.b(5);
  EXPECT_NE(verifyFunction(P, MF), "");
}

TEST(MIRVerifierTest, RejectsUnreachableTail) {
  Program P;
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.ret();
  B.movri(Reg::X0, 1); // Dead.
  EXPECT_NE(verifyFunction(P, MF), "");
}

TEST(MIRVerifierTest, ChecksOutlinedFrameShapes) {
  Program P;
  MachineFunction MF = simpleFn(P, "OUTLINED_FUNCTION_1_0");
  MF.IsOutlined = true;
  MF.FrameKind = OutlinedFrameKind::NotOutlined; // Inconsistent.
  EXPECT_NE(verifyFunction(P, MF), "");
  MF.FrameKind = OutlinedFrameKind::AppendedRet; // Ends with RET: fine.
  EXPECT_EQ(verifyFunction(P, MF), "");
  MF.FrameKind = OutlinedFrameKind::Thunk; // Must end with Btail.
  EXPECT_NE(verifyFunction(P, MF), "");
}

TEST(MIRVerifierTest, SymbolResolutionCatchesDanglingCalls) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.strpre(LR, Reg::SP, -16);
  B.bl(P.internSymbol("missing_function"));
  B.ldrpost(LR, Reg::SP, 16);
  B.ret();
  M.Functions.push_back(MF);
  VerifyOptions Opts;
  Opts.CheckSymbolResolution = true;
  EXPECT_NE(verifyModule(P, M, Opts), "");
}

TEST(MIRVerifierTest, RuntimeBuiltinsResolve) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.strpre(LR, Reg::SP, -16);
  B.bl(P.internSymbol("swift_retain"));
  B.ldrpost(LR, Reg::SP, 16);
  B.ret();
  M.Functions.push_back(MF);
  VerifyOptions Opts;
  Opts.CheckSymbolResolution = true;
  EXPECT_EQ(verifyModule(P, M, Opts), "");
}

TEST(MIRVerifierTest, WholeSynthesizedAppVerifies) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 20;
  auto Prog = CorpusSynthesizer(P).generate();
  for (const auto &M : Prog->Modules)
    EXPECT_EQ(verifyModule(*Prog, *M), "") << M->Name;
}

TEST(MIRVerifierTest, AppVerifiesAfterEveryOutliningRound) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 12;
  auto Prog = CorpusSynthesizer(P).generate();
  Module &Linked = linkProgram(*Prog);
  VerifyOptions Opts;
  Opts.CheckSymbolResolution = true;
  ASSERT_EQ(verifyModule(*Prog, Linked, Opts), "");
  for (unsigned Round = 1; Round <= 5; ++Round) {
    runOutlinerRound(*Prog, Linked, Round);
    ASSERT_EQ(verifyModule(*Prog, Linked, Opts), "")
        << "after round " << Round;
  }
}

} // namespace
