//===- tests/FormatFuzzTest.cpp - Deterministic corruption fuzzing --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The corruption-fuzz harness for every persisted format: MCOA1 sealed
/// artifacts, MCOM cache payloads, `.mcoj` CRC journals (build + request),
/// `mco-rpc-v1` frames, `mco-traces-v1` profiles, and textual `.mir`.
///
/// For each format the harness takes one known-valid specimen and derives
/// thousands of corrupted inputs with four seeded-xorshift mutators:
///
///   - truncate at EVERY byte boundary (a kill -9 mid-write stops anywhere),
///   - random single/multi bit flips,
///   - length-field inflation (4-byte windows overwritten with huge values),
///   - splicing two valid files at random split points.
///
/// The contract under test is uniform: every loader must return a clean
/// Status/Expected/ParseResult or its documented degradation (journals keep
/// the intact prefix) — never crash, hang, or trip a sanitizer. No case
/// asserts on parse *success*: a mutation can land in don't-care bytes and
/// still decode, which is fine; what must never happen is an abort.
///
/// Everything is a pure function of the seed — no wall clock, no pid, no
/// filesystem in the hot loop — so a failure reproduces exactly.
/// MCO_FUZZ_ITERS overrides the per-mutator random-case count (default
/// 1500; truncation sweeps are always exhaustive).
///
/// The same file carries the exit-code discipline tests: they spawn the
/// real tools against corrupt/absent/misused inputs and assert the
/// sysexits-style codes (64 usage, 65 corrupt input, 70 internal,
/// 75 transient) from support/ExitCodes.h.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "daemon/Rpc.h"
#include "linker/StartupTrace.h"
#include "mir/MIRBuilder.h"
#include "mir/MIRParser.h"
#include "mir/MIRPrinter.h"
#include "objfile/ObjectFile.h"
#include "pipeline/BuildJournal.h"
#include "sim/HeatProfile.h"
#include "support/Checksum.h"
#include "support/ExitCodes.h"
#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace mco;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Deterministic randomness
//===----------------------------------------------------------------------===//

/// xorshift64*: tiny, seeded, and identical on every platform — the whole
/// harness is a pure function of these streams.
struct Xorshift {
  uint64_t State;
  explicit Xorshift(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1D;
  }
  /// Uniform in [0, Bound); Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }
};

size_t fuzzIters() {
  if (const char *Env = std::getenv("MCO_FUZZ_ITERS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V > 0)
      return static_cast<size_t>(V);
  }
  return 1500;
}

//===----------------------------------------------------------------------===//
// The four mutators
//===----------------------------------------------------------------------===//

/// Feeds every corrupted input derived from \p Specimen (and a second
/// valid \p Other for splicing) to \p Consume. The consumer's only
/// obligation is to return; whatever it returns is legal.
void fuzzFormat(const std::string &Specimen, const std::string &Other,
                uint64_t Seed,
                const std::function<void(const std::string &)> &Consume) {
  ASSERT_FALSE(Specimen.empty());
  const size_t Iters = fuzzIters();

  // 1. Truncation at every byte boundary, exhaustively (including empty).
  for (size_t Len = 0; Len <= Specimen.size(); ++Len)
    Consume(Specimen.substr(0, Len));

  // 2. Bit flips: 1..4 random flips per case.
  {
    Xorshift R(Seed ^ 0xB17F11B5);
    for (size_t I = 0; I < Iters; ++I) {
      std::string Bad = Specimen;
      const size_t Flips = 1 + R.below(4);
      for (size_t F = 0; F < Flips; ++F)
        Bad[R.below(Bad.size())] ^= static_cast<char>(1u << R.below(8));
      Consume(Bad);
    }
  }

  // 3. Length-field inflation: overwrite a 4-byte window with an extreme
  // value. When the window lands on a length/count field this is the
  // classic hostile-header case; when it lands elsewhere it is garbage
  // the parsers must also survive.
  {
    Xorshift R(Seed ^ 0x1E46F1E1D);
    static const uint32_t Extremes[] = {0xFFFFFFFFu, 0x7FFFFFFFu,
                                        0x00FFFFFFu, 0x80000000u};
    for (size_t I = 0; I < Iters; ++I) {
      std::string Bad = Specimen;
      if (Bad.size() < 4)
        break;
      const size_t At = R.below(Bad.size() - 3);
      const uint32_t V = Extremes[R.below(4)];
      for (int B = 0; B < 4; ++B)
        Bad[At + B] = static_cast<char>((V >> (8 * B)) & 0xFF);
      Consume(Bad);
    }
  }

  // 4. Splice two valid files: prefix of one + suffix of the other. Both
  // halves carry internally-consistent bytes, so this defeats parsers
  // that only sanity-check locally.
  {
    Xorshift R(Seed ^ 0x5F11CE00);
    for (size_t I = 0; I < Iters; ++I) {
      const size_t CutA = R.below(Specimen.size() + 1);
      const size_t CutB = R.below(Other.size() + 1);
      Consume(Specimen.substr(0, CutA) + Other.substr(CutB));
    }
  }
}

//===----------------------------------------------------------------------===//
// Specimens
//===----------------------------------------------------------------------===//

/// A module exercising every serialized feature (mirrors the cache tests'
/// rich module): symbols, condition codes, immediates, block refs,
/// outlined functions with frame kinds, globals.
Module &makeRichModule(Program &Prog, const std::string &Name) {
  Module &M = Prog.addModule(Name);
  M.Functions.emplace_back();
  MachineFunction &F = M.Functions.back();
  F.Name = Prog.internSymbol("fuzz_main");
  F.OriginModule = 3;
  F.addBlock();
  F.addBlock();
  MIRBuilder B(F.Blocks[0]);
  B.movri(Reg::X0, 42);
  B.addri(Reg::X1, Reg::X0, -9);
  B.cmpri(Reg::X1, 0);
  B.cset(Reg::X2, Cond::HS);
  B.adr(Reg::X3, Prog.internSymbol("fuzz_data"));
  B.bl(Prog.internSymbol("fuzz_callee"));
  B.bcc(Cond::NE, 1);
  B.setBlock(F.Blocks[1]);
  B.ret();

  M.Functions.emplace_back();
  MachineFunction &G = M.Functions.back();
  G.Name = Prog.internSymbol("OUTLINED_0_0@" + Name);
  G.IsOutlined = true;
  G.FrameKind = OutlinedFrameKind::Thunk;
  G.OutlinedCallSites = 2;
  MIRBuilder GB(G.addBlock());
  GB.movri(Reg::X9, 1);
  GB.btail(Prog.internSymbol("fuzz_callee"));

  M.Globals.emplace_back();
  GlobalData &D = M.Globals.back();
  D.Name = Prog.internSymbol("fuzz_data");
  D.Bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  return M;
}

std::string richArtifactBytes(const std::string &Name) {
  Program Prog;
  Module &M = makeRichModule(Prog, Name);
  RepeatedOutlineStats St;
  St.Rounds.emplace_back();
  St.Rounds.back().SequencesOutlined = 5;
  St.Rounds.back().FunctionsCreated = 1;
  return serializeModuleArtifact(
      M, St, 1, 2, [&Prog](uint32_t Id) { return Prog.symbolName(Id); });
}

std::string richObjectBytes(const std::string &Name) {
  Program Prog;
  Module &M = makeRichModule(Prog, Name);
  RepeatedOutlineStats St;
  St.Rounds.emplace_back();
  St.Rounds.back().SequencesOutlined = 5;
  St.Rounds.back().FunctionsCreated = 1;
  // Export a name so the specimen carries a nonempty export trie — the
  // mutators then get to attack the trie's node layout too.
  const std::vector<std::string> Exports = {"fuzz_main"};
  return serializeObjectFile(
      M, St, 1, 2, [&Prog](uint32_t Id) { return Prog.symbolName(Id); },
      &Exports);
}

std::string journalLine(const std::string &Payload) {
  char Prefix[16];
  std::snprintf(Prefix, sizeof(Prefix), "%08x ", Crc32c::of(Payload));
  return Prefix + Payload + "\n";
}

std::string buildJournalSpecimen(const std::string &Fp, unsigned Modules) {
  std::string J =
      journalLine("mcoj1 " + Fp + " " + std::to_string(Modules) + " pm");
  for (unsigned I = 0; I < Modules; ++I) {
    if (I % 3 == 2)
      J += journalLine("degraded " + std::to_string(I) + " m" +
                       std::to_string(I));
    else
      J += journalLine("done " + std::to_string(I) + " " +
                       std::string(32, "0123456789abcdef"[I % 16]) + " m" +
                       std::to_string(I));
  }
  J += journalLine("end");
  return J;
}

std::string requestJournalSpecimen(unsigned N) {
  std::string J = journalLine("mcoreq1");
  for (unsigned I = 0; I < N; ++I) {
    const std::string Id = "req-" + std::to_string(I);
    J += journalLine("recv " + Id);
    if (I % 4 == 1)
      J += journalLine("done " + Id + (I % 2 ? " completed" : " degraded"));
    else if (I % 4 == 2)
      J += journalLine("failed " + Id);
  }
  return J;
}

RpcMessage rpcSpecimenMessage() {
  RpcMessage M;
  M.Type = "build";
  M.Str["id"] = "fuzz-req-1";
  M.Str["profile"] = "rider";
  M.Str["note"] = "quotes \" and \\ and\nnewlines";
  M.Int["modules"] = 24;
  M.Int["rounds"] = 3;
  M.Int["threads"] = -1;
  return M;
}

TraceProfile traceSpecimenProfile() {
  TraceProfile P;
  for (int I = 0; I < 12; ++I)
    P.functionId("traced_fn_" + std::to_string(I));
  for (uint32_t Dev = 0; Dev < 3; ++Dev) {
    DeviceTrace D;
    D.Device = Dev;
    for (uint32_t I = 0; I < 20; ++I)
      D.Entries.push_back((I * 7 + Dev) % 12);
    for (uint32_t I = 0; I + 1 < 12; ++I)
      D.Calls.push_back({I, I + 1, uint64_t(I) * 3 + 1});
    for (uint64_t Pg = 0; Pg < 6; ++Pg)
      D.PageTouches.push_back(Pg * (Dev + 1));
    D.TextFaults = 6;
    P.Devices.push_back(std::move(D));
  }
  return P;
}

std::string mirSpecimen() {
  Program Prog;
  Module &M = makeRichModule(Prog, "fuzz.mir");
  return printModule(M, Prog);
}

//===----------------------------------------------------------------------===//
// The per-format fuzz tests
//===----------------------------------------------------------------------===//

TEST(FormatFuzzTest, SealedArtifactEnvelope) {
  const std::string A = sealArtifact(richArtifactBytes("mod.a"));
  const std::string B = sealArtifact(std::string(200, 'x'));
  fuzzFormat(A, B, 0xA57E'FAC7, [](const std::string &Bytes) {
    Expected<std::string> P = unsealArtifact(Bytes);
    if (P.ok())
      (void)P->size();
  });
}

TEST(FormatFuzzTest, McomModulePayload) {
  const std::string A = richArtifactBytes("mod.a");
  const std::string B = richArtifactBytes("other.name");
  fuzzFormat(A, B, 0x3C0'3C0, [](const std::string &Bytes) {
    // The validator must never crash...
    (void)validateModuleArtifactBytes(Bytes);
    // ...and neither may the full decoder (which runs it first, then
    // builds objects — a second chance for anything that slipped past).
    Program Fresh;
    Expected<ModuleArtifact> A2 = deserializeModuleArtifact(Bytes, Fresh);
    if (A2.ok())
      (void)A2->M.codeSize();
  });
}

TEST(FormatFuzzTest, McobObjectContainer) {
  const std::string A = richObjectBytes("mod.a");
  const std::string B = richObjectBytes("other.name");
  fuzzFormat(A, B, 0x0B'1EC7, [](const std::string &Bytes) {
    // The structure-only validator must never crash...
    (void)validateObjectFileBytes(Bytes);
    // ...nor the semantic reader behind it (layout recomputation,
    // relocation coverage, export-trie verification)...
    Expected<LoadedObject> O = readObjectFile(Bytes);
    if (O.ok())
      (void)O->textVmSize();
    // ...nor the full loader that interns symbols and rebuilds a module.
    Program Fresh;
    Expected<ModuleArtifact> M = deserializeObjectFile(Bytes, Fresh);
    if (M.ok())
      (void)M->M.codeSize();
  });
}

TEST(FormatFuzzTest, BuildJournal) {
  const std::string A =
      buildJournalSpecimen(std::string(32, 'a'), /*Modules=*/10);
  const std::string B = buildJournalSpecimen(std::string(32, 'b'), 4);
  fuzzFormat(A, B, 0x10A6'4A1, [](const std::string &Bytes) {
    ResumeState RS = ResumeState::loadFromBytes(Bytes);
    // Documented degradation: whatever survived must be structurally
    // sound — in-range, duplicate-free indices.
    std::vector<bool> Seen(RS.NumModules, false);
    for (const auto &R : RS.Records) {
      ASSERT_LT(R.Idx, RS.NumModules);
      ASSERT_FALSE(Seen[R.Idx]) << "duplicate surviving record";
      Seen[R.Idx] = true;
    }
    if (!RS.Valid)
      ASSERT_TRUE(RS.Records.empty());
  });
}

TEST(FormatFuzzTest, RequestJournal) {
  const std::string A = requestJournalSpecimen(12);
  const std::string B = requestJournalSpecimen(3);
  fuzzFormat(A, B, 0x4E0'4E57, [](const std::string &Bytes) {
    RequestResumeState RS = RequestResumeState::loadFromBytes(Bytes);
    for (const std::string &Id : RS.Unfinished)
      ASSERT_FALSE(Id.empty());
    if (!RS.Valid) {
      ASSERT_TRUE(RS.Unfinished.empty());
      ASSERT_TRUE(RS.Finished.empty());
    }
  });
}

TEST(FormatFuzzTest, RpcMessageDecode) {
  const std::string A = encodeRpcMessage(rpcSpecimenMessage());
  RpcMessage SB;
  SB.Type = "result";
  SB.Str["id"] = "other";
  SB.Int["code_size"] = 123456;
  const std::string B = encodeRpcMessage(SB);
  fuzzFormat(A, B, 0x4BC'F4A3E, [](const std::string &Bytes) {
    Expected<RpcMessage> M = decodeRpcMessage(Bytes);
    // Anything that decodes must also satisfy the shape validator (decode
    // runs it, so a success here is a double-check it stayed wired).
    if (M.ok())
      ASSERT_TRUE(validateRpcMessage(*M).ok());
  });
}

TEST(FormatFuzzTest, TraceProfileJson) {
  const std::string A = traceProfileJson(traceSpecimenProfile());
  TraceProfile Small;
  Small.functionId("lone");
  DeviceTrace D;
  D.Entries.push_back(0);
  Small.Devices.push_back(D);
  const std::string B = traceProfileJson(Small);
  fuzzFormat(A, B, 0x7247'CE5, [](const std::string &Bytes) {
    Expected<TraceProfile> P = parseTraceProfile(Bytes);
    // Anything that parses must pass the id-range/caps validator.
    if (P.ok())
      ASSERT_TRUE(validateTraceProfile(*P).ok());
  });
}

TEST(FormatFuzzTest, HeatProfileJson) {
  HeatProfile Big;
  Big.Devices = 5;
  for (int I = 0; I < 14; ++I) {
    FunctionHeat F;
    F.Name = std::string("heat_fn_") + static_cast<char>('a' + I);
    F.Calls = uint64_t(I) * 11 + 1;
    F.Instrs = uint64_t(I) * 400 + 7;
    F.Cycles = uint64_t(I) * 150;
    Big.Functions.push_back(F);
  }
  // Names must be strictly ascending for the specimen to be valid.
  std::sort(Big.Functions.begin(), Big.Functions.end(),
            [](const FunctionHeat &A, const FunctionHeat &B) {
              return A.Name < B.Name;
            });
  const std::string A = heatProfileJson(Big);
  HeatProfile Small;
  Small.Devices = 1;
  Small.Functions.push_back({"lone", 1, 2, 3});
  const std::string B = heatProfileJson(Small);
  fuzzFormat(A, B, 0x6EA7'F00D, [](const std::string &Bytes) {
    Expected<HeatProfile> P = parseHeatProfile(Bytes);
    // Anything that parses must pass the caps/ordering validator.
    if (P.ok())
      ASSERT_TRUE(validateHeatProfile(*P).ok());
  });
}

TEST(FormatFuzzTest, MirText) {
  const std::string A = mirSpecimen();
  Program Prog2;
  Module &M2 = Prog2.addModule("tiny");
  M2.Functions.emplace_back();
  MachineFunction &F2 = M2.Functions.back();
  F2.Name = Prog2.internSymbol("tiny_fn");
  MIRBuilder B2(F2.addBlock());
  B2.movri(Reg::X0, 7);
  B2.ret();
  const std::string B = printModule(M2, Prog2);
  fuzzFormat(A, B, 0x312'7E27, [](const std::string &Bytes) {
    Program Fresh;
    ParseResult R = parseModule(Fresh, Bytes);
    if (R)
      (void)R.M->numInstrs();
  });
}

//===----------------------------------------------------------------------===//
// Exit-code discipline (spawns the real tools)
//===----------------------------------------------------------------------===//

struct ToolResult {
  int ExitCode = -1;
  bool Signaled = false;
};

ToolResult runTool(const std::string &Tool,
                   const std::vector<std::string> &Args) {
  pid_t Pid = ::fork();
  if (Pid == 0) {
    std::vector<std::string> All;
    All.push_back(Tool);
    All.insert(All.end(), Args.begin(), Args.end());
    std::vector<char *> Argv;
    for (std::string &S : All)
      Argv.push_back(S.data());
    Argv.push_back(nullptr);
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    ::execv(Tool.c_str(), Argv.data());
    ::_exit(127);
  }
  ToolResult R;
  int WStatus = 0;
  ::waitpid(Pid, &WStatus, 0);
  if (WIFEXITED(WStatus))
    R.ExitCode = WEXITSTATUS(WStatus);
  R.Signaled = WIFSIGNALED(WStatus);
  return R;
}

struct ScratchDir {
  fs::path P;
  explicit ScratchDir(const std::string &Name) {
    P = fs::temp_directory_path() /
        ("mco_fuzz_test_" + std::to_string(::getpid()) + "_" + Name);
    fs::remove_all(P);
    fs::create_directories(P);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(P, EC);
  }
  std::string str(const std::string &Leaf) const { return (P / Leaf).string(); }
  std::string file(const std::string &Leaf, const std::string &Bytes) const {
    const std::string Path = (P / Leaf).string();
    std::ofstream Out(Path, std::ios::binary);
    Out.write(Bytes.data(), std::streamsize(Bytes.size()));
    return Path;
  }
};

TEST(ExitCodeTest, UsageErrorsExit64) {
  EXPECT_EQ(runTool(MCO_RUN_TOOL_PATH, {}).ExitCode, ExitUsage);
  EXPECT_EQ(runTool(MCO_RUN_TOOL_PATH, {"/dev/null", "--no-such-flag"})
                .ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH, {"--no-such-flag"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH, {"--profile", "nope"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_CLIENT_TOOL_PATH, {"--bogus"}).ExitCode, ExitUsage);
  // Missing --socket is usage, too.
  EXPECT_EQ(runTool(MCO_CLIENT_TOOL_PATH, {"--ping"}).ExitCode, ExitUsage);
}

TEST(ExitCodeTest, CorruptInputsExit65) {
  ScratchDir D("exit65");
  // Missing file.
  EXPECT_EQ(runTool(MCO_RUN_TOOL_PATH, {D.str("nope.mir")}).ExitCode,
            ExitCorruptInput);
  // Unparseable MIR.
  const std::string BadMir = D.file("bad.mir", "func @x {\n  frobnicate\n");
  EXPECT_EQ(runTool(MCO_RUN_TOOL_PATH, {BadMir}).ExitCode, ExitCorruptInput);
  // A sealed artifact with a mangled payload byte: the seal must catch it
  // and the tool must say "corrupt input", not crash.
  std::string Sealed = sealArtifact(richArtifactBytes("mod.x"));
  Sealed[Sealed.size() / 2] ^= 0x01;
  const std::string BadMco = D.file("bad.mco", Sealed);
  EXPECT_EQ(runTool(MCO_RUN_TOOL_PATH, {BadMco}).ExitCode, ExitCorruptInput);
  // Valid seal, valid MCOM, but the entry point does not exist: still
  // invalid input, still 65 (and notably not an abort).
  const std::string GoodMco =
      D.file("good.mco", sealArtifact(richArtifactBytes("mod.x")));
  ToolResult R =
      runTool(MCO_RUN_TOOL_PATH, {GoodMco, "--entry", "no_such_entry"});
  EXPECT_FALSE(R.Signaled);
  EXPECT_EQ(R.ExitCode, ExitCorruptInput);
}

TEST(ExitCodeTest, HeatFlagsUsageErrorsExit64) {
  // --hot-threshold outside [0, 100] (or non-numeric) is a usage error.
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH, {"--hot-threshold", "101"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH, {"--hot-threshold", "-1"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH, {"--hot-threshold", "hot"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH, {"--hot-threshold"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH, {"--profile-heat"}).ExitCode,
            ExitUsage);
}

TEST(ExitCodeTest, HeatProfileCorruptInputsExit65) {
  ScratchDir D("heat65");
  // Missing file: the CLI validates --profile-heat up front.
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH,
                    {"--profile-heat", D.str("nope.json")})
                .ExitCode,
            ExitCorruptInput);
  // Unparseable JSON.
  const std::string Junk = D.file("junk.json", "not a heat profile");
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH, {"--profile-heat", Junk}).ExitCode,
            ExitCorruptInput);
  // Parses as JSON but violates the validator (names out of order).
  const std::string BadOrder = D.file(
      "order.json", "{\n  \"schema\": \"mco-heat-v1\",\n  \"devices\": 1,\n"
                    "  \"functions\": [\n    [\"zz\", 1, 1, 1],\n"
                    "    [\"aa\", 1, 1, 1]\n  ]\n}\n");
  EXPECT_EQ(
      runTool(MCO_BUILD_TOOL_PATH, {"--profile-heat", BadOrder}).ExitCode,
      ExitCorruptInput);
}

TEST(ExitCodeTest, InspectionToolUsageErrorsExit64) {
  EXPECT_EQ(runTool(MCO_NM_TOOL_PATH, {}).ExitCode, ExitUsage);
  EXPECT_EQ(runTool(MCO_NM_TOOL_PATH, {"--no-such-flag"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_NM_TOOL_PATH, {"a.mcob", "b.mcob"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_SIZE_TOOL_PATH, {}).ExitCode, ExitUsage);
  EXPECT_EQ(runTool(MCO_SIZE_TOOL_PATH, {"--no-such-flag"}).ExitCode,
            ExitUsage);
  EXPECT_EQ(runTool(MCO_SIZE_TOOL_PATH, {"a.mcob", "b.mcob"}).ExitCode,
            ExitUsage);
}

TEST(ExitCodeTest, InspectionToolCorruptInputsExit65) {
  ScratchDir D("nm65");
  const std::string Good = richObjectBytes("mod.ok");
  for (const char *Tool : {MCO_NM_TOOL_PATH, MCO_SIZE_TOOL_PATH}) {
    // Missing file.
    EXPECT_EQ(runTool(Tool, {D.str("nope.mcob")}).ExitCode,
              ExitCorruptInput);
    // Not a container at all.
    const std::string Junk = D.file("junk.bin", "definitely not MCOB1");
    EXPECT_EQ(runTool(Tool, {Junk}).ExitCode, ExitCorruptInput);
    // Truncated mid-container.
    const std::string Short =
        D.file("short.mcob", Good.substr(0, Good.size() / 2));
    EXPECT_EQ(runTool(Tool, {Short}).ExitCode, ExitCorruptInput);
    // A sealed container with a flipped payload byte: the seal's CRC is
    // the first line of defence, and the failure is still exit 65.
    std::string Sealed = sealArtifact(Good);
    Sealed[Sealed.size() / 2] ^= 0x01;
    const std::string BadSeal = D.file("badseal.mco", Sealed);
    ToolResult R = runTool(Tool, {BadSeal});
    EXPECT_FALSE(R.Signaled);
    EXPECT_EQ(R.ExitCode, ExitCorruptInput);
  }
}

TEST(ExitCodeTest, InspectionToolsExitZeroOnGoodContainers) {
  ScratchDir D("nm0");
  const std::string Bare = D.file("good.mcob", richObjectBytes("mod.ok"));
  const std::string Sealed =
      D.file("good.mco", sealArtifact(richObjectBytes("mod.ok")));
  for (const std::string &File : {Bare, Sealed}) {
    EXPECT_EQ(runTool(MCO_NM_TOOL_PATH, {File}).ExitCode, 0);
    EXPECT_EQ(runTool(MCO_NM_TOOL_PATH, {File, "--exports"}).ExitCode, 0);
    EXPECT_EQ(runTool(MCO_SIZE_TOOL_PATH, {File}).ExitCode, 0);
    EXPECT_EQ(runTool(MCO_SIZE_TOOL_PATH, {File, "--pages"}).ExitCode, 0);
  }
}

TEST(ExitCodeTest, TransientFailuresExit75) {
  ScratchDir D("exit75");
  // No daemon behind the socket: connect fails, retries exhaust, exit 75.
  EXPECT_EQ(runTool(MCO_CLIENT_TOOL_PATH,
                    {"--socket", D.str("no-daemon.sock"), "--id", "t1",
                     "--retries", "2"})
                .ExitCode,
            ExitTransient);
  EXPECT_EQ(runTool(MCO_CLIENT_TOOL_PATH,
                    {"--socket", D.str("no-daemon.sock"), "--ping"})
                .ExitCode,
            ExitTransient);
}

TEST(ExitCodeTest, InternalErrorsExit70) {
  ScratchDir D("exit70");
  // An unwritable output path is an environment problem: exit 70.
  EXPECT_EQ(runTool(MCO_BUILD_TOOL_PATH,
                    {"--modules", "2", "--rounds", "1", "--dump",
                     D.str("no") + "/such/dir/x.mir"})
                .ExitCode,
            ExitInternal);
}

} // namespace
