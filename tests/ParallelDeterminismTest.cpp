//===- tests/ParallelDeterminismTest.cpp - Engine bit-identity ------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The parallel/incremental engine's hard requirement: every configuration
/// (any thread count, incremental on or off) must produce *bit-identical*
/// output — same outlined function names, same order in M.Functions, same
/// stats, and even the same symbol id values (the Interleaved data layout
/// hashes ids, so name-level equality alone is not enough).
///
//===----------------------------------------------------------------------===//

#include "mir/MIRPrinter.h"
#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

using namespace mco;

namespace {

/// Full textual state of a program: every module's listing plus the symbol
/// table in id order (pins the id *values*, not just the names).
std::string snapshot(const Program &Prog) {
  std::string S;
  for (const auto &M : Prog.Modules)
    S += printModule(*M, Prog);
  S += "--- symbols ---\n";
  for (uint32_t I = 0; I < Prog.numSymbols(); ++I)
    S += std::to_string(I) + " " + Prog.symbolName(I) + "\n";
  return S;
}

AppProfile testProfile() {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 12;
  return P;
}

struct BuildOutput {
  std::string Snapshot;
  RepeatedOutlineStats Stats;
  uint64_t CodeSize = 0;
};

BuildOutput runBuild(bool WholeProgram, unsigned Threads, bool Incremental,
                     DiscoveryEngine Discovery = DiscoveryEngine::SuffixArray) {
  auto Prog = CorpusSynthesizer(testProfile()).withThreads(Threads).generate();
  PipelineOptions Opts;
  Opts.WholeProgram = WholeProgram;
  Opts.OutlineRounds = 5;
  Opts.Threads = Threads;
  Opts.Outliner.Incremental = Incremental;
  Opts.Outliner.Discovery = Discovery;
  BuildResult R = buildProgram(*Prog, Opts);
  return {snapshot(*Prog), R.OutlineStats, R.CodeSize};
}

/// Compares every round stat. The recompute counters (FunctionsRemapped,
/// LivenessComputed) are only comparable when both runs used the same
/// Incremental setting.
void expectStatsEqual(const RepeatedOutlineStats &A,
                      const RepeatedOutlineStats &B,
                      bool CompareRecomputeCounters) {
  ASSERT_EQ(A.Rounds.size(), B.Rounds.size());
  for (size_t I = 0; I < A.Rounds.size(); ++I) {
    SCOPED_TRACE("round " + std::to_string(I + 1));
    const OutlineRoundStats &X = A.Rounds[I];
    const OutlineRoundStats &Y = B.Rounds[I];
    EXPECT_EQ(X.SequencesOutlined, Y.SequencesOutlined);
    EXPECT_EQ(X.FunctionsCreated, Y.FunctionsCreated);
    EXPECT_EQ(X.OutlinedFunctionBytes, Y.OutlinedFunctionBytes);
    EXPECT_EQ(X.CodeSizeBefore, Y.CodeSizeBefore);
    EXPECT_EQ(X.CodeSizeAfter, Y.CodeSizeAfter);
    EXPECT_EQ(X.PatternsConsidered, Y.PatternsConsidered);
    EXPECT_EQ(X.PatternsUnprofitable, Y.PatternsUnprofitable);
    EXPECT_EQ(X.CandidatesDroppedSP, Y.CandidatesDroppedSP);
    EXPECT_EQ(X.CandidatesDroppedOverlap, Y.CandidatesDroppedOverlap);
    EXPECT_EQ(X.FunctionsEdited, Y.FunctionsEdited);
    if (CompareRecomputeCounters) {
      EXPECT_EQ(X.FunctionsRemapped, Y.FunctionsRemapped);
      EXPECT_EQ(X.LivenessComputed, Y.LivenessComputed);
    }
  }
}

TEST(ParallelDeterminismTest, SynthesizerOutputIdenticalAcrossThreads) {
  auto P1 = CorpusSynthesizer(testProfile()).withThreads(1).generate();
  auto P8 = CorpusSynthesizer(testProfile()).withThreads(8).generate();
  EXPECT_EQ(snapshot(*P1), snapshot(*P8));
}

TEST(ParallelDeterminismTest, WholeProgramIdenticalAcrossThreads) {
  BuildOutput J1 = runBuild(/*WholeProgram=*/true, 1, false);
  BuildOutput J8 = runBuild(/*WholeProgram=*/true, 8, false);
  EXPECT_EQ(J1.CodeSize, J8.CodeSize);
  EXPECT_EQ(J1.Snapshot, J8.Snapshot);
  expectStatsEqual(J1.Stats, J8.Stats, /*CompareRecomputeCounters=*/true);
}

TEST(ParallelDeterminismTest, PerModuleIdenticalAcrossThreads) {
  BuildOutput J1 = runBuild(/*WholeProgram=*/false, 1, false);
  BuildOutput J8 = runBuild(/*WholeProgram=*/false, 8, false);
  EXPECT_EQ(J1.CodeSize, J8.CodeSize);
  EXPECT_EQ(J1.Snapshot, J8.Snapshot);
  expectStatsEqual(J1.Stats, J8.Stats, /*CompareRecomputeCounters=*/true);
}

TEST(ParallelDeterminismTest, IncrementalIdenticalToFromScratch) {
  BuildOutput Fresh = runBuild(/*WholeProgram=*/true, 1, false);
  BuildOutput Inc = runBuild(/*WholeProgram=*/true, 1, true);
  EXPECT_EQ(Fresh.CodeSize, Inc.CodeSize);
  EXPECT_EQ(Fresh.Snapshot, Inc.Snapshot);
  expectStatsEqual(Fresh.Stats, Inc.Stats,
                   /*CompareRecomputeCounters=*/false);
}

TEST(ParallelDeterminismTest, ThreadsAndIncrementalCombined) {
  BuildOutput Base = runBuild(/*WholeProgram=*/true, 1, false);
  BuildOutput Both = runBuild(/*WholeProgram=*/true, 8, true);
  EXPECT_EQ(Base.CodeSize, Both.CodeSize);
  EXPECT_EQ(Base.Snapshot, Both.Snapshot);
  expectStatsEqual(Base.Stats, Both.Stats,
                   /*CompareRecomputeCounters=*/false);
}

TEST(ParallelDeterminismTest, DiscoveryEnginesProduceIdenticalOutput) {
  // The tentpole invariant: tree and suffix-array discovery commit
  // byte-identical programs — same snapshot (listings + symbol id values)
  // and same per-round stats, including PatternsConsidered (the engines
  // report 1:1 pattern sets, not just equivalent outcomes).
  BuildOutput Tree =
      runBuild(/*WholeProgram=*/true, 1, false, DiscoveryEngine::Tree);
  BuildOutput Arr =
      runBuild(/*WholeProgram=*/true, 1, false, DiscoveryEngine::SuffixArray);
  EXPECT_EQ(Tree.CodeSize, Arr.CodeSize);
  EXPECT_EQ(Tree.Snapshot, Arr.Snapshot);
  expectStatsEqual(Tree.Stats, Arr.Stats, /*CompareRecomputeCounters=*/true);
}

TEST(ParallelDeterminismTest, DiscoveryEnginesIdenticalPerModuleParallel) {
  // Same invariant under the per-module pipeline with threading and
  // incremental mapping reuse stacked on top.
  BuildOutput Tree =
      runBuild(/*WholeProgram=*/false, 8, true, DiscoveryEngine::Tree);
  BuildOutput Arr =
      runBuild(/*WholeProgram=*/false, 8, true, DiscoveryEngine::SuffixArray);
  EXPECT_EQ(Tree.CodeSize, Arr.CodeSize);
  EXPECT_EQ(Tree.Snapshot, Arr.Snapshot);
  expectStatsEqual(Tree.Stats, Arr.Stats, /*CompareRecomputeCounters=*/true);
}

TEST(ParallelDeterminismTest, SarrayIdenticalAcrossThreadsAndIncremental) {
  // The new default engine honors the original contract on its own:
  // j1 fresh == j8 incremental.
  BuildOutput Base =
      runBuild(/*WholeProgram=*/true, 1, false, DiscoveryEngine::SuffixArray);
  BuildOutput Both =
      runBuild(/*WholeProgram=*/true, 8, true, DiscoveryEngine::SuffixArray);
  EXPECT_EQ(Base.CodeSize, Both.CodeSize);
  EXPECT_EQ(Base.Snapshot, Both.Snapshot);
  expectStatsEqual(Base.Stats, Both.Stats,
                   /*CompareRecomputeCounters=*/false);
}

TEST(ParallelDeterminismTest, IncrementalRecomputesOnlyInvalidatedState) {
  BuildOutput Inc = runBuild(/*WholeProgram=*/true, 1, true);
  const std::vector<OutlineRoundStats> &R = Inc.Stats.Rounds;
  ASSERT_GE(R.size(), 2u);
  // Round 1 starts cold: everything is mapped and analyzed.
  EXPECT_EQ(R[0].FunctionsRemapped, R[0].LivenessComputed);
  EXPECT_GT(R[0].FunctionsRemapped, 0u);
  // From round 2 on, exactly the functions the previous round edited plus
  // the functions it created are recomputed — nothing else. A from-scratch
  // round I would recompute every function alive (the initial count plus
  // everything created so far); incremental must never exceed that, and
  // must beat it overall (round 2 can tie if round 1 edited everything,
  // but converging rounds edit ever fewer functions).
  uint64_t Alive = R[0].FunctionsRemapped;
  uint64_t IncTotal = R[0].FunctionsRemapped;
  uint64_t FreshTotal = R[0].FunctionsRemapped;
  for (size_t I = 1; I < R.size(); ++I) {
    SCOPED_TRACE("round " + std::to_string(I + 1));
    uint64_t Invalidated = R[I - 1].FunctionsEdited + R[I - 1].FunctionsCreated;
    EXPECT_EQ(R[I].FunctionsRemapped, Invalidated);
    EXPECT_EQ(R[I].LivenessComputed, Invalidated);
    Alive += R[I - 1].FunctionsCreated;
    EXPECT_LE(R[I].FunctionsRemapped, Alive);
    IncTotal += R[I].FunctionsRemapped;
    FreshTotal += Alive;
  }
  EXPECT_LT(IncTotal, FreshTotal);
}

TEST(ParallelDeterminismTest, NonIncrementalRecomputesEverything) {
  BuildOutput Fresh = runBuild(/*WholeProgram=*/true, 1, false);
  const std::vector<OutlineRoundStats> &R = Fresh.Stats.Rounds;
  ASSERT_GE(R.size(), 2u);
  uint64_t PrevCreated = 0;
  uint64_t Total = 0;
  for (size_t I = 0; I < R.size(); ++I) {
    SCOPED_TRACE("round " + std::to_string(I + 1));
    if (I == 0)
      Total = R[0].FunctionsRemapped;
    else
      Total += PrevCreated;
    EXPECT_EQ(R[I].FunctionsRemapped, Total);
    EXPECT_EQ(R[I].LivenessComputed, Total);
    PrevCreated = R[I].FunctionsCreated;
  }
}

} // namespace
