//===- tests/InstructionMapperTest.cpp - Mapper unit tests ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "outliner/InstructionMapper.h"

#include "mir/MIRBuilder.h"
#include "gtest/gtest.h"

#include <set>

using namespace mco;

namespace {

using MO = MachineOperand;

TEST(LegalityTest, BranchesAreIllegal) {
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::B, MO::block(0))),
            OutliningLegality::IllegalBranch);
  EXPECT_EQ(classifyInstr(
                MachineInstr(Opcode::Bcc, MO::cond(Cond::EQ), MO::block(0))),
            OutliningLegality::IllegalBranch);
  EXPECT_EQ(
      classifyInstr(MachineInstr(Opcode::CBZ, MO::reg(Reg::X0), MO::block(0))),
      OutliningLegality::IllegalBranch);
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::BR, MO::reg(Reg::X9))),
            OutliningLegality::IllegalBranch);
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::BLR, MO::reg(Reg::X9))),
            OutliningLegality::IllegalBranch);
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::Btail, MO::sym(0))),
            OutliningLegality::IllegalBranch);
}

TEST(LegalityTest, CallsAndReturnsAreLegal) {
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::BL, MO::sym(0))),
            OutliningLegality::Legal);
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::RET)),
            OutliningLegality::Legal);
}

TEST(LegalityTest, ExplicitLRUsesAreIllegal) {
  EXPECT_EQ(classifyInstr(
                MachineInstr(Opcode::MOVrr, MO::reg(Reg::X9), MO::reg(LR))),
            OutliningLegality::IllegalUsesLR);
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::STRpre, MO::reg(LR),
                                       MO::reg(Reg::SP), MO::imm(-16))),
            OutliningLegality::IllegalUsesLR);
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::LDRpost, MO::reg(LR),
                                       MO::reg(Reg::SP), MO::imm(16))),
            OutliningLegality::IllegalUsesLR);
}

TEST(LegalityTest, OrdinaryInstrsAreLegal) {
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::MOVri, MO::reg(Reg::X0),
                                       MO::imm(42))),
            OutliningLegality::Legal);
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::STPui, MO::reg(Reg::X19),
                                       MO::reg(Reg::X20), MO::reg(Reg::SP),
                                       MO::imm(0))),
            OutliningLegality::Legal);
  EXPECT_EQ(classifyInstr(MachineInstr(Opcode::NOP)),
            OutliningLegality::IllegalOther);
}

TEST(InstructionMapperTest, IdenticalLegalInstrsShareIds) {
  Program P;
  Module &M = P.addModule("m");
  uint32_t G = P.internSymbol("swift_release");
  for (int F = 0; F < 2; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movrr(Reg::X0, Reg::X20);
    B.bl(G);
    M.Functions.push_back(MF);
  }
  InstructionMapper Mapper(M);
  const auto &S = Mapper.string();
  // Layout: [mov, bl, term, mov, bl, term].
  ASSERT_EQ(S.size(), 6u);
  EXPECT_EQ(S[0], S[3]);
  EXPECT_EQ(S[1], S[4]);
  EXPECT_NE(S[2], S[5]); // Terminators are unique.
  EXPECT_NE(S[0], S[1]);
}

TEST(InstructionMapperTest, IllegalInstrsGetUniqueIds) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.nop();
  B.nop();
  M.Functions.push_back(MF);
  InstructionMapper Mapper(M);
  const auto &S = Mapper.string();
  ASSERT_EQ(S.size(), 3u);
  EXPECT_NE(S[0], S[1]);
}

TEST(InstructionMapperTest, LocationsRoundTrip) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B0(MF.addBlock());
  B0.movri(Reg::X0, 1);
  MIRBuilder B1(MF.addBlock());
  B1.movri(Reg::X1, 2);
  B1.ret();
  M.Functions.push_back(MF);

  InstructionMapper Mapper(M);
  // String: [mov, term, mov, ret, term].
  ASSERT_EQ(Mapper.string().size(), 5u);
  EXPECT_TRUE(Mapper.location(0).IsLegal);
  EXPECT_EQ(Mapper.location(0).Block, 0u);
  EXPECT_EQ(Mapper.location(0).Instr, 0u);
  EXPECT_FALSE(Mapper.location(1).IsLegal);
  EXPECT_TRUE(Mapper.location(2).IsLegal);
  EXPECT_EQ(Mapper.location(2).Block, 1u);
  EXPECT_EQ(Mapper.location(2).Instr, 0u);
  EXPECT_TRUE(Mapper.location(3).IsLegal);
  EXPECT_EQ(Mapper.location(3).Instr, 1u);
}

TEST(InstructionMapperTest, StringLengthIsInstrsPlusBlocks) {
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    for (int Blk = 0; Blk < 2; ++Blk) {
      MIRBuilder B(MF.addBlock());
      B.movri(Reg::X0, F);
      B.movri(Reg::X1, Blk);
    }
    M.Functions.push_back(MF);
  }
  InstructionMapper Mapper(M);
  EXPECT_EQ(Mapper.string().size(), M.numInstrs() + 3 * 2);
}

TEST(InstructionMapperTest, LegalIdSpaceIsDense) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X0, 1);
  B.movri(Reg::X1, 2);
  B.movri(Reg::X0, 1); // Repeat of instr 0.
  M.Functions.push_back(MF);
  InstructionMapper Mapper(M);
  EXPECT_EQ(Mapper.numLegalIds(), 2u);
  std::set<unsigned> LegalIds;
  for (unsigned I = 0; I < 3; ++I)
    LegalIds.insert(Mapper.string()[I]);
  EXPECT_EQ(LegalIds.size(), 2u);
  EXPECT_TRUE(LegalIds.count(0));
  EXPECT_TRUE(LegalIds.count(1));
}

} // namespace
