//===- tests/SuffixTreeTest.cpp - Suffix tree unit tests ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SuffixTree.h"

#include "support/SuffixArray.h"

#include "support/Random.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <map>
#include <set>

using namespace mco;

namespace {

/// Brute-force: all repeated substrings of length >= MinLen with *all*
/// their occurrence start indices.
std::map<std::vector<unsigned>, std::vector<unsigned>>
bruteForceRepeats(const std::vector<unsigned> &S, unsigned MinLen) {
  std::map<std::vector<unsigned>, std::vector<unsigned>> Out;
  for (unsigned Len = MinLen; Len <= S.size(); ++Len) {
    std::map<std::vector<unsigned>, std::vector<unsigned>> ByContent;
    for (unsigned I = 0; I + Len <= S.size(); ++I) {
      std::vector<unsigned> Sub(S.begin() + I, S.begin() + I + Len);
      ByContent[Sub].push_back(I);
    }
    for (auto &KV : ByContent)
      if (KV.second.size() >= 2)
        Out.emplace(KV.first, KV.second);
  }
  return Out;
}

TEST(SuffixTreeTest, EmptyString) {
  std::vector<unsigned> S;
  SuffixTree T(S);
  EXPECT_TRUE(T.repeatedSubstrings().empty());
}

TEST(SuffixTreeTest, SingleElement) {
  std::vector<unsigned> S = {7};
  SuffixTree T(S);
  EXPECT_TRUE(T.repeatedSubstrings().empty());
}

TEST(SuffixTreeTest, NoRepeats) {
  std::vector<unsigned> S = {1, 2, 3, 4, 5};
  SuffixTree T(S);
  EXPECT_TRUE(T.repeatedSubstrings(2).empty());
}

TEST(SuffixTreeTest, SimpleRepeat) {
  // "abab$": "ab" repeats at 0 and 2.
  std::vector<unsigned> S = {1, 2, 1, 2, 99};
  SuffixTree T(S);
  auto Repeats = T.repeatedSubstrings(2);
  ASSERT_EQ(Repeats.size(), 1u);
  EXPECT_EQ(Repeats[0].Length, 2u);
  EXPECT_EQ(Repeats[0].StartIndices, (std::vector<unsigned>{0, 2}));
}

TEST(SuffixTreeTest, ContainsWalk) {
  std::vector<unsigned> S = {5, 6, 7, 5, 6, 8, 42};
  SuffixTree T(S);
  EXPECT_TRUE(T.contains({5, 6, 7}));
  EXPECT_TRUE(T.contains({6, 8, 42}));
  EXPECT_TRUE(T.contains({}));
  EXPECT_FALSE(T.contains({7, 8}));
  EXPECT_FALSE(T.contains({5, 6, 9}));
  EXPECT_FALSE(T.contains({42, 42}));
}

TEST(SuffixTreeTest, PaperFig11String) {
  // The paper's Fig. 11 anecdote: ABCD x5 interleaved with BCD x3 extra.
  // A=1 B=2 C=3 D=4, with unique separators.
  std::vector<unsigned> S;
  unsigned Sep = 100;
  for (int I = 0; I < 5; ++I) {
    for (unsigned V : {1u, 2u, 3u, 4u})
      S.push_back(V);
    S.push_back(Sep++);
  }
  for (int I = 0; I < 3; ++I) {
    for (unsigned V : {2u, 3u, 4u})
      S.push_back(V);
    S.push_back(Sep++);
  }
  SuffixTree T(S);
  auto Repeats = T.repeatedSubstrings(2);
  // "BCD" must be reported with its 8 total occurrences in
  // leaf-descendants mode.
  SuffixTree TD(S, /*CollectLeafDescendants=*/true);
  auto RepeatsD = TD.repeatedSubstrings(2);
  bool FoundBCD8 = false;
  for (const auto &R : RepeatsD)
    if (R.Length == 3 && R.StartIndices.size() == 8)
      FoundBCD8 = true;
  EXPECT_TRUE(FoundBCD8);
  // "ABCD" occurs 5 times.
  bool FoundABCD = false;
  for (const auto &R : Repeats)
    if (R.Length == 4 && R.StartIndices.size() == 5)
      FoundABCD = true;
  EXPECT_TRUE(FoundABCD);
}

TEST(SuffixTreeTest, AllOccurrencesInLeafDescendantMode) {
  // Randomized cross-check against brute force: in leaf-descendant mode,
  // every repeated substring reported must carry ALL its occurrences, and
  // every brute-force repeat must be a prefix-extension of some reported
  // node pattern that covers its occurrences.
  Rng R(1234);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::vector<unsigned> S;
    const unsigned N = 30 + static_cast<unsigned>(R.nextBounded(40));
    for (unsigned I = 0; I < N; ++I)
      S.push_back(static_cast<unsigned>(R.nextBounded(4)));
    S.push_back(777777); // Unique terminator.

    SuffixTree T(S, /*CollectLeafDescendants=*/true);
    auto Repeats = T.repeatedSubstrings(2);
    auto Truth = bruteForceRepeats(S, 2);

    // Each reported repeat must exactly match the brute-force occurrence
    // set for its content.
    for (const auto &Rep : Repeats) {
      std::vector<unsigned> Content(S.begin() + Rep.StartIndices[0],
                                    S.begin() + Rep.StartIndices[0] +
                                        Rep.Length);
      auto It = Truth.find(Content);
      ASSERT_NE(It, Truth.end()) << "reported non-repeat";
      EXPECT_EQ(Rep.StartIndices, It->second);
    }
  }
}

TEST(SuffixTreeTest, LeafChildrenModeIsSubsetOfTruth) {
  Rng R(99);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::vector<unsigned> S;
    const unsigned N = 30 + static_cast<unsigned>(R.nextBounded(40));
    for (unsigned I = 0; I < N; ++I)
      S.push_back(static_cast<unsigned>(R.nextBounded(4)));
    S.push_back(888888);

    SuffixTree T(S);
    auto Repeats = T.repeatedSubstrings(2);
    auto Truth = bruteForceRepeats(S, 2);
    for (const auto &Rep : Repeats) {
      ASSERT_GE(Rep.StartIndices.size(), 2u);
      std::vector<unsigned> Content(S.begin() + Rep.StartIndices[0],
                                    S.begin() + Rep.StartIndices[0] +
                                        Rep.Length);
      auto It = Truth.find(Content);
      ASSERT_NE(It, Truth.end());
      // Reported occurrences must be a subset of the true ones.
      for (unsigned Start : Rep.StartIndices)
        EXPECT_TRUE(std::find(It->second.begin(), It->second.end(), Start) !=
                    It->second.end());
    }
  }
}

TEST(SuffixTreeTest, EveryTrueRepeatContentIsReported) {
  // Content coverage (not occurrence-completeness): every distinct string
  // that repeats corresponds to some suffix-tree internal node whose path
  // label extends it; here we check the *maximal* repeats are reported.
  std::vector<unsigned> S = {1, 2, 3, 9, 1, 2, 3, 8, 1, 2, 55};
  SuffixTree T(S);
  auto Repeats = T.repeatedSubstrings(2);
  std::set<std::pair<unsigned, unsigned>> Seen; // (Length, NumOccurrences)
  for (const auto &Rep : Repeats)
    Seen.insert({Rep.Length, static_cast<unsigned>(Rep.StartIndices.size())});
  // "123" repeats twice; "12" repeats 3 times.
  EXPECT_TRUE(Seen.count({3, 2}));
  EXPECT_TRUE(Seen.count({2, 1}) == 0);
}

TEST(SuffixTreeTest, MinLengthFilter) {
  std::vector<unsigned> S = {1, 2, 1, 2, 1, 2, 77};
  SuffixTree T(S);
  for (const auto &Rep : T.repeatedSubstrings(3))
    EXPECT_GE(Rep.Length, 3u);
}

TEST(SuffixTreeTest, MinOccurrencesFilter) {
  std::vector<unsigned> S = {1, 2, 9, 1, 2, 8, 1, 2, 7, 3, 4, 6, 3, 4, 55};
  SuffixTree TD(S, /*CollectLeafDescendants=*/true);
  for (const auto &Rep : TD.repeatedSubstrings(2, /*MinOccurrences=*/3))
    EXPECT_GE(Rep.StartIndices.size(), 3u);
}

TEST(SuffixTreeTest, LargeRandomStringLinearishGrowth) {
  // Sanity: node count stays within Ukkonen's 2n bound.
  Rng R(5);
  std::vector<unsigned> S;
  for (unsigned I = 0; I < 20000; ++I)
    S.push_back(static_cast<unsigned>(R.nextBounded(16)));
  S.push_back(1u << 30);
  SuffixTree T(S);
  EXPECT_LE(T.numNodes(), 2 * S.size() + 2);
}

TEST(SuffixTreeTest, DeterministicEnumeration) {
  Rng R(7);
  std::vector<unsigned> S;
  for (unsigned I = 0; I < 500; ++I)
    S.push_back(static_cast<unsigned>(R.nextBounded(8)));
  S.push_back(1u << 29);
  SuffixTree T1(S), T2(S);
  auto A = T1.repeatedSubstrings(2);
  auto B = T2.repeatedSubstrings(2);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Length, B[I].Length);
    EXPECT_EQ(A[I].StartIndices, B[I].StartIndices);
  }
}

TEST(SuffixTreeTest, MaxLengthFallsBackToDirectLeafChildren) {
  // Pattern P = 1..6 occurs four times. Two occurrences continue
  // identically (7, 8), so below P's node they hang off an internal child;
  // the other two diverge immediately and are P's direct leaf children.
  std::vector<unsigned> S = {
      1, 2, 3, 4, 5, 6, 7, 8, 100, // occ 0, extended by (7, 8)
      1, 2, 3, 4, 5, 6, 7, 8, 101, // occ 9, extended by (7, 8)
      1, 2, 3, 4, 5, 6, 9, 102,    // occ 18, direct leaf
      1, 2, 3, 4, 5, 6, 10, 103,   // occ 26, direct leaf
  };
  SuffixTree T(S, /*CollectLeafDescendants=*/true);

  auto FindLen6WithStart26 = [](const std::vector<RepeatedSubstring> &Rs)
      -> const RepeatedSubstring * {
    for (const RepeatedSubstring &RS : Rs)
      if (RS.Length == 6 &&
          std::find(RS.StartIndices.begin(), RS.StartIndices.end(), 26u) !=
              RS.StartIndices.end())
        return &RS;
    return nullptr;
  };

  // MaxLength large enough: every occurrence (all leaf descendants).
  auto Full = T.repeatedSubstrings(6, 2, 4096);
  const RepeatedSubstring *P = FindLen6WithStart26(Full);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->StartIndices, (std::vector<unsigned>{0, 9, 18, 26}));

  // MaxLength below the pattern length: the leaf-descendant walk is
  // skipped and reporting falls back to direct leaf children only.
  auto Capped = T.repeatedSubstrings(6, 2, 4);
  P = FindLen6WithStart26(Capped);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->StartIndices, (std::vector<unsigned>{18, 26}));

  // The suffix array engine applies the identical fallback rule.
  SuffixArray A(S, /*CollectLeafDescendants=*/true);
  auto ArrFull = A.repeatedSubstrings(6, 2, 4096);
  auto ArrCapped = A.repeatedSubstrings(6, 2, 4);
  P = FindLen6WithStart26(ArrFull);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->StartIndices, (std::vector<unsigned>{0, 9, 18, 26}));
  P = FindLen6WithStart26(ArrCapped);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->StartIndices, (std::vector<unsigned>{18, 26}));
}

} // namespace
