//===- tests/IRTest.cpp - IR and builder unit tests -----------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include "gtest/gtest.h"

using namespace mco;
using namespace mco::ir;

namespace {

TEST(IRBuilderTest, BuildsSimpleFunction) {
  IRModule M;
  IRBuilder B(M, "addTwo", 1);
  Value Two = B.constInt(2);
  Value R = B.add(B.param(0), Two);
  B.ret(R);
  B.finish();

  ASSERT_EQ(M.Functions.size(), 1u);
  const IRFunction &F = M.Functions[0];
  EXPECT_EQ(F.Name, "addTwo");
  EXPECT_EQ(F.NumParams, 1u);
  EXPECT_EQ(F.NumValues, 3u); // param + const + add.
  ASSERT_EQ(F.Blocks.size(), 1u);
  EXPECT_EQ(F.Blocks[0].Instrs.size(), 3u);
  EXPECT_EQ(verify(M), "");
}

TEST(IRBuilderTest, MultiBlockControlFlow) {
  IRModule M;
  IRBuilder B(M, "abs", 1);
  Value Zero = B.constInt(0);
  Value Neg = B.icmp(Pred::LT, B.param(0), Zero);
  uint32_t Entry = B.currentBlock();
  uint32_t BNeg = B.newBlock();
  uint32_t BPos = B.newBlock();
  B.setBlock(Entry);
  B.condBr(Neg, BNeg, BPos);
  B.setBlock(BNeg);
  B.ret(B.sub(Zero, B.param(0)));
  B.setBlock(BPos);
  B.ret(B.param(0));
  B.finish();
  EXPECT_EQ(verify(M), "");
}

TEST(IRVerifierTest, CatchesMissingTerminator) {
  IRModule M;
  IRBuilder B(M, "bad", 0);
  B.constInt(1);
  B.finish();
  EXPECT_NE(verify(M), "");
}

TEST(IRVerifierTest, CatchesMidBlockTerminator) {
  IRModule M;
  IRFunction F;
  F.Name = "bad";
  F.NumValues = 1;
  IRBlock Blk;
  IRInstr RetI{IROp::Ret};
  RetI.Args = {0};
  IRInstr C{IROp::Const};
  C.Result = 0;
  Blk.Instrs.push_back(RetI);
  Blk.Instrs.push_back(C);
  F.Blocks.push_back(Blk);
  M.Functions.push_back(F);
  EXPECT_NE(verify(M), "");
}

TEST(IRVerifierTest, CatchesBadBranchTarget) {
  IRModule M;
  IRBuilder B(M, "bad", 0);
  B.br(42);
  B.finish();
  EXPECT_NE(verify(M), "");
}

TEST(IRVerifierTest, CatchesOutOfRangeValue) {
  IRModule M;
  IRFunction F;
  F.Name = "bad";
  F.NumValues = 1;
  IRBlock Blk;
  IRInstr RetI{IROp::Ret};
  RetI.Args = {99};
  Blk.Instrs.push_back(RetI);
  F.Blocks.push_back(Blk);
  M.Functions.push_back(F);
  EXPECT_NE(verify(M), "");
}

TEST(IRGlobalTest, FromWordsLittleEndian) {
  IRGlobal G = IRGlobal::fromWords("tbl", {1, -1});
  ASSERT_EQ(G.Bytes.size(), 16u);
  EXPECT_EQ(G.Bytes[0], 1);
  EXPECT_EQ(G.Bytes[8], 0xFF);
  EXPECT_EQ(G.Bytes[15], 0xFF);
}

TEST(IRModuleTest, FindFunction) {
  IRModule M;
  IRBuilder B(M, "f", 0);
  B.ret(B.constInt(0));
  B.finish();
  EXPECT_NE(M.findFunction("f"), nullptr);
  EXPECT_EQ(M.findFunction("g"), nullptr);
}

} // namespace
