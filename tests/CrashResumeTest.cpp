//===- tests/CrashResumeTest.cpp - kill -9 / resume end-to-end ------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end crash-safety: spawns the real mco-build binary (path baked
/// in via MCO_BUILD_TOOL_PATH), kills it with SIGKILL mid-build using the
/// MCO_CRASH_AFTER_MODULES hook, resumes with --resume, and requires the
/// final dumped module to be byte-identical to an uninterrupted build's.
/// Also covers warm-cache rebuilds, on-disk corruption absorption, the
/// per-module watchdog, and the diag-json-on-failure contract.
///
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace {

/// Small corpus, two rounds: big enough that outlining does real work in
/// every module, small enough that a full build is fast.
const std::vector<std::string> BaseArgs = {
    "--modules", "6", "--rounds", "2", "--per-module"};

struct RunResult {
  int ExitCode = -1;
  bool Signaled = false;
  int Signal = 0;
};

/// Forks mco-build with \p Args (appended to BaseArgs unless \p Bare),
/// with \p Env ("K=V") entries added to the child environment. Pair with
/// waitBuild(); runBuild() does both.
pid_t spawnBuild(const std::vector<std::string> &Args,
                 const std::vector<std::string> &Env = {},
                 bool Bare = false) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  {
    for (const std::string &E : Env) {
      const size_t Eq = E.find('=');
      ::setenv(E.substr(0, Eq).c_str(), E.substr(Eq + 1).c_str(), 1);
    }
    std::vector<std::string> All;
    All.push_back(MCO_BUILD_TOOL_PATH);
    if (!Bare)
      All.insert(All.end(), BaseArgs.begin(), BaseArgs.end());
    All.insert(All.end(), Args.begin(), Args.end());
    std::vector<char *> Argv;
    for (std::string &S : All)
      Argv.push_back(S.data());
    Argv.push_back(nullptr);
    // Quiet the child; its stdout is uninteresting and interleaves badly.
    std::freopen("/dev/null", "w", stdout);
    ::execv(MCO_BUILD_TOOL_PATH, Argv.data());
    ::_exit(127);
  }
}

RunResult waitBuild(pid_t Pid) {
  RunResult R;
  if (Pid < 0)
    return R;
  int WStatus = 0;
  ::waitpid(Pid, &WStatus, 0);
  if (WIFEXITED(WStatus))
    R.ExitCode = WEXITSTATUS(WStatus);
  if (WIFSIGNALED(WStatus)) {
    R.Signaled = true;
    R.Signal = WTERMSIG(WStatus);
  }
  return R;
}

RunResult runBuild(const std::vector<std::string> &Args,
                   const std::vector<std::string> &Env = {},
                   bool Bare = false) {
  return waitBuild(spawnBuild(Args, Env, Bare));
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Extracts `"key": <number>` from the diag JSON.
long long diagInt(const std::string &Json, const std::string &Key) {
  const std::string Needle = "\"" + Key + "\": ";
  size_t P = Json.find(Needle);
  if (P == std::string::npos)
    return -1;
  return std::atoll(Json.c_str() + P + Needle.size());
}

/// Extracts `"key": "value"` from the diag JSON.
std::string diagStr(const std::string &Json, const std::string &Key) {
  const std::string Needle = "\"" + Key + "\": \"";
  size_t P = Json.find(Needle);
  if (P == std::string::npos)
    return {};
  P += Needle.size();
  size_t E = Json.find('"', P);
  return E == std::string::npos ? std::string() : Json.substr(P, E - P);
}

struct ScratchDir {
  fs::path P;
  explicit ScratchDir(const std::string &Name) {
    P = fs::temp_directory_path() /
        ("mco_crash_test_" + std::to_string(::getpid()) + "_" + Name);
    fs::remove_all(P);
    fs::create_directories(P);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(P, EC);
  }
  std::string str(const std::string &Leaf) const { return (P / Leaf).string(); }
};

TEST(CrashResumeTest, SigkillMidBuildResumesToIdenticalOutput) {
  ScratchDir D("sigkill");
  const std::string Cache = D.str("cache");
  const std::string Ref = D.str("ref.mir");
  const std::string Out = D.str("out.mir");

  // Reference: one uninterrupted, uncached build.
  RunResult R = runBuild({"--dump", Ref});
  ASSERT_EQ(R.ExitCode, 0);
  const std::string RefBytes = slurp(Ref);
  ASSERT_FALSE(RefBytes.empty());

  // Crash the build after every freshly built module, resuming each time.
  // Each run makes exactly one module of forward progress, so the chain
  // must SIGKILL several times and then terminate.
  int Crashes = 0;
  for (int Attempt = 0; Attempt < 20; ++Attempt) {
    RunResult C = runBuild({"--resume", Cache, "--dump", Out},
                           {"MCO_CRASH_AFTER_MODULES=1"});
    if (C.Signaled) {
      ASSERT_EQ(C.Signal, SIGKILL);
      ++Crashes;
      continue;
    }
    ASSERT_EQ(C.ExitCode, 0);
    break;
  }
  EXPECT_GE(Crashes, 2) << "the crash hook never fired";

  // The final (non-crashing) run completed from journaled state; its
  // output must be byte-identical to the uninterrupted build's.
  EXPECT_EQ(slurp(Out), RefBytes);
}

TEST(CrashResumeTest, WarmCacheRebuildIsIdenticalAndAllHits) {
  ScratchDir D("warm");
  const std::string Cache = D.str("cache");
  const std::string Cold = D.str("cold.mir");
  const std::string Warm = D.str("warm.mir");
  const std::string ColdDiag = D.str("cold.json");
  const std::string Diag = D.str("diag.json");

  ASSERT_EQ(runBuild({"--cache-dir", Cache, "--dump", Cold, "--diag-json",
                      ColdDiag})
                .ExitCode,
            0);
  const long long NumMods = diagInt(slurp(ColdDiag), "cache_misses");
  ASSERT_GT(NumMods, 1);
  ASSERT_EQ(runBuild({"--resume", Cache, "--dump", Warm, "--diag-json", Diag})
                .ExitCode,
            0);
  EXPECT_EQ(slurp(Warm), slurp(Cold));
  const std::string Json = slurp(Diag);
  EXPECT_EQ(diagInt(Json, "cache_hits"), NumMods);
  EXPECT_EQ(diagInt(Json, "cache_misses"), 0);
  EXPECT_EQ(diagInt(Json, "modules_resumed"), NumMods);
  EXPECT_EQ(diagInt(Json, "modules_degraded"), 0);
}

TEST(CrashResumeTest, BitFlippedEntryIsQuarantinedAndRebuilt) {
  ScratchDir D("corrupt");
  const std::string Cache = D.str("cache");
  const std::string Cold = D.str("cold.mir");
  const std::string Warm = D.str("warm.mir");
  const std::string ColdDiag = D.str("cold.json");
  const std::string Diag = D.str("diag.json");

  ASSERT_EQ(runBuild({"--cache-dir", Cache, "--dump", Cold, "--diag-json",
                      ColdDiag})
                .ExitCode,
            0);
  const long long NumMods = diagInt(slurp(ColdDiag), "cache_misses");
  ASSERT_GT(NumMods, 1);

  // Flip one bit in one cached artifact.
  fs::path Victim;
  for (const auto &E : fs::directory_iterator(fs::path(Cache) / "objects")) {
    Victim = E.path();
    break;
  }
  ASSERT_FALSE(Victim.empty());
  std::string Bytes = slurp(Victim.string());
  Bytes[Bytes.size() / 2] ^= 0x40;
  std::ofstream(Victim, std::ios::binary) << Bytes;

  // The warm build detects the damage, quarantines the entry, rebuilds
  // that one module, and still produces identical output with exit 0.
  ASSERT_EQ(
      runBuild({"--cache-dir", Cache, "--dump", Warm, "--diag-json", Diag})
          .ExitCode,
      0);
  EXPECT_EQ(slurp(Warm), slurp(Cold));
  const std::string Json = slurp(Diag);
  EXPECT_EQ(diagInt(Json, "cache_corrupt"), 1);
  EXPECT_EQ(diagInt(Json, "cache_hits"), NumMods - 1);
  EXPECT_EQ(diagInt(Json, "modules_degraded"), 0);
  EXPECT_TRUE(fs::exists(fs::path(Cache) / "quarantine"));
  EXPECT_FALSE(fs::is_empty(fs::path(Cache) / "quarantine"));
}

TEST(CrashResumeTest, WatchdogDegradesHangingModule) {
  ScratchDir D("hang");
  const std::string Diag = D.str("diag.json");
  // Every module hangs on every attempt; the watchdog must cancel each
  // one through every retry and still ship the build (unoutlined).
  RunResult R = runBuild({"--fault-inject", "pipeline.module.hang:1",
                          "--module-timeout-ms", "100", "--timeout-retries",
                          "1", "--diag-json", Diag});
  ASSERT_EQ(R.ExitCode, 0);
  const std::string Json = slurp(Diag);
  const long long TimedOut = diagInt(Json, "modules_timed_out");
  EXPECT_GE(TimedOut, 6); // Every module (the corpus has >= 6).
  EXPECT_EQ(diagInt(Json, "watchdog_timeouts"), 2 * TimedOut); // 2 attempts.
  EXPECT_EQ(diagInt(Json, "modules_degraded"), TimedOut);
}

TEST(CrashResumeTest, StaleLockIsRecovered) {
  ScratchDir D("stalelock");
  const std::string Cache = D.str("cache");
  const std::string Diag = D.str("diag.json");
  RunResult R = runBuild({"--cache-dir", Cache, "--fault-inject",
                          "cache.lock.stale:1", "--diag-json", Diag});
  ASSERT_EQ(R.ExitCode, 0);
  EXPECT_GE(diagInt(slurp(Diag), "stale_locks_recovered"), 1);
}

TEST(CrashResumeTest, TwoClientSharedCacheHammer) {
  ScratchDir D("hammer");
  const std::string Cache = D.str("cache");
  const std::string RefDiag = D.str("ref.json");

  // Reference digest: one clean, uncached build.
  ASSERT_EQ(runBuild({"--diag-json", RefDiag}).ExitCode, 0);
  const std::string RefDigest = diagStr(slurp(RefDiag), "artifact_digest");
  ASSERT_FALSE(RefDigest.empty());

  // Phase 1 — eviction interleave: two clients share one store whose
  // budget holds only a fraction of the corpus, so every store triggers
  // an eviction pass racing the other client's. The writer lock is what
  // keeps that safe; both builds must still come out byte-identical.
  auto ClientArgs = [&](int N, const char *Diag) {
    return std::vector<std::string>{
        "--cache-dir",  Cache,
        "--shared-cache",
        "--journal-dir", D.str("j" + std::to_string(N)),
        "--cache-max-bytes", "8192",
        "--diag-json",  D.str(Diag)};
  };
  pid_t A = spawnBuild(ClientArgs(1, "a.json"));
  pid_t B = spawnBuild(ClientArgs(2, "b.json"));
  RunResult RA = waitBuild(A), RB = waitBuild(B);
  ASSERT_EQ(RA.ExitCode, 0);
  ASSERT_EQ(RB.ExitCode, 0);
  const std::string JsonA = slurp(D.str("a.json"));
  const std::string JsonB = slurp(D.str("b.json"));
  EXPECT_EQ(diagStr(JsonA, "artifact_digest"), RefDigest);
  EXPECT_EQ(diagStr(JsonB, "artifact_digest"), RefDigest);
  EXPECT_GT(diagInt(JsonA, "cache_evicted") + diagInt(JsonB, "cache_evicted"),
            0)
      << "the budget never forced an eviction: not a hammer";
  EXPECT_EQ(diagInt(JsonA, "modules_degraded"), 0);
  EXPECT_EQ(diagInt(JsonB, "modules_degraded"), 0);

  // Phase 2 — corruption under two clients: populate a fresh roomy store,
  // flip a byte in one entry, then hit it from both clients at once. One
  // of them finds the damage first, quarantines it, and rebuilds; both
  // must ship the reference bytes with exit 0.
  const std::string Cache2 = D.str("cache2");
  ASSERT_EQ(runBuild({"--cache-dir", Cache2, "--shared-cache",
                      "--journal-dir", D.str("j3")})
                .ExitCode,
            0);
  fs::path Victim;
  for (const auto &E : fs::directory_iterator(fs::path(Cache2) / "objects")) {
    Victim = E.path();
    break;
  }
  ASSERT_FALSE(Victim.empty());
  std::string Bytes = slurp(Victim.string());
  Bytes[Bytes.size() / 2] ^= 0x40;
  std::ofstream(Victim, std::ios::binary) << Bytes;

  auto WarmArgs = [&](int N, const char *Diag) {
    return std::vector<std::string>{
        "--cache-dir",  Cache2,
        "--shared-cache",
        "--journal-dir", D.str("j" + std::to_string(N)),
        "--diag-json",  D.str(Diag)};
  };
  pid_t A2 = spawnBuild(WarmArgs(4, "a2.json"));
  pid_t B2 = spawnBuild(WarmArgs(5, "b2.json"));
  RunResult RA2 = waitBuild(A2), RB2 = waitBuild(B2);
  ASSERT_EQ(RA2.ExitCode, 0);
  ASSERT_EQ(RB2.ExitCode, 0);
  const std::string JsonA2 = slurp(D.str("a2.json"));
  const std::string JsonB2 = slurp(D.str("b2.json"));
  EXPECT_EQ(diagStr(JsonA2, "artifact_digest"), RefDigest);
  EXPECT_EQ(diagStr(JsonB2, "artifact_digest"), RefDigest);
  EXPECT_GE(diagInt(JsonA2, "cache_corrupt") +
                diagInt(JsonB2, "cache_corrupt"),
            1)
      << "nobody noticed the corrupt entry";
  EXPECT_TRUE(fs::exists(fs::path(Cache2) / "quarantine"));
  EXPECT_FALSE(fs::is_empty(fs::path(Cache2) / "quarantine"));
}

TEST(CrashResumeTest, FailingBuildStillWritesDiagJson) {
  ScratchDir D("faildiag");
  const std::string Diag = D.str("diag.json");
  RunResult R = runBuild(
      {"--dump", (D.P / "no" / "such" / "dir" / "x.mir").string(),
       "--diag-json", Diag});
  // An unwritable dump path is an environment problem, not corrupt input:
  // the exit-code convention says 70 (internal).
  EXPECT_EQ(R.ExitCode, 70);
  const std::string Json = slurp(Diag);
  ASSERT_FALSE(Json.empty()) << "diag JSON missing after failed build";
  EXPECT_NE(Json.find("\"error\": \""), std::string::npos);
  EXPECT_NE(Json.find("cannot open dump file"), std::string::npos);
  EXPECT_EQ(Json.find("\"error\": \"\""), std::string::npos)
      << "error field empty on a failed build";
  // The report still carries the build's real statistics.
  EXPECT_GT(diagInt(Json, "code_size_after"), 0);
}

} // namespace
