//===- tests/PatternStatsTest.cpp - Section IV analysis tests -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "outliner/PatternStats.h"

#include "mir/MIRBuilder.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

/// Adds \p Count functions each containing the retain/release idiom
/// `mov x0, <Src>; bl <Callee>` plus unique filler.
void addIdiomFns(Program &P, Module &M, const std::string &Prefix,
                 unsigned Count, Reg Src, uint32_t Callee) {
  for (unsigned I = 0; I < Count; ++I) {
    MachineFunction MF;
    MF.Name = P.internSymbol(Prefix + std::to_string(I));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X9, 10000 + static_cast<int64_t>(M.Functions.size()));
    B.movrr(Reg::X0, Src);
    B.bl(Callee);
    B.movri(Reg::X10, 20000 + static_cast<int64_t>(M.Functions.size()));
    M.Functions.push_back(MF);
  }
}

TEST(PatternStatsTest, RanksByFrequency) {
  Program P;
  uint32_t Release = P.internSymbol("swift_release");
  uint32_t Retain = P.internSymbol("swift_retain");
  Module &M = P.addModule("m");
  addIdiomFns(P, M, "a", 30, Reg::X20, Release);
  addIdiomFns(P, M, "b", 12, Reg::X21, Release);
  addIdiomFns(P, M, "c", 5, Reg::X19, Retain);

  PatternAnalysis A = analyzePatterns(P, M);
  ASSERT_GE(A.Patterns.size(), 3u);
  EXPECT_EQ(A.Patterns[0].Rank, 1u);
  EXPECT_EQ(A.Patterns[0].Frequency, 30u);
  EXPECT_EQ(A.Patterns[1].Frequency, 12u);
  EXPECT_EQ(A.Patterns[2].Frequency, 5u);
  for (size_t I = 1; I < A.Patterns.size(); ++I)
    EXPECT_LE(A.Patterns[I].Frequency, A.Patterns[I - 1].Frequency);
}

TEST(PatternStatsTest, CallEndingShare) {
  Program P;
  uint32_t Release = P.internSymbol("swift_release");
  Module &M = P.addModule("m");
  addIdiomFns(P, M, "a", 10, Reg::X20, Release);

  PatternAnalysis A = analyzePatterns(P, M);
  ASSERT_FALSE(A.Patterns.empty());
  EXPECT_TRUE(A.Patterns[0].EndsWithCall);
  EXPECT_GT(A.callRetEndingShare(), 0.9);
}

TEST(PatternStatsTest, UnprofitablePatternsExcluded) {
  // A 2-instr pattern occurring twice saves nothing; it must not appear.
  Program P;
  Module &M = P.addModule("m");
  for (int I = 0; I < 2; ++I) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(I));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X1, 1);
    B.movri(Reg::X2, 2);
    M.Functions.push_back(MF);
  }
  PatternAnalysis A = analyzePatterns(P, M);
  EXPECT_TRUE(A.Patterns.empty());
}

TEST(PatternStatsTest, CumulativeSavingsMonotone) {
  Program P;
  uint32_t Release = P.internSymbol("swift_release");
  uint32_t Retain = P.internSymbol("swift_retain");
  Module &M = P.addModule("m");
  addIdiomFns(P, M, "a", 30, Reg::X20, Release);
  addIdiomFns(P, M, "b", 12, Reg::X21, Release);
  addIdiomFns(P, M, "c", 8, Reg::X19, Retain);

  PatternAnalysis A = analyzePatterns(P, M);
  auto Cum = A.cumulativeSavingsBestFirst();
  ASSERT_EQ(Cum.size(), A.Patterns.size());
  for (size_t I = 1; I < Cum.size(); ++I)
    EXPECT_GE(Cum[I], Cum[I - 1]);
  EXPECT_EQ(A.patternsForShareOfSavings(1.0),
            static_cast<unsigned>(Cum.size()));
  EXPECT_GE(A.patternsForShareOfSavings(0.5), 1u);
  EXPECT_LE(A.patternsForShareOfSavings(0.5),
            A.patternsForShareOfSavings(0.9));
}

TEST(PatternStatsTest, ListingTextRendered) {
  Program P;
  uint32_t Release = P.internSymbol("swift_release");
  Module &M = P.addModule("m");
  addIdiomFns(P, M, "a", 10, Reg::X20, Release);
  PatternAnalysis A = analyzePatterns(P, M);
  ASSERT_FALSE(A.Patterns.empty());
  EXPECT_NE(A.Patterns[0].Text.find("bl     swift_release"),
            std::string::npos);
  EXPECT_NE(A.Patterns[0].Text.find("orr    x0, x20"), std::string::npos);
}

TEST(PatternStatsTest, TotalInstrsReported) {
  Program P;
  Module &M = P.addModule("m");
  addIdiomFns(P, M, "a", 3, Reg::X20, P.internSymbol("g"));
  PatternAnalysis A = analyzePatterns(P, M);
  EXPECT_EQ(A.TotalInstrs, M.numInstrs());
}

} // namespace
