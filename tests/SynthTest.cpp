//===- tests/SynthTest.cpp - Corpus synthesizer tests ---------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/CorpusSynthesizer.h"

#include "synth/AppEvolution.h"
#include "outliner/PatternStats.h"
#include "pipeline/BuildPipeline.h"
#include "sim/Interpreter.h"
#include "support/Statistics.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

AppProfile smallRider() {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 10;
  P.FunctionsPerModule = 12;
  return P;
}

TEST(SynthTest, Deterministic) {
  AppProfile P = smallRider();
  auto A = CorpusSynthesizer(P).generate();
  auto B = CorpusSynthesizer(P).generate();
  ASSERT_EQ(A->Modules.size(), B->Modules.size());
  EXPECT_EQ(A->numInstrs(), B->numInstrs());
  // Deep structural equality of one module.
  const Module &MA = *A->Modules[3];
  const Module &MB = *B->Modules[3];
  ASSERT_EQ(MA.Functions.size(), MB.Functions.size());
  for (size_t F = 0; F < MA.Functions.size(); ++F) {
    ASSERT_EQ(MA.Functions[F].numInstrs(), MB.Functions[F].numInstrs());
    for (size_t Blk = 0; Blk < MA.Functions[F].Blocks.size(); ++Blk) {
      const auto &IA = MA.Functions[F].Blocks[Blk].Instrs;
      const auto &IB = MB.Functions[F].Blocks[Blk].Instrs;
      for (size_t I = 0; I < IA.size(); ++I)
        EXPECT_TRUE(IA[I] == IB[I]);
    }
  }
}

TEST(SynthTest, ModuleContentIndependentOfTotalCount) {
  // Module k must be identical whether the app has 10 or 20 modules — the
  // basis of the Fig. 1 evolution experiment.
  AppProfile P = smallRider();
  auto A = CorpusSynthesizer(P).generate(10);
  auto B = CorpusSynthesizer(P).generate(20);
  const Module &MA = *A->Modules[5]; // feature4 in both.
  const Module &MB = *B->Modules[5];
  EXPECT_EQ(MA.Name, MB.Name);
  EXPECT_EQ(MA.numInstrs(), MB.numInstrs());
}

TEST(SynthTest, AllSpansExecuteAndBalanceHeap) {
  AppProfile P = smallRider();
  auto Prog = CorpusSynthesizer(P).generate();
  BinaryImage Image(*Prog);
  Interpreter I(Image, *Prog);
  for (unsigned S = 0; S < P.NumSpans; ++S) {
    I.call(CorpusSynthesizer::spanFunctionName(S));
    EXPECT_EQ(I.memory().liveHeapBytes(), 0u) << "span " << S;
  }
}

TEST(SynthTest, SpansSurviveFiveRoundsOfOutlining) {
  // The central semantic property: whole-program repeated outlining must
  // not change observable behaviour.
  AppProfile P = smallRider();
  auto Prog = CorpusSynthesizer(P).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 5;
  buildProgram(*Prog, Opts);
  BinaryImage Image(*Prog);
  Interpreter I(Image, *Prog);
  for (unsigned S = 0; S < P.NumSpans; ++S) {
    I.call(CorpusSynthesizer::spanFunctionName(S));
    EXPECT_EQ(I.memory().liveHeapBytes(), 0u) << "span " << S;
  }
}

TEST(SynthTest, GlobalWriteCountsMatchAcrossOutlining) {
  // Stronger equivalence: the global side effects (counter updates) of a
  // span must be identical with and without outlining.
  AppProfile P = smallRider();

  auto Baseline = CorpusSynthesizer(P).generate();
  BinaryImage BImg(*Baseline);
  Interpreter BI(BImg, *Baseline);
  BI.call(CorpusSynthesizer::spanFunctionName(0));

  auto Optimized = CorpusSynthesizer(P).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 5;
  buildProgram(*Optimized, Opts);
  BinaryImage OImg(*Optimized);
  Interpreter OI(OImg, *Optimized);
  OI.call(CorpusSynthesizer::spanFunctionName(0));

  // Compare every module global's final content word by word.
  for (unsigned M = 0; M < P.NumModules; ++M) {
    for (unsigned G = 0; G < P.GlobalsPerModule; ++G) {
      std::string Name =
          "g_" + std::to_string(M) + "_" + std::to_string(G);
      uint32_t BSym = Baseline->lookupSymbol(Name);
      uint32_t OSym = Optimized->lookupSymbol(Name);
      ASSERT_NE(BSym, UINT32_MAX);
      ASSERT_NE(OSym, UINT32_MAX);
      uint64_t BAddr = BImg.globalAddr(BSym);
      uint64_t OAddr = OImg.globalAddr(OSym);
      for (unsigned W = 0; W < P.GlobalWords; ++W)
        ASSERT_EQ(BI.memory().read64(BAddr + 8 * W),
                  OI.memory().read64(OAddr + 8 * W))
            << Name << " word " << W;
    }
  }
}

TEST(SynthTest, PatternStructureMatchesPaper) {
  // Section IV headline facts must hold on the synthesized corpus:
  // frequencies follow a power law; short patterns dominate; most
  // profitable candidates end in a call or return.
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 16;
  auto Prog = CorpusSynthesizer(P).generate();
  Module &Linked = linkProgram(*Prog);
  PatternAnalysis A = analyzePatterns(*Prog, Linked);
  ASSERT_GT(A.Patterns.size(), 200u);

  // Power-law fit on rank-frequency.
  std::vector<double> Ranks, Freqs;
  for (const PatternRecord &Pt : A.Patterns) {
    Ranks.push_back(Pt.Rank);
    Freqs.push_back(static_cast<double>(Pt.Frequency));
  }
  PowerLawFit F = fitPowerLaw(Ranks, Freqs);
  EXPECT_LT(F.B, -0.4);
  EXPECT_GT(F.R2, 0.7);

  // Length-2 candidates dominate.
  IntHistogram LenHist;
  for (const PatternRecord &Pt : A.Patterns)
    LenHist.add(Pt.Length, Pt.Frequency);
  uint64_t MaxCount = 0, MaxLen = 0;
  for (const auto &KV : LenHist.bins())
    if (KV.second > MaxCount) {
      MaxCount = KV.second;
      MaxLen = KV.first;
    }
  EXPECT_EQ(MaxLen, 2u);

  // Call/return-ending share is the majority (paper: 67%).
  EXPECT_GT(A.callRetEndingShare(), 0.4);
  EXPECT_LT(A.callRetEndingShare(), 0.95);
}

TEST(SynthTest, WholeProgramBeatsPerModule) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 16;

  auto PM = CorpusSynthesizer(P).generate();
  PipelineOptions PMO;
  PMO.WholeProgram = false;
  PMO.OutlineRounds = 5;
  BuildResult RPM = buildProgram(*PM, PMO);

  auto WP = CorpusSynthesizer(P).generate();
  PipelineOptions WPO;
  WPO.OutlineRounds = 5;
  BuildResult RWP = buildProgram(*WP, WPO);

  EXPECT_LT(RWP.CodeSize, RPM.CodeSize);
}

TEST(SynthTest, RepeatedRoundsAddSavings) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 16;

  auto One = CorpusSynthesizer(P).generate();
  PipelineOptions O1;
  O1.OutlineRounds = 1;
  BuildResult R1 = buildProgram(*One, O1);

  auto Five = CorpusSynthesizer(P).generate();
  PipelineOptions O5;
  O5.OutlineRounds = 5;
  BuildResult R5 = buildProgram(*Five, O5);

  EXPECT_LT(R5.CodeSize, R1.CodeSize);
}

TEST(AppEvolutionTest, SnapshotsGrowMonotonically) {
  AppProfile P = smallRider();
  AppEvolution Evo(P, /*BaseModules=*/6, /*ModulesPerMonth=*/2);
  uint64_t Prev = 0;
  for (unsigned Month = 0; Month < 4; ++Month) {
    auto Snap = Evo.snapshot(Month);
    uint64_t Size = Snap->codeSize();
    EXPECT_GT(Size, Prev);
    Prev = Size;
    EXPECT_EQ(Evo.modulesAt(Month), 6 + 2 * Month);
  }
}

TEST(SynthTest, ProfilesDiffer) {
  AppProfile Rider = AppProfile::uberRider();
  AppProfile Kernel = AppProfile::linuxKernel();
  Rider.NumModules = Kernel.NumModules = 6;
  auto A = CorpusSynthesizer(Rider).generate();
  auto B = CorpusSynthesizer(Kernel).generate();
  // The kernel profile must contain no retain/release traffic.
  EXPECT_NE(A->lookupSymbol("swift_retain"), UINT32_MAX);
  EXPECT_EQ(B->lookupSymbol("swift_retain"), UINT32_MAX);
  EXPECT_NE(B->lookupSymbol("__stack_chk_guard"), UINT32_MAX);
}

} // namespace
