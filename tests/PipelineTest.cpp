//===- tests/PipelineTest.cpp - Build pipeline tests ----------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/BuildPipeline.h"

#include "mir/MIRBuilder.h"
#include "synth/CorpusSynthesizer.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

AppProfile tinyProfile() {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 8;
  P.FunctionsPerModule = 10;
  return P;
}

TEST(PipelineTest, ZeroRoundsDisablesOutlining) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  uint64_t Before = Prog->codeSize();
  PipelineOptions Opts;
  Opts.OutlineRounds = 0;
  BuildResult R = buildProgram(*Prog, Opts);
  EXPECT_EQ(R.CodeSize, Before);
  EXPECT_TRUE(R.OutlineStats.Rounds.empty());
}

TEST(PipelineTest, WholeProgramMergesModulesFirst) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 1;
  buildProgram(*Prog, Opts);
  EXPECT_EQ(Prog->Modules.size(), 1u);
}

TEST(PipelineTest, PerModuleKeepsClonesDistinct) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  PipelineOptions Opts;
  Opts.WholeProgram = false;
  Opts.OutlineRounds = 1;
  buildProgram(*Prog, Opts);
  // Outlined names must be module-qualified, so identical bodies from
  // different modules stay distinct symbols.
  unsigned Qualified = 0;
  for (const MachineFunction &MF : Prog->Modules[0]->Functions)
    if (MF.IsOutlined) {
      EXPECT_NE(Prog->symbolName(MF.Name).find('@'), std::string::npos);
      ++Qualified;
    }
  EXPECT_GT(Qualified, 0u);
}

TEST(PipelineTest, StatsAccountSizesExactly) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  uint64_t Before = Prog->codeSize();
  PipelineOptions Opts;
  Opts.OutlineRounds = 3;
  BuildResult R = buildProgram(*Prog, Opts);
  ASSERT_FALSE(R.OutlineStats.Rounds.empty());
  EXPECT_EQ(R.OutlineStats.Rounds.front().CodeSizeBefore, Before);
  // Chain: each round's after == next round's before.
  for (size_t I = 1; I < R.OutlineStats.Rounds.size(); ++I)
    EXPECT_EQ(R.OutlineStats.Rounds[I].CodeSizeBefore,
              R.OutlineStats.Rounds[I - 1].CodeSizeAfter);
  EXPECT_EQ(R.OutlineStats.Rounds.back().CodeSizeAfter, R.CodeSize);
}

TEST(PipelineTest, DiminishingRoundsInPipeline) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 6;
  BuildResult R = buildProgram(*Prog, Opts);
  ASSERT_GE(R.OutlineStats.Rounds.size(), 2u);
  for (size_t I = 1; I < R.OutlineStats.Rounds.size(); ++I)
    EXPECT_LE(R.OutlineStats.Rounds[I].bytesSaved(),
              R.OutlineStats.Rounds[I - 1].bytesSaved());
}

TEST(PipelineTest, PhaseTimesReported) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 2;
  BuildResult R = buildProgram(*Prog, Opts);
  EXPECT_GT(R.OutlineSeconds, 0.0);
  EXPECT_GE(R.totalSeconds(), R.OutlineSeconds);
  EXPECT_EQ(R.OutlineRoundSeconds.size(), R.OutlineStats.Rounds.size());
}

TEST(PipelineTest, DataLayoutModeReachesLinker) {
  auto A = CorpusSynthesizer(tinyProfile()).generate();
  PipelineOptions OA;
  OA.OutlineRounds = 0;
  OA.DataLayout = DataLayoutMode::PreserveModuleOrder;
  buildProgram(*A, OA);
  const auto &GA = A->Modules[0]->Globals;
  for (size_t I = 1; I < GA.size(); ++I)
    EXPECT_LE(GA[I - 1].OriginModule, GA[I].OriginModule);

  auto B = CorpusSynthesizer(tinyProfile()).generate();
  PipelineOptions OB;
  OB.OutlineRounds = 0;
  OB.DataLayout = DataLayoutMode::Interleaved;
  buildProgram(*B, OB);
  const auto &GB = B->Modules[0]->Globals;
  bool Sorted = true;
  for (size_t I = 1; I < GB.size(); ++I)
    Sorted &= GB[I - 1].OriginModule <= GB[I].OriginModule;
  EXPECT_FALSE(Sorted);
}

} // namespace
