//===- tests/OptionsMatrixTest.cpp - Outliner option sweeps ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Property sweep over the outliner's option matrix: for every combination
/// of candidate-discovery mode, minimum length, greedy key, and RegSave
/// availability, outlining a synthesized corpus must (a) never grow the
/// code, (b) produce a verifying module, and (c) leave every span
/// observationally intact.
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "mir/MIRVerifier.h"
#include "outliner/MachineOutliner.h"
#include "sim/Interpreter.h"
#include "synth/CorpusSynthesizer.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

struct MatrixPoint {
  bool LeafDescendants;
  unsigned MinLength;
  bool SortByBenefit;
  bool EnableRegSave;
};

std::string pointName(const MatrixPoint &P) {
  std::string S;
  S += P.LeafDescendants ? "Descendants" : "LeafChildren";
  S += "_MinLen" + std::to_string(P.MinLength);
  S += P.SortByBenefit ? "_Benefit" : "_Length";
  S += P.EnableRegSave ? "_RegSave" : "_NoRegSave";
  return S;
}

class OptionsMatrixTest : public ::testing::TestWithParam<MatrixPoint> {
protected:
  static AppProfile profile() {
    AppProfile P = AppProfile::uberRider();
    P.NumModules = 16;
    return P;
  }
};

TEST_P(OptionsMatrixTest, ShrinksVerifiesAndPreservesBehaviour) {
  const MatrixPoint &Pt = GetParam();
  AppProfile Profile = profile();

  // Reference span checksum from the unoutlined build.
  uint64_t Reference = 0;
  {
    auto Prog = CorpusSynthesizer(Profile).generate();
    linkProgram(*Prog);
    BinaryImage Image(*Prog);
    Interpreter I(Image, *Prog);
    I.call(CorpusSynthesizer::spanFunctionName(0));
    uint32_t Sym = Prog->lookupSymbol("g_0_0");
    uint64_t Addr = Image.globalAddr(Sym);
    for (unsigned W = 0; W < Profile.GlobalWords; ++W) {
      Reference ^= I.memory().read64(Addr + 8 * W);
      Reference *= 1099511628211ull;
    }
  }

  auto Prog = CorpusSynthesizer(Profile).generate();
  Module &Linked = linkProgram(*Prog);
  uint64_t Before = Linked.codeSize();

  OutlinerOptions Opts;
  Opts.LeafDescendants = Pt.LeafDescendants;
  Opts.MinLength = Pt.MinLength;
  Opts.SortByBenefit = Pt.SortByBenefit;
  Opts.EnableRegSave = Pt.EnableRegSave;
  RepeatedOutlineStats S = runRepeatedOutliner(*Prog, Linked, 3, Opts);

  // (a) Monotone shrinkage, round over round.
  uint64_t Prev = Before;
  for (const OutlineRoundStats &RS : S.Rounds) {
    EXPECT_EQ(RS.CodeSizeBefore, Prev);
    EXPECT_LE(RS.CodeSizeAfter, RS.CodeSizeBefore);
    Prev = RS.CodeSizeAfter;
  }
  EXPECT_LT(Linked.codeSize(), Before);

  // (b) Structural validity including symbol resolution.
  VerifyOptions VOpts;
  VOpts.CheckSymbolResolution = true;
  ASSERT_EQ(verifyModule(*Prog, Linked, VOpts), "") << pointName(Pt);

  // (c) Observational equivalence of a span.
  BinaryImage Image(*Prog);
  Interpreter I(Image, *Prog);
  I.call(CorpusSynthesizer::spanFunctionName(0));
  uint32_t Sym = Prog->lookupSymbol("g_0_0");
  uint64_t Addr = Image.globalAddr(Sym);
  uint64_t Sum = 0;
  for (unsigned W = 0; W < Profile.GlobalWords; ++W) {
    Sum ^= I.memory().read64(Addr + 8 * W);
    Sum *= 1099511628211ull;
  }
  EXPECT_EQ(Sum, Reference) << pointName(Pt);
  EXPECT_EQ(I.memory().liveHeapBytes(), 0u);
}

TEST_P(OptionsMatrixTest, MinLengthIsRespected) {
  const MatrixPoint &Pt = GetParam();
  auto Prog = CorpusSynthesizer(profile()).generate();
  Module &Linked = linkProgram(*Prog);
  OutlinerOptions Opts;
  Opts.LeafDescendants = Pt.LeafDescendants;
  Opts.MinLength = Pt.MinLength;
  Opts.SortByBenefit = Pt.SortByBenefit;
  Opts.EnableRegSave = Pt.EnableRegSave;
  runOutlinerRound(*Prog, Linked, 1, Opts);

  // Every outlined body must contain at least MinLength original
  // instructions beyond its frame.
  for (const MachineFunction &MF : Linked.Functions) {
    if (!MF.IsOutlined)
      continue;
    unsigned Frame = 0;
    switch (MF.FrameKind) {
    case OutlinedFrameKind::AppendedRet: Frame = 1; break;
    case OutlinedFrameKind::SavesLRInFrame: Frame = 3; break;
    default: Frame = 0; break;
    }
    EXPECT_GE(MF.numInstrs(), Opts.MinLength + Frame)
        << Prog->symbolName(MF.Name);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, OptionsMatrixTest,
    ::testing::Values(MatrixPoint{false, 2, true, true},
                      MatrixPoint{true, 2, true, true},
                      MatrixPoint{false, 3, true, true},
                      MatrixPoint{false, 2, false, true},
                      MatrixPoint{false, 2, true, false},
                      MatrixPoint{true, 3, false, false}),
    [](const ::testing::TestParamInfo<MatrixPoint> &Info) {
      return pointName(Info.param);
    });

} // namespace
