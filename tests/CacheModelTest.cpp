//===- tests/CacheModelTest.cpp - Microarchitectural model tests ----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/CacheModel.h"

#include "gtest/gtest.h"

using namespace mco;

namespace {

TEST(SetAssocCacheTest, HitsAfterMiss) {
  SetAssocCache C(1024, 2, 64);
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1004)); // Same line.
  EXPECT_EQ(C.misses(), 1u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(SetAssocCacheTest, PseudoRandomEviction) {
  // 2-way, 64B lines, 2 sets (256B total). Three lines mapping to set 0:
  // the third insertion must evict exactly one of the two residents
  // (pseudo-random victim, as in ARM L1I caches), keeping the other.
  SetAssocCache C(256, 2, 64);
  EXPECT_FALSE(C.access(0x0000)); // set 0
  EXPECT_FALSE(C.access(0x0080)); // set 0
  EXPECT_FALSE(C.access(0x0100)); // set 0: evicts one resident
  int Hits = (C.access(0x0000) ? 1 : 0) + (C.access(0x0080) ? 1 : 0);
  EXPECT_EQ(Hits, 1);
  EXPECT_EQ(C.misses() + C.hits(), 5u);
}

TEST(SetAssocCacheTest, InvalidWaysFillFirst) {
  // Insertions never evict while invalid ways remain.
  SetAssocCache C(512, 4, 64); // 2 sets, 4 ways.
  C.access(0x0000);
  C.access(0x0080);
  C.access(0x0100);
  C.access(0x0180); // Fills all 4 ways of set 0.
  EXPECT_TRUE(C.access(0x0000));
  EXPECT_TRUE(C.access(0x0080));
  EXPECT_TRUE(C.access(0x0100));
  EXPECT_TRUE(C.access(0x0180));
}

TEST(SetAssocCacheTest, WorkingSetFitsNoCapacityMisses) {
  SetAssocCache C(32 << 10, 4, 64);
  // 16 KiB working set in a 32 KiB cache: second sweep must be all hits.
  for (uint64_t A = 0; A < (16 << 10); A += 64)
    C.access(A);
  C.resetStats();
  for (uint64_t A = 0; A < (16 << 10); A += 64)
    C.access(A);
  EXPECT_EQ(C.misses(), 0u);
}

TEST(SetAssocCacheTest, ThrashingWorkingSetMisses) {
  SetAssocCache C(4 << 10, 2, 64);
  // 64 KiB round-robin through a 4 KiB cache: every access misses.
  for (int Round = 0; Round < 3; ++Round)
    for (uint64_t A = 0; A < (64 << 10); A += 64)
      C.access(A);
  EXPECT_EQ(C.hits(), 0u);
}

TEST(TlbTest, CapacityEviction) {
  Tlb T(2, 4096);
  T.access(0x0000);
  T.access(0x1000);
  EXPECT_EQ(T.misses(), 2u);
  T.access(0x0000); // Hit.
  EXPECT_EQ(T.misses(), 2u);
  T.access(0x2000); // Evicts one of the two residents (never the newest).
  int Hits = (T.access(0x0000) ? 1 : 0) + (T.access(0x1000) ? 1 : 0);
  EXPECT_LE(Hits, 1);
  EXPECT_TRUE(T.access(0x2000) || true); // 0x2000 may have been evicted
                                         // by the probes above.
}

TEST(BranchPredictorTest, LearnsLoopBranch) {
  BranchPredictor BP(256);
  // A branch taken 100 times: after warmup it predicts correctly.
  for (int I = 0; I < 100; ++I)
    BP.predictConditional(0x4000, true);
  EXPECT_LE(BP.mispredicts(), 2u);
}

TEST(BranchPredictorTest, AlternatingBranchMispredicts) {
  BranchPredictor BP(256);
  for (int I = 0; I < 100; ++I)
    BP.predictConditional(0x4000, I % 2 == 0);
  // A 2-bit counter cannot learn strict alternation.
  EXPECT_GT(BP.mispredicts(), 30u);
}

TEST(BranchPredictorTest, ReturnStackMatchesCalls) {
  BranchPredictor BP(256);
  BP.pushCall(0x100);
  BP.pushCall(0x200);
  EXPECT_TRUE(BP.popReturn(0x200));
  EXPECT_TRUE(BP.popReturn(0x100));
  EXPECT_FALSE(BP.popReturn(0x300)); // Empty stack.
}

TEST(DataPageModelTest, FaultsOnColdAndEvictedPages) {
  DataPageModel D(2, 4096);
  EXPECT_TRUE(D.access(0x0000));
  EXPECT_TRUE(D.access(0x1000));
  EXPECT_FALSE(D.access(0x0000)); // Resident.
  EXPECT_TRUE(D.access(0x2000));  // Evicts 0x1000.
  EXPECT_TRUE(D.access(0x1000));
  EXPECT_EQ(D.faults(), 4u);
}

TEST(DataPageModelTest, AffinityMattersForFaults) {
  // The Section VI story in miniature: touching 8 globals packed into 2
  // pages faults twice; the same globals scattered over 8 pages fault 8
  // times, under a small resident set.
  DataPageModel Packed(4, 4096);
  for (int I = 0; I < 8; ++I)
    Packed.access(0x10000 + I * 512); // 8 globals in 1 page.
  DataPageModel Scattered(4, 4096);
  for (int I = 0; I < 8; ++I)
    Scattered.access(0x10000 + uint64_t(I) * 8192); // 1 global per page.
  EXPECT_LT(Packed.faults(), Scattered.faults());
}

} // namespace
