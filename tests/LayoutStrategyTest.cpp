//===- tests/LayoutStrategyTest.cpp - Layout strategy tests ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
// The fleet-profile-driven layout loop: strategy determinism across
// thread counts and seeds, bp bisection correctness on a hand-built
// trace, stitch page-budget invariants, the duplicate-symbol Status path
// through BinaryImage::create, and the closed loop end to end — traces
// from a fleet run feed bp, whose layout must cut simulated text page
// faults versus module order on the same fleet.
//
//===----------------------------------------------------------------------===//

#include "linker/LayoutStrategy.h"

#include "mir/MIRBuilder.h"
#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"
#include "telemetry/FleetSim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace mco;

namespace {

void addFn(Program &P, Module &M, const std::string &Name,
           unsigned NumInstrs = 2) {
  MachineFunction MF;
  MF.Name = P.internSymbol(Name);
  MIRBuilder B(MF.addBlock());
  for (unsigned I = 0; I + 1 < NumInstrs; ++I)
    B.movri(Reg::X0, I);
  B.ret();
  M.Functions.push_back(MF);
}

/// Names of Plan.Order in layout order (flat module-order indices mapped
/// back through the symbol table).
std::vector<std::string> orderedNames(const Program &Prog,
                                      const LayoutPlan &Plan) {
  const layout_detail::FunctionTable FT =
      layout_detail::flattenFunctions(Prog);
  std::vector<std::string> Names;
  for (uint32_t Flat : Plan.Order)
    Names.push_back(Prog.symbolName(FT.Syms[Flat]));
  return Names;
}

std::unique_ptr<Program> buildArtifact(unsigned Modules) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = Modules;
  auto Prog = CorpusSynthesizer(P).withThreads(4).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 1;
  Opts.WholeProgram = true;
  Opts.Threads = 4;
  buildProgram(*Prog, Opts);
  return Prog;
}

FleetOptions fleetOptions(unsigned Devices, uint64_t Seed = 0x5EED) {
  FleetOptions O;
  O.NumDevices = Devices;
  O.Seed = Seed;
  const AppProfile P = AppProfile::uberRider();
  for (unsigned S = 0; S < P.NumSpans; ++S)
    O.Entries.push_back(CorpusSynthesizer::spanFunctionName(S));
  return O;
}

uint64_t totalTextFaults(const FleetReport &R) {
  uint64_t N = 0;
  for (const DeviceResult &D : R.Devices)
    N += D.Counters.TextPageFaults;
  return N;
}

TEST(LayoutStrategyTest, RegistryListsAllStrategies) {
  const std::vector<std::string> Names = layoutStrategyNames();
  ASSERT_EQ(Names.size(), 3u);
  for (const std::string &N : Names) {
    auto SE = createLayoutStrategy(N);
    ASSERT_TRUE(SE.ok()) << N;
    EXPECT_EQ(SE.get()->name(), N);
    // DataLayoutMode is folded into the strategy: every strategy defaults
    // to affinity-preserving data, and the legacy flag overrides it.
    EXPECT_EQ(SE.get()->dataLayout(), DataLayoutMode::PreserveModuleOrder);
    SE.get()->overrideDataLayout(DataLayoutMode::Interleaved);
    EXPECT_EQ(SE.get()->dataLayout(), DataLayoutMode::Interleaved);
  }
  EXPECT_FALSE(createLayoutStrategy("no-such-strategy").ok());
}

TEST(LayoutStrategyTest, PlansAreDeterministicAcrossThreadsAndSeeds) {
  auto Prog = buildArtifact(12);

  for (uint64_t Seed : {uint64_t(0x5EED), uint64_t(1)}) {
    // Trace capture must be byte-identical at any fleet thread count.
    FleetOptions O = fleetOptions(16, Seed);
    O.Threads = 1;
    TraceProfile T1;
    runFleet(*Prog, O, nullptr, &T1);
    O.Threads = 8;
    TraceProfile T8;
    runFleet(*Prog, O, nullptr, &T8);
    EXPECT_EQ(traceProfileJson(T1), traceProfileJson(T8));

    // A strategy is a pure function of (program, traces): repeated plans
    // and plans over the identically-captured profile must match.
    for (const std::string &Name : layoutStrategyNames()) {
      auto SE = createLayoutStrategy(Name);
      ASSERT_TRUE(SE.ok());
      auto PA = SE.get()->plan(*Prog, T1);
      auto PB = SE.get()->plan(*Prog, T1);
      auto PC = SE.get()->plan(*Prog, T8);
      ASSERT_TRUE(PA.ok() && PB.ok() && PC.ok()) << Name;
      EXPECT_EQ(PA.get().Order, PB.get().Order) << Name;
      EXPECT_EQ(PA.get().Order, PC.get().Order) << Name;
      EXPECT_EQ(PA.get().EstimatedTextFaults, PB.get().EstimatedTextFaults);
      EXPECT_EQ(PA.get().ChainSizes, PC.get().ChainSizes) << Name;
    }
  }
}

TEST(LayoutStrategyTest, BpBisectionGroupsCoExecutedFunctions) {
  // Ten functions; the trace makes {f0,f2,f4,f6} and {f1,f3,f5,f7} two
  // startup phases whose members co-execute, while a mixed stream pins
  // first-seen order to the interleaved f0..f7 — so module order (and the
  // initial bisection split) cuts straight through both groups. The
  // Kernighan-Lin refinement must regroup them. f8/f9 are never traced.
  Program P;
  Module &M = P.addModule("m");
  for (int I = 0; I < 10; ++I)
    addFn(P, M, "f" + std::to_string(I), 8);

  TraceProfile T;
  std::vector<uint32_t> Id;
  for (int I = 0; I < 8; ++I)
    Id.push_back(T.functionId("f" + std::to_string(I)));

  DeviceTrace Mix;
  Mix.Device = 0;
  for (int Rep = 0; Rep < 2; ++Rep)
    for (int I = 0; I < 8; ++I)
      Mix.Entries.push_back(Id[I]);
  T.Devices.push_back(Mix);
  for (int G = 0; G < 2; ++G) {
    DeviceTrace D;
    D.Device = 1 + G;
    for (int Rep = 0; Rep < 12; ++Rep)
      for (int I = G; I < 8; I += 2)
        D.Entries.push_back(Id[I]);
    T.Devices.push_back(D);
  }

  auto SE = createLayoutStrategy("bp");
  ASSERT_TRUE(SE.ok());
  auto PE = SE.get()->plan(P, T);
  ASSERT_TRUE(PE.ok());
  const LayoutPlan &Plan = PE.get();
  EXPECT_EQ(Plan.Strategy, "bp");
  EXPECT_EQ(Plan.FunctionsTraced, 8u);
  ASSERT_EQ(Plan.Order.size(), 10u);

  const std::vector<std::string> Names = orderedNames(P, Plan);
  const std::set<std::string> FirstHalf(Names.begin(), Names.begin() + 4);
  const std::set<std::string> SecondHalf(Names.begin() + 4,
                                         Names.begin() + 8);
  const std::set<std::string> Even = {"f0", "f2", "f4", "f6"};
  const std::set<std::string> Odd = {"f1", "f3", "f5", "f7"};
  EXPECT_TRUE((FirstHalf == Even && SecondHalf == Odd) ||
              (FirstHalf == Odd && SecondHalf == Even))
      << "bisection failed to regroup co-executed functions";
  // Untraced functions keep module order at the end.
  EXPECT_EQ(Names[8], "f8");
  EXPECT_EQ(Names[9], "f9");
}

TEST(LayoutStrategyTest, StitchMergesHotPairsUnderPageBudget) {
  // a->b is hot and both fit one page: they must be stitched adjacently.
  // big->tiny is hotter still, but big alone exceeds the 16 KiB budget,
  // so Codestitcher's constraint forbids the merge; both stay heat-0
  // singletons in the warm tier (they did execute), ahead of the
  // untraced cold pair.
  Program P;
  Module &M = P.addModule("m");
  const unsigned BigInstrs =
      static_cast<unsigned>(PageBudgetBytes / InstrBytes) + 16;
  addFn(P, M, "big", BigInstrs);
  addFn(P, M, "tiny", 4);
  addFn(P, M, "a", 8);
  addFn(P, M, "b", 8);
  addFn(P, M, "cold1", 2);
  addFn(P, M, "cold2", 2);

  TraceProfile T;
  DeviceTrace D;
  D.Device = 0;
  D.Calls.push_back({T.functionId("big"), T.functionId("tiny"), 200});
  D.Calls.push_back({T.functionId("a"), T.functionId("b"), 100});
  T.Devices.push_back(D);

  auto SE = createLayoutStrategy("stitch");
  ASSERT_TRUE(SE.ok());
  auto PE = SE.get()->plan(P, T);
  ASSERT_TRUE(PE.ok());
  const LayoutPlan &Plan = PE.get();
  EXPECT_EQ(Plan.FunctionsTraced, 4u);

  const std::vector<std::string> Names = orderedNames(P, Plan);
  const std::vector<std::string> Want = {"a",     "b",     "big",
                                         "tiny",  "cold1", "cold2"};
  EXPECT_EQ(Names, Want);
  // Exactly one hot chain (a+b), within the page budget.
  ASSERT_EQ(Plan.ChainSizes.size(), 1u);
  EXPECT_EQ(Plan.ChainSizes[0], 2 * 8 * InstrBytes);
  EXPECT_LE(Plan.ChainSizes[0], PageBudgetBytes);
}

TEST(LayoutStrategyTest, StitchPageBudgetHoldsOnFleetTraces) {
  auto Prog = buildArtifact(16);
  FleetOptions O = fleetOptions(16);
  O.Threads = 4;
  TraceProfile T;
  runFleet(*Prog, O, nullptr, &T);
  ASSERT_FALSE(T.Devices.empty());

  auto SE = createLayoutStrategy("stitch");
  ASSERT_TRUE(SE.ok());
  auto PE = SE.get()->plan(*Prog, T);
  ASSERT_TRUE(PE.ok());
  const LayoutPlan &Plan = PE.get();

  // The invariant the strategy is named for: every stitched (multi-
  // function) chain fits one 16 KiB page.
  EXPECT_FALSE(Plan.ChainSizes.empty());
  for (uint64_t Bytes : Plan.ChainSizes)
    EXPECT_LE(Bytes, PageBudgetBytes);

  // And the order is a permutation of the program's functions.
  const layout_detail::FunctionTable FT =
      layout_detail::flattenFunctions(*Prog);
  ASSERT_EQ(Plan.Order.size(), FT.size());
  std::vector<uint32_t> Sorted(Plan.Order);
  std::sort(Sorted.begin(), Sorted.end());
  for (uint32_t I = 0; I < Sorted.size(); ++I)
    EXPECT_EQ(Sorted[I], I);
}

TEST(LayoutStrategyTest, CreateRejectsDuplicateSymbolsWithStatus) {
  // The duplicate-symbol path used to abort the process; create() now
  // returns a Status the caller can surface and recover from.
  Program P;
  Module &M = P.addModule("m");
  addFn(P, M, "dup", 4);
  addFn(P, M, "dup", 4);

  auto IE = BinaryImage::create(P);
  ASSERT_FALSE(IE.ok());
  EXPECT_NE(IE.status().message().find("duplicate symbol"),
            std::string::npos);
  EXPECT_NE(IE.status().message().find("dup"), std::string::npos);

  Program PG;
  Module &MG = PG.addModule("m");
  addFn(PG, MG, "f", 4);
  GlobalData G;
  G.Name = PG.internSymbol("g");
  G.Bytes.assign(16, 0);
  MG.Globals.push_back(G);
  MG.Globals.push_back(G);
  auto GE = BinaryImage::create(PG);
  ASSERT_FALSE(GE.ok());
  EXPECT_NE(GE.status().message().find("duplicate global"),
            std::string::npos);

  // A clean program still succeeds through the same path.
  Program POk;
  Module &MOk = POk.addModule("m");
  addFn(POk, MOk, "f", 4);
  EXPECT_TRUE(BinaryImage::create(POk).ok());
}

TEST(LayoutStrategyTest, PlansMoveAddressesNotBytes) {
  auto Prog = buildArtifact(12);
  FleetOptions O = fleetOptions(8);
  O.Threads = 4;
  TraceProfile T;
  runFleet(*Prog, O, nullptr, &T);

  auto Orig = BinaryImage::create(*Prog);
  ASSERT_TRUE(Orig.ok());
  auto SE = createLayoutStrategy("bp");
  ASSERT_TRUE(SE.ok());
  auto PE = SE.get()->plan(*Prog, T);
  ASSERT_TRUE(PE.ok());
  auto Opt = BinaryImage::create(*Prog, &PE.get());
  ASSERT_TRUE(Opt.ok());

  // Same bytes: identical code/data sizes and the identical function set
  // (the plan is a permutation — instruction bytes and outlining stats
  // are untouched, only addresses move).
  EXPECT_EQ(Orig.get().codeSize(), Opt.get().codeSize());
  EXPECT_EQ(Orig.get().dataSize(), Opt.get().dataSize());
  ASSERT_EQ(Orig.get().funcs().size(), Opt.get().funcs().size());
  std::set<const MachineFunction *> A, B;
  bool Moved = false;
  for (size_t I = 0; I < Orig.get().funcs().size(); ++I) {
    A.insert(Orig.get().funcs()[I].MF);
    B.insert(Opt.get().funcs()[I].MF);
    Moved |= Orig.get().funcs()[I].MF != Opt.get().funcs()[I].MF;
  }
  EXPECT_EQ(A, B);
  EXPECT_TRUE(Moved) << "bp plan left every function in module order";
}

TEST(LayoutStrategyTest, BpCutsSimulatedTextFaultsEndToEnd) {
  // The closed loop: measure the original layout on the fleet, plan from
  // its traces, and re-measure — the optimized layout must touch fewer
  // text pages on the very same devices, and the staged rollout must ramp
  // it clean to 100%.
  auto Prog = buildArtifact(32);
  FleetOptions O = fleetOptions(16);
  O.Threads = 4;

  TraceProfile T;
  const FleetReport Base = runFleet(*Prog, O, nullptr, &T);
  EXPECT_GT(T.totalEntries(), 0u);
  const uint64_t BaseFaults = totalTextFaults(Base);
  ASSERT_GT(BaseFaults, 0u);

  for (const std::string &Name : {std::string("bp"), std::string("stitch")}) {
    auto SE = createLayoutStrategy(Name);
    ASSERT_TRUE(SE.ok());
    auto PE = SE.get()->plan(*Prog, T);
    ASSERT_TRUE(PE.ok());
    const FleetReport Opt = runFleet(*Prog, O, &PE.get());
    EXPECT_LT(totalTextFaults(Opt), BaseFaults) << Name;
  }

  auto SE = createLayoutStrategy("bp");
  ASSERT_TRUE(SE.ok());
  auto PE = SE.get()->plan(*Prog, T);
  ASSERT_TRUE(PE.ok());
  RolloutVerdict V = runStagedRollout(*Prog, *Prog, O, defaultStagePercents(),
                                      {}, nullptr, nullptr, nullptr,
                                      &PE.get());
  EXPECT_FALSE(V.Regression) << V.Summary;
  EXPECT_DOUBLE_EQ(V.HaltedAtPercent, 100.0);
}

} // namespace
