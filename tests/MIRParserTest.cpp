//===- tests/MIRParserTest.cpp - Parser & round-trip tests ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/MIRParser.h"

#include "mir/MIRPrinter.h"
#include "mir/MIRVerifier.h"
#include "outliner/MachineOutliner.h"
#include "sim/Interpreter.h"
#include "synth/CorpusSynthesizer.h"
#include "linker/Linker.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

TEST(MIRParserTest, ParsesSimpleFunction) {
  Program P;
  ParseResult R = parseModule(P, R"(; module demo
f:
  mov    x0, #41
  add    x0, x0, #1
  ret
)");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.M->Name, "demo");
  ASSERT_EQ(R.M->Functions.size(), 1u);
  EXPECT_EQ(R.M->Functions[0].numInstrs(), 3u);

  BinaryImage Img(P);
  Interpreter I(Img, P);
  EXPECT_EQ(I.call("f"), 42);
}

TEST(MIRParserTest, ParsesBlocksAndBranches) {
  Program P;
  ParseResult R = parseModule(P, R"(
f:
  cmp    x0, #10
  b.cc   lt, .LBB2
  b      .LBB1
.LBB1:
  mov    x0, #0
  ret
.LBB2:
  mov    x0, #1
  ret
)");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.M->Functions[0].numBlocks(), 3u);
  BinaryImage Img(P);
  Interpreter I(Img, P);
  EXPECT_EQ(I.call("f", {5}), 1);
  EXPECT_EQ(I.call("f", {15}), 0);
}

TEST(MIRParserTest, ParsesGlobalsAndSymbols) {
  Program P;
  ParseResult R = parseModule(P, R"(
f:
  adr    x1, table
  ldr    x0, x1, #8
  ret
table: .space 16
)");
  ASSERT_TRUE(R) << R.Error;
  ASSERT_EQ(R.M->Globals.size(), 1u);
  EXPECT_EQ(R.M->Globals[0].Bytes.size(), 16u);
}

TEST(MIRParserTest, DisambiguatesRegisterVsImmediateForms) {
  Program P;
  ParseResult R = parseModule(P, R"(
f:
  add    x0, x1, #4
  add    x0, x1, x2
  cmp    x0, #1
  cmp    x0, x1
  lsl    x2, x3, #2
  lsl    x2, x3, x4
  ret
)");
  ASSERT_TRUE(R) << R.Error;
  const auto &I = R.M->Functions[0].Blocks[0].Instrs;
  EXPECT_EQ(I[0].opcode(), Opcode::ADDri);
  EXPECT_EQ(I[1].opcode(), Opcode::ADDrr);
  EXPECT_EQ(I[2].opcode(), Opcode::CMPri);
  EXPECT_EQ(I[3].opcode(), Opcode::CMPrr);
  EXPECT_EQ(I[4].opcode(), Opcode::LSLri);
  EXPECT_EQ(I[5].opcode(), Opcode::LSLrr);
}

TEST(MIRParserTest, ReportsErrorsWithLineNumbers) {
  Program P;
  ParseResult R = parseModule(P, "f:\n  bogus x0\n");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("line 2"), std::string::npos);

  ParseResult R2 = parseModule(P, "f:\n  mov x0, x1, x2\n");
  EXPECT_FALSE(R2);

  ParseResult R3 = parseModule(P, "  mov x0, #1\n");
  EXPECT_FALSE(R3); // Instruction outside a function.
}

TEST(MIRParserTest, RecoversAtNextFunctionAndReportsEveryError) {
  // One parse reports all broken functions: after an error the parser
  // skips to the next function header, so a good function between two
  // bad ones still parses and both errors are diagnosed.
  Program P;
  ParseResult R = parseModule(P, R"(; module multi
f:
  bogus x0
g:
  mov x0, #1
  ret
h:
  mov x0, zzz
  ret
)");
  ASSERT_FALSE(R);
  ASSERT_EQ(R.Diags.size(), 2u);
  EXPECT_EQ(R.Diags[0].Line, 3u);
  EXPECT_NE(R.Diags[0].Message.find("bogus"), std::string::npos);
  EXPECT_EQ(R.Diags[1].Line, 8u);
  // The rendered Error is the first diagnostic.
  EXPECT_EQ(R.Error, R.Diags[0].render());
  // The failed module must not be left half-appended to the program.
  EXPECT_TRUE(P.Modules.empty());
}

TEST(MIRParserTest, ReportsColumnOfOffendingOperand) {
  Program P;
  ParseResult R = parseModule(P, "f:\n  mov x0, zzz\n");
  ASSERT_FALSE(R);
  ASSERT_EQ(R.Diags.size(), 1u);
  EXPECT_EQ(R.Diags[0].Line, 2u);
  // "  mov x0, zzz": the bad operand's 'z' is at 1-based column 11.
  EXPECT_EQ(R.Diags[0].Column, 11u);
  EXPECT_NE(R.Diags[0].render().find("line 2, col 11"), std::string::npos);

  // An unknown mnemonic points at the start of the instruction.
  ParseResult R2 = parseModule(P, "f:\n  bogus x0\n");
  ASSERT_FALSE(R2);
  ASSERT_EQ(R2.Diags.size(), 1u);
  EXPECT_EQ(R2.Diags[0].Column, 3u);
}

TEST(MIRParserTest, ErrorsInDistinctBlocksOfOneFunctionReportOnce) {
  // Recovery is at function granularity: a second error inside the same
  // broken function is not re-reported as noise.
  Program P;
  ParseResult R = parseModule(P, R"(
f:
  bogus x0
  more junk here
g:
  ret
)");
  ASSERT_FALSE(R);
  EXPECT_EQ(R.Diags.size(), 1u);
  EXPECT_EQ(R.Diags[0].Line, 3u);
}

TEST(MIRParserTest, RoundTripsEveryOpcode) {
  // Build a function containing every printable opcode form, print it,
  // parse it back, and require instruction-exact equality.
  Program P;
  Module &M = P.addModule("roundtrip");
  uint32_t Sym = P.internSymbol("callee");
  uint32_t GSym = P.internSymbol("gdata");
  {
    GlobalData G;
    G.Name = GSym;
    G.Bytes.assign(64, 0);
    M.Globals.push_back(G);
  }
  MachineFunction MF;
  MF.Name = P.internSymbol("every_op");
  {
    MachineBasicBlock &B0 = MF.addBlock();
    using MO = MachineOperand;
    auto Push = [&B0](MachineInstr MI) { B0.push(MI); };
    Push({Opcode::MOVri, MO::reg(Reg::X0), MO::imm(-7)});
    Push({Opcode::MOVrr, MO::reg(Reg::X1), MO::reg(Reg::X0)});
    Push({Opcode::ADDri, MO::reg(Reg::X2), MO::reg(Reg::X1), MO::imm(3)});
    Push({Opcode::ADDrr, MO::reg(Reg::X3), MO::reg(Reg::X1),
          MO::reg(Reg::X2)});
    Push({Opcode::SUBri, MO::reg(Reg::X4), MO::reg(Reg::X3), MO::imm(1)});
    Push({Opcode::SUBrr, MO::reg(Reg::X5), MO::reg(Reg::X4),
          MO::reg(Reg::X1)});
    Push({Opcode::MULrr, MO::reg(Reg::X6), MO::reg(Reg::X5),
          MO::reg(Reg::X2)});
    Push({Opcode::SDIVrr, MO::reg(Reg::X7), MO::reg(Reg::X6),
          MO::reg(Reg::X2)});
    Push({Opcode::MSUBrr, MO::reg(Reg::X8), MO::reg(Reg::X7),
          MO::reg(Reg::X2), MO::reg(Reg::X6)});
    Push({Opcode::ANDrr, MO::reg(Reg::X9), MO::reg(Reg::X8),
          MO::reg(Reg::X1)});
    Push({Opcode::ORRrr, MO::reg(Reg::X10), MO::reg(Reg::X9),
          MO::reg(Reg::X2), });
    Push({Opcode::EORrr, MO::reg(Reg::X11), MO::reg(Reg::X10),
          MO::reg(Reg::X3)});
    Push({Opcode::LSLri, MO::reg(Reg::X12), MO::reg(Reg::X11), MO::imm(2)});
    Push({Opcode::ASRri, MO::reg(Reg::X13), MO::reg(Reg::X12), MO::imm(1)});
    Push({Opcode::LSLrr, MO::reg(Reg::X14), MO::reg(Reg::X13),
          MO::reg(Reg::X1)});
    Push({Opcode::ASRrr, MO::reg(Reg::X15), MO::reg(Reg::X14),
          MO::reg(Reg::X1)});
    Push({Opcode::CMPri, MO::reg(Reg::X15), MO::imm(9)});
    Push({Opcode::CMPrr, MO::reg(Reg::X15), MO::reg(Reg::X1)});
    Push({Opcode::CSET, MO::reg(Reg::X16), MO::cond(Cond::LE)});
    Push({Opcode::CSEL, MO::reg(Reg::X17), MO::reg(Reg::X16),
          MO::reg(Reg::X15), MO::cond(Cond::NE)});
    Push({Opcode::LDRui, MO::reg(Reg::X19), MO::reg(Reg::SP), MO::imm(8)});
    Push({Opcode::STRui, MO::reg(Reg::X19), MO::reg(Reg::SP), MO::imm(16)});
    Push({Opcode::LDPui, MO::reg(Reg::X20), MO::reg(Reg::X21),
          MO::reg(Reg::SP), MO::imm(0)});
    Push({Opcode::STPui, MO::reg(Reg::X20), MO::reg(Reg::X21),
          MO::reg(Reg::SP), MO::imm(32)});
    Push({Opcode::STRpre, MO::reg(Reg::X30), MO::reg(Reg::SP),
          MO::imm(-16)});
    Push({Opcode::LDRpost, MO::reg(Reg::X30), MO::reg(Reg::SP),
          MO::imm(16)});
    Push({Opcode::ADR, MO::reg(Reg::X22), MO::sym(GSym)});
    Push({Opcode::BL, MO::sym(Sym)});
    Push({Opcode::CBZ, MO::reg(Reg::X0), MO::block(1)});
    Push({Opcode::CBNZ, MO::reg(Reg::X0), MO::block(1)});
    Push({Opcode::Bcc, MO::cond(Cond::HS), MO::block(1)});
    Push({Opcode::B, MO::block(1)});
  }
  {
    MachineBasicBlock &B1 = MF.addBlock();
    B1.push(MachineInstr(Opcode::NOP));
    B1.push(MachineInstr(Opcode::BLR, MachineOperand::reg(Reg::X9)));
    B1.push(MachineInstr(Opcode::Btail, MachineOperand::sym(Sym)));
  }
  M.Functions.push_back(MF);

  std::string Text = printModule(M, P);
  Program P2;
  ParseResult R = parseModule(P2, Text);
  ASSERT_TRUE(R) << R.Error << "\n" << Text;
  ASSERT_EQ(R.M->Functions.size(), 1u);
  const MachineFunction &Orig = M.Functions[0];
  const MachineFunction &Re = R.M->Functions[0];
  ASSERT_EQ(Orig.numBlocks(), Re.numBlocks());
  for (uint32_t B = 0; B < Orig.numBlocks(); ++B) {
    ASSERT_EQ(Orig.Blocks[B].size(), Re.Blocks[B].size()) << "block " << B;
    for (uint32_t I = 0; I < Orig.Blocks[B].size(); ++I) {
      const MachineInstr &A = Orig.Blocks[B].Instrs[I];
      const MachineInstr &Bi = Re.Blocks[B].Instrs[I];
      EXPECT_EQ(A.opcode(), Bi.opcode()) << printInstr(A, P);
      EXPECT_EQ(A.numOperands(), Bi.numOperands());
      // Symbol ids may differ between programs; compare rendered text.
      EXPECT_EQ(printInstr(A, P), printInstr(Bi, P2));
    }
  }
}

TEST(MIRParserTest, RoundTripsAnOutlinedCorpusModule) {
  AppProfile Profile = AppProfile::uberRider();
  Profile.NumModules = 6;
  auto Prog = CorpusSynthesizer(Profile).generate();
  Module &Linked = linkProgram(*Prog);
  runRepeatedOutliner(*Prog, Linked, 2);

  std::string Text = printModule(Linked, *Prog);
  Program P2;
  ParseResult R = parseModule(P2, Text);
  ASSERT_TRUE(R) << R.Error.substr(0, 200);
  EXPECT_EQ(R.M->numInstrs(), Linked.numInstrs());
  EXPECT_EQ(R.M->Functions.size(), Linked.Functions.size());
  EXPECT_EQ(verifyModule(P2, *R.M), "");
}

} // namespace
