//===- tests/FleetSimTest.cpp - Fleet simulator + rollout tests -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
// End-to-end checks of the fleet-scale measurement layer: determinism of
// the fleet report across thread counts, a clean identity ramp (no-change
// release), and the Table 7 interleaved-data-layout regression being
// caught and halted by the staged-rollout comparator.
//
//===----------------------------------------------------------------------===//

#include "telemetry/FleetSim.h"

#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace mco;

namespace {

/// Builds a whole-program artifact from the deterministic rider corpus.
/// Two calls with different layouts yield programs differing only in
/// global-data order — exactly the Table 7 A/B pair.
std::unique_ptr<Program> buildArtifact(unsigned Modules, DataLayoutMode L) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = Modules;
  auto Prog = CorpusSynthesizer(P).withThreads(4).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 1;
  Opts.WholeProgram = true;
  Opts.DataLayout = L;
  Opts.Threads = 4;
  buildProgram(*Prog, Opts);
  return Prog;
}

FleetOptions fleetOptions(unsigned Devices) {
  FleetOptions O;
  O.NumDevices = Devices;
  O.Seed = 0x5EED;
  const AppProfile P = AppProfile::uberRider();
  for (unsigned S = 0; S < P.NumSpans; ++S)
    O.Entries.push_back(CorpusSynthesizer::spanFunctionName(S));
  return O;
}

TEST(FleetSimTest, ReportIsByteIdenticalAcrossThreadCounts) {
  auto Prog = buildArtifact(12, DataLayoutMode::PreserveModuleOrder);
  FleetOptions O = fleetOptions(24);

  O.Threads = 1;
  const std::string J1 = fleetReportJson(runFleet(*Prog, O));
  O.Threads = 8;
  const std::string J8 = fleetReportJson(runFleet(*Prog, O));
  EXPECT_EQ(J1, J8);
  EXPECT_NE(J1.find("\"mco-fleet-report-v1\""), std::string::npos);
}

TEST(FleetSimTest, FleetRunsEveryDeviceWithoutFaults) {
  auto Prog = buildArtifact(12, DataLayoutMode::PreserveModuleOrder);
  FleetOptions O = fleetOptions(16);
  O.Threads = 4;
  FleetReport R = runFleet(*Prog, O);

  ASSERT_EQ(R.Devices.size(), 16u);
  EXPECT_EQ(R.Overall.Devices, 16u);
  EXPECT_GT(R.Overall.TotalInstrs, 0u);
  EXPECT_GT(R.Overall.CyclesP50, 0.0);
  ASSERT_EQ(R.Spans.size(), O.Entries.size());
  for (const DeviceResult &D : R.Devices) {
    EXPECT_TRUE(D.FaultMsg.empty()) << D.FaultMsg;
    EXPECT_LT(D.ClassIdx, defaultDeviceClasses().size());
    EXPECT_EQ(D.SpanCycles.size(), O.Entries.size());
  }
}

TEST(FleetSimTest, IdentityRolloutRampsClean) {
  auto Prog = buildArtifact(12, DataLayoutMode::PreserveModuleOrder);
  FleetOptions O = fleetOptions(16);
  O.Threads = 4;

  // A no-change release: candidate IS the baseline. Every stage must pass
  // and the ramp must reach 100%.
  RolloutVerdict V = runStagedRollout(*Prog, *Prog, O);
  EXPECT_FALSE(V.Regression);
  EXPECT_DOUBLE_EQ(V.HaltedAtPercent, 100.0);
  ASSERT_EQ(V.Stages.size(), defaultStagePercents().size());
  for (const StageVerdict &S : V.Stages) {
    EXPECT_TRUE(S.Ok);
    for (const MetricDelta &D : S.Deltas) {
      EXPECT_FALSE(D.Breach);
      EXPECT_DOUBLE_EQ(D.DeltaPct, 0.0);
    }
  }
}

TEST(FleetSimTest, Table7InterleavedLayoutHaltsTheRamp) {
  // The Section VI regression needs modules >> span reach (ModulesPerSpan)
  // so the interleaved layout scatters a span's working set across more
  // pages than the constrained devices keep resident.
  auto Base = buildArtifact(60, DataLayoutMode::PreserveModuleOrder);
  auto Cand = buildArtifact(60, DataLayoutMode::Interleaved);
  FleetOptions O = fleetOptions(16);
  O.Threads = 4;

  FleetReport BaseRep, CandRep;
  RolloutVerdict V = runStagedRollout(*Base, *Cand, O,
                                      defaultStagePercents(), {}, &BaseRep,
                                      &CandRep);
  EXPECT_TRUE(V.Regression);
  EXPECT_LT(V.HaltedAtPercent, 100.0);
  ASSERT_FALSE(V.Stages.empty());

  // The halting stage is the last one, and data page faults must be among
  // the breached metrics — that is the regression the paper's fleet
  // monitoring caught.
  const StageVerdict &Halt = V.Stages.back();
  EXPECT_FALSE(Halt.Ok);
  bool FaultBreach = false;
  for (const MetricDelta &D : Halt.Deltas)
    if (D.Breach && D.Metric.rfind("data_page_faults", 0) == 0) {
      FaultBreach = true;
      EXPECT_GT(D.Cand, D.Base);
    }
  EXPECT_TRUE(FaultBreach);
  // The fleet-level fault counts corroborate the verdict.
  EXPECT_GT(CandRep.Overall.DataFaultsP50, BaseRep.Overall.DataFaultsP50);
}

TEST(FleetSimTest, VerdictJsonIsDeterministic) {
  auto Prog = buildArtifact(12, DataLayoutMode::PreserveModuleOrder);
  FleetOptions O = fleetOptions(8);
  O.Threads = 2;
  RolloutVerdict V = runStagedRollout(*Prog, *Prog, O);

  const std::string J = rolloutVerdictJson(V, O, defaultStagePercents(), {});
  EXPECT_EQ(J, rolloutVerdictJson(V, O, defaultStagePercents(), {}));
  EXPECT_NE(J.find("\"mco-fleet-verdict-v1\""), std::string::npos);
  EXPECT_NE(J.find("\"verdict\": \"ok\""), std::string::npos);
}

} // namespace
