//===- tests/RandomIRDifferentialTest.cpp - Codegen fuzzing ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Differential testing of the compiler substrate: generate random IR
/// expression programs, evaluate them with an independent host-side
/// reference evaluator, and require the compiled-and-simulated result to
/// match — with and without outlining. This pins down the semantics of
/// every IR operation through lowering, AArch64-style flag computation,
/// and interpretation (including AArch64 division-by-zero semantics).
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "ir/IRBuilder.h"
#include "linker/Linker.h"
#include "outliner/MachineOutliner.h"
#include "sim/Interpreter.h"
#include "support/Random.h"
#include "gtest/gtest.h"

#include <vector>

using namespace mco;
using namespace mco::ir;

namespace {

/// A generated expression node: the IR value and its host-computed value.
struct Node {
  Value V;
  int64_t Val;
};

int64_t refDiv(int64_t A, int64_t B) {
  if (B == 0)
    return 0; // AArch64 SDIV semantics.
  if (A == INT64_MIN && B == -1)
    return A;
  return A / B;
}

int64_t refRem(int64_t A, int64_t B) {
  return A - refDiv(A, B) * B; // MSUB lowering semantics.
}

/// Generates a random expression over \p Pool, returning IR value + the
/// reference result, growing the pool as it goes.
Node genExpr(IRBuilder &B, Rng &R, std::vector<Node> &Pool) {
  Node A = Pool[R.nextBounded(Pool.size())];
  Node C = Pool[R.nextBounded(Pool.size())];
  Node Out;
  switch (R.nextBounded(12)) {
  case 0:
    Out = {B.add(A.V, C.V), static_cast<int64_t>(
                                static_cast<uint64_t>(A.Val) +
                                static_cast<uint64_t>(C.Val))};
    break;
  case 1:
    Out = {B.sub(A.V, C.V), static_cast<int64_t>(
                                static_cast<uint64_t>(A.Val) -
                                static_cast<uint64_t>(C.Val))};
    break;
  case 2:
    Out = {B.mul(A.V, C.V), static_cast<int64_t>(
                                static_cast<uint64_t>(A.Val) *
                                static_cast<uint64_t>(C.Val))};
    break;
  case 3:
    Out = {B.sdiv(A.V, C.V), refDiv(A.Val, C.Val)};
    break;
  case 4:
    Out = {B.srem(A.V, C.V), refRem(A.Val, C.Val)};
    break;
  case 5:
    Out = {B.and_(A.V, C.V), A.Val & C.Val};
    break;
  case 6:
    Out = {B.or_(A.V, C.V), A.Val | C.Val};
    break;
  case 7:
    Out = {B.xor_(A.V, C.V), A.Val ^ C.Val};
    break;
  case 8: {
    int64_t Sh = R.nextInRange(0, 15);
    Node ShN{B.constInt(Sh), Sh};
    Out = {B.shl(A.V, ShN.V),
           static_cast<int64_t>(static_cast<uint64_t>(A.Val) << Sh)};
    break;
  }
  case 9: {
    int64_t Sh = R.nextInRange(0, 15);
    Node ShN{B.constInt(Sh), Sh};
    Out = {B.ashr(A.V, ShN.V), A.Val >> Sh};
    break;
  }
  case 10: {
    static const Pred Preds[] = {Pred::EQ, Pred::NE,  Pred::LT, Pred::LE,
                                 Pred::GT, Pred::GE,  Pred::ULT,
                                 Pred::UGE};
    Pred P = Preds[R.nextBounded(8)];
    bool Res = false;
    switch (P) {
    case Pred::EQ: Res = A.Val == C.Val; break;
    case Pred::NE: Res = A.Val != C.Val; break;
    case Pred::LT: Res = A.Val < C.Val; break;
    case Pred::LE: Res = A.Val <= C.Val; break;
    case Pred::GT: Res = A.Val > C.Val; break;
    case Pred::GE: Res = A.Val >= C.Val; break;
    case Pred::ULT:
      Res = static_cast<uint64_t>(A.Val) < static_cast<uint64_t>(C.Val);
      break;
    case Pred::UGE:
      Res = static_cast<uint64_t>(A.Val) >= static_cast<uint64_t>(C.Val);
      break;
    }
    Out = {B.icmp(P, A.V, C.V), Res ? 1 : 0};
    break;
  }
  default: {
    Node Cond = Pool[R.nextBounded(Pool.size())];
    Out = {B.select(Cond.V, A.V, C.V), Cond.Val != 0 ? A.Val : C.Val};
    break;
  }
  }
  Pool.push_back(Out);
  return Out;
}

struct GeneratedProgram {
  IRModule M;
  int64_t Expected;
  std::vector<int64_t> Args;
};

GeneratedProgram generate(uint64_t Seed) {
  GeneratedProgram G;
  Rng R(Seed);
  G.M.Name = "fuzz_ir";

  const unsigned NumParams = 1 + R.nextBounded(4);
  IRBuilder B(G.M, "test_main", NumParams);
  std::vector<Node> Pool;
  for (unsigned I = 0; I < NumParams; ++I) {
    int64_t V = R.nextInRange(-1000000, 1000000);
    G.Args.push_back(V);
    Pool.push_back(Node{B.param(I), V});
  }
  for (int I = 0; I < 4; ++I) {
    int64_t C = R.nextInRange(-50, 50);
    Pool.push_back(Node{B.constInt(C), C});
  }
  // Exercise memory too: spill a few intermediate values through allocas.
  Value Slot = B.alloca_(8);
  Node Last{Pool.front().V, Pool.front().Val};
  const unsigned Steps = 10 + R.nextBounded(40);
  for (unsigned I = 0; I < Steps; ++I) {
    Last = genExpr(B, R, Pool);
    if (R.nextBool(0.2)) {
      B.store(Last.V, Slot);
      Pool.push_back(Node{B.load(Slot), Last.Val});
    }
  }
  B.ret(Last.V);
  G.Expected = Last.Val;
  B.finish();
  return G;
}

class RandomIRTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomIRTest, CompiledResultMatchesReferenceEvaluator) {
  GeneratedProgram G = generate(GetParam());
  ASSERT_EQ(verify(G.M), "");

  Program P;
  Module &M = P.addModule(G.M.Name);
  lowerModule(P, M, G.M);
  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("test_main", G.Args), G.Expected)
      << "seed " << GetParam();
}

TEST_P(RandomIRTest, OutliningDoesNotChangeTheResult) {
  GeneratedProgram G = generate(GetParam());
  Program P;
  Module &M = P.addModule(G.M.Name);
  lowerModule(P, M, G.M);
  runRepeatedOutliner(P, M, 3);
  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("test_main", G.Args), G.Expected)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIRTest,
                         ::testing::Range<uint64_t>(100, 140));

} // namespace
