//===- tests/DaemonChaosTest.cpp - mco-buildd chaos matrix ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end chaos testing of the build daemon: spawns the real
/// mco-buildd and mco-client binaries (paths baked in via
/// MCO_BUILDD_TOOL_PATH / MCO_CLIENT_TOOL_PATH) and drives the fault
/// matrix the failure-domain design promises to absorb — connection drops
/// at every protocol state, worker crashes, queue overflow backpressure,
/// request hangs through the watchdog ladder, SIGKILL mid-request with a
/// --resume restart, and a corrupt shared-cache entry under two
/// concurrent clients. Every scenario must end completed, degraded with
/// honest counters, or cleanly retryable — never hung, and never with
/// artifacts that differ from a plain mco-build's (compared through
/// programContentDigest, the byte-identity witness both tools report).
///
/// Also hosts the mco-rpc-v1 codec unit tests (same library, no daemon).
///
//===----------------------------------------------------------------------===//

#include "daemon/Rpc.h"
#include "daemon/Socket.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <csignal>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace mco;
namespace fs = std::filesystem;

namespace {

/// Matches the mco-build reference invocation below: every daemon build in
/// this file uses the same corpus so digests are comparable.
const char *Modules = "8";
const char *Rounds = "2";

struct RunResult {
  int ExitCode = -1;
  bool Signaled = false;
  int Signal = 0;
};

pid_t spawnTool(const std::string &Tool, const std::vector<std::string> &Args,
                const std::string &StdoutFile = "/dev/null",
                const std::vector<std::string> &Env = {}) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  for (const std::string &E : Env) {
    const size_t Eq = E.find('=');
    ::setenv(E.substr(0, Eq).c_str(), E.substr(Eq + 1).c_str(), 1);
  }
  std::vector<std::string> All;
  All.push_back(Tool);
  All.insert(All.end(), Args.begin(), Args.end());
  std::vector<char *> Argv;
  for (std::string &S : All)
    Argv.push_back(S.data());
  Argv.push_back(nullptr);
  std::freopen(StdoutFile.c_str(), "w", stdout);
  std::freopen("/dev/null", "w", stderr);
  ::execv(Tool.c_str(), Argv.data());
  ::_exit(127);
}

RunResult waitTool(pid_t Pid) {
  RunResult R;
  if (Pid < 0)
    return R;
  int WStatus = 0;
  ::waitpid(Pid, &WStatus, 0);
  if (WIFEXITED(WStatus))
    R.ExitCode = WEXITSTATUS(WStatus);
  if (WIFSIGNALED(WStatus)) {
    R.Signaled = true;
    R.Signal = WTERMSIG(WStatus);
  }
  return R;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

long long jsonInt(const std::string &Json, const std::string &Key) {
  const std::string Needle = "\"" + Key + "\": ";
  size_t P = Json.find(Needle);
  if (P == std::string::npos)
    return -1;
  return std::atoll(Json.c_str() + P + Needle.size());
}

std::string jsonStr(const std::string &Json, const std::string &Key) {
  const std::string Needle = "\"" + Key + "\": \"";
  size_t P = Json.find(Needle);
  if (P == std::string::npos)
    return {};
  P += Needle.size();
  size_t E = Json.find('"', P);
  return E == std::string::npos ? std::string() : Json.substr(P, E - P);
}

struct ScratchDir {
  fs::path P;
  explicit ScratchDir(const std::string &Name) {
    P = fs::temp_directory_path() /
        ("mco_daemon_test_" + std::to_string(::getpid()) + "_" + Name);
    fs::remove_all(P);
    fs::create_directories(P);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(P, EC);
  }
  std::string str(const std::string &Leaf) const { return (P / Leaf).string(); }
};

/// One daemon instance on a scratch socket/state pair. Started with extra
/// args (fault specs, watchdog settings); stopped via the shutdown RPC,
/// or by SIGKILL from the test/crash hook.
struct Daemon {
  ScratchDir &D;
  pid_t Pid = -1;
  std::string Socket, State;

  explicit Daemon(ScratchDir &D)
      : D(D), Socket(D.str("sock")), State(D.str("state")) {}

  void start(const std::vector<std::string> &Extra = {},
             const std::vector<std::string> &Env = {}) {
    std::vector<std::string> Args = {"--socket", Socket, "--state", State,
                                     "--workers", "2"};
    Args.insert(Args.end(), Extra.begin(), Extra.end());
    Pid = spawnTool(MCO_BUILDD_TOOL_PATH, Args, "/dev/null", Env);
    ASSERT_GT(Pid, 0);
    // Ready when it answers a ping.
    for (int I = 0; I < 200; ++I) {
      pid_t C = spawnTool(MCO_CLIENT_TOOL_PATH, {"--socket", Socket,
                                                 "--ping"});
      if (waitTool(C).ExitCode == 0)
        return;
      ::usleep(25 * 1000);
    }
    FAIL() << "daemon never became ready";
  }

  /// Client submit; returns the parsed reply JSON ("" on client failure).
  std::string submit(const std::string &Id,
                     const std::vector<std::string> &Extra = {},
                     int Retries = 30) {
    const std::string Out = D.str("reply_" + Id + ".json");
    std::vector<std::string> Args = {
        "--socket", Socket,        "--id",     Id,
        "--modules", Modules,      "--rounds", Rounds,
        "--per-module",
        "--retries", std::to_string(Retries)};
    Args.insert(Args.end(), Extra.begin(), Extra.end());
    RunResult R = waitTool(spawnTool(MCO_CLIENT_TOOL_PATH, Args, Out));
    return R.ExitCode == 0 ? slurp(Out) : std::string();
  }

  std::string stats() {
    const std::string Out = D.str("stats.json");
    RunResult R = waitTool(spawnTool(
        MCO_CLIENT_TOOL_PATH, {"--socket", Socket, "--stats"}, Out));
    return R.ExitCode == 0 ? slurp(Out) : std::string();
  }

  void shutdown() {
    if (Pid <= 0)
      return;
    // The shutdown RPC itself rides the faulted transport (conn-drop
    // tests), so retry it, and fall back to SIGTERM — the daemon installs
    // a handler that requestStop()s — rather than ever hanging the test.
    for (int Attempt = 0; Attempt < 5; ++Attempt) {
      waitTool(spawnTool(MCO_CLIENT_TOOL_PATH,
                         {"--socket", Socket, "--shutdown"}));
      for (int I = 0; I < 20; ++I) {
        int WStatus = 0;
        if (::waitpid(Pid, &WStatus, WNOHANG) == Pid) {
          Pid = -1;
          return;
        }
        ::usleep(25 * 1000);
      }
    }
    ::kill(Pid, SIGTERM);
    waitTool(Pid);
    Pid = -1;
  }

  ~Daemon() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      waitTool(Pid);
    }
  }
};

/// The reference digest: what a plain, daemon-free mco-build produces for
/// the exact corpus every test submits. Computed once.
std::string referenceDigest() {
  static std::string Digest = [] {
    ScratchDir D("ref");
    const std::string Diag = D.str("ref.json");
    RunResult R = waitTool(spawnTool(
        MCO_BUILD_TOOL_PATH,
        {"--profile", "rider", "--modules", Modules, "--rounds", Rounds,
         "--per-module", "--diag-json", Diag}));
    if (R.ExitCode != 0)
      return std::string();
    return jsonStr(slurp(Diag), "artifact_digest");
  }();
  return Digest;
}

//===----------------------------------------------------------------------===//
// mco-rpc-v1 codec
//===----------------------------------------------------------------------===//

TEST(RpcCodecTest, RoundTripsAllFieldKinds) {
  RpcMessage M;
  M.Type = "result";
  M.Str["id"] = "req-42";
  M.Str["weird"] = "a\"b\\c\nd\te\x01";
  M.Int["zero"] = 0;
  M.Int["negative"] = -7;
  M.Int["big"] = 1ll << 60;
  Expected<RpcMessage> Back = decodeRpcMessage(encodeRpcMessage(M));
  ASSERT_TRUE(Back.ok()) << Back.status().message();
  EXPECT_EQ(Back->Type, "result");
  EXPECT_EQ(Back->Str, M.Str);
  EXPECT_EQ(Back->Int, M.Int);
}

TEST(RpcCodecTest, EncodingIsDeterministic) {
  RpcMessage A, B;
  A.Type = B.Type = "build";
  // Insertion order differs; sorted-key encoding must not care.
  A.Str["profile"] = "rider";
  A.Str["id"] = "x";
  B.Str["id"] = "x";
  B.Str["profile"] = "rider";
  A.Int["rounds"] = 2;
  A.Int["modules"] = 8;
  B.Int["modules"] = 8;
  B.Int["rounds"] = 2;
  EXPECT_EQ(encodeRpcMessage(A), encodeRpcMessage(B));
}

TEST(RpcCodecTest, RejectsDamage) {
  EXPECT_FALSE(decodeRpcMessage("").ok());
  EXPECT_FALSE(decodeRpcMessage("{}").ok()); // No type.
  EXPECT_FALSE(decodeRpcMessage("{\"type\": \"x\"").ok());
  EXPECT_FALSE(decodeRpcMessage("{\"type\": \"x\", \"n\": }").ok());
  EXPECT_FALSE(decodeRpcMessage("[1, 2]").ok());
  RpcMessage M;
  M.Type = "ping";
  std::string Wire = encodeRpcMessage(M);
  EXPECT_FALSE(decodeRpcMessage(Wire.substr(0, Wire.size() - 1)).ok());
}

TEST(RpcCodecTest, RecvFrameSurvivesTruncationAtEveryByte) {
  // A peer can die after writing any prefix of a frame: the 4-byte length
  // header included. recvFrame must return a clean Status at every cut —
  // a hang or crash here would wedge a daemon connection thread.
  RpcMessage M;
  M.Type = "build";
  M.Str["id"] = "trunc";
  const std::string Payload = encodeRpcMessage(M);
  std::string Frame;
  for (int I = 0; I < 4; ++I)
    Frame.push_back(static_cast<char>((Payload.size() >> (8 * I)) & 0xFF));
  Frame += Payload;

  for (size_t Cut = 0; Cut < Frame.size(); ++Cut) {
    int Fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    ASSERT_EQ(::write(Fds[1], Frame.data(), Cut),
              static_cast<ssize_t>(Cut));
    ::close(Fds[1]); // The peer "dies" here.
    Expected<std::string> R = recvFrame(Fds[0], /*TimeoutMs=*/2000);
    EXPECT_FALSE(R.ok()) << "cut at " << Cut;
    if (!R.ok())
      EXPECT_EQ(R.status().code(), StatusCode::Transient) << "cut at " << Cut;
    ::close(Fds[0]);
  }

  // The full frame still decodes, so the sweep above exercised real cuts.
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  ASSERT_EQ(::write(Fds[1], Frame.data(), Frame.size()),
            static_cast<ssize_t>(Frame.size()));
  ::close(Fds[1]);
  Expected<std::string> R = recvFrame(Fds[0], 2000);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(*R, Payload);
  ::close(Fds[0]);
}

TEST(RpcCodecTest, FrameGarbleFaultBreaksDecodeNotFraming) {
  // rpc.frame.garble's contract: the frame still *frames* (honest length
  // prefix, every byte delivered) but the JSON inside no longer decodes.
  struct FaultScope {
    explicit FaultScope(const std::string &Spec) {
      EXPECT_TRUE(FaultInjection::instance().configure(Spec).ok());
    }
    ~FaultScope() { FaultInjection::instance().clear(); }
  };
  RpcMessage M;
  M.Type = "ping";
  const std::string Payload = encodeRpcMessage(M);
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  {
    FaultScope F("rpc.frame.garble:1");
    ASSERT_TRUE(sendFrame(Fds[1], Payload).ok());
  }
  Expected<std::string> Frame = recvFrame(Fds[0], 2000);
  ASSERT_TRUE(Frame.ok()) << "framing must survive the garble";
  EXPECT_EQ(Frame->size(), Payload.size());
  EXPECT_NE(*Frame, Payload);
  Expected<RpcMessage> Decoded = decodeRpcMessage(*Frame);
  EXPECT_FALSE(Decoded.ok());
  if (!Decoded.ok())
    EXPECT_EQ(Decoded.status().code(), StatusCode::CorruptInput);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(RpcCodecTest, RecvFrameRejectsInflatedLength) {
  // A header claiming more than the protocol maximum must be rejected
  // before any allocation or read of that size.
  const uint32_t Huge = RpcMaxFrameBytes + 1;
  std::string Header;
  for (int I = 0; I < 4; ++I)
    Header.push_back(static_cast<char>((Huge >> (8 * I)) & 0xFF));
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  ASSERT_EQ(::write(Fds[1], Header.data(), 4), 4);
  Expected<std::string> R = recvFrame(Fds[0], 2000);
  EXPECT_FALSE(R.ok());
  if (!R.ok())
    EXPECT_EQ(R.status().code(), StatusCode::CorruptInput);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// Chaos matrix
//===----------------------------------------------------------------------===//

TEST(DaemonChaosTest, MalformedFrameGetsFatalErrorReplyAndDaemonSurvives) {
  ScratchDir D("garble");
  Daemon Dm(D);
  Dm.start();

  // Speak raw mco-rpc-v1: a structurally valid frame whose payload is not
  // JSON. The daemon must answer with a non-retryable error reply and
  // close the connection — and must NOT die.
  Expected<int> C = connectUnix(Dm.Socket);
  ASSERT_TRUE(C.ok()) << C.status().message();
  ASSERT_TRUE(sendFrame(*C, "this is not json").ok());
  Expected<RpcMessage> Reply = recvMessage(*C, 5000);
  ASSERT_TRUE(Reply.ok()) << Reply.status().message();
  EXPECT_EQ(Reply->Type, "error");
  EXPECT_EQ(Reply->intOr("retryable", -1), 0);
  EXPECT_NE(Reply->strOr("message", "").find("malformed frame"),
            std::string::npos);
  // The daemon closed its end after the reply.
  Expected<RpcMessage> After = recvMessage(*C, 5000);
  EXPECT_FALSE(After.ok());
  closeFd(*C);

  // Still alive: a fresh, well-formed session works, and the stats verb
  // counts what happened.
  const std::string Stats = Dm.stats();
  ASSERT_FALSE(Stats.empty()) << "daemon died after malformed frame";
  EXPECT_GE(jsonInt(Stats, "malformed_frames"), 1);
  Dm.shutdown();
}

TEST(DaemonChaosTest, CleanBuildMatchesPlainBuildByteForByte) {
  ASSERT_FALSE(referenceDigest().empty());
  ScratchDir D("clean");
  Daemon Svc(D);
  Svc.start();
  std::string Reply = Svc.submit("clean-1");
  ASSERT_FALSE(Reply.empty());
  EXPECT_EQ(jsonStr(Reply, "state"), "completed");
  EXPECT_EQ(jsonStr(Reply, "artifact_digest"), referenceDigest());
  EXPECT_EQ(jsonInt(Reply, "modules_degraded"), 0);
  // Warm resubmit under a new id: all hits, same bytes.
  std::string Warm = Svc.submit("clean-2");
  ASSERT_FALSE(Warm.empty());
  EXPECT_EQ(jsonStr(Warm, "artifact_digest"), referenceDigest());
  EXPECT_EQ(jsonInt(Warm, "cache_misses"), 0);
  EXPECT_GT(jsonInt(Warm, "cache_hits"), 0);
  Svc.shutdown();
}

TEST(DaemonChaosTest, ConnectionDropsAtEveryStateStillComplete) {
  ASSERT_FALSE(referenceDigest().empty());
  ScratchDir D("conndrop");
  Daemon Svc(D);
  // Every send and receive on every daemon connection has a 25% chance of
  // an abrupt close — hello, request receipt, and result delivery all get
  // hit across the retry sequence. The client's idempotent id makes the
  // retries safe; the request must complete exactly once.
  Svc.start({"--fault-inject", "daemon.conn.drop:0.25,11"});
  std::string Reply = Svc.submit("drop-1", {}, /*Retries=*/40);
  ASSERT_FALSE(Reply.empty()) << "client exhausted retries";
  EXPECT_EQ(jsonStr(Reply, "state"), "completed");
  EXPECT_EQ(jsonStr(Reply, "artifact_digest"), referenceDigest());
  Svc.shutdown();
}

TEST(DaemonChaosTest, QueueOverflowPushesBackThenCompletes) {
  ASSERT_FALSE(referenceDigest().empty());
  ScratchDir D("overflow");
  Daemon Svc(D);
  // Admission control reports "full" 60% of the time; the client must be
  // told retry_after (not hung, not errored) and eventually get through.
  Svc.start({"--fault-inject", "daemon.queue.overflow:0.6,5"});
  std::string Reply = Svc.submit("ovf-1", {}, /*Retries=*/40);
  ASSERT_FALSE(Reply.empty());
  EXPECT_EQ(jsonStr(Reply, "state"), "completed");
  EXPECT_EQ(jsonStr(Reply, "artifact_digest"), referenceDigest());
  std::string St = Svc.stats();
  EXPECT_GE(jsonInt(St, "requests_rejected"), 1) << St;
  Svc.shutdown();
}

TEST(DaemonChaosTest, WorkerCrashIsRetryableAndRecovers) {
  ASSERT_FALSE(referenceDigest().empty());
  ScratchDir D("crash");
  Daemon Svc(D);
  // Most request-processing attempts die at the top (this seed's first
  // several draws all fire). The reply is a retryable error; the client's
  // resubmission reclaims the id (failed ids are re-buildable) and the
  // first surviving attempt completes it.
  Svc.start({"--fault-inject", "daemon.worker.crash:0.75,1"});
  std::string Reply = Svc.submit("crash-1", {}, /*Retries=*/40);
  ASSERT_FALSE(Reply.empty());
  EXPECT_EQ(jsonStr(Reply, "state"), "completed");
  EXPECT_EQ(jsonStr(Reply, "artifact_digest"), referenceDigest());
  std::string St = Svc.stats();
  EXPECT_GE(jsonInt(St, "worker_crashes"), 1) << St;
  EXPECT_GE(jsonInt(St, "requests_failed"), 1) << St;
  Svc.shutdown();
}

TEST(DaemonChaosTest, RequestHangRidesTheDegradationLadder) {
  ScratchDir D("hang");
  Daemon Svc(D);
  // Every outlined build attempt hangs. The request watchdog cancels at
  // 300ms, retries once at 600ms (hangs again), then the ladder's last
  // rung ships the app unoutlined and marks it degraded — the paper's
  // rule that an optimizer problem costs optimization, never the build.
  Svc.start({"--fault-inject", "daemon.request.hang:1",
             "--request-timeout-ms", "300", "--request-retries", "1"});
  std::string Reply = Svc.submit("hang-1");
  ASSERT_FALSE(Reply.empty()) << "request hung instead of degrading";
  EXPECT_EQ(jsonStr(Reply, "state"), "degraded");
  EXPECT_GT(jsonInt(Reply, "code_size"), 0);
  EXPECT_FALSE(jsonStr(Reply, "artifact_digest").empty());
  EXPECT_EQ(jsonInt(Reply, "request_retries"), 1);
  std::string St = Svc.stats();
  EXPECT_EQ(jsonInt(St, "request_watchdog_cancels"), 2) << St;
  EXPECT_EQ(jsonInt(St, "request_watchdog_retries"), 1) << St;
  EXPECT_EQ(jsonInt(St, "requests_degraded"), 1) << St;
  Svc.shutdown();
}

TEST(DaemonChaosTest, SigkillMidRequestResumesByteIdentical) {
  ASSERT_FALSE(referenceDigest().empty());
  ScratchDir D("sigkill");
  Daemon Svc(D);
  // The crash hook SIGKILLs the daemon after its build journals the 3rd
  // freshly built module of the request — mid-request, mid-cache-write
  // window, the worst spot.
  Svc.start({}, {"MCO_CRASH_AFTER_MODULES=3"});

  const std::string Out = D.str("reply_kill-1.json");
  pid_t Client = spawnTool(
      MCO_CLIENT_TOOL_PATH,
      {"--socket", Svc.Socket, "--id", "kill-1", "--modules", Modules,
       "--rounds", Rounds, "--per-module", "--retries", "60"},
      Out);
  ASSERT_GT(Client, 0);

  RunResult Crash = waitTool(Svc.Pid);
  Svc.Pid = -1;
  ASSERT_TRUE(Crash.Signaled);
  ASSERT_EQ(Crash.Signal, SIGKILL);

  // Restart on the same state dir with --resume (no crash hook): the
  // request table says kill-1 is unfinished, so it is replayed; its own
  // BuildJournal + the shared cache skip the modules the dead daemon
  // already made durable. The still-retrying client reattaches.
  Svc.start({"--resume"});
  RunResult CR = waitTool(Client);
  ASSERT_EQ(CR.ExitCode, 0) << "client never recovered across the restart";
  std::string Reply = slurp(Out);
  EXPECT_EQ(jsonStr(Reply, "state"), "completed");
  EXPECT_EQ(jsonStr(Reply, "artifact_digest"), referenceDigest());
  std::string St = Svc.stats();
  EXPECT_GE(jsonInt(St, "requests_resumed"), 1) << St;
  EXPECT_GT(jsonInt(Reply, "modules_resumed") + jsonInt(Reply, "cache_hits"),
            0)
      << "the resumed build redid everything: " << Reply;
  Svc.shutdown();
}

TEST(DaemonChaosTest, CorruptSharedCacheEntryUnderTwoClients) {
  ASSERT_FALSE(referenceDigest().empty());
  ScratchDir D("corrupt");
  Daemon Svc(D);
  Svc.start();
  // Populate the shared cache, then flip a byte in one sealed artifact.
  std::string Cold = Svc.submit("pop-1");
  ASSERT_FALSE(Cold.empty());
  ASSERT_EQ(jsonStr(Cold, "artifact_digest"), referenceDigest());
  fs::path Victim;
  for (const auto &E :
       fs::directory_iterator(fs::path(Svc.State) / "cache" / "objects")) {
    Victim = E.path();
    break;
  }
  ASSERT_FALSE(Victim.empty());
  std::string Bytes = slurp(Victim.string());
  Bytes[Bytes.size() / 2] ^= 0x40;
  std::ofstream(Victim, std::ios::binary) << Bytes;

  // Two clients race onto the damaged store. Whoever loads the victim
  // first quarantines it and rebuilds that module; both must end with the
  // reference bytes, and the corruption must be counted, not hidden.
  const std::string OutA = D.str("reply_two-a.json");
  const std::string OutB = D.str("reply_two-b.json");
  auto ClientArgs = [&](const char *Id) {
    return std::vector<std::string>{
        "--socket", Svc.Socket, "--id", Id, "--modules", Modules,
        "--rounds", Rounds, "--per-module", "--retries", "30"};
  };
  pid_t A = spawnTool(MCO_CLIENT_TOOL_PATH, ClientArgs("two-a"), OutA);
  pid_t B = spawnTool(MCO_CLIENT_TOOL_PATH, ClientArgs("two-b"), OutB);
  RunResult RA = waitTool(A), RB = waitTool(B);
  ASSERT_EQ(RA.ExitCode, 0);
  ASSERT_EQ(RB.ExitCode, 0);
  const std::string ReplyA = slurp(OutA), ReplyB = slurp(OutB);
  EXPECT_EQ(jsonStr(ReplyA, "artifact_digest"), referenceDigest());
  EXPECT_EQ(jsonStr(ReplyB, "artifact_digest"), referenceDigest());
  std::string St = Svc.stats();
  EXPECT_GE(jsonInt(St, "cache_corrupt"), 1) << St;
  const fs::path Quarantine = fs::path(Svc.State) / "cache" / "quarantine";
  EXPECT_TRUE(fs::exists(Quarantine));
  EXPECT_FALSE(fs::is_empty(Quarantine));
  Svc.shutdown();
}

} // namespace
