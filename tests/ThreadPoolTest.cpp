//===- tests/ThreadPoolTest.cpp - ThreadPool unit tests -------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace mco;

namespace {

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  ThreadPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1u);
  std::vector<int> Hits(100, 0);
  Pool.parallelFor(Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (int H : Hits)
    EXPECT_EQ(H, 1);
}

TEST(ThreadPoolTest, MoreTasksThanThreadsEachIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 10000;
  std::vector<std::atomic<unsigned>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, IndexOwnedWritesMatchSerialResult) {
  ThreadPool Pool(8);
  constexpr size_t N = 5000;
  std::vector<uint64_t> Out(N);
  Pool.parallelFor(N, [&](size_t I) { Out[I] = I * I + 1; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Out[I], I * I + 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(100,
                                [&](size_t I) {
                                  if (I == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must survive a failed job and run the next one cleanly.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(64, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 64u);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool Pool(4);
  for (unsigned Job = 0; Job < 50; ++Job) {
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(Job + 1, [&](size_t I) {
      Sum.fetch_add(I + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(Sum.load(), uint64_t(Job + 1) * (Job + 2) / 2);
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool Pool(4);
  std::vector<int> Out =
      parallelMap<int>(Pool, 1000, [](size_t I) { return int(I) * 3; });
  ASSERT_EQ(Out.size(), 1000u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], int(I) * 3);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPoolTest, AllOtherIndicesStillRunWhenOneThrows) {
  // One poisoned index must not wedge the other lanes or skip their
  // work: every non-throwing index still runs exactly once.
  ThreadPool Pool(4);
  constexpr size_t N = 64;
  std::vector<std::atomic<unsigned>> Hits(N);
  EXPECT_THROW(Pool.parallelFor(N,
                                [&](size_t I) {
                                  if (I == 20)
                                    throw std::runtime_error("poisoned");
                                  Hits[I].fetch_add(1);
                                }),
               std::runtime_error);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), I == 20 ? 0u : 1u) << "index " << I;
}

TEST(ThreadPoolTest, SurvivesManyConsecutiveFailingGenerations) {
  // Back-to-back failing jobs must each propagate their own exception
  // and leave the pool fully usable for the generation that follows.
  ThreadPool Pool(4);
  for (unsigned Gen = 0; Gen < 10; ++Gen) {
    EXPECT_THROW(Pool.parallelFor(32,
                                  [&](size_t I) {
                                    if (I % 4 == Gen % 4)
                                      throw std::runtime_error("gen fail");
                                  }),
                 std::runtime_error);
    std::atomic<size_t> Count{0};
    Pool.parallelFor(32, [&](size_t) { Count.fetch_add(1); });
    EXPECT_EQ(Count.load(), 32u) << "generation " << Gen;
  }
}

TEST(ThreadPoolTest, InlinePathPropagatesExceptionsToo) {
  // With one lane parallelFor runs inline; a throw must escape directly
  // and the pool must keep working.
  ThreadPool Pool(1);
  EXPECT_THROW(Pool.parallelFor(8,
                                [&](size_t I) {
                                  if (I == 3)
                                    throw std::runtime_error("inline");
                                }),
               std::runtime_error);
  std::atomic<size_t> Count{0};
  Pool.parallelFor(8, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 8u);
}

TEST(ThreadPoolTest, InjectedTaskThrowPropagatesAndClears) {
  // The threadpool.task.throw fault site throws InjectedFault from
  // inside the pool's task wrapper -- before the user function runs --
  // and parallelFor must surface it like any user exception.
  ASSERT_TRUE(
      FaultInjection::instance().configure("threadpool.task.throw:1.0,3").ok());
  ThreadPool Pool(4);
  std::atomic<size_t> Ran{0};
  EXPECT_THROW(Pool.parallelFor(16, [&](size_t) { Ran.fetch_add(1); }),
               InjectedFault);
  EXPECT_EQ(Ran.load(), 0u);

  // Disarming restores normal service on the same pool.
  FaultInjection::instance().clear();
  Pool.parallelFor(16, [&](size_t) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 16u);
}

} // namespace
