//===- tests/LinkerTest.cpp - Linker & image tests ------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"

#include "mir/MIRBuilder.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

void addFn(Program &P, Module &M, const std::string &Name,
           uint32_t OriginModule, unsigned NumInstrs = 2) {
  MachineFunction MF;
  MF.Name = P.internSymbol(Name);
  MF.OriginModule = OriginModule;
  MIRBuilder B(MF.addBlock());
  for (unsigned I = 0; I + 1 < NumInstrs; ++I)
    B.movri(Reg::X0, I);
  B.ret();
  M.Functions.push_back(MF);
}

void addGlobal(Program &P, Module &M, const std::string &Name,
               uint32_t OriginModule, size_t Bytes = 32) {
  GlobalData G;
  G.Name = P.internSymbol(Name);
  G.OriginModule = OriginModule;
  G.Bytes.assign(Bytes, 0);
  M.Globals.push_back(G);
}

TEST(LinkerTest, MergesAllModules) {
  Program P;
  Module &M1 = P.addModule("m1");
  addFn(P, M1, "a", 1);
  addGlobal(P, M1, "ga", 1);
  Module &M2 = P.addModule("m2");
  addFn(P, M2, "b", 2);
  addGlobal(P, M2, "gb", 2);

  Module &L = linkProgram(P);
  EXPECT_EQ(P.Modules.size(), 1u);
  EXPECT_EQ(L.Functions.size(), 2u);
  EXPECT_EQ(L.Globals.size(), 2u);
}

TEST(LinkerTest, PreserveModuleOrderKeepsAffinity) {
  Program P;
  // Interleave creation order across modules.
  Module &M1 = P.addModule("m1");
  Module &M2 = P.addModule("m2");
  addGlobal(P, M1, "a1", 1);
  addGlobal(P, M2, "b1", 2);
  addGlobal(P, M1, "a2", 1);
  addGlobal(P, M2, "b2", 2);

  linkProgram(P, DataLayoutMode::PreserveModuleOrder);
  const Module &L = *P.Modules[0];
  ASSERT_EQ(L.Globals.size(), 4u);
  EXPECT_EQ(L.Globals[0].OriginModule, 1u);
  EXPECT_EQ(L.Globals[1].OriginModule, 1u);
  EXPECT_EQ(L.Globals[2].OriginModule, 2u);
  EXPECT_EQ(L.Globals[3].OriginModule, 2u);
}

TEST(LinkerTest, InterleavedModeMixesModules) {
  Program P;
  Module &M1 = P.addModule("m1");
  Module &M2 = P.addModule("m2");
  for (int I = 0; I < 16; ++I) {
    addGlobal(P, M1, "a" + std::to_string(I), 1);
    addGlobal(P, M2, "b" + std::to_string(I), 2);
  }
  linkProgram(P, DataLayoutMode::Interleaved);
  const Module &L = *P.Modules[0];
  // Count adjacent same-module pairs: an affinity-preserving order would
  // have 30 of 31; a hash shuffle has far fewer.
  unsigned SamePairs = 0;
  for (size_t I = 1; I < L.Globals.size(); ++I)
    SamePairs += L.Globals[I].OriginModule == L.Globals[I - 1].OriginModule;
  EXPECT_LT(SamePairs, 24u);
}

TEST(BinaryImageTest, AssignsSequentialAddresses) {
  Program P;
  Module &M = P.addModule("m");
  addFn(P, M, "a", 0, 3);
  addFn(P, M, "b", 0, 2);
  BinaryImage Img(P);
  uint64_t AddrA = Img.functionAddr(P.lookupSymbol("a"));
  uint64_t AddrB = Img.functionAddr(P.lookupSymbol("b"));
  EXPECT_EQ(AddrA, BinaryImage::TextBase);
  EXPECT_EQ(AddrB, AddrA + 3 * InstrBytes);
  EXPECT_EQ(Img.codeSize(), 5 * InstrBytes);
  EXPECT_EQ(Img.functionIndexAt(AddrB), 1u);
  EXPECT_NE(Img.instrAt(AddrA), nullptr);
  EXPECT_EQ(Img.instrAt(AddrA + 100 * InstrBytes), nullptr);
}

TEST(BinaryImageTest, DataFollowsTextPageAligned) {
  Program P;
  Module &M = P.addModule("m");
  addFn(P, M, "a", 0, 3);
  addGlobal(P, M, "g", 0, 100);
  BinaryImage Img(P);
  EXPECT_EQ(Img.dataBase() % BinaryImage::PageSize, 0u);
  EXPECT_GE(Img.dataBase(), BinaryImage::TextBase + Img.codeSize());
  uint64_t GAddr = Img.globalAddr(P.lookupSymbol("g"));
  EXPECT_EQ(GAddr, Img.dataBase());
  EXPECT_EQ(Img.dataSize(), 100u);
}

TEST(BinaryImageTest, UndefinedSymbolsReportZero) {
  Program P;
  Module &M = P.addModule("m");
  addFn(P, M, "a", 0);
  uint32_t Undef = P.internSymbol("swift_retain");
  BinaryImage Img(P);
  EXPECT_EQ(Img.functionAddr(Undef), 0u);
  EXPECT_EQ(Img.globalAddr(Undef), 0u);
}

TEST(BinaryImageTest, BlockAddresses) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B0(MF.addBlock());
  B0.movri(Reg::X0, 1);
  B0.movri(Reg::X1, 2);
  MIRBuilder B1(MF.addBlock());
  B1.ret();
  M.Functions.push_back(MF);
  BinaryImage Img(P);
  EXPECT_EQ(Img.blockAddr(0, 0), BinaryImage::TextBase);
  EXPECT_EQ(Img.blockAddr(0, 1), BinaryImage::TextBase + 2 * InstrBytes);
}

TEST(BinaryImageTest, BinarySizeIncludesResources) {
  Program P;
  Module &M = P.addModule("m");
  addFn(P, M, "a", 0, 4);
  addGlobal(P, M, "g", 0, 64);
  BinaryImage Img(P);
  EXPECT_EQ(Img.binarySize(1000), Img.codeSize() + Img.dataSize() + 1000);
}

} // namespace
