//===- tests/OutlinerTest.cpp - Single-round outliner tests ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "outliner/MachineOutliner.h"

#include "mir/MIRBuilder.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

/// Makes a function named \p Name whose single block is filled by \p Fill.
MachineFunction makeFn(Program &P, const std::string &Name,
                       void (*Fill)(MIRBuilder &, Program &)) {
  MachineFunction MF;
  MF.Name = P.internSymbol(Name);
  MIRBuilder B(MF.addBlock());
  Fill(B, P);
  return MF;
}

/// Counts outlined functions in \p M.
unsigned countOutlined(const Module &M) {
  unsigned N = 0;
  for (const MachineFunction &MF : M.Functions)
    N += MF.IsOutlined ? 1 : 0;
  return N;
}

TEST(OutlinerTest, NoRepeatsNoOutlining) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X0, 1);
  B.movri(Reg::X1, 2);
  B.movri(Reg::X2, 3);
  B.ret();
  M.Functions.push_back(MF);

  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  EXPECT_EQ(S.FunctionsCreated, 0u);
  EXPECT_EQ(S.CodeSizeBefore, S.CodeSizeAfter);
}

TEST(OutlinerTest, UnprofitablePatternRejected) {
  // A 2-instruction pattern repeating only twice with NoLRSave costs:
  // before 16, after 4+4 (calls) + 8 (body) + 4 (ret) = 20. Not profitable.
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 2; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X1, 11);
    B.movri(Reg::X2, 22);
    M.Functions.push_back(MF);
  }
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  EXPECT_EQ(S.FunctionsCreated, 0u);
}

TEST(OutlinerTest, TailCallVariant) {
  // Three functions ending in the same [mov; mov; ret]: outlined with a
  // tail-call branch at each site; the outlined body keeps the RET.
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X9, F); // Unique prefix so only the tail repeats.
    B.movri(Reg::X0, 77);
    B.movri(Reg::X1, 88);
    B.ret();
    M.Functions.push_back(MF);
  }
  uint64_t Before = M.codeSize();
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  ASSERT_EQ(S.FunctionsCreated, 1u);
  EXPECT_EQ(S.SequencesOutlined, 3u);
  EXPECT_EQ(M.codeSize(), S.CodeSizeAfter);
  // Savings: 3 sites x (3 instrs -> 1 Btail) = 24 bytes minus 12-byte body.
  EXPECT_EQ(Before - S.CodeSizeAfter, 12u);

  const MachineFunction &Out = M.Functions.back();
  ASSERT_TRUE(Out.IsOutlined);
  EXPECT_EQ(Out.FrameKind, OutlinedFrameKind::TailCall);
  ASSERT_EQ(Out.numInstrs(), 3u);
  EXPECT_EQ(Out.Blocks[0].Instrs.back().opcode(), Opcode::RET);
  // Call sites end with Btail to the outlined function.
  for (int F = 0; F < 3; ++F) {
    const auto &Instrs = M.Functions[F].Blocks[0].Instrs;
    ASSERT_EQ(Instrs.size(), 2u);
    EXPECT_EQ(Instrs.back().opcode(), Opcode::Btail);
    EXPECT_EQ(Instrs.back().operand(0).getSym(), Out.Name);
  }
}

TEST(OutlinerTest, ThunkVariant) {
  // The paper's most common shape: register move + call (Listing 1).
  Program P;
  uint32_t Release = P.internSymbol("swift_release");
  Module &M = P.addModule("m");
  for (int F = 0; F < 4; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X9, 100 + F); // Unique filler.
    B.movrr(Reg::X0, Reg::X20);
    B.bl(Release);
    B.movri(Reg::X10, 200 + F); // Unique filler.
    M.Functions.push_back(MF);
  }
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  ASSERT_EQ(S.FunctionsCreated, 1u);
  EXPECT_EQ(S.SequencesOutlined, 4u);

  const MachineFunction &Out = M.Functions.back();
  EXPECT_EQ(Out.FrameKind, OutlinedFrameKind::Thunk);
  ASSERT_EQ(Out.numInstrs(), 2u);
  EXPECT_EQ(Out.Blocks[0].Instrs[0].opcode(), Opcode::MOVrr);
  EXPECT_EQ(Out.Blocks[0].Instrs[1].opcode(), Opcode::Btail);
  EXPECT_EQ(Out.Blocks[0].Instrs[1].operand(0).getSym(), Release);
  // Call sites use a single BL.
  const auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  ASSERT_EQ(Instrs.size(), 3u);
  EXPECT_EQ(Instrs[1].opcode(), Opcode::BL);
  EXPECT_EQ(Instrs[1].operand(0).getSym(), Out.Name);
}

TEST(OutlinerTest, NoLRSaveWhenLRDead) {
  // Standard frame: LR saved in prologue, restored in epilogue; body
  // patterns can be called with a bare BL.
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.strpre(LR, Reg::SP, -16);
    B.movri(Reg::X1, 10);
    B.movri(Reg::X2, 20);
    B.movri(Reg::X3, 30);
    B.ldrpost(LR, Reg::SP, 16);
    B.ret();
    M.Functions.push_back(MF);
  }
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  ASSERT_EQ(S.FunctionsCreated, 1u);
  const MachineFunction &Out = M.Functions.back();
  EXPECT_EQ(Out.FrameKind, OutlinedFrameKind::AppendedRet);
  ASSERT_EQ(Out.numInstrs(), 4u); // 3 movs + appended RET.
  // Call site: prologue, BL, epilogue, ret.
  const auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  ASSERT_EQ(Instrs.size(), 4u);
  EXPECT_EQ(Instrs[1].opcode(), Opcode::BL);
}

TEST(OutlinerTest, RegSaveWhenLRLive) {
  // Leaf functions with no LR spill: the pattern sits before a unique
  // instruction and the RET, so LR is live across it. A scratch register
  // must be used to preserve LR around the call.
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    for (int K = 0; K < 6; ++K)
      B.movri(xreg(1 + K), 40 + K);
    B.movri(Reg::X0, 900 + F); // Unique.
    B.ret();
    M.Functions.push_back(MF);
  }
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  ASSERT_EQ(S.FunctionsCreated, 1u);
  const auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  // mov x9, lr; bl OUT; mov lr, x9; mov x0, #900; ret
  ASSERT_EQ(Instrs.size(), 5u);
  EXPECT_EQ(Instrs[0].opcode(), Opcode::MOVrr);
  EXPECT_EQ(Instrs[0].operand(0).getReg(), Reg::X9);
  EXPECT_EQ(Instrs[0].operand(1).getReg(), LR);
  EXPECT_EQ(Instrs[1].opcode(), Opcode::BL);
  EXPECT_EQ(Instrs[2].opcode(), Opcode::MOVrr);
  EXPECT_EQ(Instrs[2].operand(0).getReg(), LR);
  EXPECT_EQ(Instrs[2].operand(1).getReg(), Reg::X9);
}

TEST(OutlinerTest, RegSavePicksFreeRegister) {
  // Same as above but x9..x11 are used by the pattern, so x12 is chosen.
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    for (int K = 0; K < 6; ++K)
      B.movri(xreg(9 + (K % 3)), 40 + K); // Touches x9, x10, x11.
    B.movri(Reg::X0, 900 + F);
    B.ret();
    M.Functions.push_back(MF);
  }
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  ASSERT_EQ(S.FunctionsCreated, 1u);
  const auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  EXPECT_EQ(Instrs[0].operand(0).getReg(), Reg::X12);
}

TEST(OutlinerTest, SaveLRToStackWhenRegSaveDisabled) {
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    for (int K = 0; K < 6; ++K)
      B.movri(xreg(1 + K), 40 + K);
    B.movri(Reg::X0, 900 + F);
    B.ret();
    M.Functions.push_back(MF);
  }
  OutlinerOptions Opts;
  Opts.EnableRegSave = false;
  OutlineRoundStats S = runOutlinerRound(P, M, 1, Opts);
  ASSERT_EQ(S.FunctionsCreated, 1u);
  const auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  EXPECT_EQ(Instrs[0].opcode(), Opcode::STRpre);
  EXPECT_EQ(Instrs[1].opcode(), Opcode::BL);
  EXPECT_EQ(Instrs[2].opcode(), Opcode::LDRpost);
}

TEST(OutlinerTest, SPUsingPatternRejectedUnderStackSave) {
  // LR live, RegSave disabled, and the pattern touches SP: outlining would
  // corrupt the SP-relative offsets, so nothing may be outlined.
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X1, 5);
    B.str(Reg::X1, Reg::SP, 8);
    B.movri(Reg::X2, 6);
    B.str(Reg::X2, Reg::SP, 16);
    B.movri(Reg::X3, 7);
    B.str(Reg::X3, Reg::SP, 24);
    B.movri(Reg::X0, 900 + F);
    B.ret();
    M.Functions.push_back(MF);
  }
  OutlinerOptions Opts;
  Opts.EnableRegSave = false;
  OutlineRoundStats S = runOutlinerRound(P, M, 1, Opts);
  EXPECT_EQ(S.FunctionsCreated, 0u);
  EXPECT_EQ(countOutlined(M), 0u);
}

TEST(OutlinerTest, SPUsingPatternAllowedWithRegSave) {
  // Same pattern, but RegSave available: SP accesses are fine because the
  // call site does not move SP.
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X1, 5);
    B.str(Reg::X1, Reg::SP, 8);
    B.movri(Reg::X2, 6);
    B.str(Reg::X2, Reg::SP, 16);
    B.movri(Reg::X3, 7);
    B.str(Reg::X3, Reg::SP, 24);
    B.movri(Reg::X0, 900 + F);
    B.ret();
    M.Functions.push_back(MF);
  }
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  EXPECT_EQ(S.FunctionsCreated, 1u);
}

TEST(OutlinerTest, MidCallPatternSavesLRInFrame) {
  Program P;
  uint32_t G = P.internSymbol("g");
  uint32_t H = P.internSymbol("h");
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X0, 1);
    B.bl(G);
    B.movri(Reg::X0, 2);
    B.bl(H);
    B.movri(Reg::X9, 700 + F); // Unique.
    M.Functions.push_back(MF);
  }
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  ASSERT_EQ(S.FunctionsCreated, 1u);
  const MachineFunction &Out = M.Functions.back();
  EXPECT_EQ(Out.FrameKind, OutlinedFrameKind::SavesLRInFrame);
  const auto &Body = Out.Blocks[0].Instrs;
  // str lr,[sp,#-16]!; mov; bl g; mov; bl h; ldr lr,[sp],#16; ret
  ASSERT_EQ(Body.size(), 7u);
  EXPECT_EQ(Body.front().opcode(), Opcode::STRpre);
  EXPECT_EQ(Body[Body.size() - 2].opcode(), Opcode::LDRpost);
  EXPECT_EQ(Body.back().opcode(), Opcode::RET);
}

TEST(OutlinerTest, SizeAccountingIsExact) {
  Program P;
  uint32_t G = P.internSymbol("g");
  Module &M = P.addModule("m");
  for (int F = 0; F < 8; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movrr(Reg::X0, Reg::X20);
    B.bl(G);
    B.movrr(Reg::X0, Reg::X21);
    B.bl(G);
    B.movri(Reg::X9, 5000 + F);
    M.Functions.push_back(MF);
  }
  uint64_t Before = M.codeSize();
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  EXPECT_EQ(S.CodeSizeBefore, Before);
  EXPECT_EQ(S.CodeSizeAfter, M.codeSize());
  EXPECT_LT(S.CodeSizeAfter, Before);
}

TEST(OutlinerTest, GreedyPrefersHigherImmediateBenefit) {
  // A 2-instr pattern with 22 occurrences beats a 3-instr pattern with 6;
  // stock greedy outlines the short one first (paper Listings 12/13).
  Program P;
  Module &M = P.addModule("m");
  auto AddBlockFn = [&](const std::string &Name, bool WithPrefix) {
    MachineFunction MF;
    MF.Name = P.internSymbol(Name);
    MIRBuilder B(MF.addBlock());
    if (WithPrefix)
      B.movri(Reg::X3, 33);
    B.movri(Reg::X1, 11);
    B.movri(Reg::X2, 12);
    M.Functions.push_back(MF);
  };
  for (int I = 0; I < 16; ++I)
    AddBlockFn("short" + std::to_string(I), false);
  for (int I = 0; I < 6; ++I)
    AddBlockFn("long" + std::to_string(I), true);

  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  ASSERT_GE(S.FunctionsCreated, 1u);
  // The first created outlined function must be the 2-instr pattern body
  // (+ appended RET = 3 instrs).
  const MachineFunction *FirstOut = nullptr;
  for (const MachineFunction &MF : M.Functions)
    if (MF.IsOutlined) {
      FirstOut = &MF;
      break;
    }
  ASSERT_NE(FirstOut, nullptr);
  EXPECT_EQ(FirstOut->numInstrs(), 3u);
}

TEST(OutlinerTest, RejectionCountersExplainDecisions) {
  // SP-using pattern with LR live and RegSave disabled: every occurrence
  // is dropped by the SP restriction and the counters must say so.
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X1, 5);
    B.str(Reg::X1, Reg::SP, 8);
    B.movri(Reg::X2, 6);
    B.str(Reg::X2, Reg::SP, 16);
    B.movri(Reg::X3, 7);
    B.str(Reg::X3, Reg::SP, 24);
    B.movri(Reg::X0, 900 + F);
    B.ret();
    M.Functions.push_back(MF);
  }
  OutlinerOptions Opts;
  Opts.EnableRegSave = false;
  OutlineRoundStats S = runOutlinerRound(P, M, 1, Opts);
  EXPECT_EQ(S.FunctionsCreated, 0u);
  EXPECT_GT(S.PatternsConsidered, 0u);
  EXPECT_GT(S.CandidatesDroppedSP, 0u);
}

TEST(OutlinerTest, OverlapCounterTracksGreedyConsumption) {
  // Nested short/long patterns: committing the short one consumes the
  // long one's occurrences.
  Program P;
  Module &M = P.addModule("m");
  auto Add = [&](const std::string &N, bool WithPrefix) {
    MachineFunction MF;
    MF.Name = P.internSymbol(N);
    MIRBuilder B(MF.addBlock());
    if (WithPrefix)
      B.movri(Reg::X3, 33);
    B.movri(Reg::X1, 11);
    B.movri(Reg::X2, 12);
    M.Functions.push_back(MF);
  };
  for (int I = 0; I < 16; ++I)
    Add("s" + std::to_string(I), false);
  for (int I = 0; I < 6; ++I)
    Add("l" + std::to_string(I), true);
  OutlineRoundStats S = runOutlinerRound(P, M, 1);
  EXPECT_GT(S.CandidatesDroppedOverlap, 0u);
}

TEST(OutlinerTest, OutlinedNamesCarryPrefixAndRound) {
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X0, 1);
    B.movri(Reg::X1, 2);
    B.ret();
    M.Functions.push_back(MF);
  }
  OutlinerOptions Opts;
  Opts.NamePrefix = "OUTLINED_FUNCTION@mymod";
  OutlineRoundStats S = runOutlinerRound(P, M, 7, Opts);
  ASSERT_EQ(S.FunctionsCreated, 1u);
  EXPECT_EQ(P.symbolName(M.Functions.back().Name),
            "OUTLINED_FUNCTION@mymod_7_0");
}

} // namespace
