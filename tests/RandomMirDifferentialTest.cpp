//===- tests/RandomMirDifferentialTest.cpp - Outliner fuzzing -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Differential fuzzing of the outliner: generate random (but safe by
/// construction) machine programs seeded with repeated snippets, execute
/// them, outline them at increasing repeat counts, and require the
/// observable result to be bit-identical each time. Parameterized over
/// seeds — each seed is a distinct program shape.
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "mir/MIRBuilder.h"
#include "mir/MIRVerifier.h"
#include "outliner/MachineOutliner.h"
#include "sim/Interpreter.h"
#include "support/Random.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

/// Emits one random ALU instruction over x0..x12 (no memory, no control
/// flow — always safe).
void emitRandomAlu(MIRBuilder &B, Rng &R) {
  Reg D = xreg(R.nextBounded(13));
  Reg A = xreg(R.nextBounded(13));
  Reg C = xreg(R.nextBounded(13));
  switch (R.nextBounded(8)) {
  case 0: B.movri(D, R.nextInRange(-1000, 1000)); break;
  case 1: B.addri(D, A, R.nextInRange(0, 4095)); break;
  case 2: B.subri(D, A, R.nextInRange(0, 4095)); break;
  case 3: B.addrr(D, A, C); break;
  case 4: B.eorrr(D, A, C); break;
  case 5: B.andrr(D, A, C); break;
  case 6: B.lslri(D, A, 1 + R.nextInRange(0, 7)); break;
  case 7: B.asrri(D, A, 1 + R.nextInRange(0, 7)); break;
  }
}

/// A reusable snippet: a short fixed instruction sequence pasted at
/// several random positions so the program has outlining candidates.
std::vector<MachineInstr> makeSnippet(Rng &R, unsigned Len) {
  MachineFunction Tmp;
  MIRBuilder B(Tmp.addBlock());
  for (unsigned I = 0; I < Len; ++I)
    emitRandomAlu(B, R);
  return Tmp.Blocks[0].Instrs;
}

/// Builds a random program and returns the entry function name.
std::string buildRandomProgram(Program &Prog, uint64_t Seed) {
  Rng R(Seed);
  Module &M = Prog.addModule("fuzz");

  // A few leaf helpers the main function calls.
  const unsigned NumHelpers = 2 + R.nextBounded(3);
  for (unsigned H = 0; H < NumHelpers; ++H) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol("h" + std::to_string(H));
    MIRBuilder B(MF.addBlock());
    for (unsigned I = 0, E = 2 + R.nextBounded(5); I < E; ++I)
      emitRandomAlu(B, R);
    B.ret();
    M.Functions.push_back(MF);
  }

  // Shared snippets (the outlining fodder).
  std::vector<std::vector<MachineInstr>> Snippets;
  for (unsigned S = 0, E = 3 + R.nextBounded(4); S < E; ++S)
    Snippets.push_back(makeSnippet(R, 2 + R.nextBounded(5)));

  MachineFunction MF;
  MF.Name = Prog.internSymbol("test_main");
  MIRBuilder B(MF.addBlock());
  B.strpre(LR, Reg::SP, -16);

  // Straight-line section: random ALU, snippet paste-ins, helper calls.
  for (unsigned Step = 0, E = 40 + R.nextBounded(80); Step < E; ++Step) {
    switch (R.nextBounded(4)) {
    case 0:
    case 1:
      emitRandomAlu(B, R);
      break;
    case 2: {
      const auto &Snip = Snippets[R.nextBounded(Snippets.size())];
      for (const MachineInstr &MI : Snip)
        B.block().push(MI);
      break;
    }
    case 3:
      B.bl(Prog.lookupSymbol("h" + std::to_string(
                                       R.nextBounded(NumHelpers))));
      break;
    }
  }

  // A counted loop whose body also contains a snippet.
  const int64_t Trip = 3 + R.nextInRange(0, 20);
  B.movri(Reg::X15, Trip);
  B.b(1);
  MF.addBlock();
  B.setBlock(MF.Blocks[1]);
  {
    const auto &Snip = Snippets[R.nextBounded(Snippets.size())];
    for (const MachineInstr &MI : Snip)
      B.block().push(MI);
    emitRandomAlu(B, R);
    B.subri(Reg::X15, Reg::X15, 1);
    B.cbnz(Reg::X15, 1);
  }
  MF.addBlock();
  B.setBlock(MF.Blocks[2]);
  // Fold every live register into x0 so the checksum observes all state.
  for (unsigned I = 1; I <= 12; ++I)
    B.eorrr(Reg::X0, Reg::X0, xreg(I));
  B.ldrpost(LR, Reg::SP, 16);
  B.ret();
  M.Functions.push_back(MF);
  return "test_main";
}

class RandomMirTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMirTest, OutliningPreservesResultAtEveryRepeatCount) {
  const uint64_t Seed = GetParam();

  // Reference result, unoutlined.
  int64_t Expected;
  {
    Program Prog;
    std::string Entry = buildRandomProgram(Prog, Seed);
    ASSERT_EQ(verifyModule(Prog, *Prog.Modules[0]), "");
    BinaryImage Image(Prog);
    Interpreter I(Image, Prog);
    Expected = I.call(Entry);
  }

  for (unsigned Rounds : {1u, 2u, 5u}) {
    Program Prog;
    std::string Entry = buildRandomProgram(Prog, Seed);
    Module &M = *Prog.Modules[0];
    uint64_t Before = M.codeSize();
    runRepeatedOutliner(Prog, M, Rounds);
    EXPECT_LE(M.codeSize(), Before);
    VerifyOptions Opts;
    Opts.CheckSymbolResolution = true;
    ASSERT_EQ(verifyModule(Prog, M, Opts), "")
        << "seed " << Seed << " rounds " << Rounds;
    BinaryImage Image(Prog);
    Interpreter I(Image, Prog);
    EXPECT_EQ(I.call(Entry), Expected)
        << "seed " << Seed << " rounds " << Rounds;
  }
}

TEST_P(RandomMirTest, LeafDescendantModeAlsoPreservesResult) {
  const uint64_t Seed = GetParam();
  int64_t Expected;
  {
    Program Prog;
    std::string Entry = buildRandomProgram(Prog, Seed);
    BinaryImage Image(Prog);
    Interpreter I(Image, Prog);
    Expected = I.call(Entry);
  }
  Program Prog;
  std::string Entry = buildRandomProgram(Prog, Seed);
  Module &M = *Prog.Modules[0];
  OutlinerOptions Opts;
  Opts.LeafDescendants = true;
  runRepeatedOutliner(Prog, M, 3, Opts);
  ASSERT_EQ(verifyModule(Prog, M), "");
  BinaryImage Image(Prog);
  Interpreter I(Image, Prog);
  EXPECT_EQ(I.call(Entry), Expected) << "seed " << Seed;
}

TEST_P(RandomMirTest, RegSaveDisabledAlsoPreservesResult) {
  const uint64_t Seed = GetParam();
  int64_t Expected;
  {
    Program Prog;
    std::string Entry = buildRandomProgram(Prog, Seed);
    BinaryImage Image(Prog);
    Interpreter I(Image, Prog);
    Expected = I.call(Entry);
  }
  Program Prog;
  std::string Entry = buildRandomProgram(Prog, Seed);
  Module &M = *Prog.Modules[0];
  OutlinerOptions Opts;
  Opts.EnableRegSave = false;
  runRepeatedOutliner(Prog, M, 3, Opts);
  BinaryImage Image(Prog);
  Interpreter I(Image, Prog);
  EXPECT_EQ(I.call(Entry), Expected) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMirTest,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace
