//===- tests/GuardedOutliningTest.cpp - Guarded outlining & faults --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
//
// Exercises the failure-handling stack end to end: Status/Expected,
// the deterministic fault-injection registry, per-round verify +
// rollback + quarantine in OutlineGuard, and the pipeline's graceful
// degradation. The matrix test is the paper's production constraint in
// miniature: an injected optimizer bug may cost a candidate, a round,
// or a module -- never the build.
//
//===----------------------------------------------------------------------===//

#include "pipeline/BuildPipeline.h"

#include "linker/Linker.h"
#include "mir/MIRPrinter.h"
#include "mir/MIRVerifier.h"
#include "outliner/OutlineGuard.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "synth/CorpusSynthesizer.h"
#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace mco;

namespace {

/// Arms the process-wide registry for one test and guarantees it is
/// disarmed again even if the test fails mid-way.
struct FaultScope {
  explicit FaultScope(const std::string &Spec) {
    Status S = FaultInjection::instance().configure(Spec);
    EXPECT_TRUE(S.ok()) << S.render();
  }
  ~FaultScope() { FaultInjection::instance().clear(); }
};

AppProfile guardProfile() {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 4;
  P.FunctionsPerModule = 12;
  return P;
}

//===----------------------------------------------------------------------===//
// Status / Expected
//===----------------------------------------------------------------------===//

TEST(StatusTest, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.render(), "");
  EXPECT_TRUE(Status::success().ok());
}

TEST(StatusTest, ErrorCarriesMessageAndLocation) {
  Status S = MCO_ERROR("widget exploded");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.message(), "widget exploded");
  EXPECT_NE(S.file(), nullptr);
  EXPECT_GT(S.line(), 0);
  EXPECT_NE(S.render().find("widget exploded"), std::string::npos);
  EXPECT_NE(S.render().find("GuardedOutliningTest"), std::string::npos);

  // Copies share the payload.
  Status T = S;
  EXPECT_EQ(T.message(), "widget exploded");
}

TEST(StatusTest, ExpectedHoldsValueOrError) {
  Expected<int> V(42);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 42);
  EXPECT_TRUE(V.status().ok());

  Expected<int> E(MCO_ERROR("no value"));
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().message(), "no value");
}

//===----------------------------------------------------------------------===//
// Fault-injection registry
//===----------------------------------------------------------------------===//

TEST(FaultInjectionTest, RejectsUnknownSiteAndListsKnownOnes) {
  Status S = FaultInjection::instance().configure("bogus.site:1.0");
  ASSERT_FALSE(S.ok());
  // The error must teach the user the valid site names.
  for (const std::string &Known : FaultInjection::knownSites())
    EXPECT_NE(S.message().find(Known), std::string::npos) << Known;
  // A failed configure leaves the registry disarmed.
  EXPECT_FALSE(FaultInjection::instance().armed());
  EXPECT_FALSE(faultSiteFires(FaultOutlinerRewriteCorrupt));
}

TEST(FaultInjectionTest, RejectsOutOfRangeRate) {
  EXPECT_FALSE(
      FaultInjection::instance().configure("mapper.hash.collide:1.5").ok());
  EXPECT_FALSE(
      FaultInjection::instance().configure("mapper.hash.collide:-0.1").ok());
  EXPECT_FALSE(
      FaultInjection::instance().configure("mapper.hash.collide:xyz").ok());
  EXPECT_FALSE(FaultInjection::instance().armed());
}

TEST(FaultInjectionTest, EmptySpecClearsAndDisarms) {
  {
    FaultScope F("threadpool.task.throw:1.0");
    EXPECT_TRUE(FaultInjection::instance().armed());
  }
  EXPECT_FALSE(FaultInjection::instance().armed());
  EXPECT_TRUE(FaultInjection::instance().configure("").ok());
  EXPECT_FALSE(FaultInjection::instance().armed());
}

TEST(FaultInjectionTest, FireSequenceIsDeterministic) {
  auto Draw = [](unsigned N) {
    std::vector<bool> Out;
    for (unsigned I = 0; I < N; ++I)
      Out.push_back(faultSiteFires(FaultMapperHashCollide));
    return Out;
  };
  std::vector<bool> A, B;
  {
    FaultScope F("mapper.hash.collide:0.5,123");
    A = Draw(256);
  }
  {
    FaultScope F("mapper.hash.collide:0.5,123");
    B = Draw(256);
  }
  EXPECT_EQ(A, B);
  // Roughly half fire; exact fraction is seed-dependent but cannot be
  // degenerate for a fair generator.
  size_t Fired = 0;
  for (bool X : A)
    Fired += X;
  EXPECT_GT(Fired, 64u);
  EXPECT_LT(Fired, 192u);

  // A different seed must give a different sequence.
  std::vector<bool> C;
  {
    FaultScope F("mapper.hash.collide:0.5,124");
    C = Draw(256);
  }
  EXPECT_NE(A, C);
}

TEST(FaultInjectionTest, RoundFilterGatesFiring) {
  FaultScope F("pipeline.module.fail@2:1.0");
  FaultInjection::instance().setRound(1);
  EXPECT_FALSE(faultSiteFires(FaultPipelineModuleFail));
  FaultInjection::instance().setRound(2);
  EXPECT_TRUE(faultSiteFires(FaultPipelineModuleFail));
  FaultInjection::instance().setRound(3);
  EXPECT_FALSE(faultSiteFires(FaultPipelineModuleFail));
}

TEST(FaultInjectionTest, ReportCountsDrawsAndFires) {
  FaultScope F("threadpool.task.throw:1.0,9");
  for (int I = 0; I < 5; ++I)
    EXPECT_THROW(faultSiteCheck(FaultThreadPoolTaskThrow), InjectedFault);
  auto Reports = FaultInjection::instance().report();
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].Site, FaultThreadPoolTaskThrow);
  EXPECT_EQ(Reports[0].Draws, 5u);
  EXPECT_EQ(Reports[0].Fired, 5u);
  EXPECT_EQ(FaultInjection::instance().firedCount(FaultThreadPoolTaskThrow),
            5u);
}

//===----------------------------------------------------------------------===//
// No faults: the guard must be a no-op byte for byte
//===----------------------------------------------------------------------===//

void expectGuardBitIdentical(bool WholeProgram, unsigned Threads) {
  auto Plain = CorpusSynthesizer(guardProfile()).generate();
  auto Guarded = CorpusSynthesizer(guardProfile()).generate();

  PipelineOptions Opts;
  Opts.OutlineRounds = 3;
  Opts.WholeProgram = WholeProgram;
  Opts.Threads = Threads;
  BuildResult RP = buildProgram(*Plain, Opts);

  Opts.Guard.Enabled = true;
  Opts.Guard.VerifyExecSamples = 2;
  BuildResult RG = buildProgram(*Guarded, Opts);

  // Same sizes, same text, and the guard saw nothing to repair.
  EXPECT_EQ(RP.CodeSize, RG.CodeSize);
  EXPECT_EQ(RP.BinarySize, RG.BinarySize);
  EXPECT_EQ(RG.RoundsRolledBack, 0u);
  EXPECT_EQ(RG.PatternsQuarantined, 0u);
  EXPECT_EQ(RG.ModulesDegraded, 0u);
  EXPECT_TRUE(RG.FailureLog.empty());
  EXPECT_EQ(printModule(*Plain->Modules[0], *Plain),
            printModule(*Guarded->Modules[0], *Guarded));
}

TEST(GuardedOutliningTest, NoFaultGuardIsBitIdenticalWholeProgram) {
  expectGuardBitIdentical(/*WholeProgram=*/true, /*Threads=*/1);
}

TEST(GuardedOutliningTest, NoFaultGuardIsBitIdenticalPerModule) {
  expectGuardBitIdentical(/*WholeProgram=*/false, /*Threads=*/2);
}

TEST(GuardedOutliningTest, GuardedEngineMatchesPlainEngine) {
  // Below the pipeline: OutlineGuard driving the engine directly must
  // reproduce runRepeatedOutliner exactly when nothing goes wrong.
  auto A = CorpusSynthesizer(guardProfile()).generate();
  auto B = CorpusSynthesizer(guardProfile()).generate();
  Module &LA = linkProgram(*A);
  Module &LB = linkProgram(*B);

  RepeatedOutlineStats SA = runRepeatedOutliner(*A, LA, 3);

  GuardOptions G;
  G.Enabled = true;
  G.VerifyExecSamples = 3;
  OutlineGuard Guard(*B, *B, LB, OutlinerOptions(), G);
  RepeatedOutlineStats SB = Guard.runGuardedRepeated(3);

  EXPECT_EQ(Guard.totalRoundsRolledBack(), 0u);
  EXPECT_EQ(Guard.numQuarantinedPatterns(), 0u);
  ASSERT_EQ(SA.Rounds.size(), SB.Rounds.size());
  for (size_t I = 0; I < SA.Rounds.size(); ++I) {
    EXPECT_EQ(SA.Rounds[I].CodeSizeAfter, SB.Rounds[I].CodeSizeAfter);
    EXPECT_EQ(SA.Rounds[I].FunctionsCreated, SB.Rounds[I].FunctionsCreated);
  }
  EXPECT_EQ(printModule(LA, *A), printModule(LB, *B));
}

//===----------------------------------------------------------------------===//
// Single-site recovery behaviors
//===----------------------------------------------------------------------===//

TEST(GuardedOutliningTest, CorruptRewriteIsRolledBackAndQuarantined) {
  auto Prog = CorpusSynthesizer(guardProfile()).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 3;
  Opts.Guard.Enabled = true;

  FaultScope F("outliner.rewrite.corrupt@1:1.0,7");
  BuildResult R = buildProgram(*Prog, Opts);

  // Round 1's corrupted rewrites were detected by verifyFunction, the
  // round was rolled back (and retried until skipped), and the offending
  // patterns quarantined. Later rounds are fault-free and still outline.
  EXPECT_GE(R.RoundsRolledBack, 1u);
  EXPECT_GE(R.PatternsQuarantined, 1u);
  EXPECT_FALSE(R.FailureLog.empty());
  VerifyOptions VOpts;
  VOpts.CheckSymbolResolution = true;
  EXPECT_EQ(verifyModule(*Prog, *Prog->Modules[0], VOpts), "");
}

TEST(GuardedOutliningTest, HashCollisionIsCaughtBeforeCommitSurvives) {
  // A colliding mapper id makes structurally valid but semantically wrong
  // "repeats"; only the guard's edit-integrity check can see it. Rate 0.5
  // keeps a mix of honest and colliding ids (1.0 degenerates to a single
  // legal id, which produces no false repeats at all).
  auto Prog = CorpusSynthesizer(guardProfile()).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 3;
  Opts.Guard.Enabled = true;

  FaultScope F("mapper.hash.collide@1:0.5,7");
  BuildResult R = buildProgram(*Prog, Opts);

  VerifyOptions VOpts;
  VOpts.CheckSymbolResolution = true;
  EXPECT_EQ(verifyModule(*Prog, *Prog->Modules[0], VOpts), "");
  // The final module must contain no function whose body disagrees with
  // the sequence it replaced -- i.e. every committed round passed the
  // integrity check, and anything that failed it was rolled back.
  EXPECT_GE(R.RoundsRolledBack + R.ModulesDegraded, 1u);
}

TEST(GuardedOutliningTest, ModuleFailureDegradesToUnoutlinedForm) {
  auto Prog = CorpusSynthesizer(guardProfile()).generate();
  uint64_t Before = 0;
  for (const auto &M : Prog->Modules)
    Before += M->codeSize();
  uint64_t NumMods = Prog->Modules.size();

  PipelineOptions Opts;
  Opts.OutlineRounds = 3;
  Opts.WholeProgram = false;
  Opts.Guard.Enabled = true;

  FaultScope F("pipeline.module.fail:1.0,7");
  BuildResult R = buildProgram(*Prog, Opts);

  // Every module failed before outlining started; all of them must ship
  // in their original form and the build still links and verifies.
  EXPECT_EQ(R.ModulesDegraded, NumMods);
  EXPECT_EQ(R.CodeSize, Before);
  VerifyOptions VOpts;
  VOpts.CheckSymbolResolution = true;
  EXPECT_EQ(verifyModule(*Prog, *Prog->Modules[0], VOpts), "");
  for (const MachineFunction &MF : Prog->Modules[0]->Functions)
    EXPECT_FALSE(MF.IsOutlined);
}

//===----------------------------------------------------------------------===//
// The full matrix: every site x both pipelines
//===----------------------------------------------------------------------===//

struct MatrixCase {
  const char *Spec;
  bool WholeProgram;
};

class FaultMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(FaultMatrixTest, BuildSurvivesAndFinalModuleVerifies) {
  const MatrixCase &C = GetParam();
  auto Prog = CorpusSynthesizer(guardProfile()).generate();

  PipelineOptions Opts;
  Opts.OutlineRounds = 3;
  Opts.WholeProgram = C.WholeProgram;
  Opts.Threads = 2;
  Opts.Guard.Enabled = true;
  Opts.Guard.MaxRetriesPerRound = 2;

  FaultScope F(C.Spec);
  BuildResult R = buildProgram(*Prog, Opts);

  // The injected fault must actually have fired...
  uint64_t Fired = 0;
  for (const auto &Rep : FaultInjection::instance().report())
    Fired += Rep.Fired;
  EXPECT_GE(Fired, 1u) << C.Spec;

  // ...the build must terminate normally with a fully consistent binary...
  VerifyOptions VOpts;
  VOpts.CheckSymbolResolution = true;
  EXPECT_EQ(verifyModule(*Prog, *Prog->Modules[0], VOpts), "") << C.Spec;
  EXPECT_GT(R.CodeSize, 0u);

  // ...and the damage must be visible in the degradation counters.
  EXPECT_GE(R.RoundsRolledBack + R.ModulesDegraded, 1u) << C.Spec;
  EXPECT_FALSE(R.FailureLog.empty()) << C.Spec;
}

// Whole-program cases use an @1 round filter (exact there: one engine,
// one global round slot); per-module cases use unfiltered specs because
// under the fan-out the round slot is shared across concurrent engines
// and an @round filter is only approximate (see DESIGN.md).
INSTANTIATE_TEST_SUITE_P(
    AllSites, FaultMatrixTest,
    ::testing::Values(
        MatrixCase{"outliner.rewrite.corrupt@1:1.0,7", true},
        MatrixCase{"outliner.rewrite.corrupt:1.0,7", false},
        MatrixCase{"mapper.hash.collide@1:0.5,7", true},
        MatrixCase{"mapper.hash.collide:0.5,7", false},
        MatrixCase{"pipeline.module.fail@1:1.0,7", true},
        MatrixCase{"pipeline.module.fail:1.0,7", false},
        MatrixCase{"threadpool.task.throw@1:1.0,7", true},
        MatrixCase{"threadpool.task.throw:1.0,7", false}),
    [](const ::testing::TestParamInfo<MatrixCase> &Info) {
      std::string Name = Info.param.Spec;
      Name = Name.substr(0, Name.find_first_of("@:"));
      for (char &Ch : Name)
        if (Ch == '.')
          Ch = '_';
      return Name + (Info.param.WholeProgram ? "_whole" : "_permodule");
    });

} // namespace
