//===- tests/SuffixArrayTest.cpp - Suffix array unit + differential tests -===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SuffixArray.h"

#include "support/Random.h"
#include "support/SuffixTree.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <set>
#include <utility>

using namespace mco;

namespace {

/// Naive O(n^2 log n) suffix sort for cross-checking SA-IS.
std::vector<uint32_t> naiveSuffixArray(const std::vector<unsigned> &S) {
  std::vector<uint32_t> SA(S.size());
  for (uint32_t I = 0; I < S.size(); ++I)
    SA[I] = I;
  std::sort(SA.begin(), SA.end(), [&](uint32_t A, uint32_t B) {
    return std::lexicographical_compare(S.begin() + A, S.end(),
                                        S.begin() + B, S.end());
  });
  return SA;
}

/// Naive lcp of two suffixes.
uint32_t naiveLcp(const std::vector<unsigned> &S, uint32_t A, uint32_t B) {
  uint32_t H = 0;
  while (A + H < S.size() && B + H < S.size() && S[A + H] == S[B + H])
    ++H;
  return H;
}

/// Canonical form of a repeated-substring set: both engines sort start
/// indices ascending, so (Length, StartIndices) pairs compare directly.
using RepeatSet = std::set<std::pair<unsigned, std::vector<unsigned>>>;

RepeatSet canon(const std::vector<RepeatedSubstring> &Repeats) {
  RepeatSet Out;
  for (const RepeatedSubstring &RS : Repeats) {
    auto Inserted = Out.emplace(RS.Length, RS.StartIndices);
    EXPECT_TRUE(Inserted.second) << "duplicate pattern reported";
  }
  return Out;
}

/// A random string with repeat-friendly structure: small alphabets, runs,
/// and a unique terminator (the instruction-mapper contract both engines
/// assume for identical occurrence reporting).
std::vector<unsigned> randomSubject(Rng &R, unsigned CaseIdx) {
  static const unsigned Alphabets[] = {2, 3, 4, 8, 16, 64};
  unsigned Sigma = Alphabets[CaseIdx % (sizeof(Alphabets) / sizeof(unsigned))];
  size_t Len = 8 + R.nextBounded(300);
  std::vector<unsigned> S;
  S.reserve(Len + 1);
  while (S.size() < Len) {
    unsigned Sym = static_cast<unsigned>(R.nextBounded(Sigma));
    // Occasionally emit a run or replay an earlier window to create deep
    // repeat structure (the hard case for both engines).
    unsigned Mode = static_cast<unsigned>(R.nextBounded(4));
    if (Mode == 0) {
      size_t RunLen = 1 + R.nextBounded(6);
      for (size_t K = 0; K < RunLen && S.size() < Len; ++K)
        S.push_back(Sym);
    } else if (Mode == 1 && S.size() > 4) {
      size_t From = R.nextBounded(S.size() - 2);
      size_t CopyLen = 1 + R.nextBounded(S.size() - From);
      for (size_t K = 0; K < CopyLen && S.size() < Len; ++K)
        S.push_back(S[From + K]);
    } else {
      S.push_back(Sym);
    }
  }
  // Unique terminator; vary the value (including sparse mapper-style ids)
  // to exercise alphabet rank compression.
  S.push_back(CaseIdx % 2 ? 0xFFFFFFF0u - CaseIdx : 1000000u + CaseIdx);
  return S;
}

TEST(SuffixArrayTest, EmptyString) {
  std::vector<unsigned> S;
  EXPECT_TRUE(buildSuffixArray(S).empty());
  SuffixArray A(S);
  EXPECT_TRUE(A.repeatedSubstrings().empty());
}

TEST(SuffixArrayTest, SingleElement) {
  std::vector<unsigned> S = {42};
  auto SA = buildSuffixArray(S);
  ASSERT_EQ(SA.size(), 1u);
  EXPECT_EQ(SA[0], 0u);
  SuffixArray A(S);
  EXPECT_TRUE(A.repeatedSubstrings().empty());
}

TEST(SuffixArrayTest, KnownSmallString) {
  // "banana" with a=1 b=2 n=3: suffixes sorted are
  // a(5) ana(3) anana(1) banana(0) na(4) nana(2).
  std::vector<unsigned> S = {2, 1, 3, 1, 3, 1};
  auto SA = buildSuffixArray(S);
  std::vector<uint32_t> Expected = {5, 3, 1, 0, 4, 2};
  EXPECT_EQ(SA, Expected);
  auto LCP = buildLcpArray(S, SA);
  std::vector<uint32_t> ExpectedLcp = {0, 1, 3, 0, 0, 2};
  EXPECT_EQ(LCP, ExpectedLcp);
}

TEST(SuffixArrayTest, AllEqualSymbols) {
  std::vector<unsigned> S(37, 9);
  auto SA = buildSuffixArray(S);
  EXPECT_EQ(SA, naiveSuffixArray(S));
  auto LCP = buildLcpArray(S, SA);
  for (uint32_t K = 1; K < SA.size(); ++K)
    EXPECT_EQ(LCP[K], naiveLcp(S, SA[K - 1], SA[K]));
}

TEST(SuffixArrayTest, SaIsMatchesNaiveSortOnRandomStrings) {
  Rng R(0xA11CE5ull);
  for (unsigned Case = 0; Case < 60; ++Case) {
    std::vector<unsigned> S = randomSubject(R, Case);
    auto SA = buildSuffixArray(S);
    ASSERT_EQ(SA, naiveSuffixArray(S)) << "case " << Case;
    auto LCP = buildLcpArray(S, SA);
    ASSERT_EQ(LCP.size(), SA.size());
    EXPECT_EQ(LCP.empty() ? 0u : LCP[0], 0u);
    for (uint32_t K = 1; K < SA.size(); ++K)
      ASSERT_EQ(LCP[K], naiveLcp(S, SA[K - 1], SA[K]))
          << "case " << Case << " rank " << K;
  }
}

TEST(SuffixArrayTest, SparseAlphabetRankCompression) {
  // Mapper-style ids: dense legal ids plus 0xFFFFFFF0-descending illegal
  // terminators. Bucket arrays must not scale with the value range.
  std::vector<unsigned> S = {100, 200, 100, 200, 0xFFFFFFEFu,
                             100, 200, 100, 200, 0xFFFFFFEEu,
                             7,   100, 200, 7,   0xFFFFFFEDu};
  auto SA = buildSuffixArray(S);
  EXPECT_EQ(SA, naiveSuffixArray(S));
  SuffixArray A(S);
  SuffixTree T(S);
  EXPECT_EQ(canon(A.repeatedSubstrings(2)), canon(T.repeatedSubstrings(2)));
}

TEST(SuffixArrayTest, DifferentialTreeVsArrayDirectChildren) {
  // The headline equivalence: on ~200 seeded random strings the two
  // discovery engines report identical (length, starts) pattern sets in
  // the default direct-leaf-children mode.
  Rng R(0xD1FFull);
  for (unsigned Case = 0; Case < 200; ++Case) {
    std::vector<unsigned> S = randomSubject(R, Case);
    unsigned MinLen = 2 + static_cast<unsigned>(R.nextBounded(4));
    SuffixTree T(S, /*CollectLeafDescendants=*/false);
    SuffixArray A(S, /*CollectLeafDescendants=*/false);
    ASSERT_EQ(canon(T.repeatedSubstrings(MinLen)),
              canon(A.repeatedSubstrings(MinLen)))
        << "case " << Case << " minlen " << MinLen;
  }
}

TEST(SuffixArrayTest, DifferentialTreeVsArrayLeafDescendants) {
  // Leaf-descendant mode, including MaxLength values small enough to
  // trigger the direct-children fallback on some intervals.
  Rng R(0x1EAFull);
  for (unsigned Case = 0; Case < 120; ++Case) {
    std::vector<unsigned> S = randomSubject(R, Case);
    unsigned MinLen = 2 + static_cast<unsigned>(R.nextBounded(3));
    unsigned MaxLen = Case % 3 == 0 ? 3 + static_cast<unsigned>(R.nextBounded(5))
                                    : 4096;
    SuffixTree T(S, /*CollectLeafDescendants=*/true);
    SuffixArray A(S, /*CollectLeafDescendants=*/true);
    ASSERT_EQ(canon(T.repeatedSubstrings(MinLen, 2, MaxLen)),
              canon(A.repeatedSubstrings(MinLen, 2, MaxLen)))
        << "case " << Case << " minlen " << MinLen << " maxlen " << MaxLen;
  }
}

TEST(SuffixArrayTest, StreamingMatchesMaterialized) {
  Rng R(0x57ull);
  std::vector<unsigned> S = randomSubject(R, 3);
  SuffixArray A(S);
  std::vector<RepeatedSubstring> Streamed;
  A.forEachRepeatedSubstring(
      2, 2, 4096,
      [&](unsigned Length, const unsigned *Starts, size_t NumStarts) {
        RepeatedSubstring RS;
        RS.Length = Length;
        RS.StartIndices.assign(Starts, Starts + NumStarts);
        Streamed.push_back(std::move(RS));
      });
  auto Materialized = A.repeatedSubstrings(2);
  ASSERT_EQ(Streamed.size(), Materialized.size());
  for (size_t I = 0; I < Streamed.size(); ++I) {
    EXPECT_EQ(Streamed[I].Length, Materialized[I].Length);
    EXPECT_EQ(Streamed[I].StartIndices, Materialized[I].StartIndices);
  }
}

TEST(SuffixArrayTest, MemoryBytesIsPopulated) {
  Rng R(0x99ull);
  std::vector<unsigned> S = randomSubject(R, 5);
  SuffixArray A(S);
  // At minimum the retained SA + LCP arrays.
  EXPECT_GE(A.memoryBytes(), 2 * S.size() * sizeof(uint32_t));
}

} // namespace
