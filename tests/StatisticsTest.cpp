//===- tests/StatisticsTest.cpp - Statistics unit tests -------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace mco;

namespace {

TEST(StatisticsTest, PerfectLine) {
  std::vector<double> X = {0, 1, 2, 3, 4};
  std::vector<double> Y = {1, 3, 5, 7, 9};
  LinearFit F = fitLinear(X, Y);
  EXPECT_NEAR(F.Slope, 2.0, 1e-12);
  EXPECT_NEAR(F.Intercept, 1.0, 1e-12);
  EXPECT_NEAR(F.R2, 1.0, 1e-12);
}

TEST(StatisticsTest, NoisyLineHasHighR2) {
  std::vector<double> X, Y;
  for (int I = 0; I < 100; ++I) {
    X.push_back(I);
    Y.push_back(2.7 * I + 40 + ((I % 2) ? 0.5 : -0.5));
  }
  LinearFit F = fitLinear(X, Y);
  EXPECT_NEAR(F.Slope, 2.7, 0.01);
  EXPECT_GT(F.R2, 0.99);
}

TEST(StatisticsTest, FlatLine) {
  std::vector<double> X = {1, 2, 3};
  std::vector<double> Y = {5, 5, 5};
  LinearFit F = fitLinear(X, Y);
  EXPECT_NEAR(F.Slope, 0.0, 1e-12);
  EXPECT_NEAR(F.Intercept, 5.0, 1e-12);
  // SSTot == 0: by convention a perfect fit.
  EXPECT_NEAR(F.R2, 1.0, 1e-12);
}

TEST(StatisticsTest, PowerLawExact) {
  // y = 3 x^-1.2
  std::vector<double> X, Y;
  for (int I = 1; I <= 50; ++I) {
    X.push_back(I);
    Y.push_back(3.0 * std::pow(I, -1.2));
  }
  PowerLawFit F = fitPowerLaw(X, Y);
  EXPECT_NEAR(F.A, 3.0, 1e-9);
  EXPECT_NEAR(F.B, -1.2, 1e-9);
  EXPECT_NEAR(F.R2, 1.0, 1e-9);
  EXPECT_NEAR(F.eval(2.0), 3.0 * std::pow(2.0, -1.2), 1e-9);
}

TEST(StatisticsTest, PercentileBasics) {
  std::vector<double> V = {4, 1, 3, 2, 5};
  EXPECT_NEAR(percentile(V, 0), 1.0, 1e-12);
  EXPECT_NEAR(percentile(V, 100), 5.0, 1e-12);
  EXPECT_NEAR(percentile(V, 50), 3.0, 1e-12);
  EXPECT_NEAR(percentile(V, 25), 2.0, 1e-12);
}

TEST(StatisticsTest, PercentileInterpolates) {
  std::vector<double> V = {0, 10};
  EXPECT_NEAR(percentile(V, 50), 5.0, 1e-12);
  EXPECT_NEAR(percentile(V, 75), 7.5, 1e-12);
}

TEST(StatisticsTest, PercentileSingleton) {
  std::vector<double> V = {42};
  EXPECT_NEAR(percentile(V, 0), 42, 1e-12);
  EXPECT_NEAR(percentile(V, 50), 42, 1e-12);
  EXPECT_NEAR(percentile(V, 100), 42, 1e-12);
}

TEST(StatisticsTest, GeometricMean) {
  std::vector<double> V = {1, 100};
  EXPECT_NEAR(geometricMean(V), 10.0, 1e-9);
  std::vector<double> W = {2, 2, 2};
  EXPECT_NEAR(geometricMean(W), 2.0, 1e-12);
}

TEST(StatisticsTest, Mean) {
  std::vector<double> V = {1, 2, 3, 4};
  EXPECT_NEAR(mean(V), 2.5, 1e-12);
}

TEST(StatisticsTest, Histogram) {
  IntHistogram H;
  EXPECT_TRUE(H.empty());
  H.add(2);
  H.add(2);
  H.add(5, 3);
  EXPECT_EQ(H.count(2), 2u);
  EXPECT_EQ(H.count(5), 3u);
  EXPECT_EQ(H.count(3), 0u);
  EXPECT_EQ(H.totalCount(), 5u);
  EXPECT_EQ(H.maxValue(), 5u);
  EXPECT_FALSE(H.empty());
}

} // namespace
