//===- tests/SwiftBenchTest.cpp - Table IV benchmark tests ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Parameterized semantic tests: every one of the 26 benchmarks must
/// verify, compile, produce its golden checksum, and — crucially — keep
/// producing it at every repeat count of machine outlining. This is the
/// repository's strongest evidence that the outliner transformation is
/// semantics-preserving on organically compiled code.
///
//===----------------------------------------------------------------------===//

#include "swiftbench/SwiftBench.h"

#include "codegen/Codegen.h"
#include "linker/Linker.h"
#include "outliner/MachineOutliner.h"
#include "sim/Interpreter.h"
#include "gtest/gtest.h"

#include <set>

using namespace mco;

namespace {

class SwiftBenchTest : public ::testing::TestWithParam<SwiftBenchmark> {};

TEST_P(SwiftBenchTest, IRVerifies) {
  ir::IRModule M = GetParam().Build();
  EXPECT_EQ(ir::verify(M), "");
}

TEST_P(SwiftBenchTest, GoldenChecksumPinned) {
  EXPECT_NE(GetParam().Expected, 0) << "golden value not pinned";
}

TEST_P(SwiftBenchTest, ProducesGoldenChecksum) {
  const SwiftBenchmark &SB = GetParam();
  ir::IRModule IRM = SB.Build();
  Program P;
  Module &M = P.addModule(IRM.Name);
  lowerModule(P, M, IRM);
  BinaryImage Img(P);
  Interpreter I(Img, P);
  EXPECT_EQ(I.call("bench_main"), SB.Expected);
}

TEST_P(SwiftBenchTest, ChecksumStableAcrossOutlineRounds) {
  const SwiftBenchmark &SB = GetParam();
  for (unsigned Rounds : {1u, 3u, 5u}) {
    ir::IRModule IRM = SB.Build();
    Program P;
    Module &M = P.addModule(IRM.Name);
    lowerModule(P, M, IRM);
    runRepeatedOutliner(P, M, Rounds);
    BinaryImage Img(P);
    Interpreter I(Img, P);
    EXPECT_EQ(I.call("bench_main"), SB.Expected)
        << SB.Name << " at " << Rounds << " rounds";
  }
}

TEST_P(SwiftBenchTest, OutliningShrinksOrKeepsCode) {
  const SwiftBenchmark &SB = GetParam();
  ir::IRModule IRM = SB.Build();
  Program P;
  Module &M = P.addModule(IRM.Name);
  lowerModule(P, M, IRM);
  uint64_t Before = M.codeSize();
  runRepeatedOutliner(P, M, 5);
  EXPECT_LE(M.codeSize(), Before);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SwiftBenchTest, ::testing::ValuesIn(allSwiftBenchmarks()),
    [](const ::testing::TestParamInfo<SwiftBenchmark> &Info) {
      return Info.param.Name;
    });

TEST(SwiftBenchRegistryTest, HasAll26) {
  EXPECT_EQ(allSwiftBenchmarks().size(), 26u);
}

TEST(SwiftBenchRegistryTest, NamesAreUnique) {
  const auto &All = allSwiftBenchmarks();
  std::set<std::string> Names;
  for (const SwiftBenchmark &SB : All)
    EXPECT_TRUE(Names.insert(SB.Name).second) << SB.Name;
}

TEST(PathologicalLoopTest, RunsAndIsStableUnderOutlining) {
  auto Run = [&](unsigned Rounds) {
    Program P;
    Module &M = P.addModule("pathological");
    buildPathologicalProgram(P, M);
    if (Rounds)
      runRepeatedOutliner(P, M, Rounds);
    BinaryImage Img(P);
    Interpreter I(Img, P);
    return I.call("bench_main");
  };
  int64_t Base = Run(0);
  EXPECT_EQ(Run(5), Base);
}

TEST(PathologicalLoopTest, HotBodyActuallyOutlined) {
  Program P;
  Module &M = P.addModule("pathological");
  buildPathologicalProgram(P, M);
  uint64_t Before = M.codeSize();
  RepeatedOutlineStats S = runRepeatedOutliner(P, M, 5);
  EXPECT_GE(S.totalFunctionsCreated(), 1u);
  EXPECT_LT(M.codeSize(), Before);
  // The loop body call must be hot: most dynamic instructions land in
  // outlined code.
  BinaryImage Img(P);
  Interpreter I(Img, P);
  I.call("bench_main");
  EXPECT_GT(I.counters().OutlinedInstrs, I.counters().Instrs / 2);
}

} // namespace
