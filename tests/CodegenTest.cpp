//===- tests/CodegenTest.cpp - Lowering + execution tests -----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "ir/IRBuilder.h"
#include "linker/Linker.h"
#include "sim/Interpreter.h"
#include "gtest/gtest.h"

using namespace mco;
using namespace mco::ir;

namespace {

/// Lowers \p IRM and runs \p Fn with \p Args end to end.
int64_t compileAndRun(const IRModule &IRM, const std::string &Fn,
                      const std::vector<int64_t> &Args) {
  EXPECT_EQ(verify(IRM), "");
  Program P;
  Module &M = P.addModule(IRM.Name.empty() ? "m" : IRM.Name);
  lowerModule(P, M, IRM);
  BinaryImage Image(P);
  Interpreter I(Image, P);
  return I.call(Fn, Args);
}

TEST(CodegenTest, ConstantReturn) {
  IRModule M;
  IRBuilder B(M, "f", 0);
  B.ret(B.constInt(42));
  B.finish();
  EXPECT_EQ(compileAndRun(M, "f", {}), 42);
}

TEST(CodegenTest, Arithmetic) {
  IRModule M;
  IRBuilder B(M, "f", 2);
  Value A = B.param(0), Bv = B.param(1);
  Value Sum = B.add(A, Bv);
  Value Diff = B.sub(A, Bv);
  Value Prod = B.mul(Sum, Diff); // (a+b)*(a-b)
  B.ret(Prod);
  B.finish();
  EXPECT_EQ(compileAndRun(M, "f", {7, 3}), 40);
  EXPECT_EQ(compileAndRun(M, "f", {-5, 2}), 21);
}

TEST(CodegenTest, DivisionAndRemainder) {
  IRModule M;
  IRBuilder B(M, "f", 2);
  Value Q = B.sdiv(B.param(0), B.param(1));
  Value R = B.srem(B.param(0), B.param(1));
  Value Hundred = B.constInt(100);
  B.ret(B.add(B.mul(Q, Hundred), R));
  B.finish();
  EXPECT_EQ(compileAndRun(M, "f", {17, 5}), 302);   // 3*100 + 2
  EXPECT_EQ(compileAndRun(M, "f", {-17, 5}), -302); // -3*100 + -2
}

TEST(CodegenTest, BitwiseAndShifts) {
  IRModule M;
  IRBuilder B(M, "f", 2);
  Value A = B.param(0), Bv = B.param(1);
  Value X = B.xor_(A, Bv);
  Value Y = B.shl(X, B.constInt(2));
  Value Z = B.ashr(Y, B.constInt(1));
  B.ret(B.or_(Z, B.and_(A, Bv)));
  B.finish();
  int64_t A0 = 0b1100, B0 = 0b1010;
  int64_t Expect = (((A0 ^ B0) << 2) >> 1) | (A0 & B0);
  EXPECT_EQ(compileAndRun(M, "f", {A0, B0}), Expect);
}

TEST(CodegenTest, Comparisons) {
  for (auto [P, A, B0, Want] :
       std::vector<std::tuple<Pred, int64_t, int64_t, int64_t>>{
           {Pred::EQ, 3, 3, 1},   {Pred::EQ, 3, 4, 0},
           {Pred::NE, 3, 4, 1},   {Pred::LT, -1, 0, 1},
           {Pred::LT, 0, -1, 0},  {Pred::LE, 2, 2, 1},
           {Pred::GT, 5, 2, 1},   {Pred::GE, 2, 5, 0},
           {Pred::ULT, -1, 0, 0}, // unsigned: 2^64-1 > 0
           {Pred::UGE, -1, 0, 1}}) {
    IRModule M;
    IRBuilder B(M, "f", 2);
    B.ret(B.icmp(P, B.param(0), B.param(1)));
    B.finish();
    EXPECT_EQ(compileAndRun(M, "f", {A, B0}), Want)
        << "pred " << int(P) << " " << A << " vs " << B0;
  }
}

TEST(CodegenTest, SelectWorks) {
  IRModule M;
  IRBuilder B(M, "max", 2);
  Value C = B.icmp(Pred::GT, B.param(0), B.param(1));
  B.ret(B.select(C, B.param(0), B.param(1)));
  B.finish();
  EXPECT_EQ(compileAndRun(M, "max", {3, 9}), 9);
  EXPECT_EQ(compileAndRun(M, "max", {9, 3}), 9);
}

TEST(CodegenTest, LoopSum) {
  // sum 1..n via a loop.
  IRModule M;
  IRBuilder B(M, "sum", 1);
  Value Acc = B.alloca_(8);
  Value I = B.alloca_(8);
  B.store(B.constInt(0), Acc);
  B.store(B.constInt(1), I);
  uint32_t Header = B.newBlock();
  uint32_t Body = B.newBlock();
  uint32_t Exit = B.newBlock();
  B.setBlock(0);
  B.br(Header);
  B.setBlock(Header);
  Value IV = B.load(I);
  Value Cond = B.icmp(Pred::LE, IV, B.param(0));
  B.condBr(Cond, Body, Exit);
  B.setBlock(Body);
  B.store(B.add(B.load(Acc), B.load(I)), Acc);
  B.store(B.add(B.load(I), B.constInt(1)), I);
  B.br(Header);
  B.setBlock(Exit);
  B.ret(B.load(Acc));
  B.finish();
  EXPECT_EQ(compileAndRun(M, "sum", {10}), 55);
  EXPECT_EQ(compileAndRun(M, "sum", {0}), 0);
  EXPECT_EQ(compileAndRun(M, "sum", {1000}), 500500);
}

TEST(CodegenTest, AllocaArray) {
  // Store 3 values into an array and sum them back.
  IRModule M;
  IRBuilder B(M, "f", 0);
  Value Arr = B.alloca_(24);
  for (int I = 0; I < 3; ++I)
    B.storeIdx(B.constInt((I + 1) * 10), Arr, B.constInt(I));
  Value S01 = B.add(B.loadIdx(Arr, B.constInt(0)),
                    B.loadIdx(Arr, B.constInt(1)));
  B.ret(B.add(S01, B.loadIdx(Arr, B.constInt(2))));
  B.finish();
  EXPECT_EQ(compileAndRun(M, "f", {}), 60);
}

TEST(CodegenTest, GlobalData) {
  IRModule M;
  M.Globals.push_back(IRGlobal::fromWords("table", {5, 17, 29}));
  IRBuilder B(M, "f", 1);
  Value T = B.globalAddr("table");
  B.ret(B.loadIdx(T, B.param(0)));
  B.finish();
  EXPECT_EQ(compileAndRun(M, "f", {0}), 5);
  EXPECT_EQ(compileAndRun(M, "f", {2}), 29);
}

TEST(CodegenTest, CallsAcrossFunctions) {
  IRModule M;
  {
    IRBuilder B(M, "square", 1);
    B.ret(B.mul(B.param(0), B.param(0)));
    B.finish();
  }
  {
    IRBuilder B(M, "sumOfSquares", 2);
    Value A = B.call("square", {B.param(0)});
    Value Bv = B.call("square", {B.param(1)});
    B.ret(B.add(A, Bv));
    B.finish();
  }
  EXPECT_EQ(compileAndRun(M, "sumOfSquares", {3, 4}), 25);
}

TEST(CodegenTest, RecursionFactorial) {
  IRModule M;
  IRBuilder B(M, "fact", 1);
  Value IsBase = B.icmp(Pred::LE, B.param(0), B.constInt(1));
  uint32_t Base = B.newBlock();
  uint32_t Rec = B.newBlock();
  B.setBlock(0);
  B.condBr(IsBase, Base, Rec);
  B.setBlock(Base);
  B.ret(B.constInt(1));
  B.setBlock(Rec);
  Value N1 = B.sub(B.param(0), B.constInt(1));
  Value Sub = B.call("fact", {N1});
  B.ret(B.mul(B.param(0), Sub));
  B.finish();
  EXPECT_EQ(compileAndRun(M, "fact", {10}), 3628800);
}

TEST(CodegenTest, RuntimeBuiltinsRefcounting) {
  // Allocate an object, retain twice, release thrice; the heap must be
  // empty afterwards. Returns the payload written at offset 8.
  IRModule M;
  IRBuilder B(M, "f", 0);
  Value Obj = B.call("swift_allocObject",
                     {B.constInt(0), B.constInt(32), B.constInt(7)});
  B.store(B.constInt(1234), B.add(Obj, B.constInt(8)));
  B.call("swift_retain", {Obj});
  B.call("swift_retain", {Obj});
  Value V = B.load(B.add(Obj, B.constInt(8)));
  B.call("swift_release", {Obj});
  B.call("swift_release", {Obj});
  B.call("swift_release", {Obj});
  B.ret(V);
  B.finish();

  Program P;
  Module &Mm = P.addModule("m");
  lowerModule(P, Mm, M);
  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f"), 1234);
  EXPECT_EQ(I.memory().liveHeapBytes(), 0u);
}

TEST(CodegenTest, LeafFunctionsSkipLRSave) {
  IRModule M;
  IRBuilder B(M, "leaf", 1);
  B.ret(B.add(B.param(0), B.constInt(1)));
  B.finish();
  Program P;
  MachineFunction MF = lowerFunction(P, M.Functions[0]);
  for (const MachineBasicBlock &MBB : MF.Blocks)
    for (const MachineInstr &MI : MBB.Instrs)
      if (MI.opcode() == Opcode::STRui)
        EXPECT_NE(MI.operand(0).getReg(), LR)
            << "leaf function should not save LR";
}

TEST(CodegenTest, DeepCallChainPreservesLR) {
  // f -> g -> h, each adding 1; exercises the save/restore of LR.
  IRModule M;
  {
    IRBuilder B(M, "h", 1);
    B.ret(B.add(B.param(0), B.constInt(1)));
    B.finish();
  }
  {
    IRBuilder B(M, "g", 1);
    B.ret(B.add(B.call("h", {B.param(0)}), B.constInt(1)));
    B.finish();
  }
  {
    IRBuilder B(M, "f", 1);
    B.ret(B.add(B.call("g", {B.param(0)}), B.constInt(1)));
    B.finish();
  }
  EXPECT_EQ(compileAndRun(M, "f", {0}), 3);
}

} // namespace
