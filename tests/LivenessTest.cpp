//===- tests/LivenessTest.cpp - Liveness unit tests -----------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/Liveness.h"

#include "mir/MIRBuilder.h"
#include "mir/Program.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

TEST(LivenessTest, StraightLineUseKillsLiveness) {
  // x1 = 5; x0 = x1 + 1; ret
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X1, 5);
  B.addri(Reg::X0, Reg::X1, 1);
  B.ret();

  Liveness LV(MF);
  // Before the mov, x1 is dead (it's about to be defined).
  EXPECT_FALSE(maskContains(LV.liveBefore(0, 0), Reg::X1));
  // Between mov and add, x1 is live.
  EXPECT_TRUE(maskContains(LV.liveAfter(0, 0), Reg::X1));
  EXPECT_TRUE(maskContains(LV.liveBefore(0, 1), Reg::X1));
  // After the add, x1 is dead, x0 is live (RET uses it).
  EXPECT_FALSE(maskContains(LV.liveAfter(0, 1), Reg::X1));
  EXPECT_TRUE(maskContains(LV.liveAfter(0, 1), Reg::X0));
}

TEST(LivenessTest, LRLiveBeforeRet) {
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X0, 0);
  B.ret();
  Liveness LV(MF);
  EXPECT_TRUE(maskContains(LV.liveBefore(0, 1), LR));
  EXPECT_TRUE(maskContains(LV.liveBefore(0, 0), LR));
}

TEST(LivenessTest, CallKillsLR) {
  // bl f; mov x0, 0; ret — before the BL, LR is *not* live (BL redefines
  // it); the RET's LR comes from the BL.
  Program P;
  uint32_t F = P.internSymbol("f");
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.bl(F);
  B.movri(Reg::X0, 0);
  B.ret();
  Liveness LV(MF);
  EXPECT_FALSE(maskContains(LV.liveBefore(0, 0), LR));
  EXPECT_TRUE(maskContains(LV.liveAfter(0, 0), LR));
}

TEST(LivenessTest, EpilogueRestoreMakesLRDeadInBody) {
  // Typical frame: the body runs with LR's entry value saved; an epilogue
  // LDRpost restores it right before RET. LR must be dead in the body.
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.strpre(LR, Reg::SP, -16); // Prologue save (instr 0).
  B.movri(Reg::X0, 7);        // Body (instr 1).
  B.ldrpost(LR, Reg::SP, 16); // Epilogue restore (instr 2).
  B.ret();                    // instr 3.
  Liveness LV(MF);
  EXPECT_FALSE(maskContains(LV.liveAfter(0, 1), LR));
  EXPECT_TRUE(maskContains(LV.liveAfter(0, 2), LR));
  // At function entry LR is live (the prologue reads it to save it).
  EXPECT_TRUE(maskContains(LV.liveBefore(0, 0), LR));
}

TEST(LivenessTest, BranchJoinsLiveness) {
  // Block 0: cmp x0, 0; b.eq 2  (falls through to 1)
  // Block 1: mov x1, 1; (falls through to 2)
  // Block 2: add x0, x1, 1; ret
  // x1 must be live-out of block 0 (used in block 2 via the branch path,
  // where it arrives undefined — conservatively live).
  MachineFunction MF;
  MIRBuilder B0(MF.addBlock());
  B0.cmpri(Reg::X0, 0);
  B0.bcc(Cond::EQ, 2);
  MIRBuilder B1(MF.addBlock());
  B1.movri(Reg::X1, 1);
  MIRBuilder B2(MF.addBlock());
  B2.addri(Reg::X0, Reg::X1, 1);
  B2.ret();

  Liveness LV(MF);
  EXPECT_TRUE(maskContains(LV.blockLiveOut(0), Reg::X1));
  EXPECT_FALSE(maskContains(LV.blockLiveOut(1), Reg::NZCV));
  EXPECT_TRUE(maskContains(LV.blockLiveOut(1), Reg::X1));
}

TEST(LivenessTest, FlagsLiveBetweenCmpAndBcc) {
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.cmpri(Reg::X0, 3);
  B.movri(Reg::X2, 9);
  B.bcc(Cond::LT, 1);
  MF.addBlock();
  MIRBuilder B1(MF.Blocks[1]);
  B1.ret();
  Liveness LV(MF);
  EXPECT_TRUE(maskContains(LV.liveAfter(0, 0), Reg::NZCV));
  EXPECT_TRUE(maskContains(LV.liveAfter(0, 1), Reg::NZCV));
  EXPECT_FALSE(maskContains(LV.liveAfter(0, 2), Reg::NZCV));
}

TEST(LivenessTest, LoopLivenessConverges) {
  // Block 0: mov x1, 10
  // Block 1: sub x1, x1, 1; cmp x1, 0; b.ne 1
  // Block 2: ret
  MachineFunction MF;
  MIRBuilder B0(MF.addBlock());
  B0.movri(Reg::X1, 10);
  MIRBuilder B1(MF.addBlock());
  B1.subri(Reg::X1, Reg::X1, 1);
  B1.cmpri(Reg::X1, 0);
  B1.bcc(Cond::NE, 1);
  MIRBuilder B2(MF.addBlock());
  B2.ret();

  Liveness LV(MF);
  // x1 is live around the loop.
  EXPECT_TRUE(maskContains(LV.blockLiveOut(0), Reg::X1));
  EXPECT_TRUE(maskContains(LV.blockLiveOut(1), Reg::X1));
}

TEST(LivenessTest, RecomputeAfterEdit) {
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X5, 1);
  B.ret();
  Liveness LV(MF);
  EXPECT_FALSE(maskContains(LV.liveAfter(0, 0), Reg::X5));

  // Insert a use of x5 before the ret and recompute.
  MF.Blocks[0].Instrs.insert(
      MF.Blocks[0].Instrs.begin() + 1,
      MachineInstr(Opcode::MOVrr, MachineOperand::reg(Reg::X0),
                   MachineOperand::reg(Reg::X5)));
  LV.recompute(MF);
  EXPECT_TRUE(maskContains(LV.liveAfter(0, 0), Reg::X5));
}

} // namespace
