//===- tests/MachineInstrTest.cpp - MIR unit tests ------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/MachineInstr.h"

#include "mir/MIRBuilder.h"
#include "mir/MIRPrinter.h"
#include "mir/Program.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

using MO = MachineOperand;

TEST(MachineInstrTest, EqualityExact) {
  MachineInstr A(Opcode::MOVrr, MO::reg(Reg::X0), MO::reg(Reg::X20));
  MachineInstr B(Opcode::MOVrr, MO::reg(Reg::X0), MO::reg(Reg::X20));
  MachineInstr C(Opcode::MOVrr, MO::reg(Reg::X0), MO::reg(Reg::X21));
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
}

TEST(MachineInstrTest, HashConsistentWithEquality) {
  MachineInstr A(Opcode::ADDri, MO::reg(Reg::X1), MO::reg(Reg::X2),
                 MO::imm(16));
  MachineInstr B(Opcode::ADDri, MO::reg(Reg::X1), MO::reg(Reg::X2),
                 MO::imm(16));
  MachineInstr C(Opcode::ADDri, MO::reg(Reg::X1), MO::reg(Reg::X2),
                 MO::imm(24));
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_NE(A.hash(), C.hash()); // Overwhelmingly likely for FNV.
}

TEST(MachineInstrTest, DefsUsesArithmetic) {
  MachineInstr MI(Opcode::ADDrr, MO::reg(Reg::X0), MO::reg(Reg::X1),
                  MO::reg(Reg::X2));
  EXPECT_EQ(MI.defs(), regBit(Reg::X0));
  EXPECT_EQ(MI.uses(), regBit(Reg::X1) | regBit(Reg::X2));
}

TEST(MachineInstrTest, XZRIsNeverLive) {
  MachineInstr MI(Opcode::MOVrr, MO::reg(Reg::X0), MO::reg(Reg::XZR));
  EXPECT_EQ(MI.uses(), RegMask(0));
}

TEST(MachineInstrTest, CmpDefinesFlags) {
  MachineInstr MI(Opcode::CMPri, MO::reg(Reg::X3), MO::imm(0));
  EXPECT_EQ(MI.defs(), regBit(Reg::NZCV));
  EXPECT_EQ(MI.uses(), regBit(Reg::X3));
}

TEST(MachineInstrTest, CallClobbersAndUses) {
  MachineInstr MI(Opcode::BL, MO::sym(0));
  EXPECT_TRUE(maskContains(MI.defs(), LR));
  EXPECT_TRUE(maskContains(MI.defs(), Reg::X0));
  EXPECT_TRUE(maskContains(MI.defs(), Reg::X17));
  EXPECT_FALSE(maskContains(MI.defs(), Reg::X19)); // Callee-saved.
  EXPECT_TRUE(maskContains(MI.uses(), Reg::X7));
  EXPECT_FALSE(maskContains(MI.uses(), Reg::X8));
}

TEST(MachineInstrTest, RetUsesLRAndCalleeSaved) {
  MachineInstr MI(Opcode::RET);
  EXPECT_TRUE(maskContains(MI.uses(), LR));
  EXPECT_TRUE(maskContains(MI.uses(), Reg::X19));
  EXPECT_TRUE(maskContains(MI.uses(), Reg::X0));
}

TEST(MachineInstrTest, StorePairUsesAll) {
  MachineInstr MI(Opcode::STPui, MO::reg(Reg::X19), MO::reg(Reg::X20),
                  MO::reg(Reg::SP), MO::imm(16));
  EXPECT_EQ(MI.defs(), RegMask(0));
  EXPECT_TRUE(maskContains(MI.uses(), Reg::X19));
  EXPECT_TRUE(maskContains(MI.uses(), Reg::X20));
  EXPECT_TRUE(maskContains(MI.uses(), Reg::SP));
  EXPECT_TRUE(MI.usesOrModifiesSP());
}

TEST(MachineInstrTest, PreIndexWritesBase) {
  MachineInstr MI(Opcode::STRpre, MO::reg(LR), MO::reg(Reg::SP),
                  MO::imm(-16));
  EXPECT_TRUE(maskContains(MI.defs(), Reg::SP));
  EXPECT_TRUE(maskContains(MI.uses(), LR));
  EXPECT_TRUE(MI.usesOrModifiesSP());
}

TEST(MachineInstrTest, NonSPInstrDoesNotTouchSP) {
  MachineInstr MI(Opcode::ADDrr, MO::reg(Reg::X0), MO::reg(Reg::X1),
                  MO::reg(Reg::X2));
  EXPECT_FALSE(MI.usesOrModifiesSP());
}

TEST(MachineInstrTest, BranchPredicates) {
  EXPECT_TRUE(MachineInstr(Opcode::RET).isBranch());
  EXPECT_TRUE(MachineInstr(Opcode::RET).isUnconditionalTransfer());
  EXPECT_TRUE(MachineInstr(Opcode::B, MO::block(0)).isBranch());
  EXPECT_FALSE(MachineInstr(Opcode::BL, MO::sym(0)).isBranch());
  EXPECT_TRUE(MachineInstr(Opcode::BL, MO::sym(0)).isCall());
  MachineInstr Bcc(Opcode::Bcc, MO::cond(Cond::EQ), MO::block(1));
  EXPECT_TRUE(Bcc.isBranch());
  EXPECT_FALSE(Bcc.isUnconditionalTransfer());
}

TEST(MachineInstrTest, InvertCondRoundTrips) {
  for (Cond C : {Cond::EQ, Cond::NE, Cond::LT, Cond::LE, Cond::GT, Cond::GE,
                 Cond::LO, Cond::HS})
    EXPECT_EQ(invertCond(invertCond(C)), C);
}

TEST(MachineFunctionTest, SuccessorsFallthroughAndBranch) {
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.cmpri(Reg::X0, 0);
  B.bcc(Cond::EQ, 2);
  MF.addBlock(); // Block 1: fallthrough target.
  MIRBuilder B1(MF.Blocks[1]);
  B1.ret();
  MF.addBlock(); // Block 2.
  MIRBuilder B2(MF.Blocks[2]);
  B2.ret();

  auto S0 = MF.successors(0);
  ASSERT_EQ(S0.size(), 2u);
  EXPECT_EQ(S0[0], 2u); // Branch target.
  EXPECT_EQ(S0[1], 1u); // Fallthrough.
  EXPECT_TRUE(MF.successors(1).empty());
  EXPECT_TRUE(MF.successors(2).empty());
}

TEST(MachineFunctionTest, UnconditionalBranchBlocksFallthrough) {
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.b(2);
  MF.addBlock();
  MF.addBlock();
  auto S0 = MF.successors(0);
  ASSERT_EQ(S0.size(), 1u);
  EXPECT_EQ(S0[0], 2u);
}

TEST(MachineFunctionTest, CodeSizeCounts) {
  MachineFunction MF;
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X0, 1);
  B.movri(Reg::X1, 2);
  B.ret();
  EXPECT_EQ(MF.numInstrs(), 3u);
  EXPECT_EQ(MF.codeSize(), 12u);
}

TEST(MIRPrinterTest, RendersInstr) {
  Program P;
  uint32_t S = P.internSymbol("swift_release");
  MachineInstr MI(Opcode::BL, MO::sym(S));
  EXPECT_EQ(printInstr(MI, P), "bl     swift_release");
  MachineInstr Mov(Opcode::MOVrr, MO::reg(Reg::X0), MO::reg(Reg::X20));
  EXPECT_EQ(printInstr(Mov, P), "orr    x0, x20");
}

TEST(ProgramTest, SymbolInterning) {
  Program P;
  uint32_t A = P.internSymbol("foo");
  uint32_t B = P.internSymbol("bar");
  uint32_t A2 = P.internSymbol("foo");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(P.symbolName(A), "foo");
  EXPECT_EQ(P.lookupSymbol("bar"), B);
  EXPECT_EQ(P.lookupSymbol("baz"), UINT32_MAX);
}

TEST(ProgramTest, SizesAggregate) {
  Program P;
  Module &M1 = P.addModule("m1");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X0, 0);
  B.ret();
  M1.Functions.push_back(MF);
  GlobalData G;
  G.Name = P.internSymbol("g");
  G.Bytes.assign(64, 0);
  M1.Globals.push_back(G);

  EXPECT_EQ(P.numInstrs(), 2u);
  EXPECT_EQ(P.codeSize(), 8u);
  EXPECT_EQ(P.dataSize(), 64u);
}

} // namespace
