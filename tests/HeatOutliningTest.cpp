//===- tests/HeatOutliningTest.cpp - Profile-guided outlining tests -------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Profile-guided hot/cold outlining and per-function size remarks:
///
///   - mco-heat-v1 round-trips (writer -> parser) and the validator
///     rejects damage (order, caps, schema);
///   - classifyHeat's count-based percentile semantics, including the
///     never-executed -> Cold rule and both endpoints;
///   - the hot-function property: a heat-guided build never shrinks a
///     hot function (its candidates are refused, and every refusal is
///     accounted for in the suppressed remarks);
///   - threshold 0 and a missing/corrupt profile both leave the artifact
///     byte-identical to a profile-free build (the former silently, the
///     latter with a FailureLog entry);
///   - differential execution: heat-guided outlining never changes what
///     the program computes;
///   - determinism: remarks are byte-identical at any thread count and
///     across discovery engines, and the fleet's captured heat profile is
///     byte-identical at any thread count.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "pipeline/BuildPipeline.h"
#include "sim/HeatProfile.h"
#include "sim/Interpreter.h"
#include "synth/CorpusSynthesizer.h"
#include "telemetry/FleetSim.h"
#include "gtest/gtest.h"

#include <memory>
#include <string>
#include <vector>

using namespace mco;

namespace {

AppProfile tinyProfile() {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 8;
  return P;
}

FleetOptions tinyFleet() {
  FleetOptions O;
  O.NumDevices = 4;
  const AppProfile AP = AppProfile::uberRider();
  for (unsigned S = 0; S < AP.NumSpans; ++S)
    O.Entries.push_back(CorpusSynthesizer::spanFunctionName(S));
  return O;
}

/// Captures a heat profile from a fleet run of the unoutlined corpus —
/// the same measure-then-build loop production uses.
HeatProfile capturedHeat(unsigned Threads = 1) {
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  FleetOptions O = tinyFleet();
  O.Threads = Threads;
  HeatProfile Heat;
  runFleet(*Prog, O, nullptr, nullptr, &Heat);
  return Heat;
}

PipelineOptions heatOpts(const HeatProfile *Heat, unsigned Pct,
                         unsigned Threads = 1) {
  PipelineOptions Opts;
  Opts.OutlineRounds = 2;
  Opts.WholeProgram = true;
  Opts.Threads = Threads;
  Opts.Heat.Profile = Heat;
  Opts.Heat.HotThresholdPct = Pct;
  return Opts;
}

} // namespace

//===----------------------------------------------------------------------===//
// Format round-trip + validator
//===----------------------------------------------------------------------===//

TEST(HeatProfileTest, JsonRoundTrip) {
  HeatProfile P;
  P.Devices = 3;
  P.Functions.push_back({"alpha", 10, 2000, 900});
  P.Functions.push_back({"beta", 0, 0, 0});
  P.Functions.push_back({"gamma \"q\" \\ tricky", 7, 70, 7});
  const std::string Json = heatProfileJson(P);
  Expected<HeatProfile> Back = parseHeatProfile(Json);
  ASSERT_TRUE(Back.ok()) << Back.status().render();
  EXPECT_EQ(Back->Devices, 3u);
  ASSERT_EQ(Back->Functions.size(), 3u);
  EXPECT_EQ(Back->Functions[2].Name, "gamma \"q\" \\ tricky");
  EXPECT_EQ(Back->Functions[0].Cycles, 900u);
  EXPECT_EQ(Back->Functions[1].Calls, 0u);
  // Canonical rendering is a fixed point.
  EXPECT_EQ(heatProfileJson(*Back), Json);
  EXPECT_EQ(Back->totalCycles(), 907u);
}

TEST(HeatProfileTest, ValidatorRejectsDamage) {
  HeatProfile P;
  P.Functions.push_back({"b", 1, 1, 1});
  P.Functions.push_back({"a", 1, 1, 1});
  EXPECT_FALSE(validateHeatProfile(P).ok()) << "names must ascend";

  HeatProfile Dup;
  Dup.Functions.push_back({"a", 1, 1, 1});
  Dup.Functions.push_back({"a", 2, 2, 2});
  EXPECT_FALSE(validateHeatProfile(Dup).ok()) << "duplicates are damage";

  HeatProfile Empty;
  Empty.Functions.push_back({"", 1, 1, 1});
  EXPECT_FALSE(validateHeatProfile(Empty).ok()) << "empty name";

  HeatProfile Wrap;
  Wrap.Functions.push_back({"a", 1ull << 60, 1, 1});
  EXPECT_FALSE(validateHeatProfile(Wrap).ok()) << "counter cap";

  EXPECT_FALSE(parseHeatProfile("{\"schema\": \"mco-heat-v2\", "
                                "\"devices\": 1, \"functions\": []}")
                   .ok())
      << "unknown schema";
  EXPECT_FALSE(parseHeatProfile("junk").ok());

  HeatProfile Ok;
  Ok.Devices = 1;
  Ok.Functions.push_back({"a", 1, 1, 1});
  EXPECT_TRUE(validateHeatProfile(Ok).ok());
}

//===----------------------------------------------------------------------===//
// Classification semantics
//===----------------------------------------------------------------------===//

TEST(HeatProfileTest, ClassifyHeatPercentiles) {
  HeatProfile P;
  // Ten executed functions with distinct cycle counts (f9 hottest), plus
  // two never-executed ones.
  for (int I = 0; I < 10; ++I)
    P.Functions.push_back({"f" + std::to_string(I), 1, 10,
                           uint64_t(I + 1) * 100});
  P.Functions.push_back({"never_a", 5, 50, 0});
  P.Functions.push_back({"never_b", 0, 0, 0});

  // P90: top 10% of the 10 executed = 1 hot function, the hottest.
  auto M90 = classifyHeat(P, 90);
  EXPECT_EQ(M90.at("f9"), HeatClass::Hot);
  EXPECT_EQ(M90.at("f8"), HeatClass::Warm);
  EXPECT_EQ(M90.at("f0"), HeatClass::Warm);
  EXPECT_EQ(M90.at("never_a"), HeatClass::Cold);
  EXPECT_EQ(M90.at("never_b"), HeatClass::Cold);

  // P50: top half hot.
  auto M50 = classifyHeat(P, 50);
  EXPECT_EQ(M50.at("f5"), HeatClass::Hot);
  EXPECT_EQ(M50.at("f4"), HeatClass::Warm);

  // P100: the hot set is empty — outline everything.
  auto M100 = classifyHeat(P, 100);
  for (const auto &KV : M100)
    EXPECT_NE(KV.second, HeatClass::Hot) << KV.first;
  EXPECT_EQ(M100.at("f9"), HeatClass::Warm);

  // Threshold 0 (and out-of-range) = heat disabled: empty map.
  EXPECT_TRUE(classifyHeat(P, 0).empty());
  EXPECT_TRUE(classifyHeat(P, 101).empty());

  // Equal cycles tiebreak on name: deterministic cut.
  HeatProfile Tie;
  Tie.Functions.push_back({"x", 1, 1, 500});
  Tie.Functions.push_back({"y", 1, 1, 500});
  auto MT = classifyHeat(Tie, 50);
  EXPECT_EQ(MT.at("x"), HeatClass::Hot);
  EXPECT_EQ(MT.at("y"), HeatClass::Warm);
}

//===----------------------------------------------------------------------===//
// The hot-function property + suppression accounting
//===----------------------------------------------------------------------===//

TEST(HeatOutliningTest, HotFunctionsNeverShrink) {
  const HeatProfile Heat = capturedHeat();
  auto Prog = CorpusSynthesizer(tinyProfile()).generate();
  BuildResult R = buildProgram(*Prog, heatOpts(&Heat, 90));
  ASSERT_TRUE(R.Remarks.HeatGuided);
  EXPECT_EQ(R.Remarks.HotThresholdPct, 90u);

  uint64_t HotFns = 0;
  for (const SizeRemark &SR : R.Remarks.Remarks) {
    if (SR.Heat != HeatClass::Hot)
      continue;
    ++HotFns;
    EXPECT_EQ(SR.MIInstrsBefore, SR.MIInstrsAfter)
        << SR.Function << " is hot but changed size";
    EXPECT_FALSE(SR.IsOutlined) << SR.Function;
  }
  EXPECT_GT(HotFns, 0u) << "the corpus must classify some hot functions";

  // Every refused pattern occurrence is accounted for: the round stats'
  // dropped counter equals the suppressed remarks' occurrence total, and
  // suppression only names hot functions.
  uint64_t Dropped = 0;
  for (const OutlineRoundStats &RS : R.OutlineStats.Rounds)
    Dropped += RS.CandidatesDroppedHot;
  EXPECT_GT(Dropped, 0u);
  EXPECT_EQ(Dropped, R.Remarks.suppressedOccurrences());
  for (const HeatSuppressedRemark &S : R.Remarks.Suppressed) {
    bool FoundHot = false;
    for (const SizeRemark &SR : R.Remarks.Remarks)
      if (SR.Function == S.Function) {
        FoundHot = SR.Heat == HeatClass::Hot;
        break;
      }
    EXPECT_TRUE(FoundHot) << S.Function << " suppressed but not hot";
  }
}

TEST(HeatOutliningTest, ThresholdZeroIsByteIdenticalToProfileFree) {
  const HeatProfile Heat = capturedHeat();
  auto Plain = CorpusSynthesizer(tinyProfile()).generate();
  BuildResult RP = buildProgram(*Plain, heatOpts(nullptr, 0));
  auto Zero = CorpusSynthesizer(tinyProfile()).generate();
  BuildResult RZ = buildProgram(*Zero, heatOpts(&Heat, 0));

  EXPECT_EQ(programContentDigest(*Plain), programContentDigest(*Zero));
  EXPECT_EQ(RP.CodeSize, RZ.CodeSize);
  EXPECT_TRUE(RZ.FailureLog.empty());
  EXPECT_FALSE(RZ.Remarks.HeatGuided);
  // With heat off every remark is Warm and nothing is suppressed.
  for (const SizeRemark &SR : RZ.Remarks.Remarks)
    EXPECT_EQ(SR.Heat, HeatClass::Warm) << SR.Function;
  EXPECT_TRUE(RZ.Remarks.Suppressed.empty());
  EXPECT_EQ(sizeRemarksYaml(RP.Remarks), sizeRemarksYaml(RZ.Remarks));
}

TEST(HeatOutliningTest, MissingProfileDegradesWithFailureLog) {
  auto Plain = CorpusSynthesizer(tinyProfile()).generate();
  BuildResult RP = buildProgram(*Plain, heatOpts(nullptr, 0));

  auto Degraded = CorpusSynthesizer(tinyProfile()).generate();
  PipelineOptions Opts = heatOpts(nullptr, 90);
  Opts.Heat.ProfilePath = "/nonexistent/heat.json";
  BuildResult RD = buildProgram(*Degraded, Opts);

  // The build completes, records the failure, and ships the profile-free
  // artifact byte for byte.
  ASSERT_EQ(RD.FailureLog.size(), 1u);
  EXPECT_NE(RD.FailureLog[0].find("heat"), std::string::npos);
  EXPECT_FALSE(RD.Remarks.HeatGuided);
  EXPECT_EQ(programContentDigest(*Plain), programContentDigest(*Degraded));
}

TEST(HeatOutliningTest, DifferentialExecutionUnchanged) {
  const HeatProfile Heat = capturedHeat();
  const AppProfile P = tinyProfile();
  auto Plain = CorpusSynthesizer(P).generate();
  buildProgram(*Plain, heatOpts(nullptr, 0));
  auto Guided = CorpusSynthesizer(P).generate();
  buildProgram(*Guided, heatOpts(&Heat, 90));

  BinaryImage PlainImg(*Plain);
  Interpreter PI(PlainImg, *Plain);
  BinaryImage GuidedImg(*Guided);
  Interpreter GI(GuidedImg, *Guided);
  for (unsigned S = 0; S < P.NumSpans; ++S) {
    const std::string Span = CorpusSynthesizer::spanFunctionName(S);
    EXPECT_EQ(GI.call(Span), PI.call(Span)) << Span;
  }
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(HeatOutliningTest, RemarksDeterministicAcrossThreadsAndEngines) {
  const HeatProfile Heat = capturedHeat();
  auto build = [&](unsigned Threads, DiscoveryEngine Engine,
                   bool PerModule) {
    auto Prog = CorpusSynthesizer(tinyProfile()).withThreads(Threads)
                    .generate();
    PipelineOptions Opts = heatOpts(&Heat, 90, Threads);
    Opts.WholeProgram = !PerModule;
    Opts.Outliner.Discovery = Engine;
    BuildResult R = buildProgram(*Prog, Opts);
    return sizeRemarksYaml(R.Remarks) + sizeRemarksJson(R.Remarks);
  };
  const std::string Ref = build(1, DiscoveryEngine::SuffixArray, false);
  EXPECT_EQ(build(8, DiscoveryEngine::SuffixArray, false), Ref);
  EXPECT_EQ(build(1, DiscoveryEngine::Tree, false), Ref);
  const std::string PerModRef = build(1, DiscoveryEngine::SuffixArray, true);
  EXPECT_EQ(build(8, DiscoveryEngine::SuffixArray, true), PerModRef);
}

TEST(HeatOutliningTest, FleetHeatCaptureDeterministicAcrossThreads) {
  const std::string A = heatProfileJson(capturedHeat(1));
  const std::string B = heatProfileJson(capturedHeat(4));
  EXPECT_EQ(A, B);
  // And the capture is non-trivial: functions executed, cycles charged.
  Expected<HeatProfile> P = parseHeatProfile(A);
  ASSERT_TRUE(P.ok());
  EXPECT_GT(P->Functions.size(), 10u);
  EXPECT_GT(P->totalCycles(), 0u);
}
