//===- tests/ObjectFileTest.cpp - MCOB1 container tests -------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The MCOB1 object-container contract:
///
///   - serialize -> read -> toModuleArtifact round-trips a module (bodies,
///     outlining metadata, globals, stats) with full fidelity;
///   - recorded addresses equal BinaryImage's layout for the same program,
///     and page counts derived from the section headers equal what the
///     first-touch TextPageModel observes;
///   - the export trie is exactly the sorted exported-name set (default
///     policy plus --export extras);
///   - the objfile.reloc.garble fault site is caught by the loader's range
///     checks — a Status, never a decoded bogus target;
///   - a sealed MCOB1 artifact executes byte-identically (mco-run stdout)
///     to the legacy sealed-MCOM path, and mco-build --emit-obj output is
///     byte-identical across -j1/-j8 and layout strategies.
///
//===----------------------------------------------------------------------===//

#include "objfile/ObjectFile.h"

#include "cache/ArtifactCache.h"
#include "linker/Linker.h"
#include "mir/MIRBuilder.h"
#include "mir/MIRPrinter.h"
#include "pipeline/BuildPipeline.h"
#include "sim/CacheModel.h"
#include "support/Checksum.h"
#include "support/FaultInjection.h"
#include "synth/CorpusSynthesizer.h"
#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace mco;
namespace fs = std::filesystem;

namespace {

SymbolNameFn nameFn(const Program &Prog) {
  return [&Prog](uint32_t Id) { return Prog.symbolName(Id); };
}

/// Configures fault injection for one test and clears it on exit.
struct FaultScope {
  explicit FaultScope(const std::string &Spec) {
    Status S = FaultInjection::instance().configure(Spec);
    EXPECT_TRUE(S.ok()) << S.message();
  }
  ~FaultScope() { FaultInjection::instance().clear(); }
};

struct ScratchDir {
  fs::path P;
  explicit ScratchDir(const std::string &Name) {
    P = fs::temp_directory_path() /
        ("mco_objfile_test_" + std::to_string(::getpid()) + "_" + Name);
    fs::remove_all(P);
    fs::create_directories(P);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(P, EC);
  }
  std::string str(const std::string &Leaf) const { return (P / Leaf).string(); }
  std::string file(const std::string &Leaf, const std::string &Bytes) const {
    const std::string Path = (P / Leaf).string();
    std::ofstream Out(Path, std::ios::binary);
    Out.write(Bytes.data(), std::streamsize(Bytes.size()));
    return Path;
  }
};

/// Spawns \p Tool, captures its stdout (stderr goes to /dev/null), and
/// returns (exit code, stdout bytes). Used for the byte-identity
/// differentials, where the *exact* output is the contract.
struct CaptureResult {
  int ExitCode = -1;
  std::string Out;
};

CaptureResult runToolCapture(const std::string &Tool,
                             const std::vector<std::string> &Args) {
  int Pipe[2];
  CaptureResult R;
  if (::pipe(Pipe) != 0)
    return R;
  pid_t Pid = ::fork();
  if (Pid == 0) {
    ::close(Pipe[0]);
    ::dup2(Pipe[1], 1);
    ::close(Pipe[1]);
    std::freopen("/dev/null", "w", stderr);
    std::vector<std::string> All;
    All.push_back(Tool);
    All.insert(All.end(), Args.begin(), Args.end());
    std::vector<char *> Argv;
    for (std::string &S : All)
      Argv.push_back(S.data());
    Argv.push_back(nullptr);
    ::execv(Tool.c_str(), Argv.data());
    ::_exit(127);
  }
  ::close(Pipe[1]);
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Pipe[0], Buf, sizeof(Buf))) > 0)
    R.Out.append(Buf, static_cast<size_t>(N));
  ::close(Pipe[0]);
  int WStatus = 0;
  ::waitpid(Pid, &WStatus, 0);
  if (WIFEXITED(WStatus))
    R.ExitCode = WEXITSTATUS(WStatus);
  return R;
}

/// Everything serializable in one module: plain + outlined functions,
/// branches, ADR-of-global, calls to defined and undefined symbols, and an
/// exported entry (`main`) next to internal helpers.
Module &makeObjModule(Program &Prog, const std::string &Name) {
  Module &M = Prog.addModule(Name);

  M.Functions.emplace_back();
  MachineFunction &F = M.Functions.back();
  F.Name = Prog.internSymbol("main");
  F.OriginModule = 1;
  F.addBlock();
  F.addBlock();
  MIRBuilder B(F.Blocks[0]);
  B.movri(Reg::X0, 42);
  B.addri(Reg::X1, Reg::X0, -9);
  B.cmpri(Reg::X1, 0);
  B.cset(Reg::X2, Cond::HS);
  B.adr(Reg::X3, Prog.internSymbol("obj_data"));
  B.bl(Prog.internSymbol("obj_helper"));
  B.bl(Prog.internSymbol("undefined_builtin"));
  B.bcc(Cond::NE, 1);
  B.setBlock(F.Blocks[1]);
  B.ret();

  M.Functions.emplace_back();
  MachineFunction &H = M.Functions.back();
  H.Name = Prog.internSymbol("obj_helper");
  H.OriginModule = 2;
  MIRBuilder HB(H.addBlock());
  HB.movri(Reg::X9, 7);
  HB.ret();

  M.Functions.emplace_back();
  MachineFunction &G = M.Functions.back();
  G.Name = Prog.internSymbol("OUTLINED_0_0@" + Name);
  G.IsOutlined = true;
  G.FrameKind = OutlinedFrameKind::Thunk;
  G.OutlinedCallSites = 2;
  MIRBuilder GB(G.addBlock());
  GB.movri(Reg::X9, 1);
  GB.btail(Prog.internSymbol("obj_helper"));

  M.Globals.emplace_back();
  GlobalData &D = M.Globals.back();
  D.Name = Prog.internSymbol("obj_data");
  D.Bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  D.OriginModule = 1;
  return M;
}

RepeatedOutlineStats someStats() {
  RepeatedOutlineStats St;
  St.Rounds.emplace_back();
  St.Rounds.back().SequencesOutlined = 5;
  St.Rounds.back().FunctionsCreated = 1;
  return St;
}

TEST(ObjectFileTest, RoundTripPreservesModuleAndStats) {
  Program Prog;
  Module &M = makeObjModule(Prog, "rt.mod");
  const std::string Bytes =
      serializeObjectFile(M, someStats(), 3, 4, nameFn(Prog));
  ASSERT_EQ(Bytes.rfind(ObjectFileMagic, 0), 0u);

  Program Fresh;
  Expected<ModuleArtifact> A = deserializeObjectFile(Bytes, Fresh);
  ASSERT_TRUE(A.ok()) << A.status().message();

  // Textual MIR resolves symbol ids to names, so printing both modules is
  // a full-fidelity body comparison that tolerates different id pools.
  EXPECT_EQ(printModule(A->M, Fresh), printModule(M, Prog));

  ASSERT_EQ(A->M.Functions.size(), M.Functions.size());
  for (size_t I = 0; I < M.Functions.size(); ++I) {
    const MachineFunction &Want = M.Functions[I];
    const MachineFunction &Got = A->M.Functions[I];
    EXPECT_EQ(Fresh.symbolName(Got.Name), Prog.symbolName(Want.Name));
    EXPECT_EQ(Got.IsOutlined, Want.IsOutlined);
    EXPECT_EQ(Got.FrameKind, Want.FrameKind);
    EXPECT_EQ(Got.OutlinedCallSites, Want.OutlinedCallSites);
    EXPECT_EQ(Got.OriginModule, Want.OriginModule);
  }
  ASSERT_EQ(A->M.Globals.size(), M.Globals.size());
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    EXPECT_EQ(Fresh.symbolName(A->M.Globals[I].Name),
              Prog.symbolName(M.Globals[I].Name));
    EXPECT_EQ(A->M.Globals[I].Bytes, M.Globals[I].Bytes);
  }
  ASSERT_EQ(A->Stats.Rounds.size(), 1u);
  EXPECT_EQ(A->Stats.Rounds[0].SequencesOutlined, 5u);
  EXPECT_EQ(A->Stats.Rounds[0].FunctionsCreated, 1u);
  EXPECT_EQ(A->RoundsRolledBack, 3u);
  EXPECT_EQ(A->PatternsQuarantined, 4u);
}

TEST(ObjectFileTest, ContentBytesAreSymbolIdIndependent) {
  // Same module, but one program interns a pile of unrelated symbols
  // first, shifting every id. The content serialization must not notice.
  Program A;
  Module &MA = makeObjModule(A, "ids.mod");
  Program B;
  for (int I = 0; I < 100; ++I)
    B.internSymbol("noise_" + std::to_string(I));
  Module &MB = makeObjModule(B, "ids.mod");
  EXPECT_EQ(serializeObjectContent(MA, nameFn(A)),
            serializeObjectContent(MB, nameFn(B)));
}

TEST(ObjectFileTest, AddressesMatchBinaryImageLayout) {
  Program Prog;
  Module &M = makeObjModule(Prog, "addr.mod");
  Expected<BinaryImage> Image = BinaryImage::create(Prog);
  ASSERT_TRUE(Image.ok()) << Image.status().message();

  Expected<LoadedObject> O =
      readObjectFile(serializeObjectFile(M, {}, 0, 0, nameFn(Prog)));
  ASSERT_TRUE(O.ok()) << O.status().message();

  EXPECT_EQ(O->Sections[0].VmAddr, BinaryImage::TextBase);
  EXPECT_EQ(O->Sections[0].VmSize, Image->codeSize());
  EXPECT_EQ(O->Sections[1].VmAddr, Image->dataBase());

  for (const ObjSymbol &S : O->Symbols) {
    const uint32_t Id = Prog.lookupSymbol(S.Name);
    ASSERT_NE(Id, UINT32_MAX) << S.Name;
    switch (S.Kind) {
    case ObjSymbolKind::Function:
      EXPECT_EQ(S.Addr, Image->functionAddr(Id)) << S.Name;
      break;
    case ObjSymbolKind::Global:
      EXPECT_EQ(S.Addr, Image->globalAddr(Id)) << S.Name;
      break;
    case ObjSymbolKind::Undefined:
      EXPECT_EQ(S.Addr, 0u) << S.Name;
      EXPECT_EQ(Image->functionAddr(Id), 0u) << S.Name;
      break;
    }
  }
}

TEST(ObjectFileTest, ExportTrieIsSortedDefaultPolicyPlusExtras) {
  Program Prog;
  Module &M = Prog.addModule("trie.mod");
  for (const char *Name : {"span_1", "main", "span_0", "span_10", "helper"}) {
    M.Functions.emplace_back();
    MachineFunction &F = M.Functions.back();
    F.Name = Prog.internSymbol(Name);
    MIRBuilder B(F.addBlock());
    B.movri(Reg::X0, 1);
    B.ret();
  }

  Expected<LoadedObject> O =
      readObjectFile(serializeObjectFile(M, {}, 0, 0, nameFn(Prog)));
  ASSERT_TRUE(O.ok()) << O.status().message();
  EXPECT_EQ(O->ExportedNames,
            (std::vector<std::string>{"main", "span_0", "span_1", "span_10"}));

  // --export extends the root set; the trie stays sorted.
  const std::vector<std::string> Extra = {"helper"};
  Expected<LoadedObject> O2 =
      readObjectFile(serializeObjectFile(M, {}, 0, 0, nameFn(Prog), &Extra));
  ASSERT_TRUE(O2.ok()) << O2.status().message();
  EXPECT_EQ(O2->ExportedNames,
            (std::vector<std::string>{"helper", "main", "span_0", "span_1",
                                      "span_10"}));
  for (const ObjSymbol &S : O2->Symbols)
    if (S.Name == "helper")
      EXPECT_EQ(S.Vis, ObjVisibility::Exported);
}

TEST(ObjectFileTest, RelocGarbleFaultIsReportedNotFollowed) {
  Program Prog;
  Module &M = makeObjModule(Prog, "garble.mod");

  std::string Garbled;
  {
    FaultScope F("objfile.reloc.garble:1");
    Garbled = serializeObjectFile(M, {}, 0, 0, nameFn(Prog));
  }
  const std::string Clean = serializeObjectFile(M, {}, 0, 0, nameFn(Prog));
  ASSERT_NE(Garbled, Clean) << "fault site did not fire";

  // The validator's relocation range check catches the bogus target before
  // any object exists; the loader therefore reports CorruptInput rather
  // than resolving an operand to a fabricated symbol.
  EXPECT_FALSE(validateObjectFileBytes(Garbled).ok());
  Expected<LoadedObject> O = readObjectFile(Garbled);
  ASSERT_FALSE(O.ok());
  EXPECT_EQ(O.status().code(), StatusCode::CorruptInput);
  Program Fresh;
  EXPECT_FALSE(deserializeObjectFile(Garbled, Fresh).ok());

  // The clean bytes still load.
  EXPECT_TRUE(readObjectFile(Clean).ok());
}

TEST(ObjectFileTest, PageCountsMatchTextPageModel) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 6;
  auto Prog = CorpusSynthesizer(P).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 1;
  buildProgram(*Prog, Opts);
  ASSERT_EQ(Prog->Modules.size(), 1u);

  Expected<LoadedObject> O = readObjectFile(
      serializeObjectFile(*Prog->Modules[0], {}, 0, 0, nameFn(*Prog)));
  ASSERT_TRUE(O.ok()) << O.status().message();

  // mco-size's arithmetic: pages the [vmaddr, vmaddr+vmsize) span covers.
  auto PagesOf = [](uint64_t VmAddr, uint64_t VmSize) -> uint64_t {
    if (VmSize == 0)
      return 0;
    return (VmAddr + VmSize - 1) / BinaryImage::PageSize -
           VmAddr / BinaryImage::PageSize + 1;
  };

  // The model's count: touch every byte of each section, count faults.
  for (const ObjSectionInfo &S : O->Sections) {
    TextPageModel PM(BinaryImage::PageSize);
    for (uint64_t A = S.VmAddr; A < S.VmAddr + S.VmSize; ++A)
      PM.access(A);
    EXPECT_EQ(PM.faults(), PagesOf(S.VmAddr, S.VmSize))
        << S.Segment << "," << S.Name;
  }
}

TEST(ObjectFileTest, SealedContainerRunsIdenticallyToSealedMcom) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = 6;
  auto Prog = CorpusSynthesizer(P).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 2;
  BuildResult R = buildProgram(*Prog, Opts);
  ASSERT_EQ(Prog->Modules.size(), 1u);
  const Module &M = *Prog->Modules[0];
  const SymbolNameFn NameOf = nameFn(*Prog);

  ScratchDir D("diff");
  const std::string McomPath = D.file(
      "legacy.mco", sealArtifact(serializeModuleArtifact(
                        M, R.OutlineStats, R.RoundsRolledBack,
                        R.PatternsQuarantined, NameOf)));
  const std::string McobPath = D.file(
      "obj.mco", sealArtifact(serializeObjectFile(
                     M, R.OutlineStats, R.RoundsRolledBack,
                     R.PatternsQuarantined, NameOf)));
  const std::string BarePath = D.file(
      "obj.mcob", serializeObjectFile(M, R.OutlineStats, R.RoundsRolledBack,
                                      R.PatternsQuarantined, NameOf));

  const std::vector<std::string> Spans = {"span_0", "span_1", "span_2"};
  for (const std::string &Span : Spans) {
    CaptureResult Legacy =
        runToolCapture(MCO_RUN_TOOL_PATH, {McomPath, "--entry", Span});
    CaptureResult Sealed =
        runToolCapture(MCO_RUN_TOOL_PATH, {McobPath, "--entry", Span});
    CaptureResult Bare =
        runToolCapture(MCO_RUN_TOOL_PATH, {BarePath, "--entry", Span});
    ASSERT_EQ(Legacy.ExitCode, 0) << Legacy.Out;
    ASSERT_EQ(Sealed.ExitCode, 0) << Sealed.Out;
    ASSERT_EQ(Bare.ExitCode, 0) << Bare.Out;
    // Sealed MCOB1 vs sealed MCOM: stdout must be byte-identical — same
    // "loaded sealed artifact" banner, same function/instruction counts,
    // same execution result, same performance counters.
    EXPECT_EQ(Sealed.Out, Legacy.Out) << "span " << Span;
    // The bare container differs only in the loader banner.
    const size_t Cut = Bare.Out.find('\n');
    const size_t LegacyCut = Legacy.Out.find('\n');
    ASSERT_NE(Cut, std::string::npos);
    ASSERT_NE(LegacyCut, std::string::npos);
    EXPECT_EQ(Bare.Out.substr(0, Cut),
              "loaded object container (relocations applied)");
    EXPECT_EQ(Bare.Out.substr(Cut), Legacy.Out.substr(LegacyCut))
        << "span " << Span;
  }
}

TEST(ObjectFileTest, NmAndSizeOutputIsDeterministicAndSorted) {
  Program Prog;
  Module &M = makeObjModule(Prog, "tools.mod");
  ScratchDir D("tools");
  const std::string File =
      D.file("m.mcob", serializeObjectFile(M, someStats(), 0, 0,
                                           nameFn(Prog)));

  CaptureResult Nm1 = runToolCapture(MCO_NM_TOOL_PATH, {File});
  CaptureResult Nm2 = runToolCapture(MCO_NM_TOOL_PATH, {File});
  ASSERT_EQ(Nm1.ExitCode, 0) << Nm1.Out;
  EXPECT_EQ(Nm1.Out, Nm2.Out);

  // Addresses print in nondecreasing order (undefined symbols lead with a
  // blank address field, which sorts as spaces before any hex digit).
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Nm1.Out.size()) {
    const size_t End = Nm1.Out.find('\n', Pos);
    Lines.push_back(Nm1.Out.substr(Pos, End - Pos));
    Pos = End == std::string::npos ? Nm1.Out.size() : End + 1;
  }
  ASSERT_GE(Lines.size(), 5u); // 4 defined + at least 1 undefined.
  for (size_t I = 1; I < Lines.size(); ++I)
    EXPECT_LE(Lines[I - 1].substr(0, 16), Lines[I].substr(0, 16));

  CaptureResult Ex = runToolCapture(MCO_NM_TOOL_PATH, {File, "--exports"});
  ASSERT_EQ(Ex.ExitCode, 0);
  EXPECT_EQ(Ex.Out, "main\n");

  CaptureResult Sz1 = runToolCapture(MCO_SIZE_TOOL_PATH, {File, "--pages"});
  CaptureResult Sz2 = runToolCapture(MCO_SIZE_TOOL_PATH, {File, "--pages"});
  ASSERT_EQ(Sz1.ExitCode, 0) << Sz1.Out;
  EXPECT_EQ(Sz1.Out, Sz2.Out);
  EXPECT_NE(Sz1.Out.find("Segment __TEXT"), std::string::npos);
  EXPECT_NE(Sz1.Out.find("Segment __DATA"), std::string::npos);
  EXPECT_NE(Sz1.Out.find("total "), std::string::npos);
}

TEST(ObjectFileTest, EmitObjIsDeterministicAcrossThreadsAndLayouts) {
  ScratchDir D("emit");
  struct Config {
    const char *Leaf;
    const char *Threads;
    const char *Layout;
  };
  const Config Configs[] = {{"j1_orig.mcob", "1", "original"},
                            {"j8_orig.mcob", "8", "original"},
                            {"j1_bp.mcob", "1", "bp"},
                            {"j8_bp.mcob", "8", "bp"}};
  std::vector<std::string> Emitted;
  for (const Config &C : Configs) {
    const std::string Out = D.str(C.Leaf);
    CaptureResult R = runToolCapture(
        MCO_BUILD_TOOL_PATH,
        {"--profile", "rider", "--modules", "6", "--rounds", "2", "-j",
         C.Threads, "--layout", C.Layout, "--emit-obj", Out});
    ASSERT_EQ(R.ExitCode, 0) << R.Out;
    std::ifstream In(Out, std::ios::binary);
    ASSERT_TRUE(In.good()) << Out;
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    ASSERT_EQ(Bytes.rfind(ObjectFileMagic, 0), 0u);
    Emitted.push_back(std::move(Bytes));
  }
  for (size_t I = 1; I < Emitted.size(); ++I)
    EXPECT_EQ(Emitted[I], Emitted[0])
        << Configs[I].Leaf << " differs from " << Configs[0].Leaf;
}

} // namespace
