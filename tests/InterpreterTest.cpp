//===- tests/InterpreterTest.cpp - Interpreter semantic tests -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"

#include "mir/MIRBuilder.h"
#include "outliner/MachineOutliner.h"
#include "gtest/gtest.h"

#include <cstring>

using namespace mco;

namespace {

TEST(InterpreterTest, MovAndArithmetic) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X1, 20);
  B.movri(Reg::X2, 22);
  B.addrr(Reg::X0, Reg::X1, Reg::X2);
  B.ret();
  M.Functions.push_back(MF);

  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f"), 42);
}

TEST(InterpreterTest, FlagsAndConditionalBranch) {
  // f(a): if (a < 10) return 1; else return 2;
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B0(MF.addBlock());
  B0.cmpri(Reg::X0, 10);
  B0.bcc(Cond::LT, 1);
  B0.b(2);
  MIRBuilder B1(MF.addBlock());
  B1.movri(Reg::X0, 1);
  B1.ret();
  MIRBuilder B2(MF.addBlock());
  B2.movri(Reg::X0, 2);
  B2.ret();
  M.Functions.push_back(MF);

  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f", {5}), 1);
  EXPECT_EQ(I.call("f", {15}), 2);
  EXPECT_EQ(I.call("f", {10}), 2);
}

TEST(InterpreterTest, CBZAndCBNZ) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B0(MF.addBlock());
  B0.cbz(Reg::X0, 1);
  B0.movri(Reg::X0, 7);
  B0.ret();
  MIRBuilder B1(MF.addBlock());
  B1.movri(Reg::X0, 3);
  B1.ret();
  M.Functions.push_back(MF);

  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f", {0}), 3);
  EXPECT_EQ(I.call("f", {1}), 7);
}

TEST(InterpreterTest, StackPairOps) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.subri(Reg::SP, Reg::SP, 32);
  B.movri(Reg::X1, 11);
  B.movri(Reg::X2, 31);
  B.stp(Reg::X1, Reg::X2, Reg::SP, 0);
  B.ldp(Reg::X3, Reg::X4, Reg::SP, 0);
  B.addrr(Reg::X0, Reg::X3, Reg::X4);
  B.addri(Reg::SP, Reg::SP, 32);
  B.ret();
  M.Functions.push_back(MF);

  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f"), 42);
}

TEST(InterpreterTest, PreAndPostIndexAddressing) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.movri(Reg::X1, 99);
  B.strpre(Reg::X1, Reg::SP, -16); // push x1
  B.movri(Reg::X1, 0);
  B.ldrpost(Reg::X0, Reg::SP, 16); // pop into x0
  B.ret();
  M.Functions.push_back(MF);

  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f"), 99);
}

TEST(InterpreterTest, CallAndReturnThroughLR) {
  Program P;
  Module &M = P.addModule("m");
  {
    MachineFunction Callee;
    Callee.Name = P.internSymbol("callee");
    MIRBuilder B(Callee.addBlock());
    B.addri(Reg::X0, Reg::X0, 5);
    B.ret();
    M.Functions.push_back(Callee);
  }
  {
    MachineFunction Caller;
    Caller.Name = P.internSymbol("caller");
    MIRBuilder B(Caller.addBlock());
    B.strpre(LR, Reg::SP, -16);
    B.bl(P.internSymbol("callee"));
    B.bl(P.internSymbol("callee"));
    B.ldrpost(LR, Reg::SP, 16);
    B.ret();
    M.Functions.push_back(Caller);
  }
  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("caller", {1}), 11);
}

TEST(InterpreterTest, IndirectCallThroughRegister) {
  Program P;
  Module &M = P.addModule("m");
  {
    MachineFunction Callee;
    Callee.Name = P.internSymbol("target");
    MIRBuilder B(Callee.addBlock());
    B.movri(Reg::X0, 1234);
    B.ret();
    M.Functions.push_back(Callee);
  }
  {
    MachineFunction Caller;
    Caller.Name = P.internSymbol("caller");
    MIRBuilder B(Caller.addBlock());
    B.strpre(LR, Reg::SP, -16);
    B.adr(Reg::X9, P.internSymbol("target"));
    B.blr(Reg::X9);
    B.ldrpost(LR, Reg::SP, 16);
    B.ret();
    M.Functions.push_back(Caller);
  }
  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("caller"), 1234);
}

TEST(InterpreterTest, GlobalDataAccess) {
  Program P;
  Module &M = P.addModule("m");
  GlobalData G;
  G.Name = P.internSymbol("table");
  G.Bytes.resize(16);
  int64_t V = 777;
  std::memcpy(G.Bytes.data() + 8, &V, 8);
  M.Globals.push_back(G);

  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.adr(Reg::X1, G.Name);
  B.ldr(Reg::X0, Reg::X1, 8);
  B.ret();
  M.Functions.push_back(MF);

  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f"), 777);
}

TEST(InterpreterTest, RefcountRuntime) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B(MF.addBlock());
  B.strpre(LR, Reg::SP, -16);
  B.movri(Reg::X0, 0);
  B.movri(Reg::X1, 32);
  B.movri(Reg::X2, 7);
  B.bl(P.internSymbol("swift_allocObject"));
  B.movrr(Reg::X19, Reg::X0); // Save object.
  B.bl(P.internSymbol("swift_retain"));
  B.movrr(Reg::X0, Reg::X19);
  B.bl(P.internSymbol("swift_release"));
  B.ldr(Reg::X0, Reg::X19, 0); // Read refcount: must be 1 again.
  B.ldrpost(LR, Reg::SP, 16);
  B.ret();
  M.Functions.push_back(MF);

  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f"), 1);
}

TEST(InterpreterTest, CountsOutlinedInstructions) {
  Program P;
  Module &M = P.addModule("m");
  for (int F = 0; F < 3; ++F) {
    MachineFunction MF;
    MF.Name = P.internSymbol("f" + std::to_string(F));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X0, 77);
    B.movri(Reg::X1, 88);
    B.ret();
    M.Functions.push_back(MF);
  }
  runOutlinerRound(P, M, 1);
  BinaryImage Image(P);
  Interpreter I(Image, P);
  EXPECT_EQ(I.call("f0"), 77);
  EXPECT_GT(I.counters().OutlinedInstrs, 0u);
  EXPECT_LT(I.counters().OutlinedInstrs, I.counters().Instrs);
}

TEST(InterpreterTest, PerfModelProducesCycles) {
  Program P;
  Module &M = P.addModule("m");
  MachineFunction MF;
  MF.Name = P.internSymbol("f");
  MIRBuilder B0(MF.addBlock());
  B0.movri(Reg::X1, 1000); // Counter.
  MIRBuilder B1(MF.addBlock());
  B1.subri(Reg::X1, Reg::X1, 1);
  B1.cmpri(Reg::X1, 0);
  B1.bcc(Cond::NE, 1);
  MIRBuilder B2(MF.addBlock());
  B2.movri(Reg::X0, 0);
  B2.ret();
  M.Functions.push_back(MF);

  BinaryImage Image(P);
  PerfConfig PC;
  Interpreter I(Image, P, &PC);
  I.call("f");
  EXPECT_GT(I.counters().Instrs, 3000u);
  EXPECT_GT(I.counters().Cycles, 0.0);
  // A tight loop predicts nearly perfectly and stays in cache: IPC must be
  // close to the configured width (1/BaseCyclesPerInstr).
  EXPECT_GT(I.counters().ipc(), 1.5);
}

} // namespace
