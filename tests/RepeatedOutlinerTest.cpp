//===- tests/RepeatedOutlinerTest.cpp - Multi-round outlining -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "outliner/MachineOutliner.h"

#include "mir/MIRBuilder.h"
#include "gtest/gtest.h"

using namespace mco;

namespace {

/// Builds the paper's Fig. 11 situation: a short pattern XY that repeats
/// very often, plus a longer pattern WXY that contains it. Greedy round 1
/// outlines XY everywhere, truncating the WXY opportunity; round 2 then
/// outlines the leftover [W, BL] pairs.
void fillNested(Program &P, Module &M, unsigned NumShort, unsigned NumLong) {
  for (unsigned I = 0; I < NumShort; ++I) {
    MachineFunction MF;
    MF.Name = P.internSymbol("s" + std::to_string(I));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X1, 11); // X
    B.movri(Reg::X2, 12); // Y
    M.Functions.push_back(MF);
  }
  for (unsigned I = 0; I < NumLong; ++I) {
    MachineFunction MF;
    MF.Name = P.internSymbol("l" + std::to_string(I));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X3, 33); // W
    B.movri(Reg::X1, 11); // X
    B.movri(Reg::X2, 12); // Y
    M.Functions.push_back(MF);
  }
}

TEST(RepeatedOutlinerTest, SecondRoundRecoversTruncatedPattern) {
  Program P;
  Module &M = P.addModule("m");
  fillNested(P, M, 16, 6);

  RepeatedOutlineStats S = runRepeatedOutliner(P, M, 5);
  ASSERT_GE(S.Rounds.size(), 2u);
  // Round 1 outlines the short pattern (22 sites).
  EXPECT_EQ(S.Rounds[0].FunctionsCreated, 1u);
  EXPECT_EQ(S.Rounds[0].SequencesOutlined, 22u);
  // Round 2 outlines the [W, BL OUT] leftover as a thunk (6 sites).
  EXPECT_EQ(S.Rounds[1].FunctionsCreated, 1u);
  EXPECT_EQ(S.Rounds[1].SequencesOutlined, 6u);
  EXPECT_LT(S.Rounds[1].CodeSizeAfter, S.Rounds[0].CodeSizeAfter);
}

TEST(RepeatedOutlinerTest, OneRoundLeavesMoneyOnTheTable) {
  Program P1;
  Module &M1 = P1.addModule("m");
  fillNested(P1, M1, 16, 6);
  runRepeatedOutliner(P1, M1, 1);

  Program P5;
  Module &M5 = P5.addModule("m");
  fillNested(P5, M5, 16, 6);
  runRepeatedOutliner(P5, M5, 5);

  EXPECT_LT(M5.codeSize(), M1.codeSize());
}

TEST(RepeatedOutlinerTest, StopsWhenNoMoreBenefit) {
  Program P;
  Module &M = P.addModule("m");
  fillNested(P, M, 16, 6);
  RepeatedOutlineStats S = runRepeatedOutliner(P, M, 50);
  // Must terminate long before 50 rounds.
  ASSERT_LT(S.Rounds.size(), 6u);
  EXPECT_EQ(S.Rounds.back().FunctionsCreated, 0u);
}

TEST(RepeatedOutlinerTest, RoundStatsAccumulate) {
  Program P;
  Module &M = P.addModule("m");
  fillNested(P, M, 16, 6);
  RepeatedOutlineStats S = runRepeatedOutliner(P, M, 5);
  EXPECT_EQ(S.totalSequencesOutlined(), 28u);
  EXPECT_EQ(S.totalFunctionsCreated(), 2u);
  uint64_t Bytes = 0;
  for (const MachineFunction &MF : M.Functions)
    if (MF.IsOutlined)
      Bytes += MF.codeSize();
  EXPECT_EQ(S.totalOutlinedFunctionBytes(), Bytes);
}

TEST(RepeatedOutlinerTest, DiminishingReturnsAcrossRounds) {
  // With several nesting levels, each round saves less than the previous
  // (paper Fig. 12's plateau).
  Program P;
  Module &M = P.addModule("m");
  // Level-3 nesting: Z | YZ | XYZ | WXYZ with decreasing frequencies.
  auto Add = [&](const std::string &N, int Depth, int Count) {
    for (int I = 0; I < Count; ++I) {
      MachineFunction MF;
      MF.Name = P.internSymbol(N + std::to_string(I));
      MIRBuilder B(MF.addBlock());
      if (Depth >= 4)
        B.movri(Reg::X4, 44);
      if (Depth >= 3)
        B.movri(Reg::X3, 33);
      if (Depth >= 2)
        B.movri(Reg::X2, 22);
      B.movri(Reg::X1, 11);
      B.movri(Reg::X0, 10);
      M.Functions.push_back(MF);
    }
  };
  Add("a", 1, 40);
  Add("b", 2, 16);
  Add("c", 3, 10);
  Add("d", 4, 8);

  RepeatedOutlineStats S = runRepeatedOutliner(P, M, 5);
  ASSERT_GE(S.Rounds.size(), 2u);
  for (size_t I = 1; I < S.Rounds.size(); ++I)
    EXPECT_LE(S.Rounds[I].bytesSaved(), S.Rounds[I - 1].bytesSaved());
}

TEST(RepeatedOutlinerTest, OutlinedFunctionsAreReoutlined) {
  // Round 1 creates OUT_p = [prefix_p, S1..S4, RET-appended] (from the big
  // group) and OUT_tail = [S1..S4, RET-appended] (from the small group's
  // leftover). Those two *outlined bodies* share [S1..S4, RET], which a
  // later round outlines out of them — outlined code is itself outlined.
  Program P;
  Module &M = P.addModule("m");
  auto AddGroup = [&](const std::string &N, int Count, int64_t UniqueImm) {
    for (int I = 0; I < Count; ++I) {
      MachineFunction MF;
      MF.Name = P.internSymbol(N + std::to_string(I));
      MIRBuilder B(MF.addBlock());
      B.movri(Reg::X5, UniqueImm);
      B.movri(Reg::X6, UniqueImm + 1);
      // Shared 4-instruction tail S1..S4.
      B.movri(Reg::X1, 71);
      B.movri(Reg::X2, 72);
      B.movri(Reg::X3, 73);
      B.movri(Reg::X4, 74);
      // Unique filler.
      B.movri(Reg::X9, 1000 + static_cast<int64_t>(M.Functions.size()));
      M.Functions.push_back(MF);
    }
  };
  AddGroup("p", 12, 100);
  AddGroup("q", 3, 200);

  RepeatedOutlineStats S = runRepeatedOutliner(P, M, 5);
  ASSERT_GE(S.Rounds.size(), 2u);
  // Round 1: the p-group 6-instr pattern (benefit 212) beats the shared
  // tail (160); the tail is then still profitable on the q-group leftovers.
  EXPECT_EQ(S.Rounds[0].FunctionsCreated, 2u);
  // Round 2 outlines [S1..S4, RET] out of the two round-1 bodies (it also
  // picks up the q-group's leftover prefix thunk).
  EXPECT_GE(S.Rounds[1].FunctionsCreated, 1u);
  EXPECT_GE(S.Rounds[1].SequencesOutlined, 2u);

  // An outlined function must now tail-call another outlined function.
  bool OutlinedCallsOutlined = false;
  for (const MachineFunction &MF : M.Functions) {
    if (!MF.IsOutlined)
      continue;
    for (const MachineInstr &MI : MF.Blocks[0].Instrs)
      if (MI.opcode() == Opcode::Btail)
        for (const MachineFunction &Callee : M.Functions)
          if (Callee.IsOutlined && Callee.Name == MI.operand(0).getSym())
            OutlinedCallsOutlined = true;
  }
  EXPECT_TRUE(OutlinedCallsOutlined);
}

TEST(RepeatedOutlinerTest, SemanticsShapePreserved) {
  // Structural check: every BL introduced by outlining targets an existing
  // outlined function, and block counts of original functions are intact.
  Program P;
  Module &M = P.addModule("m");
  fillNested(P, M, 16, 6);
  unsigned OrigFuncs = static_cast<unsigned>(M.Functions.size());
  runRepeatedOutliner(P, M, 5);

  // Map symbol -> function presence.
  std::vector<bool> Defined(P.numSymbols(), false);
  for (const MachineFunction &MF : M.Functions)
    Defined[MF.Name] = true;
  for (const MachineFunction &MF : M.Functions)
    for (const MachineBasicBlock &MBB : MF.Blocks)
      for (const MachineInstr &MI : MBB.Instrs)
        if (MI.opcode() == Opcode::BL || MI.opcode() == Opcode::Btail) {
          uint32_t Sym = MI.operand(0).getSym();
          EXPECT_TRUE(Defined[Sym])
              << "dangling call to " << P.symbolName(Sym);
        }
  for (unsigned I = 0; I < OrigFuncs; ++I)
    EXPECT_EQ(M.Functions[I].numBlocks(), 1u);
}

} // namespace
