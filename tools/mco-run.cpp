//===- tools/mco-run.cpp - Load and execute a dumped module ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Loads a machine module — textual MIR (as dumped by mco-build or written
/// by hand), a bare MCOB1 object container (mco-build --emit-obj), or a
/// sealed artifact straight out of the artifact cache
/// (.mco-cache/objects/*.mco; MCOB1 or legacy MCOM under the seal) —
/// optionally runs extra outlining rounds on it, and executes a function
/// under the performance model.
///
///   mco-run FILE --entry NAME [--args a,b,...] [--rounds N]
///           [-j N | --threads N] [--incremental]
///           [--icache-kb N] [--verify]
///           [--guard] [--max-retries N] [--verify-exec N]
///           [--fault-inject SPEC]
///
/// All failures propagate as Status up to main(), which is the only place
/// that turns them into a nonzero exit.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "linker/Linker.h"
#include "mir/MIRParser.h"
#include "objfile/ObjectFile.h"
#include "mir/MIRVerifier.h"
#include "outliner/OutlineGuard.h"
#include "sim/Interpreter.h"
#include "support/Checksum.h"
#include "support/Error.h"
#include "support/ExitCodes.h"
#include "support/FaultInjection.h"
#include "telemetry/Tracer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mco;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: mco-run FILE --entry NAME [--args a,b,...] "
               "[--rounds N] [-j N | --threads N] [--incremental] "
               "[--icache-kb N] [--verify]\n"
               "              [--guard] [--max-retries N] [--verify-exec N] "
               "[--fault-inject SPEC] [--trace-json FILE]\n");
}

struct RunConfig {
  std::string File;
  std::string Entry = "bench_main";
  std::vector<int64_t> Args;
  unsigned Rounds = 0;
  OutlinerOptions OOpts;
  GuardOptions GOpts;
  unsigned ICacheKb = 64;
  bool Verify = false;
  std::string FaultSpec;
  std::string TraceFile;
};

Status parseArgs(int argc, char **argv, RunConfig &C) {
  if (argc < 2)
    return MCO_ERROR_CODE(StatusCode::Usage, "missing input file");
  if (argv[1][0] == '-')
    return MCO_ERROR_CODE(StatusCode::Usage,
                          "expected input file, got option '" +
                              std::string(argv[1]) + "'");
  C.File = argv[1];
  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    auto NextOr = [&](const char *&V) -> Status {
      if (I + 1 >= argc)
        return MCO_ERROR_CODE(StatusCode::Usage,
                              "option '" + A + "' requires a value");
      V = argv[++I];
      return Status::success();
    };
    const char *V = nullptr;
    if (A == "--entry") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Entry = V;
    } else if (A == "--args") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      std::stringstream SS{std::string(V)};
      std::string Tok;
      while (std::getline(SS, Tok, ','))
        C.Args.push_back(std::strtoll(Tok.c_str(), nullptr, 10));
    } else if (A == "--rounds") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Rounds = static_cast<unsigned>(std::atoi(V));
    } else if (A == "-j" || A == "--threads") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.OOpts.Threads = static_cast<unsigned>(std::atoi(V));
      if (C.OOpts.Threads == 0)
        C.OOpts.Threads = 1;
    } else if (A == "--incremental") {
      C.OOpts.Incremental = true;
    } else if (A == "--icache-kb") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.ICacheKb = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--verify") {
      C.Verify = true;
    } else if (A == "--guard") {
      C.GOpts.Enabled = true;
    } else if (A == "--max-retries") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.GOpts.MaxRetriesPerRound = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--verify-exec") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.GOpts.VerifyExecSamples = static_cast<unsigned>(std::atoi(V));
      C.GOpts.Enabled = true;
    } else if (A == "--fault-inject") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.FaultSpec = V;
    } else if (A == "--trace-json") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.TraceFile = V;
    } else {
      return MCO_ERROR_CODE(StatusCode::Usage, "unknown option '" + A + "'");
    }
  }
  return Status::success();
}

Status run(RunConfig &C) {
  if (!C.FaultSpec.empty()) {
    if (Status S = FaultInjection::instance().configure(C.FaultSpec);
        !S.ok())
      return MCO_ERROR_CODE(StatusCode::Usage, S.message());
  }

  std::ifstream In(C.File, std::ios::binary);
  if (!In)
    return MCO_CORRUPT("cannot open '" + C.File + "'");
  std::stringstream Buf;
  Buf << In.rdbuf();
  const std::string Bytes = Buf.str();

  Program Prog;
  Module *M = nullptr;
  if (Bytes.rfind(ArtifactSealMagic, 0) == 0) {
    // A sealed artifact from the cache: checksum-verify, then decode the
    // binary payload (full fidelity, including outlining metadata the
    // text form drops). Current caches seal MCOB1 object containers;
    // legacy entries carry the flat MCOM payload.
    Expected<std::string> Payload = unsealArtifact(Bytes);
    if (!Payload.ok())
      return MCO_CORRUPT("sealed artifact '" + C.File +
                         "': " + Payload.status().message());
    Expected<ModuleArtifact> A =
        Payload->rfind(ObjectFileMagic, 0) == 0
            ? deserializeObjectFile(*Payload, Prog)
            : deserializeModuleArtifact(*Payload, Prog);
    if (!A.ok())
      return MCO_CORRUPT("artifact '" + C.File +
                         "': " + A.status().message());
    Prog.Modules.push_back(std::make_unique<Module>(std::move(A->M)));
    M = Prog.Modules.back().get();
    std::printf("loaded sealed artifact (checksum ok)\n");
  } else if (Bytes.rfind(ObjectFileMagic, 0) == 0) {
    // A bare MCOB1 object container (mco-build --emit-obj): validate,
    // relocate, and rebuild the module from the symbol + relocation graph.
    Expected<ModuleArtifact> A = deserializeObjectFile(Bytes, Prog);
    if (!A.ok())
      return MCO_CORRUPT("object file '" + C.File +
                         "': " + A.status().message());
    Prog.Modules.push_back(std::make_unique<Module>(std::move(A->M)));
    M = Prog.Modules.back().get();
    std::printf("loaded object container (relocations applied)\n");
  } else {
    ParseResult R = parseModule(Prog, Bytes);
    if (!R)
      return MCO_CORRUPT("parse error: " + R.Error);
    M = R.M;
  }
  std::printf("loaded %zu function(s), %llu instructions\n",
              M->Functions.size(),
              static_cast<unsigned long long>(M->numInstrs()));

  if (C.Verify) {
    VerifyOptions VOpts;
    VOpts.CheckSymbolResolution = true;
    std::string Err = verifyModule(Prog, *M, VOpts);
    if (!Err.empty())
      return MCO_CORRUPT("verification failed: " + Err);
    std::printf("module verifies\n");
  }

  if (C.Rounds > 0) {
    uint64_t Before = M->codeSize();
    if (C.GOpts.Enabled) {
      OutlineGuard Guard(Prog, Prog, *M, C.OOpts, C.GOpts);
      Guard.runGuardedRepeated(C.Rounds);
      std::printf("outlined %u guarded round(s): %.1f KB -> %.1f KB "
                  "(%llu attempt(s) rolled back, %zu pattern(s) "
                  "quarantined)\n",
                  C.Rounds, Before / 1024.0, M->codeSize() / 1024.0,
                  static_cast<unsigned long long>(
                      Guard.totalRoundsRolledBack()),
                  Guard.numQuarantinedPatterns());
      for (const std::string &F : Guard.failureLog())
        std::printf("  %s\n", F.c_str());
    } else {
      runRepeatedOutliner(Prog, *M, C.Rounds, C.OOpts);
      std::printf("outlined %u round(s): %.1f KB -> %.1f KB\n", C.Rounds,
                  Before / 1024.0, M->codeSize() / 1024.0);
    }
  }

  PerfConfig Cfg;
  Cfg.ICacheBytes = uint64_t(C.ICacheKb) << 10;
  // The Status-returning link/execute paths: an input that parsed but
  // does not link or faults under execution is corrupt input (exit 65),
  // not a tool crash.
  Expected<BinaryImage> Image = BinaryImage::create(Prog);
  if (!Image.ok())
    return MCO_CORRUPT("link failed: " + Image.status().message());
  Interpreter I(*Image, Prog, &Cfg);
  Expected<int64_t> Result = I.tryCall(C.Entry, C.Args);
  if (!Result.ok())
    return MCO_CORRUPT("execution faulted: " + Result.status().message());
  const PerfCounters &Cnt = I.counters();
  std::printf("%s(...) = %lld\n", C.Entry.c_str(),
              static_cast<long long>(*Result));
  std::printf("instrs %llu (outlined %.1f%%), cycles %.0f, IPC %.2f, "
              "I$ miss %llu, ITLB miss %llu, br miss %llu\n",
              static_cast<unsigned long long>(Cnt.Instrs),
              Cnt.Instrs ? 100.0 * Cnt.OutlinedInstrs / Cnt.Instrs : 0.0,
              Cnt.Cycles, Cnt.ipc(),
              static_cast<unsigned long long>(Cnt.ICacheMisses),
              static_cast<unsigned long long>(Cnt.ITlbMisses),
              static_cast<unsigned long long>(Cnt.BranchMispredicts));
  return Status::success();
}

} // namespace

int main(int argc, char **argv) {
  RunConfig C;
  if (Status S = parseArgs(argc, argv, C); !S.ok()) {
    std::fprintf(stderr, "mco-run: %s\n", S.render().c_str());
    usage();
    return exitCodeFor(S);
  }
  if (!C.TraceFile.empty())
    Tracer::instance().enable();
  Status S = run(C);
  if (!C.TraceFile.empty()) {
    Tracer::instance().disable();
    if (Status TS = Tracer::instance().exportChromeJson(C.TraceFile);
        !TS.ok()) {
      std::fprintf(stderr, "mco-run: %s\n", TS.render().c_str());
      if (S.ok())
        return ExitInternal;
    } else {
      std::printf("wrote trace to %s\n", C.TraceFile.c_str());
    }
  }
  if (!S.ok()) {
    std::fprintf(stderr, "mco-run: %s\n", S.render().c_str());
    return exitCodeFor(S);
  }
  return 0;
}
