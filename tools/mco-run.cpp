//===- tools/mco-run.cpp - Load and execute a dumped module ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Loads a textual machine module (as dumped by mco-build or written by
/// hand), optionally runs extra outlining rounds on it, and executes a
/// function under the performance model.
///
///   mco-run FILE --entry NAME [--args a,b,...] [--rounds N]
///           [-j N | --threads N] [--incremental]
///           [--icache-kb N] [--verify]
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "mir/MIRParser.h"
#include "mir/MIRVerifier.h"
#include "outliner/MachineOutliner.h"
#include "sim/Interpreter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mco;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mco-run FILE --entry NAME [--args a,b,...] "
                 "[--rounds N] [-j N | --threads N] [--incremental] "
                 "[--icache-kb N] [--verify]\n");
    return 1;
  }
  std::string File = argv[1];
  std::string Entry = "bench_main";
  std::vector<int64_t> Args;
  unsigned Rounds = 0;
  unsigned Threads = 1;
  bool Incremental = false;
  unsigned ICacheKb = 64;
  bool Verify = false;

  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        std::exit(1);
      return argv[++I];
    };
    if (A == "--entry")
      Entry = Next();
    else if (A == "--args") {
      std::stringstream SS(Next());
      std::string Tok;
      while (std::getline(SS, Tok, ','))
        Args.push_back(std::strtoll(Tok.c_str(), nullptr, 10));
    } else if (A == "--rounds")
      Rounds = static_cast<unsigned>(std::atoi(Next()));
    else if (A == "-j" || A == "--threads") {
      Threads = static_cast<unsigned>(std::atoi(Next()));
      if (Threads == 0)
        Threads = 1;
    } else if (A == "--incremental")
      Incremental = true;
    else if (A == "--icache-kb")
      ICacheKb = static_cast<unsigned>(std::atoi(Next()));
    else if (A == "--verify")
      Verify = true;
    else
      return 1;
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "mco-run: cannot open '%s'\n", File.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  Program Prog;
  ParseResult R = parseModule(Prog, Buf.str());
  if (!R) {
    std::fprintf(stderr, "mco-run: parse error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("loaded %zu function(s), %llu instructions\n",
              R.M->Functions.size(),
              static_cast<unsigned long long>(R.M->numInstrs()));

  if (Verify) {
    VerifyOptions VOpts;
    VOpts.CheckSymbolResolution = true;
    std::string Err = verifyModule(Prog, *R.M, VOpts);
    if (!Err.empty()) {
      std::fprintf(stderr, "mco-run: verification failed: %s\n",
                   Err.c_str());
      return 1;
    }
    std::printf("module verifies\n");
  }

  if (Rounds > 0) {
    uint64_t Before = R.M->codeSize();
    OutlinerOptions OOpts;
    OOpts.Threads = Threads;
    OOpts.Incremental = Incremental;
    runRepeatedOutliner(Prog, *R.M, Rounds, OOpts);
    std::printf("outlined %u round(s): %.1f KB -> %.1f KB\n", Rounds,
                Before / 1024.0, R.M->codeSize() / 1024.0);
  }

  PerfConfig Cfg;
  Cfg.ICacheBytes = uint64_t(ICacheKb) << 10;
  BinaryImage Image(Prog);
  Interpreter I(Image, Prog, &Cfg);
  int64_t Result = I.call(Entry, Args);
  const PerfCounters &C = I.counters();
  std::printf("%s(...) = %lld\n", Entry.c_str(),
              static_cast<long long>(Result));
  std::printf("instrs %llu (outlined %.1f%%), cycles %.0f, IPC %.2f, "
              "I$ miss %llu, ITLB miss %llu, br miss %llu\n",
              static_cast<unsigned long long>(C.Instrs),
              C.Instrs ? 100.0 * C.OutlinedInstrs / C.Instrs : 0.0,
              C.Cycles, C.ipc(),
              static_cast<unsigned long long>(C.ICacheMisses),
              static_cast<unsigned long long>(C.ITlbMisses),
              static_cast<unsigned long long>(C.BranchMispredicts));
  return 0;
}
