//===- tools/mco-buildd.cpp - The outlining build daemon ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Outlining-as-a-service: a long-lived daemon accepting `mco-rpc-v1`
/// build requests over a Unix socket (see daemon/BuildService.h for the
/// failure-domain design: bounded queue + retry_after backpressure,
/// request watchdogs, the degradation ladder, and --resume crash
/// recovery).
///
///   mco-buildd --socket PATH --state DIR
///              [--workers N] [--queue-limit N]
///              [--request-timeout-ms N] [--request-retries N]
///              [--module-timeout-ms N] [--timeout-retries N]
///              [--cache-max-bytes N] [--threads N]
///              [--resume] [--fault-inject SPEC]
///
/// Runs in the foreground until a client sends `shutdown` or the process
/// receives SIGINT/SIGTERM. kill -9 is the supported crash mode: the next
/// `mco-buildd --resume` on the same state dir replays exactly the
/// unfinished requests, byte-identically.
///
//===----------------------------------------------------------------------===//

#include "daemon/BuildService.h"
#include "support/FaultInjection.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace mco;

namespace {

BuildService *ActiveService = nullptr;

void onSignal(int) {
  if (ActiveService)
    ActiveService->requestStop();
}

void usage() {
  std::fprintf(
      stderr,
      "usage: mco-buildd --socket PATH --state DIR\n"
      "                  [--workers N] [--queue-limit N]\n"
      "                  [--request-timeout-ms N] [--request-retries N]\n"
      "                  [--module-timeout-ms N] [--timeout-retries N]\n"
      "                  [--cache-max-bytes N] [--threads N]\n"
      "                  [--resume] [--fault-inject SPEC]\n"
      "  --socket PATH  Unix socket to listen on\n"
      "  --state DIR    daemon state: lock, request table, shared cache,\n"
      "                 per-request journals\n"
      "  --workers N    concurrent build workers (default 2)\n"
      "  --queue-limit N  queued-request bound; past it clients get\n"
      "                 retry_after (default 8)\n"
      "  --request-timeout-ms N  per-request watchdog deadline; 0 = off\n"
      "  --request-retries N  watchdog retries, each with double the\n"
      "                 deadline, before the unoutlined degraded rebuild\n"
      "  --module-timeout-ms N / --timeout-retries N  the pipeline's\n"
      "                 per-module watchdog, passed through\n"
      "  --cache-max-bytes N  shared-cache size budget\n"
      "  --threads N    build threads per request (default 1)\n"
      "  --resume       replay unfinished requests from the request\n"
      "                 table before serving\n"
      "  --fault-inject SPEC  site[@round][:rate[,seed]][;...]\n");
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (!End || *End)
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  DaemonOptions Opts;
  std::string FaultSpec;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    uint64_t V = 0;
    const char *Arg = nullptr;
    if (A == "--socket" && (Arg = Next())) {
      Opts.SocketPath = Arg;
    } else if (A == "--state" && (Arg = Next())) {
      Opts.StateDir = Arg;
    } else if (A == "--workers" && (Arg = Next()) && parseU64(Arg, V)) {
      Opts.Workers = unsigned(V);
    } else if (A == "--queue-limit" && (Arg = Next()) && parseU64(Arg, V)) {
      Opts.QueueLimit = unsigned(V);
    } else if (A == "--request-timeout-ms" && (Arg = Next()) &&
               parseU64(Arg, V)) {
      Opts.RequestTimeoutMs = V;
    } else if (A == "--request-retries" && (Arg = Next()) &&
               parseU64(Arg, V)) {
      Opts.RequestRetries = unsigned(V);
    } else if (A == "--module-timeout-ms" && (Arg = Next()) &&
               parseU64(Arg, V)) {
      Opts.ModuleTimeoutMs = V;
    } else if (A == "--timeout-retries" && (Arg = Next()) &&
               parseU64(Arg, V)) {
      Opts.TimeoutRetries = unsigned(V);
    } else if (A == "--cache-max-bytes" && (Arg = Next()) &&
               parseU64(Arg, V)) {
      Opts.CacheMaxBytes = V;
    } else if (A == "--threads" && (Arg = Next()) && parseU64(Arg, V)) {
      Opts.BuildThreads = unsigned(V);
    } else if (A == "--resume") {
      Opts.Resume = true;
    } else if (A == "--fault-inject" && (Arg = Next())) {
      FaultSpec = Arg;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "mco-buildd: bad argument '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (Opts.SocketPath.empty() || Opts.StateDir.empty()) {
    usage();
    return 2;
  }

  if (!FaultSpec.empty()) {
    if (Status S = FaultInjection::instance().configure(FaultSpec); !S.ok()) {
      std::fprintf(stderr, "mco-buildd: %s\n", S.render().c_str());
      return 1;
    }
  }

  BuildService Service(Opts);
  if (Status S = Service.start(); !S.ok()) {
    std::fprintf(stderr, "mco-buildd: %s\n", S.render().c_str());
    return 1;
  }

  ActiveService = &Service;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::fprintf(stderr, "mco-buildd: serving on %s (state %s, %u workers)\n",
               Opts.SocketPath.c_str(), Opts.StateDir.c_str(),
               std::max(1u, Opts.Workers));
  Service.serve();
  ActiveService = nullptr;

  const DaemonStats &St = Service.stats();
  std::fprintf(stderr,
               "mco-buildd: stopped; received=%llu completed=%llu "
               "degraded=%llu failed=%llu rejected=%llu resumed=%llu\n",
               (unsigned long long)St.RequestsReceived.load(),
               (unsigned long long)St.RequestsCompleted.load(),
               (unsigned long long)St.RequestsDegraded.load(),
               (unsigned long long)St.RequestsFailed.load(),
               (unsigned long long)St.RequestsRejected.load(),
               (unsigned long long)St.RequestsResumed.load());
  return 0;
}
