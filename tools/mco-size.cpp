//===- tools/mco-size.cpp - Segment/section/page size breakdown -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// `size -m` for the MCOB1 container: per-segment and per-section vm sizes
/// plus the 16 KiB page accounting the paper measures apps by. Page counts
/// use the same arithmetic as the first-touch TextPageModel: the number of
/// BinaryImage::PageSize pages a section's [vmaddr, vmaddr+vmsize) span
/// touches.
///
///   mco-size FILE [--pages]
///
/// --pages additionally prints one line per occupied page. FILE may be a
/// bare container or an MCOA1-sealed one. Corrupt input exits 65; usage
/// errors exit 64.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "linker/Linker.h"
#include "objfile/ObjectFile.h"
#include "support/Checksum.h"
#include "support/Error.h"
#include "support/ExitCodes.h"
#include "support/FileAtomics.h"

#include <algorithm>
#include <cstdio>
#include <string>

using namespace mco;

namespace {

void usage() {
  std::fprintf(stderr, "usage: mco-size FILE [--pages]\n");
}

struct SizeConfig {
  std::string File;
  bool Pages = false;
};

Status parseArgs(int argc, char **argv, SizeConfig &C) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--pages") {
      C.Pages = true;
    } else if (!A.empty() && A[0] == '-') {
      return MCO_ERROR_CODE(StatusCode::Usage, "unknown option '" + A + "'");
    } else if (C.File.empty()) {
      C.File = A;
    } else {
      return MCO_ERROR_CODE(StatusCode::Usage,
                            "unexpected argument '" + A + "'");
    }
  }
  if (C.File.empty())
    return MCO_ERROR_CODE(StatusCode::Usage, "missing input file");
  return Status::success();
}

/// Pages a [vmaddr, vmaddr+vmsize) span touches — identical to counting
/// first-touch faults when every byte of the span is accessed.
uint64_t pagesOf(uint64_t VmAddr, uint64_t VmSize) {
  if (VmSize == 0)
    return 0;
  const uint64_t First = VmAddr / BinaryImage::PageSize;
  const uint64_t Last = (VmAddr + VmSize - 1) / BinaryImage::PageSize;
  return Last - First + 1;
}

Status run(const SizeConfig &C) {
  Expected<std::string> Bytes = readFileBytes(C.File);
  if (!Bytes.ok())
    return MCO_CORRUPT("cannot read '" + C.File +
                       "': " + Bytes.status().message());
  std::string Raw = std::move(*Bytes);
  if (Raw.rfind(ArtifactSealMagic, 0) == 0) {
    Expected<std::string> Payload = unsealArtifact(Raw);
    if (!Payload.ok())
      return MCO_CORRUPT("sealed artifact '" + C.File +
                         "': " + Payload.status().message());
    Raw = std::move(*Payload);
  }
  Expected<LoadedObject> O = readObjectFile(Raw);
  if (!O.ok())
    return MCO_CORRUPT("'" + C.File + "': " + O.status().message());

  uint64_t TotalBytes = 0;
  uint64_t TotalPages = 0;
  for (const ObjSectionInfo &S : O->Sections) {
    const uint64_t Pages = pagesOf(S.VmAddr, S.VmSize);
    std::printf("Segment %s: %llu bytes\n", S.Segment.c_str(),
                static_cast<unsigned long long>(S.VmSize));
    std::printf("  Section %s,%s: %llu bytes, vmaddr 0x%llx, "
                "%llu page(s) of %llu bytes\n",
                S.Segment.c_str(), S.Name.c_str(),
                static_cast<unsigned long long>(S.VmSize),
                static_cast<unsigned long long>(S.VmAddr),
                static_cast<unsigned long long>(Pages),
                static_cast<unsigned long long>(BinaryImage::PageSize));
    if (C.Pages && S.VmSize > 0) {
      const uint64_t First = S.VmAddr / BinaryImage::PageSize;
      for (uint64_t P = 0; P < Pages; ++P) {
        const uint64_t Base = (First + P) * BinaryImage::PageSize;
        const uint64_t Lo = std::max(S.VmAddr, Base);
        const uint64_t Hi =
            std::min(S.VmAddr + S.VmSize, Base + BinaryImage::PageSize);
        std::printf("    page 0x%llx: %llu bytes\n",
                    static_cast<unsigned long long>(Base),
                    static_cast<unsigned long long>(Hi - Lo));
      }
    }
    TotalBytes += S.VmSize;
    TotalPages += Pages;
  }
  std::printf("total %llu bytes, %llu page(s)\n",
              static_cast<unsigned long long>(TotalBytes),
              static_cast<unsigned long long>(TotalPages));
  return Status::success();
}

} // namespace

int main(int argc, char **argv) {
  SizeConfig C;
  if (Status S = parseArgs(argc, argv, C); !S.ok()) {
    std::fprintf(stderr, "mco-size: %s\n", S.render().c_str());
    usage();
    return exitCodeFor(S);
  }
  if (Status S = run(C); !S.ok()) {
    std::fprintf(stderr, "mco-size: %s\n", S.render().c_str());
    return exitCodeFor(S);
  }
  return 0;
}
