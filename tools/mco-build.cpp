//===- tools/mco-build.cpp - Command-line build driver --------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The command-line analogue of the paper artifact's run scripts: pick a
/// corpus profile, a pipeline, and a repeat count (the artifact's
/// `-outline-repeat-count=<uint>` flag), build, and report sizes and
/// statistics. Optionally dumps the final module as text (reloadable with
/// mco-run) or prints the top repeated patterns.
///
///   mco-build [--profile rider|driver|eats|clang|kernel]
///             [--modules N] [--rounds N] [--per-module]
///             [-j N | --threads N] [--incremental]
///             [--interleave-data] [--normalize-commutative]
///             [--hot-layout] [--print-patterns N] [--dump FILE]
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "mir/MIRPrinter.h"
#include "outliner/PatternStats.h"
#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"
#include "transforms/Transforms.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace mco;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: mco-build [--profile rider|driver|eats|clang|kernel]\n"
      "                 [--modules N] [--rounds N] [--per-module]\n"
      "                 [-j N | --threads N] [--incremental]\n"
      "                 [--interleave-data] [--normalize-commutative]\n"
      "                 [--hot-layout] [--print-patterns N] "
      "[--dump FILE]\n"
      "  -j N           worker threads for synthesis and outlining\n"
      "                 (output is bit-identical at any N)\n"
      "  --incremental  reuse mapping/liveness across outlining rounds\n");
}

} // namespace

int main(int argc, char **argv) {
  AppProfile Profile = AppProfile::uberRider();
  PipelineOptions Opts;
  Opts.OutlineRounds = 5;
  bool Normalize = false;
  bool HotLayout = false;
  unsigned PrintPatterns = 0;
  std::string DumpFile;
  int ModulesOverride = -1;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++I];
    };
    if (A == "--profile") {
      std::string P = Next();
      if (P == "rider")
        Profile = AppProfile::uberRider();
      else if (P == "driver")
        Profile = AppProfile::uberDriver();
      else if (P == "eats")
        Profile = AppProfile::uberEats();
      else if (P == "clang")
        Profile = AppProfile::clangCompiler();
      else if (P == "kernel")
        Profile = AppProfile::linuxKernel();
      else {
        usage();
        return 1;
      }
    } else if (A == "--modules") {
      ModulesOverride = std::atoi(Next());
    } else if (A == "--rounds") {
      Opts.OutlineRounds = static_cast<unsigned>(std::atoi(Next()));
    } else if (A == "--per-module") {
      Opts.WholeProgram = false;
    } else if (A == "-j" || A == "--threads") {
      Opts.Threads = static_cast<unsigned>(std::atoi(Next()));
      if (Opts.Threads == 0)
        Opts.Threads = 1;
    } else if (A == "--incremental") {
      Opts.Outliner.Incremental = true;
    } else if (A == "--interleave-data") {
      Opts.DataLayout = DataLayoutMode::Interleaved;
    } else if (A == "--normalize-commutative") {
      Normalize = true;
    } else if (A == "--hot-layout") {
      HotLayout = true;
    } else if (A == "--print-patterns") {
      PrintPatterns = static_cast<unsigned>(std::atoi(Next()));
    } else if (A == "--dump") {
      DumpFile = Next();
    } else {
      usage();
      return 1;
    }
  }
  if (ModulesOverride > 0)
    Profile.NumModules = static_cast<unsigned>(ModulesOverride);

  std::printf("profile %s, %u modules, %s pipeline, %u round(s), "
              "%u thread(s)%s\n",
              Profile.Name.c_str(), Profile.NumModules,
              Opts.WholeProgram ? "whole-program" : "per-module",
              Opts.OutlineRounds, Opts.Threads,
              Opts.Outliner.Incremental ? ", incremental" : "");

  auto Prog =
      CorpusSynthesizer(Profile).withThreads(Opts.Threads).generate();
  uint64_t SizeBefore = Prog->codeSize();

  if (Normalize) {
    // Pre-normalization runs per module (before any merge), as a compiler
    // pass would.
    uint64_t Canon = 0;
    for (auto &M : Prog->Modules)
      Canon += normalizeCommutativeOperands(*Prog, *M).SequencesRewritten;
    std::printf("normalized %llu commutative instruction(s)\n",
                static_cast<unsigned long long>(Canon));
  }

  BuildResult R = buildProgram(*Prog, Opts);
  if (HotLayout)
    layoutOutlinedByHotness(*Prog, *Prog->Modules[0]);

  std::printf("code size: %.1f KB -> %.1f KB (%.1f%% saved)\n",
              SizeBefore / 1024.0, R.CodeSize / 1024.0,
              100.0 * (double(SizeBefore) - double(R.CodeSize)) /
                  double(SizeBefore));
  for (size_t I = 0; I < R.OutlineStats.Rounds.size(); ++I) {
    const OutlineRoundStats &RS = R.OutlineStats.Rounds[I];
    std::printf("  round %zu: %llu sequences -> %llu functions, "
                "%llu bytes saved (%.2fs)\n",
                I + 1,
                static_cast<unsigned long long>(RS.SequencesOutlined),
                static_cast<unsigned long long>(RS.FunctionsCreated),
                static_cast<unsigned long long>(RS.bytesSaved()),
                I < R.OutlineRoundSeconds.size() ? R.OutlineRoundSeconds[I]
                                                 : 0.0);
  }
  std::printf("build phases: link %.2fs, outline %.2fs, layout %.2fs\n",
              R.LinkIRSeconds, R.OutlineSeconds, R.LayoutSeconds);

  if (PrintPatterns > 0) {
    PatternAnalysis A =
        analyzePatterns(*Prog, *Prog->Modules[0], {}, PrintPatterns);
    std::printf("\ntop repeated patterns (post-build):\n");
    for (unsigned I = 0; I < PrintPatterns && I < A.Patterns.size(); ++I)
      std::printf("-- rank %u: %llu x %u instrs\n%s\n", A.Patterns[I].Rank,
                  static_cast<unsigned long long>(A.Patterns[I].Frequency),
                  A.Patterns[I].Length, A.Patterns[I].Text.c_str());
  }

  if (!DumpFile.empty()) {
    std::ofstream Out(DumpFile);
    Out << printModule(*Prog->Modules[0], *Prog);
    std::printf("dumped module to %s\n", DumpFile.c_str());
  }
  return 0;
}
