//===- tools/mco-build.cpp - Command-line build driver --------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The command-line analogue of the paper artifact's run scripts: pick a
/// corpus profile, a pipeline, and a repeat count (the artifact's
/// `-outline-repeat-count=<uint>` flag), build, and report sizes and
/// statistics. Optionally dumps the final module as text (reloadable with
/// mco-run) or prints the top repeated patterns.
///
///   mco-build [--profile rider|driver|eats|clang|kernel|TRACES.json]
///             [--layout original|bp|stitch] [--data-layout MODE]
///             [--modules N] [--rounds N] [--per-module]
///             [-j N | --threads N] [--incremental]
///             [--discovery tree|sarray]
///             [--interleave-data] [--normalize-commutative]
///             [--hot-layout] [--print-patterns N] [--dump FILE]
///             [--guard] [--max-retries N] [--verify-exec N]
///             [--fault-inject SPEC] [--diag-json FILE]
///             [--cache] [--cache-dir DIR] [--resume DIR]
///             [--shared-cache] [--journal-dir DIR]
///             [--module-timeout-ms N] [--timeout-retries N]
///             [--profile-heat FILE] [--hot-threshold PCT]
///             [--size-remarks FILE]
///
/// All failures propagate as Status up to main(), which is the only place
/// that turns them into a nonzero exit — after writing the --diag-json
/// report (with an "error" field), so a failed build still leaves a
/// machine-readable record of how far it got.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "linker/Linker.h"
#include "mir/MIRPrinter.h"
#include "mir/MIRVerifier.h"
#include "objfile/ObjectFile.h"
#include "outliner/PatternStats.h"
#include "pipeline/BuildPipeline.h"
#include "support/Error.h"
#include "support/ExitCodes.h"
#include "support/FaultInjection.h"
#include "support/FileAtomics.h"
#include "synth/CorpusSynthesizer.h"
#include "telemetry/Metrics.h"
#include "telemetry/Tracer.h"
#include "transforms/Transforms.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace mco;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: mco-build [--profile rider|driver|eats|clang|kernel|FILE]\n"
      "                 [--layout original|bp|stitch]\n"
      "                 [--data-layout preserve|interleave]\n"
      "                 [--modules N] [--rounds N] [--per-module]\n"
      "                 [-j N | --threads N] [--incremental]\n"
      "                 [--discovery tree|sarray]\n"
      "                 [--interleave-data] [--normalize-commutative]\n"
      "                 [--hot-layout] [--print-patterns N] "
      "[--dump FILE]\n"
      "                 [--guard] [--max-retries N] [--verify-exec N]\n"
      "                 [--fault-inject SPEC] [--diag-json FILE]\n"
      "                 [--cache] [--cache-dir DIR] [--resume DIR]\n"
      "                 [--shared-cache] [--journal-dir DIR]\n"
      "                 [--module-timeout-ms N] [--timeout-retries N]\n"
      "                 [--trace-json FILE] [--pattern-provenance FILE]\n"
      "                 [--dead-strip | --no-dead-strip] [--export LIST]\n"
      "                 [--profile-heat FILE] [--hot-threshold PCT]\n"
      "                 [--size-remarks FILE] [--emit-obj FILE]\n"
      "  --profile X    corpus profile to synthesize, or the path of an\n"
      "                 mco-traces-v1 startup-trace file (mco-fleet\n"
      "                 --emit-traces) driving the layout strategy; the\n"
      "                 two uses may be combined by passing both\n"
      "  --layout S     code-layout strategy for the final image:\n"
      "                 original (module order, default), bp (balanced\n"
      "                 partitioning), stitch (Codestitcher chains)\n"
      "  --data-layout preserve|interleave  global-data ordering; alias\n"
      "                 of --interleave-data folded into the strategy\n"
      "  -j N           worker threads for synthesis and outlining\n"
      "                 (output is bit-identical at any N)\n"
      "  --incremental  reuse mapping/liveness across outlining rounds\n"
      "  --discovery tree|sarray  candidate discovery engine: Ukkonen\n"
      "                 suffix tree or SA-IS suffix array (default;\n"
      "                 same output, faster discovery)\n"
      "  --guard        verify every outlining round; roll back and\n"
      "                 quarantine on failure\n"
      "  --verify-exec N  also execute N sampled functions before/after\n"
      "                 each round and compare outcomes (implies --guard)\n"
      "  --fault-inject SPEC  deterministic fault injection;\n"
      "                 SPEC = site[@round][:rate[,seed]][;...]\n"
      "  --diag-json FILE  write a machine-readable build report\n"
      "  --cache        cache per-module artifacts in ./.mco-cache\n"
      "  --cache-dir DIR  like --cache, in DIR\n"
      "  --resume DIR   skip modules a prior (crashed) build in DIR\n"
      "                 already finished\n"
      "  --shared-cache   the cache is shared with concurrent clients;\n"
      "                 stores go through the single-writer lock\n"
      "  --journal-dir DIR  keep this build's lock + journal in DIR\n"
      "                 (required for concurrent sharers of one cache)\n"
      "  --cache-max-bytes N  cache size budget; LRU-evicted past it\n"
      "  --module-timeout-ms N  per-module outlining deadline; modules\n"
      "                 that time out through every retry ship unoutlined\n"
      "  --timeout-retries N  extra attempts after a timeout, each with\n"
      "                 double the deadline (default 2)\n"
      "  --trace-json FILE  export build spans as Chrome trace_event JSON\n"
      "                 (load in chrome://tracing or Perfetto)\n"
      "  --pattern-provenance FILE  write a JSON report mapping each\n"
      "                 post-build repeated pattern (by hash) to the\n"
      "                 modules/functions it originates from\n"
      "  --dead-strip   whole-program dead-code elimination before\n"
      "                 outlining: unreachable functions and globals are\n"
      "                 removed (roots: main, bench_main, span_*, and\n"
      "                 --export names)\n"
      "  --no-dead-strip  the escape hatch: force dead-strip off\n"
      "  --export LIST  comma-separated extra exported symbol names, kept\n"
      "                 as dead-strip roots and marked Exported in the\n"
      "                 emitted container's symbol table + export trie\n"
      "  --profile-heat FILE  mco-heat-v1 per-function heat profile\n"
      "                 (mco-fleet --emit-heat) steering hot/cold\n"
      "                 outlining; validated up front (corrupt = exit 65)\n"
      "  --hot-threshold PCT  hot percentile in [0,100]: the hottest\n"
      "                 (100-PCT)%% of executed functions are never\n"
      "                 outlined, never-executed ones are outlined\n"
      "                 aggressively; 0 (default) disables heat guidance\n"
      "  --size-remarks FILE  write per-function size remarks (before/\n"
      "                 after MI counts, hotness, suppressed candidates);\n"
      "                 YAML by default, JSON when FILE ends in .json\n"
      "  --emit-obj FILE  write the built program as an MCOB1 object\n"
      "                 container (segments, symbol table, export trie,\n"
      "                 relocations; inspect with mco-nm/mco-size, execute\n"
      "                 with mco-run)\n");
}

/// Everything the command line configures.
struct BuildConfig {
  AppProfile Profile = AppProfile::uberRider();
  PipelineOptions Opts;
  bool Normalize = false;
  bool HotLayout = false;
  unsigned PrintPatterns = 0;
  std::string DumpFile;
  std::string EmitObjFile;
  std::string DiagFile;
  std::string FaultSpec;
  std::string TraceFile;
  std::string ProvenanceFile;
  std::string SizeRemarksFile;
  int ModulesOverride = -1;
};

Status parseArgs(int argc, char **argv, BuildConfig &C) {
  C.Opts.OutlineRounds = 5;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    auto NextOr = [&](const char *&V) -> Status {
      V = Next();
      if (!V)
        return MCO_ERROR_CODE(StatusCode::Usage,
                              "option '" + A + "' requires a value");
      return Status::success();
    };
    const char *V = nullptr;
    if (A == "--profile") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      std::string P = V;
      if (P == "rider")
        C.Profile = AppProfile::uberRider();
      else if (P == "driver")
        C.Profile = AppProfile::uberDriver();
      else if (P == "eats")
        C.Profile = AppProfile::uberEats();
      else if (P == "clang")
        C.Profile = AppProfile::clangCompiler();
      else if (P == "kernel")
        C.Profile = AppProfile::linuxKernel();
      else if (std::ifstream(P).good())
        // Dual use: a path names an mco-traces-v1 startup-trace profile
        // feeding the layout strategy (the measure->layout->verify loop).
        C.Opts.Layout.ProfilePath = P;
      else
        return MCO_ERROR_CODE(StatusCode::Usage, "unknown profile '" + P +
                         "' (not a corpus name or a readable trace file)");
    } else if (A == "--modules") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.ModulesOverride = std::atoi(V);
    } else if (A == "--rounds") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.OutlineRounds = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--per-module") {
      C.Opts.WholeProgram = false;
    } else if (A == "-j" || A == "--threads") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Threads = static_cast<unsigned>(std::atoi(V));
      if (C.Opts.Threads == 0)
        C.Opts.Threads = 1;
    } else if (A == "--incremental") {
      C.Opts.Outliner.Incremental = true;
    } else if (A == "--discovery") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      std::string E = V;
      if (E == "tree")
        C.Opts.Outliner.Discovery = DiscoveryEngine::Tree;
      else if (E == "sarray")
        C.Opts.Outliner.Discovery = DiscoveryEngine::SuffixArray;
      else
        return MCO_ERROR_CODE(StatusCode::Usage,
                              "unknown discovery engine '" + E +
                         "' (expected 'tree' or 'sarray')");
    } else if (A == "--interleave-data") {
      C.Opts.DataLayout = DataLayoutMode::Interleaved;
    } else if (A == "--data-layout") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      std::string M = V;
      if (M == "preserve")
        C.Opts.DataLayout = DataLayoutMode::PreserveModuleOrder;
      else if (M == "interleave")
        C.Opts.DataLayout = DataLayoutMode::Interleaved;
      else
        return MCO_ERROR_CODE(StatusCode::Usage, "unknown data layout '" + M +
                         "' (expected 'preserve' or 'interleave')");
    } else if (A == "--layout") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      std::string L = V;
      bool Known = false;
      for (const std::string &N : layoutStrategyNames())
        Known |= N == L;
      if (!Known) {
        std::string Valid;
        for (const std::string &N : layoutStrategyNames())
          Valid += (Valid.empty() ? "" : ", ") + N;
        return MCO_ERROR_CODE(StatusCode::Usage,
                            "unknown layout strategy '" + L + "' (expected " +
                         Valid + ")");
      }
      C.Opts.Layout.Strategy = L;
    } else if (A == "--normalize-commutative") {
      C.Normalize = true;
    } else if (A == "--hot-layout") {
      C.HotLayout = true;
    } else if (A == "--print-patterns") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.PrintPatterns = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--dump") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.DumpFile = V;
    } else if (A == "--emit-obj") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.EmitObjFile = V;
    } else if (A == "--dead-strip") {
      C.Opts.DeadStrip.Enabled = true;
    } else if (A == "--no-dead-strip") {
      C.Opts.DeadStrip.Enabled = false;
    } else if (A == "--export") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      std::string Name;
      for (const char *P = V;; ++P) {
        if (*P == ',' || *P == '\0') {
          if (!Name.empty())
            C.Opts.DeadStrip.ExportedSymbols.push_back(Name);
          Name.clear();
          if (*P == '\0')
            break;
        } else {
          Name += *P;
        }
      }
    } else if (A == "--guard") {
      C.Opts.Guard.Enabled = true;
    } else if (A == "--max-retries") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Guard.MaxRetriesPerRound = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--verify-exec") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Guard.VerifyExecSamples = static_cast<unsigned>(std::atoi(V));
      C.Opts.Guard.Enabled = true;
    } else if (A == "--fault-inject") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.FaultSpec = V;
    } else if (A == "--diag-json") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.DiagFile = V;
    } else if (A == "--cache") {
      if (C.Opts.Resilience.CacheDir.empty())
        C.Opts.Resilience.CacheDir = "./.mco-cache";
    } else if (A == "--cache-dir") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Resilience.CacheDir = V;
    } else if (A == "--resume") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Resilience.CacheDir = V;
      C.Opts.Resilience.Resume = true;
    } else if (A == "--shared-cache") {
      C.Opts.Resilience.SharedCache = true;
    } else if (A == "--journal-dir") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Resilience.JournalDir = V;
    } else if (A == "--cache-max-bytes") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Resilience.CacheMaxBytes =
          static_cast<uint64_t>(std::atoll(V));
    } else if (A == "--module-timeout-ms") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Resilience.ModuleTimeoutMs =
          static_cast<uint64_t>(std::atoll(V));
    } else if (A == "--timeout-retries") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Opts.Resilience.TimeoutRetries = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--trace-json") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.TraceFile = V;
    } else if (A == "--pattern-provenance") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.ProvenanceFile = V;
    } else if (A == "--profile-heat") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      // Validate up front: an unreadable or corrupt profile is a CLI
      // error (exit 65), not a silent degrade like the daemon route.
      if (Expected<HeatProfile> H = readHeatProfile(V); !H.ok())
        return H.status();
      C.Opts.Heat.ProfilePath = V;
    } else if (A == "--hot-threshold") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      const int Pct = std::atoi(V);
      if (Pct < 0 || Pct > 100 ||
          (Pct == 0 && std::string(V) != "0" && std::string(V) != "00"))
        return MCO_ERROR_CODE(StatusCode::Usage,
                              "bad --hot-threshold '" + std::string(V) +
                                  "' (expected an integer in [0, 100])");
      C.Opts.Heat.HotThresholdPct = static_cast<unsigned>(Pct);
    } else if (A == "--size-remarks") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.SizeRemarksFile = V;
    } else {
      return MCO_ERROR_CODE(StatusCode::Usage,
                            "unknown option '" + A + "'");
    }
  }
  if (C.ModulesOverride > 0)
    C.Profile.NumModules = static_cast<unsigned>(C.ModulesOverride);
  return Status::success();
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  return Out;
}

/// Everything the diag report needs, collected as the build progresses so
/// a failing build can still report how far it got.
struct DiagState {
  BuildResult R;
  uint64_t SizeBefore = 0;
  std::string FinalVerify;
  /// programContentDigest of the built program — the byte-identity
  /// witness compared against mco-buildd results and across crash-resume
  /// chains.
  std::string ArtifactDigest;
  std::string Error; ///< Non-empty when the build is exiting nonzero.
};

Status writeDiagJson(const std::string &Path, const BuildConfig &C,
                     const DiagState &D) {
  const BuildResult &R = D.R;
  // The counter fields below read from the one metrics registry the build
  // populated (publishBuildMetrics sets the authoritative totals at build
  // exit), so the diag report and every other exporter agree by
  // construction. Keys are unchanged from the pre-registry schema.
  const MetricsRegistry &M = MetricsRegistry::global();
  std::ofstream Out(Path);
  if (!Out)
    return MCO_ERROR("cannot open diag file '" + Path + "'");
  auto U64 = [](uint64_t V) { return std::to_string(V); };
  auto Ctr = [&M](const char *Name) {
    return std::to_string(M.counterValue(Name));
  };
  Out << "{\n";
  Out << "  \"profile\": \"" << jsonEscape(C.Profile.Name) << "\",\n";
  Out << "  \"pipeline\": \""
      << (C.Opts.WholeProgram ? "whole-program" : "per-module") << "\",\n";
  Out << "  \"rounds_requested\": " << C.Opts.OutlineRounds << ",\n";
  Out << "  \"guard\": " << (C.Opts.Guard.Enabled ? "true" : "false")
      << ",\n";
  Out << "  \"error\": \"" << jsonEscape(D.Error) << "\",\n";
  Out << "  \"code_size_before\": " << U64(D.SizeBefore) << ",\n";
  Out << "  \"code_size_after\": " << Ctr("pipeline.code_size_after")
      << ",\n";
  Out << "  \"binary_size\": " << Ctr("pipeline.binary_size") << ",\n";
  Out << "  \"layout_strategy\": \"" << jsonEscape(R.Layout.Strategy)
      << "\",\n";
  Out << "  \"layout_functions_traced\": " << U64(R.Layout.FunctionsTraced)
      << ",\n";
  Out << "  \"layout_estimated_text_faults\": "
      << U64(R.Layout.EstimatedTextFaults) << ",\n";
  Out << "  \"heat_guided\": " << (R.Remarks.HeatGuided ? "true" : "false")
      << ",\n";
  Out << "  \"heat_hot_threshold_pct\": " << R.Remarks.HotThresholdPct
      << ",\n";
  Out << "  \"heat_candidates_dropped_hot\": "
      << Ctr("pipeline.heat.candidates_dropped_hot") << ",\n";
  Out << "  \"heat_suppressed_occurrences\": "
      << U64(R.Remarks.suppressedOccurrences()) << ",\n";
  Out << "  \"modules_degraded\": " << Ctr("pipeline.modules_degraded")
      << ",\n";
  Out << "  \"rounds_rolled_back\": " << Ctr("guard.rounds_rolled_back")
      << ",\n";
  Out << "  \"patterns_quarantined\": " << Ctr("guard.patterns_quarantined")
      << ",\n";
  Out << "  \"modules_timed_out\": " << Ctr("pipeline.modules_timed_out")
      << ",\n";
  Out << "  \"watchdog_timeouts\": " << Ctr("watchdog.timeouts") << ",\n";
  Out << "  \"watchdog_retries\": " << Ctr("watchdog.retries") << ",\n";
  Out << "  \"cache_hits\": " << Ctr("cache.hits") << ",\n";
  Out << "  \"cache_misses\": " << Ctr("cache.misses") << ",\n";
  Out << "  \"cache_corrupt\": " << Ctr("cache.corrupt") << ",\n";
  Out << "  \"cache_evicted\": " << Ctr("cache.evicted") << ",\n";
  Out << "  \"modules_resumed\": " << Ctr("pipeline.modules_resumed")
      << ",\n";
  Out << "  \"stale_locks_recovered\": "
      << Ctr("cache.stale_locks_recovered") << ",\n";
  Out << "  \"cache_writer_contended\": " << Ctr("cache.writer_contended")
      << ",\n";
  Out << "  \"dce_roots\": " << Ctr("dce.roots") << ",\n";
  Out << "  \"dce_functions_removed\": " << Ctr("dce.functions_removed")
      << ",\n";
  Out << "  \"dce_bytes_removed\": " << Ctr("dce.bytes_removed") << ",\n";
  Out << "  \"dce_globals_removed\": " << Ctr("dce.globals_removed")
      << ",\n";
  Out << "  \"artifact_digest\": \"" << jsonEscape(D.ArtifactDigest)
      << "\",\n";
  Out << "  \"metrics\": " << M.toJson() << ",\n";
  Out << "  \"final_verify\": \"" << jsonEscape(D.FinalVerify) << "\",\n";
  Out << "  \"failure_log\": [";
  for (size_t I = 0; I < R.FailureLog.size(); ++I)
    Out << (I ? ", " : "") << "\"" << jsonEscape(R.FailureLog[I]) << "\"";
  Out << "],\n";
  Out << "  \"fault_sites\": [";
  const auto Sites = FaultInjection::instance().report();
  for (size_t I = 0; I < Sites.size(); ++I)
    Out << (I ? ", " : "") << "{\"site\": \"" << jsonEscape(Sites[I].Site)
        << "\", \"draws\": " << U64(Sites[I].Draws)
        << ", \"fired\": " << U64(Sites[I].Fired) << "}";
  Out << "],\n";
  Out << "  \"rounds\": [";
  for (size_t I = 0; I < R.OutlineStats.Rounds.size(); ++I) {
    const OutlineRoundStats &RS = R.OutlineStats.Rounds[I];
    Out << (I ? ", " : "") << "{\"round\": " << (I + 1)
        << ", \"sequences\": " << U64(RS.SequencesOutlined)
        << ", \"functions\": " << U64(RS.FunctionsCreated)
        << ", \"bytes_saved\": " << U64(RS.bytesSaved())
        << ", \"quarantined\": " << U64(RS.PatternsQuarantined)
        << ", \"rolled_back\": " << U64(RS.RoundsRolledBack) << "}";
  }
  Out << "]\n";
  Out << "}\n";
  if (!Out)
    return MCO_ERROR("failed writing diag file '" + Path + "'");
  return Status::success();
}

Status runBuild(BuildConfig &C, DiagState &D) {
  if (!C.FaultSpec.empty()) {
    if (Status S = FaultInjection::instance().configure(C.FaultSpec);
        !S.ok())
      return MCO_ERROR_CODE(StatusCode::Usage, S.message());
  }

  std::printf("profile %s, %u modules, %s pipeline, %u round(s), "
              "%u thread(s), %s discovery%s%s\n",
              C.Profile.Name.c_str(), C.Profile.NumModules,
              C.Opts.WholeProgram ? "whole-program" : "per-module",
              C.Opts.OutlineRounds, C.Opts.Threads,
              C.Opts.Outliner.Discovery == DiscoveryEngine::Tree ? "tree"
                                                                 : "sarray",
              C.Opts.Outliner.Incremental ? ", incremental" : "",
              C.Opts.Guard.Enabled ? ", guarded" : "");

  auto Prog =
      CorpusSynthesizer(C.Profile).withThreads(C.Opts.Threads).generate();
  uint64_t SizeBefore = Prog->codeSize();
  D.SizeBefore = SizeBefore;

  // Module names must be captured before the build: the whole-program
  // merge destroys them, and provenance only keeps origin indices.
  std::vector<std::string> ModuleNames;
  ModuleNames.reserve(Prog->Modules.size());
  for (const auto &M : Prog->Modules)
    ModuleNames.push_back(M->Name);

  if (C.Normalize) {
    // Pre-normalization runs per module (before any merge), as a compiler
    // pass would.
    uint64_t Canon = 0;
    for (auto &M : Prog->Modules)
      Canon += normalizeCommutativeOperands(*Prog, *M).SequencesRewritten;
    std::printf("normalized %llu commutative instruction(s)\n",
                static_cast<unsigned long long>(Canon));
  }

  BuildResult R = buildProgram(*Prog, C.Opts);
  D.R = R;
  D.ArtifactDigest = programContentDigest(*Prog);
  if (C.Opts.DeadStrip.Enabled)
    std::printf("dead-strip: %llu root(s), %llu/%llu function(s) removed "
                "(%llu bytes), %llu global(s) removed (%llu bytes)\n",
                static_cast<unsigned long long>(R.DeadStrip.Roots),
                static_cast<unsigned long long>(R.DeadStrip.FunctionsRemoved),
                static_cast<unsigned long long>(R.DeadStrip.FunctionsScanned),
                static_cast<unsigned long long>(R.DeadStrip.BytesRemoved),
                static_cast<unsigned long long>(R.DeadStrip.GlobalsRemoved),
                static_cast<unsigned long long>(
                    R.DeadStrip.GlobalBytesRemoved));
  if (C.HotLayout)
    layoutOutlinedByHotness(*Prog, *Prog->Modules[0]);

  std::printf("code size: %.1f KB -> %.1f KB (%.1f%% saved)\n",
              SizeBefore / 1024.0, R.CodeSize / 1024.0,
              100.0 * (double(SizeBefore) - double(R.CodeSize)) /
                  double(SizeBefore));
  for (size_t I = 0; I < R.OutlineStats.Rounds.size(); ++I) {
    const OutlineRoundStats &RS = R.OutlineStats.Rounds[I];
    std::printf("  round %zu: %llu sequences -> %llu functions, "
                "%llu bytes saved (%.2fs)\n",
                I + 1,
                static_cast<unsigned long long>(RS.SequencesOutlined),
                static_cast<unsigned long long>(RS.FunctionsCreated),
                static_cast<unsigned long long>(RS.bytesSaved()),
                I < R.OutlineRoundSeconds.size() ? R.OutlineRoundSeconds[I]
                                                 : 0.0);
  }
  std::printf("build phases: link %.2fs, outline %.2fs, layout %.2fs\n",
              R.LinkIRSeconds, R.OutlineSeconds, R.LayoutSeconds);
  if (C.Opts.Layout.Strategy != "original" ||
      !C.Opts.Layout.ProfilePath.empty())
    std::printf("code layout: strategy %s, %llu traced function(s), "
                "estimated %llu text page fault(s) (%.3fs)\n",
                R.Layout.Strategy.c_str(),
                static_cast<unsigned long long>(R.Layout.FunctionsTraced),
                static_cast<unsigned long long>(R.Layout.EstimatedTextFaults),
                R.Layout.Seconds);

  if (C.Opts.Heat.HotThresholdPct > 0) {
    uint64_t Hot = 0, Warm = 0, Cold = 0;
    for (const SizeRemark &SR : R.Remarks.Remarks)
      (SR.Heat == HeatClass::Hot ? Hot
                                 : SR.Heat == HeatClass::Cold ? Cold : Warm)++;
    uint64_t DroppedHot = 0;
    for (const OutlineRoundStats &RS : R.OutlineStats.Rounds)
      DroppedHot += RS.CandidatesDroppedHot;
    std::printf("heat: %s at P%u, %llu hot / %llu warm / %llu cold "
                "function(s), %llu candidate occurrence(s) suppressed\n",
                R.Remarks.HeatGuided ? "guided" : "degraded (no profile)",
                C.Opts.Heat.HotThresholdPct,
                static_cast<unsigned long long>(Hot),
                static_cast<unsigned long long>(Warm),
                static_cast<unsigned long long>(Cold),
                static_cast<unsigned long long>(DroppedHot));
  }
  if (!C.SizeRemarksFile.empty()) {
    if (Status S = writeSizeRemarks(R.Remarks, C.SizeRemarksFile); !S.ok())
      return S;
    std::printf("wrote size remarks to %s (%zu function(s), "
                "%zu suppressed pattern group(s))\n",
                C.SizeRemarksFile.c_str(), R.Remarks.Remarks.size(),
                R.Remarks.Suppressed.size());
  }

  const bool FaultsActive = !C.FaultSpec.empty();
  if (C.Opts.Guard.Enabled || FaultsActive) {
    std::printf("guard: %llu round attempt(s) rolled back, %llu pattern(s) "
                "quarantined, %llu module(s) degraded\n",
                static_cast<unsigned long long>(R.RoundsRolledBack),
                static_cast<unsigned long long>(R.PatternsQuarantined),
                static_cast<unsigned long long>(R.ModulesDegraded));
    const size_t MaxShown = 10;
    for (size_t I = 0; I < R.FailureLog.size() && I < MaxShown; ++I)
      std::printf("  %s\n", R.FailureLog[I].c_str());
    if (R.FailureLog.size() > MaxShown)
      std::printf("  ... and %zu more\n", R.FailureLog.size() - MaxShown);
  }

  if (!C.Opts.Resilience.CacheDir.empty())
    std::printf("cache: %llu hit(s), %llu miss(es), %llu corrupt, "
                "%llu evicted, %llu module(s) resumed, %llu stale lock(s) "
                "recovered\n",
                static_cast<unsigned long long>(R.CacheHits),
                static_cast<unsigned long long>(R.CacheMisses),
                static_cast<unsigned long long>(R.CacheCorrupt),
                static_cast<unsigned long long>(R.CacheEvicted),
                static_cast<unsigned long long>(R.ModulesResumed),
                static_cast<unsigned long long>(R.StaleLocksRecovered));
  if (C.Opts.Resilience.ModuleTimeoutMs > 0)
    std::printf("watchdog: %llu attempt(s) cancelled, %llu module(s) "
                "timed out\n",
                static_cast<unsigned long long>(R.WatchdogTimeouts),
                static_cast<unsigned long long>(R.ModulesTimedOut));

  // The robustness contract: however many faults were injected, the
  // program we ship must verify.
  std::string FinalVerify;
  if (C.Opts.Guard.Enabled || FaultsActive || !C.DiagFile.empty()) {
    VerifyOptions VOpts;
    VOpts.CheckSymbolResolution = true;
    FinalVerify = verifyModule(*Prog, *Prog->Modules[0], VOpts);
    std::printf("final verify: %s\n",
                FinalVerify.empty() ? "ok" : FinalVerify.c_str());
  }
  D.FinalVerify = FinalVerify;

  if (C.PrintPatterns > 0 || !C.ProvenanceFile.empty()) {
    PatternAnalysis A =
        analyzePatterns(*Prog, *Prog->Modules[0], {}, C.PrintPatterns);
    if (C.PrintPatterns > 0) {
      std::printf("\ntop repeated patterns (post-build):\n");
      for (unsigned I = 0; I < C.PrintPatterns && I < A.Patterns.size();
           ++I)
        std::printf("-- rank %u: %llu x %u instrs\n%s\n", A.Patterns[I].Rank,
                    static_cast<unsigned long long>(A.Patterns[I].Frequency),
                    A.Patterns[I].Length, A.Patterns[I].Text.c_str());
    }
    if (!C.ProvenanceFile.empty()) {
      if (Status S = writePatternProvenance(A, ModuleNames, C.ProvenanceFile);
          !S.ok())
        return S;
      std::printf("wrote pattern provenance to %s\n",
                  C.ProvenanceFile.c_str());
    }
  }

  if (!C.DumpFile.empty()) {
    std::ofstream Out(C.DumpFile);
    if (!Out)
      return MCO_ERROR("cannot open dump file '" + C.DumpFile + "'");
    Out << printModule(*Prog->Modules[0], *Prog);
    std::printf("dumped module to %s\n", C.DumpFile.c_str());
  }

  if (!C.EmitObjFile.empty()) {
    // Merge the built program into one image-order module (the identity
    // merge for a whole-program build; the linker's module order for a
    // per-module build), so the container's deterministic layout is the
    // layout BinaryImage would compute.
    Module Linked;
    Linked.Name = "linked";
    for (const auto &M : Prog->Modules) {
      for (const MachineFunction &MF : M->Functions)
        Linked.Functions.push_back(MF);
      for (const GlobalData &G : M->Globals)
        Linked.Globals.push_back(G);
    }
    SymbolNameFn NameOf = [&](uint32_t Id) { return Prog->symbolName(Id); };
    const std::string Obj = serializeObjectFile(
        Linked, R.OutlineStats, R.RoundsRolledBack, R.PatternsQuarantined,
        NameOf, &C.Opts.DeadStrip.ExportedSymbols);
    if (Status S = atomicWriteFile(C.EmitObjFile, Obj); !S.ok())
      return S;
    std::printf("wrote object container to %s (%zu bytes)\n",
                C.EmitObjFile.c_str(), Obj.size());
  }

  if (!FinalVerify.empty())
    return MCO_ERROR("final verification failed: " + FinalVerify);
  return Status::success();
}

} // namespace

int main(int argc, char **argv) {
  BuildConfig C;
  if (Status S = parseArgs(argc, argv, C); !S.ok()) {
    std::fprintf(stderr, "mco-build: %s\n", S.render().c_str());
    usage();
    return exitCodeFor(S);
  }
  DiagState D;
  if (!C.TraceFile.empty())
    Tracer::instance().enable();
  Status S = runBuild(C, D);
  if (!S.ok())
    D.Error = S.render();
  // Like the diag report, the trace is exported on success AND failure.
  if (!C.TraceFile.empty()) {
    Tracer::instance().disable();
    if (Status TS = Tracer::instance().exportChromeJson(C.TraceFile);
        !TS.ok()) {
      std::fprintf(stderr, "mco-build: %s\n", TS.render().c_str());
      if (S.ok())
        return ExitInternal;
    } else {
      std::printf("wrote trace to %s\n", C.TraceFile.c_str());
    }
  }
  // The diag report is written on success AND failure: a crashed or
  // erroring build must still leave a machine-readable record.
  if (!C.DiagFile.empty()) {
    if (Status DS = writeDiagJson(C.DiagFile, C, D); !DS.ok()) {
      std::fprintf(stderr, "mco-build: %s\n", DS.render().c_str());
      if (S.ok())
        return ExitInternal;
    } else {
      std::printf("wrote diagnostics to %s\n", C.DiagFile.c_str());
    }
  }
  if (!S.ok()) {
    std::fprintf(stderr, "mco-build: %s\n", S.render().c_str());
    return exitCodeFor(S);
  }
  return 0;
}
