//===- tools/mco-nm.cpp - List symbols of an MCOB1 object container -------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// nm for the MCOB1 container: prints every symbol with its address,
/// section letter, and name, sorted by (address, name) so output is
/// deterministic. Letter case encodes visibility the way nm does — Local
/// symbols (outlined clones) print lowercase, Global/Exported uppercase:
///
///   T/t  defined in __TEXT,__text
///   D/d  defined in __DATA,__const
///   U    undefined (runtime builtins, cross-module references)
///
///   mco-nm FILE [--exports]
///
/// --exports prints the export-trie names (one per line, sorted) instead
/// of the symbol table. FILE may be a bare container or an MCOA1-sealed
/// one straight out of the artifact cache. Corrupt input exits 65; usage
/// errors exit 64.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "objfile/ObjectFile.h"
#include "support/Checksum.h"
#include "support/Error.h"
#include "support/ExitCodes.h"
#include "support/FileAtomics.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace mco;

namespace {

void usage() {
  std::fprintf(stderr, "usage: mco-nm FILE [--exports]\n");
}

struct NmConfig {
  std::string File;
  bool ExportsOnly = false;
};

Status parseArgs(int argc, char **argv, NmConfig &C) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--exports") {
      C.ExportsOnly = true;
    } else if (!A.empty() && A[0] == '-') {
      return MCO_ERROR_CODE(StatusCode::Usage, "unknown option '" + A + "'");
    } else if (C.File.empty()) {
      C.File = A;
    } else {
      return MCO_ERROR_CODE(StatusCode::Usage,
                            "unexpected argument '" + A + "'");
    }
  }
  if (C.File.empty())
    return MCO_ERROR_CODE(StatusCode::Usage, "missing input file");
  return Status::success();
}

char sectionLetter(const ObjSymbol &S) {
  char L;
  switch (S.Section) {
  case ObjSectText:
    L = 'T';
    break;
  case ObjSectConst:
    L = 'D';
    break;
  default:
    return 'U';
  }
  return S.Vis == ObjVisibility::Local
             ? static_cast<char>(L - 'A' + 'a')
             : L;
}

Status run(const NmConfig &C) {
  Expected<std::string> Bytes = readFileBytes(C.File);
  if (!Bytes.ok())
    return MCO_CORRUPT("cannot read '" + C.File +
                       "': " + Bytes.status().message());
  std::string Raw = std::move(*Bytes);
  if (Raw.rfind(ArtifactSealMagic, 0) == 0) {
    Expected<std::string> Payload = unsealArtifact(Raw);
    if (!Payload.ok())
      return MCO_CORRUPT("sealed artifact '" + C.File +
                         "': " + Payload.status().message());
    Raw = std::move(*Payload);
  }
  Expected<LoadedObject> O = readObjectFile(Raw);
  if (!O.ok())
    return MCO_CORRUPT("'" + C.File + "': " + O.status().message());

  if (C.ExportsOnly) {
    for (const std::string &N : O->ExportedNames)
      std::printf("%s\n", N.c_str());
    return Status::success();
  }

  std::vector<const ObjSymbol *> Sorted;
  Sorted.reserve(O->Symbols.size());
  for (const ObjSymbol &S : O->Symbols)
    Sorted.push_back(&S);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const ObjSymbol *A, const ObjSymbol *B) {
              if (A->Addr != B->Addr)
                return A->Addr < B->Addr;
              return A->Name < B->Name;
            });
  for (const ObjSymbol *S : Sorted) {
    if (S->Kind == ObjSymbolKind::Undefined)
      std::printf("%16s U %s\n", "", S->Name.c_str());
    else
      std::printf("%016llx %c %s\n",
                  static_cast<unsigned long long>(S->Addr),
                  sectionLetter(*S), S->Name.c_str());
  }
  return Status::success();
}

} // namespace

int main(int argc, char **argv) {
  NmConfig C;
  if (Status S = parseArgs(argc, argv, C); !S.ok()) {
    std::fprintf(stderr, "mco-nm: %s\n", S.render().c_str());
    usage();
    return exitCodeFor(S);
  }
  if (Status S = run(C); !S.ok()) {
    std::fprintf(stderr, "mco-nm: %s\n", S.render().c_str());
    return exitCodeFor(S);
  }
  return 0;
}
