//===- tools/mco-fleet.cpp - Staged-rollout fleet comparator --------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The staged-rollout A/B comparator from the paper's production
/// methodology (Sections V-VII): build a baseline and a candidate artifact
/// from the same corpus, execute both across a synthetic device fleet, and
/// ramp the candidate in stages (1% -> 10% -> 50% -> 100%), halting on the
/// first per-metric regression-threshold breach.
///
///   mco-fleet [--scenario identity|table7|bp|stitch]
///             [--profile rider|driver|eats|clang|kernel] [--modules N]
///             [--rounds N] [-j N | --threads N]
///             [--devices N] [--seed S] [--stages 1,10,50,100]
///             [--th-cycles-p50 PCT] [--th-cycles-p95 PCT]
///             [--th-faults PCT] [--th-text PCT] [--th-icache PCT]
///             [--th-ipc PCT] [--emit-traces FILE] [--emit-heat FILE]
///             [--verdict FILE] [--base-report FILE] [--cand-report FILE]
///             [--trace-json FILE]
///
/// Scenarios:
///   identity  candidate == baseline (a no-change release); the ramp must
///             reach 100% clean.
///   table7    candidate merges globals in interleaved (hash) order while
///             the baseline preserves module order — the Section VI data
///             page-fault regression. The ramp must halt.
///   bp        the closed measure->layout->verify loop: one fleet pass over
///             the module-order artifact captures startup traces, the
///             balanced-partitioning strategy plans a layout from them, and
///             the rollout ramps the re-laid-out image against module order
///             on the same program. Must ramp clean (layout cuts text page
///             faults; it never regresses the guarded metrics).
///   stitch    same loop with the Codestitcher chain strategy.
///
/// `--emit-traces FILE` writes the captured traces as `mco-traces-v1` JSON
/// (consumed by `mco-build --profile FILE`), with any scenario.
/// `--emit-heat FILE` writes the fleet-aggregated per-function heat profile
/// as `mco-heat-v1` JSON (consumed by `mco-build --profile-heat FILE`).
///
/// Exit status: 0 = ramp completed clean, 2 = ramp halted on a regression,
/// 1 = usage or build error. CI asserts on 0/2, so a verdict flip fails
/// the pipeline rather than shipping the regression.
///
//===----------------------------------------------------------------------===//

#include "linker/LayoutStrategy.h"
#include "pipeline/BuildPipeline.h"
#include "support/Error.h"
#include "synth/CorpusSynthesizer.h"
#include "telemetry/FleetSim.h"
#include "telemetry/Tracer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace mco;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: mco-fleet [--scenario identity|table7|bp|stitch]\n"
      "                 [--profile rider|driver|eats|clang|kernel]\n"
      "                 [--modules N] [--rounds N] [-j N | --threads N]\n"
      "                 [--devices N] [--seed S] [--stages 1,10,50,100]\n"
      "                 [--th-cycles-p50 PCT] [--th-cycles-p95 PCT]\n"
      "                 [--th-faults PCT] [--th-text PCT]\n"
      "                 [--th-icache PCT] [--th-ipc PCT]\n"
      "                 [--emit-traces FILE] [--emit-heat FILE]\n"
      "                 [--verdict FILE] [--base-report FILE]\n"
      "                 [--cand-report FILE] [--trace-json FILE]\n"
      "  --scenario identity  candidate == baseline; must ramp to 100%%\n"
      "  --scenario table7    candidate uses interleaved data layout (the\n"
      "                 Section VI page-fault regression); must halt\n"
      "  --scenario bp|stitch  the closed layout loop: capture startup\n"
      "                 traces, plan a bp/stitch layout from them, ramp\n"
      "                 the re-laid-out image against module order\n"
      "  --emit-traces FILE  write captured startup traces as\n"
      "                 mco-traces-v1 JSON (feed to mco-build --profile)\n"
      "  --emit-heat FILE  write the fleet-aggregated per-function heat\n"
      "                 profile as mco-heat-v1 JSON (feed to mco-build\n"
      "                 --profile-heat)\n"
      "  --devices N    synthetic fleet size (default 64)\n"
      "  --stages CSV   ramp percents (default 1,10,50,100)\n"
      "  --th-* PCT     per-metric regression thresholds, in percent\n"
      "  --verdict FILE machine-readable rollout verdict (atomic write)\n"
      "  exit status: 0 clean ramp, 2 regression halt, 1 error\n");
}

struct FleetConfig {
  AppProfile Profile = AppProfile::uberRider();
  std::string Scenario = "identity";
  unsigned Rounds = 3;
  unsigned Threads = 1;
  int ModulesOverride = -1;
  FleetOptions Fleet;
  std::vector<double> Stages = defaultStagePercents();
  RegressionThresholds Th;
  std::string VerdictFile;
  std::string BaseReportFile;
  std::string CandReportFile;
  std::string TraceFile;
  std::string EmitTracesFile;
  std::string EmitHeatFile;
};

Status parseArgs(int argc, char **argv, FleetConfig &C) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    auto NextOr = [&](const char *&V) -> Status {
      V = Next();
      if (!V)
        return MCO_ERROR("option '" + A + "' requires a value");
      return Status::success();
    };
    const char *V = nullptr;
    if (A == "--scenario") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Scenario = V;
      if (C.Scenario != "identity" && C.Scenario != "table7" &&
          C.Scenario != "bp" && C.Scenario != "stitch")
        return MCO_ERROR("unknown scenario '" + C.Scenario + "'");
    } else if (A == "--profile") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      std::string P = V;
      if (P == "rider")
        C.Profile = AppProfile::uberRider();
      else if (P == "driver")
        C.Profile = AppProfile::uberDriver();
      else if (P == "eats")
        C.Profile = AppProfile::uberEats();
      else if (P == "clang")
        C.Profile = AppProfile::clangCompiler();
      else if (P == "kernel")
        C.Profile = AppProfile::linuxKernel();
      else
        return MCO_ERROR("unknown profile '" + P + "'");
    } else if (A == "--modules") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.ModulesOverride = std::atoi(V);
    } else if (A == "--rounds") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Rounds = static_cast<unsigned>(std::atoi(V));
    } else if (A == "-j" || A == "--threads") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Threads = static_cast<unsigned>(std::atoi(V));
      if (C.Threads == 0)
        C.Threads = 1;
    } else if (A == "--devices") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Fleet.NumDevices = static_cast<unsigned>(std::atoi(V));
      if (C.Fleet.NumDevices == 0)
        C.Fleet.NumDevices = 1;
    } else if (A == "--seed") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Fleet.Seed = static_cast<uint64_t>(std::strtoull(V, nullptr, 0));
    } else if (A == "--stages") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Stages.clear();
      for (const char *P = V; *P;) {
        char *End = nullptr;
        double Pct = std::strtod(P, &End);
        if (End == P || Pct <= 0 || Pct > 100)
          return MCO_ERROR("bad --stages value '" + std::string(V) + "'");
        C.Stages.push_back(Pct);
        P = *End == ',' ? End + 1 : End;
      }
      if (C.Stages.empty())
        return MCO_ERROR("--stages needs at least one percent");
    } else if (A == "--th-cycles-p50") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Th.CyclesP50Pct = std::atof(V);
    } else if (A == "--th-cycles-p95") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Th.CyclesP95Pct = std::atof(V);
    } else if (A == "--th-faults") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Th.DataFaultsPct = std::atof(V);
    } else if (A == "--th-text") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Th.TextFaultsPct = std::atof(V);
    } else if (A == "--th-icache") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Th.ICacheMissPct = std::atof(V);
    } else if (A == "--th-ipc") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.Th.IpcDropPct = std::atof(V);
    } else if (A == "--verdict") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.VerdictFile = V;
    } else if (A == "--base-report") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.BaseReportFile = V;
    } else if (A == "--cand-report") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.CandReportFile = V;
    } else if (A == "--trace-json") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.TraceFile = V;
    } else if (A == "--emit-traces") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.EmitTracesFile = V;
    } else if (A == "--emit-heat") {
      if (Status S = NextOr(V); !S.ok())
        return S;
      C.EmitHeatFile = V;
    } else {
      return MCO_ERROR("unknown option '" + A + "'");
    }
  }
  if (C.ModulesOverride > 0)
    C.Profile.NumModules = static_cast<unsigned>(C.ModulesOverride);
  return Status::success();
}

/// Synthesizes the corpus and builds it with the given data-layout mode.
/// Synthesis is deterministic, so calling this twice with different modes
/// yields artifacts that differ ONLY in global-data order.
std::unique_ptr<Program> buildArtifact(const FleetConfig &C,
                                       DataLayoutMode Layout) {
  MCO_TRACE_SPAN("fleet.build_artifact", "fleet");
  auto Prog = CorpusSynthesizer(C.Profile).withThreads(C.Threads).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = C.Rounds;
  Opts.WholeProgram = true;
  Opts.DataLayout = Layout;
  Opts.Threads = C.Threads;
  buildProgram(*Prog, Opts);
  return Prog;
}

int run(FleetConfig &C) {
  std::printf("scenario %s: profile %s, %u modules, %u round(s), "
              "%u device(s), seed 0x%llx, %u thread(s)\n",
              C.Scenario.c_str(), C.Profile.Name.c_str(),
              C.Profile.NumModules, C.Rounds, C.Fleet.NumDevices,
              static_cast<unsigned long long>(C.Fleet.Seed), C.Threads);

  C.Fleet.Threads = C.Threads;
  for (unsigned S = 0; S < C.Profile.NumSpans; ++S)
    C.Fleet.Entries.push_back(CorpusSynthesizer::spanFunctionName(S));

  auto WriteOr = [](Status S, const char *What, const std::string &Path) {
    if (!S.ok()) {
      std::fprintf(stderr, "mco-fleet: writing %s: %s\n", What,
                   S.render().c_str());
      return false;
    }
    std::printf("wrote %s to %s\n", What, Path.c_str());
    return true;
  };
  bool WriteOk = true;

  std::unique_ptr<Program> Baseline =
      buildArtifact(C, DataLayoutMode::PreserveModuleOrder);
  std::unique_ptr<Program> Candidate =
      C.Scenario == "table7"
          ? buildArtifact(C, DataLayoutMode::Interleaved)
          : nullptr;
  const Program &Cand = Candidate ? *Candidate : *Baseline;

  // Measure: one fleet pass over the module-order layout captures the
  // per-device startup traces the layout strategies consume.
  const bool LayoutScenario = C.Scenario == "bp" || C.Scenario == "stitch";
  TraceProfile Traces;
  HeatProfile Heat;
  if (LayoutScenario || !C.EmitTracesFile.empty() || !C.EmitHeatFile.empty()) {
    runFleet(*Baseline, C.Fleet, nullptr, &Traces,
             C.EmitHeatFile.empty() ? nullptr : &Heat);
    std::printf("captured startup traces: %zu device(s), %zu function(s), "
                "%llu entries, %llu text page fault(s)\n",
                Traces.Devices.size(), Traces.Functions.size(),
                static_cast<unsigned long long>(Traces.totalEntries()),
                static_cast<unsigned long long>(Traces.totalTextFaults()));
    if (!C.EmitTracesFile.empty())
      WriteOk &= WriteOr(writeTraceProfile(Traces, C.EmitTracesFile),
                         "startup traces", C.EmitTracesFile);
    if (!C.EmitHeatFile.empty()) {
      std::printf("captured heat profile: %zu function(s), %llu total "
                  "cycle(s)\n",
                  Heat.Functions.size(),
                  static_cast<unsigned long long>(Heat.totalCycles()));
      WriteOk &= WriteOr(writeHeatProfile(Heat, C.EmitHeatFile),
                         "heat profile", C.EmitHeatFile);
    }
  }

  // Layout: plan the candidate order from the measured traces. The
  // rollout then verifies the loop end to end: same program, original
  // layout as baseline versus the strategy's layout as candidate.
  LayoutPlan CandPlan;
  if (LayoutScenario) {
    Expected<std::unique_ptr<LayoutStrategy>> SE =
        createLayoutStrategy(C.Scenario);
    if (!SE.ok()) {
      std::fprintf(stderr, "mco-fleet: %s\n", SE.status().render().c_str());
      return 1;
    }
    Expected<LayoutPlan> PE = SE.get()->plan(*Baseline, Traces);
    if (!PE.ok()) {
      std::fprintf(stderr, "mco-fleet: layout planning: %s\n",
                   PE.status().render().c_str());
      return 1;
    }
    CandPlan = std::move(PE.get());
    std::printf("layout plan: strategy %s, %llu traced function(s), "
                "estimated %llu text page fault(s)\n",
                CandPlan.Strategy.c_str(),
                static_cast<unsigned long long>(CandPlan.FunctionsTraced),
                static_cast<unsigned long long>(CandPlan.EstimatedTextFaults));
  }

  FleetReport BaseReport, CandReport;
  RolloutVerdict V =
      runStagedRollout(*Baseline, Cand, C.Fleet, C.Stages, C.Th, &BaseReport,
                       &CandReport, nullptr,
                       LayoutScenario ? &CandPlan : nullptr);

  if (LayoutScenario) {
    uint64_t BaseFaults = 0, CandFaults = 0;
    for (const DeviceResult &D : BaseReport.Devices)
      BaseFaults += D.Counters.TextPageFaults;
    for (const DeviceResult &D : CandReport.Devices)
      CandFaults += D.Counters.TextPageFaults;
    std::printf("simulated text page faults: original %llu -> %s %llu "
                "(%+.1f%%)\n",
                static_cast<unsigned long long>(BaseFaults),
                C.Scenario.c_str(),
                static_cast<unsigned long long>(CandFaults),
                BaseFaults ? 100.0 * (double(CandFaults) - double(BaseFaults)) /
                                 double(BaseFaults)
                           : 0.0);
  }

  for (const StageVerdict &S : V.Stages) {
    std::printf("stage %5.1f%% (%u device(s)): %s\n", S.Percent, S.Devices,
                S.Ok ? "ok" : "REGRESSION");
    for (const MetricDelta &D : S.Deltas)
      if (D.Breach || !S.Ok)
        std::printf("  %-22s %12.1f -> %12.1f  %+7.2f%% (threshold "
                    "%.1f%%)%s\n",
                    D.Metric.c_str(), D.Base, D.Cand, D.DeltaPct,
                    D.ThresholdPct, D.Breach ? "  << BREACH" : "");
  }
  std::printf("verdict: %s — %s\n", V.Regression ? "REGRESSION" : "ok",
              V.Summary.c_str());

  if (!C.BaseReportFile.empty())
    WriteOk &= WriteOr(writeFleetReport(BaseReport, C.BaseReportFile),
                       "baseline fleet report", C.BaseReportFile);
  if (!C.CandReportFile.empty())
    WriteOk &= WriteOr(writeFleetReport(CandReport, C.CandReportFile),
                       "candidate fleet report", C.CandReportFile);
  if (!C.VerdictFile.empty())
    WriteOk &= WriteOr(
        writeRolloutVerdict(V, C.Fleet, C.Stages, C.Th, C.VerdictFile),
        "rollout verdict", C.VerdictFile);
  if (!WriteOk)
    return 1;
  return V.Regression ? 2 : 0;
}

} // namespace

int main(int argc, char **argv) {
  FleetConfig C;
  if (Status S = parseArgs(argc, argv, C); !S.ok()) {
    std::fprintf(stderr, "mco-fleet: %s\n", S.render().c_str());
    usage();
    return 1;
  }
  if (!C.TraceFile.empty())
    Tracer::instance().enable();
  int Rc = run(C);
  if (!C.TraceFile.empty()) {
    Tracer::instance().disable();
    if (Status S = Tracer::instance().exportChromeJson(C.TraceFile);
        !S.ok()) {
      std::fprintf(stderr, "mco-fleet: writing trace: %s\n",
                   S.render().c_str());
      if (Rc == 0)
        Rc = 1;
    } else {
      std::printf("wrote trace to %s\n", C.TraceFile.c_str());
    }
  }
  return Rc;
}
