#!/usr/bin/env bash
#===- tools/check-sanitizers.sh - Sanitized robustness-suite runner ------===#
#
# Part of the mco project (CGO 2021 code-size outlining reproduction).
#
# Builds the tree twice — once with -DMCO_SANITIZE=address, once with
# =undefined — and runs the robustness suites (format_fuzz, daemon_chaos,
# guard_faults, objfile, dstrip, heat, pareto_smoke) under each. The corruption-fuzz contract
# is "clean Status, never a sanitizer report", and this script is how that
# claim gets checked without slowing the default (unsanitized) ctest run.
#
#   tools/check-sanitizers.sh [SOURCE_DIR] [BUILD_ROOT]
#
# SOURCE_DIR defaults to the repo root containing this script; BUILD_ROOT
# defaults to SOURCE_DIR/build-sanitize (one subdirectory per sanitizer,
# kept for incremental re-runs). MCO_FUZZ_ITERS is forwarded if set, so a
# quick pass is `MCO_FUZZ_ITERS=100 tools/check-sanitizers.sh`.
#===----------------------------------------------------------------------===#

set -euo pipefail

SRC="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
ROOT="${2:-${SRC}/build-sanitize}"
LABELS='format_fuzz|daemon_chaos|guard_faults|objfile|dstrip|heat|pareto_smoke'
JOBS="$(nproc 2>/dev/null || echo 4)"

for SAN in address undefined; do
  BUILD="${ROOT}/${SAN}"
  echo "==> [${SAN}] configure + build (${BUILD})"
  cmake -B "${BUILD}" -S "${SRC}" -DMCO_SANITIZE="${SAN}" >/dev/null
  cmake --build "${BUILD}" -j "${JOBS}" >/dev/null
  echo "==> [${SAN}] ctest -L '${LABELS}'"
  # halt_on_error makes any ASan/UBSan report a test failure, not a log line.
  ( cd "${BUILD}" &&
    ASAN_OPTIONS="halt_on_error=1:abort_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}" \
    ctest -L "${LABELS}" --output-on-failure -j "${JOBS}" )
done

echo "==> all sanitized robustness suites passed"
