//===- tools/mco-client.cpp - mco-buildd command-line client --------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Submits one build to a running mco-buildd and prints the result as
/// JSON on stdout. The retry loop (exponential backoff, retry_after,
/// idempotent request id) lives in daemon/Client.h; this tool is a thin
/// shell around it plus the ping/stats/shutdown control verbs.
///
///   mco-client --socket PATH --id ID
///              [--profile rider|driver|eats|clang|kernel]
///              [--modules N] [--rounds N] [--per-module] [--threads N]
///              [--retries N] [--reply-timeout-ms N]
///   mco-client --socket PATH --ping | --stats | --shutdown
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include "support/ExitCodes.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace mco;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: mco-client --socket PATH --id ID\n"
      "                  [--profile rider|driver|eats|clang|kernel]\n"
      "                  [--modules N] [--rounds N] [--per-module]\n"
      "                  [--threads N] [--retries N]\n"
      "                  [--heat FILE] [--hot-threshold PCT]\n"
      "                  [--reply-timeout-ms N]\n"
      "       mco-client --socket PATH --ping | --stats | --shutdown\n"
      "  --id ID        idempotent request id; resubmitting the same id\n"
      "                 never double-builds\n"
      "  --heat FILE    mco-heat-v1 profile path for hot/cold outlining;\n"
      "                 an unreadable file degrades the build (see its\n"
      "                 failure_log) rather than failing the request\n"
      "  --hot-threshold PCT  hot percentile in [0,100] (0 = off)\n"
      "  --retries N    total submit attempts (default 10), doubling\n"
      "                 backoff from 25ms, honoring daemon retry_after\n");
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (!End || *End)
    return false;
  Out = V;
  return true;
}

/// Prints any RpcMessage as a small stable JSON object (sorted keys per
/// map, strings escaped by the same rules the wire format uses).
void printMessageJson(const RpcMessage &M) {
  std::string Payload = encodeRpcMessage(M);
  std::printf("%s\n", Payload.c_str());
}

} // namespace

int main(int argc, char **argv) {
  ClientOptions Opts;
  RpcMessage Req;
  Req.Type = "build";
  enum { Build, Ping, Stats, Shutdown } Verb = Build;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    uint64_t V = 0;
    const char *Arg = nullptr;
    if (A == "--socket" && (Arg = Next())) {
      Opts.SocketPath = Arg;
    } else if (A == "--id" && (Arg = Next())) {
      Req.Str["id"] = Arg;
    } else if (A == "--profile" && (Arg = Next())) {
      Req.Str["profile"] = Arg;
    } else if (A == "--modules" && (Arg = Next()) && parseU64(Arg, V)) {
      Req.Int["modules"] = int64_t(V);
    } else if (A == "--rounds" && (Arg = Next()) && parseU64(Arg, V)) {
      Req.Int["rounds"] = int64_t(V);
    } else if (A == "--per-module") {
      Req.Int["per_module"] = 1;
    } else if (A == "--threads" && (Arg = Next()) && parseU64(Arg, V)) {
      Req.Int["threads"] = int64_t(V);
    } else if (A == "--heat" && (Arg = Next())) {
      Req.Str["heat_file"] = Arg;
    } else if (A == "--hot-threshold" && (Arg = Next()) && parseU64(Arg, V) &&
               V <= 100) {
      Req.Int["hot_threshold"] = int64_t(V);
    } else if (A == "--retries" && (Arg = Next()) && parseU64(Arg, V)) {
      Opts.MaxAttempts = unsigned(V);
    } else if (A == "--reply-timeout-ms" && (Arg = Next()) &&
               parseU64(Arg, V)) {
      Opts.ReplyTimeoutMs = int(V);
    } else if (A == "--ping") {
      Verb = Ping;
    } else if (A == "--stats") {
      Verb = Stats;
    } else if (A == "--shutdown") {
      Verb = Shutdown;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "mco-client: bad argument '%s'\n", A.c_str());
      usage();
      return ExitUsage;
    }
  }
  if (Opts.SocketPath.empty()) {
    usage();
    return ExitUsage;
  }

  DaemonClient Client(Opts);

  if (Verb != Build) {
    RpcMessage M;
    M.Type = Verb == Ping ? "ping" : Verb == Stats ? "stats" : "shutdown";
    Expected<RpcMessage> R = Client.call(M);
    if (!R.ok()) {
      std::fprintf(stderr, "mco-client: %s\n", R.status().render().c_str());
      return exitCodeFor(R.status());
    }
    printMessageJson(*R);
    return 0;
  }

  if (Req.strOr("id", "").empty()) {
    std::fprintf(stderr, "mco-client: --id is required for builds\n");
    usage();
    return ExitUsage;
  }

  Expected<RpcMessage> R = Client.submitBuild(Req);
  if (!R.ok()) {
    std::fprintf(stderr, "mco-client: %s\n", R.status().render().c_str());
    return exitCodeFor(R.status());
  }
  printMessageJson(*R);
  // A degraded build is a served build (the degradation ladder's whole
  // point), but scripts may want to notice: exit 0 either way, state is
  // in the JSON.
  return 0;
}
