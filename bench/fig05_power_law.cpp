//===- bench/fig05_power_law.cpp - Paper Fig. 5 ---------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Fig. 5: the rank-frequency distribution of profitable
/// repeated machine-code patterns obeys a power law y = a*x^b (the paper
/// fits with 99.4% confidence). Prints the log-log series (decimated) and
/// the fit.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linker/Linker.h"
#include "outliner/PatternStats.h"
#include "support/Statistics.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Fig. 5 — pattern rank vs repetition frequency (power law)",
         "paper Fig. 5: frequencies follow y = a*x^b with R^2 ~ 0.994");

  auto Prog = CorpusSynthesizer(AppProfile::uberRider()).generate();
  Module &Linked = linkProgram(*Prog);
  PatternAnalysis A = analyzePatterns(*Prog, Linked);

  std::printf("profitable patterns: %zu, candidates: %llu, "
              "total instrs: %llu\n",
              A.Patterns.size(),
              static_cast<unsigned long long>(A.TotalCandidates),
              static_cast<unsigned long long>(A.TotalInstrs));

  section("rank -> frequency, length (log-log sampled)");
  std::printf("%8s %10s %8s\n", "rank", "freq", "len");
  for (size_t I = 0; I < A.Patterns.size();
       I = I < 16 ? I + 1 : I + I / 4) {
    const PatternRecord &P = A.Patterns[I];
    std::printf("%8u %10llu %8u\n", P.Rank,
                static_cast<unsigned long long>(P.Frequency), P.Length);
  }

  std::vector<double> Ranks, Freqs;
  for (const PatternRecord &P : A.Patterns) {
    Ranks.push_back(P.Rank);
    Freqs.push_back(static_cast<double>(P.Frequency));
  }
  PowerLawFit F = fitPowerLaw(Ranks, Freqs);
  section("power-law fit");
  std::printf("y = %.2f * x^%.3f, R^2 = %.4f   [paper: R^2 = 0.994]\n", F.A,
              F.B, F.R2);

  section("top patterns (paper Listings 1-8 analogues)");
  for (unsigned I = 0; I < 6 && I < A.Patterns.size(); ++I) {
    const PatternRecord &P = A.Patterns[I];
    std::printf("# rank %u: %llu repetitions, %u instrs\n%s\n", P.Rank,
                static_cast<unsigned long long>(P.Frequency), P.Length,
                P.Text.c_str());
  }
  return 0;
}
