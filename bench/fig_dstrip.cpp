//===- bench/fig_dstrip.cpp - Dead-strip ablation ------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Dead-strip ablation on the Table 5 corpus: strip-only vs outline-only
/// vs both, measured the way the paper measures binaries — per-segment
/// (__TEXT/__DATA) bytes and 16 KiB page counts, read back from the MCOB1
/// container each variant emits. The corpus is salted with a known set of
/// unreachable functions (plus a dead global) so the strip pass has real
/// work whose removal can be verified exactly.
///
/// The bench doubles as the dstrip_smoke regression gate:
///   - every injected dead symbol must be removed when stripping is on,
///   - stripping must never remove a reachable function: every span of
///     every variant must execute with the same result and instruction
///     count as the unstripped baseline, and
///   - strip-then-outline must save at least as many __TEXT bytes as
///     either pass alone.
///
///   fig_dstrip [--modules N] [--rounds N] [--dead N] [--threads N]
///              [--json PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linker/Linker.h"
#include "mir/MIRBuilder.h"
#include "objfile/ObjectFile.h"
#include "pipeline/BuildPipeline.h"
#include "sim/Interpreter.h"
#include "support/FileAtomics.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

namespace {

/// Salts \p Prog with \p N unreachable functions (a call chain) plus one
/// global referenced only from the chain — the known-dead set the gate
/// checks for exact removal.
void injectDeadCode(Program &Prog, unsigned N) {
  Module &M = *Prog.Modules.back();
  for (unsigned I = 0; I < N; ++I) {
    M.Functions.emplace_back();
    MachineFunction &F = M.Functions.back();
    F.Name = Prog.internSymbol("dead_fn_" + std::to_string(I));
    MIRBuilder B(F.addBlock());
    B.movri(Reg::X0, static_cast<int64_t>(I));
    if (I == 0)
      B.adr(Reg::X1, Prog.internSymbol("dead_data"));
    if (I + 1 < N)
      B.bl(Prog.internSymbol("dead_fn_" + std::to_string(I + 1)));
    B.ret();
  }
  M.Globals.emplace_back();
  GlobalData &G = M.Globals.back();
  G.Name = Prog.internSymbol("dead_data");
  G.Bytes = {0xde, 0xad, 0xde, 0xad};
}

bool hasSymbolPrefixed(const Program &Prog, const std::string &Prefix) {
  for (const auto &M : Prog.Modules) {
    for (const MachineFunction &MF : M->Functions)
      if (Prog.symbolName(MF.Name).rfind(Prefix, 0) == 0)
        return true;
    for (const GlobalData &G : M->Globals)
      if (Prog.symbolName(G.Name).rfind(Prefix, 0) == 0)
        return true;
  }
  return false;
}

uint64_t pagesOf(uint64_t VmAddr, uint64_t VmSize) {
  if (VmSize == 0)
    return 0;
  return (VmAddr + VmSize - 1) / BinaryImage::PageSize -
         VmAddr / BinaryImage::PageSize + 1;
}

struct VariantRow {
  std::string Name;
  uint64_t TextBytes = 0;
  uint64_t TextPages = 0;
  uint64_t DataBytes = 0;
  uint64_t DataPages = 0;
  uint64_t FunctionsRemoved = 0;
  uint64_t BytesRemoved = 0;
  uint64_t GlobalsRemoved = 0;
  uint64_t SequencesOutlined = 0;
  std::vector<int64_t> SpanResults;
  std::vector<uint64_t> SpanInstrs;
};

std::string rowJson(const VariantRow &R) {
  char Buf[384];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"variant\": \"%s\", \"text_bytes\": %llu, \"text_pages\": %llu, "
      "\"data_bytes\": %llu, \"data_pages\": %llu, "
      "\"functions_removed\": %llu, \"bytes_removed\": %llu, "
      "\"globals_removed\": %llu, \"sequences_outlined\": %llu}",
      R.Name.c_str(), static_cast<unsigned long long>(R.TextBytes),
      static_cast<unsigned long long>(R.TextPages),
      static_cast<unsigned long long>(R.DataBytes),
      static_cast<unsigned long long>(R.DataPages),
      static_cast<unsigned long long>(R.FunctionsRemoved),
      static_cast<unsigned long long>(R.BytesRemoved),
      static_cast<unsigned long long>(R.GlobalsRemoved),
      static_cast<unsigned long long>(R.SequencesOutlined));
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Modules = 32, Rounds = 3, Dead = 24, Threads = 4;
  std::string JsonPath = "BENCH_dstrip.json";
  for (int I = 1; I < argc; ++I) {
    auto Next = [&]() { return I + 1 < argc ? argv[++I] : ""; };
    if (!std::strcmp(argv[I], "--modules"))
      Modules = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--rounds"))
      Rounds = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--dead"))
      Dead = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--threads"))
      Threads = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--json"))
      JsonPath = Next();
    else {
      std::fprintf(stderr,
                   "usage: fig_dstrip [--modules N] [--rounds N] [--dead N] "
                   "[--threads N] [--json PATH]\n");
      return 1;
    }
  }

  banner("Whole-program dead-strip — ablation vs outlining",
         "ld -dead_strip analogue over the symbol+reference graph; "
         "composes with Section IV repeated outlining");
  std::printf("%u modules, %u outline round(s), %u injected dead "
              "function(s), %u thread(s)\n",
              Modules, Rounds, Dead, Threads);

  AppProfile P = AppProfile::uberRider();
  P.NumModules = Modules;

  struct VariantSpec {
    const char *Name;
    bool Strip;
    unsigned Rounds;
  };
  const VariantSpec Specs[] = {{"baseline", false, 0},
                               {"strip_only", true, 0},
                               {"outline_only", false, Rounds},
                               {"strip_outline", true, Rounds}};

  std::vector<VariantRow> Rows;
  bool GateFailed = false;
  for (const VariantSpec &Spec : Specs) {
    auto Prog = CorpusSynthesizer(P).withThreads(Threads).generate();
    injectDeadCode(*Prog, Dead);

    PipelineOptions Opts;
    Opts.OutlineRounds = Spec.Rounds;
    Opts.WholeProgram = true;
    Opts.Threads = Threads;
    Opts.DeadStrip.Enabled = Spec.Strip;
    BuildResult B = buildProgram(*Prog, Opts);

    VariantRow Row;
    Row.Name = Spec.Name;
    Row.FunctionsRemoved = B.DeadStrip.FunctionsRemoved;
    Row.BytesRemoved = B.DeadStrip.BytesRemoved;
    Row.GlobalsRemoved = B.DeadStrip.GlobalsRemoved;
    Row.SequencesOutlined = B.OutlineStats.totalSequencesOutlined();

    // Per-segment accounting, read back from the emitted container the
    // way mco-size reads it.
    const Module &M = *Prog->Modules[0];
    Expected<LoadedObject> O =
        readObjectFile(serializeObjectFile(M, B.OutlineStats, 0, 0, [&](
            uint32_t Id) { return Prog->symbolName(Id); }));
    if (!O.ok()) {
      std::fprintf(stderr, "FAIL: %s container unreadable: %s\n", Spec.Name,
                   O.status().message().c_str());
      return 1;
    }
    Row.TextBytes = O->Sections[0].VmSize;
    Row.TextPages = pagesOf(O->Sections[0].VmAddr, O->Sections[0].VmSize);
    Row.DataBytes = O->Sections[1].VmSize;
    Row.DataPages = pagesOf(O->Sections[1].VmAddr, O->Sections[1].VmSize);

    // Gate 1: with stripping on, every injected dead symbol is gone; with
    // it off, they all survive to keep the ablation honest.
    const bool DeadLeft = hasSymbolPrefixed(*Prog, "dead_");
    if (Spec.Strip && DeadLeft) {
      std::fprintf(stderr,
                   "FAIL: %s left injected dead symbols in the program\n",
                   Spec.Name);
      GateFailed = true;
    }
    if (!Spec.Strip && !DeadLeft) {
      std::fprintf(stderr, "FAIL: %s lost symbols without stripping\n",
                   Spec.Name);
      GateFailed = true;
    }

    // Gate 2 input: execute every span; a strip pass that removed
    // reachable code either faults here or diverges from the baseline.
    BinaryImage Image(*Prog);
    Interpreter Interp(Image, *Prog);
    for (unsigned S = 0; S < P.NumSpans; ++S) {
      Row.SpanResults.push_back(
          Interp.call(CorpusSynthesizer::spanFunctionName(S)));
      Row.SpanInstrs.push_back(Interp.counters().Instrs);
    }
    Rows.push_back(std::move(Row));
  }

  const VariantRow &Base = Rows[0];
  for (const VariantRow &R : Rows) {
    // Outlining changes instruction counts; stripping may not change
    // results for any variant, and may not change counts unless the
    // variant outlines.
    if (R.SpanResults != Base.SpanResults) {
      std::fprintf(stderr,
                   "FAIL: %s changed a span result — a reachable function "
                   "was removed or damaged\n",
                   R.Name.c_str());
      GateFailed = true;
    }
  }
  if (Rows[1].SpanInstrs != Base.SpanInstrs) {
    std::fprintf(stderr,
                 "FAIL: strip_only changed executed instruction counts\n");
    GateFailed = true;
  }

  section("per-variant segment sizes and page counts");
  std::printf("%-14s %12s %10s %12s %10s %10s %10s\n", "variant",
              "text_bytes", "text_pgs", "data_bytes", "data_pgs",
              "fn_removed", "outlined");
  for (const VariantRow &R : Rows)
    std::printf("%-14s %12llu %10llu %12llu %10llu %10llu %10llu\n",
                R.Name.c_str(), static_cast<unsigned long long>(R.TextBytes),
                static_cast<unsigned long long>(R.TextPages),
                static_cast<unsigned long long>(R.DataBytes),
                static_cast<unsigned long long>(R.DataPages),
                static_cast<unsigned long long>(R.FunctionsRemoved),
                static_cast<unsigned long long>(R.SequencesOutlined));

  std::string J = "{\n  \"bench\": \"dstrip\",\n";
  J += "  \"modules\": " + std::to_string(Modules) + ",\n";
  J += "  \"rounds\": " + std::to_string(Rounds) + ",\n";
  J += "  \"injected_dead\": " + std::to_string(Dead) + ",\n";
  J += "  \"variants\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I)
    J += "    " + rowJson(Rows[I]) + (I + 1 < Rows.size() ? ",\n" : "\n");
  J += "  ]\n}\n";
  if (Status S = atomicWriteFile(JsonPath, J); !S.ok()) {
    std::fprintf(stderr, "fig_dstrip: %s\n", S.render().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", JsonPath.c_str());

  // Gate 3: composition — strip+outline must end at least as small as
  // either pass alone.
  const uint64_t Both = Rows[3].TextBytes;
  if (Both > Rows[1].TextBytes || Both > Rows[2].TextBytes) {
    std::fprintf(stderr,
                 "FAIL: strip+outline (%llu) larger than strip-only (%llu) "
                 "or outline-only (%llu)\n",
                 static_cast<unsigned long long>(Both),
                 static_cast<unsigned long long>(Rows[1].TextBytes),
                 static_cast<unsigned long long>(Rows[2].TextBytes));
    GateFailed = true;
  }
  if (GateFailed)
    return 1;

  std::printf("dstrip gate: %llu dead function(s) removed exactly, spans "
              "identical across variants, strip+outline text %.1f KB vs "
              "baseline %.1f KB (%.1f%% saved)\n",
              static_cast<unsigned long long>(Rows[1].FunctionsRemoved),
              kb(Both), kb(Base.TextBytes),
              savingPercent(Base.TextBytes, Both));
  return 0;
}
