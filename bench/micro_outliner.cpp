//===- bench/micro_outliner.cpp - google-benchmark micro-benchmarks -------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Throughput micro-benchmarks of the outlining machinery itself (the
/// Section VII-C build-time costs in miniature): both candidate discovery
/// engines (suffix tree and SA-IS suffix array), repeated-substring
/// enumeration, one outlining round, and liveness recomputation, across
/// corpus sizes.
///
/// Besides the google-benchmark mode, `--json PATH [--modules N]` runs a
/// head-to-head discovery report on the table5 corpus: per-engine wall
/// time (construction and enumeration separately), peak bytes, and
/// patterns considered, then builds the program once with each engine and
/// fails (exit 1) unless the outlining stats and final code size are
/// identical.
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "mir/Liveness.h"
#include "outliner/InstructionMapper.h"
#include "outliner/MachineOutliner.h"
#include "pipeline/BuildPipeline.h"
#include "support/Random.h"
#include "support/SuffixArray.h"
#include "support/SuffixTree.h"
#include "synth/CorpusSynthesizer.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace mco;

namespace {

std::vector<unsigned> randomString(size_t N, unsigned Alphabet) {
  Rng R(42);
  std::vector<unsigned> S;
  S.reserve(N + 1);
  for (size_t I = 0; I < N; ++I)
    S.push_back(static_cast<unsigned>(R.nextBounded(Alphabet)));
  S.push_back(1u << 30);
  return S;
}

void BM_SuffixTreeBuild(benchmark::State &State) {
  auto S = randomString(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    SuffixTree T(S);
    benchmark::DoNotOptimize(T.numNodes());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SuffixTreeBuild)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_SuffixArrayBuild(benchmark::State &State) {
  auto S = randomString(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    SuffixArray A(S);
    benchmark::DoNotOptimize(A.suffixArray().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SuffixArrayBuild)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_RepeatedSubstrings(benchmark::State &State) {
  auto S = randomString(static_cast<size_t>(State.range(0)), 16);
  SuffixTree T(S);
  for (auto _ : State) {
    auto Reps = T.repeatedSubstrings(2);
    benchmark::DoNotOptimize(Reps.size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_RepeatedSubstrings)->Arg(1 << 12)->Arg(1 << 15);

void BM_RepeatedSubstringsSarray(benchmark::State &State) {
  auto S = randomString(static_cast<size_t>(State.range(0)), 16);
  SuffixArray A(S);
  for (auto _ : State) {
    auto Reps = A.repeatedSubstrings(2);
    benchmark::DoNotOptimize(Reps.size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_RepeatedSubstringsSarray)->Arg(1 << 12)->Arg(1 << 15);

AppProfile scaledProfile(int Modules) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = Modules;
  return P;
}

void BM_InstructionMapper(benchmark::State &State) {
  auto Prog =
      CorpusSynthesizer(scaledProfile(static_cast<int>(State.range(0))))
          .generate();
  linkProgram(*Prog);
  for (auto _ : State) {
    InstructionMapper Mapper(*Prog->Modules[0]);
    benchmark::DoNotOptimize(Mapper.string().size());
  }
  State.SetItemsProcessed(State.iterations() *
                          Prog->Modules[0]->numInstrs());
}
BENCHMARK(BM_InstructionMapper)->Arg(8)->Arg(24);

void BM_OutlinerRound(benchmark::State &State) {
  const AppProfile P = scaledProfile(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    State.PauseTiming();
    auto Prog = CorpusSynthesizer(P).generate();
    Module &Linked = linkProgram(*Prog);
    State.ResumeTiming();
    OutlineRoundStats S = runOutlinerRound(*Prog, Linked, 1);
    benchmark::DoNotOptimize(S.FunctionsCreated);
  }
}
BENCHMARK(BM_OutlinerRound)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_Liveness(benchmark::State &State) {
  auto Prog = CorpusSynthesizer(scaledProfile(8)).generate();
  Module &Linked = linkProgram(*Prog);
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (const MachineFunction &MF : Linked.Functions) {
      Liveness LV(MF);
      Sum += LV.blockLiveOut(0);
    }
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_Liveness)->Unit(benchmark::kMillisecond);

/// The previous generation of the suffix tree, kept verbatim in the bench
/// as the discovery-report baseline: Ukkonen with one std::map<symbol,
/// child> red-black tree per node (the layout stock LLVM uses), and
/// materialized repeatedSubstrings() output. The production engines in
/// src/support/ are measured against this so the report's speedups track
/// "what the outliner used to pay", not just the two current engines
/// against each other.
class BaselineMapTree {
public:
  static constexpr unsigned EmptyIdx = static_cast<unsigned>(-1);

  explicit BaselineMapTree(const std::vector<unsigned> &Str) : Str(Str) {
    Nodes.emplace_back(); // The root; StartIdx stays EmptyIdx.
    Active.Node = Root;
    unsigned SuffixesToAdd = 0;
    for (unsigned PfxEndIdx = 0, End = static_cast<unsigned>(Str.size());
         PfxEndIdx < End; ++PfxEndIdx) {
      ++SuffixesToAdd;
      LeafEndIdx = PfxEndIdx;
      SuffixesToAdd = extend(PfxEndIdx, SuffixesToAdd);
    }
    if (!Str.empty())
      for (Node &N : Nodes)
        if (N.IsLeaf)
          N.EndIdx = static_cast<unsigned>(Str.size()) - 1;
    setSuffixIndices();
  }

  std::vector<RepeatedSubstring> repeatedSubstrings(unsigned MinLength) const {
    std::vector<RepeatedSubstring> Result;
    if (Nodes.size() <= 1)
      return Result;
    std::vector<unsigned> Stack;
    Stack.push_back(Root);
    while (!Stack.empty()) {
      unsigned Idx = Stack.back();
      Stack.pop_back();
      const Node &N = Nodes[Idx];
      if (N.IsLeaf)
        continue;
      for (const auto &KV : N.Children)
        Stack.push_back(KV.second);
      if (N.isRoot() || N.ConcatLen < MinLength)
        continue;
      RepeatedSubstring RS;
      RS.Length = N.ConcatLen;
      for (const auto &KV : N.Children) {
        const Node &Child = Nodes[KV.second];
        if (Child.IsLeaf)
          RS.StartIndices.push_back(Child.SuffixIdx);
      }
      if (RS.StartIndices.size() >= 2) {
        std::sort(RS.StartIndices.begin(), RS.StartIndices.end());
        Result.push_back(std::move(RS));
      }
    }
    return Result;
  }

  /// Rough retained-bytes estimate: the node array plus one red-black
  /// tree node (~3 pointers + color + key/value, allocator-rounded) per
  /// edge.
  size_t memoryBytes() const {
    size_t Edges = Nodes.empty() ? 0 : Nodes.size() - 1;
    return Nodes.capacity() * sizeof(Node) + Edges * 56;
  }

private:
  struct Node {
    std::map<unsigned, unsigned> Children;
    unsigned StartIdx = EmptyIdx;
    unsigned EndIdx = EmptyIdx;
    unsigned Link = EmptyIdx;
    unsigned SuffixIdx = EmptyIdx;
    unsigned ConcatLen = 0;
    bool IsLeaf = false;
    bool isRoot() const { return StartIdx == EmptyIdx; }
  };
  struct ActiveState {
    unsigned Node = 0;
    unsigned Idx = EmptyIdx;
    unsigned Len = 0;
  };

  unsigned edgeSize(const Node &N) const {
    if (N.isRoot())
      return 0;
    unsigned End = N.IsLeaf && N.EndIdx == EmptyIdx ? LeafEndIdx : N.EndIdx;
    return End - N.StartIdx + 1;
  }

  unsigned makeLeaf(unsigned Parent, unsigned StartIdx, unsigned Edge) {
    Nodes.emplace_back();
    unsigned Idx = static_cast<unsigned>(Nodes.size()) - 1;
    Nodes[Idx].StartIdx = StartIdx;
    Nodes[Idx].IsLeaf = true;
    Nodes[Parent].Children[Edge] = Idx;
    return Idx;
  }

  unsigned makeInternal(unsigned Parent, unsigned StartIdx, unsigned EndIdx,
                        unsigned Edge) {
    Nodes.emplace_back();
    unsigned Idx = static_cast<unsigned>(Nodes.size()) - 1;
    Nodes[Idx].StartIdx = StartIdx;
    Nodes[Idx].EndIdx = EndIdx;
    Nodes[Idx].Link = Root;
    Nodes[Parent].Children[Edge] = Idx;
    return Idx;
  }

  unsigned extend(unsigned EndIdx, unsigned SuffixesToAdd) {
    unsigned NeedsLink = EmptyIdx;
    while (SuffixesToAdd > 0) {
      if (Active.Len == 0)
        Active.Idx = EndIdx;
      unsigned FirstChar = Str[Active.Idx];
      auto ChildIt = Nodes[Active.Node].Children.find(FirstChar);
      if (ChildIt == Nodes[Active.Node].Children.end()) {
        makeLeaf(Active.Node, EndIdx, FirstChar);
        if (NeedsLink != EmptyIdx) {
          Nodes[NeedsLink].Link = Active.Node;
          NeedsLink = EmptyIdx;
        }
      } else {
        unsigned NextNode = ChildIt->second;
        unsigned SubstringLen = edgeSize(Nodes[NextNode]);
        if (Active.Len >= SubstringLen) {
          Active.Idx += SubstringLen;
          Active.Len -= SubstringLen;
          Active.Node = NextNode;
          continue;
        }
        unsigned LastChar = Str[EndIdx];
        if (Str[Nodes[NextNode].StartIdx + Active.Len] == LastChar) {
          if (NeedsLink != EmptyIdx && !Nodes[Active.Node].isRoot()) {
            Nodes[NeedsLink].Link = Active.Node;
            NeedsLink = EmptyIdx;
          }
          ++Active.Len;
          break;
        }
        unsigned SplitNode =
            makeInternal(Active.Node, Nodes[NextNode].StartIdx,
                         Nodes[NextNode].StartIdx + Active.Len - 1,
                         FirstChar);
        makeLeaf(SplitNode, EndIdx, LastChar);
        Nodes[NextNode].StartIdx += Active.Len;
        Nodes[SplitNode].Children[Str[Nodes[NextNode].StartIdx]] = NextNode;
        if (NeedsLink != EmptyIdx)
          Nodes[NeedsLink].Link = SplitNode;
        NeedsLink = SplitNode;
      }
      --SuffixesToAdd;
      if (Nodes[Active.Node].isRoot()) {
        if (Active.Len > 0) {
          --Active.Len;
          Active.Idx = EndIdx - SuffixesToAdd + 1;
        }
      } else {
        Active.Node = Nodes[Active.Node].Link;
      }
    }
    return SuffixesToAdd;
  }

  void setSuffixIndices() {
    struct Frame {
      unsigned NodeIdx;
      unsigned ParentConcatLen;
    };
    std::vector<Frame> Stack;
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      Frame F = Stack.back();
      Stack.pop_back();
      Node &N = Nodes[F.NodeIdx];
      N.ConcatLen = F.ParentConcatLen + edgeSize(N);
      if (N.IsLeaf) {
        N.SuffixIdx = static_cast<unsigned>(Str.size()) - N.ConcatLen;
        continue;
      }
      for (const auto &KV : N.Children)
        Stack.push_back({KV.second, N.ConcatLen});
    }
  }

  const std::vector<unsigned> &Str;
  std::vector<Node> Nodes;
  unsigned Root = 0;
  unsigned LeafEndIdx = EmptyIdx;
  ActiveState Active;
};

/// One engine's discovery-phase measurement (best of the repetitions).
struct EngineReport {
  double BuildSeconds = 0;
  double EnumerateSeconds = 0;
  size_t PeakBytes = 0;
  uint64_t Patterns = 0;
  uint64_t Occurrences = 0;

  double totalSeconds() const { return BuildSeconds + EnumerateSeconds; }
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

template <typename Engine>
EngineReport measureEngine(const std::vector<unsigned> &Str, int Reps) {
  EngineReport Best;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    EngineReport R;
    auto T0 = std::chrono::steady_clock::now();
    Engine E(Str, /*CollectLeafDescendants=*/false);
    R.BuildSeconds = secondsSince(T0);
    T0 = std::chrono::steady_clock::now();
    E.forEachRepeatedSubstring(
        2, 2, 4096,
        [&R](unsigned, const unsigned *, size_t NumStarts) {
          ++R.Patterns;
          R.Occurrences += NumStarts;
        });
    R.EnumerateSeconds = secondsSince(T0);
    R.PeakBytes = E.memoryBytes();
    if (Rep == 0 || R.totalSeconds() < Best.totalSeconds())
      Best = R;
  }
  return Best;
}

/// Measures the pre-PR discovery path: map-based tree construction plus
/// materialized repeatedSubstrings() (exactly what the outliner round used
/// to execute).
EngineReport measureBaseline(const std::vector<unsigned> &Str, int Reps) {
  EngineReport Best;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    EngineReport R;
    auto T0 = std::chrono::steady_clock::now();
    BaselineMapTree T(Str);
    R.BuildSeconds = secondsSince(T0);
    T0 = std::chrono::steady_clock::now();
    auto Repeats = T.repeatedSubstrings(2);
    R.EnumerateSeconds = secondsSince(T0);
    R.Patterns = Repeats.size();
    for (const RepeatedSubstring &RS : Repeats)
      R.Occurrences += RS.StartIndices.size();
    R.PeakBytes = T.memoryBytes();
    if (Rep == 0 || R.totalSeconds() < Best.totalSeconds())
      Best = R;
  }
  return Best;
}

BuildResult buildWith(const AppProfile &Profile, DiscoveryEngine Discovery,
                      uint64_t &CodeSize) {
  auto Prog = CorpusSynthesizer(Profile).withThreads(4).generate();
  PipelineOptions Opts;
  Opts.WholeProgram = true;
  Opts.OutlineRounds = 3;
  Opts.Threads = 4;
  Opts.Outliner.Discovery = Discovery;
  BuildResult R = buildProgram(*Prog, Opts);
  CodeSize = R.CodeSize;
  return R;
}

void writeEngineJson(std::ofstream &Out, const char *Name,
                     const EngineReport &R, bool TrailingComma) {
  Out << "    \"" << Name << "\": {\n";
  Out << "      \"build_seconds\": " << R.BuildSeconds << ",\n";
  Out << "      \"enumerate_seconds\": " << R.EnumerateSeconds << ",\n";
  Out << "      \"total_seconds\": " << R.totalSeconds() << ",\n";
  Out << "      \"peak_bytes\": " << R.PeakBytes << ",\n";
  Out << "      \"patterns_considered\": " << R.Patterns << ",\n";
  Out << "      \"occurrences_reported\": " << R.Occurrences << "\n";
  Out << "    }" << (TrailingComma ? "," : "") << "\n";
}

/// The `--json` head-to-head mode. \returns the process exit code.
int runDiscoveryReport(const std::string &JsonPath, unsigned Modules) {
  AppProfile Profile = AppProfile::uberRider();
  Profile.NumModules = Modules;

  // The discovery phase's input: the table5 corpus, linked whole-program
  // and mapped to one integer string, exactly as runRound sees it.
  auto Prog = CorpusSynthesizer(Profile).withThreads(4).generate();
  Module &Linked = linkProgram(*Prog);
  InstructionMapper Mapper(Linked);
  const std::vector<unsigned> &Str = Mapper.string();
  std::printf("discovery corpus: %u modules, mapped string length %zu\n",
              Modules, Str.size());

  const int Reps = 3;
  EngineReport Legacy = measureBaseline(Str, Reps);
  EngineReport Tree = measureEngine<SuffixTree>(Str, Reps);
  EngineReport Arr = measureEngine<SuffixArray>(Str, Reps);
  const double Speedup =
      Arr.totalSeconds() > 0 ? Tree.totalSeconds() / Arr.totalSeconds() : 0;
  const double SpeedupVsLegacy =
      Arr.totalSeconds() > 0 ? Legacy.totalSeconds() / Arr.totalSeconds() : 0;
  std::printf("tree_prepr : build %.4fs + enumerate %.4fs, %zu bytes, "
              "%llu patterns\n",
              Legacy.BuildSeconds, Legacy.EnumerateSeconds, Legacy.PeakBytes,
              static_cast<unsigned long long>(Legacy.Patterns));
  std::printf("tree       : build %.4fs + enumerate %.4fs, %zu bytes, "
              "%llu patterns\n",
              Tree.BuildSeconds, Tree.EnumerateSeconds, Tree.PeakBytes,
              static_cast<unsigned long long>(Tree.Patterns));
  std::printf("sarray     : build %.4fs + enumerate %.4fs, %zu bytes, "
              "%llu patterns\n",
              Arr.BuildSeconds, Arr.EnumerateSeconds, Arr.PeakBytes,
              static_cast<unsigned long long>(Arr.Patterns));
  std::printf("speedup (sarray vs tree):       %.2fx\n", Speedup);
  std::printf("speedup (sarray vs pre-PR tree): %.2fx\n", SpeedupVsLegacy);

  bool Identical = Tree.Patterns == Arr.Patterns &&
                   Tree.Occurrences == Arr.Occurrences &&
                   Legacy.Patterns == Arr.Patterns &&
                   Legacy.Occurrences == Arr.Occurrences;

  // End-to-end: a full build per engine must agree on every outlining
  // stat and the final code size.
  uint64_t SizeTree = 0, SizeArr = 0;
  BuildResult RT = buildWith(Profile, DiscoveryEngine::Tree, SizeTree);
  BuildResult RA = buildWith(Profile, DiscoveryEngine::SuffixArray, SizeArr);
  Identical = Identical && SizeTree == SizeArr &&
              RT.OutlineStats.Rounds.size() == RA.OutlineStats.Rounds.size();
  if (Identical) {
    for (size_t I = 0; I < RT.OutlineStats.Rounds.size(); ++I) {
      const OutlineRoundStats &X = RT.OutlineStats.Rounds[I];
      const OutlineRoundStats &Y = RA.OutlineStats.Rounds[I];
      Identical = Identical && X.SequencesOutlined == Y.SequencesOutlined &&
                  X.FunctionsCreated == Y.FunctionsCreated &&
                  X.OutlinedFunctionBytes == Y.OutlinedFunctionBytes &&
                  X.CodeSizeAfter == Y.CodeSizeAfter &&
                  X.PatternsConsidered == Y.PatternsConsidered;
    }
  }
  std::printf("[engine check: outlining output %s across discovery "
              "engines]\n",
              Identical ? "IDENTICAL" : "MISMATCH (BUG)");

  std::ofstream Out(JsonPath);
  Out << "{\n  \"bench\": \"micro_outliner_discovery\",\n";
  Out << "  \"modules\": " << Modules << ",\n";
  Out << "  \"string_length\": " << Str.size() << ",\n";
  Out << "  \"engines\": {\n";
  writeEngineJson(Out, "tree_prepr", Legacy, /*TrailingComma=*/true);
  writeEngineJson(Out, "tree", Tree, /*TrailingComma=*/true);
  writeEngineJson(Out, "sarray", Arr, /*TrailingComma=*/false);
  Out << "  },\n";
  Out << "  \"speedup_sarray_vs_tree\": " << Speedup << ",\n";
  Out << "  \"speedup_sarray_vs_prepr_tree\": " << SpeedupVsLegacy << ",\n";
  Out << "  \"outlining_identical\": " << (Identical ? "true" : "false")
      << ",\n";
  Out << "  \"code_size_bytes\": " << SizeArr << "\n";
  Out << "}\n";
  std::printf("wrote %s\n", JsonPath.c_str());
  return Identical ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Modules = 64; // Table5 corpus size.
  std::vector<char *> BenchArgs{argv[0]};
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--modules") && I + 1 < argc)
      Modules = static_cast<unsigned>(std::atoi(argv[++I]));
    else
      BenchArgs.push_back(argv[I]);
  }
  if (!JsonPath.empty())
    return runDiscoveryReport(JsonPath, Modules == 0 ? 1 : Modules);

  int BenchArgc = static_cast<int>(BenchArgs.size());
  benchmark::Initialize(&BenchArgc, BenchArgs.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, BenchArgs.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
