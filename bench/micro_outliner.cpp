//===- bench/micro_outliner.cpp - google-benchmark micro-benchmarks -------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Throughput micro-benchmarks of the outlining machinery itself (the
/// Section VII-C build-time costs in miniature): suffix-tree construction,
/// repeated-substring enumeration, one outlining round, and liveness
/// recomputation, across corpus sizes.
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "mir/Liveness.h"
#include "outliner/InstructionMapper.h"
#include "outliner/MachineOutliner.h"
#include "support/Random.h"
#include "support/SuffixTree.h"
#include "synth/CorpusSynthesizer.h"

#include <benchmark/benchmark.h>

using namespace mco;

namespace {

std::vector<unsigned> randomString(size_t N, unsigned Alphabet) {
  Rng R(42);
  std::vector<unsigned> S;
  S.reserve(N + 1);
  for (size_t I = 0; I < N; ++I)
    S.push_back(static_cast<unsigned>(R.nextBounded(Alphabet)));
  S.push_back(1u << 30);
  return S;
}

void BM_SuffixTreeBuild(benchmark::State &State) {
  auto S = randomString(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    SuffixTree T(S);
    benchmark::DoNotOptimize(T.numNodes());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SuffixTreeBuild)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_RepeatedSubstrings(benchmark::State &State) {
  auto S = randomString(static_cast<size_t>(State.range(0)), 16);
  SuffixTree T(S);
  for (auto _ : State) {
    auto Reps = T.repeatedSubstrings(2);
    benchmark::DoNotOptimize(Reps.size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_RepeatedSubstrings)->Arg(1 << 12)->Arg(1 << 15);

AppProfile scaledProfile(int Modules) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = Modules;
  return P;
}

void BM_InstructionMapper(benchmark::State &State) {
  auto Prog =
      CorpusSynthesizer(scaledProfile(static_cast<int>(State.range(0))))
          .generate();
  linkProgram(*Prog);
  for (auto _ : State) {
    InstructionMapper Mapper(*Prog->Modules[0]);
    benchmark::DoNotOptimize(Mapper.string().size());
  }
  State.SetItemsProcessed(State.iterations() *
                          Prog->Modules[0]->numInstrs());
}
BENCHMARK(BM_InstructionMapper)->Arg(8)->Arg(24);

void BM_OutlinerRound(benchmark::State &State) {
  const AppProfile P = scaledProfile(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    State.PauseTiming();
    auto Prog = CorpusSynthesizer(P).generate();
    Module &Linked = linkProgram(*Prog);
    State.ResumeTiming();
    OutlineRoundStats S = runOutlinerRound(*Prog, Linked, 1);
    benchmark::DoNotOptimize(S.FunctionsCreated);
  }
}
BENCHMARK(BM_OutlinerRound)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_Liveness(benchmark::State &State) {
  auto Prog = CorpusSynthesizer(scaledProfile(8)).generate();
  Module &Linked = linkProgram(*Prog);
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (const MachineFunction &MF : Linked.Functions) {
      Liveness LV(MF);
      Sum += LV.blockLiveOut(0);
    }
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_Liveness)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
