//===- bench/table7_data_layout.cpp - Paper Section VI, challenge 3 -------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the Section VI production incident: merging modules with
/// llvm-link interleaves global data from unrelated modules, destroying
/// programmer-driven data affinity and causing page-fault regressions —
/// *independent of whether outlining is enabled*. Preserving per-module
/// data order (the paper's upstreamed fix) eliminates the regression.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/BuildPipeline.h"
#include "sim/Interpreter.h"
#include "support/Statistics.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

namespace {

struct Config {
  const char *Name;
  bool WholeProgram;
  unsigned Rounds;
  DataLayoutMode Layout;
};

} // namespace

int main() {
  banner("Section VI (challenge 3) — data layout after IR merging",
         "paper: ~10% regression from interleaved data, present with and "
         "without outlining; module-order layout eliminates it");

  const AppProfile Profile = AppProfile::uberRider();
  // A memory-constrained device: the resident set holds fewer data pages
  // than the span's interleaved working set but more than its module-order
  // working set; faults are soft page-ins (~200 cycles).
  PerfConfig Cfg;
  Cfg.DataResidentPages = 20;
  Cfg.DataPageBytes = 16 << 10;
  Cfg.DataFaultCycles = 200;

  const Config Configs[] = {
      {"unmerged (default pipeline)", false, 0,
       DataLayoutMode::PreserveModuleOrder},
      {"merged, interleaved, no outlining", true, 0,
       DataLayoutMode::Interleaved},
      {"merged, interleaved, 5 rounds", true, 5,
       DataLayoutMode::Interleaved},
      {"merged, module-order, 5 rounds", true, 5,
       DataLayoutMode::PreserveModuleOrder},
  };

  double BaselineCycles = 0;
  std::printf("%-36s %12s %12s %10s\n", "configuration", "page faults",
              "Mcycles", "vs base");
  for (const Config &C : Configs) {
    auto Prog = CorpusSynthesizer(Profile).generate();
    PipelineOptions Opts;
    Opts.WholeProgram = C.WholeProgram;
    Opts.OutlineRounds = C.Rounds;
    Opts.DataLayout = C.Layout;
    buildProgram(*Prog, Opts);
    BinaryImage Img(*Prog);
    Interpreter I(Img, *Prog, &Cfg);
    uint64_t Faults = 0;
    double Cycles = 0;
    for (unsigned S = 0; S < Profile.NumSpans; ++S)
      I.call(CorpusSynthesizer::spanFunctionName(S));
    Faults = I.counters().DataPageFaults;
    Cycles = I.counters().Cycles;
    if (BaselineCycles == 0)
      BaselineCycles = Cycles;
    std::printf("%-36s %12llu %12.2f %+9.1f%%\n", C.Name,
                static_cast<unsigned long long>(Faults), Cycles / 1e6,
                100.0 * (Cycles - BaselineCycles) / BaselineCycles);
  }
  std::printf("\n[shape check: interleaving regresses both with and "
              "without outlining; PreserveModuleOrder restores baseline "
              "locality — the paper's fix]\n");
  return 0;
}
