//===- bench/fig_pareto.cpp - Size/latency Pareto front of hot-thresholds -===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The size/latency Pareto sweep behind profile-guided hot/cold outlining
/// (Section V-B's "don't outline the hot 10%" guidance, closed-loop):
/// builds the Table 5 corpus unoutlined, captures an mco-heat-v1 profile
/// from a fleet run of that baseline, then rebuilds at --hot-threshold
/// 0/50/90/99/100 and replays every build through the same fleet. Prints
/// the per-threshold size-vs-P50-startup-cycles front and emits
/// BENCH_pareto.json for CI trend tracking.
///
/// The bench doubles as the pareto_smoke regression gate:
///   - threshold 0 must be byte-identical to a profile-free build
///     (digest equality — heat off is really off),
///   - outlining everything (threshold 100) must cost startup cycles
///     over the unoutlined baseline (the regression being traded away),
///   - threshold 90 must recover >= 50% of that P50 cycle regression
///     while retaining >= 85% of threshold 100's text-size savings.
///
///   fig_pareto [--modules N] [--devices N] [--rounds N] [--repeat K]
///              [--seed S] [--threads N] [--json PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cache/ArtifactCache.h"
#include "pipeline/BuildPipeline.h"
#include "sim/HeatProfile.h"
#include "support/FileAtomics.h"
#include "synth/CorpusSynthesizer.h"
#include "telemetry/FleetSim.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

namespace {

struct ThresholdRow {
  int Threshold = -1; ///< -1 = unoutlined baseline, -2 = profile-free.
  uint64_t CodeSize = 0;
  uint64_t SavingsBytes = 0;
  uint64_t DroppedHot = 0;
  uint64_t SuppressedOccurrences = 0;
  uint64_t HotFunctions = 0;
  std::string Digest;
  FleetMetrics Fleet;
};

const char *rowName(const ThresholdRow &R) {
  static char Buf[24];
  if (R.Threshold == -1)
    return "rounds0";
  if (R.Threshold == -2)
    return "no-heat";
  std::snprintf(Buf, sizeof(Buf), "th%d", R.Threshold);
  return Buf;
}

std::string rowJson(const ThresholdRow &R) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"arm\": \"%s\", \"hot_threshold\": %d, \"code_size\": %llu, "
      "\"savings_bytes\": %llu, \"dropped_hot\": %llu, "
      "\"suppressed_occurrences\": %llu, \"hot_functions\": %llu, "
      "\"cycles_p50\": %.1f, \"cycles_p95\": %.1f, "
      "\"text_page_faults_p50\": %.1f, \"digest\": \"%s\"}",
      rowName(R), R.Threshold, static_cast<unsigned long long>(R.CodeSize),
      static_cast<unsigned long long>(R.SavingsBytes),
      static_cast<unsigned long long>(R.DroppedHot),
      static_cast<unsigned long long>(R.SuppressedOccurrences),
      static_cast<unsigned long long>(R.HotFunctions), R.Fleet.CyclesP50,
      R.Fleet.CyclesP95, R.Fleet.TextFaultsP50, R.Digest.c_str());
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Modules = 64, Devices = 16, Rounds = 2, Threads = 4, Repeat = 3;
  uint64_t Seed = 0x5EED;
  std::string JsonPath = "BENCH_pareto.json";
  for (int I = 1; I < argc; ++I) {
    auto Next = [&]() { return I + 1 < argc ? argv[++I] : ""; };
    if (!std::strcmp(argv[I], "--modules"))
      Modules = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--devices"))
      Devices = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--rounds"))
      Rounds = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--repeat"))
      Repeat = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--seed"))
      Seed = std::strtoull(Next(), nullptr, 0);
    else if (!std::strcmp(argv[I], "--threads"))
      Threads = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--json"))
      JsonPath = Next();
    else {
      std::fprintf(stderr,
                   "usage: fig_pareto [--modules N] [--devices N] "
                   "[--rounds N] [--repeat K] [--seed S] [--threads N] "
                   "[--json PATH]\n");
      return 1;
    }
  }
  if (Repeat == 0)
    Repeat = 1;

  banner("Hot-threshold sweep — size/latency Pareto front",
         "Section V-B: profile-guided hot/cold outlining; measure on the "
         "unoutlined fleet, rebuild per threshold, replay");
  std::printf("%u modules, %u devices, %u round(s), spans x%u, "
              "seed 0x%llx, %u thread(s)\n",
              Modules, Devices, Rounds, Repeat,
              static_cast<unsigned long long>(Seed), Threads);

  FleetOptions O;
  O.NumDevices = Devices;
  O.Seed = Seed;
  O.Threads = Threads;
  const AppProfile AP = AppProfile::uberRider();
  // Each span repeated: the first pass pays the cold-start page/cache
  // faults, the repeats are steady-state execution, which is where the
  // outlined-call overhead (the latency being traded for size) lives.
  for (unsigned K = 0; K < Repeat; ++K)
    for (unsigned S = 0; S < AP.NumSpans; ++S)
      O.Entries.push_back(CorpusSynthesizer::spanFunctionName(S));

  auto buildArm = [&](unsigned OutlineRounds, const HeatProfile *Heat,
                      unsigned HotPct, BuildResult &R) {
    AppProfile P = AppProfile::uberRider();
    P.NumModules = Modules;
    auto Prog = CorpusSynthesizer(P).withThreads(Threads).generate();
    PipelineOptions Opts;
    Opts.OutlineRounds = OutlineRounds;
    Opts.WholeProgram = true;
    Opts.Threads = Threads;
    Opts.Heat.Profile = Heat;
    Opts.Heat.HotThresholdPct = HotPct;
    R = buildProgram(*Prog, Opts);
    return Prog;
  };

  auto fillRow = [&](ThresholdRow &Row, const BuildResult &B, Program &Prog,
                     uint64_t SizeBefore, const FleetReport &Rep) {
    Row.CodeSize = B.CodeSize;
    Row.SavingsBytes = SizeBefore - B.CodeSize;
    for (const OutlineRoundStats &RS : B.OutlineStats.Rounds)
      Row.DroppedHot += RS.CandidatesDroppedHot;
    Row.SuppressedOccurrences = B.Remarks.suppressedOccurrences();
    for (const SizeRemark &SR : B.Remarks.Remarks)
      Row.HotFunctions += SR.Heat == HeatClass::Hot;
    Row.Digest = programContentDigest(Prog);
    Row.Fleet = Rep.Overall;
  };

  // Arm 1: the unoutlined baseline — the measurement vehicle. Its fleet
  // run is what captures the heat profile every guided arm consumes
  // (measure -> classify -> rebuild, the production loop in-process).
  BuildResult BaseBuild;
  auto BaseProg = buildArm(0, nullptr, 0, BaseBuild);
  const uint64_t SizeBefore = BaseProg->codeSize();
  HeatProfile Heat;
  const FleetReport BaseRep = runFleet(*BaseProg, O, nullptr, nullptr, &Heat);
  ThresholdRow BaseRow;
  BaseRow.Threshold = -1;
  fillRow(BaseRow, BaseBuild, *BaseProg, SizeBefore, BaseRep);
  std::printf("baseline: %.1f KB unoutlined, heat profile: %zu function(s), "
              "%llu cycle(s)\n",
              SizeBefore / 1024.0, Heat.Functions.size(),
              static_cast<unsigned long long>(Heat.totalCycles()));

  // Arm 2: profile-free outlining, the pre-heat pipeline verbatim; its
  // digest is the byte-identity reference for threshold 0.
  BuildResult FreeBuild;
  auto FreeProg = buildArm(Rounds, nullptr, 0, FreeBuild);
  ThresholdRow FreeRow;
  FreeRow.Threshold = -2;
  fillRow(FreeRow, FreeBuild, *FreeProg, SizeBefore,
          runFleet(*FreeProg, O));

  std::vector<ThresholdRow> Rows;
  Rows.push_back(BaseRow);
  Rows.push_back(FreeRow);
  const int Sweep[] = {0, 50, 90, 99, 100};
  for (int Th : Sweep) {
    BuildResult B;
    auto Prog = buildArm(Rounds, &Heat, static_cast<unsigned>(Th), B);
    ThresholdRow Row;
    Row.Threshold = Th;
    fillRow(Row, B, *Prog, SizeBefore, runFleet(*Prog, O));
    Rows.push_back(Row);
  }

  section("per-threshold size/latency front");
  std::printf("%-8s %10s %10s %12s %12s %8s %8s\n", "arm", "code_kb",
              "saved_kb", "cycles_p50", "cycles_p95", "hot_fns", "dropped");
  for (const ThresholdRow &R : Rows)
    std::printf("%-8s %10.1f %10.1f %12.0f %12.0f %8llu %8llu\n", rowName(R),
                R.CodeSize / 1024.0, R.SavingsBytes / 1024.0,
                R.Fleet.CyclesP50, R.Fleet.CyclesP95,
                static_cast<unsigned long long>(R.HotFunctions),
                static_cast<unsigned long long>(R.DroppedHot));

  std::string J = "{\n  \"bench\": \"pareto\",\n";
  J += "  \"modules\": " + std::to_string(Modules) + ",\n";
  J += "  \"devices\": " + std::to_string(Devices) + ",\n";
  J += "  \"rounds\": " + std::to_string(Rounds) + ",\n";
  J += "  \"span_repeat\": " + std::to_string(Repeat) + ",\n";
  J += "  \"code_size_unoutlined\": " + std::to_string(SizeBefore) + ",\n";
  J += "  \"arms\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I)
    J += "    " + rowJson(Rows[I]) + (I + 1 < Rows.size() ? ",\n" : "\n");
  J += "  ]\n}\n";
  if (Status S = atomicWriteFile(JsonPath, J); !S.ok()) {
    std::fprintf(stderr, "fig_pareto: %s\n", S.render().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", JsonPath.c_str());

  auto row = [&](int Th) -> const ThresholdRow & {
    for (const ThresholdRow &R : Rows)
      if (R.Threshold == Th)
        return R;
    return Rows.front();
  };
  const ThresholdRow &Th0 = row(0), &Th90 = row(90), &Th100 = row(100);

  // Gate 1: threshold 0 is heat fully off — byte-identical artifact.
  if (Th0.Digest != FreeRow.Digest) {
    std::fprintf(stderr,
                 "FAIL: threshold 0 differs from the profile-free build "
                 "(%s vs %s)\n",
                 Th0.Digest.c_str(), FreeRow.Digest.c_str());
    return 1;
  }

  // Gate 2: outlining everything must regress P50 startup cycles over the
  // unoutlined baseline (otherwise there is nothing to trade), and
  // threshold 90 must claw back at least half of that regression.
  const double Regression = Th100.Fleet.CyclesP50 - BaseRow.Fleet.CyclesP50;
  const double Recovered = Th100.Fleet.CyclesP50 - Th90.Fleet.CyclesP50;
  if (Regression <= 0) {
    std::fprintf(stderr,
                 "FAIL: outline-everything did not regress P50 cycles "
                 "(%.0f -> %.0f)\n",
                 BaseRow.Fleet.CyclesP50, Th100.Fleet.CyclesP50);
    return 1;
  }
  if (Recovered < 0.5 * Regression) {
    std::fprintf(stderr,
                 "FAIL: threshold 90 recovered %.0f of %.0f regressed P50 "
                 "cycle(s) (%.1f%%, need >= 50%%)\n",
                 Recovered, Regression, 100.0 * Recovered / Regression);
    return 1;
  }

  // Gate 3: the recovery may not torch the size win — threshold 90 keeps
  // >= 85% of outline-everything's text savings.
  if (Th100.SavingsBytes == 0 ||
      Th90.SavingsBytes * 100 < Th100.SavingsBytes * 85) {
    std::fprintf(stderr,
                 "FAIL: threshold 90 kept %llu of %llu saved byte(s) "
                 "(need >= 85%%)\n",
                 static_cast<unsigned long long>(Th90.SavingsBytes),
                 static_cast<unsigned long long>(Th100.SavingsBytes));
    return 1;
  }

  std::printf("pareto gate: th0 byte-identical to profile-free; th90 "
              "recovered %.0f/%.0f P50 cycle(s) (%.1f%%) keeping %.1f%% of "
              "th100's %.1f KB savings\n",
              Recovered, Regression, 100.0 * Recovered / Regression,
              100.0 * double(Th90.SavingsBytes) / double(Th100.SavingsBytes),
              Th100.SavingsBytes / 1024.0);
  return 0;
}
