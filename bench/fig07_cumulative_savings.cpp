//===- bench/fig07_cumulative_savings.cpp - Paper Fig. 7 ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Fig. 7: cumulative size saving as progressively more
/// patterns are outlined, best-first. The paper's point: more than 100
/// patterns are needed to reach 90% of the achievable saving — hard-coding
/// a few idioms cannot work.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linker/Linker.h"
#include "outliner/PatternStats.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Fig. 7 — cumulative savings over best-first outlined patterns",
         "paper Fig. 7: >100 patterns needed for >90% of the gain");

  auto Prog = CorpusSynthesizer(AppProfile::uberRider()).generate();
  Module &Linked = linkProgram(*Prog);
  PatternAnalysis A = analyzePatterns(*Prog, Linked);
  auto Cum = A.cumulativeSavingsBestFirst();
  if (Cum.empty()) {
    std::printf("no profitable patterns found\n");
    return 1;
  }
  const double Total = static_cast<double>(Cum.back());

  section("patterns outlined -> cumulative saving");
  std::printf("%10s %14s %10s\n", "#patterns", "saving(KB)", "share%");
  for (size_t I = 1; I <= Cum.size(); I = I < 16 ? I + 1 : I + I / 2) {
    std::printf("%10zu %14.1f %9.1f%%\n", I, kb(Cum[I - 1]),
                100.0 * double(Cum[I - 1]) / Total);
    if (I == Cum.size())
      break;
  }
  std::printf("%10zu %14.1f %9.1f%%\n", Cum.size(), kb(Cum.back()), 100.0);

  section("patterns needed for a share of the achievable saving");
  for (double Share : {0.5, 0.75, 0.9, 0.95, 0.99})
    std::printf("  %4.0f%% of saving: %u patterns\n", Share * 100,
                A.patternsForShareOfSavings(Share));
  std::printf("[paper: >100 patterns for >90%%]\n");
  return 0;
}
