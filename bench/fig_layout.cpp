//===- bench/fig_layout.cpp - Layout-strategy fleet comparison ------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Head-to-head of the pluggable code-layout strategies over the closed
/// measure->layout->verify loop: builds the Table 5 corpus, captures
/// startup traces from an original-layout fleet run, replans with each
/// strategy through the real build pipeline, and re-measures on the same
/// fleet. Prints per-strategy startup metrics and layout planning cost,
/// and emits BENCH_layout.json for CI trend tracking.
///
/// The bench doubles as the layout_smoke regression gate:
///   - bp must beat original on simulated text page faults, and
///   - no strategy may change code size or outlining stats (layout moves
///     addresses, never bytes).
///
///   fig_layout [--modules N] [--devices N] [--rounds N] [--seed S]
///              [--threads N] [--json PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linker/LayoutStrategy.h"
#include "pipeline/BuildPipeline.h"
#include "support/FileAtomics.h"
#include "synth/CorpusSynthesizer.h"
#include "telemetry/FleetSim.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

namespace {

struct StrategyRow {
  std::string Name;
  uint64_t CodeSize = 0;
  uint64_t SequencesOutlined = 0;
  uint64_t FunctionsCreated = 0;
  uint64_t FunctionsTraced = 0;
  uint64_t EstimatedTextFaults = 0;
  uint64_t SimulatedTextFaults = 0; ///< Summed over every fleet device.
  double LayoutSeconds = 0;
  FleetMetrics Fleet;
};

std::string rowJson(const StrategyRow &R) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"strategy\": \"%s\", \"code_size\": %llu, "
      "\"sequences_outlined\": %llu, \"functions_traced\": %llu, "
      "\"estimated_text_faults\": %llu, \"simulated_text_faults\": %llu, "
      "\"layout_seconds\": %.6f, \"cycles_p50\": %.1f, \"cycles_p95\": "
      "%.1f, \"text_page_faults_p50\": %.1f, \"text_page_faults_p95\": "
      "%.1f, \"data_page_faults_p50\": %.1f, \"data_page_faults_p95\": "
      "%.1f, \"icache_miss_p50\": %.1f, \"icache_miss_p95\": %.1f}",
      R.Name.c_str(), static_cast<unsigned long long>(R.CodeSize),
      static_cast<unsigned long long>(R.SequencesOutlined),
      static_cast<unsigned long long>(R.FunctionsTraced),
      static_cast<unsigned long long>(R.EstimatedTextFaults),
      static_cast<unsigned long long>(R.SimulatedTextFaults), R.LayoutSeconds,
      R.Fleet.CyclesP50, R.Fleet.CyclesP95, R.Fleet.TextFaultsP50,
      R.Fleet.TextFaultsP95, R.Fleet.DataFaultsP50, R.Fleet.DataFaultsP95,
      R.Fleet.ICacheMissP50, R.Fleet.ICacheMissP95);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Modules = 64, Devices = 32, Rounds = 3, Threads = 4;
  uint64_t Seed = 0x5EED;
  std::string JsonPath = "BENCH_layout.json";
  for (int I = 1; I < argc; ++I) {
    auto Next = [&]() { return I + 1 < argc ? argv[++I] : ""; };
    if (!std::strcmp(argv[I], "--modules"))
      Modules = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--devices"))
      Devices = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--rounds"))
      Rounds = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--seed"))
      Seed = std::strtoull(Next(), nullptr, 0);
    else if (!std::strcmp(argv[I], "--threads"))
      Threads = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--json"))
      JsonPath = Next();
    else {
      std::fprintf(stderr,
                   "usage: fig_layout [--modules N] [--devices N] "
                   "[--rounds N] [--seed S] [--threads N] [--json PATH]\n");
      return 1;
    }
  }

  banner("Code-layout strategies — fleet startup comparison",
         "Section VI layout sensitivity; bp (arxiv 2211.09285) and "
         "Codestitcher (arxiv 1810.00905) vs module order");
  std::printf("%u modules, %u devices, %u round(s), seed 0x%llx, "
              "%u thread(s)\n",
              Modules, Devices, Rounds,
              static_cast<unsigned long long>(Seed), Threads);

  FleetOptions O;
  O.NumDevices = Devices;
  O.Seed = Seed;
  O.Threads = Threads;
  const AppProfile AP = AppProfile::uberRider();
  for (unsigned S = 0; S < AP.NumSpans; ++S)
    O.Entries.push_back(CorpusSynthesizer::spanFunctionName(S));

  // One pipeline build per strategy over the same deterministic corpus;
  // bp/stitch consume the traces the original-layout fleet run captured —
  // the closed loop, in process.
  auto buildWith = [&](const std::string &Strategy,
                       const TraceProfile *Profile, BuildResult &R) {
    AppProfile P = AppProfile::uberRider();
    P.NumModules = Modules;
    auto Prog = CorpusSynthesizer(P).withThreads(Threads).generate();
    PipelineOptions Opts;
    Opts.OutlineRounds = Rounds;
    Opts.WholeProgram = true;
    Opts.Threads = Threads;
    Opts.Layout.Strategy = Strategy;
    Opts.Layout.Profile = Profile;
    R = buildProgram(*Prog, Opts);
    return Prog;
  };

  BuildResult OrigBuild;
  auto Orig = buildWith("original", nullptr, OrigBuild);
  TraceProfile Traces;
  const FleetReport OrigReport = runFleet(*Orig, O, nullptr, &Traces);

  auto sumTextFaults = [](const FleetReport &R) {
    uint64_t N = 0;
    for (const DeviceResult &D : R.Devices)
      N += D.Counters.TextPageFaults;
    return N;
  };

  std::vector<StrategyRow> Rows;
  bool BytesDiffer = false;
  for (const std::string &Name : layoutStrategyNames()) {
    StrategyRow Row;
    Row.Name = Name;
    BuildResult B = OrigBuild;
    std::unique_ptr<Program> Prog;
    FleetReport Rep;
    if (Name == "original") {
      Rep = OrigReport;
      Prog = nullptr;
      Row.Fleet = OrigReport.Overall;
    } else {
      Prog = buildWith(Name, &Traces, B);
      Rep = runFleet(*Prog, O, &B.Layout);
      Row.Fleet = Rep.Overall;
    }
    Row.CodeSize = B.CodeSize;
    Row.SequencesOutlined = B.OutlineStats.totalSequencesOutlined();
    Row.FunctionsCreated = B.OutlineStats.totalFunctionsCreated();
    Row.FunctionsTraced = B.Layout.FunctionsTraced;
    Row.EstimatedTextFaults = B.Layout.EstimatedTextFaults;
    Row.SimulatedTextFaults = sumTextFaults(Rep);
    Row.LayoutSeconds = B.Layout.Seconds;
    if (B.CodeSize != OrigBuild.CodeSize ||
        Row.SequencesOutlined !=
            OrigBuild.OutlineStats.totalSequencesOutlined() ||
        Row.FunctionsCreated !=
            OrigBuild.OutlineStats.totalFunctionsCreated())
      BytesDiffer = true;
    Rows.push_back(Row);
  }

  section("per-strategy fleet startup metrics");
  std::printf("%-9s %12s %12s %10s %10s %10s %10s %9s\n", "strategy",
              "cycles_p50", "cycles_p95", "text_p50", "text_p95",
              "icache_p50", "sim_faults", "plan_sec");
  for (const StrategyRow &R : Rows)
    std::printf("%-9s %12.0f %12.0f %10.1f %10.1f %10.1f %10llu %9.3f\n",
                R.Name.c_str(), R.Fleet.CyclesP50, R.Fleet.CyclesP95,
                R.Fleet.TextFaultsP50, R.Fleet.TextFaultsP95,
                R.Fleet.ICacheMissP50,
                static_cast<unsigned long long>(R.SimulatedTextFaults),
                R.LayoutSeconds);

  std::string J = "{\n  \"bench\": \"layout\",\n";
  J += "  \"modules\": " + std::to_string(Modules) + ",\n";
  J += "  \"devices\": " + std::to_string(Devices) + ",\n";
  J += "  \"rounds\": " + std::to_string(Rounds) + ",\n";
  J += "  \"strategies\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I)
    J += "    " + rowJson(Rows[I]) + (I + 1 < Rows.size() ? ",\n" : "\n");
  J += "  ]\n}\n";
  if (Status S = atomicWriteFile(JsonPath, J); !S.ok()) {
    std::fprintf(stderr, "fig_layout: %s\n", S.render().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", JsonPath.c_str());

  // Regression gate (the layout_smoke ctest): bp must cut simulated text
  // page faults, and layout must never change bytes or outlining stats.
  const StrategyRow *OrigRow = nullptr, *BpRow = nullptr;
  for (const StrategyRow &R : Rows) {
    if (R.Name == "original")
      OrigRow = &R;
    if (R.Name == "bp")
      BpRow = &R;
  }
  if (BytesDiffer) {
    std::fprintf(stderr,
                 "FAIL: a layout strategy changed code size or outlining "
                 "stats\n");
    return 1;
  }
  if (!OrigRow || !BpRow ||
      BpRow->SimulatedTextFaults >= OrigRow->SimulatedTextFaults) {
    std::fprintf(stderr,
                 "FAIL: bp did not beat original on simulated text page "
                 "faults (%llu vs %llu)\n",
                 static_cast<unsigned long long>(
                     BpRow ? BpRow->SimulatedTextFaults : 0),
                 static_cast<unsigned long long>(
                     OrigRow ? OrigRow->SimulatedTextFaults : 0));
    return 1;
  }
  std::printf("layout gate: bp cut simulated text faults %llu -> %llu "
              "(%.1f%%), bytes identical across strategies\n",
              static_cast<unsigned long long>(OrigRow->SimulatedTextFaults),
              static_cast<unsigned long long>(BpRow->SimulatedTextFaults),
              savingPercent(OrigRow->SimulatedTextFaults,
                            BpRow->SimulatedTextFaults));
  return 0;
}
