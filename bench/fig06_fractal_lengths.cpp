//===- bench/fig06_fractal_lengths.cpp - Paper Fig. 6 ---------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Fig. 6: sequence length versus pattern id on a linear
/// x-axis reveals the "fractal" structure — patterns with the same
/// frequency form clusters, and as frequency decreases the clusters get
/// wider (more distinct patterns) and taller (longer sequences appear).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linker/Linker.h"
#include "outliner/PatternStats.h"
#include "synth/CorpusSynthesizer.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Fig. 6 — fractal structure of pattern lengths",
         "paper Fig. 6: same-frequency clusters widen and grow taller as "
         "frequency drops");

  auto Prog = CorpusSynthesizer(AppProfile::uberRider()).generate();
  Module &Linked = linkProgram(*Prog);
  PatternAnalysis A = analyzePatterns(*Prog, Linked);

  // Cluster patterns by repetition frequency (they are already in rank
  // order, i.e. descending frequency).
  struct Cluster {
    uint64_t Freq;
    unsigned Count = 0;
    unsigned MaxLen = 0;
    unsigned MinRank = 0;
  };
  std::vector<Cluster> Clusters;
  for (const PatternRecord &P : A.Patterns) {
    if (Clusters.empty() || Clusters.back().Freq != P.Frequency) {
      Clusters.push_back(Cluster{P.Frequency, 0, 0, P.Rank});
    }
    Cluster &C = Clusters.back();
    ++C.Count;
    C.MaxLen = std::max(C.MaxLen, P.Length);
  }

  section("frequency clusters (highest frequency first)");
  std::printf("%10s %12s %14s %10s\n", "freq", "#patterns", "max length",
              "first rank");
  for (size_t I = 0; I < Clusters.size(); I = I < 12 ? I + 1 : I + I / 3) {
    const Cluster &C = Clusters[I];
    std::printf("%10llu %12u %14u %10u\n",
                static_cast<unsigned long long>(C.Freq), C.Count, C.MaxLen,
                C.MinRank);
  }

  // The fractal claim, quantified: cluster width and max length both grow
  // as frequency falls. Compare the first-quartile clusters with the
  // last-quartile ones.
  auto Avg = [&](size_t Lo, size_t Hi, auto Get) {
    double S = 0;
    for (size_t I = Lo; I < Hi; ++I)
      S += Get(Clusters[I]);
    return S / double(Hi - Lo);
  };
  size_t Q = Clusters.size() / 4;
  section("quartile comparison (high-frequency vs low-frequency clusters)");
  std::printf("avg #patterns/cluster: %.1f (hot quartile) vs %.1f (cold)\n",
              Avg(0, Q, [](const Cluster &C) { return C.Count; }),
              Avg(Clusters.size() - Q, Clusters.size(),
                  [](const Cluster &C) { return C.Count; }));
  std::printf("avg max length:        %.1f (hot quartile) vs %.1f (cold)\n",
              Avg(0, Q, [](const Cluster &C) { return C.MaxLen; }),
              Avg(Clusters.size() - Q, Clusters.size(),
                  [](const Cluster &C) { return C.MaxLen; }));

  // Longest repeating pattern (paper: 279 instructions, 3 repeats, from
  // closure specialization).
  const PatternRecord *Longest = nullptr;
  for (const PatternRecord &P : A.Patterns)
    if (!Longest || P.Length > Longest->Length)
      Longest = &P;
  if (Longest)
    std::printf("\nlongest repeating pattern: %u instrs x %llu repeats "
                "[paper: 279 x 3]\n",
                Longest->Length,
                static_cast<unsigned long long>(Longest->Frequency));
  return 0;
}
