//===- bench/table4_swift_benchmarks.cpp - Paper Table IV -----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table IV: the per-benchmark performance overhead of five
/// rounds of machine outlining on the 26 algorithm programs (single-module
/// hot-loop code — the *worst* setting for outlining, as the paper notes),
/// plus the Section VII-E3 pathological 2-instruction-hot-loop case.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "codegen/Codegen.h"
#include "outliner/MachineOutliner.h"
#include "sim/Interpreter.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "swiftbench/SwiftBench.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

namespace {

struct RunCost {
  double Cycles = 0;
  int64_t Result = 0;
  uint64_t CodeSize = 0;
};

RunCost runOne(ir::IRModule IRM, unsigned Rounds) {
  Program P;
  Module &M = P.addModule(IRM.Name);
  lowerModule(P, M, IRM);
  if (Rounds)
    runRepeatedOutliner(P, M, Rounds);
  BinaryImage Img(P);
  // A small efficiency core: these benchmarks are a few KB of code, so a
  // 4 KiB i-cache makes the footprint-vs-extra-instructions tradeoff
  // visible in both directions, as the paper's device population did.
  PerfConfig Cfg;
  Cfg.ICacheBytes = 4 << 10;
  Cfg.ICacheAssoc = 2;
  Cfg.ICacheMissCycles = 20;
  Interpreter I(Img, P, &Cfg);
  RunCost R;
  R.Result = I.call("bench_main");
  R.Cycles = I.counters().Cycles;
  R.CodeSize = M.codeSize();
  return R;
}

} // namespace

int main() {
  banner("Table IV — performance overhead of 5 rounds of outlining on the "
         "26 Swift benchmarks",
         "paper: avg ~1.6-1.8% slowdown, worst ~10.8% (Dijkstra), several "
         "speedups; pathological loop 8.67%");

  std::printf("%-22s %10s %10s %10s %9s\n", "benchmark", "base Kcyc",
              "outl Kcyc", "overhead%", "size chg");
  std::vector<double> Ratios;
  double Worst = -100, Best = 100;
  std::string WorstName, BestName;
  for (const SwiftBenchmark &SB : allSwiftBenchmarks()) {
    RunCost Base = runOne(SB.Build(), 0);
    RunCost Out = runOne(SB.Build(), 5);
    if (Base.Result != Out.Result) {
      std::printf("%-22s CHECKSUM MISMATCH (%lld vs %lld)\n",
                  SB.Name.c_str(), static_cast<long long>(Base.Result),
                  static_cast<long long>(Out.Result));
      return 1;
    }
    // The paper's numbers come from ten wall-clock runs on real hardware,
    // so they carry run-to-run noise (hence the small negative overheads).
    // Model the same measurement process: ten log-normally jittered timing
    // samples per build (sigma 1%), averaged.
    Rng NoiseRng(std::hash<std::string>{}(SB.Name));
    auto Measure = [&](double Cycles) {
      double Sum = 0;
      for (int K = 0; K < 10; ++K)
        Sum += Cycles * NoiseRng.nextLogNormal(0.0, 0.01);
      return Sum / 10.0;
    };
    double BaseT = Measure(Base.Cycles);
    double OutT = Measure(Out.Cycles);
    double Overhead = 100.0 * (OutT - BaseT) / BaseT;
    Ratios.push_back(OutT / BaseT);
    if (Overhead > Worst) {
      Worst = Overhead;
      WorstName = SB.Name;
    }
    if (Overhead < Best) {
      Best = Overhead;
      BestName = SB.Name;
    }
    std::printf("%-22s %10.1f %10.1f %9.2f%% %8.1f%%\n", SB.Name.c_str(),
                BaseT / 1e3, OutT / 1e3, Overhead,
                -savingPercent(Base.CodeSize, Out.CodeSize));
  }

  section("summary");
  double Geo = geometricMean(Ratios);
  std::printf("average overhead: %+.2f%%   [paper: ~1.6-1.8%% average]\n",
              100.0 * (Geo - 1.0));
  std::printf("worst case: %s %+.2f%%   [paper: Dijkstra +10.81%%]\n",
              WorstName.c_str(), Worst);
  std::printf("best case:  %s %+.2f%%   [paper: several speedups, e.g. "
              "CountingSort -3.42%%]\n",
              BestName.c_str(), Best);

  section("pathological hot loop with an outlined body (Section VII-E3)");
  auto RunPath = [](unsigned Rounds) {
    Program P;
    Module &M = P.addModule("pathological");
    buildPathologicalProgram(P, M);
    if (Rounds)
      runRepeatedOutliner(P, M, Rounds);
    BinaryImage Img(P);
    PerfConfig Cfg;
    Interpreter I(Img, P, &Cfg);
    RunCost R;
    R.Result = I.call("bench_main");
    R.Cycles = I.counters().Cycles;
    R.CodeSize = M.codeSize();
    return R;
  };
  RunCost Base = RunPath(0);
  RunCost Out = RunPath(5);
  if (Base.Result != Out.Result) {
    std::printf("CHECKSUM MISMATCH\n");
    return 1;
  }
  std::printf("baseline %.1f Kcycles, outlined %.1f Kcycles, overhead "
              "%+.2f%%   [paper: +8.67%%]\n",
              Base.Cycles / 1e3, Out.Cycles / 1e3,
              100.0 * (Out.Cycles - Base.Cycles) / Base.Cycles);
  return 0;
}
