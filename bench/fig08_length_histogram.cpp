//===- bench/fig08_length_histogram.cpp - Paper Fig. 8 --------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Fig. 8: histogram of candidate counts by sequence length.
/// Short patterns dominate (length 2 most of all); also reports the share
/// of profitable candidates ending in a call or return (paper: 67%).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linker/Linker.h"
#include "outliner/PatternStats.h"
#include "support/Statistics.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Fig. 8 — candidates per sequence length",
         "paper Fig. 8: length-2 dominates; long patterns are rare");

  auto Prog = CorpusSynthesizer(AppProfile::uberRider()).generate();
  Module &Linked = linkProgram(*Prog);
  PatternAnalysis A = analyzePatterns(*Prog, Linked);

  IntHistogram Hist;
  for (const PatternRecord &P : A.Patterns)
    Hist.add(P.Length, P.Frequency);

  section("length -> #candidates (bar)");
  uint64_t Max = 0;
  for (const auto &KV : Hist.bins())
    Max = KV.second > Max ? KV.second : Max;
  unsigned Printed = 0;
  for (const auto &KV : Hist.bins()) {
    if (Printed++ > 24) {
      std::printf("   ... (%zu more bins up to length %llu)\n",
                  Hist.bins().size() - Printed + 1,
                  static_cast<unsigned long long>(Hist.maxValue()));
      break;
    }
    int Bar = static_cast<int>(60.0 * double(KV.second) / double(Max));
    std::printf("%4llu |%-60.*s| %llu\n",
                static_cast<unsigned long long>(KV.first), Bar,
                "############################################################",
                static_cast<unsigned long long>(KV.second));
  }

  section("headline facts");
  uint64_t Len2 = Hist.count(2);
  std::printf("length-2 candidates: %llu of %llu (%.1f%%) — the modal "
              "length [paper: len 2 most common]\n",
              static_cast<unsigned long long>(Len2),
              static_cast<unsigned long long>(Hist.totalCount()),
              percent(Len2, Hist.totalCount()));
  std::printf("call/return-ending candidates: %.1f%%   [paper: 67%%]\n",
              100.0 * A.callRetEndingShare());
  std::printf("longest pattern bin: length %llu\n",
              static_cast<unsigned long long>(Hist.maxValue()));
  return 0;
}
