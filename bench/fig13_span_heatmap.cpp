//===- bench/fig13_span_heatmap.cpp - Paper Fig. 13 & Table III -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Fig. 13 and Table III: per-span P50 latency ratios
/// (optimized / baseline) over a grid of hardware versions (rows) and OS
/// versions (columns), with production-style sampling noise; cells with
/// fewer than 25k samples are left blank, as in the paper. The baseline is
/// the default pipeline without outlining; the optimized build is
/// whole-program, five rounds, with the module-order data layout.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/BuildPipeline.h"
#include "sim/Interpreter.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

namespace {

struct Device {
  const char *Name;
  uint64_t ICacheBytes;
  unsigned ICacheMissCycles;
  unsigned BranchTableEntries;
  double BaseCpi;
};

struct OsVersion {
  const char *Name;
  unsigned ITlbEntries;
  unsigned DataResidentPages;
  double NoiseSigma;
};

// Cache/TLB capacities are scaled to the corpus (the synthetic app is
// ~1.5% of UberRider): what matters is the ratio of span instruction
// footprint to i-cache and i-TLB reach, which these choices keep in the
// production regime (footprint a few times larger than L1I, several times
// larger than TLB reach).
const Device Devices[] = {
    {"iPhone 7", 32 << 10, 18, 1024, 0.70},
    {"iPhone 8", 32 << 10, 16, 2048, 0.60},
    {"iPhone X", 64 << 10, 16, 2048, 0.55},
    {"iPhone XR", 64 << 10, 14, 4096, 0.50},
    {"iPhone 11", 128 << 10, 14, 4096, 0.45},
    {"iPhone 11 Pro", 128 << 10, 12, 8192, 0.42},
};

const OsVersion OsVersions[] = {
    {"iOS 12.4", 16, 24, 0.050},
    {"iOS 13.1", 20, 32, 0.045},
    {"iOS 13.5", 24, 40, 0.040},
    {"iOS 14.0", 28, 48, 0.035},
};

PerfConfig makeConfig(const Device &D, const OsVersion &O) {
  PerfConfig C;
  C.ICacheBytes = D.ICacheBytes;
  C.ICacheMissCycles = D.ICacheMissCycles;
  C.BranchTableEntries = D.BranchTableEntries;
  C.BaseCyclesPerInstr = D.BaseCpi;
  C.ITlbEntries = O.ITlbEntries;
  C.ITlbPageBytes = 16 << 10; // iOS page size.
  C.DataResidentPages = O.DataResidentPages;
  C.DataPageBytes = 16 << 10;
  return C;
}

/// Production sample volume for a cell (deterministic pseudo-popularity).
uint64_t cellSamples(unsigned Span, unsigned Dev, unsigned Os) {
  uint64_t H = (Span * 2654435761u) ^ (Dev * 40503u) ^ (Os * 2246822519u);
  H ^= H >> 13;
  return 8000 + (H % 120000);
}

/// P50 of a log-normally jittered latency population around \p Cycles.
double noisyP50(double Cycles, double Sigma, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> Samples;
  Samples.reserve(41);
  for (int I = 0; I < 41; ++I)
    Samples.push_back(Cycles * R.nextLogNormal(0.0, Sigma));
  return percentile(Samples, 50);
}

} // namespace

int main() {
  banner("Fig. 13 / Table III — span P50 ratio heatmap over device x OS",
         "paper: geomean 3.4% gain, IPC +4%, ~3% of dynamic instrs "
         "outlined, worst span mildly regressed");

  const AppProfile Profile = AppProfile::uberRider();

  // Build both binaries once.
  auto BaseProg = CorpusSynthesizer(Profile).generate();
  PipelineOptions BaseOpts;
  BaseOpts.WholeProgram = false;
  BaseOpts.OutlineRounds = 0;
  buildProgram(*BaseProg, BaseOpts);
  BinaryImage BaseImg(*BaseProg);

  auto OptProg = CorpusSynthesizer(Profile).generate();
  PipelineOptions OptOpts;
  OptOpts.WholeProgram = true;
  OptOpts.OutlineRounds = 5;
  OptOpts.DataLayout = DataLayoutMode::PreserveModuleOrder;
  buildProgram(*OptProg, OptOpts);
  BinaryImage OptImg(*OptProg);

  const unsigned NumDev = sizeof(Devices) / sizeof(Devices[0]);
  const unsigned NumOs = sizeof(OsVersions) / sizeof(OsVersions[0]);

  std::vector<double> AllRatios;
  std::vector<double> BaseMeans(Profile.NumSpans, 0),
      OptMeans(Profile.NumSpans, 0);
  std::vector<unsigned> CellCount(Profile.NumSpans, 0);
  double IpcBaseSum = 0, IpcOptSum = 0;
  uint64_t DynTotal = 0, DynOutlined = 0;
  unsigned IpcCells = 0;

  for (unsigned S = 0; S < Profile.NumSpans; ++S) {
    std::printf("\nSPAN%u (P50 optimized/baseline; <1.00 is a win; '--' "
                "means <25k samples)\n",
                S + 1);
    std::printf("%-14s", "");
    for (unsigned O = 0; O < NumOs; ++O)
      std::printf(" %9s", OsVersions[O].Name);
    std::printf("\n");
    for (unsigned D = 0; D < NumDev; ++D) {
      std::printf("%-14s", Devices[D].Name);
      for (unsigned O = 0; O < NumOs; ++O) {
        if (cellSamples(S, D, O) < 25000) {
          std::printf(" %9s", "--");
          continue;
        }
        PerfConfig Cfg = makeConfig(Devices[D], OsVersions[O]);
        Interpreter BI(BaseImg, *BaseProg, &Cfg);
        BI.call(CorpusSynthesizer::spanFunctionName(S));
        Interpreter OI(OptImg, *OptProg, &Cfg);
        OI.call(CorpusSynthesizer::spanFunctionName(S));

        double Sigma = OsVersions[O].NoiseSigma;
        uint64_t Seed = (S * 131 + D * 17 + O) * 1000003ull;
        double BaseP50 = noisyP50(BI.counters().Cycles, Sigma, Seed);
        double OptP50 = noisyP50(OI.counters().Cycles, Sigma, Seed + 7);
        double Ratio = OptP50 / BaseP50;
        std::printf(" %9.3f", Ratio);
        AllRatios.push_back(Ratio);
        BaseMeans[S] += BI.counters().Cycles;
        OptMeans[S] += OI.counters().Cycles;
        ++CellCount[S];
        IpcBaseSum += BI.counters().ipc();
        IpcOptSum += OI.counters().ipc();
        ++IpcCells;
        DynTotal += OI.counters().Instrs;
        DynOutlined += OI.counters().OutlinedInstrs;
      }
      std::printf("\n");
    }
  }

  section("Table III — average span cost (device/OS mean, Mcycles)");
  std::printf("%8s %14s %14s %8s\n", "span", "baseline", "optimized",
              "ratio");
  for (unsigned S = 0; S < Profile.NumSpans; ++S) {
    if (CellCount[S] == 0)
      continue;
    double Bm = BaseMeans[S] / CellCount[S] / 1e6;
    double Om = OptMeans[S] / CellCount[S] / 1e6;
    std::printf("SPAN%-4u %14.2f %14.2f %8.3f\n", S + 1, Bm, Om, Om / Bm);
  }

  section("headline numbers");
  std::printf("geomean P50 ratio: %.3f (%.1f%% %s)   [paper: 0.966, 3.4%% "
              "gain]\n",
              geometricMean(AllRatios),
              100.0 * std::abs(1.0 - geometricMean(AllRatios)),
              geometricMean(AllRatios) < 1.0 ? "gain" : "regression");
  std::printf("IPC: baseline %.2f vs optimized %.2f (%+.1f%%)   [paper: "
              "+4%% IPC]\n",
              IpcBaseSum / IpcCells, IpcOptSum / IpcCells,
              100.0 * (IpcOptSum - IpcBaseSum) / IpcBaseSum);
  std::printf("dynamic instructions in outlined code: %.1f%%   [paper: "
              "~3%%]\n",
              percent(DynOutlined, DynTotal));
  return 0;
}
