//===- bench/fig12_outlining_rounds.cpp - Paper Fig. 12 & Table II --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Fig. 12 (binary & code size over 0..5 rounds of repeated
/// outlining, intra-module vs whole-program) and Table II (per-round
/// outlining statistics: sequences outlined, functions created, bytes
/// consumed by outlined functions).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Fig. 12 / Table II — repeated outlining rounds, intra vs "
         "whole-program",
         "paper: WP round-5 saves 22.8% code (27% of it from repeats); "
         "intra-module plateaus ~13.7% above WP");

  const AppProfile Profile = AppProfile::uberRider();
  // Fixed non-code app payload so "binary size" and "code size" series
  // separate, as in the figure (~8% of the paper app is non-binary; the
  // binary is ~77% code).
  uint64_t Baseline = 0;

  struct Cell {
    uint64_t Code = 0;
    uint64_t Binary = 0;
  };
  Cell Table[2][6]; // [intra=0/wp=1][rounds]

  for (int WP = 0; WP <= 1; ++WP) {
    for (unsigned Rounds = 0; Rounds <= 5; ++Rounds) {
      auto Prog = CorpusSynthesizer(Profile).generate();
      PipelineOptions Opts;
      Opts.WholeProgram = WP == 1;
      Opts.OutlineRounds = Rounds;
      BuildResult R = buildProgram(*Prog, Opts);
      uint64_t Resources = (R.CodeSize + R.DataSize) / 4; // Fixed media.
      Table[WP][Rounds] =
          Cell{R.CodeSize, R.CodeSize + R.DataSize + Resources};
      if (Rounds == 0 && WP == 1)
        Baseline = R.CodeSize;
    }
  }

  section("Fig. 12 series (KB)");
  std::printf("%8s %14s %14s %14s %14s\n", "rounds", "bin intra",
              "bin whole", "code intra", "code whole");
  for (unsigned Rounds = 0; Rounds <= 5; ++Rounds)
    std::printf("%8u %14.1f %14.1f %14.1f %14.1f\n", Rounds,
                kb(Table[0][Rounds].Binary), kb(Table[1][Rounds].Binary),
                kb(Table[0][Rounds].Code), kb(Table[1][Rounds].Code));

  section("headline comparisons");
  // The paper's 114.5MB baseline is the default pipeline — per-module,
  // one round (Swift 5.2 -Osize) — so the 22.8% headline is WP-5 vs PM-1.
  std::printf("WP round-5 vs default (PM round-1): %.1f%%   [paper: "
              "22.8%%]\n",
              savingPercent(Table[0][1].Code, Table[1][5].Code));
  std::printf("whole-program round-5 vs no outlining: %.1f%%\n",
              savingPercent(Baseline, Table[1][5].Code));
  std::printf("intra-module round-5 vs no outlining:  %.1f%%\n",
              savingPercent(Baseline, Table[0][5].Code));
  std::printf("intra round-5 is %.1f%% larger than whole-program round-5 "
              "[paper: 13.7%%]\n",
              100.0 * (double(Table[0][5].Code) - double(Table[1][5].Code)) /
                  double(Table[1][5].Code));
  double Round1Share =
      double(Baseline - Table[1][1].Code) /
      double(Baseline - Table[1][5].Code);
  std::printf("share of WP saving from repeats (rounds 2..5): %.0f%%   "
              "[paper: 27%%]\n",
              100.0 * (1.0 - Round1Share));

  // Table II: cumulative per-round statistics of the WP pipeline.
  section("Table II — outlining statistics at different repeat levels "
          "(whole-program)");
  auto Prog = CorpusSynthesizer(Profile).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 5;
  BuildResult R = buildProgram(*Prog, Opts);
  std::printf("%28s", "rounds of outlining ->");
  for (size_t I = 0; I < R.OutlineStats.Rounds.size(); ++I)
    std::printf(" %10zu", I + 1);
  std::printf("\n%28s", "# sequences outlined (cum)");
  uint64_t Seq = 0;
  for (const OutlineRoundStats &RS : R.OutlineStats.Rounds) {
    Seq += RS.SequencesOutlined;
    std::printf(" %10llu", static_cast<unsigned long long>(Seq));
  }
  std::printf("\n%28s", "# functions created (cum)");
  uint64_t Fns = 0;
  for (const OutlineRoundStats &RS : R.OutlineStats.Rounds) {
    Fns += RS.FunctionsCreated;
    std::printf(" %10llu", static_cast<unsigned long long>(Fns));
  }
  std::printf("\n%28s", "outlined-function KB (cum)");
  uint64_t Bytes = 0;
  for (const OutlineRoundStats &RS : R.OutlineStats.Rounds) {
    Bytes += RS.OutlinedFunctionBytes;
    std::printf(" %10.1f", kb(Bytes));
  }
  std::printf("\n[paper: 3.08->4.71M sequences, 115K->259K functions, "
              "1.69->3.53MB, diminishing per round]\n");
  return 0;
}
