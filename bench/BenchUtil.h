//===- bench/BenchUtil.h - Shared bench output helpers ----------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers shared by the per-figure/per-table bench binaries.
/// Each binary regenerates one evaluation artifact of the paper and prints
/// it in a self-describing text form captured into EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_BENCH_BENCHUTIL_H
#define MCO_BENCH_BENCHUTIL_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace mco {
namespace benchutil {

inline void banner(const std::string &Title, const std::string &PaperRef) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", Title.c_str());
  std::printf("Reproduces: %s\n", PaperRef.c_str());
  std::printf("==============================================================="
              "=\n");
}

inline void section(const std::string &Name) {
  std::printf("\n--- %s ---\n", Name.c_str());
}

inline double kb(uint64_t Bytes) { return double(Bytes) / 1024.0; }
inline double mb(uint64_t Bytes) { return double(Bytes) / (1024.0 * 1024.0); }

inline double percent(uint64_t Part, uint64_t Whole) {
  return Whole == 0 ? 0.0 : 100.0 * double(Part) / double(Whole);
}

inline double savingPercent(uint64_t Before, uint64_t After) {
  return Before == 0 ? 0.0
                     : 100.0 * double(Before - After) / double(Before);
}

} // namespace benchutil
} // namespace mco

#endif // MCO_BENCH_BENCHUTIL_H
