//===- bench/table1_landscape.cpp - Paper Table I -------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table I: the landscape of size-saving techniques the paper
/// surveyed, each run alone on the same corpus: SIL-style idiom outlining,
/// MergeFunctions-style identical merging, FMSA-style similar-function
/// merging, and whole-program repeated machine outlining.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linker/Linker.h"
#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"
#include "transforms/Transforms.h"

#include <cstdio>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Table I — the landscape of binary-size savings",
         "paper Table I: SIL outlining 0.41%, MergeFunction 0.9%, FMSA 2%, "
         "repeated machine outlining 23%");

  const AppProfile Profile = AppProfile::uberRider();
  std::printf("%-38s %10s %12s\n", "technique", "saving%", "paper");

  auto Fresh = [&]() {
    auto P = CorpusSynthesizer(Profile).generate();
    linkProgram(*P);
    return P;
  };

  { // SIL-style idiom outlining (whitelisted retain/release bridges).
    auto P = Fresh();
    TransformStats S = idiomOutliner(*P, *P->Modules[0]);
    std::printf("%-38s %9.2f%% %12s\n", "SIL outlining (idiom whitelist)",
                S.savingPercent(), "0.41%");
  }
  { // MergeFunctions (identical bodies).
    auto P = Fresh();
    TransformStats S = mergeIdenticalFunctions(*P, *P->Modules[0]);
    std::printf("%-38s %9.2f%% %12s\n", "MergeFunction (identical IR)",
                S.savingPercent(), "0.9%");
  }
  { // FMSA-like similar-function merging.
    auto P = Fresh();
    TransformStats S = mergeSimilarFunctions(*P, *P->Modules[0]);
    std::printf("%-38s %9.2f%% %12s\n", "FMSA (merge similar functions)",
                S.savingPercent(), "2%");
  }
  { // All function-merging passes stacked (still far from outlining).
    auto P = Fresh();
    Module &M = *P->Modules[0];
    uint64_t Before = M.codeSize();
    idiomOutliner(*P, M);
    mergeIdenticalFunctions(*P, M);
    mergeSimilarFunctions(*P, M);
    std::printf("%-38s %9.2f%% %12s\n", "all merging passes combined",
                savingPercent(Before, M.codeSize()), "-");
  }
  { // Whole-program repeated machine outlining (the paper's approach).
    // Reported the way the paper reports it: against the default pipeline
    // (per-module, one round -- Swift 5.2 -Osize).
    auto Default = CorpusSynthesizer(Profile).generate();
    PipelineOptions DefOpts;
    DefOpts.WholeProgram = false;
    DefOpts.OutlineRounds = 1;
    BuildResult DR = buildProgram(*Default, DefOpts);

    auto P = CorpusSynthesizer(Profile).generate();
    PipelineOptions Opts;
    Opts.OutlineRounds = 5;
    BuildResult R = buildProgram(*P, Opts);
    std::printf("%-38s %9.2f%% %12s\n",
                "repeated machine outlining (WP, 5 rounds)",
                savingPercent(DR.CodeSize, R.CodeSize), "23%");
  }
  return 0;
}
