//===- bench/table5_build_time.cpp - Paper Section VII-C ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the Section VII-C build-time analysis: the default
/// per-module pipeline versus the whole-program pipeline, with per-phase
/// wall-clock times and per-round outlining cost (the paper: default 21
/// min; WP 53 min + ~7 min for round 1, diminishing to <30s per extra
/// round; five rounds total 66 min).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Section VII-C — build time by pipeline and outlining rounds",
         "paper: default 21 min; WP +45 min total at 5 rounds, each extra "
         "round progressively cheaper");

  AppProfile Profile = AppProfile::uberRider();
  Profile.NumModules = 64; // Larger corpus so phase times are measurable.

  section("default (per-module) pipeline");
  {
    auto Prog = CorpusSynthesizer(Profile).generate();
    PipelineOptions Opts;
    Opts.WholeProgram = false;
    Opts.OutlineRounds = 1;
    BuildResult R = buildProgram(*Prog, Opts);
    std::printf("outline (per-module): %7.3f s\n", R.OutlineSeconds);
    std::printf("link:                 %7.3f s\n", R.LinkIRSeconds);
    std::printf("layout:               %7.3f s\n", R.LayoutSeconds);
    std::printf("total:                %7.3f s\n", R.totalSeconds());
  }

  section("whole-program pipeline by rounds");
  std::printf("%8s %10s %10s %10s %10s %14s\n", "rounds", "link(s)",
              "outline(s)", "layout(s)", "total(s)", "round times");
  for (unsigned Rounds : {0u, 1u, 2u, 3u, 5u}) {
    auto Prog = CorpusSynthesizer(Profile).generate();
    PipelineOptions Opts;
    Opts.OutlineRounds = Rounds;
    BuildResult R = buildProgram(*Prog, Opts);
    std::printf("%8u %10.3f %10.3f %10.3f %10.3f   ", Rounds,
                R.LinkIRSeconds, R.OutlineSeconds, R.LayoutSeconds,
                R.totalSeconds());
    for (double T : R.OutlineRoundSeconds)
      std::printf("%.2f ", T);
    std::printf("\n");
  }
  std::printf("\n[shape check: whole-program outlining dominates the build; "
              "round 1 is the most expensive round and later rounds cost "
              "progressively less, as in the paper]\n");
  return 0;
}
