//===- bench/table5_build_time.cpp - Paper Section VII-C ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the Section VII-C build-time analysis: the default
/// per-module pipeline versus the whole-program pipeline, with per-phase
/// wall-clock times and per-round outlining cost (the paper: default 21
/// min; WP 53 min + ~7 min for round 1, diminishing to <30s per extra
/// round; five rounds total 66 min). Also compares the parallel and
/// incremental engine configurations (which must produce identical sizes)
/// and emits the measurements as machine-readable JSON.
///
/// Also measures the crash-safe artifact cache: a cold (populating) build,
/// a warm rebuild served entirely from cache, and a journaled resume.
///
///   table5_build_time [--modules N] [--threads N] [--json PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

namespace {

/// One measured configuration, for the table and the JSON dump.
struct Measurement {
  std::string Name;
  std::string Pipeline;
  unsigned Threads = 1;
  bool Incremental = false;
  unsigned Rounds = 0;
  BuildResult R;
  uint64_t CodeSize = 0;
};

Measurement runConfig(const AppProfile &Profile, const std::string &Name,
                      bool WholeProgram, unsigned Rounds, unsigned Threads,
                      bool Incremental,
                      const ResilienceOptions *Resilience = nullptr) {
  Measurement M;
  M.Name = Name;
  M.Pipeline = WholeProgram ? "whole-program" : "per-module";
  M.Threads = Threads;
  M.Incremental = Incremental;
  M.Rounds = Rounds;
  auto Prog = CorpusSynthesizer(Profile).withThreads(Threads).generate();
  PipelineOptions Opts;
  Opts.WholeProgram = WholeProgram;
  Opts.OutlineRounds = Rounds;
  Opts.Threads = Threads;
  Opts.Outliner.Incremental = Incremental;
  if (Resilience)
    Opts.Resilience = *Resilience;
  M.R = buildProgram(*Prog, Opts);
  M.CodeSize = M.R.CodeSize;
  return M;
}

void writeJson(const std::string &Path, unsigned Modules, unsigned Threads,
               const std::vector<Measurement> &All) {
  std::ofstream Out(Path);
  Out << "{\n  \"bench\": \"table5_build_time\",\n";
  Out << "  \"modules\": " << Modules << ",\n";
  Out << "  \"threads\": " << Threads << ",\n";
  Out << "  \"configs\": [\n";
  for (size_t I = 0; I < All.size(); ++I) {
    const Measurement &M = All[I];
    Out << "    {\n";
    Out << "      \"name\": \"" << M.Name << "\",\n";
    Out << "      \"pipeline\": \"" << M.Pipeline << "\",\n";
    Out << "      \"threads\": " << M.Threads << ",\n";
    Out << "      \"incremental\": " << (M.Incremental ? "true" : "false")
        << ",\n";
    Out << "      \"rounds\": " << M.Rounds << ",\n";
    Out << "      \"link_seconds\": " << M.R.LinkIRSeconds << ",\n";
    Out << "      \"outline_seconds\": " << M.R.OutlineSeconds << ",\n";
    Out << "      \"layout_seconds\": " << M.R.LayoutSeconds << ",\n";
    Out << "      \"total_seconds\": " << M.R.totalSeconds() << ",\n";
    Out << "      \"round_seconds\": [";
    for (size_t J = 0; J < M.R.OutlineRoundSeconds.size(); ++J)
      Out << (J ? ", " : "") << M.R.OutlineRoundSeconds[J];
    Out << "],\n";
    Out << "      \"functions_remapped\": [";
    for (size_t J = 0; J < M.R.OutlineStats.Rounds.size(); ++J)
      Out << (J ? ", " : "") << M.R.OutlineStats.Rounds[J].FunctionsRemapped;
    Out << "],\n";
    Out << "      \"liveness_computed\": [";
    for (size_t J = 0; J < M.R.OutlineStats.Rounds.size(); ++J)
      Out << (J ? ", " : "") << M.R.OutlineStats.Rounds[J].LivenessComputed;
    Out << "],\n";
    Out << "      \"cache_hits\": " << M.R.CacheHits << ",\n";
    Out << "      \"cache_misses\": " << M.R.CacheMisses << ",\n";
    Out << "      \"modules_resumed\": " << M.R.ModulesResumed << ",\n";
    Out << "      \"code_size_bytes\": " << M.CodeSize << "\n";
    Out << "    }" << (I + 1 < All.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int argc, char **argv) {
  unsigned Modules = 64; // Larger corpus so phase times are measurable.
  unsigned Threads = 8;
  std::string JsonPath = "BENCH_build_time.json";
  for (int I = 1; I < argc; ++I) {
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "usage: table5_build_time [--modules N] "
                             "[--threads N] [--json PATH]\n");
        std::exit(1);
      }
      return argv[++I];
    };
    if (!std::strcmp(argv[I], "--modules"))
      Modules = static_cast<unsigned>(std::atoi(Next()));
    else if (!std::strcmp(argv[I], "--threads"))
      Threads = static_cast<unsigned>(std::atoi(Next()));
    else if (!std::strcmp(argv[I], "--json"))
      JsonPath = Next();
    else {
      std::fprintf(stderr, "table5_build_time: unknown option '%s'\n",
                   argv[I]);
      return 1;
    }
  }
  if (Threads == 0)
    Threads = 1;

  banner("Section VII-C — build time by pipeline and outlining rounds",
         "paper: default 21 min; WP +45 min total at 5 rounds, each extra "
         "round progressively cheaper");

  AppProfile Profile = AppProfile::uberRider();
  Profile.NumModules = Modules;

  std::vector<Measurement> All;

  section("default (per-module) pipeline");
  {
    Measurement M =
        runConfig(Profile, "per_module_j1", /*WholeProgram=*/false,
                  /*Rounds=*/1, /*Threads=*/1, /*Incremental=*/false);
    std::printf("outline (per-module): %7.3f s\n", M.R.OutlineSeconds);
    std::printf("link:                 %7.3f s\n", M.R.LinkIRSeconds);
    std::printf("layout:               %7.3f s\n", M.R.LayoutSeconds);
    std::printf("total:                %7.3f s\n", M.R.totalSeconds());
    All.push_back(M);
  }

  section("whole-program pipeline by rounds");
  std::printf("%8s %10s %10s %10s %10s %14s\n", "rounds", "link(s)",
              "outline(s)", "layout(s)", "total(s)", "round times");
  for (unsigned Rounds : {0u, 1u, 2u, 3u, 5u}) {
    Measurement M = runConfig(
        Profile, "wp_r" + std::to_string(Rounds) + "_j1",
        /*WholeProgram=*/true, Rounds, /*Threads=*/1, /*Incremental=*/false);
    std::printf("%8u %10.3f %10.3f %10.3f %10.3f   ", Rounds,
                M.R.LinkIRSeconds, M.R.OutlineSeconds, M.R.LayoutSeconds,
                M.R.totalSeconds());
    for (double T : M.R.OutlineRoundSeconds)
      std::printf("%.2f ", T);
    std::printf("\n");
    All.push_back(M);
  }
  std::printf("\n[shape check: whole-program outlining dominates the build; "
              "round 1 is the most expensive round and later rounds cost "
              "progressively less, as in the paper]\n");

  section("parallel + incremental engine, WP 5 rounds");
  std::printf("%-22s %10s %10s %12s\n", "config", "outline(s)", "total(s)",
              "code size");
  struct Cfg {
    const char *Name;
    unsigned Threads;
    bool Incremental;
  };
  const Cfg Cfgs[] = {
      {"wp5_j1", 1, false},
      {"wp5_jN", Threads, false},
      {"wp5_jN_incremental", Threads, true},
      {"wp5_j1_incremental", 1, true},
  };
  uint64_t RefSize = 0;
  double RefOutline = 0;
  bool SizesMatch = true;
  for (const Cfg &C : Cfgs) {
    Measurement M = runConfig(Profile, C.Name, /*WholeProgram=*/true,
                              /*Rounds=*/5, C.Threads, C.Incremental);
    std::printf("%-22s %10.3f %10.3f %12llu\n", C.Name, M.R.OutlineSeconds,
                M.R.totalSeconds(),
                static_cast<unsigned long long>(M.CodeSize));
    if (RefSize == 0) {
      RefSize = M.CodeSize;
      RefOutline = M.R.OutlineSeconds;
    } else if (M.CodeSize != RefSize) {
      SizesMatch = false;
    }
    if (C.Threads == Threads && !C.Incremental && RefOutline > 0)
      std::printf("  -> speedup vs wp5_j1: %.2fx at %u thread(s)\n",
                  RefOutline / M.R.OutlineSeconds, Threads);
    All.push_back(M);
  }
  std::printf("\n[determinism check: final code size %s across all engine "
              "configurations]\n",
              SizesMatch ? "IDENTICAL" : "MISMATCH (BUG)");

  section("artifact cache: cold build vs warm rebuild vs resume");
  {
    const std::string CacheDir = "./.mco-cache-bench";
    std::error_code EC;
    std::filesystem::remove_all(CacheDir, EC);
    ResilienceOptions Res;
    Res.CacheDir = CacheDir;

    Measurement Cold = runConfig(Profile, "pm1_cache_cold",
                                 /*WholeProgram=*/false, /*Rounds=*/1,
                                 /*Threads=*/1, /*Incremental=*/false, &Res);
    Measurement Warm = runConfig(Profile, "pm1_cache_warm",
                                 /*WholeProgram=*/false, /*Rounds=*/1,
                                 /*Threads=*/1, /*Incremental=*/false, &Res);
    Res.Resume = true;
    Measurement Resume = runConfig(Profile, "pm1_cache_resume",
                                   /*WholeProgram=*/false, /*Rounds=*/1,
                                   /*Threads=*/1, /*Incremental=*/false,
                                   &Res);
    std::printf("%-18s %10s %10s %8s %8s %10s\n", "config", "outline(s)",
                "total(s)", "hits", "misses", "resumed");
    for (const Measurement *M : {&Cold, &Warm, &Resume})
      std::printf("%-18s %10.3f %10.3f %8llu %8llu %10llu\n",
                  M->Name.c_str(), M->R.OutlineSeconds, M->R.totalSeconds(),
                  static_cast<unsigned long long>(M->R.CacheHits),
                  static_cast<unsigned long long>(M->R.CacheMisses),
                  static_cast<unsigned long long>(M->R.ModulesResumed));
    const bool CacheSizesMatch =
        Warm.CodeSize == Cold.CodeSize && Resume.CodeSize == Cold.CodeSize;
    const bool WarmAllHits = Warm.R.CacheMisses == 0 && Warm.R.CacheHits > 0;
    std::printf("\n[cache check: warm/resume sizes %s cold; warm build %s]\n",
                CacheSizesMatch ? "MATCH" : "MISMATCH (BUG)",
                WarmAllHits ? "served entirely from cache"
                            : "MISSED the cache (BUG)");
    SizesMatch = SizesMatch && CacheSizesMatch && WarmAllHits;
    All.push_back(Cold);
    All.push_back(Warm);
    All.push_back(Resume);
    std::filesystem::remove_all(CacheDir, EC);
  }

  writeJson(JsonPath, Modules, Threads, All);
  std::printf("wrote %s\n", JsonPath.c_str());
  return SizesMatch ? 0 : 1;
}
