//===- bench/table8_ablations.cpp - Design-choice ablations ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Ablations over the outliner's design choices called out in DESIGN.md:
/// suffix-tree occurrence collection (direct leaf children — stock LLVM —
/// vs all leaf descendants), greedy priority (immediate byte benefit vs
/// sequence length), minimum candidate length, and the RegSave call
/// variant. Reports 5-round whole-program code size and outlining time.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/BuildPipeline.h"
#include "sim/Interpreter.h"
#include "synth/CorpusSynthesizer.h"
#include "transforms/Transforms.h"

#include <cstdio>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Ablations — outliner design choices (whole-program, 5 rounds)",
         "DESIGN.md ablation index; stock-LLVM settings first");

  struct Variant {
    const char *Name;
    OutlinerOptions Opts;
  };
  OutlinerOptions Default;
  OutlinerOptions LeafDesc = Default;
  LeafDesc.LeafDescendants = true;
  OutlinerOptions MinLen3 = Default;
  MinLen3.MinLength = 3;
  OutlinerOptions LengthFirst = Default;
  LengthFirst.SortByBenefit = false;
  OutlinerOptions NoRegSave = Default;
  NoRegSave.EnableRegSave = false;

  const Variant Variants[] = {
      {"stock (leaf children, benefit-first)", Default},
      {"leaf descendants (full occurrences)", LeafDesc},
      {"min candidate length 3", MinLen3},
      {"greedy by sequence length", LengthFirst},
      {"RegSave disabled", NoRegSave},
  };

  const AppProfile Profile = AppProfile::uberRider();
  uint64_t Baseline = 0;
  {
    auto Prog = CorpusSynthesizer(Profile).generate();
    Baseline = Prog->codeSize();
  }
  std::printf("baseline code: %.1f KB\n\n", kb(Baseline));
  std::printf("%-40s %12s %9s %10s %10s\n", "variant", "code KB", "saving%",
              "functions", "time(s)");
  for (const Variant &V : Variants) {
    auto Prog = CorpusSynthesizer(Profile).generate();
    PipelineOptions Opts;
    Opts.OutlineRounds = 5;
    Opts.Outliner = V.Opts;
    BuildResult R = buildProgram(*Prog, Opts);
    std::printf("%-40s %12.1f %8.1f%% %10llu %10.2f\n", V.Name,
                kb(R.CodeSize), savingPercent(Baseline, R.CodeSize),
                static_cast<unsigned long long>(
                    R.OutlineStats.totalFunctionsCreated()),
                R.OutlineSeconds);
  }

  // Future-work ablation (paper Section VIII, item 1): canonicalizing
  // commutative operands before outlining exposes semantically equal but
  // textually different sequences.
  section("commutative-operand normalization (future work #1)");
  for (bool Normalize : {false, true}) {
    auto Prog = CorpusSynthesizer(Profile).generate();
    if (Normalize)
      for (auto &M : Prog->Modules)
        normalizeCommutativeOperands(*Prog, *M);
    PipelineOptions Opts;
    Opts.OutlineRounds = 5;
    BuildResult R = buildProgram(*Prog, Opts);
    std::printf("%-40s %12.1f %8.1f%%\n",
                Normalize ? "with normalization" : "without normalization",
                kb(R.CodeSize), savingPercent(Baseline, R.CodeSize));
  }
  std::printf("[the synthesizer already emits canonical operand order, so "
              "the corpus shows no delta; CommutativeNormalizationTest "
              "demonstrates the mechanism on commuted inputs]\n");

  // Future-work ablation: layout of the outlined code (paper Section
  // VIII, item 3). Size-neutral, so compare span i-cache misses instead.
  section("outlined-code layout (future work #3): span_0 i-cache misses");
  for (bool HotLayout : {false, true}) {
    auto Prog = CorpusSynthesizer(Profile).generate();
    PipelineOptions Opts;
    Opts.OutlineRounds = 5;
    buildProgram(*Prog, Opts);
    if (HotLayout)
      layoutOutlinedByHotness(*Prog, *Prog->Modules[0]);
    BinaryImage Img(*Prog);
    PerfConfig Cfg;
    Cfg.ICacheBytes = 32 << 10;
    Interpreter I(Img, *Prog, &Cfg);
    I.call(CorpusSynthesizer::spanFunctionName(0));
    std::printf("%-40s misses %8llu  cycles %12.0f\n",
                HotLayout ? "hotness-sorted outlined region"
                          : "creation-order outlined region",
                static_cast<unsigned long long>(
                    I.counters().ICacheMisses),
                I.counters().Cycles);
  }
  return 0;
}
