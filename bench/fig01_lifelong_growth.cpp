//===- bench/fig01_lifelong_growth.cpp - Paper Fig. 1 ---------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Fig. 1: code size of monthly app snapshots under the
/// default pipeline (per-module outlining, one round — what stock Swift
/// 5.2 -Osize does) versus the paper's whole-program pipeline with five
/// rounds of repeated outlining. Reports the two linear-regression slopes,
/// their R^2, and the slope ratio (paper: 2.7 vs 1.37, ~2x).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/BuildPipeline.h"
#include "support/Statistics.h"
#include "synth/AppEvolution.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

int main(int argc, char **argv) {
  unsigned Months = argc > 1 ? std::atoi(argv[1]) : 24;
  banner("Fig. 1 — lifelong code-size growth",
         "paper Fig. 1: 23% point-in-time saving and ~2x slope reduction");

  AppEvolution Evo(AppProfile::uberRider(), /*BaseModules=*/20,
                   /*ModulesPerMonth=*/4);

  std::vector<double> Xs, Baseline, Optimized;
  std::printf("%6s %8s %14s %14s %9s\n", "month", "modules",
              "baseline(KB)", "optimized(KB)", "saving%");
  for (unsigned Month = 0; Month < Months; ++Month) {
    // Baseline: the default iOS pipeline — per-module, single round.
    auto BaseProg = Evo.snapshot(Month);
    PipelineOptions BaseOpts;
    BaseOpts.WholeProgram = false;
    BaseOpts.OutlineRounds = 1;
    BuildResult BR = buildProgram(*BaseProg, BaseOpts);

    // Optimized: whole-program, five rounds of repeated outlining.
    auto OptProg = Evo.snapshot(Month);
    PipelineOptions OptOpts;
    OptOpts.WholeProgram = true;
    OptOpts.OutlineRounds = 5;
    BuildResult OR = buildProgram(*OptProg, OptOpts);

    Xs.push_back(Month);
    Baseline.push_back(kb(BR.CodeSize));
    Optimized.push_back(kb(OR.CodeSize));
    std::printf("%6u %8u %14.1f %14.1f %8.1f%%\n", Month,
                Evo.modulesAt(Month), kb(BR.CodeSize), kb(OR.CodeSize),
                savingPercent(BR.CodeSize, OR.CodeSize));
  }

  LinearFit FB = fitLinear(Xs, Baseline);
  LinearFit FO = fitLinear(Xs, Optimized);
  section("regression (code size KB vs month)");
  std::printf("baseline : slope %.2f KB/month, intercept %.1f, R^2 %.4f\n",
              FB.Slope, FB.Intercept, FB.R2);
  std::printf("optimized: slope %.2f KB/month, intercept %.1f, R^2 %.4f\n",
              FO.Slope, FO.Intercept, FO.R2);
  std::printf("slope ratio (baseline/optimized): %.2fx   [paper: "
              "2.7/1.37 = 1.97x]\n",
              FB.Slope / FO.Slope);
  std::printf("final-month saving: %.1f%%   [paper: ~23%% of code size]\n",
              100.0 * (Baseline.back() - Optimized.back()) /
                  Baseline.back());
  return 0;
}
