//===- bench/table6_generality.cpp - Paper Section VII-E ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Section VII-E: the same whole-program five-round pipeline
/// applied to the other two Uber apps and to two non-iOS programs
/// (clang-like and Android-Linux-kernel-like corpora). The paper: Rider
/// 23%, Driver 17%, Eats 19%, clang 25%, Linux kernel 14%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linker/Linker.h"
#include "outliner/PatternStats.h"
#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>

using namespace mco;
using namespace mco::benchutil;

int main() {
  banner("Section VII-E — generality across apps and non-iOS programs",
         "paper: Rider 23%, Driver 17%, Eats 19%, clang 25%, Linux 14%");

  struct Row {
    AppProfile Profile;
    const char *Paper;
  };
  const Row Rows[] = {
      {AppProfile::uberRider(), "23%"},
      {AppProfile::uberDriver(), "17%"},
      {AppProfile::uberEats(), "19%"},
      {AppProfile::clangCompiler(), "25%"},
      {AppProfile::linuxKernel(), "14%"},
  };

  // Reported as the paper reports it: whole-program five-round outlining
  // against each corpus's default per-module build.
  std::printf("%-14s %12s %12s %10s %8s\n", "corpus", "default KB",
              "5-round KB", "saving%", "paper");
  for (const Row &R : Rows) {
    auto Default = CorpusSynthesizer(R.Profile).generate();
    PipelineOptions DefOpts;
    DefOpts.WholeProgram = false;
    DefOpts.OutlineRounds = 1;
    BuildResult DR = buildProgram(*Default, DefOpts);

    auto Prog = CorpusSynthesizer(R.Profile).generate();
    PipelineOptions Opts;
    Opts.OutlineRounds = 5;
    BuildResult BR = buildProgram(*Prog, Opts);
    std::printf("%-14s %12.1f %12.1f %9.1f%% %8s\n", R.Profile.Name.c_str(),
                kb(DR.CodeSize), kb(BR.CodeSize),
                savingPercent(DR.CodeSize, BR.CodeSize), R.Paper);
  }

  // The kernel's signature pattern: the stack-smashing check.
  section("Linux-kernel corpus: top repeated pattern (stack-guard check)");
  auto Prog = CorpusSynthesizer(AppProfile::linuxKernel()).generate();
  Module &Linked = linkProgram(*Prog);
  PatternAnalysis A = analyzePatterns(*Prog, Linked);
  for (unsigned I = 0; I < 2 && I < A.Patterns.size(); ++I)
    std::printf("# rank %u: %llu repetitions, %u instrs\n%s\n",
                A.Patterns[I].Rank,
                static_cast<unsigned long long>(A.Patterns[I].Frequency),
                A.Patterns[I].Length, A.Patterns[I].Text.c_str());
  std::printf("[paper: 'in the Linux kernel, the function epilogue to "
              "check stack smashing attack is a common repeating code "
              "pattern']\n");
  return 0;
}
