//===- bench/fig14_fleet_rollout.cpp - Staged-rollout fleet bench ---------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The fleet-rollout companion to Table 7: builds the affinity-preserving
/// baseline and the merged-interleaved candidate, ramps each scenario
/// through the staged-rollout comparator across a synthetic device fleet,
/// and prints the per-stage verdicts. The identity scenario (candidate ==
/// baseline) must ramp clean; the Table 7 scenario must halt on the data
/// page-fault threshold — the regression the paper's production fleet
/// monitoring caught.
///
///   fig14_fleet_rollout [--modules N] [--devices N] [--seed S]
///                       [--threads N] [--json PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/BuildPipeline.h"
#include "support/FileAtomics.h"
#include "synth/CorpusSynthesizer.h"
#include "telemetry/FleetSim.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace mco;
using namespace mco::benchutil;

namespace {

std::unique_ptr<Program> buildArtifact(unsigned Modules, unsigned Threads,
                                       DataLayoutMode L) {
  AppProfile P = AppProfile::uberRider();
  P.NumModules = Modules;
  auto Prog = CorpusSynthesizer(P).withThreads(Threads).generate();
  PipelineOptions Opts;
  Opts.OutlineRounds = 2;
  Opts.WholeProgram = true;
  Opts.DataLayout = L;
  Opts.Threads = Threads;
  buildProgram(*Prog, Opts);
  return Prog;
}

void printVerdict(const char *Scenario, const RolloutVerdict &V) {
  std::printf("%-9s ", Scenario);
  for (const StageVerdict &S : V.Stages)
    std::printf(" %5.1f%%:%s", S.Percent, S.Ok ? "ok" : "HALT");
  std::printf("   %s\n", V.Summary.c_str());
}

} // namespace

int main(int argc, char **argv) {
  unsigned Modules = 60, Devices = 32, Threads = 4;
  uint64_t Seed = 0x5EED;
  std::string JsonPath = "BENCH_fleet_rollout.json";
  for (int I = 1; I < argc; ++I) {
    auto Next = [&]() { return I + 1 < argc ? argv[++I] : ""; };
    if (!std::strcmp(argv[I], "--modules"))
      Modules = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--devices"))
      Devices = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--seed"))
      Seed = std::strtoull(Next(), nullptr, 0);
    else if (!std::strcmp(argv[I], "--threads"))
      Threads = std::atoi(Next());
    else if (!std::strcmp(argv[I], "--json"))
      JsonPath = Next();
    else {
      std::fprintf(stderr,
                   "usage: fig14_fleet_rollout [--modules N] [--devices N] "
                   "[--seed S] [--threads N] [--json PATH]\n");
      return 1;
    }
  }

  banner("Fig. 14 — staged-rollout fleet verdicts",
         "Sections V-VII fleet methodology; Table 7 page-fault regression "
         "caught at the 1% stage");
  std::printf("%u modules, %u devices, seed 0x%llx, %u thread(s)\n", Modules,
              Devices, static_cast<unsigned long long>(Seed), Threads);

  FleetOptions O;
  O.NumDevices = Devices;
  O.Seed = Seed;
  O.Threads = Threads;
  const AppProfile P = AppProfile::uberRider();
  for (unsigned S = 0; S < P.NumSpans; ++S)
    O.Entries.push_back(CorpusSynthesizer::spanFunctionName(S));

  auto Base = buildArtifact(Modules, Threads, DataLayoutMode::PreserveModuleOrder);
  auto Cand = buildArtifact(Modules, Threads, DataLayoutMode::Interleaved);

  section("ramp verdicts");
  RolloutVerdict Identity = runStagedRollout(*Base, *Base, O);
  RolloutVerdict Table7 = runStagedRollout(*Base, *Cand, O);
  printVerdict("identity", Identity);
  printVerdict("table7", Table7);

  section("table7 halt-stage deltas");
  if (!Table7.Stages.empty()) {
    const StageVerdict &Halt = Table7.Stages.back();
    for (const MetricDelta &D : Halt.Deltas)
      std::printf("  %-22s %12.1f -> %12.1f  %+8.2f%%%s\n", D.Metric.c_str(),
                  D.Base, D.Cand, D.DeltaPct, D.Breach ? "  << BREACH" : "");
  }

  // Machine-readable record for CI trend tracking: both scenarios'
  // verdicts under one roof, atomically written.
  std::string J = "{\n  \"bench\": \"fleet_rollout\",\n";
  J += "  \"modules\": " + std::to_string(Modules) + ",\n";
  J += "  \"devices\": " + std::to_string(Devices) + ",\n";
  J += "  \"identity\": " +
       rolloutVerdictJson(Identity, O, defaultStagePercents(), {}) + ",\n";
  J += "  \"table7\": " +
       rolloutVerdictJson(Table7, O, defaultStagePercents(), {}) + "\n}\n";
  if (Status S = atomicWriteFile(JsonPath, J); !S.ok()) {
    std::fprintf(stderr, "fig14_fleet_rollout: %s\n", S.render().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", JsonPath.c_str());

  // The bench doubles as a regression check: identity must ramp clean and
  // table7 must halt.
  if (Identity.Regression) {
    std::fprintf(stderr, "FAIL: identity rollout flagged a regression\n");
    return 1;
  }
  if (!Table7.Regression) {
    std::fprintf(stderr, "FAIL: table7 rollout did not halt\n");
    return 1;
  }
  std::printf("verdicts as expected: identity clean, table7 halted\n");
  return 0;
}
