//===- bench/fig_daemon.cpp - Build-daemon service-level bench ------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Service-level numbers for mco-buildd, the paper's distributed-build
/// posture (Section 6 discusses outlining inside Uber's BuckBuild remote
/// workers): spawns the real daemon binary, drives it with concurrent
/// in-process clients, and reports
///
///   - cold-burst throughput and P50/P95/P99 request latency,
///   - warm-burst latency and the shared-cache hit rate,
///   - recovery time after SIGKILL mid-request (restart with --resume
///     until the socket answers again, then until every in-flight
///     request drains).
///
/// Doubles as the `daemon_smoke` CI gate: every request in every phase
/// must complete with the same artifact digest, the warm burst must be
/// all cache hits, and the killed daemon's requests must survive the
/// restart — a regression in any failure domain fails the run.
///
///   fig_daemon [--requests N] [--modules N] [--workers N] [--clients N]
///              [--json PATH]
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "daemon/Client.h"
#include "support/FileAtomics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

using namespace mco;
using namespace mco::benchutil;
namespace fs = std::filesystem;

namespace {

struct Options {
  unsigned Requests = 12;
  unsigned Modules = 8;
  unsigned Workers = 2;
  unsigned Clients = 4;
  std::string JsonPath;
};

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
}

struct DaemonProc {
  pid_t Pid = -1;
  std::string Socket, State;

  /// fork+exec the real mco-buildd; waits until it answers a ping.
  /// \returns false if it never became ready.
  bool start(unsigned Workers, bool Resume, const char *CrashEnv) {
    std::vector<std::string> Args = {
        "mco-buildd", "--socket", Socket, "--state", State,
        "--workers",  std::to_string(Workers)};
    if (Resume)
      Args.push_back("--resume");
    Pid = ::fork();
    if (Pid == 0) {
      if (CrashEnv)
        ::setenv("MCO_CRASH_AFTER_MODULES", CrashEnv, 1);
      std::vector<char *> Argv;
      for (std::string &S : Args)
        Argv.push_back(S.data());
      Argv.push_back(nullptr);
      std::freopen("/dev/null", "w", stderr);
      ::execv(MCO_BUILDD_TOOL_PATH, Argv.data());
      ::_exit(127);
    }
    if (Pid < 0)
      return false;
    ClientOptions CO;
    CO.SocketPath = Socket;
    CO.MaxAttempts = 1;
    CO.ReplyTimeoutMs = 2000;
    DaemonClient Probe(CO);
    RpcMessage Ping;
    Ping.Type = "ping";
    for (int I = 0; I < 400; ++I) {
      Expected<RpcMessage> R = Probe.call(Ping);
      if (R.ok() && R->Type == "pong")
        return true;
      ::usleep(10 * 1000);
    }
    return false;
  }

  /// Blocks until the daemon process exits; reports SIGKILL death.
  bool waitKilled() {
    int WStatus = 0;
    ::waitpid(Pid, &WStatus, 0);
    Pid = -1;
    return WIFSIGNALED(WStatus) && WTERMSIG(WStatus) == SIGKILL;
  }

  void shutdown() {
    if (Pid <= 0)
      return;
    ClientOptions CO;
    CO.SocketPath = Socket;
    CO.MaxAttempts = 1;
    DaemonClient C(CO);
    RpcMessage M;
    M.Type = "shutdown";
    (void)C.call(M);
    int WStatus = 0;
    ::waitpid(Pid, &WStatus, 0);
    Pid = -1;
  }

  ~DaemonProc() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      int WStatus = 0;
      ::waitpid(Pid, &WStatus, 0);
    }
  }
};

RpcMessage buildRequest(const std::string &Id, unsigned Modules) {
  RpcMessage Req;
  Req.Type = "build";
  Req.Str["id"] = Id;
  Req.Str["profile"] = "rider";
  Req.Int["modules"] = int64_t(Modules);
  Req.Int["rounds"] = 2;
  Req.Int["per_module"] = 1;
  return Req;
}

struct BurstResult {
  std::vector<double> LatenciesMs; ///< Completed requests only.
  unsigned Failed = 0;
  double WallMs = 0;
  std::string Digest; ///< "" until set; "MIXED" on divergence.
  uint64_t CacheHits = 0, CacheMisses = 0;
};

/// Submits \p Count requests (ids "<prefix>-<i>") from \p Clients threads.
BurstResult runBurst(const std::string &Socket, const std::string &Prefix,
                     unsigned Count, unsigned Modules, unsigned Clients) {
  BurstResult B;
  std::mutex Mu;
  auto T0 = Clock::now();
  std::vector<std::thread> Pool;
  std::atomic<unsigned> NextIdx{0};
  for (unsigned C = 0; C < std::max(1u, Clients); ++C)
    Pool.emplace_back([&] {
      ClientOptions CO;
      CO.SocketPath = Socket;
      CO.MaxAttempts = 60;
      DaemonClient Client(CO);
      for (;;) {
        unsigned I = NextIdx.fetch_add(1);
        if (I >= Count)
          return;
        auto R0 = Clock::now();
        Expected<RpcMessage> R = Client.submitBuild(
            buildRequest(Prefix + "-" + std::to_string(I), Modules));
        double Ms = msSince(R0);
        std::lock_guard<std::mutex> Lock(Mu);
        if (!R.ok() || R->strOr("state", "") != "completed") {
          ++B.Failed;
          continue;
        }
        B.LatenciesMs.push_back(Ms);
        const std::string D = R->strOr("artifact_digest", "");
        if (B.Digest.empty())
          B.Digest = D;
        else if (B.Digest != D)
          B.Digest = "MIXED";
        B.CacheHits += uint64_t(R->intOr("cache_hits", 0));
        B.CacheMisses += uint64_t(R->intOr("cache_misses", 0));
      }
    });
  for (std::thread &T : Pool)
    T.join();
  B.WallMs = msSince(T0);
  std::sort(B.LatenciesMs.begin(), B.LatenciesMs.end());
  return B;
}

double pct(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t I = size_t(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

} // namespace

int main(int argc, char **argv) {
  Options Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() { return I + 1 < argc ? argv[++I] : "0"; };
    if (A == "--requests")
      Opt.Requests = unsigned(std::atoi(Next()));
    else if (A == "--modules")
      Opt.Modules = unsigned(std::atoi(Next()));
    else if (A == "--workers")
      Opt.Workers = unsigned(std::atoi(Next()));
    else if (A == "--clients")
      Opt.Clients = unsigned(std::atoi(Next()));
    else if (A == "--json")
      Opt.JsonPath = Next();
    else {
      std::fprintf(stderr, "fig_daemon: bad argument '%s'\n", A.c_str());
      return 2;
    }
  }

  banner("Build daemon: throughput, tail latency, crash recovery",
         "Section 6 (outlining in distributed/remote builds) + the "
         "production failure-domain requirements");

  fs::path Scratch = fs::temp_directory_path() /
                     ("mco_fig_daemon_" + std::to_string(::getpid()));
  fs::remove_all(Scratch);
  fs::create_directories(Scratch);
  unsigned Violations = 0;

  // --- Phase 1+2: cold burst, then warm burst, same daemon ---------------
  DaemonProc Svc;
  Svc.Socket = (Scratch / "sock").string();
  Svc.State = (Scratch / "state").string();
  if (!Svc.start(Opt.Workers, /*Resume=*/false, nullptr)) {
    std::fprintf(stderr, "fig_daemon: daemon never became ready\n");
    return 1;
  }

  section("cold burst (empty shared cache)");
  BurstResult Cold = runBurst(Svc.Socket, "cold", Opt.Requests, Opt.Modules,
                              Opt.Clients);
  double ColdRps = 1000.0 * double(Cold.LatenciesMs.size()) / Cold.WallMs;
  std::printf("%u requests, %u clients, %u workers: %.1f req/s\n",
              Opt.Requests, Opt.Clients, Opt.Workers, ColdRps);
  std::printf("latency ms: p50 %.1f  p95 %.1f  p99 %.1f  (failed: %u)\n",
              pct(Cold.LatenciesMs, 0.50), pct(Cold.LatenciesMs, 0.95),
              pct(Cold.LatenciesMs, 0.99), Cold.Failed);

  section("warm burst (cache populated by the cold burst)");
  BurstResult Warm = runBurst(Svc.Socket, "warm", Opt.Requests, Opt.Modules,
                              Opt.Clients);
  double WarmRps = 1000.0 * double(Warm.LatenciesMs.size()) / Warm.WallMs;
  double HitRate = double(Warm.CacheHits) /
                   double(std::max<uint64_t>(1, Warm.CacheHits +
                                                    Warm.CacheMisses));
  std::printf("%.1f req/s; latency ms: p50 %.1f  p95 %.1f  p99 %.1f\n",
              WarmRps, pct(Warm.LatenciesMs, 0.50),
              pct(Warm.LatenciesMs, 0.95), pct(Warm.LatenciesMs, 0.99));
  std::printf("shared-cache hit rate: %.1f%% (%llu hits, %llu misses)\n",
              100.0 * HitRate, (unsigned long long)Warm.CacheHits,
              (unsigned long long)Warm.CacheMisses);
  Svc.shutdown();

  // --- Phase 3: SIGKILL mid-request, restart --resume --------------------
  section("crash recovery (SIGKILL mid-request, restart with --resume)");
  DaemonProc Svc2;
  Svc2.Socket = (Scratch / "sock2").string();
  Svc2.State = (Scratch / "state2").string();
  // The crash hook SIGKILLs the daemon mid-request — deterministically
  // inside one build, before its last module is durable, so the request
  // is still unfinished at the crash.
  const unsigned CrashAfter =
      Opt.Modules > 1 ? std::min(5u, Opt.Modules - 1) : 1;
  if (!Svc2.start(Opt.Workers, /*Resume=*/false,
                  std::to_string(CrashAfter).c_str())) {
    std::fprintf(stderr, "fig_daemon: crash-phase daemon never ready\n");
    return 1;
  }
  const unsigned KillReqs = std::min(Opt.Requests, 4u);
  BurstResult Killed;
  std::thread KillBurst([&] {
    Killed = runBurst(Svc2.Socket, "kill", KillReqs, Opt.Modules,
                      Opt.Clients);
  });
  bool WasKilled = Svc2.waitKilled();
  auto TDead = Clock::now();
  if (!WasKilled) {
    std::fprintf(stderr, "fig_daemon: crash hook never fired\n");
    ++Violations;
  }
  if (!Svc2.start(Opt.Workers, /*Resume=*/true, nullptr)) {
    std::fprintf(stderr, "fig_daemon: restarted daemon never ready\n");
    return 1;
  }
  double ReadyMs = msSince(TDead);
  KillBurst.join();
  double DrainMs = msSince(TDead);
  std::printf("restart-to-ready %.1f ms; all in-flight requests drained "
              "%.1f ms after the kill\n",
              ReadyMs, DrainMs);
  Svc2.shutdown();

  // --- The gate ----------------------------------------------------------
  section("gate");
  auto Check = [&](bool Ok, const char *What) {
    std::printf("  [%s] %s\n", Ok ? "ok" : "FAIL", What);
    if (!Ok)
      ++Violations;
  };
  Check(Cold.Failed == 0 && Cold.LatenciesMs.size() == Opt.Requests,
        "every cold-burst request completed");
  Check(Warm.Failed == 0 && Warm.LatenciesMs.size() == Opt.Requests,
        "every warm-burst request completed");
  Check(!Cold.Digest.empty() && Cold.Digest != "MIXED" &&
            Cold.Digest == Warm.Digest,
        "one artifact digest across cold and warm bursts");
  Check(Warm.CacheMisses == 0 && HitRate >= 1.0,
        "warm burst was all cache hits");
  Check(Killed.Failed == 0 && Killed.LatenciesMs.size() == KillReqs,
        "every request submitted around the SIGKILL completed");
  Check(Killed.Digest == Cold.Digest,
        "post-crash artifacts byte-identical to the healthy daemon's");

  if (!Opt.JsonPath.empty()) {
    char Buf[1024];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\n"
        "  \"requests\": %u,\n  \"modules\": %u,\n  \"workers\": %u,\n"
        "  \"clients\": %u,\n"
        "  \"cold_rps\": %.2f,\n  \"cold_p50_ms\": %.2f,\n"
        "  \"cold_p95_ms\": %.2f,\n  \"cold_p99_ms\": %.2f,\n"
        "  \"warm_rps\": %.2f,\n  \"warm_p50_ms\": %.2f,\n"
        "  \"warm_p95_ms\": %.2f,\n  \"warm_p99_ms\": %.2f,\n"
        "  \"warm_hit_rate\": %.4f,\n"
        "  \"recovery_ready_ms\": %.2f,\n  \"recovery_drain_ms\": %.2f,\n"
        "  \"violations\": %u\n"
        "}\n",
        Opt.Requests, Opt.Modules, Opt.Workers, Opt.Clients, ColdRps,
        pct(Cold.LatenciesMs, 0.50), pct(Cold.LatenciesMs, 0.95),
        pct(Cold.LatenciesMs, 0.99), WarmRps, pct(Warm.LatenciesMs, 0.50),
        pct(Warm.LatenciesMs, 0.95), pct(Warm.LatenciesMs, 0.99), HitRate,
        ReadyMs, DrainMs, Violations);
    if (Status S = atomicWriteFile(Opt.JsonPath, Buf); !S.ok()) {
      std::fprintf(stderr, "fig_daemon: %s\n", S.render().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", Opt.JsonPath.c_str());
  }

  std::error_code EC;
  fs::remove_all(Scratch, EC);
  if (Violations) {
    std::printf("\nFAILED: %u gate violation(s)\n", Violations);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
