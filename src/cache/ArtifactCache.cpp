//===- cache/ArtifactCache.cpp - Checksummed artifact cache ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"

#include "objfile/ObjectFile.h"
#include "support/BinReader.h"
#include "support/Checksum.h"
#include "support/FaultInjection.h"
#include "support/FileAtomics.h"
#include "telemetry/Metrics.h"
#include "telemetry/Tracer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace mco;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// MCOM v1 serialization
//===----------------------------------------------------------------------===//

namespace {

// Little-endian fixed-width writers.
void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }
void putU16(std::string &B, uint16_t V) {
  for (int I = 0; I < 2; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putI64(std::string &B, int64_t V) { putU64(B, static_cast<uint64_t>(V)); }
void putStr(std::string &B, const std::string &S) {
  putU32(B, static_cast<uint32_t>(S.size()));
  B += S;
}

/// Interns symbol names into a local table in first-use order, so the
/// encoding depends only on module *contents*, never on the symbol ids the
/// producing build happened to assign.
class StringTable {
public:
  explicit StringTable(const SymbolNameFn &NameOf) : NameOf(NameOf) {}

  uint32_t indexOf(uint32_t SymbolId) {
    std::string Name = NameOf(SymbolId);
    auto It = Index.find(Name);
    if (It != Index.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(Strings.size());
    Strings.push_back(Name);
    Index.emplace(std::move(Name), Idx);
    return Idx;
  }

  const std::vector<std::string> &strings() const { return Strings; }

private:
  const SymbolNameFn &NameOf;
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> Index;
};

/// Encodes functions + globals into \p Body, filling \p Table.
void encodeBody(const Module &M, StringTable &Table, std::string &Body) {
  putU32(Body, static_cast<uint32_t>(M.Functions.size()));
  for (const MachineFunction &MF : M.Functions) {
    putU32(Body, Table.indexOf(MF.Name));
    putU8(Body, MF.IsOutlined ? 1 : 0);
    putU8(Body, static_cast<uint8_t>(MF.FrameKind));
    putU16(Body, 0); // pad
    putU32(Body, MF.OutlinedCallSites);
    putU32(Body, MF.OriginModule);
    putU32(Body, static_cast<uint32_t>(MF.Blocks.size()));
    for (const MachineBasicBlock &MBB : MF.Blocks) {
      putU32(Body, static_cast<uint32_t>(MBB.Instrs.size()));
      for (const MachineInstr &MI : MBB.Instrs) {
        putU8(Body, static_cast<uint8_t>(MI.opcode()));
        putU8(Body, static_cast<uint8_t>(MI.numOperands()));
        for (unsigned I = 0; I < MI.numOperands(); ++I) {
          const MachineOperand &Op = MI.operand(I);
          putU8(Body, static_cast<uint8_t>(Op.K));
          putU8(Body, static_cast<uint8_t>(Op.R));
          putU8(Body, static_cast<uint8_t>(Op.C));
          putI64(Body, Op.isSym() ? Table.indexOf(Op.getSym()) : Op.Val);
        }
      }
    }
  }
  putU32(Body, static_cast<uint32_t>(M.Globals.size()));
  for (const GlobalData &G : M.Globals) {
    putU32(Body, Table.indexOf(G.Name));
    putU32(Body, G.OriginModule);
    putU32(Body, static_cast<uint32_t>(G.Bytes.size()));
    Body.append(reinterpret_cast<const char *>(G.Bytes.data()),
                G.Bytes.size());
  }
}

void encodeRoundStats(std::string &B, const OutlineRoundStats &RS) {
  putU64(B, RS.SequencesOutlined);
  putU64(B, RS.FunctionsCreated);
  putU64(B, RS.OutlinedFunctionBytes);
  putU64(B, RS.CodeSizeBefore);
  putU64(B, RS.CodeSizeAfter);
  putU64(B, RS.PatternsConsidered);
  putU64(B, RS.PatternsUnprofitable);
  putU64(B, RS.CandidatesDroppedSP);
  putU64(B, RS.CandidatesDroppedOverlap);
  putU64(B, RS.FunctionsRemapped);
  putU64(B, RS.LivenessComputed);
  putU64(B, RS.FunctionsEdited);
  putU64(B, RS.PatternsQuarantined);
  putU64(B, RS.RoundsRolledBack);
  putU64(B, RS.CandidatesDroppedHot);
}

MachineInstr makeInstr(Opcode Op, const MachineOperand *Ops, unsigned N) {
  switch (N) {
  case 0:
    return MachineInstr(Op);
  case 1:
    return MachineInstr(Op, Ops[0]);
  case 2:
    return MachineInstr(Op, Ops[0], Ops[1]);
  case 3:
    return MachineInstr(Op, Ops[0], Ops[1], Ops[2]);
  default:
    return MachineInstr(Op, Ops[0], Ops[1], Ops[2], Ops[3]);
  }
}

void decodeRoundStats(BinReader &R, OutlineRoundStats &RS) {
  RS.SequencesOutlined = R.u64();
  RS.FunctionsCreated = R.u64();
  RS.OutlinedFunctionBytes = R.u64();
  RS.CodeSizeBefore = R.u64();
  RS.CodeSizeAfter = R.u64();
  RS.PatternsConsidered = R.u64();
  RS.PatternsUnprofitable = R.u64();
  RS.CandidatesDroppedSP = R.u64();
  RS.CandidatesDroppedOverlap = R.u64();
  RS.FunctionsRemapped = R.u64();
  RS.LivenessComputed = R.u64();
  RS.FunctionsEdited = R.u64();
  RS.PatternsQuarantined = R.u64();
  RS.RoundsRolledBack = R.u64();
  RS.CandidatesDroppedHot = R.u64();
}

} // namespace

std::string mco::serializeModuleContent(const Module &M,
                                        const SymbolNameFn &NameOf) {
  StringTable Table(NameOf);
  std::string Body;
  encodeBody(M, Table, Body);

  std::string Out;
  Out += ModuleArtifactMagic;
  putU8(Out, ModuleArtifactVersion);
  putStr(Out, M.Name);
  putU32(Out, static_cast<uint32_t>(Table.strings().size()));
  for (const std::string &S : Table.strings())
    putStr(Out, S);
  Out += Body;
  return Out;
}

std::string mco::serializeModuleArtifact(const Module &M,
                                         const RepeatedOutlineStats &Stats,
                                         uint64_t RoundsRolledBack,
                                         uint64_t PatternsQuarantined,
                                         const SymbolNameFn &NameOf) {
  std::string Out = serializeModuleContent(M, NameOf);
  putU32(Out, static_cast<uint32_t>(Stats.Rounds.size()));
  for (const OutlineRoundStats &RS : Stats.Rounds)
    encodeRoundStats(Out, RS);
  putU64(Out, RoundsRolledBack);
  putU64(Out, PatternsQuarantined);
  return Out;
}

Status mco::validateModuleArtifactBytes(const std::string &Bytes) {
  // Structure-only FormatValidator walk: the same grammar the decoder
  // consumes, with every range checked, but no Module is built and no
  // symbol is interned. The decoder below repeats the checks it needs for
  // memory safety; this pass exists so damage is rejected before any
  // object construction.
  BinReader R(Bytes);
  auto Fail = [&](const std::string &Why) -> Status {
    if (R.fail())
      return R.status("module artifact");
    return MCO_CORRUPT("module artifact: " + Why + " at byte " +
                       std::to_string(R.offset()));
  };

  R.literal(ModuleArtifactMagic, std::strlen(ModuleArtifactMagic));
  uint8_t Version = R.u8();
  if (R.fail())
    return Fail("");
  if (Version != ModuleArtifactVersion)
    return Fail("unsupported version " + std::to_string(Version));
  R.str(); // module name

  uint32_t NumStrings = R.u32();
  if (!R.plausibleCount(NumStrings, 4, "string-table"))
    return Fail("");
  for (uint32_t I = 0; I < NumStrings; ++I) {
    R.str();
    if (R.fail())
      return Fail("");
  }

  uint32_t NumFuncs = R.u32();
  if (!R.plausibleCount(NumFuncs, 18, "function"))
    return Fail("");
  for (uint32_t FI = 0; FI < NumFuncs; ++FI) {
    if (R.u32() >= NumStrings && !R.fail())
      return Fail("function name index out of range");
    R.u8(); // IsOutlined
    if (R.u8() > static_cast<uint8_t>(OutlinedFrameKind::Thunk) && !R.fail())
      return Fail("invalid frame kind");
    R.u16(); // pad
    R.u32(); // OutlinedCallSites
    R.u32(); // OriginModule
    uint32_t NumBlocks = R.u32();
    if (!R.plausibleCount(NumBlocks, 4, "block"))
      return Fail("");
    for (uint32_t BI = 0; BI < NumBlocks; ++BI) {
      uint32_t NumInstrs = R.u32();
      if (!R.plausibleCount(NumInstrs, 2, "instruction"))
        return Fail("");
      for (uint32_t II = 0; II < NumInstrs; ++II) {
        uint8_t OpByte = R.u8();
        if (OpByte > static_cast<uint8_t>(Opcode::NOP) && !R.fail())
          return Fail("invalid opcode");
        uint8_t NumOps = R.u8();
        if (NumOps > MachineInstr::MaxOperands && !R.fail())
          return Fail("invalid operand count");
        for (uint8_t OI = 0; OI < NumOps; ++OI) {
          uint8_t Kind = R.u8();
          if (Kind > static_cast<uint8_t>(MachineOperand::Kind::CondK) &&
              !R.fail())
            return Fail("invalid operand kind");
          uint8_t RegByte = R.u8();
          if (RegByte >= static_cast<uint8_t>(Reg::NumRegs) &&
              RegByte != static_cast<uint8_t>(Reg::None) && !R.fail())
            return Fail("invalid register");
          uint8_t CondByte = R.u8();
          if (CondByte > static_cast<uint8_t>(Cond::HS) && !R.fail())
            return Fail("invalid condition");
          int64_t Val = R.i64();
          if (Kind == static_cast<uint8_t>(MachineOperand::Kind::Symbol) &&
              !R.fail() &&
              (Val < 0 || static_cast<uint64_t>(Val) >= NumStrings))
            return Fail("symbol index out of range");
        }
        if (R.fail())
          return Fail("");
      }
    }
  }

  uint32_t NumGlobals = R.u32();
  if (!R.plausibleCount(NumGlobals, 12, "global"))
    return Fail("");
  for (uint32_t GI = 0; GI < NumGlobals; ++GI) {
    if (R.u32() >= NumStrings && !R.fail())
      return Fail("global name index out of range");
    R.u32(); // OriginModule
    R.str(); // bytes
    if (R.fail())
      return Fail("");
  }

  uint32_t NumRounds = R.u32();
  if (!R.plausibleCount(NumRounds, 15 * 8, "round-stats"))
    return Fail("");
  for (uint64_t RI = 0; RI < uint64_t(NumRounds) * 15; ++RI)
    R.u64();
  R.u64(); // RoundsRolledBack
  R.u64(); // PatternsQuarantined

  if (R.fail())
    return Fail("");
  if (!R.atEnd())
    return Fail("trailing bytes after artifact");
  return Status::success();
}

Expected<ModuleArtifact> mco::deserializeModuleArtifact(
    const std::string &Bytes, SymbolInterner &Syms) {
  // FormatValidator pass first: after the envelope CRC, before any object
  // construction.
  if (Status V = validateModuleArtifactBytes(Bytes); !V.ok())
    return V;

  BinReader R(Bytes);
  auto Fail = [&](const std::string &Why) -> Expected<ModuleArtifact> {
    if (R.fail())
      return R.status("module artifact");
    return MCO_CORRUPT("module artifact: " + Why);
  };

  if (!R.literal(ModuleArtifactMagic, std::strlen(ModuleArtifactMagic)))
    return Fail("bad magic");
  if (R.u8() != ModuleArtifactVersion)
    return Fail("unsupported version");

  ModuleArtifact A;
  A.M.Name = R.str();

  uint32_t NumStrings = R.u32();
  if (!R.plausibleCount(NumStrings, 4, "string-table"))
    return Fail("");
  std::vector<uint32_t> SymOf(NumStrings);
  for (uint32_t I = 0; I < NumStrings; ++I) {
    std::string S = R.str();
    if (R.fail())
      return Fail("");
    SymOf[I] = Syms.internSymbol(S);
  }
  auto Resolve = [&](uint32_t Idx, uint32_t &Out) {
    if (Idx >= NumStrings) {
      R.poison("string index out of range");
      return false;
    }
    Out = SymOf[Idx];
    return true;
  };

  uint32_t NumFuncs = R.u32();
  if (!R.plausibleCount(NumFuncs, 18, "function"))
    return Fail("");
  A.M.Functions.reserve(NumFuncs);
  for (uint32_t FI = 0; FI < NumFuncs; ++FI) {
    MachineFunction MF;
    if (!Resolve(R.u32(), MF.Name))
      return Fail("");
    MF.IsOutlined = R.u8() != 0;
    uint8_t Frame = R.u8();
    if (Frame > static_cast<uint8_t>(OutlinedFrameKind::Thunk))
      return Fail("invalid frame kind");
    MF.FrameKind = static_cast<OutlinedFrameKind>(Frame);
    R.u16(); // pad
    MF.OutlinedCallSites = R.u32();
    MF.OriginModule = R.u32();
    uint32_t NumBlocks = R.u32();
    if (!R.plausibleCount(NumBlocks, 4, "block"))
      return Fail("");
    MF.Blocks.reserve(NumBlocks);
    for (uint32_t BI = 0; BI < NumBlocks; ++BI) {
      MachineBasicBlock &MBB = MF.addBlock();
      uint32_t NumInstrs = R.u32();
      if (!R.plausibleCount(NumInstrs, 2, "instruction"))
        return Fail("");
      MBB.Instrs.reserve(NumInstrs);
      for (uint32_t II = 0; II < NumInstrs; ++II) {
        uint8_t OpByte = R.u8();
        if (OpByte > static_cast<uint8_t>(Opcode::NOP))
          return Fail("invalid opcode");
        uint8_t NumOps = R.u8();
        if (NumOps > MachineInstr::MaxOperands)
          return Fail("invalid operand count");
        MachineOperand Ops[MachineInstr::MaxOperands];
        for (uint8_t OI = 0; OI < NumOps; ++OI) {
          uint8_t Kind = R.u8();
          if (Kind > static_cast<uint8_t>(MachineOperand::Kind::CondK))
            return Fail("invalid operand kind");
          uint8_t RegByte = R.u8();
          if (RegByte >= static_cast<uint8_t>(Reg::NumRegs) &&
              RegByte != static_cast<uint8_t>(Reg::None))
            return Fail("invalid register");
          uint8_t CondByte = R.u8();
          if (CondByte > static_cast<uint8_t>(Cond::HS))
            return Fail("invalid condition");
          int64_t Val = R.i64();
          MachineOperand &Op = Ops[OI];
          Op.K = static_cast<MachineOperand::Kind>(Kind);
          Op.R = static_cast<Reg>(RegByte);
          Op.C = static_cast<Cond>(CondByte);
          if (Op.isSym()) {
            uint32_t Sym = 0;
            if (!Resolve(static_cast<uint32_t>(Val), Sym))
              return Fail("");
            Op.Val = Sym;
          } else {
            Op.Val = Val;
          }
        }
        if (R.fail())
          return Fail("");
        MBB.push(makeInstr(static_cast<Opcode>(OpByte), Ops, NumOps));
      }
    }
    A.M.Functions.push_back(std::move(MF));
  }

  uint32_t NumGlobals = R.u32();
  if (!R.plausibleCount(NumGlobals, 12, "global"))
    return Fail("");
  A.M.Globals.reserve(NumGlobals);
  for (uint32_t GI = 0; GI < NumGlobals; ++GI) {
    GlobalData G;
    if (!Resolve(R.u32(), G.Name))
      return Fail("");
    G.OriginModule = R.u32();
    std::string Raw = R.str();
    if (R.fail())
      return Fail("");
    G.Bytes.assign(Raw.begin(), Raw.end());
    A.M.Globals.push_back(std::move(G));
  }

  uint32_t NumRounds = R.u32();
  if (!R.plausibleCount(NumRounds, 14 * 8, "round-stats"))
    return Fail("");
  A.Stats.Rounds.resize(NumRounds);
  for (uint32_t RI = 0; RI < NumRounds; ++RI)
    decodeRoundStats(R, A.Stats.Rounds[RI]);
  A.RoundsRolledBack = R.u64();
  A.PatternsQuarantined = R.u64();

  if (R.fail())
    return Fail("");
  if (!R.atEnd())
    return Fail("trailing bytes after artifact");
  return A;
}

std::string mco::cacheKeyOfContent(const std::vector<std::string> &Chunks,
                                   const std::string &OptionsFingerprint) {
  Fnv64 H1(0xCBF29CE484222325ull);
  Fnv64 H2(0x9AE16A3B2F90404Full);
  for (const std::string &C : Chunks) {
    H1.update(C);
    H2.update(C);
  }
  H1.update(OptionsFingerprint);
  H2.update(OptionsFingerprint);
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(H1.value()),
                static_cast<unsigned long long>(H2.value()));
  return Buf;
}

std::string mco::cacheKey(const Module &M, const SymbolNameFn &NameOf,
                          const std::string &OptionsFingerprint) {
  return cacheKeyOfContent({serializeModuleContent(M, NameOf)},
                           OptionsFingerprint);
}

std::string mco::programContentDigest(Program &Prog) {
  // v2: the digest covers the MCOB1 object-container encoding — the bytes
  // the build actually persists and ships — so two programs agree exactly
  // when their emitted containers would.
  SymbolNameFn NameOf = [&Prog](uint32_t Id) { return Prog.symbolName(Id); };
  std::vector<std::string> Chunks;
  Chunks.reserve(Prog.Modules.size());
  for (const auto &M : Prog.Modules)
    Chunks.push_back(serializeObjectContent(*M, NameOf));
  return cacheKeyOfContent(Chunks, "mco-artifact-digest-v2");
}

//===----------------------------------------------------------------------===//
// ArtifactCache
//===----------------------------------------------------------------------===//

Status ArtifactCache::prepare() {
  if (Status S = ensureDir(CacheDir); !S.ok())
    return S;
  if (Status S = ensureDir(CacheDir + "/objects"); !S.ok())
    return S;
  return ensureDir(quarantineDir());
}

std::string ArtifactCache::objectPath(const std::string &Key) const {
  return CacheDir + "/objects/" + Key + ".mco";
}

std::string ArtifactCache::quarantineDir() const {
  return CacheDir + "/quarantine";
}

std::string ArtifactCache::writerLockPath() const {
  return CacheDir + "/writer.lock";
}

namespace {

/// One mutex per cache directory, shared by every ArtifactCache in the
/// process. Daemon workers each hold their own cache object over the same
/// directory, and the pid-stamped file lock cannot tell them apart.
std::mutex &dirMutexFor(const std::string &Dir) {
  static std::mutex MapMutex;
  static std::map<std::string, std::unique_ptr<std::mutex>> Mutexes;
  std::lock_guard<std::mutex> G(MapMutex);
  std::unique_ptr<std::mutex> &Slot = Mutexes[Dir];
  if (!Slot)
    Slot = std::make_unique<std::mutex>();
  return *Slot;
}

} // namespace

Status ArtifactCache::withWriterLock(const std::function<Status()> &Fn) {
  if (!Shared)
    return Fn();
  std::lock_guard<std::mutex> InProcess(dirMutexFor(CacheDir));
  FileLock Lock;
  constexpr int MaxAttempts = 10;
  for (int Attempt = 0;; ++Attempt) {
    Status S = faultSiteFires(FaultCacheWriterContend)
                   ? MCO_ERROR("writer lock contended (injected)")
                   : Lock.acquire(writerLockPath());
    if (S.ok())
      break;
    WriterContended.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("cache.writer_contended").add(1);
    if (Attempt + 1 >= MaxAttempts)
      return MCO_ERROR("shared cache writer lock unavailable: " +
                       S.message());
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1u << std::min(Attempt, 6)));
  }
  Status S = Fn();
  Lock.release();
  return S;
}

ArtifactCache::LoadResult ArtifactCache::load(const std::string &Key,
                                              SymbolInterner &Syms) {
  MCO_TRACE_SPAN("cache.load", "cache");
  LoadResult LR;
  const std::string Path = objectPath(Key);

  Expected<std::string> Sealed = readFileBytes(Path);
  if (!Sealed.ok()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("cache.load_misses").add(1);
    return LR;
  }

  auto Reject = [&](const std::string &Why) {
    // Move the damaged entry aside: it must never be re-read as a
    // candidate hit, and keeping the bytes makes the corruption
    // inspectable after the build.
    std::error_code EC;
    fs::rename(Path, quarantineDir() + "/" + Key + ".mco", EC);
    if (EC)
      fs::remove(Path, EC);
    Corrupt.fetch_add(1, std::memory_order_relaxed);
    LR.Outcome = LoadOutcome::Corrupt;
    LR.Note = Why;
  };

  Expected<std::string> Payload = unsealArtifact(*Sealed);
  if (!Payload.ok()) {
    Reject(Payload.status().message());
    return LR;
  }
  // Entries written by this version carry an MCOB1 object container under
  // the seal; entries from older caches carry the flat MCOM payload. Both
  // decode; both reject (and quarantine) gracefully on damage.
  Expected<ModuleArtifact> A =
      Payload->rfind(ObjectFileMagic, 0) == 0
          ? deserializeObjectFile(*Payload, Syms)
          : deserializeModuleArtifact(*Payload, Syms);
  if (!A.ok()) {
    Reject(A.status().message());
    return LR;
  }

  // Refresh recency so eviction is LRU, not insertion-order.
  std::error_code EC;
  fs::last_write_time(Path, fs::file_time_type::clock::now(), EC);

  Hits.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::global().counter("cache.load_hits").add(1);
  LR.Outcome = LoadOutcome::Hit;
  LR.Artifact = std::move(*A);
  return LR;
}

Status ArtifactCache::store(const std::string &Key, const Module &M,
                            const RepeatedOutlineStats &Stats,
                            uint64_t RoundsRolledBack,
                            uint64_t PatternsQuarantined,
                            const SymbolNameFn &NameOf) {
  MCO_TRACE_SPAN("cache.store", "cache");
  std::string Sealed = sealArtifact(serializeObjectFile(
      M, Stats, RoundsRolledBack, PatternsQuarantined, NameOf));
  if (faultSiteFires(FaultCacheEntryCorrupt) && !Sealed.empty())
    Sealed.back() ^= 0x01; // Flip one payload byte under the seal.
  return withWriterLock([&]() -> Status {
    if (Status S = atomicWriteFile(objectPath(Key), Sealed); !S.ok())
      return S;
    evictToLimit();
    return Status::success();
  });
}

void ArtifactCache::evictToLimit() {
  if (MaxBytes == 0)
    return;
  struct Entry {
    fs::file_time_type MTime;
    uint64_t Size;
    std::string Path;
  };
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  std::error_code EC;
  for (const fs::directory_entry &DE :
       fs::directory_iterator(CacheDir + "/objects", EC)) {
    std::error_code FEC;
    uint64_t Size = DE.file_size(FEC);
    fs::file_time_type MTime = DE.last_write_time(FEC);
    if (FEC)
      continue; // Raced with a concurrent eviction.
    Entries.push_back({MTime, Size, DE.path().string()});
    Total += Size;
  }
  if (EC || Total <= MaxBytes)
    return;
  std::sort(Entries.begin(), Entries.end(), [](const Entry &A,
                                               const Entry &B) {
    return A.MTime != B.MTime ? A.MTime < B.MTime : A.Path < B.Path;
  });
  for (const Entry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    std::error_code REC;
    if (fs::remove(E.Path, REC) && !REC) {
      Total -= E.Size;
      Evicted.fetch_add(1, std::memory_order_relaxed);
    }
  }
}
