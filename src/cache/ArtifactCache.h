//===- cache/ArtifactCache.h - Checksummed artifact cache -------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed store of per-module build products. The
/// key is a digest of the module's *pre-outlining* contents plus a
/// fingerprint of every option that can change what outlining produces, so
/// a hit is only possible when the cached bytes are exactly what this build
/// would have computed. Entries are sealed (support/Checksum.h) and written
/// atomically (support/FileAtomics.h); a torn write, a kill -9 mid-store,
/// or a bit flip on disk is detected at load, the entry is quarantined, and
/// the build falls back to rebuilding the module — cache corruption can
/// degrade warm-build speed, never correctness.
///
/// The cached payload is the "MCOB1" object-file container (see
/// objfile/ObjectFile.h), not the textual MIR: the text form drops function
/// metadata (IsOutlined, FrameKind, OutlinedCallSites, OriginModule) that
/// the linker's layout decisions and the size accounting depend on, and it
/// carries no statistics. The container round-trips the module exactly —
/// through a symbol table and relocation records rather than inline ids —
/// and appends the outlining stats the original build reported, so a warm
/// build's numbers match the cold one's. Entries written by older versions
/// carry the legacy flat "MCOM" payload, which load() still decodes.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_CACHE_ARTIFACTCACHE_H
#define MCO_CACHE_ARTIFACTCACHE_H

#include "outliner/MachineOutliner.h"
#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace mco {

/// Resolves a symbol id to its name during serialization. The pipeline
/// supplies a resolver that consults the live DeferredSymbolBatch first
/// (per-module fan-out serializes before placeholder ids are committed)
/// and the shared Program otherwise.
using SymbolNameFn = std::function<std::string(uint32_t)>;

/// One cached per-module build product: the post-outlining module plus the
/// statistics the build reported when it produced it.
struct ModuleArtifact {
  Module M;
  RepeatedOutlineStats Stats;
  /// Guard counters for the module (BuildResult accumulates these).
  uint64_t RoundsRolledBack = 0;
  uint64_t PatternsQuarantined = 0;
};

/// First bytes of the binary module format.
inline constexpr const char *ModuleArtifactMagic = "MCOM";
inline constexpr uint8_t ModuleArtifactVersion = 2;

/// Serializes just the module contents (no stats trailer) with symbol ids
/// replaced by string-table references. Deterministic: equal modules with
/// equal names produce equal bytes regardless of symbol id assignment —
/// which is what makes it usable for both cache keys and cached payloads.
std::string serializeModuleContent(const Module &M, const SymbolNameFn &NameOf);

/// serializeModuleContent plus the stats trailer.
std::string serializeModuleArtifact(const Module &M,
                                    const RepeatedOutlineStats &Stats,
                                    uint64_t RoundsRolledBack,
                                    uint64_t PatternsQuarantined,
                                    const SymbolNameFn &NameOf);

/// The MCOM FormatValidator pass: walks the full structure with a
/// bounds-checked cursor — magic, version, counts, opcode/operand/enum
/// ranges, string-table indices, the stats trailer, trailing bytes —
/// WITHOUT constructing any object or interning any symbol. Runs after the
/// seal's CRC and before deserializeModuleArtifact builds the module, so
/// hostile length fields and out-of-range indices are rejected before they
/// can drive allocations or table growth.
Status validateModuleArtifactBytes(const std::string &Bytes);

/// Parses an MCOM artifact, interning every referenced symbol name through
/// \p Syms. Runs validateModuleArtifactBytes first; any structural damage
/// (that survived the outer checksum seal) fails cleanly with a byte
/// offset.
Expected<ModuleArtifact> deserializeModuleArtifact(const std::string &Bytes,
                                                   SymbolInterner &Syms);

/// Key over pre-serialized content chunks: 32 hex chars from two
/// independently seeded FNV-1a-64 digests over the chunks and the
/// fingerprint. The whole-program pipeline keys its single linked artifact
/// on every input module's serialized content.
std::string cacheKeyOfContent(const std::vector<std::string> &Chunks,
                              const std::string &OptionsFingerprint);

/// Derives the cache key for \p M under \p OptionsFingerprint.
std::string cacheKey(const Module &M, const SymbolNameFn &NameOf,
                     const std::string &OptionsFingerprint);

/// Content digest over every module of a built program — the byte-identity
/// witness: two builds with equal digests produced bit-identical serialized
/// artifacts. mco-build reports it in --diag-json, mco-buildd in every
/// `result` message, and the chaos tests compare the two.
std::string programContentDigest(Program &Prog);

/// The on-disk store. Layout under dir():
///
///   objects/<key>.mco     sealed MCOB1 object containers
///   quarantine/<file>     corrupt entries moved aside for post-mortem
///   writer.lock           single-writer lock (shared mode only)
///
/// All writes are atomic; concurrent same-key writers are safe (the entries
/// are bit-identical by construction, and the last rename wins). In shared
/// mode (setShared), every store — write plus eviction pass — additionally
/// runs under a single-writer discipline so several client processes and
/// daemon workers can hammer one store without interleaved evictions
/// double-counting or racing a write.
class ArtifactCache {
public:
  ArtifactCache(std::string Dir, uint64_t MaxBytes)
      : CacheDir(std::move(Dir)), MaxBytes(MaxBytes) {}

  /// Creates the directory layout. Call once before load()/store().
  Status prepare();

  enum class LoadOutcome { Hit, Miss, Corrupt };
  struct LoadResult {
    LoadOutcome Outcome = LoadOutcome::Miss;
    ModuleArtifact Artifact; ///< Valid only on Hit.
    std::string Note;        ///< Why a Corrupt entry was rejected.
  };

  /// Looks up \p Key. A Hit refreshes the entry's recency; a Corrupt entry
  /// is moved to quarantine/ so the same damage is never re-read.
  LoadResult load(const std::string &Key, SymbolInterner &Syms);

  /// Seals and atomically writes the artifact under \p Key, then evicts
  /// least-recently-used entries until the store fits MaxBytes. The
  /// `cache.entry.corrupt` fault site flips one payload byte after sealing,
  /// planting exactly the damage load() must catch.
  Status store(const std::string &Key, const Module &M,
               const RepeatedOutlineStats &Stats, uint64_t RoundsRolledBack,
               uint64_t PatternsQuarantined, const SymbolNameFn &NameOf);

  std::string objectPath(const std::string &Key) const;
  std::string quarantineDir() const;
  std::string writerLockPath() const;
  const std::string &dir() const { return CacheDir; }

  /// Promotes this cache to a shared multi-client store: store() runs
  /// under a process-wide per-directory mutex (file locks deliberately
  /// treat same-pid owners as stale, so they cannot exclude two caches in
  /// one process) plus an owner-pid writer.lock excluding other client
  /// processes. Acquisition retries with exponential backoff; the
  /// `cache.writer.contend` fault site forces the contended path
  /// deterministically.
  void setShared(bool S) { Shared = S; }
  bool shared() const { return Shared; }

  uint64_t hits() const { return Hits.load(); }
  uint64_t misses() const { return Misses.load(); }
  uint64_t corrupt() const { return Corrupt.load(); }
  uint64_t evicted() const { return Evicted.load(); }
  /// Writer-lock acquisition attempts that hit contention (shared mode).
  uint64_t writerContended() const { return WriterContended.load(); }

private:
  Status withWriterLock(const std::function<Status()> &Fn);
  void evictToLimit();

  std::string CacheDir;
  uint64_t MaxBytes;
  bool Shared = false;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Corrupt{0};
  std::atomic<uint64_t> Evicted{0};
  std::atomic<uint64_t> WriterContended{0};
};

} // namespace mco

#endif // MCO_CACHE_ARTIFACTCACHE_H
