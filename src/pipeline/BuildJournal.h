//===- pipeline/BuildJournal.h - Crash-safe build journal -------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only, per-line-checksummed record of build progress. Every
/// line is `<crc32c-8hex> <payload>`, fsynced as it is appended, so a
/// kill -9 at any instant leaves a journal whose intact prefix is exactly
/// the set of modules whose artifacts were durably stored before the
/// crash. `mco-build --resume <dir>` replays that prefix: modules with a
/// `done` record reload from the artifact cache, `degraded` modules stay
/// degraded, and only the unfinished tail is rebuilt.
///
/// Journal grammar (one record per line, after the CRC prefix):
///
///   mcoj1 <build-fingerprint> <num-modules> <wp|pm>   header, line 1
///   done <idx> <key> <name>                           module outlined+cached
///   degraded <idx> <name>                             module shipped unoutlined
///   end                                               build completed
///
/// A resumed build whose fingerprint differs (different corpus, options,
/// or fault config) ignores the journal entirely: stale progress must
/// never leak across configurations.
///
/// The env var MCO_CRASH_AFTER_MODULES=N makes the writer raise SIGKILL
/// immediately after durably recording the Nth *freshly built* module —
/// the crash-test hook. Resumed/cache-hit re-records do not count, so a
/// chained crash-resume-crash test makes forward progress every run.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_PIPELINE_BUILDJOURNAL_H
#define MCO_PIPELINE_BUILDJOURNAL_H

#include "support/Error.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mco {

/// What a prior build durably recorded before it stopped.
struct ResumeState {
  bool Valid = false; ///< Header parsed and fingerprint-checkable.
  std::string Fingerprint;
  uint64_t NumModules = 0;
  bool WholeProgram = false;
  bool Ended = false; ///< The prior build ran to completion.

  struct ModuleRecord {
    enum Kind { Done, Degraded } K = Done;
    uint32_t Idx = 0;
    std::string Key;  ///< Artifact-cache key (Done only).
    std::string Name; ///< Module name, for cross-checking.
  };
  std::vector<ModuleRecord> Records;

  /// Parses the journal at \p Path, stopping at the first line whose CRC
  /// or structure is damaged (the torn tail of a crashed append). Missing
  /// file or bad header → !Valid; a damaged tail still yields the intact
  /// prefix.
  static ResumeState load(const std::string &Path);

  /// Same parse on in-memory bytes (what the corruption-fuzz harness
  /// drives — no file round-trip per case).
  static ResumeState loadFromBytes(const std::string &Bytes);
};

/// The append side. All methods are thread-safe and become no-ops when the
/// journal failed to open (cache disabled ≠ build failed).
class BuildJournal {
public:
  BuildJournal() = default;
  ~BuildJournal();

  BuildJournal(const BuildJournal &) = delete;
  BuildJournal &operator=(const BuildJournal &) = delete;

  /// Truncates \p Path and writes the header line.
  Status open(const std::string &Path, const std::string &Fingerprint,
              uint64_t NumModules, bool WholeProgram);

  /// Records module \p Idx as outlined and cached under \p Key.
  /// \p FreshlyBuilt is false when re-recording a resumed or cache-hit
  /// module; only fresh records trip the MCO_CRASH_AFTER_MODULES hook.
  void recordModuleDone(uint32_t Idx, const std::string &Name,
                        const std::string &Key, bool FreshlyBuilt);

  /// Records module \p Idx as shipped unoutlined.
  void recordModuleDegraded(uint32_t Idx, const std::string &Name);

  /// Records that the build completed.
  void recordEnd();

  void close();
  bool isOpen() const { return Fd >= 0; }

private:
  void appendLine(const std::string &Payload);

  std::mutex Mu;
  int Fd = -1;
  uint64_t FreshModules = 0;
  long CrashAfterModules = -1; ///< From MCO_CRASH_AFTER_MODULES; -1 = off.
};

/// What the daemon's request table durably recorded: which accepted
/// requests never reached a terminal record. `mco-buildd --resume` replays
/// exactly these.
struct RequestResumeState {
  bool Valid = false; ///< Header parsed; a missing file is simply !Valid.
  /// Ids with a `recv` record but no `done`/`failed`, in receipt order.
  std::vector<std::string> Unfinished;
  /// Ids with a terminal record (for idempotent re-submissions).
  std::vector<std::string> Finished;

  /// Parses the request table at \p Path with the same torn-tail
  /// discipline as ResumeState::load: the intact CRC prefix is the truth.
  static RequestResumeState load(const std::string &Path);

  /// Same parse on in-memory bytes (fuzz-harness entry point).
  static RequestResumeState loadFromBytes(const std::string &Bytes);
};

/// The daemon's request table: the same CRC-per-line append-only format as
/// BuildJournal, but opened in *append* mode — it spans daemon restarts,
/// which is what makes crash-resume of in-flight requests possible.
///
/// Grammar (after the CRC prefix):
///
///   mcoreq1                          header, first line of a fresh file
///   recv <id>                        request accepted into the queue
///   done <id> <completed|degraded>   request finished, result durable
///   failed <id>                      request failed terminally (the
///                                    client may retry under a new id)
///
/// Ids are client-chosen tokens without whitespace; the daemon rejects
/// anything else at the protocol boundary.
class RequestJournal {
public:
  RequestJournal() = default;
  ~RequestJournal();

  RequestJournal(const RequestJournal &) = delete;
  RequestJournal &operator=(const RequestJournal &) = delete;

  /// Opens \p Path for appending, creating it (with the header line) when
  /// absent or empty.
  Status open(const std::string &Path);

  void recordReceived(const std::string &Id);
  void recordDone(const std::string &Id, const std::string &State);
  void recordFailed(const std::string &Id);

  void close();
  bool isOpen() const { return Fd >= 0; }

private:
  void appendLine(const std::string &Payload);

  std::mutex Mu;
  int Fd = -1;
};

} // namespace mco

#endif // MCO_PIPELINE_BUILDJOURNAL_H
