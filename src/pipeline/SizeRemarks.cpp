//===- pipeline/SizeRemarks.cpp - Per-function size remarks ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/SizeRemarks.h"

#include "support/FileAtomics.h"

namespace mco {

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// YAML single-quoted scalar: the only escape is doubling the quote.
std::string yamlQuote(const std::string &S) {
  std::string Out = "'";
  for (char C : S) {
    Out += C;
    if (C == '\'')
      Out += '\'';
  }
  Out += "'";
  return Out;
}

} // namespace

std::string sizeRemarksYaml(const SizeRemarkSet &S) {
  std::string Out;
  for (const SizeRemark &R : S.Remarks) {
    Out += "--- !Analysis\n";
    Out += "Pass:            size-info\n";
    Out += "Name:            FunctionMISizeChange\n";
    Out += "Function:        " + yamlQuote(R.Function) + "\n";
    Out += std::string("Hotness:         ") + heatClassName(R.Heat) + "\n";
    Out += std::string("Outlined:        ") +
           (R.IsOutlined ? "true" : "false") + "\n";
    Out += "Args:\n";
    Out += "  - MIInstrsBefore: " + std::to_string(R.MIInstrsBefore) + "\n";
    Out += "  - MIInstrsAfter:  " + std::to_string(R.MIInstrsAfter) + "\n";
    Out += "  - Delta:          " + std::to_string(R.delta()) + "\n";
    Out += "...\n";
  }
  for (const HeatSuppressedRemark &M : S.Suppressed) {
    Out += "--- !Missed\n";
    Out += "Pass:            machine-outliner\n";
    Out += "Name:            HeatSuppressedCandidate\n";
    Out += "Function:        " + yamlQuote(M.Function) + "\n";
    Out += "Args:\n";
    Out += "  - PatternLen:     " + std::to_string(M.PatternLen) + "\n";
    Out += "  - Occurrences:    " + std::to_string(M.Occurrences) + "\n";
    Out += "...\n";
  }
  return Out;
}

std::string sizeRemarksJson(const SizeRemarkSet &S) {
  std::string Out = "{\n  \"schema\": \"mco-size-remarks-v1\",\n";
  Out += std::string("  \"heat_guided\": ") +
         (S.HeatGuided ? "true" : "false") + ",\n";
  Out += "  \"hot_threshold_pct\": " + std::to_string(S.HotThresholdPct) +
         ",\n";
  Out += "  \"remarks\": [";
  for (size_t I = 0; I < S.Remarks.size(); ++I) {
    const SizeRemark &R = S.Remarks[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "[\"" + jsonEscape(R.Function) + "\", " +
           std::to_string(R.MIInstrsBefore) + ", " +
           std::to_string(R.MIInstrsAfter) + ", " +
           std::to_string(R.delta()) + ", \"" + heatClassName(R.Heat) +
           "\", " + (R.IsOutlined ? "true" : "false") + "]";
  }
  Out += S.Remarks.empty() ? "],\n" : "\n  ],\n";
  Out += "  \"heat_suppressed\": [";
  for (size_t I = 0; I < S.Suppressed.size(); ++I) {
    const HeatSuppressedRemark &M = S.Suppressed[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "[\"" + jsonEscape(M.Function) + "\", " +
           std::to_string(M.PatternLen) + ", " +
           std::to_string(M.Occurrences) + "]";
  }
  Out += S.Suppressed.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

Status writeSizeRemarks(const SizeRemarkSet &S, const std::string &Path) {
  const bool Json =
      Path.size() >= 5 && Path.compare(Path.size() - 5, 5, ".json") == 0;
  return atomicWriteFile(Path, Json ? sizeRemarksJson(S)
                                    : sizeRemarksYaml(S));
}

} // namespace mco
