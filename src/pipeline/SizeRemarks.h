//===- pipeline/SizeRemarks.h - Per-function size remarks -------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function size remarks, the build's answer to "what did outlining do
/// to *my* function?": before/after machine-instruction counts for every
/// function that ships, each tagged with its heat class, plus the exact
/// candidate sites the profile's hot-suppression refused to outline.
/// Modeled on LLVM's `size-info` optimization remarks
/// (`FunctionMISizeChange`), extended with the hotness dimension.
///
/// Renderings are deterministic — the remark set is sorted by function
/// name and carries no timestamps or paths — so a remarks file is
/// byte-identical at any thread count and across both discovery engines.
/// `--size-remarks FILE` writes YAML by default, JSON when the path ends
/// in `.json`.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_PIPELINE_SIZEREMARKS_H
#define MCO_PIPELINE_SIZEREMARKS_H

#include "sim/HeatProfile.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mco {

/// One function's size change through the build. Functions the outliner
/// created have MIInstrsBefore == 0 and IsOutlined set.
struct SizeRemark {
  std::string Function;
  uint64_t MIInstrsBefore = 0;
  uint64_t MIInstrsAfter = 0;
  HeatClass Heat = HeatClass::Warm;
  bool IsOutlined = false;

  int64_t delta() const {
    return static_cast<int64_t>(MIInstrsAfter) -
           static_cast<int64_t>(MIInstrsBefore);
  }
};

/// One (hot function, pattern length) the heat model refused to outline,
/// with how many candidate occurrences it suppressed there.
struct HeatSuppressedRemark {
  std::string Function;
  uint32_t PatternLen = 0;
  uint64_t Occurrences = 0;
};

/// The whole build's remark set, in canonical order: Remarks ascending by
/// function name, Suppressed ascending by (function name, pattern length).
struct SizeRemarkSet {
  /// Whether heat guidance was active (false = Hotness below is Warm for
  /// everything and Suppressed is empty).
  bool HeatGuided = false;
  /// The threshold the build classified with (0 when not heat-guided).
  unsigned HotThresholdPct = 0;
  std::vector<SizeRemark> Remarks;
  std::vector<HeatSuppressedRemark> Suppressed;

  uint64_t suppressedOccurrences() const {
    uint64_t N = 0;
    for (const HeatSuppressedRemark &S : Suppressed)
      N += S.Occurrences;
    return N;
  }
};

/// LLVM-style YAML rendering: one `--- !Analysis` document per function
/// (Pass: size-info, Name: FunctionMISizeChange) followed by one
/// `--- !Missed` document per heat-suppressed site group.
std::string sizeRemarksYaml(const SizeRemarkSet &S);

/// Deterministic JSON rendering (`mco-size-remarks-v1`).
std::string sizeRemarksJson(const SizeRemarkSet &S);

/// Atomically writes the remark set to \p Path: JSON when the path ends
/// in `.json`, YAML otherwise.
Status writeSizeRemarks(const SizeRemarkSet &S, const std::string &Path);

} // namespace mco

#endif // MCO_PIPELINE_SIZEREMARKS_H
