//===- pipeline/BuildPipeline.h - The two iOS build pipelines ---*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two build pipelines:
///
///  - Default (Fig. 2): each module is compiled — and outlined — on its
///    own; the linker then combines the modules, keeping each module's
///    OUTLINED_* clones as distinct local symbols.
///
///  - Whole-program (Fig. 10): modules are merged first (llvm-link),
///    whole-program optimizations run on the single merged module, and
///    machine outlining sees every function at once.
///
/// Both support 0..N rounds of repeated outlining and report per-phase
/// wall-clock times for the Section VII-C build-time comparison.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_PIPELINE_BUILDPIPELINE_H
#define MCO_PIPELINE_BUILDPIPELINE_H

#include "linker/LayoutStrategy.h"
#include "linker/Linker.h"
#include "objfile/DeadStrip.h"
#include "outliner/MachineOutliner.h"
#include "outliner/OutlineGuard.h"
#include "pipeline/SizeRemarks.h"
#include "sim/HeatProfile.h"

#include <string>
#include <vector>

namespace mco {

/// Crash-safety knobs: the artifact cache, the build journal, and the
/// per-module watchdog. All default-off; with CacheDir empty and
/// ModuleTimeoutMs zero the pipeline behaves exactly as it did before
/// these existed.
struct ResilienceOptions {
  /// Directory for the artifact cache, build journal, and build lock.
  /// Empty disables all three.
  std::string CacheDir;
  /// Consult the journal in CacheDir and skip modules a prior (crashed or
  /// completed) build already finished.
  bool Resume = false;
  /// Per-module outlining deadline in milliseconds; 0 disables the
  /// watchdog. Cancellation is cooperative (the engine polls at round
  /// boundaries), so a module stuck inside one phase overshoots the
  /// deadline until the next poll point.
  uint64_t ModuleTimeoutMs = 0;
  /// Extra attempts after a timeout, each with double the previous
  /// deadline; a module that times out through every attempt ships
  /// unoutlined (counted in ModulesDegraded + ModulesTimedOut).
  unsigned TimeoutRetries = 2;
  /// Cache size limit; least-recently-used entries are evicted past it.
  uint64_t CacheMaxBytes = 256ull * 1024 * 1024;
  /// The cache at CacheDir is shared between concurrent clients: stores go
  /// through the single-writer lock discipline (ArtifactCache::setShared),
  /// and the exclusive build lock + journal move to JournalDir so sharers
  /// do not serialize whole builds against each other.
  bool SharedCache = false;
  /// Directory for the build lock + journal when it must be private to
  /// this build (daemon per-request state dirs; concurrent clients of a
  /// shared cache). Empty = alongside the cache in CacheDir.
  std::string JournalDir;
};

/// Code-layout configuration: which LayoutStrategy orders the final
/// image's functions, and the startup-trace profile driving it (the
/// measure->layout->verify loop's "layout" step).
struct LayoutOptions {
  /// Strategy name: "original" (module order), "bp", or "stitch". An
  /// unknown name degrades the build to original order (logged in
  /// FailureLog) rather than failing it; CLIs validate names up front.
  std::string Strategy = "original";
  /// Path to an `mco-traces-v1` profile (mco-fleet --emit-traces). Empty
  /// = no profile; profile-driven strategies then keep module order.
  std::string ProfilePath;
  /// Pre-parsed profile; takes precedence over ProfilePath. Not owned —
  /// must outlive the build.
  const TraceProfile *Profile = nullptr;
};

/// Profile-guided hot/cold outlining configuration (the `mco-heat-v1`
/// analogue of LayoutOptions): which heat profile steers the outliner's
/// cost model, and the hot-percentile threshold.
struct HeatOptions {
  /// Path to an `mco-heat-v1` profile (mco-fleet --emit-heat). Empty = no
  /// file. An unreadable or corrupt file degrades the build to
  /// profile-free outlining (logged in FailureLog) rather than failing
  /// it; CLIs validate the file up front.
  std::string ProfilePath;
  /// Pre-parsed profile; takes precedence over ProfilePath. Not owned —
  /// must outlive the build.
  const HeatProfile *Profile = nullptr;
  /// Hot percentile threshold in [0, 100]. 0 disables heat guidance
  /// entirely (the build is byte-identical to a profile-free one); 100
  /// makes the hot set empty (outline everything, cold rules still
  /// apply). See classifyHeat.
  unsigned HotThresholdPct = 0;
};

/// Build configuration.
struct PipelineOptions {
  /// Rounds of repeated machine outlining; 0 disables outlining.
  unsigned OutlineRounds = 5;
  /// true = whole-program pipeline (Fig. 10); false = per-module (Fig. 2).
  bool WholeProgram = true;
  /// Data ordering applied when modules are merged. Legacy alias: the
  /// strategy's data affinity (LayoutStrategy::dataLayout) is
  /// authoritative, and a non-default value here overrides it, so
  /// --data-layout / --interleave-data keep their exact old meaning.
  DataLayoutMode DataLayout = DataLayoutMode::PreserveModuleOrder;
  /// Code-layout strategy + profile.
  LayoutOptions Layout;
  /// Profile-guided hot/cold outlining (heat profile + threshold).
  HeatOptions Heat;
  /// Outliner knobs (greedy order, discovery mode, RegSave, ...).
  OutlinerOptions Outliner;
  /// Worker threads. Whole-program builds parallelize inside the outliner
  /// (liveness, candidate classification); per-module builds outline whole
  /// modules concurrently. Output is bit-identical at any setting.
  unsigned Threads = 1;
  /// Guarded outlining: per-round verify + rollback + quarantine (see
  /// OutlineGuard). Guard.Enabled turns it on; with it off and no faults
  /// injected the build is bit-identical to a guarded one.
  GuardOptions Guard;
  /// Whole-program dead-strip, run before outlining (off by default; see
  /// DeadStripOptions). Stripping first keeps outlined output unchanged
  /// for fully-live programs.
  DeadStripOptions DeadStrip;
  /// Crash safety: artifact cache, journal/resume, watchdog.
  ResilienceOptions Resilience;
};

/// Result of a build: sizes, outlining statistics, and phase timings.
struct BuildResult {
  uint64_t CodeSize = 0;
  uint64_t DataSize = 0;
  /// Code + data + the fixed resource overhead the app carries.
  uint64_t BinarySize = 0;

  RepeatedOutlineStats OutlineStats;

  /// Per-function size remarks: before/after MI counts for every function
  /// that ships, plus the candidates the heat model suppressed. Always
  /// populated; --size-remarks decides whether they are written out.
  /// Deterministic at any thread count and across discovery engines.
  SizeRemarkSet Remarks;

  /// Dead-strip pass accounting (all zero when the pass is disabled).
  DeadStripStats DeadStrip;

  /// The layout plan the final image was built with (Strategy "original"
  /// with an empty Order when no strategy/profile was configured).
  LayoutPlan Layout;

  // Failure-handling observability. A build that hits an unrecoverable
  // per-module failure still completes: the module ships unoutlined.
  /// Modules (or the whole linked module) that fell back to their
  /// unoutlined form because outlining failed outright.
  uint64_t ModulesDegraded = 0;
  /// Failed round attempts rolled back by the guard across all modules.
  uint64_t RoundsRolledBack = 0;
  /// Patterns quarantined by the guard across all modules.
  uint64_t PatternsQuarantined = 0;
  /// Modules degraded because they overran the watchdog deadline through
  /// every retry (a subset of ModulesDegraded).
  uint64_t ModulesTimedOut = 0;
  /// Individual attempts the watchdog cancelled (retries that later
  /// succeeded count here but not in ModulesTimedOut).
  uint64_t WatchdogTimeouts = 0;
  /// Retry attempts launched after a watchdog cancel — including the
  /// retry a module degrades on, so dashboards can diff runs even when
  /// every retry was spent.
  uint64_t WatchdogRetries = 0;
  /// Human-readable record of every failure the build absorbed.
  std::vector<std::string> FailureLog;

  // Artifact-cache observability (all zero when the cache is disabled).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Entries that failed the checksum or structural validation at load;
  /// each was quarantined and its module rebuilt.
  uint64_t CacheCorrupt = 0;
  uint64_t CacheEvicted = 0;
  /// Modules skipped because the journal + cache carried them over from a
  /// prior build (--resume).
  uint64_t ModulesResumed = 0;
  /// Dead-owner build locks recovered while acquiring the cache lock.
  uint64_t StaleLocksRecovered = 0;
  /// Writer-lock acquisitions that hit contention (shared cache only).
  uint64_t CacheWriterContended = 0;

  /// Wall-clock seconds per phase.
  double LinkIRSeconds = 0;     ///< llvm-link analogue (merge).
  double OutlineSeconds = 0;    ///< All outlining rounds (llc analogue).
  std::vector<double> OutlineRoundSeconds;
  double LayoutSeconds = 0;     ///< System linker analogue.
  double totalSeconds() const {
    return LinkIRSeconds + OutlineSeconds + LayoutSeconds;
  }
};

/// Fixed non-code, non-data resource bytes added to BinarySize, scaled to
/// the corpus (the UberRider binary is ~92% of the app; ~23% of the binary
/// is non-code).
inline constexpr uint64_t DefaultResourceBytes = 0;

/// Builds \p Prog in place (modules are merged; outlined functions are
/// added). \returns sizes and statistics.
BuildResult buildProgram(Program &Prog, const PipelineOptions &Opts);

} // namespace mco

#endif // MCO_PIPELINE_BUILDPIPELINE_H
