//===- pipeline/BuildPipeline.cpp - The two iOS build pipelines -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/BuildPipeline.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <memory>

using namespace mco;

namespace {
double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}
} // namespace

BuildResult mco::buildProgram(Program &Prog, const PipelineOptions &Opts) {
  BuildResult R;
  using Clock = std::chrono::steady_clock;

  if (Opts.WholeProgram) {
    // Fig. 10: merge IR first, then outline across the whole program.
    auto T0 = Clock::now();
    Module &Linked = linkProgram(Prog, Opts.DataLayout);
    R.LinkIRSeconds = secondsSince(T0);

    T0 = Clock::now();
    OutlinerOptions EOpts = Opts.Outliner;
    if (Opts.Threads > 1)
      EOpts.Threads = Opts.Threads;
    OutlinerEngine Engine(Prog, Linked, EOpts);
    for (unsigned Round = 1; Round <= Opts.OutlineRounds; ++Round) {
      auto TR = Clock::now();
      OutlineRoundStats RS = Engine.runRound(Round);
      R.OutlineRoundSeconds.push_back(secondsSince(TR));
      R.OutlineStats.Rounds.push_back(RS);
      if (RS.FunctionsCreated == 0)
        break;
    }
    R.OutlineSeconds = secondsSince(T0);
  } else {
    // Fig. 2: outline each module independently, then merge. Clones of
    // identical OUTLINED_* bodies from different modules survive the link
    // as distinct local symbols.
    auto T0 = Clock::now();
    const size_t NumMods = Prog.Modules.size();
    std::vector<RepeatedOutlineStats> ModStats(NumMods);

    auto outlineModule = [&](size_t I, SymbolInterner &Syms,
                             unsigned InnerThreads) {
      OutlinerOptions PerModule = Opts.Outliner;
      PerModule.NamePrefix += "@" + Prog.Modules[I]->Name;
      PerModule.Threads = InnerThreads;
      ModStats[I] = runRepeatedOutliner(Syms, *Prog.Modules[I],
                                        Opts.OutlineRounds, PerModule);
    };

    if (Opts.Threads > 1 && NumMods > 1) {
      // Modules are independent except for symbol interning. Each worker
      // collects new names in a DeferredSymbolBatch; committing the
      // batches serially in module order reproduces the exact symbol ids
      // a serial run would have assigned.
      std::vector<std::unique_ptr<DeferredSymbolBatch>> Batches(NumMods);
      for (size_t I = 0; I < NumMods; ++I)
        Batches[I] = std::make_unique<DeferredSymbolBatch>(
            Prog, static_cast<uint32_t>(I));
      ThreadPool Pool(Opts.Threads);
      Pool.parallelFor(NumMods, [&](size_t I) {
        outlineModule(I, *Batches[I], /*InnerThreads=*/1);
      });
      for (size_t I = 0; I < NumMods; ++I)
        Batches[I]->commit(Prog, *Prog.Modules[I]);
    } else {
      for (size_t I = 0; I < NumMods; ++I)
        outlineModule(I, Prog, Opts.Outliner.Threads);
    }

    // Accumulate per-round stats across modules into a program-level
    // trajectory. Modules converge at different rounds; for rounds past a
    // module's last, carry its final size forward so CodeSizeBefore/After
    // of every round describe the whole program, not just the modules
    // still active.
    size_t MaxRounds = 0;
    for (const RepeatedOutlineStats &MS : ModStats)
      MaxRounds = std::max(MaxRounds, MS.Rounds.size());
    R.OutlineStats.Rounds.resize(MaxRounds);
    for (const RepeatedOutlineStats &MS : ModStats) {
      for (size_t J = 0; J < MaxRounds; ++J) {
        OutlineRoundStats &Acc = R.OutlineStats.Rounds[J];
        if (J < MS.Rounds.size()) {
          const OutlineRoundStats &RS = MS.Rounds[J];
          Acc.SequencesOutlined += RS.SequencesOutlined;
          Acc.FunctionsCreated += RS.FunctionsCreated;
          Acc.OutlinedFunctionBytes += RS.OutlinedFunctionBytes;
          Acc.CodeSizeBefore += RS.CodeSizeBefore;
          Acc.CodeSizeAfter += RS.CodeSizeAfter;
          Acc.PatternsConsidered += RS.PatternsConsidered;
          Acc.PatternsUnprofitable += RS.PatternsUnprofitable;
          Acc.CandidatesDroppedSP += RS.CandidatesDroppedSP;
          Acc.CandidatesDroppedOverlap += RS.CandidatesDroppedOverlap;
          Acc.FunctionsRemapped += RS.FunctionsRemapped;
          Acc.LivenessComputed += RS.LivenessComputed;
          Acc.FunctionsEdited += RS.FunctionsEdited;
        } else if (!MS.Rounds.empty()) {
          uint64_t Final = MS.Rounds.back().CodeSizeAfter;
          Acc.CodeSizeBefore += Final;
          Acc.CodeSizeAfter += Final;
        }
      }
    }
    R.OutlineSeconds = secondsSince(T0);

    T0 = Clock::now();
    linkProgram(Prog, Opts.DataLayout);
    R.LinkIRSeconds = secondsSince(T0);
  }

  auto T0 = Clock::now();
  BinaryImage Image(Prog);
  R.LayoutSeconds = secondsSince(T0);
  R.CodeSize = Image.codeSize();
  R.DataSize = Image.dataSize();
  R.BinarySize = Image.binarySize(DefaultResourceBytes);
  return R;
}
