//===- pipeline/BuildPipeline.cpp - The two iOS build pipelines -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/BuildPipeline.h"

#include "cache/ArtifactCache.h"
#include "pipeline/BuildJournal.h"
#include "support/Checksum.h"
#include "support/FaultInjection.h"
#include "support/FileAtomics.h"
#include "support/ThreadPool.h"
#include "telemetry/Metrics.h"
#include "telemetry/Tracer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>

using namespace mco;

namespace {
double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Renders every option that can change the *content* a build produces.
/// Threads and Transactional are excluded (bit-identical by contract), and
/// so are the watchdog knobs: a module that beats its deadline produces
/// exactly what an unwatched build would, and a module that doesn't is
/// degraded and never cached. Fault specs for non-cache sites are folded
/// in so a fault-injected build can never serve artifacts to a clean one.
std::string optionsFingerprint(const PipelineOptions &Opts,
                               const HeatProfile *Heat, bool HeatGuided) {
  const OutlinerOptions &O = Opts.Outliner;
  const GuardOptions &G = Opts.Guard;
  std::ostringstream S;
  S << "v1;rounds=" << Opts.OutlineRounds << ";wp=" << Opts.WholeProgram
    << ";layout=" << static_cast<int>(Opts.DataLayout)
    << ";minlen=" << O.MinLength << ";leafdesc=" << O.LeafDescendants
    << ";regsave=" << O.EnableRegSave << ";bybenefit=" << O.SortByBenefit
    << ";prefix=" << O.NamePrefix << ";incremental=" << O.Incremental
    << ";guard=" << G.Enabled << ";retries=" << G.MaxRetriesPerRound
    << ";vexec=" << G.VerifyExecSamples << ";vseed=" << G.VerifyExecSeed
    << ";vfuel=" << G.VerifyExecFuel << ";quarantine=";
  for (uint64_t H : G.InitialQuarantine)
    S << H << ",";
  S << ";dce=" << Opts.DeadStrip.Enabled << ";dceexp=";
  for (const std::string &E : Opts.DeadStrip.ExportedSymbols)
    S << E << ",";
  S << ";faults=" << FaultInjection::instance().contentAffectingConfig();
  // Heat guidance changes what a build produces, so the threshold and the
  // profile *content* join the fingerprint — but only when active, so a
  // --hot-threshold 0 (or profile-free) build shares cache entries with
  // builds from before heat existed.
  if (HeatGuided && Heat) {
    Fnv64 HF;
    HF.update(heatProfileJson(*Heat));
    S << ";heatpct=" << Opts.Heat.HotThresholdPct << ";heatfp=" << std::hex
      << HF.value() << std::dec;
  }
  return S.str();
}

/// Everything the crash-safe layer holds for one build. When Enabled is
/// false (no --cache-dir, or the cache could not be set up) every use
/// site no-ops and the build runs exactly as it would have before the
/// cache existed.
struct ResilienceCtx {
  bool Enabled = false;
  std::unique_ptr<ArtifactCache> Cache;
  FileLock Lock;
  BuildJournal Journal;
  std::string OptsFp;
  std::vector<std::string> Keys; ///< Per-module keys (per-module path).
  std::string WholeKey;          ///< Linked-module key (WP path).
  std::string BuildFp;           ///< Journal header fingerprint.
  ResumeState Prior;             ///< Usable prior journal (if resuming).
};

/// Spends time at the `pipeline.module.hang` site until the watchdog's
/// cancel arrives. Without a watchdog the hang is capped and degrades the
/// module through the ordinary failure path instead of wedging the build.
void hangUntilCancelled(const std::atomic<bool> *Cancel) {
  auto Start = std::chrono::steady_clock::now();
  for (;;) {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      throw OutlineCancelled();
    if (secondsSince(Start) > 10.0)
      throw InjectedFault(FaultPipelineModuleHang);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

enum class DeadlineOutcome { Completed, TimedOut, Failed };

/// Runs \p Body on its own thread with a deadline. On overrun, raises
/// \p Cancel and joins: cancellation is cooperative (the engine polls at
/// round boundaries, the hang site every 2 ms), so the join is bounded by
/// the distance to the next poll point, not by the module's total work.
DeadlineOutcome runWithDeadline(uint64_t Ms, std::atomic<bool> &Cancel,
                                const std::function<void()> &Body,
                                std::exception_ptr &Err) {
  auto Done = std::make_shared<std::promise<void>>();
  std::future<void> F = Done->get_future();
  std::thread T([&Body, Done] {
    try {
      Body();
      Done->set_value();
    } catch (...) {
      Done->set_exception(std::current_exception());
    }
  });
  if (F.wait_for(std::chrono::milliseconds(Ms)) ==
      std::future_status::timeout)
    Cancel.store(true, std::memory_order_relaxed);
  T.join();
  try {
    F.get();
    return DeadlineOutcome::Completed;
  } catch (const OutlineCancelled &) {
    return DeadlineOutcome::TimedOut;
  } catch (...) {
    Err = std::current_exception();
    return DeadlineOutcome::Failed;
  }
}

void initResilience(ResilienceCtx &RC, BuildResult &R, Program &Prog,
                    const PipelineOptions &Opts, const HeatProfile *Heat,
                    bool HeatGuided) {
  const ResilienceOptions &RO = Opts.Resilience;
  if (RO.CacheDir.empty())
    return;
  RC.Cache = std::make_unique<ArtifactCache>(RO.CacheDir, RO.CacheMaxBytes);
  RC.Cache->setShared(RO.SharedCache);
  // The build lock and journal are private to one build; when several
  // builds share the cache they keep their state in their own JournalDir
  // instead of serializing whole builds on one lock in the cache.
  const std::string StateDir =
      RO.JournalDir.empty() ? RO.CacheDir : RO.JournalDir;
  Status S = RC.Cache->prepare();
  if (S.ok() && !RO.JournalDir.empty())
    S = ensureDir(RO.JournalDir);
  if (S.ok())
    S = RC.Lock.acquire(StateDir + "/build.lock");
  if (!S.ok()) {
    // A broken or busy cache must degrade warm-build speed, never the
    // build itself: run uncached.
    R.FailureLog.push_back("cache disabled: " + S.message());
    RC.Cache.reset();
    return;
  }
  RC.Enabled = true;
  R.StaleLocksRecovered = RC.Lock.staleLocksRecovered();
  RC.OptsFp = optionsFingerprint(Opts, Heat, HeatGuided);

  SymbolNameFn NameOf = [&Prog](uint32_t Id) { return Prog.symbolName(Id); };
  Fnv64 B(0x84222325CBF29CE4ull);
  B.update(RC.OptsFp);
  if (Opts.WholeProgram) {
    std::vector<std::string> Chunks;
    Chunks.reserve(Prog.Modules.size());
    for (const auto &M : Prog.Modules)
      Chunks.push_back(serializeModuleContent(*M, NameOf));
    RC.WholeKey = cacheKeyOfContent(Chunks, RC.OptsFp);
    B.update(RC.WholeKey);
  } else {
    RC.Keys.reserve(Prog.Modules.size());
    for (const auto &M : Prog.Modules) {
      RC.Keys.push_back(cacheKey(*M, NameOf, RC.OptsFp));
      B.update(RC.Keys.back());
    }
  }
  char FBuf[24];
  std::snprintf(FBuf, sizeof(FBuf), "%016llx",
                static_cast<unsigned long long>(B.value()));
  RC.BuildFp = FBuf;

  const std::string JPath = StateDir + "/journal.mcoj";
  if (RO.Resume) {
    RC.Prior = ResumeState::load(JPath);
    if (RC.Prior.Valid && RC.Prior.Fingerprint != RC.BuildFp) {
      // Stale progress from a different corpus/options/fault config must
      // never leak into this build.
      R.FailureLog.push_back(
          "resume: journal fingerprint mismatch; rebuilding everything");
      RC.Prior = ResumeState{};
    }
  }
  if (Status JS = RC.Journal.open(JPath, RC.BuildFp, Prog.Modules.size(),
                                  Opts.WholeProgram);
      !JS.ok())
    R.FailureLog.push_back("journal disabled: " + JS.message());
}

/// Publishes the build's aggregate counters into the process-wide metrics
/// registry. set() semantics: the BuildResult totals are authoritative, so
/// any live increments recorded mid-build are overwritten with the final
/// values every exporter (diag JSON, benches) reads.
void publishBuildMetrics(const BuildResult &R) {
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("pipeline.modules_degraded").set(R.ModulesDegraded);
  M.counter("pipeline.modules_timed_out").set(R.ModulesTimedOut);
  M.counter("pipeline.modules_resumed").set(R.ModulesResumed);
  M.counter("guard.rounds_rolled_back").set(R.RoundsRolledBack);
  M.counter("guard.patterns_quarantined").set(R.PatternsQuarantined);
  M.counter("watchdog.timeouts").set(R.WatchdogTimeouts);
  M.counter("watchdog.retries").set(R.WatchdogRetries);
  M.counter("cache.hits").set(R.CacheHits);
  M.counter("cache.misses").set(R.CacheMisses);
  M.counter("cache.corrupt").set(R.CacheCorrupt);
  M.counter("cache.evicted").set(R.CacheEvicted);
  M.counter("cache.stale_locks_recovered").set(R.StaleLocksRecovered);
  M.counter("cache.writer_contended").set(R.CacheWriterContended);
  M.counter("pipeline.code_size_after").set(R.CodeSize);
  M.counter("pipeline.binary_size").set(R.BinarySize);
  M.gauge("pipeline.link_seconds").set(R.LinkIRSeconds);
  M.gauge("pipeline.outline_seconds").set(R.OutlineSeconds);
  M.gauge("pipeline.layout_seconds").set(R.LayoutSeconds);
  M.counter("linker.layout.strategy", {{"strategy", R.Layout.Strategy}})
      .set(1);
  M.gauge("linker.layout.seconds").set(R.Layout.Seconds);
  M.gauge("linker.layout.estimated_text_faults")
      .set(double(R.Layout.EstimatedTextFaults));
  M.gauge("linker.layout.functions_traced")
      .set(double(R.Layout.FunctionsTraced));
  Histogram &H = M.histogram("pipeline.outline_round_seconds");
  for (double S : R.OutlineRoundSeconds)
    H.observe(S);
  M.counter("dce.roots").set(R.DeadStrip.Roots);
  M.counter("dce.functions_scanned").set(R.DeadStrip.FunctionsScanned);
  M.counter("dce.functions_removed").set(R.DeadStrip.FunctionsRemoved);
  M.counter("dce.bytes_removed").set(R.DeadStrip.BytesRemoved);
  M.counter("dce.globals_removed").set(R.DeadStrip.GlobalsRemoved);
  M.counter("dce.global_bytes_removed").set(R.DeadStrip.GlobalBytesRemoved);
  M.gauge("dce.seconds").set(R.DeadStrip.Seconds);
  uint64_t DroppedHot = 0;
  for (const OutlineRoundStats &RS : R.OutlineStats.Rounds)
    DroppedHot += RS.CandidatesDroppedHot;
  M.counter("pipeline.heat.guided").set(R.Remarks.HeatGuided ? 1 : 0);
  M.counter("pipeline.heat.hot_threshold_pct")
      .set(R.Remarks.HotThresholdPct);
  M.counter("pipeline.heat.candidates_dropped_hot").set(DroppedHot);
  M.counter("pipeline.heat.suppressed_occurrences")
      .set(R.Remarks.suppressedOccurrences());
}

} // namespace

BuildResult mco::buildProgram(Program &Prog, const PipelineOptions &Opts) {
  MCO_TRACE_SPAN("pipeline.build", "pipeline");
  // Fresh per-build metrics: one process may run several builds (tests,
  // benches, the fleet comparator); exporters read the last build's values
  // plus whatever is recorded after it.
  MetricsRegistry::global().reset();
  BuildResult R;
  using Clock = std::chrono::steady_clock;

  // Dead-strip runs before everything else — before the cache keys are
  // derived (a stripped corpus is different content) and before outlining
  // (the outliner must never see code that will not ship).
  if (Opts.DeadStrip.Enabled)
    R.DeadStrip = runDeadStrip(Prog, Opts.DeadStrip);

  // The heat profile feeding the outliner's hot/cold cost model. Loaded
  // before the resilience layer because an *active* profile joins the
  // cache fingerprint. A missing or corrupt file degrades to profile-free
  // outlining: the build still ships, byte-identical to one that never
  // had a profile, with the failure on record.
  HeatProfile OwnedHeat;
  const HeatProfile *Heat = Opts.Heat.Profile;
  const unsigned HotPct = Opts.Heat.HotThresholdPct;
  if (HotPct > 0 && !Heat && !Opts.Heat.ProfilePath.empty()) {
    Expected<HeatProfile> HE = readHeatProfile(Opts.Heat.ProfilePath);
    if (HE.ok()) {
      OwnedHeat = std::move(HE.get());
      Heat = &OwnedHeat;
    } else {
      R.FailureLog.push_back("heat: profile '" + Opts.Heat.ProfilePath +
                             "': " + HE.status().message() +
                             "; outlining without heat");
    }
  }
  const bool HeatGuided = Heat && HotPct > 0 && HotPct <= 100;
  std::unordered_map<std::string, HeatClass> HeatByName;
  if (HeatGuided)
    HeatByName = classifyHeat(*Heat, HotPct);
  // The class of a module function: profiled functions keep their
  // classification; functions absent from the profile never executed on
  // any device and are Cold.
  auto classOf = [&](uint32_t NameSym) -> HeatClass {
    auto It = HeatByName.find(Prog.symbolName(NameSym));
    return It == HeatByName.end() ? HeatClass::Cold : It->second;
  };
  auto heatClassesFor = [&](const Module &Mod) {
    std::vector<uint8_t> V;
    V.reserve(Mod.Functions.size());
    for (const MachineFunction &MF : Mod.Functions)
      V.push_back(static_cast<uint8_t>(classOf(MF.Name)));
    return V;
  };

  // Size-remark "before" snapshot: per-function MI counts of everything
  // that survived dead-strip, keyed by symbol name (stable through the
  // merge and the outliner's rewrites).
  auto miCount = [](const MachineFunction &MF) {
    uint64_t N = 0;
    for (const MachineBasicBlock &MBB : MF.Blocks)
      N += MBB.Instrs.size();
    return N;
  };
  std::unordered_map<std::string, uint64_t> MIBefore;
  for (const auto &M : Prog.Modules)
    for (const MachineFunction &MF : M->Functions)
      MIBefore[Prog.symbolName(MF.Name)] += miCount(MF);

  // Heat-suppressed candidate sites, aggregated to (function, pattern
  // length) -> occurrence count. std::map so the remark order is the
  // canonical sorted order with no extra pass.
  std::map<std::pair<std::string, uint32_t>, uint64_t> SuppressedAgg;
  auto collectSuppressed = [&](const Module &Mod,
                               const std::vector<OutlineRoundStats> &Rounds) {
    for (const OutlineRoundStats &RS : Rounds)
      for (const HeatSuppressedSite &Site : RS.HeatSuppressed)
        if (Site.Func < Mod.Functions.size())
          ++SuppressedAgg[{Prog.symbolName(Mod.Functions[Site.Func].Name),
                           Site.Len}];
  };

  ResilienceCtx RC;
  initResilience(RC, R, Prog, Opts, Heat, HeatGuided);
  const uint64_t TimeoutMs = Opts.Resilience.ModuleTimeoutMs;

  // Resolve the code-layout strategy up front: its data affinity decides
  // how linkProgram orders globals (DataLayoutMode folded into the
  // strategy; the legacy Opts.DataLayout flag overrides when non-default,
  // so --interleave-data behaves exactly as before). An unknown strategy
  // name degrades to original order — the build still ships.
  std::unique_ptr<LayoutStrategy> Strategy;
  {
    Expected<std::unique_ptr<LayoutStrategy>> SE =
        createLayoutStrategy(Opts.Layout.Strategy);
    if (SE.ok()) {
      Strategy = std::move(SE.get());
    } else {
      R.FailureLog.push_back("layout: " + SE.status().message() +
                             "; using original order");
      Strategy = std::move(createLayoutStrategy("original").get());
    }
  }
  if (Opts.DataLayout != DataLayoutMode::PreserveModuleOrder)
    Strategy->overrideDataLayout(Opts.DataLayout);
  const DataLayoutMode EffDataLayout = Strategy->dataLayout();

  // The startup-trace profile feeding the strategy (see StartupTrace.h).
  TraceProfile OwnedProfile;
  const TraceProfile *Profile = Opts.Layout.Profile;
  if (!Profile && !Opts.Layout.ProfilePath.empty()) {
    Expected<TraceProfile> PE = readTraceProfile(Opts.Layout.ProfilePath);
    if (PE.ok()) {
      OwnedProfile = std::move(PE.get());
      Profile = &OwnedProfile;
    } else {
      R.FailureLog.push_back("layout: profile '" + Opts.Layout.ProfilePath +
                             "': " + PE.status().message() +
                             "; planning without traces");
    }
  }

  if (Opts.WholeProgram) {
    // Fig. 10: merge IR first, then outline across the whole program. The
    // cached artifact is the fully outlined *linked* module, keyed on the
    // pre-link contents of every input module.
    bool WpCached = false;
    if (RC.Enabled) {
      bool FromResume = false;
      if (Opts.Resilience.Resume && RC.Prior.Valid)
        for (const ResumeState::ModuleRecord &MR : RC.Prior.Records)
          FromResume |= MR.K == ResumeState::ModuleRecord::Done &&
                        MR.Key == RC.WholeKey;
      ArtifactCache::LoadResult LR = RC.Cache->load(RC.WholeKey, Prog);
      if (LR.Outcome == ArtifactCache::LoadOutcome::Hit) {
        Prog.Modules.clear();
        Prog.Modules.push_back(
            std::make_unique<Module>(std::move(LR.Artifact.M)));
        R.OutlineStats = std::move(LR.Artifact.Stats);
        R.RoundsRolledBack = LR.Artifact.RoundsRolledBack;
        R.PatternsQuarantined = LR.Artifact.PatternsQuarantined;
        if (FromResume)
          R.ModulesResumed = 1;
        RC.Journal.recordModuleDone(0, Prog.Modules[0]->Name, RC.WholeKey,
                                    /*FreshlyBuilt=*/false);
        WpCached = true;
      } else if (LR.Outcome == ArtifactCache::LoadOutcome::Corrupt) {
        R.FailureLog.push_back("cache: linked artifact corrupt (" + LR.Note +
                               "); quarantined, rebuilding");
      }
    }

    if (!WpCached) {
      auto T0 = Clock::now();
      Module *LinkedP;
      {
        MCO_TRACE_SPAN("pipeline.link", "pipeline");
        LinkedP = &linkProgram(Prog, EffDataLayout);
      }
      Module &Linked = *LinkedP;
      R.LinkIRSeconds = secondsSince(T0);

      T0 = Clock::now();
      OutlinerOptions EOpts = Opts.Outliner;
      if (Opts.Threads > 1)
        EOpts.Threads = Opts.Threads;
      if (HeatGuided) {
        EOpts.HeatGuided = true;
        EOpts.FunctionHeatClasses = heatClassesFor(Linked);
      }

      // One deadline covers all rounds of the single linked module.
      // Committed rounds are kept on timeout (each is complete and
      // verified-or-complete), so there is nothing to retry from — the
      // build just ships with fewer rounds than asked for.
      auto RunRounds = [&](const std::atomic<bool> *Cancel) {
        MCO_TRACE_SPAN("pipeline.outline:linked", "pipeline");
        faultSetRound(1);
        faultSiteCheck(FaultPipelineModuleFail);
        if (faultSiteFires(FaultPipelineModuleHang))
          hangUntilCancelled(Cancel);
        OutlinerOptions RoundOpts = EOpts;
        RoundOpts.CancelFlag = Cancel;
        if (Opts.Guard.Enabled) {
          OutlineGuard Guard(Prog, Prog, Linked, RoundOpts, Opts.Guard);
          auto Capture = [&] {
            R.RoundsRolledBack = Guard.totalRoundsRolledBack();
            R.PatternsQuarantined = Guard.numQuarantinedPatterns();
            for (const std::string &F : Guard.failureLog())
              R.FailureLog.push_back("linked: " + F);
          };
          try {
            for (unsigned Round = 1; Round <= Opts.OutlineRounds; ++Round) {
              auto TR = Clock::now();
              GuardRoundResult RS = Guard.runGuardedRound(Round);
              R.OutlineRoundSeconds.push_back(secondsSince(TR));
              R.OutlineStats.Rounds.push_back(RS.Stats);
              if (!RS.Skipped && RS.Stats.FunctionsCreated == 0)
                break;
            }
          } catch (...) {
            Capture();
            throw;
          }
          Capture();
        } else {
          OutlinerEngine Engine(Prog, Linked, RoundOpts);
          for (unsigned Round = 1; Round <= Opts.OutlineRounds; ++Round) {
            auto TR = Clock::now();
            OutlineRoundStats RS = Engine.runRound(Round);
            R.OutlineRoundSeconds.push_back(secondsSince(TR));
            R.OutlineStats.Rounds.push_back(RS);
            if (RS.FunctionsCreated == 0)
              break;
          }
        }
      };

      bool Degraded = false;
      try {
        if (TimeoutMs > 0) {
          std::atomic<bool> Cancel{false};
          std::exception_ptr Err;
          DeadlineOutcome O = runWithDeadline(
              TimeoutMs, Cancel, [&] { RunRounds(&Cancel); }, Err);
          if (O == DeadlineOutcome::Failed)
            std::rethrow_exception(Err);
          if (O == DeadlineOutcome::TimedOut) {
            Degraded = true;
            ++R.WatchdogTimeouts;
            ++R.ModulesTimedOut;
            ++R.ModulesDegraded;
            R.FailureLog.push_back(
                "linked: outlining timed out after " +
                std::to_string(TimeoutMs) + " ms; keeping " +
                std::to_string(R.OutlineStats.Rounds.size()) +
                " committed rounds");
          }
        } else {
          RunRounds(nullptr);
        }
      } catch (const std::exception &E) {
        // Whole-program outlining died mid-flight. Rounds already
        // committed are complete; the aborted round never touched the
        // module, so the build continues with what it has.
        Degraded = true;
        ++R.ModulesDegraded;
        R.FailureLog.push_back(std::string("linked: outlining failed: ") +
                               E.what());
      }
      R.OutlineSeconds = secondsSince(T0);
      if (HeatGuided)
        collectSuppressed(Linked, R.OutlineStats.Rounds);

      if (RC.Enabled) {
        if (!Degraded) {
          SymbolNameFn NameOf = [&Prog](uint32_t Id) {
            return Prog.symbolName(Id);
          };
          Status S =
              RC.Cache->store(RC.WholeKey, Linked, R.OutlineStats,
                              R.RoundsRolledBack, R.PatternsQuarantined,
                              NameOf);
          if (S.ok())
            RC.Journal.recordModuleDone(0, Linked.Name, RC.WholeKey,
                                        /*FreshlyBuilt=*/true);
          else
            R.FailureLog.push_back("cache store failed: " + S.message());
        } else {
          RC.Journal.recordModuleDegraded(0, Linked.Name);
        }
      }
    }
  } else {
    // Fig. 2: outline each module independently, then merge. Clones of
    // identical OUTLINED_* bodies from different modules survive the link
    // as distinct local symbols.
    auto T0 = Clock::now();
    const size_t NumMods = Prog.Modules.size();
    std::vector<RepeatedOutlineStats> ModStats(NumMods);
    // Per-module outcome: 0 = the fan-out task never ran, 1 = outlined,
    // 2 = failed and restored to its unoutlined form.
    std::vector<uint8_t> ModOutcome(NumMods, 0);
    std::vector<uint8_t> ModTimedOut(NumMods, 0);
    std::vector<uint64_t> ModRolledBack(NumMods, 0);
    std::vector<uint64_t> ModQuarantined(NumMods, 0);
    std::vector<std::vector<std::string>> ModLog(NumMods);
    std::vector<uint8_t> Prefilled(NumMods, 0);
    std::atomic<uint64_t> WatchdogCancels{0};
    std::atomic<uint64_t> WatchdogRetryLaunches{0};

    // Serial pre-pass: satisfy modules from the journal + cache before the
    // fan-out, in module order, so symbol interning for cached modules is
    // as deterministic as the build itself. Runs before any batch exists
    // (deserialization interns through the shared Program).
    if (RC.Enabled) {
      MCO_TRACE_SPAN("pipeline.cache_prepass", "cache");
      std::vector<const ResumeState::ModuleRecord *> Rec(NumMods, nullptr);
      if (Opts.Resilience.Resume && RC.Prior.Valid)
        for (const ResumeState::ModuleRecord &MR : RC.Prior.Records)
          if (MR.Idx < NumMods && MR.Name == Prog.Modules[MR.Idx]->Name)
            Rec[MR.Idx] = &MR;
      for (size_t I = 0; I < NumMods; ++I) {
        if (Rec[I] && Rec[I]->K == ResumeState::ModuleRecord::Degraded) {
          // The interrupted build shipped this module unoutlined; replay
          // that decision so the resumed output matches what it would
          // have produced.
          Prefilled[I] = 1;
          ModOutcome[I] = 2;
          ++R.ModulesResumed;
          ModLog[I].push_back("resumed: degraded in the interrupted build");
          RC.Journal.recordModuleDegraded(I, Prog.Modules[I]->Name);
          continue;
        }
        bool FromResume = Rec[I] && Rec[I]->Key == RC.Keys[I];
        ArtifactCache::LoadResult LR = RC.Cache->load(RC.Keys[I], Prog);
        if (LR.Outcome == ArtifactCache::LoadOutcome::Hit) {
          *Prog.Modules[I] = std::move(LR.Artifact.M);
          ModStats[I] = std::move(LR.Artifact.Stats);
          ModRolledBack[I] = LR.Artifact.RoundsRolledBack;
          ModQuarantined[I] = LR.Artifact.PatternsQuarantined;
          Prefilled[I] = 1;
          ModOutcome[I] = 1;
          if (FromResume)
            ++R.ModulesResumed;
          RC.Journal.recordModuleDone(I, Prog.Modules[I]->Name, RC.Keys[I],
                                      /*FreshlyBuilt=*/false);
        } else if (LR.Outcome == ArtifactCache::LoadOutcome::Corrupt) {
          ModLog[I].push_back("cache entry corrupt (" + LR.Note +
                              "); quarantined, rebuilding");
        }
      }
    }

    // Per-module heat class vectors, computed serially before the fan-out
    // (prefilled modules skip outlining, so theirs are left empty).
    std::vector<std::vector<uint8_t>> ModHeatClasses(NumMods);
    if (HeatGuided)
      for (size_t I = 0; I < NumMods; ++I)
        if (!Prefilled[I])
          ModHeatClasses[I] = heatClassesFor(*Prog.Modules[I]);

    // Store + journal a freshly outlined module. Runs on the worker that
    // built it; the artifact is durable before the journal says `done`.
    auto publishModule = [&](size_t I, const DeferredSymbolBatch *Batch) {
      if (!RC.Enabled)
        return;
      SymbolNameFn NameOf = [&Prog, Batch](uint32_t Id) -> std::string {
        if (Batch)
          if (const std::string *N = Batch->placeholderName(Id))
            return *N;
        return Prog.symbolName(Id);
      };
      Module &Mod = *Prog.Modules[I];
      Status S = RC.Cache->store(RC.Keys[I], Mod, ModStats[I],
                                 ModRolledBack[I], ModQuarantined[I], NameOf);
      if (!S.ok()) {
        ModLog[I].push_back("cache store failed: " + S.message());
        return; // No `done` record without a durable artifact.
      }
      RC.Journal.recordModuleDone(I, Mod.Name, RC.Keys[I],
                                  /*FreshlyBuilt=*/true);
    };

    // One outlining attempt over the real module. Throws on injected
    // faults, guard exhaustion, or watchdog cancellation.
    auto outlineOnce = [&](size_t I, SymbolInterner &Syms,
                           unsigned InnerThreads, bool InBatch,
                           const std::atomic<bool> *Cancel) {
      Module &Mod = *Prog.Modules[I];
      OutlinerOptions PerModule = Opts.Outliner;
      PerModule.NamePrefix += "@" + Mod.Name;
      PerModule.Threads = InnerThreads;
      PerModule.CancelFlag = Cancel;
      if (HeatGuided) {
        PerModule.HeatGuided = true;
        PerModule.FunctionHeatClasses = ModHeatClasses[I];
      }
      faultSetRound(1);
      faultSiteCheck(FaultPipelineModuleFail);
      if (faultSiteFires(FaultPipelineModuleHang))
        hangUntilCancelled(Cancel);
      if (Opts.Guard.Enabled) {
        GuardOptions G = Opts.Guard;
        G.AllowPlaceholderSymbols |= InBatch;
        OutlineGuard Guard(Prog, Syms, Mod, PerModule, G);
        ModStats[I] = Guard.runGuardedRepeated(Opts.OutlineRounds);
        ModRolledBack[I] = Guard.totalRoundsRolledBack();
        ModQuarantined[I] = Guard.numQuarantinedPatterns();
        for (const std::string &F : Guard.failureLog())
          ModLog[I].push_back(F);
      } else {
        ModStats[I] = runRepeatedOutliner(Syms, Mod, Opts.OutlineRounds,
                                          PerModule);
      }
    };

    auto outlineModule = [&](size_t I, SymbolInterner &Syms,
                             unsigned InnerThreads, bool InBatch,
                             const DeferredSymbolBatch *Batch) {
      if (Prefilled[I])
        return;
      MCO_TRACE_SPAN("pipeline.module:" + Prog.Modules[I]->Name, "pipeline");
      Module &Mod = *Prog.Modules[I];
      // Snapshot for graceful degradation: if outlining this module fails
      // beyond what the guard can absorb, ship it unoutlined. Also the
      // restart point for watchdog retries — every attempt starts from
      // the pristine module, so a successful retry commits exactly what
      // an unwatched build would have.
      Module Backup = Mod;
      const unsigned MaxAttempts =
          TimeoutMs > 0 ? Opts.Resilience.TimeoutRetries + 1 : 1;
      uint64_t DeadlineMs = TimeoutMs;
      try {
        for (unsigned Attempt = 1;; ++Attempt) {
          if (TimeoutMs == 0) {
            outlineOnce(I, Syms, InnerThreads, InBatch, nullptr);
            break;
          }
          std::atomic<bool> Cancel{false};
          std::exception_ptr Err;
          DeadlineOutcome O = runWithDeadline(
              DeadlineMs, Cancel,
              [&] { outlineOnce(I, Syms, InnerThreads, InBatch, &Cancel); },
              Err);
          if (O == DeadlineOutcome::Completed)
            break;
          if (O == DeadlineOutcome::Failed)
            std::rethrow_exception(Err);
          WatchdogCancels.fetch_add(1, std::memory_order_relaxed);
          ModLog[I].push_back("watchdog: attempt " + std::to_string(Attempt) +
                              " cancelled after " +
                              std::to_string(DeadlineMs) + " ms");
          if (Attempt >= MaxAttempts) {
            ModTimedOut[I] = 1;
            throw std::runtime_error("timed out in " +
                                     std::to_string(MaxAttempts) +
                                     " attempts");
          }
          // Exponential backoff: maybe the deadline was just too tight.
          WatchdogRetryLaunches.fetch_add(1, std::memory_order_relaxed);
          Mod = Backup;
          ModStats[I] = RepeatedOutlineStats{};
          ModRolledBack[I] = ModQuarantined[I] = 0;
          DeadlineMs *= 2;
        }
        ModOutcome[I] = 1;
        publishModule(I, Batch);
      } catch (const std::exception &E) {
        Mod = Backup;
        ModStats[I] = RepeatedOutlineStats{};
        ModRolledBack[I] = ModQuarantined[I] = 0;
        ModOutcome[I] = 2;
        ModLog[I].push_back(std::string("outlining failed: ") + E.what());
        RC.Journal.recordModuleDegraded(I, Mod.Name);
      }
    };

    if (Opts.Threads > 1 && NumMods > 1) {
      // Modules are independent except for symbol interning. Each worker
      // collects new names in a DeferredSymbolBatch; committing the
      // batches serially in module order reproduces the exact symbol ids
      // a serial run would have assigned.
      std::vector<std::unique_ptr<DeferredSymbolBatch>> Batches(NumMods);
      for (size_t I = 0; I < NumMods; ++I)
        Batches[I] = std::make_unique<DeferredSymbolBatch>(
            Prog, static_cast<uint32_t>(I));
      ThreadPool Pool(Opts.Threads);
      try {
        Pool.parallelFor(NumMods, [&](size_t I) {
          outlineModule(I, *Batches[I], /*InnerThreads=*/1, /*InBatch=*/true,
                        Batches[I].get());
        });
      } catch (const std::exception &) {
        // A fan-out task died before reaching outlineModule's own guard
        // (e.g. an injected pool fault). Its module never ran and keeps
        // its unoutlined form; ModOutcome stays 0 and is counted below.
      }
      // Batches of failed or skipped modules hold at most dead names;
      // committing them is harmless and keeps id assignment serial-order.
      for (size_t I = 0; I < NumMods; ++I)
        Batches[I]->commit(Prog, *Prog.Modules[I]);
    } else {
      for (size_t I = 0; I < NumMods; ++I)
        outlineModule(I, Prog, Opts.Outliner.Threads, /*InBatch=*/false,
                      /*Batch=*/nullptr);
    }

    for (size_t I = 0; I < NumMods; ++I) {
      if (ModOutcome[I] != 1)
        ++R.ModulesDegraded;
      if (ModOutcome[I] == 0)
        ModLog[I].push_back("never outlined (fan-out task failed)");
      R.ModulesTimedOut += ModTimedOut[I];
      R.RoundsRolledBack += ModRolledBack[I];
      R.PatternsQuarantined += ModQuarantined[I];
      if (HeatGuided)
        collectSuppressed(*Prog.Modules[I], ModStats[I].Rounds);
      for (const std::string &F : ModLog[I])
        R.FailureLog.push_back("module " + Prog.Modules[I]->Name + ": " + F);
    }
    R.WatchdogTimeouts = WatchdogCancels.load(std::memory_order_relaxed);
    R.WatchdogRetries = WatchdogRetryLaunches.load(std::memory_order_relaxed);

    // Accumulate per-round stats across modules into a program-level
    // trajectory. Modules converge at different rounds; for rounds past a
    // module's last, carry its final size forward so CodeSizeBefore/After
    // of every round describe the whole program, not just the modules
    // still active.
    size_t MaxRounds = 0;
    for (const RepeatedOutlineStats &MS : ModStats)
      MaxRounds = std::max(MaxRounds, MS.Rounds.size());
    R.OutlineStats.Rounds.resize(MaxRounds);
    for (const RepeatedOutlineStats &MS : ModStats) {
      for (size_t J = 0; J < MaxRounds; ++J) {
        OutlineRoundStats &Acc = R.OutlineStats.Rounds[J];
        if (J < MS.Rounds.size()) {
          const OutlineRoundStats &RS = MS.Rounds[J];
          Acc.SequencesOutlined += RS.SequencesOutlined;
          Acc.FunctionsCreated += RS.FunctionsCreated;
          Acc.OutlinedFunctionBytes += RS.OutlinedFunctionBytes;
          Acc.CodeSizeBefore += RS.CodeSizeBefore;
          Acc.CodeSizeAfter += RS.CodeSizeAfter;
          Acc.PatternsConsidered += RS.PatternsConsidered;
          Acc.PatternsUnprofitable += RS.PatternsUnprofitable;
          Acc.CandidatesDroppedSP += RS.CandidatesDroppedSP;
          Acc.CandidatesDroppedOverlap += RS.CandidatesDroppedOverlap;
          Acc.FunctionsRemapped += RS.FunctionsRemapped;
          Acc.LivenessComputed += RS.LivenessComputed;
          Acc.FunctionsEdited += RS.FunctionsEdited;
          Acc.PatternsQuarantined += RS.PatternsQuarantined;
          Acc.RoundsRolledBack += RS.RoundsRolledBack;
          Acc.CandidatesDroppedHot += RS.CandidatesDroppedHot;
        } else if (!MS.Rounds.empty()) {
          uint64_t Final = MS.Rounds.back().CodeSizeAfter;
          Acc.CodeSizeBefore += Final;
          Acc.CodeSizeAfter += Final;
        }
      }
    }
    R.OutlineSeconds = secondsSince(T0);

    T0 = Clock::now();
    {
      MCO_TRACE_SPAN("pipeline.link", "pipeline");
      linkProgram(Prog, EffDataLayout);
    }
    R.LinkIRSeconds = secondsSince(T0);
  }

  auto T0 = Clock::now();
  {
    MCO_TRACE_SPAN("pipeline.layout", "pipeline");
    const TraceProfile Empty;
    auto TPlan = Clock::now();
    Expected<LayoutPlan> PlanE = Strategy->plan(Prog, Profile ? *Profile : Empty);
    if (PlanE.ok()) {
      R.Layout = std::move(PlanE.get());
    } else {
      R.FailureLog.push_back("layout: planning failed (" +
                             PlanE.status().message() +
                             "); using original order");
      R.Layout = LayoutPlan{};
    }
    R.Layout.Seconds = secondsSince(TPlan);

    Expected<BinaryImage> ImageE = BinaryImage::create(Prog, &R.Layout);
    if (!ImageE.ok()) {
      R.FailureLog.push_back("layout: plan rejected (" +
                             ImageE.status().message() +
                             "); using original order");
      R.Layout = LayoutPlan{};
      ImageE = BinaryImage::create(Prog, nullptr);
    }
    const BinaryImage &Image = ImageE.get();
    R.CodeSize = Image.codeSize();
    R.DataSize = Image.dataSize();
    R.BinarySize = Image.binarySize(DefaultResourceBytes);
  }
  R.LayoutSeconds = secondsSince(T0);

  // Per-function size remarks: recount everything that ships and pair it
  // with the pre-outlining snapshot. Keyed through a std::map so the
  // remark order is the canonical name-sorted order regardless of module
  // layout, thread count, or discovery engine.
  {
    std::map<std::string, SizeRemark> ByName;
    for (const auto &M : Prog.Modules)
      for (const MachineFunction &MF : M->Functions) {
        std::string Name = Prog.symbolName(MF.Name);
        SizeRemark &SR = ByName[Name];
        if (SR.Function.empty())
          SR.Function = std::move(Name);
        SR.MIInstrsAfter += miCount(MF);
        SR.IsOutlined |= MF.IsOutlined;
      }
    R.Remarks.HeatGuided = HeatGuided;
    R.Remarks.HotThresholdPct = HeatGuided ? HotPct : 0;
    R.Remarks.Remarks.reserve(ByName.size());
    for (auto &[Name, SR] : ByName) {
      auto It = MIBefore.find(Name);
      SR.MIInstrsBefore = It == MIBefore.end() ? 0 : It->second;
      if (HeatGuided) {
        auto H = HeatByName.find(Name);
        SR.Heat = H == HeatByName.end() ? HeatClass::Cold : H->second;
      }
      R.Remarks.Remarks.push_back(std::move(SR));
    }
    R.Remarks.Suppressed.reserve(SuppressedAgg.size());
    for (const auto &[Key, N] : SuppressedAgg)
      R.Remarks.Suppressed.push_back({Key.first, Key.second, N});
  }

  if (RC.Enabled) {
    R.CacheHits = RC.Cache->hits();
    R.CacheMisses = RC.Cache->misses();
    R.CacheCorrupt = RC.Cache->corrupt();
    R.CacheEvicted = RC.Cache->evicted();
    R.CacheWriterContended = RC.Cache->writerContended();
    RC.Journal.recordEnd();
    RC.Journal.close();
  }
  publishBuildMetrics(R);
  return R;
}
