//===- pipeline/BuildPipeline.cpp - The two iOS build pipelines -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/BuildPipeline.h"

#include <chrono>

using namespace mco;

namespace {
double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}
} // namespace

BuildResult mco::buildProgram(Program &Prog, const PipelineOptions &Opts) {
  BuildResult R;
  using Clock = std::chrono::steady_clock;

  if (Opts.WholeProgram) {
    // Fig. 10: merge IR first, then outline across the whole program.
    auto T0 = Clock::now();
    Module &Linked = linkProgram(Prog, Opts.DataLayout);
    R.LinkIRSeconds = secondsSince(T0);

    T0 = Clock::now();
    for (unsigned Round = 1; Round <= Opts.OutlineRounds; ++Round) {
      auto TR = Clock::now();
      OutlineRoundStats RS =
          runOutlinerRound(Prog, Linked, Round, Opts.Outliner);
      R.OutlineRoundSeconds.push_back(secondsSince(TR));
      R.OutlineStats.Rounds.push_back(RS);
      if (RS.FunctionsCreated == 0)
        break;
    }
    R.OutlineSeconds = secondsSince(T0);
  } else {
    // Fig. 2: outline each module independently, then merge. Clones of
    // identical OUTLINED_* bodies from different modules survive the link
    // as distinct local symbols.
    auto T0 = Clock::now();
    for (auto &M : Prog.Modules) {
      OutlinerOptions PerModule = Opts.Outliner;
      PerModule.NamePrefix += "@" + M->Name;
      RepeatedOutlineStats MS =
          runRepeatedOutliner(Prog, *M, Opts.OutlineRounds, PerModule);
      // Accumulate per-round stats across modules.
      if (R.OutlineStats.Rounds.size() < MS.Rounds.size())
        R.OutlineStats.Rounds.resize(MS.Rounds.size());
      for (size_t I = 0; I < MS.Rounds.size(); ++I) {
        OutlineRoundStats &Acc = R.OutlineStats.Rounds[I];
        Acc.SequencesOutlined += MS.Rounds[I].SequencesOutlined;
        Acc.FunctionsCreated += MS.Rounds[I].FunctionsCreated;
        Acc.OutlinedFunctionBytes += MS.Rounds[I].OutlinedFunctionBytes;
        Acc.CodeSizeBefore += MS.Rounds[I].CodeSizeBefore;
        Acc.CodeSizeAfter += MS.Rounds[I].CodeSizeAfter;
      }
    }
    R.OutlineSeconds = secondsSince(T0);

    T0 = Clock::now();
    linkProgram(Prog, Opts.DataLayout);
    R.LinkIRSeconds = secondsSince(T0);
  }

  auto T0 = Clock::now();
  BinaryImage Image(Prog);
  R.LayoutSeconds = secondsSince(T0);
  R.CodeSize = Image.codeSize();
  R.DataSize = Image.dataSize();
  R.BinarySize = Image.binarySize(DefaultResourceBytes);
  return R;
}
