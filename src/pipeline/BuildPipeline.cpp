//===- pipeline/BuildPipeline.cpp - The two iOS build pipelines -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/BuildPipeline.h"

#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>

using namespace mco;

namespace {
double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}
} // namespace

BuildResult mco::buildProgram(Program &Prog, const PipelineOptions &Opts) {
  BuildResult R;
  using Clock = std::chrono::steady_clock;

  if (Opts.WholeProgram) {
    // Fig. 10: merge IR first, then outline across the whole program.
    auto T0 = Clock::now();
    Module &Linked = linkProgram(Prog, Opts.DataLayout);
    R.LinkIRSeconds = secondsSince(T0);

    T0 = Clock::now();
    OutlinerOptions EOpts = Opts.Outliner;
    if (Opts.Threads > 1)
      EOpts.Threads = Opts.Threads;
    try {
      faultSetRound(1);
      faultSiteCheck(FaultPipelineModuleFail);
      if (Opts.Guard.Enabled) {
        OutlineGuard Guard(Prog, Prog, Linked, EOpts, Opts.Guard);
        for (unsigned Round = 1; Round <= Opts.OutlineRounds; ++Round) {
          auto TR = Clock::now();
          GuardRoundResult RS = Guard.runGuardedRound(Round);
          R.OutlineRoundSeconds.push_back(secondsSince(TR));
          R.OutlineStats.Rounds.push_back(RS.Stats);
          if (!RS.Skipped && RS.Stats.FunctionsCreated == 0)
            break;
        }
        R.RoundsRolledBack = Guard.totalRoundsRolledBack();
        R.PatternsQuarantined = Guard.numQuarantinedPatterns();
        for (const std::string &F : Guard.failureLog())
          R.FailureLog.push_back("linked: " + F);
      } else {
        OutlinerEngine Engine(Prog, Linked, EOpts);
        for (unsigned Round = 1; Round <= Opts.OutlineRounds; ++Round) {
          auto TR = Clock::now();
          OutlineRoundStats RS = Engine.runRound(Round);
          R.OutlineRoundSeconds.push_back(secondsSince(TR));
          R.OutlineStats.Rounds.push_back(RS);
          if (RS.FunctionsCreated == 0)
            break;
        }
      }
    } catch (const std::exception &E) {
      // Whole-program outlining died mid-flight. Rounds already committed
      // are verified-or-unguarded-but-complete; the aborted round never
      // touched the module, so the build continues with what it has.
      ++R.ModulesDegraded;
      R.FailureLog.push_back(std::string("linked: outlining failed: ") +
                             E.what());
    }
    R.OutlineSeconds = secondsSince(T0);
  } else {
    // Fig. 2: outline each module independently, then merge. Clones of
    // identical OUTLINED_* bodies from different modules survive the link
    // as distinct local symbols.
    auto T0 = Clock::now();
    const size_t NumMods = Prog.Modules.size();
    std::vector<RepeatedOutlineStats> ModStats(NumMods);
    // Per-module outcome: 0 = the fan-out task never ran, 1 = outlined,
    // 2 = failed and restored to its unoutlined form.
    std::vector<uint8_t> ModOutcome(NumMods, 0);
    std::vector<uint64_t> ModRolledBack(NumMods, 0);
    std::vector<uint64_t> ModQuarantined(NumMods, 0);
    std::vector<std::vector<std::string>> ModLog(NumMods);

    auto outlineModule = [&](size_t I, SymbolInterner &Syms,
                             unsigned InnerThreads, bool InBatch) {
      Module &Mod = *Prog.Modules[I];
      OutlinerOptions PerModule = Opts.Outliner;
      PerModule.NamePrefix += "@" + Mod.Name;
      PerModule.Threads = InnerThreads;
      faultSetRound(1);
      // Snapshot for graceful degradation: if outlining this module fails
      // beyond what the guard can absorb, ship it unoutlined.
      Module Backup = Mod;
      try {
        faultSiteCheck(FaultPipelineModuleFail);
        if (Opts.Guard.Enabled) {
          GuardOptions G = Opts.Guard;
          G.AllowPlaceholderSymbols |= InBatch;
          OutlineGuard Guard(Prog, Syms, Mod, PerModule, G);
          ModStats[I] = Guard.runGuardedRepeated(Opts.OutlineRounds);
          ModRolledBack[I] = Guard.totalRoundsRolledBack();
          ModQuarantined[I] = Guard.numQuarantinedPatterns();
          ModLog[I] = Guard.failureLog();
        } else {
          ModStats[I] = runRepeatedOutliner(Syms, Mod, Opts.OutlineRounds,
                                            PerModule);
        }
        ModOutcome[I] = 1;
      } catch (const std::exception &E) {
        Mod = Backup;
        ModStats[I] = RepeatedOutlineStats{};
        ModOutcome[I] = 2;
        ModLog[I].push_back(std::string("outlining failed: ") + E.what());
      }
    };

    if (Opts.Threads > 1 && NumMods > 1) {
      // Modules are independent except for symbol interning. Each worker
      // collects new names in a DeferredSymbolBatch; committing the
      // batches serially in module order reproduces the exact symbol ids
      // a serial run would have assigned.
      std::vector<std::unique_ptr<DeferredSymbolBatch>> Batches(NumMods);
      for (size_t I = 0; I < NumMods; ++I)
        Batches[I] = std::make_unique<DeferredSymbolBatch>(
            Prog, static_cast<uint32_t>(I));
      ThreadPool Pool(Opts.Threads);
      try {
        Pool.parallelFor(NumMods, [&](size_t I) {
          outlineModule(I, *Batches[I], /*InnerThreads=*/1, /*InBatch=*/true);
        });
      } catch (const std::exception &) {
        // A fan-out task died before reaching outlineModule's own guard
        // (e.g. an injected pool fault). Its module never ran and keeps
        // its unoutlined form; ModOutcome stays 0 and is counted below.
      }
      // Batches of failed or skipped modules hold at most dead names;
      // committing them is harmless and keeps id assignment serial-order.
      for (size_t I = 0; I < NumMods; ++I)
        Batches[I]->commit(Prog, *Prog.Modules[I]);
    } else {
      for (size_t I = 0; I < NumMods; ++I)
        outlineModule(I, Prog, Opts.Outliner.Threads, /*InBatch=*/false);
    }

    for (size_t I = 0; I < NumMods; ++I) {
      if (ModOutcome[I] != 1)
        ++R.ModulesDegraded;
      if (ModOutcome[I] == 0)
        ModLog[I].push_back("never outlined (fan-out task failed)");
      R.RoundsRolledBack += ModRolledBack[I];
      R.PatternsQuarantined += ModQuarantined[I];
      for (const std::string &F : ModLog[I])
        R.FailureLog.push_back("module " + Prog.Modules[I]->Name + ": " + F);
    }

    // Accumulate per-round stats across modules into a program-level
    // trajectory. Modules converge at different rounds; for rounds past a
    // module's last, carry its final size forward so CodeSizeBefore/After
    // of every round describe the whole program, not just the modules
    // still active.
    size_t MaxRounds = 0;
    for (const RepeatedOutlineStats &MS : ModStats)
      MaxRounds = std::max(MaxRounds, MS.Rounds.size());
    R.OutlineStats.Rounds.resize(MaxRounds);
    for (const RepeatedOutlineStats &MS : ModStats) {
      for (size_t J = 0; J < MaxRounds; ++J) {
        OutlineRoundStats &Acc = R.OutlineStats.Rounds[J];
        if (J < MS.Rounds.size()) {
          const OutlineRoundStats &RS = MS.Rounds[J];
          Acc.SequencesOutlined += RS.SequencesOutlined;
          Acc.FunctionsCreated += RS.FunctionsCreated;
          Acc.OutlinedFunctionBytes += RS.OutlinedFunctionBytes;
          Acc.CodeSizeBefore += RS.CodeSizeBefore;
          Acc.CodeSizeAfter += RS.CodeSizeAfter;
          Acc.PatternsConsidered += RS.PatternsConsidered;
          Acc.PatternsUnprofitable += RS.PatternsUnprofitable;
          Acc.CandidatesDroppedSP += RS.CandidatesDroppedSP;
          Acc.CandidatesDroppedOverlap += RS.CandidatesDroppedOverlap;
          Acc.FunctionsRemapped += RS.FunctionsRemapped;
          Acc.LivenessComputed += RS.LivenessComputed;
          Acc.FunctionsEdited += RS.FunctionsEdited;
          Acc.PatternsQuarantined += RS.PatternsQuarantined;
          Acc.RoundsRolledBack += RS.RoundsRolledBack;
        } else if (!MS.Rounds.empty()) {
          uint64_t Final = MS.Rounds.back().CodeSizeAfter;
          Acc.CodeSizeBefore += Final;
          Acc.CodeSizeAfter += Final;
        }
      }
    }
    R.OutlineSeconds = secondsSince(T0);

    T0 = Clock::now();
    linkProgram(Prog, Opts.DataLayout);
    R.LinkIRSeconds = secondsSince(T0);
  }

  auto T0 = Clock::now();
  BinaryImage Image(Prog);
  R.LayoutSeconds = secondsSince(T0);
  R.CodeSize = Image.codeSize();
  R.DataSize = Image.dataSize();
  R.BinarySize = Image.binarySize(DefaultResourceBytes);
  return R;
}
