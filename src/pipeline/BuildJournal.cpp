//===- pipeline/BuildJournal.cpp - Crash-safe build journal ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/BuildJournal.h"

#include "support/BinReader.h"
#include "support/Checksum.h"
#include "support/FileAtomics.h"
#include "support/FormatValidator.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

using namespace mco;

namespace {

/// Splits one journal line into whitespace-separated tokens.
std::vector<std::string> tokens(const std::string &Line) {
  std::vector<std::string> Out;
  std::istringstream In(Line);
  std::string T;
  while (In >> T)
    Out.push_back(T);
  return Out;
}

/// Strips and verifies the `<crc8hex> ` prefix. \returns the payload, or
/// nothing when the line is torn or damaged.
bool checkLine(const std::string &Line, std::string &Payload) {
  BinReader R(Line);
  uint32_t Crc = R.hexU32(8, "crc prefix");
  R.skipChar(' ', "crc prefix");
  if (R.fail())
    return false;
  Payload = R.rest();
  return !Payload.empty() && Crc32c::of(Payload) == Crc;
}

/// Strict full-token decimal parse (strtoul would accept "12junk").
bool parseIndexToken(const std::string &Tok, uint64_t &Out) {
  BinReader R(Tok);
  Out = R.decimalU64("index");
  return !R.fail() && R.atEnd();
}

/// Journals are bounded by the corpus; a header claiming more modules than
/// any real build is damage, and capping it keeps the duplicate-index
/// bitmap allocation proportional to real data.
constexpr uint64_t JournalMaxModules = 1u << 20;

} // namespace

ResumeState ResumeState::load(const std::string &Path) {
  Expected<std::string> Bytes = readFileBytes(Path);
  if (!Bytes.ok())
    return ResumeState();
  return loadFromBytes(*Bytes);
}

ResumeState ResumeState::loadFromBytes(const std::string &Bytes) {
  ResumeState RS;

  // Per-record FormatValidator pass (after each line's CRC): indices must
  // parse strictly, fall inside the header's module count, and never
  // repeat; keys must be 32 hex chars; nothing may follow `end`. Any
  // violation is treated exactly like a torn tail — the validated prefix
  // stands, the rest of the build is "unfinished".
  std::istringstream In(Bytes);
  std::string Line, Payload;
  std::vector<bool> SeenIdx;
  bool First = true;
  while (std::getline(In, Line)) {
    if (!checkLine(Line, Payload))
      return RS; // Torn tail: keep the intact prefix parsed so far.
    std::vector<std::string> T = tokens(Payload);
    if (First) {
      if (T.size() != 4 || T[0] != "mcoj1" || (T[3] != "wp" && T[3] != "pm"))
        return RS;
      uint64_t N = 0;
      if (!parseIndexToken(T[2], N) || N > JournalMaxModules)
        return RS;
      RS.Fingerprint = T[1];
      RS.NumModules = N;
      RS.WholeProgram = T[3] == "wp";
      RS.Valid = true;
      SeenIdx.assign(N, false);
      First = false;
      continue;
    }
    if (RS.Ended)
      return RS; // A record after `end` is damage; keep the prefix.
    uint64_t Idx = 0;
    auto ValidIdx = [&](const std::string &Tok) {
      return parseIndexToken(Tok, Idx) && Idx < RS.NumModules &&
             !SeenIdx[Idx];
    };
    if (T.size() == 4 && T[0] == "done") {
      if (!ValidIdx(T[1]) || !validate::isHexToken(T[2], 32))
        return RS;
      SeenIdx[Idx] = true;
      ModuleRecord R;
      R.K = ModuleRecord::Done;
      R.Idx = static_cast<uint32_t>(Idx);
      R.Key = T[2];
      R.Name = T[3];
      RS.Records.push_back(std::move(R));
    } else if (T.size() == 3 && T[0] == "degraded") {
      if (!ValidIdx(T[1]))
        return RS;
      SeenIdx[Idx] = true;
      ModuleRecord R;
      R.K = ModuleRecord::Degraded;
      R.Idx = static_cast<uint32_t>(Idx);
      R.Name = T[2];
      RS.Records.push_back(std::move(R));
    } else if (T.size() == 1 && T[0] == "end") {
      RS.Ended = true;
    } else {
      return RS; // Unknown record: treat like damage, keep the prefix.
    }
  }
  return RS;
}

BuildJournal::~BuildJournal() { close(); }

Status BuildJournal::open(const std::string &Path,
                          const std::string &Fingerprint, uint64_t NumModules,
                          bool WholeProgram) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0)
    return MCO_ERROR("journal already open");
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return MCO_ERROR("cannot open journal '" + Path +
                     "': " + std::strerror(errno));
  if (const char *Env = std::getenv("MCO_CRASH_AFTER_MODULES"))
    CrashAfterModules = std::strtol(Env, nullptr, 10);
  appendLine("mcoj1 " + Fingerprint + " " + std::to_string(NumModules) +
             (WholeProgram ? " wp" : " pm"));
  return Status::success();
}

void BuildJournal::appendLine(const std::string &Payload) {
  if (Fd < 0)
    return;
  char Prefix[16];
  std::snprintf(Prefix, sizeof(Prefix), "%08x ", Crc32c::of(Payload));
  std::string Line = Prefix + Payload + "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      // A failing journal must not fail the build; stop journaling. The
      // worst outcome is a resume that rebuilds more than it had to.
      ::close(Fd);
      Fd = -1;
      return;
    }
    Off += static_cast<size_t>(N);
  }
  ::fsync(Fd);
}

void BuildJournal::recordModuleDone(uint32_t Idx, const std::string &Name,
                                    const std::string &Key,
                                    bool FreshlyBuilt) {
  std::lock_guard<std::mutex> Lock(Mu);
  appendLine("done " + std::to_string(Idx) + " " + Key + " " + Name);
  if (FreshlyBuilt && CrashAfterModules >= 0 &&
      static_cast<long>(++FreshModules) >= CrashAfterModules) {
    // The crash-test hook: die the hard way, right after the record above
    // became durable. No destructors, no atexit — exactly a kill -9.
    ::raise(SIGKILL);
  }
}

void BuildJournal::recordModuleDegraded(uint32_t Idx,
                                        const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  appendLine("degraded " + std::to_string(Idx) + " " + Name);
}

void BuildJournal::recordEnd() {
  std::lock_guard<std::mutex> Lock(Mu);
  appendLine("end");
}

void BuildJournal::close() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

//===----------------------------------------------------------------------===//
// RequestJournal
//===----------------------------------------------------------------------===//

RequestResumeState RequestResumeState::load(const std::string &Path) {
  Expected<std::string> Bytes = readFileBytes(Path);
  if (!Bytes.ok())
    return RequestResumeState();
  return loadFromBytes(*Bytes);
}

RequestResumeState RequestResumeState::loadFromBytes(const std::string &Bytes) {
  RequestResumeState RS;

  // Receipt order matters for replay fairness, so keep a vector and mark
  // terminal ids instead of erasing (an id can legally recur: recv after
  // done is an idempotent re-submission the daemon answered from the
  // durable result).
  std::vector<std::string> Order;
  std::vector<std::string> Terminal;
  std::istringstream In(Bytes);
  std::string Line, Payload;
  bool First = true;
  while (std::getline(In, Line)) {
    if (!checkLine(Line, Payload))
      break; // Torn tail: keep the intact prefix parsed so far.
    std::vector<std::string> T = tokens(Payload);
    if (First) {
      if (T.size() != 1 || T[0] != "mcoreq1")
        return RS;
      RS.Valid = true;
      First = false;
      continue;
    }
    // Per-record validation: ids were charset-checked by the daemon at
    // the protocol boundary, so anything else here is damage; `done`
    // records only ever carry the two terminal states.
    if (T.size() == 2 && T[0] == "recv" &&
        validate::isRequestIdToken(T[1])) {
      Order.push_back(T[1]);
    } else if (T.size() == 3 && T[0] == "done" &&
               validate::isRequestIdToken(T[1]) &&
               (T[2] == "completed" || T[2] == "degraded")) {
      Terminal.push_back(T[1]);
    } else if (T.size() == 2 && T[0] == "failed" &&
               validate::isRequestIdToken(T[1])) {
      Terminal.push_back(T[1]);
    } else {
      break; // Unknown or damaged record: keep the prefix.
    }
  }
  if (!RS.Valid)
    return RS;
  auto IsTerminal = [&Terminal](const std::string &Id) {
    for (const std::string &T : Terminal)
      if (T == Id)
        return true;
    return false;
  };
  for (const std::string &Id : Order) {
    bool Seen = false;
    for (const std::string &U : RS.Unfinished)
      Seen |= U == Id;
    for (const std::string &F : RS.Finished)
      Seen |= F == Id;
    if (Seen)
      continue;
    (IsTerminal(Id) ? RS.Finished : RS.Unfinished).push_back(Id);
  }
  return RS;
}

RequestJournal::~RequestJournal() { close(); }

Status RequestJournal::open(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0)
    return MCO_ERROR("request journal already open");
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (Fd < 0)
    return MCO_ERROR("cannot open request journal '" + Path +
                     "': " + std::strerror(errno));
  off_t End = ::lseek(Fd, 0, SEEK_END);
  if (End == 0)
    appendLine("mcoreq1");
  return Status::success();
}

void RequestJournal::appendLine(const std::string &Payload) {
  if (Fd < 0)
    return;
  char Prefix[16];
  std::snprintf(Prefix, sizeof(Prefix), "%08x ", Crc32c::of(Payload));
  std::string Line = Prefix + Payload + "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      // Same policy as BuildJournal: a failing journal must not fail the
      // service; the worst outcome is a resume that replays more work.
      ::close(Fd);
      Fd = -1;
      return;
    }
    Off += static_cast<size_t>(N);
  }
  ::fsync(Fd);
}

void RequestJournal::recordReceived(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  appendLine("recv " + Id);
}

void RequestJournal::recordDone(const std::string &Id,
                                const std::string &State) {
  std::lock_guard<std::mutex> Lock(Mu);
  appendLine("done " + Id + " " + State);
}

void RequestJournal::recordFailed(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  appendLine("failed " + Id);
}

void RequestJournal::close() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}
