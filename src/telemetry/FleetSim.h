//===- telemetry/FleetSim.h - Device-fleet simulation & rollout -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-scale measurement layer behind the paper's production
/// evaluation (Sections V-VII): the real system watched P50 span latencies
/// from millions of phones during staged rollouts, which is how the
/// Section VI data-layout page-fault regression was caught. This module
/// replays that methodology in simulation:
///
///  - runFleet executes a built artifact across N synthetic devices. Each
///    device samples a (hardware, OS) class — i-cache size, TLB reach,
///    resident data pages, base CPI — plus per-device memory-pressure
///    jitter, all seeded deterministically from (seed, device index), and
///    runs the corpus span drivers under the performance model. Devices
///    fan out on the ThreadPool; device k's result is a pure function of
///    (artifact, options, k), so the fleet report is byte-identical at any
///    thread count.
///
///  - runStagedRollout ramps a candidate artifact against a baseline in
///    stages (1% -> 10% -> 50% -> 100% by default): at each stage the
///    comparator aggregates both artifacts over the stage's device cohort,
///    applies per-metric regression thresholds (span-cycle P50/P95, data
///    page faults, i-cache misses, IPC), and HALTS the ramp on the first
///    breach, emitting a machine-readable verdict. The Table 7 scenario —
///    affinity-preserving vs. merged-interleaved data layout — must trip
///    the page-fault threshold here, in simulation, rather than in
///    production.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_TELEMETRY_FLEETSIM_H
#define MCO_TELEMETRY_FLEETSIM_H

#include "linker/StartupTrace.h"
#include "sim/CacheModel.h"
#include "sim/HeatProfile.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mco {

class Program;
struct LayoutPlan;

/// One (hardware, OS) cell of the fleet, like a Fig. 13 heatmap cell.
struct DeviceClass {
  std::string Name;
  PerfConfig Cfg;
  double Weight = 1.0; ///< Relative share of the fleet.
};

/// Four device generations, legacy-heavy the way mobile fleets are; the
/// constrained classes are what surface data-locality regressions.
std::vector<DeviceClass> defaultDeviceClasses();

/// Fleet-run configuration.
struct FleetOptions {
  unsigned NumDevices = 64;
  uint64_t Seed = 0x5EED;
  /// Worker threads for the device fan-out. Reports are byte-identical at
  /// any setting.
  unsigned Threads = 1;
  /// Entry functions each device executes, in order (span drivers).
  std::vector<std::string> Entries;
  std::vector<DeviceClass> Classes = defaultDeviceClasses();
  /// Interpreter fuel per entry call.
  uint64_t FuelPerCall = 200'000'000ull;
};

/// One device's run.
struct DeviceResult {
  uint32_t Index = 0;
  uint32_t ClassIdx = 0;
  PerfCounters Counters;          ///< Cumulative over every entry.
  std::vector<double> SpanCycles; ///< Modeled cycles per entry.
  std::string FaultMsg;           ///< Non-empty if some entry faulted.
};

/// Aggregate metrics over a device cohort. All values are modeled
/// (simulation-deterministic), never wall-clock.
struct FleetMetrics {
  uint64_t Devices = 0;
  double CyclesP50 = 0, CyclesP95 = 0; ///< Per-device total span cycles.
  double IpcMean = 0;
  double ICacheMissP50 = 0, ICacheMissP95 = 0;
  double ITlbMissP50 = 0;
  double BranchMissP50 = 0;
  double DataFaultsP50 = 0, DataFaultsP95 = 0;
  double TextFaultsP50 = 0, TextFaultsP95 = 0;
  uint64_t TotalInstrs = 0;
};

/// Per-entry latency aggregate across the fleet.
struct SpanAggregate {
  std::string Name;
  double CyclesP50 = 0, CyclesP95 = 0;
};

/// The full fleet report.
struct FleetReport {
  uint64_t Seed = 0;
  std::vector<std::string> Entries;
  std::vector<std::string> ClassNames;
  std::vector<DeviceResult> Devices; ///< Index order (device 0 first).
  std::vector<SpanAggregate> Spans;  ///< Over the whole fleet.
  FleetMetrics Overall;              ///< Over the whole fleet.
};

/// Lays out \p Prog and executes it across the fleet. \p Prog must be a
/// fully built artifact (post-buildProgram). Thread-safe fan-out: each
/// device owns an Interpreter over the shared read-only image.
///
/// \p Plan (optional) is a LayoutStrategy product applied to the image —
/// the closed loop's "measure under the optimized layout" step.
/// \p TracesOut (optional) receives per-device startup traces
/// (`mco-traces-v1`): ordered function entries, aggregated call edges,
/// and first-touch text pages. Capture is passive — the report is
/// byte-identical with or without it.
/// \p HeatOut (optional) receives the fleet-aggregated per-function heat
/// profile (`mco-heat-v1`): calls, retired instructions, and modeled
/// cycles summed across every device, in canonical name order. Capture is
/// passive here too.
FleetReport runFleet(const Program &Prog, const FleetOptions &Opts,
                     const LayoutPlan *Plan = nullptr,
                     TraceProfile *TracesOut = nullptr,
                     HeatProfile *HeatOut = nullptr);

/// Aggregates the first \p FirstN devices of \p R (a rollout-stage cohort).
FleetMetrics aggregateDevices(const FleetReport &R, size_t FirstN);

/// Deterministic JSON rendering of a fleet report (byte-identical for a
/// fixed seed at any thread count).
std::string fleetReportJson(const FleetReport &R);

/// Atomically writes fleetReportJson to \p Path (FileAtomics rename path).
Status writeFleetReport(const FleetReport &R, const std::string &Path);

/// Per-metric regression thresholds, in percent worse-than-baseline.
struct RegressionThresholds {
  double CyclesP50Pct = 2.0;
  double CyclesP95Pct = 5.0;
  double DataFaultsPct = 10.0;
  double TextFaultsPct = 10.0;
  double ICacheMissPct = 15.0;
  double IpcDropPct = 5.0;
};

/// One compared metric at one stage.
struct MetricDelta {
  std::string Metric;
  double Base = 0, Cand = 0;
  double DeltaPct = 0;     ///< Positive = candidate worse.
  double ThresholdPct = 0;
  bool Breach = false;
};

/// One rollout stage's comparison.
struct StageVerdict {
  double Percent = 0;
  unsigned Devices = 0;
  FleetMetrics Baseline, Candidate;
  std::vector<MetricDelta> Deltas;
  bool Ok = true;
};

/// The whole ramp's verdict.
struct RolloutVerdict {
  std::vector<StageVerdict> Stages; ///< Up to and including the halt stage.
  bool Regression = false;
  /// Stage percent the ramp halted at (== the last stage percent when the
  /// ramp completed cleanly).
  double HaltedAtPercent = 0;
  std::string Summary;
};

/// Default ramp: 1% -> 10% -> 50% -> 100%.
std::vector<double> defaultStagePercents();

/// Runs both artifacts over the same synthetic fleet and ramps the
/// candidate stage by stage, halting at the first threshold breach.
/// \p BaseOut / \p CandOut (optional) receive the full fleet reports.
/// \p BasePlan / \p CandPlan (optional) apply layout-strategy plans to
/// the respective artifacts, so a rollout can compare two *layouts* of
/// one program the same way it compares two programs.
RolloutVerdict runStagedRollout(const Program &Baseline,
                                const Program &Candidate,
                                const FleetOptions &Opts,
                                const std::vector<double> &StagePercents =
                                    defaultStagePercents(),
                                const RegressionThresholds &Th = {},
                                FleetReport *BaseOut = nullptr,
                                FleetReport *CandOut = nullptr,
                                const LayoutPlan *BasePlan = nullptr,
                                const LayoutPlan *CandPlan = nullptr);

/// Deterministic JSON rendering of a rollout verdict.
std::string rolloutVerdictJson(const RolloutVerdict &V,
                               const FleetOptions &Opts,
                               const std::vector<double> &StagePercents,
                               const RegressionThresholds &Th);

/// Atomically writes rolloutVerdictJson to \p Path.
Status writeRolloutVerdict(const RolloutVerdict &V, const FleetOptions &Opts,
                           const std::vector<double> &StagePercents,
                           const RegressionThresholds &Th,
                           const std::string &Path);

} // namespace mco

#endif // MCO_TELEMETRY_FLEETSIM_H
