//===- telemetry/Metrics.cpp - Typed metrics registry ---------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cstdio>

using namespace mco;

void Histogram::observe(double X) {
  std::lock_guard<std::mutex> G(Mtx);
  Samples.push_back(X);
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> G(Mtx);
  return Samples.size();
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> G(Mtx);
  double S = 0;
  for (double X : Samples)
    S += X;
  return S;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> G(Mtx);
  return Samples.empty()
             ? 0
             : *std::min_element(Samples.begin(), Samples.end());
}

double Histogram::max() const {
  std::lock_guard<std::mutex> G(Mtx);
  return Samples.empty()
             ? 0
             : *std::max_element(Samples.begin(), Samples.end());
}

double Histogram::percentile(double P) const {
  std::lock_guard<std::mutex> G(Mtx);
  if (Samples.empty())
    return 0;
  return mco::percentile(Samples, P);
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

std::string MetricsRegistry::keyFor(const std::string &Name,
                                    const MetricLabels &Labels) {
  if (Labels.empty())
    return Name;
  MetricLabels Sorted = Labels;
  std::sort(Sorted.begin(), Sorted.end());
  std::string Key = Name + "{";
  for (size_t I = 0; I < Sorted.size(); ++I) {
    if (I)
      Key += ",";
    Key += Sorted[I].first + "=\"" + Sorted[I].second + "\"";
  }
  Key += "}";
  return Key;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const MetricLabels &Labels) {
  std::lock_guard<std::mutex> G(Mtx);
  Entry &E = Entries[keyFor(Name, Labels)];
  if (!E.C)
    E.C = std::make_unique<Counter>();
  return *E.C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const MetricLabels &Labels) {
  std::lock_guard<std::mutex> G(Mtx);
  Entry &E = Entries[keyFor(Name, Labels)];
  if (!E.G)
    E.G = std::make_unique<Gauge>();
  return *E.G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const MetricLabels &Labels) {
  std::lock_guard<std::mutex> G(Mtx);
  Entry &E = Entries[keyFor(Name, Labels)];
  if (!E.H)
    E.H = std::make_unique<Histogram>();
  return *E.H;
}

uint64_t MetricsRegistry::counterValue(const std::string &Name,
                                       const MetricLabels &Labels) const {
  std::lock_guard<std::mutex> G(Mtx);
  auto It = Entries.find(keyFor(Name, Labels));
  return It != Entries.end() && It->second.C ? It->second.C->value() : 0;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> G(Mtx);
  Entries.clear();
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  return Out;
}

std::string fmtDouble(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

} // namespace

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> G(Mtx);
  std::string Counters, Gauges, Histos;
  for (const auto &[Key, E] : Entries) {
    const std::string K = "\"" + jsonEscape(Key) + "\": ";
    if (E.C) {
      if (!Counters.empty())
        Counters += ", ";
      Counters += K + std::to_string(E.C->value());
    }
    if (E.G) {
      if (!Gauges.empty())
        Gauges += ", ";
      Gauges += K + fmtDouble(E.G->value());
    }
    if (E.H) {
      if (!Histos.empty())
        Histos += ", ";
      Histos += K + "{\"count\": " + std::to_string(E.H->count()) +
                ", \"sum\": " + fmtDouble(E.H->sum()) +
                ", \"min\": " + fmtDouble(E.H->min()) +
                ", \"max\": " + fmtDouble(E.H->max()) +
                ", \"p50\": " + fmtDouble(E.H->percentile(50)) +
                ", \"p95\": " + fmtDouble(E.H->percentile(95)) + "}";
    }
  }
  return "{\"counters\": {" + Counters + "}, \"gauges\": {" + Gauges +
         "}, \"histograms\": {" + Histos + "}}";
}
