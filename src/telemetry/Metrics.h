//===- telemetry/Metrics.h - Typed metrics registry -------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed metrics registry: named counters, gauges, and histograms, each
/// optionally carrying a small label set. This replaces the hand-rolled
/// counter struct fields that used to be threaded from the pipeline into
/// the diag JSON: the build increments registry metrics as it goes, and
/// every exporter (mco-build --diag-json, the fleet simulator, benches)
/// reads from the one registry.
///
/// Naming scheme: `<subsystem>.<noun>[_<unit>]`, all lowercase, dots
/// between subsystem and metric, underscores inside the metric name —
/// e.g. `cache.hits`, `guard.rounds_rolled_back`, `fleet.span_cycles`.
/// Labels qualify a metric without multiplying names:
/// `{module="core", round="3"}`.
///
/// Export order is deterministic (sorted by name, then rendered labels),
/// so two runs that record the same values serialize identically.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_TELEMETRY_METRICS_H
#define MCO_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mco {

/// Label set: (key, value) pairs. Order-insensitive — the registry sorts.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. add() for event counting; set() for counters whose
/// authoritative total is computed elsewhere (e.g. summed across modules).
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void set(uint64_t N) { V.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written-value gauge.
class Gauge {
public:
  void set(double X) {
    std::lock_guard<std::mutex> G(Mtx);
    V = X;
  }
  double value() const {
    std::lock_guard<std::mutex> G(Mtx);
    return V;
  }

private:
  mutable std::mutex Mtx;
  double V = 0;
};

/// Sample-keeping histogram: count, sum, min/max, and exact percentiles.
/// Samples are kept (the corpora here are small); callers needing only
/// count/sum pay a vector push per observation.
class Histogram {
public:
  void observe(double X);
  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, P in [0, 100]. 0 when empty.
  double percentile(double P) const;

private:
  mutable std::mutex Mtx;
  std::vector<double> Samples;
};

/// The registry. get-or-create accessors are thread-safe; returned
/// references stay valid until reset().
class MetricsRegistry {
public:
  /// The process-wide registry the pipeline and tools share.
  static MetricsRegistry &global();

  Counter &counter(const std::string &Name, const MetricLabels &Labels = {});
  Gauge &gauge(const std::string &Name, const MetricLabels &Labels = {});
  Histogram &histogram(const std::string &Name,
                       const MetricLabels &Labels = {});

  /// Counter value by name, 0 when absent (exporters read through this so
  /// a build that never touched a subsystem still reports a zero).
  uint64_t counterValue(const std::string &Name,
                        const MetricLabels &Labels = {}) const;

  /// Drops every metric. Builds call this at entry so one process running
  /// several builds (tests, benches) reports per-build values.
  void reset();

  /// Deterministic JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, p50, p95}}}.
  std::string toJson() const;

private:
  struct Entry {
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };
  static std::string keyFor(const std::string &Name,
                            const MetricLabels &Labels);

  mutable std::mutex Mtx;
  std::map<std::string, Entry> Entries; ///< Sorted — export determinism.
};

} // namespace mco

#endif // MCO_TELEMETRY_METRICS_H
