//===- telemetry/Tracer.h - Structured scoped-span tracing ------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead structured tracer for the build pipeline, the outliner,
/// and the artifact cache. Spans are RAII-scoped (ScopedSpan / the
/// MCO_TRACE_SPAN macro), carry a stable per-thread id and monotonic
/// timestamps, and land in a fixed-capacity ring buffer: when the ring
/// wraps, the oldest spans are dropped and counted, never the newest — a
/// long build keeps its tail, which is where problems usually live.
///
/// The buffer exports as Chrome `trace_event` JSON (load it in
/// chrome://tracing or Perfetto) through the FileAtomics atomic
/// write/rename path, so a crash mid-export never leaves a truncated file.
///
/// When the tracer is disabled — the default — a span costs one relaxed
/// atomic load and no clock reads, so instrumentation can stay in the hot
/// paths unconditionally. Tracing never affects build output; it only
/// observes.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_TELEMETRY_TRACER_H
#define MCO_TELEMETRY_TRACER_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mco {

/// One completed span.
struct TraceEvent {
  std::string Name;   ///< e.g. "outliner.round" or "pipeline.module:core".
  const char *Cat;    ///< Static category string ("pipeline", "outliner"...).
  uint32_t Tid = 0;   ///< Stable small integer; 0 is the first thread seen.
  uint64_t StartNs = 0; ///< Monotonic, relative to the tracer's epoch.
  uint64_t DurNs = 0;
};

/// Process-wide span collector. All methods are thread-safe.
class Tracer {
public:
  static constexpr size_t DefaultCapacity = 1 << 16;

  static Tracer &instance();

  /// Starts collecting with a ring of \p Capacity events and resets the
  /// epoch, the ring, and the drop counters.
  void enable(size_t Capacity = DefaultCapacity);
  /// Stops collecting. Already-buffered events are kept for export.
  void disable();
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Records a completed span. No-op while disabled.
  void record(std::string Name, const char *Cat, uint64_t StartNs,
              uint64_t DurNs);

  /// Monotonic nanoseconds since the tracer's epoch (enable() resets it).
  uint64_t nowNs() const;

  /// Stable small id for the calling thread (assigned on first use).
  static uint32_t currentThreadId();

  /// Spans accepted since enable(), including ones the ring later dropped.
  uint64_t eventsRecorded() const;
  /// Spans overwritten by ring wrap-around.
  uint64_t eventsDropped() const;

  /// The buffered events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// Renders the buffer as Chrome trace_event JSON. Events are sorted by
  /// (start, tid, name) so the rendering is stable for a given buffer.
  std::string toChromeJson() const;

  /// Atomically writes toChromeJson() to \p Path (write-temp + rename), so
  /// a SIGKILL mid-export never leaves a truncated trace file.
  Status exportChromeJson(const std::string &Path) const;

private:
  Tracer() = default;

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mtx;
  std::vector<TraceEvent> Ring; ///< Capacity slots; Total tells how many used.
  uint64_t Total = 0;           ///< Events ever recorded since enable().
  uint64_t EpochNs = 0;         ///< steady_clock ns at enable().
};

/// RAII span: records [construction, destruction) into the tracer.
/// Costs one atomic load when tracing is off.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name, const char *Cat = "build");
  ScopedSpan(std::string Name, const char *Cat = "build");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  std::string Name;
  const char *Cat = "";
  uint64_t StartNs = 0;
  bool Active = false;
};

#define MCO_TRACE_CONCAT_IMPL(A, B) A##B
#define MCO_TRACE_CONCAT(A, B) MCO_TRACE_CONCAT_IMPL(A, B)
/// Drops a scoped span covering the rest of the enclosing block.
#define MCO_TRACE_SPAN(...)                                                   \
  ::mco::ScopedSpan MCO_TRACE_CONCAT(McoSpan_, __LINE__)(__VA_ARGS__)

} // namespace mco

#endif // MCO_TELEMETRY_TRACER_H
