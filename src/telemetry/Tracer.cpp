//===- telemetry/Tracer.cpp - Structured scoped-span tracing --------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Tracer.h"

#include "support/FileAtomics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace mco;

namespace {

uint64_t steadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  return Out;
}

} // namespace

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

void Tracer::enable(size_t Capacity) {
  std::lock_guard<std::mutex> G(Mtx);
  Ring.clear();
  Ring.resize(std::max<size_t>(Capacity, 1));
  Total = 0;
  EpochNs = steadyNs();
  Enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { Enabled.store(false, std::memory_order_relaxed); }

uint64_t Tracer::nowNs() const {
  uint64_t Now = steadyNs();
  // EpochNs is only written under Mtx in enable(); a racing span started
  // before enable() can see the old epoch, which at worst skews that one
  // span's timestamp.
  return Now >= EpochNs ? Now - EpochNs : 0;
}

uint32_t Tracer::currentThreadId() {
  static std::atomic<uint32_t> NextTid{0};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

void Tracer::record(std::string Name, const char *Cat, uint64_t StartNs,
                    uint64_t DurNs) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.Tid = currentThreadId();
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  std::lock_guard<std::mutex> G(Mtx);
  Ring[Total % Ring.size()] = std::move(E);
  ++Total;
}

uint64_t Tracer::eventsRecorded() const {
  std::lock_guard<std::mutex> G(Mtx);
  return Total;
}

uint64_t Tracer::eventsDropped() const {
  std::lock_guard<std::mutex> G(Mtx);
  return Total > Ring.size() ? Total - Ring.size() : 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> G(Mtx);
  std::vector<TraceEvent> Out;
  if (Ring.empty())
    return Out;
  const size_t Kept = std::min<size_t>(Total, Ring.size());
  Out.reserve(Kept);
  // Oldest surviving event first. When the ring has wrapped, the oldest
  // survivor sits right after the most recently written slot.
  const size_t Start = Total > Ring.size() ? Total % Ring.size() : 0;
  for (size_t I = 0; I < Kept; ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

std::string Tracer::toChromeJson() const {
  std::vector<TraceEvent> Events = snapshot();
  std::sort(Events.begin(), Events.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return A.Name < B.Name;
            });
  std::string Out = "{\"traceEvents\": [\n";
  char Buf[64];
  for (size_t I = 0; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    Out += "  {\"name\": \"" + jsonEscape(E.Name) + "\", \"cat\": \"" +
           jsonEscape(E.Cat ? E.Cat : "") + "\", \"ph\": \"X\", \"pid\": 1";
    std::snprintf(Buf, sizeof(Buf), ", \"tid\": %u", E.Tid);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), ", \"ts\": %llu.%03llu",
                  static_cast<unsigned long long>(E.StartNs / 1000),
                  static_cast<unsigned long long>(E.StartNs % 1000));
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), ", \"dur\": %llu.%03llu}",
                  static_cast<unsigned long long>(E.DurNs / 1000),
                  static_cast<unsigned long long>(E.DurNs % 1000));
    Out += Buf;
    Out += I + 1 < Events.size() ? ",\n" : "\n";
  }
  std::lock_guard<std::mutex> G(Mtx);
  Out += "], \"otherData\": {\"events_recorded\": " + std::to_string(Total) +
         ", \"events_dropped\": " +
         std::to_string(Total > Ring.size() ? Total - Ring.size() : 0) +
         "}}\n";
  return Out;
}

Status Tracer::exportChromeJson(const std::string &Path) const {
  return atomicWriteFile(Path, toChromeJson());
}

ScopedSpan::ScopedSpan(const char *Name, const char *Cat)
    : ScopedSpan(std::string(Name), Cat) {}

ScopedSpan::ScopedSpan(std::string NameStr, const char *CatStr) {
  Tracer &T = Tracer::instance();
  if (!T.enabled())
    return;
  Active = true;
  Name = std::move(NameStr);
  Cat = CatStr;
  StartNs = T.nowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!Active)
    return;
  Tracer &T = Tracer::instance();
  const uint64_t End = T.nowNs();
  T.record(std::move(Name), Cat, StartNs,
           End >= StartNs ? End - StartNs : 0);
}
