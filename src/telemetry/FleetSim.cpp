//===- telemetry/FleetSim.cpp - Device-fleet simulation & rollout ---------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/FleetSim.h"

#include "linker/LayoutStrategy.h"
#include "linker/Linker.h"
#include "sim/Interpreter.h"
#include "support/FileAtomics.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "telemetry/Metrics.h"
#include "telemetry/Tracer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace mco;

std::vector<DeviceClass> mco::defaultDeviceClasses() {
  // Four (hardware, OS) generations, legacy-heavy the way production
  // mobile fleets are. Newer cores get bigger i-caches, deeper TLBs, and
  // more resident data pages; the constrained end is where the Section VI
  // data-layout regression shows first. Faults are soft page-ins.
  std::vector<DeviceClass> Classes(4);

  Classes[0].Name = "a14-ios14";
  Classes[0].Weight = 0.2;
  Classes[0].Cfg.ICacheBytes = 128 << 10;
  Classes[0].Cfg.ICacheAssoc = 8;
  Classes[0].Cfg.ITlbEntries = 64;
  Classes[0].Cfg.DataResidentPages = 48;
  Classes[0].Cfg.DataFaultCycles = 300;
  Classes[0].Cfg.TextFaultCycles = 300;
  Classes[0].Cfg.BaseCyclesPerInstr = 0.40;

  Classes[1].Name = "a12-ios13";
  Classes[1].Weight = 0.3;
  Classes[1].Cfg.ICacheBytes = 64 << 10;
  Classes[1].Cfg.ICacheAssoc = 4;
  Classes[1].Cfg.ITlbEntries = 48;
  Classes[1].Cfg.DataResidentPages = 32;
  Classes[1].Cfg.DataFaultCycles = 300;
  Classes[1].Cfg.TextFaultCycles = 300;
  Classes[1].Cfg.BaseCyclesPerInstr = 0.50;

  Classes[2].Name = "a10-ios13";
  Classes[2].Weight = 0.3;
  Classes[2].Cfg.ICacheBytes = 64 << 10;
  Classes[2].Cfg.ICacheAssoc = 4;
  Classes[2].Cfg.ITlbEntries = 48;
  Classes[2].Cfg.DataResidentPages = 24;
  Classes[2].Cfg.DataFaultCycles = 300;
  Classes[2].Cfg.TextFaultCycles = 300;
  Classes[2].Cfg.BaseCyclesPerInstr = 0.55;

  Classes[3].Name = "a8-ios12";
  Classes[3].Weight = 0.2;
  Classes[3].Cfg.ICacheBytes = 32 << 10;
  Classes[3].Cfg.ICacheAssoc = 4;
  Classes[3].Cfg.ITlbEntries = 32;
  Classes[3].Cfg.DataResidentPages = 16;
  Classes[3].Cfg.DataFaultCycles = 300;
  Classes[3].Cfg.TextFaultCycles = 300;
  Classes[3].Cfg.BaseCyclesPerInstr = 0.65;

  return Classes;
}

std::vector<double> mco::defaultStagePercents() { return {1, 10, 50, 100}; }

namespace {

/// Device k's RNG; a pure function of (seed, k) so the fan-out order can
/// never leak into the results.
Rng deviceRng(uint64_t Seed, uint32_t Index) {
  return Rng(Seed ^ (uint64_t(Index) * 0x9E3779B97F4A7C15ull +
                     0xD1B54A32D192ED03ull));
}

DeviceResult simulateDevice(const BinaryImage &Image, const Program &Prog,
                            const FleetOptions &Opts, uint32_t Index,
                            StartupTraceRecorder *Rec, HeatRecorder *Heat) {
  MCO_TRACE_SPAN("fleet.device", "fleet");
  DeviceResult D;
  D.Index = Index;

  Rng R = deviceRng(Opts.Seed, Index);
  // Weighted class pick.
  double TotalW = 0;
  for (const DeviceClass &C : Opts.Classes)
    TotalW += C.Weight;
  double U = R.nextDouble() * TotalW;
  uint32_t ClassIdx = 0;
  for (; ClassIdx + 1 < Opts.Classes.size(); ++ClassIdx) {
    U -= Opts.Classes[ClassIdx].Weight;
    if (U < 0)
      break;
  }
  D.ClassIdx = ClassIdx;

  // Per-device memory-pressure jitter: +-15% of the class's resident data
  // pages — two devices of the same class are under different pressure.
  PerfConfig Cfg = Opts.Classes[ClassIdx].Cfg;
  const double Jitter = 0.85 + 0.30 * R.nextDouble();
  Cfg.DataResidentPages = std::max(
      4u, static_cast<unsigned>(std::llround(Cfg.DataResidentPages * Jitter)));

  Interpreter I(Image, Prog, &Cfg);
  I.setFuel(Opts.FuelPerCall);
  if (Rec)
    I.setTraceRecorder(Rec);
  if (Heat)
    I.setHeatRecorder(Heat);
  D.SpanCycles.reserve(Opts.Entries.size());
  for (const std::string &Entry : Opts.Entries) {
    const double Before = I.counters().Cycles;
    Expected<int64_t> Res = I.tryCall(Entry);
    if (!Res.ok() && D.FaultMsg.empty())
      D.FaultMsg = Entry + ": " + Res.status().message();
    D.SpanCycles.push_back(I.counters().Cycles - Before);
  }
  D.Counters = I.counters();
  return D;
}

double relPct(double Base, double Cand) {
  if (Base <= 1e-12)
    return Cand <= 1e-12 ? 0.0 : 100.0;
  return 100.0 * (Cand - Base) / Base;
}

std::string fmtDouble(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

std::string metricsJson(const FleetMetrics &M) {
  std::string Out = "{";
  Out += "\"devices\": " + std::to_string(M.Devices);
  Out += ", \"cycles_p50\": " + fmtDouble(M.CyclesP50);
  Out += ", \"cycles_p95\": " + fmtDouble(M.CyclesP95);
  Out += ", \"ipc_mean\": " + fmtDouble(M.IpcMean);
  Out += ", \"icache_miss_p50\": " + fmtDouble(M.ICacheMissP50);
  Out += ", \"icache_miss_p95\": " + fmtDouble(M.ICacheMissP95);
  Out += ", \"itlb_miss_p50\": " + fmtDouble(M.ITlbMissP50);
  Out += ", \"branch_miss_p50\": " + fmtDouble(M.BranchMissP50);
  Out += ", \"data_page_faults_p50\": " + fmtDouble(M.DataFaultsP50);
  Out += ", \"data_page_faults_p95\": " + fmtDouble(M.DataFaultsP95);
  Out += ", \"text_page_faults_p50\": " + fmtDouble(M.TextFaultsP50);
  Out += ", \"text_page_faults_p95\": " + fmtDouble(M.TextFaultsP95);
  Out += ", \"total_instrs\": " + std::to_string(M.TotalInstrs);
  Out += "}";
  return Out;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  return Out;
}

} // namespace

FleetReport mco::runFleet(const Program &Prog, const FleetOptions &Opts,
                          const LayoutPlan *Plan, TraceProfile *TracesOut,
                          HeatProfile *HeatOut) {
  MCO_TRACE_SPAN("fleet.run", "fleet");
  FleetReport R;
  R.Seed = Opts.Seed;
  R.Entries = Opts.Entries;
  for (const DeviceClass &C : Opts.Classes)
    R.ClassNames.push_back(C.Name);

  const BinaryImage Image =
      Plan ? BinaryImage(Prog, *Plan) : BinaryImage(Prog);

  // One recorder per device slot: device k writes only to Recorders[k], so
  // capture is race-free under the fan-out and the converted profile is
  // byte-identical at any thread count.
  std::vector<StartupTraceRecorder> Recorders;
  if (TracesOut)
    Recorders.resize(Opts.NumDevices);
  std::vector<HeatRecorder> HeatRecs;
  if (HeatOut)
    HeatRecs.resize(Opts.NumDevices);

  {
    MCO_TRACE_SPAN("fleet.devices", "fleet");
    ThreadPool Pool(Opts.Threads);
    R.Devices = parallelMap<DeviceResult>(
        Pool, Opts.NumDevices, [&](size_t I) {
          return simulateDevice(Image, Prog, Opts, static_cast<uint32_t>(I),
                                TracesOut ? &Recorders[I] : nullptr,
                                HeatOut ? &HeatRecs[I] : nullptr);
        });
  }

  if (TracesOut) {
    // Convert image function indices to symbolic profile ids (ids are
    // assigned in first-use order across devices, so the profile is a
    // pure function of the execution).
    TraceProfile P;
    auto IdOf = [&](uint32_t ImgIdx) {
      return P.functionId(Prog.symbolName(Image.funcs()[ImgIdx].MF->Name));
    };
    for (uint32_t DI = 0; DI < Recorders.size(); ++DI) {
      const StartupTraceRecorder &Rec = Recorders[DI];
      DeviceTrace T;
      T.Device = DI;
      T.Entries.reserve(Rec.entries().size());
      for (uint32_t Idx : Rec.entries())
        T.Entries.push_back(IdOf(Idx));
      std::vector<std::pair<uint64_t, uint64_t>> Packed(
          Rec.callCounts().begin(), Rec.callCounts().end());
      std::sort(Packed.begin(), Packed.end());
      T.Calls.reserve(Packed.size());
      for (const auto &KV : Packed) {
        TraceCallEdge E;
        E.Caller = IdOf(static_cast<uint32_t>(KV.first >> 32));
        E.Callee = IdOf(static_cast<uint32_t>(KV.first));
        E.Count = KV.second;
        T.Calls.push_back(E);
      }
      std::sort(T.Calls.begin(), T.Calls.end(),
                [](const TraceCallEdge &A, const TraceCallEdge &B) {
                  return A.Caller != B.Caller ? A.Caller < B.Caller
                                              : A.Callee < B.Callee;
                });
      T.PageTouches = Rec.pageTouches();
      T.TextFaults = DI < R.Devices.size()
                         ? R.Devices[DI].Counters.TextPageFaults
                         : 0;
      P.Devices.push_back(std::move(T));
    }
    *TracesOut = std::move(P);
  }

  if (HeatOut) {
    // Sum every device slot's per-index heat, then name the functions
    // symbolically and emit in canonical (name-ascending) order — a pure
    // function of the execution, byte-identical at any thread count.
    size_t MaxIdx = 0;
    for (const HeatRecorder &HR : HeatRecs)
      MaxIdx = std::max(MaxIdx, HR.size());
    std::vector<uint64_t> Calls(MaxIdx, 0), Instrs(MaxIdx, 0);
    std::vector<double> Cycles(MaxIdx, 0.0);
    for (const HeatRecorder &HR : HeatRecs)
      for (size_t I = 0; I < HR.size(); ++I) {
        Calls[I] += HR.calls(I);
        Instrs[I] += HR.instrs(I);
        Cycles[I] += HR.cycles(I);
      }
    HeatProfile H;
    H.Devices = Opts.NumDevices;
    for (size_t I = 0; I < MaxIdx; ++I) {
      if (Calls[I] == 0 && Instrs[I] == 0)
        continue; // Never entered, never charged: not part of the profile.
      FunctionHeat F;
      F.Name = Prog.symbolName(Image.funcs()[I].MF->Name);
      F.Calls = Calls[I];
      F.Instrs = Instrs[I];
      F.Cycles = static_cast<uint64_t>(std::llround(Cycles[I]));
      H.Functions.push_back(std::move(F));
    }
    std::sort(H.Functions.begin(), H.Functions.end(),
              [](const FunctionHeat &A, const FunctionHeat &B) {
                return A.Name < B.Name;
              });
    *HeatOut = std::move(H);
  }

  MCO_TRACE_SPAN("fleet.aggregate", "fleet");
  R.Overall = aggregateDevices(R, R.Devices.size());

  // Per-span latency aggregates over the whole fleet.
  for (size_t E = 0; E < R.Entries.size(); ++E) {
    std::vector<double> Cycles;
    Cycles.reserve(R.Devices.size());
    for (const DeviceResult &D : R.Devices)
      if (E < D.SpanCycles.size())
        Cycles.push_back(D.SpanCycles[E]);
    SpanAggregate A;
    A.Name = R.Entries[E];
    if (!Cycles.empty()) {
      A.CyclesP50 = percentile(Cycles, 50);
      A.CyclesP95 = percentile(Cycles, 95);
    }
    R.Spans.push_back(std::move(A));
  }

  MetricsRegistry &MR = MetricsRegistry::global();
  MR.counter("fleet.devices_run").add(R.Devices.size());
  Histogram &H = MR.histogram("fleet.device_cycles");
  uint64_t Faults = 0;
  for (const DeviceResult &D : R.Devices) {
    H.observe(D.Counters.Cycles);
    Faults += D.FaultMsg.empty() ? 0 : 1;
  }
  MR.counter("fleet.devices_faulted").add(Faults);
  if (Plan) {
    uint64_t TextFaults = 0;
    for (const DeviceResult &D : R.Devices)
      TextFaults += D.Counters.TextPageFaults;
    MR.gauge("linker.layout.simulated_text_faults",
             {{"strategy", Plan->Strategy}})
        .set(double(TextFaults));
  }
  return R;
}

FleetMetrics mco::aggregateDevices(const FleetReport &R, size_t FirstN) {
  FleetMetrics M;
  const size_t N = std::min(FirstN, R.Devices.size());
  if (N == 0)
    return M;
  M.Devices = N;
  std::vector<double> Cycles, Ipc, ICache, ITlb, Branch, Faults, TextFaults;
  Cycles.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    const PerfCounters &C = R.Devices[I].Counters;
    Cycles.push_back(C.Cycles);
    Ipc.push_back(C.ipc());
    ICache.push_back(double(C.ICacheMisses));
    ITlb.push_back(double(C.ITlbMisses));
    Branch.push_back(double(C.BranchMispredicts));
    Faults.push_back(double(C.DataPageFaults));
    TextFaults.push_back(double(C.TextPageFaults));
    M.TotalInstrs += C.Instrs;
  }
  M.CyclesP50 = percentile(Cycles, 50);
  M.CyclesP95 = percentile(Cycles, 95);
  M.IpcMean = mean(Ipc);
  M.ICacheMissP50 = percentile(ICache, 50);
  M.ICacheMissP95 = percentile(ICache, 95);
  M.ITlbMissP50 = percentile(ITlb, 50);
  M.BranchMissP50 = percentile(Branch, 50);
  M.DataFaultsP50 = percentile(Faults, 50);
  M.DataFaultsP95 = percentile(Faults, 95);
  M.TextFaultsP50 = percentile(TextFaults, 50);
  M.TextFaultsP95 = percentile(TextFaults, 95);
  return M;
}

std::string mco::fleetReportJson(const FleetReport &R) {
  std::string Out = "{\n";
  Out += "  \"schema\": \"mco-fleet-report-v1\",\n";
  Out += "  \"seed\": " + std::to_string(R.Seed) + ",\n";
  Out += "  \"devices\": " + std::to_string(R.Devices.size()) + ",\n";
  Out += "  \"entries\": [";
  for (size_t I = 0; I < R.Entries.size(); ++I)
    Out += (I ? ", " : "") + ("\"" + jsonEscape(R.Entries[I]) + "\"");
  Out += "],\n";
  Out += "  \"device_classes\": [";
  for (size_t I = 0; I < R.ClassNames.size(); ++I)
    Out += (I ? ", " : "") + ("\"" + jsonEscape(R.ClassNames[I]) + "\"");
  Out += "],\n";
  Out += "  \"overall\": " + metricsJson(R.Overall) + ",\n";
  Out += "  \"spans\": [\n";
  for (size_t I = 0; I < R.Spans.size(); ++I) {
    const SpanAggregate &A = R.Spans[I];
    Out += "    {\"name\": \"" + jsonEscape(A.Name) +
           "\", \"cycles_p50\": " + fmtDouble(A.CyclesP50) +
           ", \"cycles_p95\": " + fmtDouble(A.CyclesP95) + "}";
    Out += I + 1 < R.Spans.size() ? ",\n" : "\n";
  }
  Out += "  ],\n";
  Out += "  \"per_device\": [\n";
  for (size_t I = 0; I < R.Devices.size(); ++I) {
    const DeviceResult &D = R.Devices[I];
    const PerfCounters &C = D.Counters;
    const std::string Cls = D.ClassIdx < R.ClassNames.size()
                                ? R.ClassNames[D.ClassIdx]
                                : std::to_string(D.ClassIdx);
    Out += "    {\"device\": " + std::to_string(D.Index) + ", \"class\": \"" +
           jsonEscape(Cls) + "\", \"cycles\": " + fmtDouble(C.Cycles) +
           ", \"instrs\": " + std::to_string(C.Instrs) +
           ", \"ipc\": " + fmtDouble(C.ipc()) +
           ", \"icache_misses\": " + std::to_string(C.ICacheMisses) +
           ", \"itlb_misses\": " + std::to_string(C.ITlbMisses) +
           ", \"branch_mispredicts\": " + std::to_string(C.BranchMispredicts) +
           ", \"data_page_faults\": " + std::to_string(C.DataPageFaults) +
           ", \"text_page_faults\": " + std::to_string(C.TextPageFaults) +
           ", \"fault\": \"" + jsonEscape(D.FaultMsg) + "\"}";
    Out += I + 1 < R.Devices.size() ? ",\n" : "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

Status mco::writeFleetReport(const FleetReport &R, const std::string &Path) {
  return atomicWriteFile(Path, fleetReportJson(R));
}

namespace {

/// Fills a stage's deltas and Ok flag. Metric order is fixed so verdict
/// JSON is stable.
void compareStage(StageVerdict &SV, const RegressionThresholds &Th) {
  const FleetMetrics &B = SV.Baseline;
  const FleetMetrics &C = SV.Candidate;
  auto Add = [&](const char *Name, double Base, double Cand, double ThPct,
                 bool Breach) {
    MetricDelta D;
    D.Metric = Name;
    D.Base = Base;
    D.Cand = Cand;
    D.DeltaPct = relPct(Base, Cand);
    D.ThresholdPct = ThPct;
    D.Breach = Breach;
    SV.Deltas.push_back(std::move(D));
    SV.Ok &= !Breach;
  };

  Add("cycles_p50", B.CyclesP50, C.CyclesP50, Th.CyclesP50Pct,
      relPct(B.CyclesP50, C.CyclesP50) > Th.CyclesP50Pct);
  Add("cycles_p95", B.CyclesP95, C.CyclesP95, Th.CyclesP95Pct,
      relPct(B.CyclesP95, C.CyclesP95) > Th.CyclesP95Pct);
  // IPC regresses downward; the absolute guard ignores sub-1% noise.
  Add("ipc_mean", B.IpcMean, C.IpcMean, Th.IpcDropPct,
      relPct(B.IpcMean, C.IpcMean) < -Th.IpcDropPct);
  // Count metrics get absolute floors so near-zero baselines cannot turn
  // one stray miss into a 100% "regression".
  Add("icache_miss_p50", B.ICacheMissP50, C.ICacheMissP50, Th.ICacheMissPct,
      relPct(B.ICacheMissP50, C.ICacheMissP50) > Th.ICacheMissPct &&
          C.ICacheMissP50 - B.ICacheMissP50 > 16);
  Add("data_page_faults_p50", B.DataFaultsP50, C.DataFaultsP50,
      Th.DataFaultsPct,
      relPct(B.DataFaultsP50, C.DataFaultsP50) > Th.DataFaultsPct &&
          C.DataFaultsP50 - B.DataFaultsP50 > 1);
  Add("data_page_faults_p95", B.DataFaultsP95, C.DataFaultsP95,
      Th.DataFaultsPct,
      relPct(B.DataFaultsP95, C.DataFaultsP95) > Th.DataFaultsPct &&
          C.DataFaultsP95 - B.DataFaultsP95 > 1);
  Add("text_page_faults_p50", B.TextFaultsP50, C.TextFaultsP50,
      Th.TextFaultsPct,
      relPct(B.TextFaultsP50, C.TextFaultsP50) > Th.TextFaultsPct &&
          C.TextFaultsP50 - B.TextFaultsP50 > 1);
  Add("text_page_faults_p95", B.TextFaultsP95, C.TextFaultsP95,
      Th.TextFaultsPct,
      relPct(B.TextFaultsP95, C.TextFaultsP95) > Th.TextFaultsPct &&
          C.TextFaultsP95 - B.TextFaultsP95 > 1);
}

} // namespace

RolloutVerdict mco::runStagedRollout(const Program &Baseline,
                                     const Program &Candidate,
                                     const FleetOptions &Opts,
                                     const std::vector<double> &StagePercents,
                                     const RegressionThresholds &Th,
                                     FleetReport *BaseOut,
                                     FleetReport *CandOut,
                                     const LayoutPlan *BasePlan,
                                     const LayoutPlan *CandPlan) {
  MCO_TRACE_SPAN("fleet.rollout", "fleet");
  FleetReport RB = runFleet(Baseline, Opts, BasePlan);
  FleetReport RC = runFleet(Candidate, Opts, CandPlan);

  RolloutVerdict V;
  const size_t N = RB.Devices.size();
  for (double Pct : StagePercents) {
    size_t K = static_cast<size_t>(std::llround(double(N) * Pct / 100.0));
    K = std::min(std::max<size_t>(K, 1), N);

    StageVerdict SV;
    SV.Percent = Pct;
    SV.Devices = static_cast<unsigned>(K);
    SV.Baseline = aggregateDevices(RB, K);
    SV.Candidate = aggregateDevices(RC, K);
    compareStage(SV, Th);
    const bool Ok = SV.Ok;
    V.HaltedAtPercent = Pct;
    V.Stages.push_back(std::move(SV));
    if (!Ok) {
      V.Regression = true;
      std::string Breached;
      for (const MetricDelta &D : V.Stages.back().Deltas)
        if (D.Breach) {
          if (!Breached.empty())
            Breached += ", ";
          char Buf[64];
          std::snprintf(Buf, sizeof(Buf), "%s %+.1f%% (threshold %.1f%%)",
                        D.Metric.c_str(), D.DeltaPct, D.ThresholdPct);
          Breached += Buf;
        }
      char Head[64];
      std::snprintf(Head, sizeof(Head), "halted at %.0f%% stage: ", Pct);
      V.Summary = Head + Breached;
      break;
    }
  }
  if (!V.Regression) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "clean: ramped to %.0f%% over %zu stage(s)",
                  V.HaltedAtPercent, V.Stages.size());
    V.Summary = Buf;
  }

  MetricsRegistry::global()
      .counter(V.Regression ? "fleet.rollouts_halted" : "fleet.rollouts_clean")
      .add(1);
  if (BaseOut)
    *BaseOut = std::move(RB);
  if (CandOut)
    *CandOut = std::move(RC);
  return V;
}

std::string mco::rolloutVerdictJson(const RolloutVerdict &V,
                                    const FleetOptions &Opts,
                                    const std::vector<double> &StagePercents,
                                    const RegressionThresholds &Th) {
  std::string Out = "{\n";
  Out += "  \"schema\": \"mco-fleet-verdict-v1\",\n";
  Out += "  \"seed\": " + std::to_string(Opts.Seed) + ",\n";
  Out += "  \"devices\": " + std::to_string(Opts.NumDevices) + ",\n";
  Out += "  \"stage_percents\": [";
  for (size_t I = 0; I < StagePercents.size(); ++I)
    Out += (I ? ", " : "") + fmtDouble(StagePercents[I]);
  Out += "],\n";
  Out += "  \"thresholds\": {\"cycles_p50_pct\": " + fmtDouble(Th.CyclesP50Pct) +
         ", \"cycles_p95_pct\": " + fmtDouble(Th.CyclesP95Pct) +
         ", \"data_faults_pct\": " + fmtDouble(Th.DataFaultsPct) +
         ", \"text_faults_pct\": " + fmtDouble(Th.TextFaultsPct) +
         ", \"icache_miss_pct\": " + fmtDouble(Th.ICacheMissPct) +
         ", \"ipc_drop_pct\": " + fmtDouble(Th.IpcDropPct) + "},\n";
  Out += "  \"stages\": [\n";
  for (size_t I = 0; I < V.Stages.size(); ++I) {
    const StageVerdict &S = V.Stages[I];
    Out += "    {\"percent\": " + fmtDouble(S.Percent) +
           ", \"devices\": " + std::to_string(S.Devices) +
           ", \"ok\": " + (S.Ok ? "true" : "false") + ",\n";
    Out += "     \"baseline\": " + metricsJson(S.Baseline) + ",\n";
    Out += "     \"candidate\": " + metricsJson(S.Candidate) + ",\n";
    Out += "     \"deltas\": [";
    for (size_t J = 0; J < S.Deltas.size(); ++J) {
      const MetricDelta &D = S.Deltas[J];
      Out += (J ? ", " : "") +
             ("{\"metric\": \"" + D.Metric + "\", \"base\": " +
              fmtDouble(D.Base) + ", \"cand\": " + fmtDouble(D.Cand) +
              ", \"delta_pct\": " + fmtDouble(D.DeltaPct) +
              ", \"threshold_pct\": " + fmtDouble(D.ThresholdPct) +
              ", \"breach\": " + (D.Breach ? "true" : "false") + "}");
    }
    Out += "]}";
    Out += I + 1 < V.Stages.size() ? ",\n" : "\n";
  }
  Out += "  ],\n";
  Out += std::string("  \"verdict\": \"") +
         (V.Regression ? "regression" : "ok") + "\",\n";
  Out += "  \"halted_at_percent\": " + fmtDouble(V.HaltedAtPercent) + ",\n";
  Out += "  \"summary\": \"" + jsonEscape(V.Summary) + "\"\n";
  Out += "}\n";
  return Out;
}

Status mco::writeRolloutVerdict(const RolloutVerdict &V,
                                const FleetOptions &Opts,
                                const std::vector<double> &StagePercents,
                                const RegressionThresholds &Th,
                                const std::string &Path) {
  return atomicWriteFile(Path, rolloutVerdictJson(V, Opts, StagePercents, Th));
}
