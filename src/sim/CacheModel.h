//===- sim/CacheModel.h - Microarchitectural cost models --------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The performance models behind the paper's production evaluation
/// (Section VII-B): outlining shrinks the instruction footprint (less
/// i-cache and i-TLB pressure) while adding extra call/branch instructions;
/// the Section VI regression came from global-data page faults. Each model
/// charges stall cycles on top of the base CPI.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SIM_CACHEMODEL_H
#define MCO_SIM_CACHEMODEL_H

#include "support/PageSize.h"

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mco {

/// A set-associative LRU cache keyed by address; used for the instruction
/// cache (tags only — this is a performance model, not a value cache).
class SetAssocCache {
public:
  /// \param SizeBytes total capacity. \param Assoc ways per set.
  /// \param LineBytes must be a power of two.
  SetAssocCache(uint64_t SizeBytes, unsigned Assoc, unsigned LineBytes);

  /// Touches \p Addr. \returns true on hit.
  bool access(uint64_t Addr);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  void resetStats() { Hits = Misses = 0; }

private:
  struct Way {
    uint64_t Tag = ~0ull;
    uint64_t LastUse = 0;
  };
  unsigned NumSets;
  unsigned Assoc;
  unsigned LineShift;
  std::vector<Way> Ways; // NumSets * Assoc.
  uint64_t Tick = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// A fully associative LRU TLB.
class Tlb {
public:
  Tlb(unsigned Entries, uint64_t PageBytes);

  /// Touches the page of \p Addr. \returns true on hit.
  bool access(uint64_t Addr);

  uint64_t misses() const { return Misses; }

private:
  unsigned Entries;
  unsigned PageShift;
  std::list<uint64_t> Lru; // Front = most recent.
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> Map;
  uint64_t Misses = 0;
};

/// A simple branch predictor: 2-bit counters for conditional branches, a
/// return-address stack for calls/returns, and static prediction for
/// unconditional direct branches.
class BranchPredictor {
public:
  explicit BranchPredictor(unsigned TableEntries = 4096);

  /// Conditional branch at \p Pc; \returns true if predicted correctly.
  bool predictConditional(uint64_t Pc, bool Taken);

  void pushCall(uint64_t ReturnAddr);
  /// \returns true if the return to \p ActualTarget was predicted.
  bool popReturn(uint64_t ActualTarget);

  uint64_t mispredicts() const { return Mispredicts; }

private:
  std::vector<uint8_t> Counters;
  unsigned Mask;
  std::vector<uint64_t> Ras;
  static constexpr unsigned RasDepth = 16;
  uint64_t Mispredicts = 0;
};

/// Tracks residency of global-data pages with an LRU resident set; a miss
/// is a (soft) page fault. Models the paper's Section VI data-locality
/// regression from interleaved module data.
class DataPageModel {
public:
  DataPageModel(unsigned ResidentPages, uint64_t PageBytes);

  /// Touches the page of \p Addr. \returns true on fault (page-in).
  bool access(uint64_t Addr);

  uint64_t faults() const { return Faults; }

private:
  unsigned Capacity;
  unsigned PageShift;
  std::list<uint64_t> Lru;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> Map;
  uint64_t Faults = 0;
};

/// First-touch model of text pages: code pages fault in from the binary
/// the first time any instruction on them executes and (being clean) are
/// never written back, so the startup cost is the number of *distinct*
/// pages the launch path touches — the quantity the layout strategies
/// minimize. Unlike DataPageModel there is no eviction: re-faulting clean
/// text is cheap relative to the cold first touch, and the first-touch
/// count is what a layout reordering moves.
class TextPageModel {
public:
  explicit TextPageModel(uint64_t PageBytes);

  /// Touches the page of \p Addr. \returns true on first touch (fault).
  bool access(uint64_t Addr);

  uint64_t faults() const { return Faults; }

private:
  unsigned PageShift;
  std::unordered_set<uint64_t> Touched;
  uint64_t Faults = 0;
};

/// Device/OS-dependent cost parameters. The span benches instantiate one
/// per (hardware, OS) cell of the paper's Fig. 13 heatmap.
struct PerfConfig {
  // Instruction cache.
  uint64_t ICacheBytes = 64 << 10;
  unsigned ICacheAssoc = 4;
  unsigned ICacheLineBytes = 64;
  unsigned ICacheMissCycles = 14;
  // Instruction TLB.
  unsigned ITlbEntries = 48;
  uint64_t ITlbPageBytes = TextPageBytes16K;
  unsigned ITlbMissCycles = 30;
  // Branches.
  unsigned BranchTableEntries = 4096;
  unsigned BranchMissCycles = 12;
  // Global-data paging.
  unsigned DataResidentPages = 64;
  uint64_t DataPageBytes = TextPageBytes16K;
  unsigned DataFaultCycles = 3000;
  // Text paging (first-touch; see TextPageModel). TextFaultCycles
  // defaults to 0 so pre-existing cycle models are unchanged; the fleet
  // device classes opt in.
  uint64_t TextPageBytes = TextPageBytes16K;
  unsigned TextFaultCycles = 0;
  // Base cost per instruction (inverse superscalar width).
  double BaseCyclesPerInstr = 0.5;
  // Correctly-predicted direct branches, calls, and returns are folded in
  // the front end of modern out-of-order cores and consume (almost) no
  // issue slots — the paper's Section VII-E3: "Outlined branches are
  // predictable by modern hardware, and the cost is largely hidden in the
  // pipeline." The outliner's extra BL/RET pairs are therefore nearly
  // free when predicted.
  double FoldedBranchCycles = 0.4;
};

/// Aggregated performance counters for one simulation run.
struct PerfCounters {
  uint64_t Instrs = 0;
  uint64_t ICacheMisses = 0;
  uint64_t ITlbMisses = 0;
  uint64_t BranchMispredicts = 0;
  uint64_t DataPageFaults = 0;
  uint64_t TextPageFaults = 0;
  double Cycles = 0;
  uint64_t OutlinedInstrs = 0;

  double ipc() const { return Cycles > 0 ? double(Instrs) / Cycles : 0; }
};

} // namespace mco

#endif // MCO_SIM_CACHEMODEL_H
