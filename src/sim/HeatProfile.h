//===- sim/HeatProfile.h - Per-function execution-heat profiles -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile format feeding the outliner's hot/cold cost model: per-
/// function execution heat (call counts, retired instructions, modeled
/// cycles) aggregated across every simulated device of a fleet run. The
/// paper concedes outlining is latency-hostile when it lands in hot code
/// (call overhead plus worse i-cache locality); this profile is how the
/// build knows where "hot" is.
///
/// Functions are named symbolically (not by address or index), so a
/// profile captured from one build can steer the outliner of a later
/// build as long as symbol names persist — the same contract
/// `mco-traces-v1` layout profiles rely on. Serialized as `mco-heat-v1`
/// JSON (`mco-fleet --emit-heat`, consumed by
/// `mco-build --profile-heat FILE --hot-threshold PCT`), with a
/// validating loader per the input-boundary discipline: bounds-checked
/// parse, overflow-checked numbers, a FormatValidator pass before any
/// consumer touches the data.
///
/// This lives in the sim library: the interpreter produces the raw
/// per-function costs (HeatRecorder), and both mco_telemetry (fleet
/// aggregation) and mco_outliner (cost model) already link mco_sim.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SIM_HEATPROFILE_H
#define MCO_SIM_HEATPROFILE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mco {

/// One function's aggregated heat across the fleet.
struct FunctionHeat {
  std::string Name;
  uint64_t Calls = 0;  ///< Entries (calls into the function).
  uint64_t Instrs = 0; ///< Instructions retired inside it.
  uint64_t Cycles = 0; ///< Modeled cycles attributed to it (rounded).
};

/// A whole fleet's worth of per-function heat. Canonical form (what the
/// validator enforces and the writer emits): Functions strictly ascending
/// by name, so the serialization is deterministic and diffs are stable.
struct HeatProfile {
  /// Devices aggregated into the totals (observability; not consumed).
  uint64_t Devices = 0;
  std::vector<FunctionHeat> Functions;

  uint64_t totalCycles() const;
};

/// Deterministic `mco-heat-v1` JSON rendering.
std::string heatProfileJson(const HeatProfile &P);

/// Atomically writes heatProfileJson to \p Path.
Status writeHeatProfile(const HeatProfile &P, const std::string &Path);

/// The `mco-heat-v1` FormatValidator pass: size caps, per-counter value
/// caps (so totals can never wrap), non-empty names in strictly ascending
/// order. parseHeatProfile runs it on everything it parses; exposed
/// separately so synthetic profiles can be checked before use.
Status validateHeatProfile(const HeatProfile &P);

/// Parses an `mco-heat-v1` JSON document with a bounds-checked reader;
/// all failures are CorruptInput with byte offsets.
Expected<HeatProfile> parseHeatProfile(const std::string &Json);

/// Reads and parses an `mco-heat-v1` file.
Expected<HeatProfile> readHeatProfile(const std::string &Path);

/// The outliner's view of a function's heat. Warm is the default (profile
/// present but unremarkable): outlining behaves exactly as it would
/// profile-free. Hot functions are never outlined from; cold functions
/// may be outlined more aggressively.
enum class HeatClass : uint8_t { Warm = 0, Cold = 1, Hot = 2 };

/// "warm" | "cold" | "hot".
const char *heatClassName(HeatClass C);

/// Classifies every profiled function by cycle percentile.
/// \p HotThresholdPct in (0, 100]: among functions that executed
/// (Cycles > 0), the top (100 - PCT)% by cycle count — ties broken by
/// name — are Hot; the rest are Warm. Functions with zero recorded cycles
/// are Cold. PCT == 100 makes the hot set empty (outline everything);
/// PCT == 0 means "heat disabled" and callers must not classify at all.
/// Functions absent from the returned map never executed on any device:
/// consumers treat them as Cold.
std::unordered_map<std::string, HeatClass>
classifyHeat(const HeatProfile &P, unsigned HotThresholdPct);

/// Records one device's per-function heat during simulation. The
/// interpreter calls the record hooks with *image function indices*; the
/// fleet harness converts those to symbolic names afterwards. Cycles
/// accumulate as double (the interpreter's cycle counter is fractional)
/// and are rounded once at profile-build time. Recording is deterministic
/// and never changes execution or the modeled cycles.
class HeatRecorder {
public:
  void recordEntry(uint32_t FuncIdx) {
    grow(FuncIdx);
    ++CallsV[FuncIdx];
  }

  /// Charges \p Instrs retired instructions and \p Cycles modeled cycles
  /// to \p FuncIdx. The interpreter attributes the cost of instructions
  /// executed inside outlined functions to the innermost non-outlined
  /// caller, so heat lands on the function a human (and the outliner's
  /// hot-suppression) can act on.
  void recordCost(uint32_t FuncIdx, uint64_t Instrs, double Cycles) {
    grow(FuncIdx);
    InstrsV[FuncIdx] += Instrs;
    CyclesV[FuncIdx] += Cycles;
  }

  size_t size() const { return CallsV.size(); }
  uint64_t calls(size_t I) const { return CallsV[I]; }
  uint64_t instrs(size_t I) const { return InstrsV[I]; }
  double cycles(size_t I) const { return CyclesV[I]; }

private:
  void grow(uint32_t FuncIdx) {
    if (FuncIdx >= CallsV.size()) {
      CallsV.resize(FuncIdx + 1, 0);
      InstrsV.resize(FuncIdx + 1, 0);
      CyclesV.resize(FuncIdx + 1, 0.0);
    }
  }

  std::vector<uint64_t> CallsV;
  std::vector<uint64_t> InstrsV;
  std::vector<double> CyclesV;
};

} // namespace mco

#endif // MCO_SIM_HEATPROFILE_H
