//===- sim/Interpreter.h - Machine-code interpreter -------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a laid-out BinaryImage instruction by instruction, with full
/// semantics for every opcode, a reference-counting runtime
/// (swift_retain/release, swift_allocObject) for the language idioms the
/// paper analyzes, and optional microarchitectural cost models. Because
/// execution is address-based, outlined code runs exactly as transformed —
/// the test suite uses this to prove outlining preserves program behaviour
/// at every repeat count.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SIM_INTERPRETER_H
#define MCO_SIM_INTERPRETER_H

#include "linker/Linker.h"
#include "linker/StartupTrace.h"
#include "sim/CacheModel.h"
#include "sim/HeatProfile.h"
#include "sim/Memory.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mco {

/// Executes code from a BinaryImage.
class Interpreter {
public:
  /// \param Perf when non-null, attaches i-cache/i-TLB/branch/data-page
  ///        models with the given parameters; counters() then reports
  ///        modeled cycles.
  Interpreter(const BinaryImage &Image, const Program &Prog,
              const PerfConfig *Perf = nullptr);

  /// Calls \p FnName with up to 8 integer arguments; \returns x0.
  /// Aborts the process on simulated faults or fuel exhaustion.
  int64_t call(const std::string &FnName,
               const std::vector<int64_t> &Args = {});

  /// Like call(), but simulated faults (bad memory access, undefined call
  /// target, fuel exhaustion, ...) return an error Status instead of
  /// aborting, so possibly-corrupt code can be executed safely. The fault
  /// message is deterministic for a deterministic execution, which the
  /// guard's pre/post differential check relies on.
  Expected<int64_t> tryCall(const std::string &FnName,
                            const std::vector<int64_t> &Args = {});

  /// Cumulative counters over every call() so far.
  const PerfCounters &counters() const { return Counters; }

  /// The memory (exposed so tests can inspect heap/global state).
  Memory &memory() { return Mem; }

  /// Instruction budget per call() (guards against runaway loops).
  void setFuel(uint64_t MaxInstrs) { Fuel = MaxInstrs; }

  /// Attaches a startup-trace recorder (see linker/StartupTrace.h): the
  /// interpreter reports function entries and caller->callee edges by
  /// image function index, and — when the performance model is on —
  /// first-touch text pages. Recording never changes execution or the
  /// modeled cycles. Pass nullptr to detach.
  void setTraceRecorder(StartupTraceRecorder *R) { TraceRec = R; }

  /// Attaches a per-function heat recorder (see sim/HeatProfile.h): the
  /// interpreter reports entries and charges each executed instruction's
  /// retired count + modeled cycles to a function, by image function
  /// index. Cost inside outlined functions is attributed to the innermost
  /// non-outlined caller (the function the outliner's hot-suppression can
  /// act on). Recording never changes execution or the modeled cycles.
  /// Pass nullptr to detach.
  void setHeatRecorder(HeatRecorder *R) { HeatRec = R; }

private:
  enum class Builtin {
    None,
    SwiftRetain,
    SwiftRelease,
    ObjcRetain,
    ObjcRelease,
    SwiftAllocObject,
    SwiftDeallocObject,
    Malloc,
    Free,
  };

  Builtin builtinFor(uint32_t Sym) const;
  void runBuiltin(Builtin B);
  /// Throws SimFault in trap mode; prints and aborts otherwise.
  [[noreturn]] void fault(const std::string &Msg) const;
  uint64_t readReg(Reg R) const;
  void writeReg(Reg R, uint64_t V);
  void setFlagsSub(uint64_t A, uint64_t B);
  bool condHolds(Cond C) const;
  void execute(uint64_t EntryAddr);
  void chargeFetch(uint64_t Pc);
  void chargeDataAccess(uint64_t Addr);
  void chargeBranchPenalty();
  void foldPredictedBranch();

  const BinaryImage &Image;
  const Program &Prog;
  Memory Mem;

  uint64_t Regs[34] = {};
  bool FlagN = false, FlagZ = false, FlagC = false, FlagV = false;

  /// Records a control transfer into the function at \p TargetAddr (0 =
  /// not a laid-out function entry, ignored) from \p CallerIdx.
  void traceCallTo(uint64_t TargetAddr, uint32_t CallerIdx);

  std::unique_ptr<SetAssocCache> ICache;
  std::unique_ptr<Tlb> ITlb;
  std::unique_ptr<BranchPredictor> Branches;
  std::unique_ptr<DataPageModel> DataPages;
  std::unique_ptr<TextPageModel> TextPages;
  StartupTraceRecorder *TraceRec = nullptr;
  HeatRecorder *HeatRec = nullptr;
  PerfConfig Config;
  bool PerfEnabled = false;
  PerfCounters Counters;

  uint64_t Fuel = 2'000'000'000ull;
  /// True while inside tryCall (simulated faults throw instead of abort).
  bool TrapMode = false;

  /// Ring buffer of recently executed PCs, reported on simulated faults.
  static constexpr unsigned TraceDepth = 64;
  uint64_t TraceRing[TraceDepth] = {};
  unsigned TraceHead = 0;
  void reportFaultTrace() const;

  static constexpr uint64_t ReturnSentinel = 0xDEAD00000000ull;
  /// Cost charged for a runtime builtin, in instructions.
  static constexpr unsigned BuiltinInstrCost = 8;
};

} // namespace mco

#endif // MCO_SIM_INTERPRETER_H
