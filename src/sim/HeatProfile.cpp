//===- sim/HeatProfile.cpp - Per-function execution-heat profiles ---------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/HeatProfile.h"

#include "support/FileAtomics.h"
#include "support/FormatValidator.h"
#include "support/JsonCursor.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace mco;

namespace {

/// Caps on any counter a legitimate profile can carry: 2^56 cycles is
/// ~2 years of simulated time, and capping per-function values means the
/// totals of a maximally-sized profile cannot wrap uint64.
constexpr uint64_t HeatMaxCounter = 1ull << 56;
constexpr uint64_t HeatMaxFunctions = 1u << 20;
constexpr uint64_t HeatMaxDevices = 1u << 16;

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  return Out;
}

} // namespace

uint64_t HeatProfile::totalCycles() const {
  uint64_t N = 0;
  for (const FunctionHeat &F : Functions)
    N += F.Cycles;
  return N;
}

std::string mco::heatProfileJson(const HeatProfile &P) {
  std::string Out = "{\n";
  Out += "  \"schema\": \"mco-heat-v1\",\n";
  Out += "  \"devices\": " + std::to_string(P.Devices) + ",\n";
  Out += "  \"functions\": [";
  for (size_t I = 0; I < P.Functions.size(); ++I) {
    const FunctionHeat &F = P.Functions[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "[\"" + jsonEscape(F.Name) + "\", " + std::to_string(F.Calls) +
           ", " + std::to_string(F.Instrs) + ", " + std::to_string(F.Cycles) +
           "]";
  }
  Out += P.Functions.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

Status mco::writeHeatProfile(const HeatProfile &P, const std::string &Path) {
  return atomicWriteFile(Path, heatProfileJson(P));
}

Status mco::validateHeatProfile(const HeatProfile &P) {
  if (Status S = validate::countWithin(P.Functions.size(), HeatMaxFunctions,
                                       "heat function");
      !S.ok())
    return S;
  if (Status S = validate::countWithin(P.Devices, HeatMaxDevices,
                                       "heat device");
      !S.ok())
    return S;
  for (size_t I = 0; I < P.Functions.size(); ++I) {
    const FunctionHeat &F = P.Functions[I];
    if (F.Name.empty())
      return MCO_CORRUPT("heat function " + std::to_string(I) +
                         ": empty name");
    // Canonical order doubles as the uniqueness check: a duplicated or
    // shuffled function list is damage (or a splice), not data.
    if (I > 0 && !(P.Functions[I - 1].Name < F.Name))
      return MCO_CORRUPT("heat function " + std::to_string(I) + " ('" +
                         F.Name + "'): names not strictly ascending");
    if (Status S = validate::countWithin(F.Calls, HeatMaxCounter,
                                         "heat calls");
        !S.ok())
      return S;
    if (Status S = validate::countWithin(F.Instrs, HeatMaxCounter,
                                         "heat instrs");
        !S.ok())
      return S;
    if (Status S = validate::countWithin(F.Cycles, HeatMaxCounter,
                                         "heat cycles");
        !S.ok())
      return S;
  }
  return Status::success();
}

Expected<HeatProfile> mco::parseHeatProfile(const std::string &Json) {
  HeatProfile P;
  std::string Schema;
  JsonCursor C(Json, "heat JSON");

  Status St = C.parseObject([&](const std::string &Key) -> Status {
    if (Key == "schema")
      return C.parseString(Schema);
    if (Key == "devices")
      return C.parseUInt(P.Devices);
    if (Key == "functions")
      return C.parseArray([&]() -> Status {
        FunctionHeat F;
        if (Status S2 = C.expect('['); !S2.ok())
          return S2;
        if (Status S2 = C.parseString(F.Name); !S2.ok())
          return S2;
        if (Status S2 = C.expect(','); !S2.ok())
          return S2;
        if (Status S2 = C.parseUInt(F.Calls); !S2.ok())
          return S2;
        if (Status S2 = C.expect(','); !S2.ok())
          return S2;
        if (Status S2 = C.parseUInt(F.Instrs); !S2.ok())
          return S2;
        if (Status S2 = C.expect(','); !S2.ok())
          return S2;
        if (Status S2 = C.parseUInt(F.Cycles); !S2.ok())
          return S2;
        if (Status S2 = C.expect(']'); !S2.ok())
          return S2;
        P.Functions.push_back(std::move(F));
        return Status::success();
      });
    return C.skipValue();
  });
  if (!St.ok())
    return St;

  if (Schema != "mco-heat-v1")
    return MCO_CORRUPT("heat JSON: unsupported schema '" + Schema +
                       "' (want mco-heat-v1)");
  // FormatValidator pass before any consumer classifies with this data.
  if (Status V = validateHeatProfile(P); !V.ok())
    return V;
  return P;
}

Expected<HeatProfile> mco::readHeatProfile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return MCO_CORRUPT("cannot open heat file '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Expected<HeatProfile> P = parseHeatProfile(Buf.str());
  if (!P.ok())
    return MCO_ERROR_CODE(P.status().code(),
                          "'" + Path + "': " + P.status().message());
  return P;
}

const char *mco::heatClassName(HeatClass C) {
  switch (C) {
  case HeatClass::Warm:
    return "warm";
  case HeatClass::Cold:
    return "cold";
  case HeatClass::Hot:
    return "hot";
  }
  return "warm";
}

std::unordered_map<std::string, HeatClass>
mco::classifyHeat(const HeatProfile &P, unsigned HotThresholdPct) {
  std::unordered_map<std::string, HeatClass> M;
  if (HotThresholdPct == 0 || HotThresholdPct > 100)
    return M; // Heat disabled; callers gate before classifying.
  std::vector<const FunctionHeat *> Executed;
  Executed.reserve(P.Functions.size());
  for (const FunctionHeat &F : P.Functions) {
    if (F.Cycles == 0)
      M.emplace(F.Name, HeatClass::Cold);
    else
      Executed.push_back(&F);
  }
  // Cycle-percentile over the functions that actually executed: the top
  // (100 - PCT)% by cycles are Hot. Name tiebreak keeps the cut
  // deterministic under equal cycle counts.
  std::sort(Executed.begin(), Executed.end(),
            [](const FunctionHeat *A, const FunctionHeat *B) {
              if (A->Cycles != B->Cycles)
                return A->Cycles > B->Cycles;
              return A->Name < B->Name;
            });
  const size_t NumHot = Executed.size() * (100 - HotThresholdPct) / 100;
  for (size_t I = 0; I < Executed.size(); ++I)
    M.emplace(Executed[I]->Name,
              I < NumHot ? HeatClass::Hot : HeatClass::Warm);
  return M;
}
