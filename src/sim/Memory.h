//===- sim/Memory.h - Segmented simulated memory ----------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated address space: a stack segment (grows down), the global
/// data segment (initialized from the BinaryImage), and a heap segment with
/// a bump allocator plus size-bucketed free lists for the reference-counting
/// runtime (swift_allocObject / swift_release).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SIM_MEMORY_H
#define MCO_SIM_MEMORY_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace mco {

class BinaryImage;
class Program;

/// A simulated fault (bad memory access, heap misuse, invalid control
/// transfer, fuel exhaustion) raised instead of aborting the process when
/// trap mode is on — the guard's differential-execution checks run
/// possibly-corrupt code and must survive its crashes.
class SimFault : public std::runtime_error {
public:
  explicit SimFault(const std::string &What) : std::runtime_error(What) {}
};

/// Byte-addressable memory with three segments.
class Memory {
public:
  static constexpr uint64_t StackTop = 0x7FF000000000ull;
  static constexpr uint64_t StackBytes = 8ull << 20; // 8 MiB
  static constexpr uint64_t HeapBase = 0x600000000000ull;
  static constexpr uint64_t HeapBytes = 64ull << 20; // 64 MiB

  /// Initializes the data segment from the image's global initializers.
  Memory(const BinaryImage &Image, const Program &Prog);

  uint64_t read64(uint64_t Addr) const;
  void write64(uint64_t Addr, uint64_t Value);

  /// Bump/free-list allocation. \returns the address of \p Bytes of
  /// zeroed storage.
  uint64_t heapAlloc(uint64_t Bytes);
  /// Returns \p Addr (from heapAlloc) to the allocator.
  void heapFree(uint64_t Addr);

  /// \returns true if \p Addr lies in the global-data segment; used by the
  /// data-page model, which only tracks globals (the paper's Section VI
  /// regression was about global data affinity).
  bool isGlobalData(uint64_t Addr) const {
    return Addr >= DataBase && Addr < DataBase + DataSeg.size();
  }

  uint64_t stackLimit() const { return StackTop - StackBytes; }
  uint64_t liveHeapBytes() const { return LiveHeapBytes; }

  /// Called (if set) before aborting on a simulated memory fault, so the
  /// interpreter can report the faulting instruction.
  void setFaultHook(void (*Hook)(void *), void *Ctx) {
    FaultHook = Hook;
    FaultCtx = Ctx;
  }

  /// When on, simulated faults throw SimFault instead of printing a trace
  /// and aborting the process.
  void setTrapOnFault(bool On) { TrapOnFault = On; }

private:
  uint8_t *resolve(uint64_t Addr, uint64_t Size);
  const uint8_t *resolve(uint64_t Addr, uint64_t Size) const {
    return const_cast<Memory *>(this)->resolve(Addr, Size);
  }

  std::vector<uint8_t> StackSeg;
  std::vector<uint8_t> DataSeg;
  std::vector<uint8_t> HeapSeg;
  uint64_t DataBase = 0;
  uint64_t HeapBump = 0;
  uint64_t LiveHeapBytes = 0;
  /// Size-bucketed free lists (size -> addresses).
  std::unordered_map<uint64_t, std::vector<uint64_t>> FreeLists;
  /// Allocation sizes for heapFree.
  std::unordered_map<uint64_t, uint64_t> AllocSizes;
  void (*FaultHook)(void *) = nullptr;
  void *FaultCtx = nullptr;
  bool TrapOnFault = false;
};

} // namespace mco

#endif // MCO_SIM_MEMORY_H
