//===- sim/Memory.cpp - Segmented simulated memory ------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Memory.h"

#include "linker/Linker.h"

#include <cassert>
#include <cstring>

using namespace mco;

Memory::Memory(const BinaryImage &Image, const Program &Prog) {
  (void)Prog;
  StackSeg.assign(StackBytes, 0);
  HeapSeg.assign(HeapBytes, 0);
  DataBase = Image.dataBase();
  DataSeg.assign(Image.dataSize(), 0);
  for (const BinaryImage::DataEntry &E : Image.dataEntries()) {
    uint64_t Off = E.Addr - DataBase;
    // Invariant, not input validation: the linker computed both the entry
    // addresses and the segment size from the same layout walk, so an
    // overflow here is a linker bug. Untrusted bytes never reach this
    // path — they are rejected by the artifact validator before a Program
    // exists.
    assert(Off + E.G->Bytes.size() <= DataSeg.size() && "data overflows");
    std::memcpy(DataSeg.data() + Off, E.G->Bytes.data(), E.G->Bytes.size());
  }
}

uint8_t *Memory::resolve(uint64_t Addr, uint64_t Size) {
  if (Addr >= StackTop - StackBytes && Addr + Size <= StackTop)
    return StackSeg.data() + (Addr - (StackTop - StackBytes));
  if (Addr >= HeapBase && Addr + Size <= HeapBase + HeapBytes)
    return HeapSeg.data() + (Addr - HeapBase);
  if (!DataSeg.empty() && Addr >= DataBase &&
      Addr + Size <= DataBase + DataSeg.size())
    return DataSeg.data() + (Addr - DataBase);
  // Every untrusted-input path executes under tryCall, which sets
  // TrapOnFault and turns this into a recoverable SimFault. The abort
  // below is only reachable from trusted internal callers (benchmarks,
  // verifier-checked fixtures) where a wild access is a simulator bug.
  if (TrapOnFault)
    throw SimFault("memory fault: access of " + std::to_string(Size) +
                   " bytes at address " + std::to_string(Addr));
  std::fprintf(stderr,
               "simulated memory fault: access of %llu bytes at 0x%llx\n",
               static_cast<unsigned long long>(Size),
               static_cast<unsigned long long>(Addr));
  if (FaultHook)
    FaultHook(FaultCtx);
  std::abort();
}

uint64_t Memory::read64(uint64_t Addr) const {
  uint64_t V;
  std::memcpy(&V, resolve(Addr, 8), 8);
  return V;
}

void Memory::write64(uint64_t Addr, uint64_t Value) {
  std::memcpy(resolve(Addr, 8), &Value, 8);
}

uint64_t Memory::heapAlloc(uint64_t Bytes) {
  if (Bytes == 0)
    Bytes = 8;
  Bytes = (Bytes + 15) & ~uint64_t(15);

  uint64_t Addr;
  auto It = FreeLists.find(Bytes);
  if (It != FreeLists.end() && !It->second.empty()) {
    Addr = It->second.back();
    It->second.pop_back();
  } else {
    if (HeapBump + Bytes > HeapBytes) {
      // Trap-gated like resolve(): untrusted code runs with TrapOnFault
      // set and degrades; the abort is for trusted internal runs only.
      if (TrapOnFault)
        throw SimFault("heap exhausted");
      std::fprintf(stderr, "simulated heap exhausted\n");
      std::abort();
    }
    Addr = HeapBase + HeapBump;
    HeapBump += Bytes;
  }
  std::memset(HeapSeg.data() + (Addr - HeapBase), 0, Bytes);
  AllocSizes[Addr] = Bytes;
  LiveHeapBytes += Bytes;
  return Addr;
}

void Memory::heapFree(uint64_t Addr) {
  auto It = AllocSizes.find(Addr);
  if (It == AllocSizes.end()) {
    // Trap-gated like resolve(): untrusted code runs with TrapOnFault
    // set and degrades; the abort is for trusted internal runs only.
    if (TrapOnFault)
      throw SimFault("bad free of address " + std::to_string(Addr));
    std::fprintf(stderr, "simulated heap: bad free of 0x%llx\n",
                 static_cast<unsigned long long>(Addr));
    std::abort();
  }
  LiveHeapBytes -= It->second;
  FreeLists[It->second].push_back(Addr);
  AllocSizes.erase(It);
}
