//===- sim/Interpreter.cpp - Machine-code interpreter ---------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"

#include "mir/MIRPrinter.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace mco;

namespace {

/// Renders \p Sym without assuming it is interned: modules verified mid
/// fan-out carry placeholder ids outside the program's pool.
std::string safeSymName(const Program &Prog, uint32_t Sym) {
  if (Sym < Prog.numSymbols())
    return Prog.symbolName(Sym);
  return "<sym#" + std::to_string(Sym) + ">";
}

} // namespace

void Interpreter::fault(const std::string &Msg) const {
  // tryCall sets TrapMode around every untrusted execution, so input-
  // triggered faults surface as a recoverable SimFault; the abort below
  // fires only for trusted internal callers using call(), where a fault
  // means the simulator or a generator is broken.
  if (TrapMode)
    throw SimFault(Msg);
  std::fprintf(stderr, "interpreter: %s\n", Msg.c_str());
  std::abort();
}

void Interpreter::reportFaultTrace() const {
  std::fprintf(stderr, "last executed instructions (oldest first):\n");
  for (unsigned I = 0; I < TraceDepth; ++I) {
    uint64_t Pc = TraceRing[(TraceHead + I) % TraceDepth];
    const MachineInstr *MI = Image.instrAt(Pc);
    if (!MI)
      continue;
    const uint32_t FuncIdx = Image.functionIndexAt(Pc);
    std::fprintf(stderr, "  0x%" PRIx64 "  %-28s %s\n", Pc,
                 Prog.symbolName(Image.funcs()[FuncIdx].MF->Name).c_str(),
                 printInstr(*MI, Prog).c_str());
  }
  for (unsigned I = 0; I < 34; ++I)
    std::fprintf(stderr, "  %s = 0x%" PRIx64 "\n", regName(regFromIndex(I)),
                 Regs[I]);
}

Interpreter::Interpreter(const BinaryImage &Image, const Program &Prog,
                         const PerfConfig *Perf)
    : Image(Image), Prog(Prog), Mem(Image, Prog) {
  Mem.setFaultHook(
      [](void *Ctx) {
        static_cast<const Interpreter *>(Ctx)->reportFaultTrace();
      },
      this);
  if (Perf) {
    PerfEnabled = true;
    Config = *Perf;
    ICache = std::make_unique<SetAssocCache>(
        Config.ICacheBytes, Config.ICacheAssoc, Config.ICacheLineBytes);
    ITlb = std::make_unique<Tlb>(Config.ITlbEntries, Config.ITlbPageBytes);
    Branches = std::make_unique<BranchPredictor>(Config.BranchTableEntries);
    DataPages = std::make_unique<DataPageModel>(Config.DataResidentPages,
                                                Config.DataPageBytes);
    TextPages = std::make_unique<TextPageModel>(Config.TextPageBytes);
  }
}

void Interpreter::traceCallTo(uint64_t TargetAddr, uint32_t CallerIdx) {
  if ((!TraceRec && !HeatRec) || TargetAddr == 0 || !Image.instrAt(TargetAddr))
    return;
  const uint32_t CalleeIdx = Image.functionIndexAt(TargetAddr);
  if (Image.funcs()[CalleeIdx].Addr != TargetAddr)
    return; // A mid-function target is not a function entry.
  if (TraceRec) {
    TraceRec->recordEntry(CalleeIdx);
    TraceRec->recordCall(CallerIdx, CalleeIdx);
  }
  if (HeatRec)
    HeatRec->recordEntry(CalleeIdx);
}

uint64_t Interpreter::readReg(Reg R) const {
  if (R == Reg::XZR)
    return 0;
  return Regs[regIndex(R)];
}

void Interpreter::writeReg(Reg R, uint64_t V) {
  if (R == Reg::XZR)
    return;
  Regs[regIndex(R)] = V;
}

void Interpreter::setFlagsSub(uint64_t A, uint64_t B) {
  uint64_t R = A - B;
  FlagN = (R >> 63) & 1;
  FlagZ = R == 0;
  FlagC = A >= B; // No borrow.
  // Signed overflow: operands differ in sign and result sign != A's sign.
  FlagV = (((A ^ B) & (A ^ R)) >> 63) & 1;
}

bool Interpreter::condHolds(Cond C) const {
  switch (C) {
  case Cond::EQ: return FlagZ;
  case Cond::NE: return !FlagZ;
  case Cond::LT: return FlagN != FlagV;
  case Cond::GE: return FlagN == FlagV;
  case Cond::GT: return !FlagZ && FlagN == FlagV;
  case Cond::LE: return FlagZ || FlagN != FlagV;
  case Cond::LO: return !FlagC;
  case Cond::HS: return FlagC;
  }
  return false;
}

Interpreter::Builtin Interpreter::builtinFor(uint32_t Sym) const {
  if (Sym >= Prog.numSymbols())
    return Builtin::None;
  const std::string &N = Prog.symbolName(Sym);
  if (N == "swift_retain")
    return Builtin::SwiftRetain;
  if (N == "swift_release")
    return Builtin::SwiftRelease;
  if (N == "objc_retain")
    return Builtin::ObjcRetain;
  if (N == "objc_release")
    return Builtin::ObjcRelease;
  if (N == "swift_allocObject")
    return Builtin::SwiftAllocObject;
  if (N == "swift_deallocObject")
    return Builtin::SwiftDeallocObject;
  if (N == "malloc")
    return Builtin::Malloc;
  if (N == "free")
    return Builtin::Free;
  return Builtin::None;
}

void Interpreter::runBuiltin(Builtin B) {
  uint64_t X0 = Regs[0];
  switch (B) {
  case Builtin::SwiftRetain:
  case Builtin::ObjcRetain:
    if (X0 != 0)
      Mem.write64(X0, Mem.read64(X0) + 1);
    // Returns the object in x0 (unchanged).
    break;
  case Builtin::SwiftRelease:
  case Builtin::ObjcRelease:
    if (X0 != 0) {
      uint64_t RC = Mem.read64(X0);
      if (RC <= 1)
        Mem.heapFree(X0);
      else
        Mem.write64(X0, RC - 1);
    }
    Regs[0] = 0;
    break;
  case Builtin::SwiftAllocObject: {
    // (metadata, size, alignMask) per the Swift runtime; refcount word at
    // offset 0, payload from offset 8.
    uint64_t Size = Regs[1] < 16 ? 16 : Regs[1];
    uint64_t Obj = Mem.heapAlloc(Size);
    Mem.write64(Obj, 1);
    Regs[0] = Obj;
    break;
  }
  case Builtin::SwiftDeallocObject:
    if (X0 != 0)
      Mem.heapFree(X0);
    Regs[0] = 0;
    break;
  case Builtin::Malloc:
    Regs[0] = Mem.heapAlloc(X0);
    break;
  case Builtin::Free:
    if (X0 != 0)
      Mem.heapFree(X0);
    Regs[0] = 0;
    break;
  case Builtin::None:
    break;
  }
  Counters.Instrs += BuiltinInstrCost;
  if (PerfEnabled)
    Counters.Cycles += BuiltinInstrCost * Config.BaseCyclesPerInstr;
}

void Interpreter::chargeFetch(uint64_t Pc) {
  ++Counters.Instrs;
  if (!PerfEnabled)
    return;
  Counters.Cycles += Config.BaseCyclesPerInstr;
  if (!ICache->access(Pc)) {
    ++Counters.ICacheMisses;
    Counters.Cycles += Config.ICacheMissCycles;
  }
  if (!ITlb->access(Pc)) {
    ++Counters.ITlbMisses;
    Counters.Cycles += Config.ITlbMissCycles;
  }
  if (TextPages->access(Pc)) {
    ++Counters.TextPageFaults;
    Counters.Cycles += Config.TextFaultCycles;
    if (TraceRec)
      TraceRec->recordPageTouch((Pc - BinaryImage::TextBase) /
                                Config.TextPageBytes);
  }
}

void Interpreter::chargeDataAccess(uint64_t Addr) {
  if (!PerfEnabled)
    return;
  if (Mem.isGlobalData(Addr) && DataPages->access(Addr)) {
    ++Counters.DataPageFaults;
    Counters.Cycles += Config.DataFaultCycles;
  }
}

void Interpreter::chargeBranchPenalty() {
  if (!PerfEnabled)
    return;
  Counters.Cycles += Config.BranchMissCycles;
}

void Interpreter::foldPredictedBranch() {
  if (!PerfEnabled)
    return;
  // Refund the base issue cost charged at fetch; a predicted branch is
  // folded in the front end (see PerfConfig::FoldedBranchCycles).
  Counters.Cycles += Config.FoldedBranchCycles - Config.BaseCyclesPerInstr;
}

int64_t Interpreter::call(const std::string &FnName,
                          const std::vector<int64_t> &Args) {
  uint32_t Sym = Prog.lookupSymbol(FnName);
  if (Sym == UINT32_MAX || Image.functionAddr(Sym) == 0) {
    // call() is the trusted-caller entry: the callee name is a compile-
    // time constant in benchmarks and tests, never input. Tools loading
    // untrusted modules go through tryCall, which returns Status instead.
    std::fprintf(stderr, "interpreter: no such function '%s'\n",
                 FnName.c_str());
    std::abort();
  }
  // Caller-contract invariant (tryCall validates the same bound and
  // returns Status for input-derived argument lists).
  assert(Args.size() <= 8 && "at most 8 register arguments");
  for (unsigned I = 0; I < 34; ++I)
    Regs[I] = 0;
  for (size_t I = 0; I < Args.size(); ++I)
    Regs[I] = static_cast<uint64_t>(Args[I]);
  Regs[regIndex(Reg::SP)] = Memory::StackTop - 64;
  Regs[regIndex(LR)] = ReturnSentinel;
  if (TraceRec)
    TraceRec->recordEntry(Image.functionIndexAt(Image.functionAddr(Sym)));
  if (HeatRec)
    HeatRec->recordEntry(Image.functionIndexAt(Image.functionAddr(Sym)));
  execute(Image.functionAddr(Sym));
  return static_cast<int64_t>(Regs[0]);
}

Expected<int64_t> Interpreter::tryCall(const std::string &FnName,
                                       const std::vector<int64_t> &Args) {
  uint32_t Sym = Prog.lookupSymbol(FnName);
  if (Sym == UINT32_MAX || Image.functionAddr(Sym) == 0)
    return MCO_ERROR("no such function '" + FnName + "'");
  if (Args.size() > 8)
    return MCO_ERROR("at most 8 register arguments");
  for (unsigned I = 0; I < 34; ++I)
    Regs[I] = 0;
  for (size_t I = 0; I < Args.size(); ++I)
    Regs[I] = static_cast<uint64_t>(Args[I]);
  Regs[regIndex(Reg::SP)] = Memory::StackTop - 64;
  Regs[regIndex(LR)] = ReturnSentinel;
  if (TraceRec)
    TraceRec->recordEntry(Image.functionIndexAt(Image.functionAddr(Sym)));
  if (HeatRec)
    HeatRec->recordEntry(Image.functionIndexAt(Image.functionAddr(Sym)));
  TrapMode = true;
  Mem.setTrapOnFault(true);
  try {
    execute(Image.functionAddr(Sym));
  } catch (const SimFault &F) {
    TrapMode = false;
    Mem.setTrapOnFault(false);
    return MCO_ERROR(std::string("simulated fault: ") + F.what());
  }
  TrapMode = false;
  Mem.setTrapOnFault(false);
  return static_cast<int64_t>(Regs[0]);
}

void Interpreter::execute(uint64_t EntryAddr) {
  uint64_t Pc = EntryAddr;
  uint64_t Budget = Fuel;
  // Heat attribution: cost inside outlined bodies is charged to the
  // innermost non-outlined caller (entry functions are never outlined).
  uint32_t HeatAttrIdx = HeatRec ? Image.functionIndexAt(EntryAddr) : 0;

  while (Pc != ReturnSentinel) {
    const MachineInstr *MI = Image.instrAt(Pc);
    if (!MI)
      fault("jump to invalid address " + std::to_string(Pc));
    if (Budget-- == 0)
      fault("instruction budget exhausted");
    double HeatCycles0 = 0;
    uint64_t HeatInstrs0 = 0;
    if (HeatRec) {
      HeatCycles0 = Counters.Cycles;
      HeatInstrs0 = Counters.Instrs;
    }
#ifdef MCO_TRACE_TAIL
    if (Budget < 64) {
      const uint32_t FI = Image.functionIndexAt(Pc);
      std::fprintf(stderr, "pc=0x%llx %s\n", (unsigned long long)Pc,
                   Prog.symbolName(Image.funcs()[FI].MF->Name).c_str());
    }
#endif
    chargeFetch(Pc);
#ifdef MCO_WATCH_X19
    {
      uint64_t V = Regs[19];
      static uint64_t Last19 = 0;
      if (V != Last19 && V >= BinaryImage::TextBase &&
          V < BinaryImage::TextBase + 0x100000) {
        std::fprintf(stderr, "x19 := 0x%llx at pc=0x%llx (%s)\n",
                     (unsigned long long)V, (unsigned long long)Pc,
                     Prog.symbolName(Image.funcs()[Image.functionIndexAt(Pc)]
                                         .MF->Name)
                         .c_str());
        reportFaultTrace();
      }
      Last19 = V;
    }
#endif
    TraceRing[TraceHead] = Pc;
    TraceHead = (TraceHead + 1) % TraceDepth;
    const uint32_t FuncIdx = Image.functionIndexAt(Pc);
    const bool InOutlined = Image.funcs()[FuncIdx].MF->IsOutlined;
    if (InOutlined)
      ++Counters.OutlinedInstrs;
    if (HeatRec && !InOutlined)
      HeatAttrIdx = FuncIdx;

    uint64_t NextPc = Pc + InstrBytes;
    auto RegOp = [&](unsigned I) { return MI->operand(I).getReg(); };
    auto R = [&](unsigned I) { return readReg(RegOp(I)); };
    auto Imm = [&](unsigned I) {
      return static_cast<uint64_t>(MI->operand(I).getImm());
    };
    auto BlockTarget = [&](unsigned I) {
      return Image.blockAddr(FuncIdx, MI->operand(I).getBlock());
    };

    switch (MI->opcode()) {
    case Opcode::MOVri: writeReg(RegOp(0), Imm(1)); break;
    case Opcode::MOVrr: writeReg(RegOp(0), R(1)); break;
    case Opcode::ADDri: writeReg(RegOp(0), R(1) + Imm(2)); break;
    case Opcode::ADDrr: writeReg(RegOp(0), R(1) + R(2)); break;
    case Opcode::SUBri: writeReg(RegOp(0), R(1) - Imm(2)); break;
    case Opcode::SUBrr: writeReg(RegOp(0), R(1) - R(2)); break;
    case Opcode::MULrr: writeReg(RegOp(0), R(1) * R(2)); break;
    case Opcode::SDIVrr: {
      int64_t A = static_cast<int64_t>(R(1));
      int64_t B = static_cast<int64_t>(R(2));
      int64_t Q = B == 0 ? 0
                  : (A == INT64_MIN && B == -1) ? A
                                                : A / B; // AArch64 semantics.
      writeReg(RegOp(0), static_cast<uint64_t>(Q));
      break;
    }
    case Opcode::MSUBrr:
      writeReg(RegOp(0), R(3) - R(1) * R(2));
      break;
    case Opcode::ANDrr: writeReg(RegOp(0), R(1) & R(2)); break;
    case Opcode::ORRrr: writeReg(RegOp(0), R(1) | R(2)); break;
    case Opcode::EORrr: writeReg(RegOp(0), R(1) ^ R(2)); break;
    case Opcode::LSLri: writeReg(RegOp(0), R(1) << (Imm(2) & 63)); break;
    case Opcode::ASRri:
      writeReg(RegOp(0), static_cast<uint64_t>(
                             static_cast<int64_t>(R(1)) >> (Imm(2) & 63)));
      break;
    case Opcode::LSLrr: writeReg(RegOp(0), R(1) << (R(2) & 63)); break;
    case Opcode::ASRrr:
      writeReg(RegOp(0), static_cast<uint64_t>(static_cast<int64_t>(R(1)) >>
                                               (R(2) & 63)));
      break;
    case Opcode::CMPri: setFlagsSub(R(0), Imm(1)); break;
    case Opcode::CMPrr: setFlagsSub(R(0), R(1)); break;
    case Opcode::CSET:
      writeReg(RegOp(0), condHolds(MI->operand(1).getCond()) ? 1 : 0);
      break;
    case Opcode::CSEL:
      writeReg(RegOp(0), condHolds(MI->operand(3).getCond()) ? R(1) : R(2));
      break;
    case Opcode::LDRui: {
      uint64_t Addr = R(1) + Imm(2);
      chargeDataAccess(Addr);
      writeReg(RegOp(0), Mem.read64(Addr));
      break;
    }
    case Opcode::STRui: {
      uint64_t Addr = R(1) + Imm(2);
      chargeDataAccess(Addr);
      Mem.write64(Addr, R(0));
      break;
    }
    case Opcode::LDPui: {
      uint64_t Addr = R(2) + Imm(3);
      chargeDataAccess(Addr);
      uint64_t V0 = Mem.read64(Addr);
      uint64_t V1 = Mem.read64(Addr + 8);
      writeReg(RegOp(0), V0);
      writeReg(RegOp(1), V1);
      break;
    }
    case Opcode::STPui: {
      uint64_t Addr = R(2) + Imm(3);
      chargeDataAccess(Addr);
      Mem.write64(Addr, R(0));
      Mem.write64(Addr + 8, R(1));
      break;
    }
    case Opcode::STRpre: {
      uint64_t Base = R(1) + Imm(2);
      writeReg(RegOp(1), Base);
      chargeDataAccess(Base);
      Mem.write64(Base, R(0));
      break;
    }
    case Opcode::LDRpost: {
      uint64_t Base = R(1);
      chargeDataAccess(Base);
      writeReg(RegOp(0), Mem.read64(Base));
      writeReg(RegOp(1), Base + Imm(2));
      break;
    }
    case Opcode::ADR: {
      uint32_t Sym = MI->operand(1).getSym();
      uint64_t Addr = Image.globalAddr(Sym);
      if (Addr == 0)
        Addr = Image.functionAddr(Sym);
      if (Addr == 0)
        fault("adr of undefined symbol '" + safeSymName(Prog, Sym) + "'");
      writeReg(RegOp(0), Addr);
      break;
    }
    case Opcode::B:
      NextPc = BlockTarget(0);
      foldPredictedBranch();
      break;
    case Opcode::Bcc: {
      bool Taken = condHolds(MI->operand(0).getCond());
      if (PerfEnabled) {
        if (!Branches->predictConditional(Pc, Taken)) {
          ++Counters.BranchMispredicts;
          chargeBranchPenalty();
        } else {
          foldPredictedBranch();
        }
      }
      if (Taken)
        NextPc = BlockTarget(1);
      break;
    }
    case Opcode::CBZ:
    case Opcode::CBNZ: {
      bool Taken = (R(0) == 0) == (MI->opcode() == Opcode::CBZ);
      if (PerfEnabled) {
        if (!Branches->predictConditional(Pc, Taken)) {
          ++Counters.BranchMispredicts;
          chargeBranchPenalty();
        } else {
          foldPredictedBranch();
        }
      }
      if (Taken)
        NextPc = BlockTarget(1);
      break;
    }
    case Opcode::BL: {
      uint32_t Sym = MI->operand(0).getSym();
      uint64_t Target = Image.functionAddr(Sym);
      writeReg(LR, Pc + InstrBytes);
      if (Target == 0) {
        Builtin B = builtinFor(Sym);
        if (B == Builtin::None)
          fault("call to undefined '" + safeSymName(Prog, Sym) + "'");
        runBuiltin(B);
        // Control returns immediately; LR already points past the BL.
      } else {
        if (PerfEnabled) {
          Branches->pushCall(Pc + InstrBytes);
          foldPredictedBranch(); // Direct calls are always predicted.
        }
        traceCallTo(Target, FuncIdx);
        NextPc = Target;
      }
      break;
    }
    case Opcode::BLR: {
      uint64_t Target = R(0);
      writeReg(LR, Pc + InstrBytes);
      if (PerfEnabled)
        Branches->pushCall(Pc + InstrBytes);
      traceCallTo(Target, FuncIdx);
      NextPc = Target;
      break;
    }
    case Opcode::Btail: {
      uint32_t Sym = MI->operand(0).getSym();
      uint64_t Target = Image.functionAddr(Sym);
      if (PerfEnabled && Target != 0)
        foldPredictedBranch(); // Direct tail calls are always predicted.
      if (Target == 0) {
        Builtin B = builtinFor(Sym);
        if (B == Builtin::None)
          fault("tail call to undefined '" + safeSymName(Prog, Sym) + "'");
        runBuiltin(B);
        // A tail call returns on the caller's behalf.
        NextPc = readReg(LR);
        if (PerfEnabled && !Branches->popReturn(NextPc))
          chargeBranchPenalty();
      } else {
        traceCallTo(Target, FuncIdx);
        NextPc = Target;
      }
      break;
    }
    case Opcode::BR:
      NextPc = R(0);
      break;
    case Opcode::RET:
      NextPc = readReg(LR);
      if (PerfEnabled && NextPc != ReturnSentinel) {
        if (!Branches->popReturn(NextPc))
          chargeBranchPenalty();
        else
          foldPredictedBranch();
      }
      break;
    case Opcode::NOP:
      break;
    }
    if (HeatRec)
      HeatRec->recordCost(HeatAttrIdx, Counters.Instrs - HeatInstrs0,
                          Counters.Cycles - HeatCycles0);
    Pc = NextPc;
  }
}
