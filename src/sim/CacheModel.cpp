//===- sim/CacheModel.cpp - Microarchitectural cost models ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/CacheModel.h"

#include <cassert>
#include <iterator>

using namespace mco;

namespace {
unsigned log2Exact(uint64_t V) {
  assert(V != 0 && (V & (V - 1)) == 0 && "must be a power of two");
  unsigned S = 0;
  while ((V >>= 1) != 0)
    ++S;
  return S;
}
} // namespace

TextPageModel::TextPageModel(uint64_t PageBytes)
    : PageShift(log2Exact(PageBytes)) {}

bool TextPageModel::access(uint64_t Addr) {
  if (!Touched.insert(Addr >> PageShift).second)
    return false;
  ++Faults;
  return true;
}

SetAssocCache::SetAssocCache(uint64_t SizeBytes, unsigned Assoc,
                             unsigned LineBytes)
    : Assoc(Assoc), LineShift(log2Exact(LineBytes)) {
  assert(SizeBytes % (uint64_t(Assoc) * LineBytes) == 0 &&
         "size must divide evenly into sets");
  NumSets = static_cast<unsigned>(SizeBytes / (uint64_t(Assoc) * LineBytes));
  assert((NumSets & (NumSets - 1)) == 0 && "set count must be a power of 2");
  Ways.assign(uint64_t(NumSets) * Assoc, Way());
}

bool SetAssocCache::access(uint64_t Addr) {
  ++Tick;
  uint64_t Line = Addr >> LineShift;
  unsigned Set = static_cast<unsigned>(Line & (NumSets - 1));
  Way *Base = &Ways[uint64_t(Set) * Assoc];
  Way *Invalid = nullptr;
  for (unsigned W = 0; W < Assoc; ++W) {
    if (Base[W].Tag == Line) {
      Base[W].LastUse = Tick;
      ++Hits;
      return true;
    }
    if (Base[W].Tag == ~0ull && !Invalid)
      Invalid = &Base[W];
  }
  // Pseudo-random victim selection, as in ARM Cortex L1 instruction
  // caches. (Strict LRU turns any loop slightly larger than the cache
  // into a 100%-miss cliff, which real cores do not exhibit; random
  // replacement degrades proportionally with footprint, which is what
  // makes a 20% smaller instruction footprint measurably cheaper.)
  Way *Victim = Invalid;
  if (!Victim) {
    uint64_t H = Tick * 0x9E3779B97F4A7C15ull ^ Line * 0xBF58476D1CE4E5B9ull;
    Victim = &Base[(H >> 17) % Assoc];
  }
  Victim->Tag = Line;
  Victim->LastUse = Tick;
  ++Misses;
  return false;
}

Tlb::Tlb(unsigned Entries, uint64_t PageBytes)
    : Entries(Entries), PageShift(log2Exact(PageBytes)) {}

bool Tlb::access(uint64_t Addr) {
  uint64_t Page = Addr >> PageShift;
  auto It = Map.find(Page);
  if (It != Map.end()) {
    Lru.splice(Lru.begin(), Lru, It->second);
    return true;
  }
  ++Misses;
  Lru.push_front(Page);
  Map[Page] = Lru.begin();
  if (Map.size() > Entries) {
    // Evict pseudo-randomly (see SetAssocCache::access) so footprints
    // slightly above capacity degrade smoothly instead of cliff-missing.
    uint64_t H = (Misses * 0x9E3779B97F4A7C15ull) ^ (Page * 0x94D049BB133111EBull);
    size_t Idx = 1 + (H >> 20) % (Map.size() - 1); // Never the newest.
    auto Victim = Lru.begin();
    std::advance(Victim, Idx);
    Map.erase(*Victim);
    Lru.erase(Victim);
  }
  return false;
}

BranchPredictor::BranchPredictor(unsigned TableEntries)
    : Counters(TableEntries, 1), Mask(TableEntries - 1) {
  assert((TableEntries & (TableEntries - 1)) == 0 &&
         "table must be a power of two");
  Ras.reserve(RasDepth);
}

bool BranchPredictor::predictConditional(uint64_t Pc, bool Taken) {
  uint8_t &C = Counters[(Pc >> 2) & Mask];
  bool Predicted = C >= 2;
  if (Taken) {
    if (C < 3)
      ++C;
  } else if (C > 0) {
    --C;
  }
  if (Predicted != Taken) {
    ++Mispredicts;
    return false;
  }
  return true;
}

void BranchPredictor::pushCall(uint64_t ReturnAddr) {
  if (Ras.size() == RasDepth)
    Ras.erase(Ras.begin());
  Ras.push_back(ReturnAddr);
}

bool BranchPredictor::popReturn(uint64_t ActualTarget) {
  if (Ras.empty()) {
    ++Mispredicts;
    return false;
  }
  uint64_t Predicted = Ras.back();
  Ras.pop_back();
  if (Predicted != ActualTarget) {
    ++Mispredicts;
    return false;
  }
  return true;
}

DataPageModel::DataPageModel(unsigned ResidentPages, uint64_t PageBytes)
    : Capacity(ResidentPages), PageShift(log2Exact(PageBytes)) {}

bool DataPageModel::access(uint64_t Addr) {
  uint64_t Page = Addr >> PageShift;
  auto It = Map.find(Page);
  if (It != Map.end()) {
    Lru.splice(Lru.begin(), Lru, It->second);
    return false;
  }
  ++Faults;
  Lru.push_front(Page);
  Map[Page] = Lru.begin();
  if (Map.size() > Capacity) {
    Map.erase(Lru.back());
    Lru.pop_back();
  }
  return true;
}
