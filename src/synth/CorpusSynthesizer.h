//===- synth/CorpusSynthesizer.h - Executable corpus generation -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates an executable multi-module Program from an AppProfile. Every
/// generated function is safe to run under the interpreter: reference
/// counting is balanced, memory accesses target the function's own frame,
/// its own allocations, or module globals, and error paths are present in
/// the code (for the size analysis) but not taken at run time.
///
/// Module k is a deterministic function of (profile, k), which lets the
/// AppEvolution driver regenerate historical snapshots by simply varying
/// the module count (Fig. 1).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SYNTH_CORPUSSYNTHESIZER_H
#define MCO_SYNTH_CORPUSSYNTHESIZER_H

#include "synth/AppProfile.h"

#include "mir/Program.h"
#include "support/Random.h"

#include <memory>
#include <string>
#include <vector>

namespace mco {

/// Builds synthetic app corpora.
class CorpusSynthesizer {
public:
  explicit CorpusSynthesizer(const AppProfile &Profile) : P(Profile) {}

  /// Generates feature modules on \p N threads. Module k is a pure
  /// function of (profile, k): workers emit into private Programs that a
  /// serial merge re-interns in module order, so the result — including
  /// every symbol id — is bit-identical to a single-threaded run.
  CorpusSynthesizer &withThreads(unsigned N) {
    Threads = N;
    return *this;
  }

  /// Generates the shared-library module plus \p NumModules feature
  /// modules (defaults to the profile's module count) and the span driver
  /// functions, into a fresh Program.
  std::unique_ptr<Program> generate() const {
    return generate(P.NumModules);
  }
  std::unique_ptr<Program> generate(unsigned NumModules) const;

  /// Name of the span driver function for span \p S (0-based).
  static std::string spanFunctionName(unsigned S) {
    return "span_" + std::to_string(S);
  }

private:
  void emitSharedModule(Program &Prog) const;
  void emitFeatureModule(Program &Prog, unsigned Index) const;
  void emitSpanDrivers(Program &Prog, unsigned NumModules) const;

  /// Moves \p Src's single module into \p Dst, re-interning every symbol
  /// in \p Src's first-use order (which matches the order a serial
  /// emission into \p Dst would have used).
  static void adoptModule(Program &Dst, Program &Src);

  const AppProfile &P;
  unsigned Threads = 1;
};

} // namespace mco

#endif // MCO_SYNTH_CORPUSSYNTHESIZER_H
