//===- synth/AppProfile.h - Synthetic app corpus profiles -------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameter sets describing the machine-code "shape" of the corpora the
/// paper evaluates: the three Uber iOS apps (Swift/ObjC-heavy, UI-bound,
/// reference counting everywhere) and two non-iOS programs (clang, the
/// Android Linux kernel). The synthesizer turns a profile into an
/// executable multi-module Program whose repetition statistics reproduce
/// Section IV: Zipf-distributed idiom frequencies, dominance of short
/// call/return-ending patterns, frame-setup quads, try-init O(N^2) error
/// paths, and a few very long closure-specialization repeats.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SYNTH_APPPROFILE_H
#define MCO_SYNTH_APPPROFILE_H

#include <cstdint>
#include <string>

namespace mco {

/// Tunable description of a synthetic corpus.
struct AppProfile {
  std::string Name = "UberRider";
  uint64_t Seed = 2021;

  // Scale.
  unsigned NumModules = 150;
  unsigned FunctionsPerModule = 8;
  unsigned MeanIdiomsPerFunction = 14;

  // Idiom vocabulary (Zipf-ranked; rank 1 is the hottest pattern).
  unsigned RetainReleaseRanks = 48;   ///< (register, runtime-callee) combos.
  unsigned HelperCallRanks = 260;     ///< Shared helper-call arg setups.
  unsigned AllocClassRanks = 40;      ///< swift_allocObject metadata kinds.
  double ZipfS = 1.05;
  /// Probability an idiom instance draws from the app-wide vocabulary
  /// rather than a module-private one (cross-module redundancy).
  double CrossModuleShare = 0.86;

  // Language-feature structures (Section IV observations 3 and 4).
  unsigned TryInitClasses = 8;
  unsigned TryInitMinProps = 12;
  unsigned TryInitMaxProps = 48;
  unsigned ClosureFamilies = 2;
  unsigned ClosureUnits = 70;         ///< globalMap updates per body.
  unsigned ClosureSpecializations = 3;
  unsigned ConfigGetterFamilies = 2;  ///< FMSA-mergeable near-clones.
  unsigned ConfigGetterFamilySize = 4;

  // Idiom mix weights (relative). Mobile apps are retain/release heavy;
  // clang/Linux have no reference counting but (for the kernel) pervasive
  // stack-smashing-check sequences (Section VII-E2).
  unsigned WeightRetainRelease = 2;
  unsigned WeightHelperCall = 7;
  unsigned WeightAllocRelease = 2;
  unsigned WeightGlobalUpdate = 2;
  unsigned WeightArith = 24;
  unsigned WeightSpillBurst = 1;
  unsigned WeightStackGuard = 0;

  /// Unique-logic knobs: arithmetic clusters model the app's feature
  /// logic, which is mostly unrepeated. Wide immediates keep them unique.
  unsigned ArithMinLen = 4;
  unsigned ArithMaxLen = 9;
  uint64_t ArithImmRange = 1u << 20;

  /// Maturity model (Fig. 1): as the app grows, new feature modules reuse
  /// the established idiom vocabulary more and contain relatively less
  /// novel logic -- later modules draw more from shared helpers and less
  /// from unique arithmetic. This is what bends the optimized growth curve
  /// and halves the code-size growth slope in the paper.
  ///
  /// Effective cross-module share for module k:
  ///   min(MaxCrossModuleShare, CrossModuleShare + k * MaturityShareStep).
  double MaturityShareStep = 0.002;
  double MaxCrossModuleShare = 0.96;
  /// Effective arith weight for module k:
  ///   max(MinWeightArith, WeightArith - k / MaturityArithDivisor).
  unsigned MinWeightArith = 6;
  unsigned MaturityArithDivisor = 4;

  // Frames and data.
  unsigned MaxCalleeSavedPairs = 4;   ///< Listing 7/8 STP/LDP quads.
  unsigned GlobalsPerModule = 16;
  unsigned GlobalWords = 48;          ///< 8-byte words per global.

  // Hot/cold split: each module's first few functions are "hot path"
  // (mostly unique feature logic, executed by spans); the rest are cold
  // boilerplate-heavy code (initializers, error paths, rarely-used
  // features) that dominates the static size but not the cycles — this is
  // how a 23% static saving coexists with only ~3% of dynamic
  // instructions being outlined (Section VII-B).
  unsigned HotFunctionsPerModule = 3;
  unsigned HotUniqueMinInstrs = 90;
  unsigned HotUniqueMaxInstrs = 170;

  // Spans (Fig. 13): user journeys over consecutive feature modules.
  unsigned NumSpans = 9;
  unsigned ModulesPerSpan = 36;
  unsigned SpanCallsPerModule = 3;

  /// The paper's corpora. Scales are ~1-2% of the real apps; all reported
  /// comparisons are relative, which Zipf-shaped repetition keeps stable.
  static AppProfile uberRider();
  static AppProfile uberDriver();
  static AppProfile uberEats();
  static AppProfile clangCompiler();
  static AppProfile linuxKernel();
};

} // namespace mco

#endif // MCO_SYNTH_APPPROFILE_H
