//===- synth/AppProfile.cpp - Corpus profiles -----------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/AppProfile.h"

using namespace mco;

AppProfile AppProfile::uberRider() {
  AppProfile P;
  P.Name = "UberRider";
  P.Seed = 2021;
  return P;
}

AppProfile AppProfile::uberDriver() {
  // 2.2 MLoC, 77% Swift / 23% ObjC. Slightly less cross-module reuse than
  // Rider (fewer shared vendor libraries), which is what lands its saving
  // below Rider's, as in the paper (17% vs 23%).
  AppProfile P = uberRider();
  P.Name = "UberDriver";
  P.Seed = 4242;
  P.CrossModuleShare = 0.74;
  P.MaturityShareStep = 0.001;
  P.WeightArith = 26;
  P.TryInitMaxProps = 40;
  return P;
}

AppProfile AppProfile::uberEats() {
  // 2.1 MLoC, 66% Swift / 34% ObjC: more ObjC retain/release traffic,
  // somewhat more reuse than Driver (19% in the paper).
  AppProfile P = uberRider();
  P.Name = "UberEats";
  P.Seed = 7777;
  P.CrossModuleShare = 0.76;
  P.MaturityShareStep = 0.001;
  P.WeightRetainRelease = 3;
  P.WeightArith = 27;
  return P;
}

AppProfile AppProfile::clangCompiler() {
  // C++ desktop program: no reference counting, but the deepest
  // cross-module reuse of all (shared ADT/utility code in every TU),
  // which is why the paper measures its largest saving (25%).
  AppProfile P = uberRider();
  P.Name = "Clang9";
  P.Seed = 900;
  P.WeightRetainRelease = 0;
  P.WeightAllocRelease = 1;
  P.WeightHelperCall = 9;
  P.WeightArith = 22;
  P.CrossModuleShare = 0.93;
  P.MaxCrossModuleShare = 0.97;
  P.TryInitClasses = 0;
  P.TryInitMinProps = 0;
  P.TryInitMaxProps = 0;
  P.ClosureFamilies = 0;
  // A broad, flat shared-utility vocabulary (ADT helpers): each TU calls
  // a few of the hundreds of shared helpers, so the repetition is almost
  // entirely *cross-module* — per-module outlining finds little, while
  // whole-program outlining finds everything. That asymmetry is what
  // makes clang the best-compressing corpus in the paper.
  P.HelperCallRanks = 400;
  P.ZipfS = 0.3;
  P.WeightHelperCall = 26;
  P.WeightAllocRelease = 5; // operator new / delete traffic.
  P.WeightArith = 6;
  P.MeanIdiomsPerFunction = 26;
  P.HotUniqueMinInstrs = 60;
  P.HotUniqueMaxInstrs = 110;
  return P;
}

AppProfile AppProfile::linuxKernel() {
  // Android v4.19 kernel: stack-smashing-check sequences everywhere,
  // register save/restore traffic, no ObjC/Swift runtime.
  AppProfile P;
  P.Name = "LinuxKernel";
  P.Seed = 419;
  P.NumModules = 32;
  P.FunctionsPerModule = 36;
  P.MeanIdiomsPerFunction = 10;
  P.HelperCallRanks = 260;
  P.ZipfS = 1.02;
  P.CrossModuleShare = 0.7;
  P.WeightRetainRelease = 0;
  P.WeightAllocRelease = 0;
  P.WeightHelperCall = 3;
  P.WeightGlobalUpdate = 3;
  P.WeightArith = 16;
  P.WeightSpillBurst = 2;
  P.WeightStackGuard = 3;
  P.TryInitClasses = 0;
  P.ClosureFamilies = 0;
  P.ConfigGetterFamilies = 6;
  P.MaxCalleeSavedPairs = 4;
  return P;
}
