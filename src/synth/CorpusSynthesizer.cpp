//===- synth/CorpusSynthesizer.cpp - Executable corpus generation ---------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/CorpusSynthesizer.h"

#include "mir/MIRBuilder.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace mco;

namespace {

/// Mixes a stream id into a seed so every module draws an independent,
/// reproducible random stream.
uint64_t subSeed(uint64_t Seed, uint64_t Stream) {
  return Seed * 0x9E3779B97F4A7C15ull + Stream * 0xD1B54A32D192ED03ull + 1;
}

/// Registers that, at run time, are guaranteed to hold either a live
/// object or zero (x21 is reserved as the span-driver loop counter and the
/// feature functions' allocation stash, so it is never used as a
/// retain/release source).
const Reg RcSourceRegs[] = {Reg::X19, Reg::X20, Reg::X22, Reg::X23,
                            Reg::X24, Reg::X25, Reg::X26, Reg::X27,
                            Reg::X28};
constexpr unsigned NumRcSources = 9;

/// The four runtime (retain, release) pairs.
const char *retainName(unsigned Kind) {
  return Kind == 0 ? "swift_retain" : "objc_retain";
}
const char *releaseName(unsigned Kind) {
  return Kind == 0 ? "swift_release" : "objc_release";
}

/// Emits the Listing 7 frame-construction sequence: allocate the frame,
/// save LR, then STP the callee-saved pairs.
void emitPrologue(MIRBuilder &B, unsigned Pairs, int64_t Frame) {
  B.subri(Reg::SP, Reg::SP, Frame);
  B.str(LR, Reg::SP, Frame - 8);
  for (unsigned Pq = 0; Pq < Pairs; ++Pq)
    B.stp(xreg(19 + 2 * Pq), xreg(20 + 2 * Pq), Reg::SP, 16 * Pq);
}

/// Emits the Listing 8 frame-destruction sequence.
void emitEpilogue(MIRBuilder &B, unsigned Pairs, int64_t Frame) {
  for (unsigned Pq = Pairs; Pq-- > 0;)
    B.ldp(xreg(19 + 2 * Pq), xreg(20 + 2 * Pq), Reg::SP, 16 * Pq);
  B.ldr(LR, Reg::SP, Frame - 8);
  B.addri(Reg::SP, Reg::SP, Frame);
  B.ret();
}

} // namespace

void CorpusSynthesizer::emitSharedModule(Program &Prog) const {
  Module &M = Prog.addModule("libshared");

  // Class metadata globals for swift_allocObject, plus the stack guard.
  for (unsigned C = 0; C < P.AllocClassRanks; ++C) {
    GlobalData G;
    G.Name = Prog.internSymbol("meta_" + std::to_string(C));
    G.Bytes.assign(16, 0);
    G.OriginModule = 0;
    M.Globals.push_back(G);
  }
  {
    GlobalData G;
    G.Name = Prog.internSymbol("__stack_chk_guard");
    G.Bytes.assign(8, 0xAB);
    G.OriginModule = 0;
    M.Globals.push_back(G);
  }

  // Shared helper functions: small leaves with a handful of body shapes.
  Rng R(subSeed(P.Seed, 0xBEEF));
  for (unsigned H = 0; H < P.HelperCallRanks; ++H) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol("helper_" + std::to_string(H));
    MF.OriginModule = 0;
    MIRBuilder B(MF.addBlock());
    switch (H % 5) {
    case 0:
      B.addri(Reg::X0, Reg::X0, (H % 97) + 1);
      break;
    case 1:
      B.eorrr(Reg::X0, Reg::X0, Reg::X1);
      B.addri(Reg::X0, Reg::X0, (H % 89) + 1);
      break;
    case 2:
      B.addrr(Reg::X0, Reg::X0, Reg::X1);
      B.asrri(Reg::X0, Reg::X0, (H % 5) + 1);
      B.addri(Reg::X0, Reg::X0, (H % 83));
      break;
    case 3:
      B.movri(Reg::X9, static_cast<int64_t>(R.nextBounded(1000)));
      B.addrr(Reg::X0, Reg::X0, Reg::X9);
      break;
    case 4:
      B.lslri(Reg::X0, Reg::X0, 1);
      B.addri(Reg::X0, Reg::X0, (H % 101));
      break;
    }
    B.ret();
    M.Functions.push_back(MF);
  }
}

void CorpusSynthesizer::emitFeatureModule(Program &Prog,
                                          unsigned Index) const {
  const std::string MN = "feature" + std::to_string(Index);
  Module &M = Prog.addModule(MN);
  const uint32_t Origin = Index + 1; // 0 is libshared.
  Rng R(subSeed(P.Seed, Index + 1));
  ZipfSampler HelperZipf(P.HelperCallRanks, P.ZipfS);
  ZipfSampler RcZipf(P.RetainReleaseRanks, P.ZipfS);
  ZipfSampler AllocZipf(P.AllocClassRanks, P.ZipfS);
  ZipfSampler GlobalZipf(P.GlobalsPerModule, P.ZipfS);

  // Module globals (feature data; same-module affinity matters for the
  // Section VI experiment).
  for (unsigned G = 0; G < P.GlobalsPerModule; ++G) {
    GlobalData GD;
    GD.Name =
        Prog.internSymbol("g_" + std::to_string(Index) + "_" +
                          std::to_string(G));
    GD.Bytes.assign(P.GlobalWords * 8, 0);
    GD.OriginModule = Origin;
    M.Globals.push_back(GD);
  }

  // Module-local helpers (the non-cross-module share of call idioms).
  const unsigned NumLocalHelpers = 12;
  for (unsigned H = 0; H < NumLocalHelpers; ++H) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol("lhelper_" + std::to_string(Index) + "_" +
                                std::to_string(H));
    MF.OriginModule = Origin;
    MIRBuilder B(MF.addBlock());
    B.addri(Reg::X0, Reg::X0, Index * 12 + H + 2);
    B.eorrr(Reg::X0, Reg::X0, Reg::X1);
    B.ret();
    M.Functions.push_back(MF);
  }

  // Decode helpers used by the try-init class (identity on x0; identical
  // bodies across modules — MergeFunctions fodder, as in real apps).
  for (unsigned D = 0; D < 6; ++D) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol("decode_" + std::to_string(Index) + "_" +
                                std::to_string(D));
    MF.OriginModule = Origin;
    MIRBuilder B(MF.addBlock());
    // Identity on x0 with per-(module, kind) scratch work; a handful of
    // decode bodies still coincide across modules (MergeFunctions fodder,
    // ~1% as in the paper, not more).
    B.movrr(Reg::X9, Reg::X0);
    B.addri(Reg::X10, Reg::X9, (Index * 31 + D * 7) % 600);
    B.movrr(Reg::X0, Reg::X9);
    B.ret();
    M.Functions.push_back(MF);
  }

  // Config getter families: identical skeletons differing only in one or
  // two immediates (FMSA-style merge fodder, Table I).
  for (unsigned Fam = 0; Fam < P.ConfigGetterFamilies; ++Fam) {
    // The family skeleton (registers, shift, op order) is a deterministic
    // function of (module, family), so the five members of a family are
    // identical up to their two immediates — mergeable by the FMSA-style
    // pass — while different families rarely share whole tails.
    uint64_t H = subSeed(P.Seed, (uint64_t(Index) << 16) | (Fam + 1));
    Reg R1 = xreg(8 + (H % 8));
    Reg R2 = xreg(8 + ((H >> 3) % 8));
    if (R2 == R1)
      R2 = xreg(8 + (regIndex(R2) - 8 + 1) % 8);
    Reg R3 = xreg(8 + ((H >> 6) % 8));
    if (R3 == R1 || R3 == R2)
      R3 = xreg(8 + (regIndex(R3) - 8 + 3) % 8);
    if (R3 == R1 || R3 == R2)
      R3 = xreg(8 + (regIndex(R3) - 8 + 3) % 8);
    int64_t Shift = 1 + (H >> 9) % 6;
    bool EorFirst = ((H >> 12) & 1) != 0;
    for (unsigned K = 0; K < P.ConfigGetterFamilySize; ++K) {
      MachineFunction MF;
      MF.Name = Prog.internSymbol("cfg_" + std::to_string(Index) + "_" +
                                  std::to_string(Fam) + "_" +
                                  std::to_string(K));
      MF.OriginModule = Origin;
      MIRBuilder B(MF.addBlock());
      B.movri(R1, static_cast<int64_t>(7919 * Index + 1000 * Fam + 17 * K + 3));
      B.movri(R2, static_cast<int64_t>(4409 * Index + 500 * Fam + 31 * K + 7));
      B.addrr(R3, R1, R2);
      if (EorFirst) {
        B.eorrr(R3, R3, R1);
        B.asrri(R3, R3, Shift);
      } else {
        B.asrri(R3, R3, Shift);
        B.eorrr(R3, R3, R1);
      }
      B.addrr(Reg::X0, R3, R2);
      B.ret();
      M.Functions.push_back(MF);
    }
  }

  // Feature functions.
  for (unsigned F = 0; F < P.FunctionsPerModule; ++F) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol("feature_" + std::to_string(Index) + "_" +
                                std::to_string(F));
    MF.OriginModule = Origin;
    const bool IsHotFn = F < P.HotFunctionsPerModule;
    const unsigned Pairs =
        IsHotFn ? 1
                : 1 + static_cast<unsigned>(
                          R.nextBounded(P.MaxCalleeSavedPairs));
    const int64_t LocalsBase = 16 * Pairs;
    const int64_t Frame = LocalsBase + 128 + 16;
    MIRBuilder B(MF.addBlock());
    emitPrologue(B, Pairs, Frame);

    // Pending cleanup emitted before the epilogue.
    std::vector<std::pair<Reg, unsigned>> PendingReleases;
    bool StashUsed = false;

    // Weighted idiom choice per the profile's mix.
    enum class Idiom {
      RetainRelease,
      HelperCall,
      AllocRelease,
      GlobalUpdate,
      Arith,
      SpillBurst,
      StackGuard,
    };
    // Maturity model: later modules carry less unique logic and reuse the
    // app-wide vocabulary more (see AppProfile).
    unsigned MaturityDrop = Index / P.MaturityArithDivisor;
    unsigned EffArith = P.WeightArith > P.MinWeightArith + MaturityDrop
                            ? P.WeightArith - MaturityDrop
                            : P.MinWeightArith;
    double EffShare = P.CrossModuleShare + Index * P.MaturityShareStep;
    if (EffShare > P.MaxCrossModuleShare)
      EffShare = P.MaxCrossModuleShare;
    const std::pair<Idiom, unsigned> Mix[] = {
        {Idiom::RetainRelease, P.WeightRetainRelease},
        {Idiom::HelperCall, P.WeightHelperCall},
        {Idiom::AllocRelease, P.WeightAllocRelease},
        {Idiom::GlobalUpdate, P.WeightGlobalUpdate},
        {Idiom::Arith, EffArith},
        {Idiom::SpillBurst, P.WeightSpillBurst},
        {Idiom::StackGuard, P.WeightStackGuard},
    };
    unsigned TotalWeight = 0;
    for (const auto &KV : Mix)
      TotalWeight += KV.second;
    assert(TotalWeight > 0 && "profile has an empty idiom mix");
    auto SampleIdiom = [&]() {
      // Hot paths stick to call-convention traffic (retain/release and
      // shared-helper calls); allocation, cold-data updates, and spill
      // bursts live in the cold, boilerplate-heavy functions.
      if (IsHotFn) {
        // Hot paths: call-convention traffic plus feature-data updates
        // (the data accesses the Section VI experiment observes).
        uint64_t Roll = R.nextBounded(10);
        if (Roll < 2)
          return Idiom::GlobalUpdate;
        if (Roll < 6 && P.WeightRetainRelease > 0)
          return Idiom::RetainRelease;
        return Idiom::HelperCall;
      }
      uint64_t Roll = R.nextBounded(TotalWeight);
      for (const auto &KV : Mix) {
        if (Roll < KV.second)
          return KV.first;
        Roll -= KV.second;
      }
      return Idiom::Arith;
    };

    // Hot functions carry a couple of idioms plus a long unique body;
    // cold functions are boilerplate-heavy (see AppProfile).
    const bool IsHot = IsHotFn;
    const unsigned NumIdioms =
        IsHot ? 1 + static_cast<unsigned>(R.nextBounded(2))
              : P.MeanIdiomsPerFunction / 2 +
                    static_cast<unsigned>(
                        R.nextBounded(P.MeanIdiomsPerFunction));
    if (IsHot) {
      unsigned Len = P.HotUniqueMinInstrs +
                     static_cast<unsigned>(R.nextBounded(
                         P.HotUniqueMaxInstrs - P.HotUniqueMinInstrs + 1));
      for (unsigned K = 0; K < Len; ++K) {
        Reg D = xreg(8 + R.nextBounded(8));
        Reg A = xreg(8 + R.nextBounded(8));
        switch (R.nextBounded(3)) {
        case 0:
          B.addri(D, A, static_cast<int64_t>(R.nextBounded(P.ArithImmRange)));
          break;
        case 1:
          B.eorrr(D, A, xreg(8 + R.nextBounded(8)));
          break;
        case 2:
          B.subri(D, A, static_cast<int64_t>(R.nextBounded(P.ArithImmRange)));
          break;
        }
      }
    }
    for (unsigned I = 0; I < NumIdioms; ++I) {
      switch (SampleIdiom()) {
      case Idiom::RetainRelease: { // Balanced retain/release (Listings 1-2).
        // Hot paths hammer the hottest patterns — that is what *makes*
        // them the top repetition ranks of Section IV, and it is why the
        // outlined bodies they call stay resident in the cache.
        unsigned Rank = IsHot ? static_cast<unsigned>(R.nextBounded(6))
                              : RcZipf.sample(R) - 1;
        Reg Src = RcSourceRegs[Rank % NumRcSources];
        unsigned Kind = (Rank / NumRcSources) % 2;
        B.movrr(Reg::X0, Src);
        B.bl(Prog.internSymbol(retainName(Kind)));
        PendingReleases.push_back({Src, Kind});
        break;
      }
      case Idiom::HelperCall: { // 1-3 argument setup (Listings 12/13).
        unsigned Rank = IsHot ? static_cast<unsigned>(R.nextBounded(10))
                              : HelperZipf.sample(R) - 1;
        uint32_t Callee;
        if (IsHot || R.nextDouble() < EffShare)
          Callee = Prog.internSymbol("helper_" + std::to_string(Rank));
        else
          Callee = Prog.internSymbol(
              "lhelper_" + std::to_string(Index) + "_" +
              std::to_string(Rank % NumLocalHelpers));
        // Arity varies per call site; argument source registers are fixed
        // per callee rank. Together with high-to-low emission order this
        // yields the paper's Listing 12/13 structure: a hot short suffix
        // (mov x0; bl) shared by longer, rarer argument-setup sequences.
        unsigned Argc = 1 + static_cast<unsigned>(R.nextBounded(5));
        for (unsigned A = Argc; A-- > 1;)
          B.movrr(xreg(A), xreg(19 + (Rank + A) % 10));
        B.movrr(Reg::X0, xreg(19 + Rank % 10));
        B.bl(Callee);
        break;
      }
      case Idiom::AllocRelease: { // Alloc + release (Listing 3 shape).
        unsigned C = AllocZipf.sample(R) - 1;
        B.adr(Reg::X0, Prog.internSymbol("meta_" + std::to_string(C)));
        B.movri(Reg::X1, 32 + 8 * (C % 6));
        B.movri(Reg::X2, 7);
        B.bl(Prog.internSymbol("swift_allocObject"));
        if (!StashUsed && Pairs >= 2 && R.nextBool(0.5)) {
          // Stash in x21 (saved when Pairs >= 2; never a retain/release
          // source) and release before the epilogue.
          B.movrr(Reg::X21, Reg::X0);
          StashUsed = true;
        } else {
          B.bl(Prog.internSymbol("swift_release"));
        }
        break;
      }
      case Idiom::GlobalUpdate: { // Module-global counter update. The
        // register assignment and increment vary per site, as a register
        // allocator would produce.
        unsigned G = GlobalZipf.sample(R) - 1;
        int64_t Off = 8 * static_cast<int64_t>(R.nextBounded(P.GlobalWords));
        Reg RA = xreg(8 + R.nextBounded(8));
        Reg RB = xreg(8 + R.nextBounded(8));
        if (RB == RA)
          RB = xreg(8 + (regIndex(RB) - 8 + 1) % 8);
        B.adr(RA, Prog.internSymbol("g_" + std::to_string(Index) + "_" +
                                    std::to_string(G)));
        B.ldr(RB, RA, Off);
        B.addri(RB, RB, 1 + static_cast<int64_t>(R.nextBounded(8)));
        B.str(RB, RA, Off);
        break;
      }
      case Idiom::Arith: { // Feature logic: mostly-unique arithmetic.
        unsigned N = P.ArithMinLen +
                     static_cast<unsigned>(R.nextBounded(
                         P.ArithMaxLen - P.ArithMinLen + 1));
        for (unsigned K = 0; K < N; ++K) {
          Reg D = xreg(8 + R.nextBounded(8));
          Reg A = xreg(8 + R.nextBounded(8));
          switch (R.nextBounded(6)) {
          case 0:
            B.movri(D, static_cast<int64_t>(R.nextBounded(P.ArithImmRange)));
            break;
          case 1:
            B.addri(D, A,
                    static_cast<int64_t>(R.nextBounded(P.ArithImmRange)));
            break;
          case 2: B.eorrr(D, A, xreg(8 + R.nextBounded(8))); break;
          case 3: B.lslri(D, A, 1 + static_cast<int64_t>(R.nextBounded(20)));
            break;
          case 4: B.addrr(D, A, xreg(8 + R.nextBounded(8))); break;
          case 5:
            B.subri(D, A,
                    static_cast<int64_t>(R.nextBounded(P.ArithImmRange)));
            break;
          }
        }
        break;
      }
      case Idiom::SpillBurst: { // Zero-spill burst (Listing 11 shape).
        unsigned N = 2 + static_cast<unsigned>(R.nextBounded(4));
        for (unsigned K = 0; K < N && K < 16; ++K) {
          B.movri(Reg::X8, 0);
          B.str(Reg::X8, Reg::SP, LocalsBase + 8 * K);
        }
        break;
      }
      case Idiom::StackGuard: { // Kernel-style stack-smash check.
        B.adr(Reg::X8, Prog.internSymbol("__stack_chk_guard"));
        B.ldr(Reg::X9, Reg::X8, 0);
        B.str(Reg::X9, Reg::SP, LocalsBase + 120);
        B.ldr(Reg::X10, Reg::SP, LocalsBase + 120);
        B.eorrr(Reg::X9, Reg::X9, Reg::X10);
        break;
      }
      }
    }

    if (StashUsed) {
      B.movrr(Reg::X0, Reg::X21);
      B.bl(Prog.internSymbol("swift_release"));
    }
    for (auto It = PendingReleases.rbegin(); It != PendingReleases.rend();
         ++It) {
      B.movrr(Reg::X0, It->first);
      B.bl(Prog.internSymbol(releaseName(It->second)));
    }
    emitEpilogue(B, Pairs, Frame);
    M.Functions.push_back(MF);
  }

  // A try-init deserializer class every 5th module (Section IV obs. 4:
  // O(N^2) out-of-SSA error paths). Block 0 is the long hoisted happy
  // path; blocks 1..N are the error arms; block N+1 releases and returns.
  if (P.TryInitMaxProps > 0 && Index % 5 == 2) {
    const unsigned Props =
        P.TryInitMinProps +
        static_cast<unsigned>(
            R.nextBounded(P.TryInitMaxProps - P.TryInitMinProps + 1));
    MachineFunction MF;
    MF.Name = Prog.internSymbol("init_class_" + std::to_string(Index));
    MF.OriginModule = Origin;
    // One saved pair, one "initialized" flag slot per property, LR slot.
    const int64_t FlagsBase = 16;
    const int64_t Frame = (16 + 8 * int64_t(Props) + 8 + 15) & ~int64_t(15);
    MIRBuilder B(MF.addBlock());
    emitPrologue(B, 1, Frame);
    // Allocate the object being initialized.
    B.adr(Reg::X0, Prog.internSymbol("meta_" + std::to_string(Index %
                                                              P.AllocClassRanks)));
    B.movri(Reg::X1, 16 + 8 * static_cast<int64_t>(Props));
    B.movri(Reg::X2, 7);
    B.bl(Prog.internSymbol("swift_allocObject"));
    B.movrr(Reg::X19, Reg::X0);
    const uint32_t TailBlock = Props + 1;
    for (unsigned Prop = 0; Prop < Props; ++Prop) {
      B.movrr(Reg::X0, Reg::X19);
      B.bl(Prog.internSymbol("decode_" + std::to_string(Index) + "_" +
                             std::to_string(Prop % 6)));
      B.cbz(Reg::X0, 1 + Prop);
      B.str(Reg::X0, Reg::X19, 8 + 8 * static_cast<int64_t>(Prop));
    }
    B.b(TailBlock);
    // Error arms: arm i zeroes the i distinct "initialized" flags (the PHI
    // lowering copies/spills of Fig. 9 / Listing 11), then joins the tail.
    // Arm i is a prefix of arm i+1 — the nested-pattern structure repeated
    // outlining exploits.
    for (unsigned Prop = 0; Prop < Props; ++Prop) {
      MIRBuilder EB(MF.addBlock());
      for (unsigned Z = 0; Z < Prop; ++Z) {
        EB.movri(Reg::X8, 0);
        EB.str(Reg::X8, Reg::SP, FlagsBase + 8 * Z);
      }
      EB.b(TailBlock);
    }
    MIRBuilder TB(MF.addBlock());
    TB.movrr(Reg::X0, Reg::X19);
    TB.bl(Prog.internSymbol("swift_release"));
    emitEpilogue(TB, 1, Frame);
    M.Functions.push_back(MF);
  }

  // Closure-specialization family every 18th module (Section IV obs. 4:
  // the longest repeating pattern, three specializations of one body).
  if (P.ClosureFamilies > 0 && Index % 18 == 3) {
    for (unsigned S = 0; S < P.ClosureSpecializations; ++S) {
      MachineFunction MF;
      MF.Name = Prog.internSymbol("closure_" + std::to_string(Index) + "_" +
                                  std::to_string(S));
      MF.OriginModule = Origin;
      MIRBuilder B(MF.addBlock());
      B.movri(Reg::X15, static_cast<int64_t>(S) + 1); // Specialization id.
      uint32_t MapSym = Prog.internSymbol("g_" + std::to_string(Index) +
                                          "_0");
      for (unsigned U = 0; U < P.ClosureUnits; ++U) {
        int64_t Off = 8 * static_cast<int64_t>(U % P.GlobalWords);
        B.adr(Reg::X8, MapSym);
        B.ldr(Reg::X9, Reg::X8, Off);
        B.addri(Reg::X9, Reg::X9, 1);
        B.str(Reg::X9, Reg::X8, Off);
      }
      B.movri(Reg::X0, 0);
      B.ret();
      M.Functions.push_back(MF);
    }
  }
}

void CorpusSynthesizer::emitSpanDrivers(Program &Prog,
                                        unsigned NumModules) const {
  Module &M = Prog.addModule("main");
  const uint32_t Origin = NumModules + 1;
  const unsigned Reps = 4;
  for (unsigned S = 0; S < P.NumSpans; ++S) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol(spanFunctionName(S));
    MF.OriginModule = Origin;
    const int64_t Frame = 32 + 16; // Two saved pairs + LR slot.
    Rng R(subSeed(P.Seed, 0x5BA0 + S));

    MIRBuilder B(MF.addBlock());
    emitPrologue(B, 2, Frame);
    // Two live objects for the span's retain/release traffic.
    B.adr(Reg::X0, Prog.internSymbol("meta_0"));
    B.movri(Reg::X1, 64);
    B.movri(Reg::X2, 7);
    B.bl(Prog.internSymbol("swift_allocObject"));
    B.movrr(Reg::X19, Reg::X0);
    B.adr(Reg::X0, Prog.internSymbol("meta_1"));
    B.movri(Reg::X1, 64);
    B.movri(Reg::X2, 7);
    B.bl(Prog.internSymbol("swift_allocObject"));
    B.movrr(Reg::X20, Reg::X0);
    B.movri(Reg::X21, Reps);
    B.b(1);

    MIRBuilder LB(MF.addBlock()); // Block 1: the journey loop.
    for (unsigned MM = 0; MM < P.ModulesPerSpan; ++MM) {
      unsigned ModIdx = (S * 7 + MM) % NumModules;
      // Stream through the module's features once per repetition: UI
      // spans execute large amounts of code exactly once (Section VII-B:
      // "no single hotspot"), which is where the smaller instruction
      // footprint pays off.
      unsigned Calls = P.SpanCallsPerModule < P.FunctionsPerModule
                           ? P.SpanCallsPerModule
                           : P.FunctionsPerModule;
      for (unsigned C = 0; C < Calls; ++C)
        LB.bl(Prog.internSymbol("feature_" + std::to_string(ModIdx) + "_" +
                                std::to_string(C)));
      // Exercise a deserialization or closure body when the span's
      // modules contain one.
      // Deserializers and closure bodies run, but rarely — they are cold
      // code in production too.
      if (P.TryInitMaxProps > 0 && ModIdx % 20 == 2)
        LB.bl(Prog.internSymbol("init_class_" + std::to_string(ModIdx)));
      if (P.ClosureFamilies > 0 && ModIdx % 36 == 3)
        LB.bl(Prog.internSymbol(
            "closure_" + std::to_string(ModIdx) + "_" +
            std::to_string(S % P.ClosureSpecializations)));
    }
    LB.subri(Reg::X21, Reg::X21, 1);
    LB.cbnz(Reg::X21, 1);
    LB.b(2);

    MIRBuilder TB(MF.addBlock()); // Block 2: cleanup.
    TB.movrr(Reg::X0, Reg::X19);
    TB.bl(Prog.internSymbol("swift_release"));
    TB.movrr(Reg::X0, Reg::X20);
    TB.bl(Prog.internSymbol("swift_release"));
    TB.movri(Reg::X0, 0);
    emitEpilogue(TB, 2, Frame);
    M.Functions.push_back(MF);
  }
}

void CorpusSynthesizer::adoptModule(Program &Dst, Program &Src) {
  assert(Src.Modules.size() == 1 && "worker programs hold one module");
  const uint32_t NumSyms = Src.numSymbols();
  std::vector<uint32_t> Real(NumSyms);
  for (uint32_t L = 0; L < NumSyms; ++L)
    Real[L] = Dst.internSymbol(Src.symbolName(L));

  std::unique_ptr<Module> M = std::move(Src.Modules.front());
  for (MachineFunction &MF : M->Functions) {
    MF.Name = Real[MF.Name];
    for (MachineBasicBlock &MBB : MF.Blocks)
      for (MachineInstr &MI : MBB.Instrs)
        for (unsigned I = 0; I < MI.numOperands(); ++I)
          if (MI.operand(I).isSym())
            MI.operand(I) =
                MachineOperand::sym(Real[MI.operand(I).getSym()]);
  }
  for (GlobalData &G : M->Globals)
    G.Name = Real[G.Name];
  Dst.Modules.push_back(std::move(M));
}

std::unique_ptr<Program>
CorpusSynthesizer::generate(unsigned NumModules) const {
  auto Prog = std::make_unique<Program>();
  emitSharedModule(*Prog);
  if (Threads > 1 && NumModules > 1) {
    std::vector<std::unique_ptr<Program>> Locals(NumModules);
    ThreadPool Pool(Threads);
    Pool.parallelFor(NumModules, [&](size_t I) {
      Locals[I] = std::make_unique<Program>();
      emitFeatureModule(*Locals[I], static_cast<unsigned>(I));
    });
    for (unsigned I = 0; I < NumModules; ++I)
      adoptModule(*Prog, *Locals[I]);
  } else {
    for (unsigned I = 0; I < NumModules; ++I)
      emitFeatureModule(*Prog, I);
  }
  emitSpanDrivers(*Prog, NumModules);
  return Prog;
}
