//===- synth/AppEvolution.h - App growth over time --------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the app's feature growth over time for the Fig. 1 experiment:
/// each month adds feature modules; because new features reuse the app's
/// existing idiom vocabulary (shared helpers, runtime calls, codegen
/// patterns), the marginal code added outlines better than average, which
/// is what lets whole-program repeated outlining halve the code-size
/// growth *slope* while saving ~23% at any point in time.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SYNTH_APPEVOLUTION_H
#define MCO_SYNTH_APPEVOLUTION_H

#include "synth/CorpusSynthesizer.h"

#include <memory>

namespace mco {

/// Regenerates historical corpus snapshots.
class AppEvolution {
public:
  /// \param Profile the app profile at time zero.
  /// \param BaseModules modules at month 0.
  /// \param ModulesPerMonth feature-module growth rate.
  AppEvolution(const AppProfile &Profile, unsigned BaseModules = 12,
               unsigned ModulesPerMonth = 2)
      : Profile(Profile), BaseModules(BaseModules),
        ModulesPerMonth(ModulesPerMonth) {}

  /// \returns the corpus as of month \p Month (0-based). Module k's
  /// content is identical across snapshots — old code does not change,
  /// new modules are appended, as in a real repository.
  std::unique_ptr<Program> snapshot(unsigned Month) const {
    CorpusSynthesizer Synth(Profile);
    return Synth.generate(BaseModules + ModulesPerMonth * Month);
  }

  unsigned modulesAt(unsigned Month) const {
    return BaseModules + ModulesPerMonth * Month;
  }

private:
  AppProfile Profile;
  unsigned BaseModules;
  unsigned ModulesPerMonth;
};

} // namespace mco

#endif // MCO_SYNTH_APPEVOLUTION_H
