//===- swiftbench/SortBenches.cpp - Sorting & searching benchmarks --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "swiftbench/Builders.h"

#include "swiftbench/BenchSupport.h"

using namespace mco;
using namespace mco::ir;
using namespace mco::bench;

namespace {

/// Emits the post-sort checksum: sortedness flag * 10^9 + sum of
/// (arr[i] % 97) * (i+1).
Value emitSortChecksum(IRBuilder &B, Value Arr, int64_t N) {
  Value SortedOK = B.alloca_(8);
  B.store(B.constInt(1), SortedOK);
  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    Value V = B.loadIdx(Arr, I);
    Value Term = B.mul(B.srem(V, B.constInt(97)), B.add(I, B.constInt(1)));
    B.store(B.add(B.load(Sum), Term), Sum);
    ifThen(B, B.icmp(Pred::LT, I, B.constInt(N - 1)), [&] {
      Value Next = B.loadIdx(Arr, B.add(I, B.constInt(1)));
      ifThen(B, B.icmp(Pred::GT, V, Next),
             [&] { B.store(B.constInt(0), SortedOK); });
    });
  });
  return B.add(B.mul(B.load(SortedOK), B.constInt(1000000000)),
               B.load(Sum));
}

} // namespace

ir::IRModule bench::buildQuickSort() {
  IRModule M;
  M.Name = "QuickSort";
  const int64_t N = 512;

  // quicksort(arr, lo, hi): recursive Lomuto partition.
  {
    IRBuilder B(M, "quicksort", 3);
    Value Arr = B.param(0), Lo = B.param(1), Hi = B.param(2);
    Value Done = B.icmp(Pred::GE, Lo, Hi);
    uint32_t Ret0 = B.newBlock();
    uint32_t Work = B.newBlock();
    B.setBlock(0);
    B.condBr(Done, Ret0, Work);
    B.setBlock(Ret0);
    B.ret(B.constInt(0));
    B.setBlock(Work);
    Value Pivot = B.loadIdx(Arr, Hi);
    Value IVar = B.alloca_(8);
    B.store(B.sub(Lo, B.constInt(1)), IVar);
    forLoop(B, Lo, Hi, [&](Value J) {
      Value VJ = B.loadIdx(Arr, J);
      ifThen(B, B.icmp(Pred::LE, VJ, Pivot), [&] {
        B.store(B.add(B.load(IVar), B.constInt(1)), IVar);
        Value I = B.load(IVar);
        Value Tmp = B.loadIdx(Arr, I);
        B.storeIdx(VJ, Arr, I);
        B.storeIdx(Tmp, Arr, J);
      });
    });
    Value P = B.add(B.load(IVar), B.constInt(1));
    Value TmpP = B.loadIdx(Arr, P);
    B.storeIdx(B.loadIdx(Arr, Hi), Arr, P);
    B.storeIdx(TmpP, Arr, Hi);
    B.call("quicksort", {Arr, Lo, B.sub(P, B.constInt(1))});
    B.call("quicksort", {Arr, B.add(P, B.constInt(1)), Hi});
    B.ret(B.constInt(0));
    B.finish();
  }

  IRBuilder B(M, "bench_main", 0);
  Value Arr = B.alloca_(8 * N);
  Value Rng = lcgInit(B, 1234567);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    B.storeIdx(lcgNext(B, Rng), Arr, I);
  });
  B.call("quicksort", {Arr, B.constInt(0), B.constInt(N - 1)});
  B.ret(emitSortChecksum(B, Arr, N));
  B.finish();
  return M;
}

ir::IRModule bench::buildBucketSort() {
  IRModule M;
  M.Name = "BucketSort";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 256, Buckets = 64;
  Value Arr = B.alloca_(8 * N);
  Value Counts = B.alloca_(8 * Buckets);
  Value Rng = lcgInit(B, 42);

  forLoop(B, B.constInt(0), B.constInt(Buckets), [&](Value I) {
    B.storeIdx(B.constInt(0), Counts, I);
  });
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    Value V = B.srem(lcgNext(B, Rng), B.constInt(Buckets));
    B.storeIdx(V, Arr, I);
    B.storeIdx(B.add(B.loadIdx(Counts, V), B.constInt(1)), Counts, V);
  });
  // Rebuild in sorted order.
  Value Out = B.alloca_(8);
  B.store(B.constInt(0), Out);
  forLoop(B, B.constInt(0), B.constInt(Buckets), [&](Value Bk) {
    forLoop(B, B.constInt(0), B.loadIdx(Counts, Bk), [&](Value) {
      B.storeIdx(Bk, Arr, B.load(Out));
      B.store(B.add(B.load(Out), B.constInt(1)), Out);
    });
  });
  B.ret(emitSortChecksum(B, Arr, N));
  B.finish();
  return M;
}

ir::IRModule bench::buildCountingSort() {
  IRModule M;
  M.Name = "CountingSort";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 400, K = 256;
  Value In = B.alloca_(8 * N);
  Value Outp = B.alloca_(8 * N);
  Value Counts = B.alloca_(8 * (K + 1));
  Value Rng = lcgInit(B, 77);

  forLoop(B, B.constInt(0), B.constInt(K + 1), [&](Value I) {
    B.storeIdx(B.constInt(0), Counts, I);
  });
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    Value V = B.srem(lcgNext(B, Rng), B.constInt(K));
    B.storeIdx(V, In, I);
    Value Slot = B.add(V, B.constInt(1));
    B.storeIdx(B.add(B.loadIdx(Counts, Slot), B.constInt(1)), Counts, Slot);
  });
  // Prefix sums.
  forLoop(B, B.constInt(1), B.constInt(K + 1), [&](Value I) {
    Value Prev = B.loadIdx(Counts, B.sub(I, B.constInt(1)));
    B.storeIdx(B.add(B.loadIdx(Counts, I), Prev), Counts, I);
  });
  // Stable placement.
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    Value V = B.loadIdx(In, I);
    Value Slot = B.loadIdx(Counts, V);
    B.storeIdx(V, Outp, Slot);
    B.storeIdx(B.add(Slot, B.constInt(1)), Counts, V);
  });
  B.ret(emitSortChecksum(B, Outp, N));
  B.finish();
  return M;
}

ir::IRModule bench::buildCountOccurrences() {
  IRModule M;
  M.Name = "CountOccurrences";

  // lower_bound(arr, n, key): first index with arr[i] >= key.
  {
    IRBuilder B(M, "lower_bound", 3);
    Value Arr = B.param(0), N = B.param(1), Key = B.param(2);
    Value Lo = B.alloca_(8), Hi = B.alloca_(8);
    B.store(B.constInt(0), Lo);
    B.store(N, Hi);
    whileLoop(
        B, [&] { return B.icmp(Pred::LT, B.load(Lo), B.load(Hi)); },
        [&] {
          Value Mid = B.ashr(B.add(B.load(Lo), B.load(Hi)), B.constInt(1));
          ifThenElse(
              B, B.icmp(Pred::LT, B.loadIdx(Arr, Mid), Key),
              [&] { B.store(B.add(Mid, B.constInt(1)), Lo); },
              [&] { B.store(Mid, Hi); });
        });
    B.ret(B.load(Lo));
    B.finish();
  }
  // upper_bound(arr, n, key): first index with arr[i] > key.
  {
    IRBuilder B(M, "upper_bound", 3);
    Value Arr = B.param(0), N = B.param(1), Key = B.param(2);
    Value Lo = B.alloca_(8), Hi = B.alloca_(8);
    B.store(B.constInt(0), Lo);
    B.store(N, Hi);
    whileLoop(
        B, [&] { return B.icmp(Pred::LT, B.load(Lo), B.load(Hi)); },
        [&] {
          Value Mid = B.ashr(B.add(B.load(Lo), B.load(Hi)), B.constInt(1));
          ifThenElse(
              B, B.icmp(Pred::LE, B.loadIdx(Arr, Mid), Key),
              [&] { B.store(B.add(Mid, B.constInt(1)), Lo); },
              [&] { B.store(Mid, Hi); });
        });
    B.ret(B.load(Lo));
    B.finish();
  }

  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 600;
  Value Arr = B.alloca_(8 * N);
  // Non-decreasing fill: arr[i] = (i*7)/10.
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    B.storeIdx(B.sdiv(B.mul(I, B.constInt(7)), B.constInt(10)), Arr, I);
  });
  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), B.constInt(64), [&](Value Key) {
    Value LB = B.call("lower_bound", {Arr, B.constInt(N), Key});
    Value UB = B.call("upper_bound", {Arr, B.constInt(N), Key});
    Value Count = B.sub(UB, LB);
    B.store(B.add(B.load(Sum), B.mul(Count, B.add(Key, B.constInt(1)))),
            Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}
