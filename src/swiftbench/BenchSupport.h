//===- swiftbench/BenchSupport.h - IR-building helpers ----------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured-control-flow helpers used by the 26 Table IV benchmark
/// programs: counted loops, while loops, and if/else on top of IRBuilder's
/// raw blocks, plus a deterministic in-IR linear congruential generator so
/// benchmark inputs are synthesized by the benchmark program itself.
///
/// All helpers assume the builder is positioned in an unterminated block
/// and leave it positioned in a fresh unterminated block.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SWIFTBENCH_BENCHSUPPORT_H
#define MCO_SWIFTBENCH_BENCHSUPPORT_H

#include "ir/IRBuilder.h"

#include <functional>

namespace mco {
namespace bench {

using ir::IRBuilder;
using ir::Pred;
using ir::Value;

/// Emits `for (i = Start; i <Cmp> End; i += Step) Body(i)`.
inline void forLoop(IRBuilder &B, Value Start, Value End,
                    const std::function<void(Value)> &Body, int64_t Step = 1,
                    Pred Cmp = Pred::LT) {
  Value IVar = B.alloca_(8);
  B.store(Start, IVar);
  uint32_t Pre = B.currentBlock();
  uint32_t Header = B.newBlock();
  uint32_t BodyBlk = B.newBlock();
  uint32_t Exit = B.newBlock();
  B.setBlock(Pre);
  B.br(Header);
  B.setBlock(Header);
  Value Cond = B.icmp(Cmp, B.load(IVar), End);
  B.condBr(Cond, BodyBlk, Exit);
  B.setBlock(BodyBlk);
  Body(B.load(IVar));
  B.store(B.add(B.load(IVar), B.constInt(Step)), IVar);
  B.br(Header);
  B.setBlock(Exit);
}

/// Emits `while (Cond()) Body()`. \p Cond is evaluated in the loop header.
inline void whileLoop(IRBuilder &B, const std::function<Value()> &Cond,
                      const std::function<void()> &Body) {
  uint32_t Pre = B.currentBlock();
  uint32_t Header = B.newBlock();
  uint32_t BodyBlk = B.newBlock();
  uint32_t Exit = B.newBlock();
  B.setBlock(Pre);
  B.br(Header);
  B.setBlock(Header);
  Value C = Cond();
  B.condBr(C, BodyBlk, Exit);
  B.setBlock(BodyBlk);
  Body();
  B.br(Header);
  B.setBlock(Exit);
}

/// Emits `if (Cond) Then()`.
inline void ifThen(IRBuilder &B, Value Cond,
                   const std::function<void()> &Then) {
  uint32_t Pre = B.currentBlock();
  uint32_t T = B.newBlock();
  uint32_t Exit = B.newBlock();
  B.setBlock(Pre);
  B.condBr(Cond, T, Exit);
  B.setBlock(T);
  Then();
  B.br(Exit);
  B.setBlock(Exit);
}

/// Emits `if (Cond) Then() else Else()`.
inline void ifThenElse(IRBuilder &B, Value Cond,
                       const std::function<void()> &Then,
                       const std::function<void()> &Else) {
  uint32_t Pre = B.currentBlock();
  uint32_t T = B.newBlock();
  uint32_t E = B.newBlock();
  uint32_t Exit = B.newBlock();
  B.setBlock(Pre);
  B.condBr(Cond, T, E);
  B.setBlock(T);
  Then();
  B.br(Exit);
  B.setBlock(E);
  Else();
  B.br(Exit);
  B.setBlock(Exit);
}

/// Advances the LCG state at \p StatePtr and \returns a pseudo-random
/// value in [0, 2^30).
inline Value lcgNext(IRBuilder &B, Value StatePtr) {
  Value S = B.load(StatePtr);
  Value Next = B.add(B.mul(S, B.constInt(6364136223846793005ll)),
                     B.constInt(1442695040888963407ll));
  B.store(Next, StatePtr);
  Value Shifted = B.ashr(Next, B.constInt(33));
  return B.and_(Shifted, B.constInt((1ll << 30) - 1));
}

/// Allocates and seeds an LCG state slot.
inline Value lcgInit(IRBuilder &B, int64_t Seed) {
  Value P = B.alloca_(8);
  B.store(B.constInt(Seed), P);
  return P;
}

/// min/max via select.
inline Value emitMin(IRBuilder &B, Value A, Value V) {
  return B.select(B.icmp(Pred::LT, A, V), A, V);
}
inline Value emitMax(IRBuilder &B, Value A, Value V) {
  return B.select(B.icmp(Pred::GT, A, V), A, V);
}

} // namespace bench
} // namespace mco

#endif // MCO_SWIFTBENCH_BENCHSUPPORT_H
