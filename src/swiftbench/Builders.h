//===- swiftbench/Builders.h - Per-benchmark build functions ----*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal declarations of the 26 benchmark IR builders (grouped into
/// graph / sort / string / tree / math translation units).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SWIFTBENCH_BUILDERS_H
#define MCO_SWIFTBENCH_BUILDERS_H

#include "ir/IR.h"

namespace mco {
namespace bench {

// GraphBenches.cpp
ir::IRModule buildBFS();
ir::IRModule buildDFS();
ir::IRModule buildDijkstra();
ir::IRModule buildTopologicalSort();

// SortBenches.cpp
ir::IRModule buildQuickSort();
ir::IRModule buildBucketSort();
ir::IRModule buildCountingSort();
ir::IRModule buildCountOccurrences();

// StringBenches.cpp
ir::IRModule buildBoyerMooreHorspool();
ir::IRModule buildKnuthMorrisPratt();
ir::IRModule buildZAlgorithm();
ir::IRModule buildLCS();
ir::IRModule buildRunLengthEncoding();
ir::IRModule buildJSON();

// TreeBenches.cpp
ir::IRModule buildHashTable();
ir::IRModule buildLRUCache();
ir::IRModule buildEncodeAndDecodeTree();
ir::IRModule buildRedBlackTree();
ir::IRModule buildSplayTree();
ir::IRModule buildOctTree();

// MathBenches.cpp
ir::IRModule buildGCD();
ir::IRModule buildCombinatorics();
ir::IRModule buildClosestPair();
ir::IRModule buildSimulatedAnnealing();
ir::IRModule buildStrassenMM();
ir::IRModule buildHuffman();

} // namespace bench
} // namespace mco

#endif // MCO_SWIFTBENCH_BUILDERS_H
