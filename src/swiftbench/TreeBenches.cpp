//===- swiftbench/TreeBenches.cpp - Tree & table benchmarks ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "swiftbench/Builders.h"

#include "swiftbench/BenchSupport.h"

using namespace mco;
using namespace mco::ir;
using namespace mco::bench;

namespace {

/// Node-array accessors over a global i64 array.
struct GlobalArray {
  IRBuilder &B;
  Value Base;
  GlobalArray(IRBuilder &B, const std::string &Name)
      : B(B), Base(B.globalAddr(Name)) {}
  Value get(Value I) { return B.loadIdx(Base, I); }
  void set(Value V, Value I) { B.storeIdx(V, Base, I); }
};

void addNodeGlobals(IRModule &M, const std::string &Prefix, int64_t MaxNodes,
                    bool WithColor, bool WithParent) {
  auto Zeros = [&](const std::string &Name, int64_t Words) {
    M.Globals.push_back(
        ir::IRGlobal::fromWords(Name, std::vector<int64_t>(Words, 0)));
  };
  Zeros(Prefix + "_key", MaxNodes);
  Zeros(Prefix + "_left", MaxNodes);
  Zeros(Prefix + "_right", MaxNodes);
  if (WithParent)
    Zeros(Prefix + "_parent", MaxNodes);
  if (WithColor) {
    // 0 = red, 1 = black. The NIL sentinel (node 0) must be black or the
    // insert fixup would treat missing uncles as red forever.
    std::vector<int64_t> Colors(MaxNodes, 0);
    Colors[0] = 1;
    M.Globals.push_back(ir::IRGlobal::fromWords(Prefix + "_color", Colors));
  }
  Zeros(Prefix + "_root", 1);
  // Node 0 is NIL; allocation starts at 1.
  M.Globals.push_back(ir::IRGlobal::fromWords(Prefix + "_count", {1}));
}

/// Emits `<prefix>_rotate_left(x)` / `<prefix>_rotate_right(x)` over the
/// node globals (CLRS rotations with parent pointers).
void emitRotations(IRModule &M, const std::string &P) {
  for (bool LeftRot : {true, false}) {
    IRBuilder B(M, P + (LeftRot ? "_rotate_left" : "_rotate_right"), 1);
    GlobalArray Left(B, P + std::string("_left"));
    GlobalArray Right(B, P + std::string("_right"));
    GlobalArray Parent(B, P + std::string("_parent"));
    Value Root = B.globalAddr(P + "_root");
    GlobalArray &Down = LeftRot ? Right : Left; // x's child that rises.
    GlobalArray &Up = LeftRot ? Left : Right;

    Value X = B.param(0);
    Value Y = Down.get(X);
    // x.down = y.up
    Down.set(Up.get(Y), X);
    ifThen(B, B.icmp(Pred::NE, Up.get(Y), B.constInt(0)),
           [&] { Parent.set(X, Up.get(Y)); });
    // y.parent = x.parent
    Parent.set(Parent.get(X), Y);
    Value XP = Parent.get(X);
    ifThenElse(
        B, B.icmp(Pred::EQ, XP, B.constInt(0)),
        [&] { B.store(Y, Root); },
        [&] {
          ifThenElse(
              B, B.icmp(Pred::EQ, X, Left.get(XP)),
              [&] { Left.set(Y, XP); }, [&] { Right.set(Y, XP); });
        });
    Up.set(X, Y);
    Parent.set(Y, X);
    B.ret(B.constInt(0));
    B.finish();
  }
}

} // namespace

ir::IRModule bench::buildRedBlackTree() {
  IRModule M;
  M.Name = "RedBlackTree";
  const char *P = "rbt";
  addNodeGlobals(M, P, 256, /*WithColor=*/true, /*WithParent=*/true);
  emitRotations(M, P);

  // rbt_insert(key): CLRS insert + fixup.
  {
    IRBuilder B(M, "rbt_insert", 1);
    GlobalArray Key(B, "rbt_key");
    GlobalArray Left(B, "rbt_left");
    GlobalArray Right(B, "rbt_right");
    GlobalArray Parent(B, "rbt_parent");
    GlobalArray Color(B, "rbt_color");
    Value Root = B.globalAddr("rbt_root");
    Value Count = B.globalAddr("rbt_count");
    Value K = B.param(0);

    // Allocate node z.
    Value Z = B.load(Count);
    B.store(B.add(Z, B.constInt(1)), Count);
    Key.set(K, Z);
    Left.set(B.constInt(0), Z);
    Right.set(B.constInt(0), Z);
    Color.set(B.constInt(0), Z); // Red.

    // BST descent.
    Value YVar = B.alloca_(8), XVar = B.alloca_(8);
    B.store(B.constInt(0), YVar);
    B.store(B.load(Root), XVar);
    whileLoop(
        B,
        [&] { return B.icmp(Pred::NE, B.load(XVar), B.constInt(0)); },
        [&] {
          Value X = B.load(XVar);
          B.store(X, YVar);
          ifThenElse(
              B, B.icmp(Pred::LT, K, Key.get(X)),
              [&] { B.store(Left.get(X), XVar); },
              [&] { B.store(Right.get(X), XVar); });
        });
    Value Y = B.load(YVar);
    Parent.set(Y, Z);
    ifThenElse(
        B, B.icmp(Pred::EQ, Y, B.constInt(0)),
        [&] { B.store(Z, Root); },
        [&] {
          ifThenElse(
              B, B.icmp(Pred::LT, K, Key.get(Y)),
              [&] { Left.set(Z, Y); }, [&] { Right.set(Z, Y); });
        });

    // Fixup.
    Value ZVar = B.alloca_(8);
    B.store(Z, ZVar);
    whileLoop(
        B,
        [&] {
          Value Zp = Parent.get(B.load(ZVar));
          return B.icmp(Pred::EQ, Color.get(Zp), B.constInt(0));
        },
        [&] {
          Value Zc = B.load(ZVar);
          Value Zp = Parent.get(Zc);
          Value Zg = Parent.get(Zp);
          ifThenElse(
              B, B.icmp(Pred::EQ, Zp, Left.get(Zg)),
              [&] {
                Value Uncle = Right.get(Zg);
                ifThenElse(
                    B, B.icmp(Pred::EQ, Color.get(Uncle), B.constInt(0)),
                    [&] {
                      Color.set(B.constInt(1), Zp);
                      Color.set(B.constInt(1), Uncle);
                      Color.set(B.constInt(0), Zg);
                      B.store(Zg, ZVar);
                    },
                    [&] {
                      ifThen(B, B.icmp(Pred::EQ, Zc, Right.get(Zp)), [&] {
                        B.store(Zp, ZVar);
                        B.call("rbt_rotate_left", {B.load(ZVar)});
                      });
                      Value Zc2 = B.load(ZVar);
                      Value Zp2 = Parent.get(Zc2);
                      Value Zg2 = Parent.get(Zp2);
                      Color.set(B.constInt(1), Zp2);
                      Color.set(B.constInt(0), Zg2);
                      B.call("rbt_rotate_right", {Zg2});
                    });
              },
              [&] {
                Value Uncle = Left.get(Zg);
                ifThenElse(
                    B, B.icmp(Pred::EQ, Color.get(Uncle), B.constInt(0)),
                    [&] {
                      Color.set(B.constInt(1), Zp);
                      Color.set(B.constInt(1), Uncle);
                      Color.set(B.constInt(0), Zg);
                      B.store(Zg, ZVar);
                    },
                    [&] {
                      ifThen(B, B.icmp(Pred::EQ, Zc, Left.get(Zp)), [&] {
                        B.store(Zp, ZVar);
                        B.call("rbt_rotate_right", {B.load(ZVar)});
                      });
                      Value Zc2 = B.load(ZVar);
                      Value Zp2 = Parent.get(Zc2);
                      Value Zg2 = Parent.get(Zp2);
                      Color.set(B.constInt(1), Zp2);
                      Color.set(B.constInt(0), Zg2);
                      B.call("rbt_rotate_left", {Zg2});
                    });
              });
        });
    Color.set(B.constInt(1), B.load(Root));
    // NIL must stay black (fixup may have recolored it as an "uncle").
    Color.set(B.constInt(1), B.constInt(0));
    B.ret(B.constInt(0));
    B.finish();
  }

  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 96;
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    Value K = B.srem(B.add(B.mul(I, B.constInt(37)), B.constInt(11)),
                     B.constInt(1000));
    B.call("rbt_insert", {K});
  });
  // Iterative inorder traversal with an explicit stack.
  GlobalArray Key(B, "rbt_key");
  GlobalArray Left(B, "rbt_left");
  GlobalArray Right(B, "rbt_right");
  GlobalArray Color(B, "rbt_color");
  Value Root = B.globalAddr("rbt_root");
  Value Stack = B.alloca_(8 * 64);
  Value Sp = B.alloca_(8);
  Value Cur = B.alloca_(8);
  Value Sum = B.alloca_(8);
  Value PosC = B.alloca_(8);
  B.store(B.constInt(0), Sp);
  B.store(B.load(Root), Cur);
  B.store(B.constInt(0), Sum);
  B.store(B.constInt(0), PosC);
  whileLoop(
      B,
      [&] {
        Value HasCur = B.icmp(Pred::NE, B.load(Cur), B.constInt(0));
        Value HasStack = B.icmp(Pred::GT, B.load(Sp), B.constInt(0));
        return B.or_(HasCur, HasStack);
      },
      [&] {
        whileLoop(
            B,
            [&] { return B.icmp(Pred::NE, B.load(Cur), B.constInt(0)); },
            [&] {
              B.storeIdx(B.load(Cur), Stack, B.load(Sp));
              B.store(B.add(B.load(Sp), B.constInt(1)), Sp);
              B.store(Left.get(B.load(Cur)), Cur);
            });
        B.store(B.sub(B.load(Sp), B.constInt(1)), Sp);
        Value Node = B.loadIdx(Stack, B.load(Sp));
        B.store(B.add(B.load(PosC), B.constInt(1)), PosC);
        Value Term = B.mul(Key.get(Node), B.load(PosC));
        B.store(B.add(B.load(Sum), B.srem(Term, B.constInt(1000003))), Sum);
        B.store(Right.get(Node), Cur);
      });
  // Fold in the number of black nodes (checks the recoloring logic).
  Value Blacks = B.alloca_(8);
  B.store(B.constInt(0), Blacks);
  forLoop(B, B.constInt(1), B.constInt(N + 1), [&](Value I) {
    B.store(B.add(B.load(Blacks), Color.get(I)), Blacks);
  });
  B.ret(B.add(B.load(Sum), B.mul(B.load(Blacks), B.constInt(1000000))));
  B.finish();
  return M;
}

ir::IRModule bench::buildSplayTree() {
  IRModule M;
  M.Name = "SplayTree";
  const char *P = "spl";
  addNodeGlobals(M, P, 256, /*WithColor=*/false, /*WithParent=*/true);
  emitRotations(M, P);

  // spl_rotate_up(x): rotates x one level up.
  {
    IRBuilder B(M, "spl_rotate_up", 1);
    GlobalArray Left(B, "spl_left");
    GlobalArray Parent(B, "spl_parent");
    Value X = B.param(0);
    Value Pn = Parent.get(X);
    ifThenElse(
        B, B.icmp(Pred::EQ, X, Left.get(Pn)),
        [&] { B.call("spl_rotate_right", {Pn}); },
        [&] { B.call("spl_rotate_left", {Pn}); });
    B.ret(B.constInt(0));
    B.finish();
  }
  // spl_splay(x): bottom-up splay with zig / zig-zig / zig-zag.
  {
    IRBuilder B(M, "spl_splay", 1);
    GlobalArray Left(B, "spl_left");
    GlobalArray Parent(B, "spl_parent");
    Value X = B.param(0);
    whileLoop(
        B,
        [&] { return B.icmp(Pred::NE, Parent.get(X), B.constInt(0)); },
        [&] {
          Value Pn = Parent.get(X);
          Value G = Parent.get(Pn);
          ifThenElse(
              B, B.icmp(Pred::EQ, G, B.constInt(0)),
              [&] { B.call("spl_rotate_up", {X}); }, // Zig.
              [&] {
                Value XIsLeft = B.icmp(Pred::EQ, X, Left.get(Pn));
                Value PIsLeft = B.icmp(Pred::EQ, Pn, Left.get(G));
                ifThenElse(
                    B, B.icmp(Pred::EQ, XIsLeft, PIsLeft),
                    [&] { // Zig-zig: rotate parent first.
                      B.call("spl_rotate_up", {Pn});
                      B.call("spl_rotate_up", {X});
                    },
                    [&] { // Zig-zag: rotate x twice.
                      B.call("spl_rotate_up", {X});
                      B.call("spl_rotate_up", {X});
                    });
              });
        });
    B.ret(B.constInt(0));
    B.finish();
  }
  // spl_insert(key): plain BST insert, then splay the new node.
  {
    IRBuilder B(M, "spl_insert", 1);
    GlobalArray Key(B, "spl_key");
    GlobalArray Left(B, "spl_left");
    GlobalArray Right(B, "spl_right");
    GlobalArray Parent(B, "spl_parent");
    Value Root = B.globalAddr("spl_root");
    Value Count = B.globalAddr("spl_count");
    Value K = B.param(0);
    Value Z = B.load(Count);
    B.store(B.add(Z, B.constInt(1)), Count);
    Key.set(K, Z);
    Left.set(B.constInt(0), Z);
    Right.set(B.constInt(0), Z);
    Parent.set(B.constInt(0), Z);

    Value YVar = B.alloca_(8), XVar = B.alloca_(8);
    B.store(B.constInt(0), YVar);
    B.store(B.load(Root), XVar);
    whileLoop(
        B, [&] { return B.icmp(Pred::NE, B.load(XVar), B.constInt(0)); },
        [&] {
          Value X = B.load(XVar);
          B.store(X, YVar);
          ifThenElse(
              B, B.icmp(Pred::LT, K, Key.get(X)),
              [&] { B.store(Left.get(X), XVar); },
              [&] { B.store(Right.get(X), XVar); });
        });
    Value Y = B.load(YVar);
    Parent.set(Y, Z);
    ifThenElse(
        B, B.icmp(Pred::EQ, Y, B.constInt(0)),
        [&] { B.store(Z, Root); },
        [&] {
          ifThenElse(
              B, B.icmp(Pred::LT, K, Key.get(Y)),
              [&] { Left.set(Z, Y); }, [&] { Right.set(Z, Y); });
        });
    B.call("spl_splay", {Z});
    B.ret(B.constInt(0));
    B.finish();
  }

  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 80;
  GlobalArray Key(B, "spl_key");
  Value Root = B.globalAddr("spl_root");
  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    Value K = B.srem(B.add(B.mul(I, B.constInt(53)), B.constInt(7)),
                     B.constInt(997));
    B.call("spl_insert", {K});
    // After splaying, the inserted key must be at the root.
    B.store(B.add(B.load(Sum),
                  B.srem(Key.get(B.load(Root)), B.constInt(10007))),
            Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}

ir::IRModule bench::buildEncodeAndDecodeTree() {
  IRModule M;
  M.Name = "EncodeAndDecodeTree";
  addNodeGlobals(M, "edt", 160, false, false);  // Original tree.
  addNodeGlobals(M, "edt2", 160, false, false); // Decoded tree.
  M.Globals.push_back(
      ir::IRGlobal::fromWords("edt_buf", std::vector<int64_t>(512, 0)));

  // edt_insert(key): plain BST insert into the original tree.
  {
    IRBuilder B(M, "edt_insert", 1);
    GlobalArray Key(B, "edt_key");
    GlobalArray Left(B, "edt_left");
    GlobalArray Right(B, "edt_right");
    Value Root = B.globalAddr("edt_root");
    Value Count = B.globalAddr("edt_count");
    Value K = B.param(0);
    Value Z = B.load(Count);
    B.store(B.add(Z, B.constInt(1)), Count);
    Key.set(K, Z);
    Left.set(B.constInt(0), Z);
    Right.set(B.constInt(0), Z);
    ifThenElse(
        B, B.icmp(Pred::EQ, B.load(Root), B.constInt(0)),
        [&] { B.store(Z, Root); },
        [&] {
          Value Cur = B.alloca_(8);
          B.store(B.load(Root), Cur);
          Value Done = B.alloca_(8);
          B.store(B.constInt(0), Done);
          whileLoop(
              B,
              [&] {
                return B.icmp(Pred::EQ, B.load(Done), B.constInt(0));
              },
              [&] {
                Value X = B.load(Cur);
                ifThenElse(
                    B, B.icmp(Pred::LT, K, Key.get(X)),
                    [&] {
                      ifThenElse(
                          B,
                          B.icmp(Pred::EQ, Left.get(X), B.constInt(0)),
                          [&] {
                            Left.set(Z, X);
                            B.store(B.constInt(1), Done);
                          },
                          [&] { B.store(Left.get(X), Cur); });
                    },
                    [&] {
                      ifThenElse(
                          B,
                          B.icmp(Pred::EQ, Right.get(X), B.constInt(0)),
                          [&] {
                            Right.set(Z, X);
                            B.store(B.constInt(1), Done);
                          },
                          [&] { B.store(Right.get(X), Cur); });
                    });
              });
        });
    B.ret(B.constInt(0));
    B.finish();
  }
  // edt_encode(node, posPtr): preorder with -1 sentinels.
  {
    IRBuilder B(M, "edt_encode", 2);
    GlobalArray Key(B, "edt_key");
    GlobalArray Left(B, "edt_left");
    GlobalArray Right(B, "edt_right");
    Value Buf = B.globalAddr("edt_buf");
    Value Node = B.param(0), PosPtr = B.param(1);
    auto Push = [&](Value V) {
      B.storeIdx(V, Buf, B.load(PosPtr));
      B.store(B.add(B.load(PosPtr), B.constInt(1)), PosPtr);
    };
    ifThenElse(
        B, B.icmp(Pred::EQ, Node, B.constInt(0)),
        [&] { Push(B.constInt(-1)); },
        [&] {
          Push(Key.get(Node));
          B.call("edt_encode", {Left.get(Node), PosPtr});
          B.call("edt_encode", {Right.get(Node), PosPtr});
        });
    B.ret(B.constInt(0));
    B.finish();
  }
  // edt_decode(posPtr) -> node index in the second tree.
  {
    IRBuilder B(M, "edt_decode", 1);
    GlobalArray Key2(B, "edt2_key");
    GlobalArray Left2(B, "edt2_left");
    GlobalArray Right2(B, "edt2_right");
    Value Count2 = B.globalAddr("edt2_count");
    Value Buf = B.globalAddr("edt_buf");
    Value PosPtr = B.param(0);
    Value V = B.loadIdx(Buf, B.load(PosPtr));
    B.store(B.add(B.load(PosPtr), B.constInt(1)), PosPtr);
    Value Ret = B.alloca_(8);
    ifThenElse(
        B, B.icmp(Pred::EQ, V, B.constInt(-1)),
        [&] { B.store(B.constInt(0), Ret); },
        [&] {
          Value N = B.load(Count2);
          B.store(B.add(N, B.constInt(1)), Count2);
          Key2.set(V, N);
          Left2.set(B.call("edt_decode", {PosPtr}), N);
          Right2.set(B.call("edt_decode", {PosPtr}), N);
          B.store(N, Ret);
        });
    B.ret(B.load(Ret));
    B.finish();
  }
  // Weighted inorder checksums of both trees.
  for (const char *Pfx : {"edt", "edt2"}) {
    IRBuilder B(M, std::string(Pfx) + "_inorder", 2);
    GlobalArray Key(B, std::string(Pfx) + "_key");
    GlobalArray Left(B, std::string(Pfx) + "_left");
    GlobalArray Right(B, std::string(Pfx) + "_right");
    Value Node = B.param(0), Depth = B.param(1);
    Value Ret = B.alloca_(8);
    ifThenElse(
        B, B.icmp(Pred::EQ, Node, B.constInt(0)),
        [&] { B.store(B.constInt(0), Ret); },
        [&] {
          Value D1 = B.add(Depth, B.constInt(1));
          Value L = B.call(std::string(Pfx) + "_inorder",
                           {Left.get(Node), D1});
          Value R = B.call(std::string(Pfx) + "_inorder",
                           {Right.get(Node), D1});
          Value Mid = B.mul(Key.get(Node), Depth);
          B.store(B.add(B.add(L, Mid), R), Ret);
        });
    B.ret(B.load(Ret));
    B.finish();
  }

  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 64;
  Value Rng = lcgInit(B, 1357);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value) {
    B.call("edt_insert", {B.srem(lcgNext(B, Rng), B.constInt(4096))});
  });
  Value PosPtr = B.alloca_(8);
  B.store(B.constInt(0), PosPtr);
  Value Root = B.globalAddr("edt_root");
  B.call("edt_encode", {B.load(Root), PosPtr});
  Value EncodedLen = B.load(PosPtr);
  B.store(B.constInt(0), PosPtr);
  Value Root2 = B.call("edt_decode", {PosPtr});
  Value S1 = B.call("edt_inorder", {B.load(Root), B.constInt(1)});
  Value S2 = B.call("edt2_inorder", {Root2, B.constInt(1)});
  Value Match = B.icmp(Pred::EQ, S1, S2);
  B.ret(B.add(B.add(B.mul(Match, B.constInt(100000000)),
                    B.srem(S1, B.constInt(1000000))),
              B.mul(EncodedLen, B.constInt(100))));
  B.finish();
  return M;
}

ir::IRModule bench::buildHashTable() {
  IRModule M;
  M.Name = "HashTable";
  IRBuilder B(M, "bench_main", 0);
  const int64_t Cap = 256, Inserts = 150, Lookups = 300;
  Value Table = B.alloca_(8 * Cap);
  Value Rng = lcgInit(B, 86420);
  forLoop(B, B.constInt(0), B.constInt(Cap), [&](Value I) {
    B.storeIdx(B.constInt(-1), Table, I);
  });
  auto EmitHash = [&](Value K) {
    return B.and_(B.mul(K, B.constInt(2654435761ll)),
                  B.constInt(Cap - 1));
  };
  // Open-addressing insert (linear probing). Keys are < 2^20.
  forLoop(B, B.constInt(0), B.constInt(Inserts), [&](Value) {
    Value K = B.and_(lcgNext(B, Rng), B.constInt((1 << 20) - 1));
    Value Slot = B.alloca_(8);
    B.store(EmitHash(K), Slot);
    Value Done = B.alloca_(8);
    B.store(B.constInt(0), Done);
    whileLoop(
        B, [&] { return B.icmp(Pred::EQ, B.load(Done), B.constInt(0)); },
        [&] {
          Value Cur = B.loadIdx(Table, B.load(Slot));
          Value Empty = B.icmp(Pred::EQ, Cur, B.constInt(-1));
          Value Same = B.icmp(Pred::EQ, Cur, K);
          ifThenElse(
              B, B.or_(Empty, Same),
              [&] {
                B.storeIdx(K, Table, B.load(Slot));
                B.store(B.constInt(1), Done);
              },
              [&] {
                B.store(B.and_(B.add(B.load(Slot), B.constInt(1)),
                               B.constInt(Cap - 1)),
                        Slot);
              });
        });
  });
  // Lookups with a fresh generator half-overlapping the inserted keys.
  Value Rng2 = lcgInit(B, 86420);
  Value Hits = B.alloca_(8);
  B.store(B.constInt(0), Hits);
  forLoop(B, B.constInt(0), B.constInt(Lookups), [&](Value I) {
    Value Raw = B.and_(lcgNext(B, Rng2), B.constInt((1 << 20) - 1));
    // Even lookups reuse real keys; odd lookups perturb them.
    Value K = B.add(Raw, B.srem(I, B.constInt(2)));
    Value Slot = B.alloca_(8);
    B.store(EmitHash(K), Slot);
    Value Probes = B.alloca_(8);
    B.store(B.constInt(0), Probes);
    Value Done = B.alloca_(8);
    B.store(B.constInt(0), Done);
    whileLoop(
        B,
        [&] {
          Value NotDone = B.icmp(Pred::EQ, B.load(Done), B.constInt(0));
          Value InBudget =
              B.icmp(Pred::LT, B.load(Probes), B.constInt(Cap));
          return B.and_(NotDone, InBudget);
        },
        [&] {
          Value Cur = B.loadIdx(Table, B.load(Slot));
          ifThenElse(
              B, B.icmp(Pred::EQ, Cur, K),
              [&] {
                B.store(B.add(B.load(Hits), B.constInt(1)), Hits);
                B.store(B.constInt(1), Done);
              },
              [&] {
                ifThenElse(
                    B, B.icmp(Pred::EQ, Cur, B.constInt(-1)),
                    [&] { B.store(B.constInt(1), Done); },
                    [&] {
                      B.store(B.and_(B.add(B.load(Slot), B.constInt(1)),
                                     B.constInt(Cap - 1)),
                              Slot);
                      B.store(B.add(B.load(Probes), B.constInt(1)),
                              Probes);
                    });
              });
        });
  });
  // Occupancy.
  Value Occ = B.alloca_(8);
  B.store(B.constInt(0), Occ);
  forLoop(B, B.constInt(0), B.constInt(Cap), [&](Value I) {
    ifThen(B, B.icmp(Pred::NE, B.loadIdx(Table, I), B.constInt(-1)),
           [&] { B.store(B.add(B.load(Occ), B.constInt(1)), Occ); });
  });
  B.ret(B.add(B.mul(B.load(Hits), B.constInt(1000)), B.load(Occ)));
  B.finish();
  return M;
}

ir::IRModule bench::buildLRUCache() {
  IRModule M;
  M.Name = "LRUCache";
  IRBuilder B(M, "bench_main", 0);
  const int64_t Cap = 16, Ops = 500;
  Value Keys = B.alloca_(8 * Cap);
  Value Vals = B.alloca_(8 * Cap);
  Value Age = B.alloca_(8 * Cap);
  Value Clock = B.alloca_(8);
  Value Hits = B.alloca_(8);
  Value Rng = lcgInit(B, 24680);
  forLoop(B, B.constInt(0), B.constInt(Cap), [&](Value I) {
    B.storeIdx(B.constInt(-1), Keys, I);
    B.storeIdx(B.constInt(0), Vals, I);
    B.storeIdx(B.constInt(0), Age, I);
  });
  B.store(B.constInt(0), Clock);
  B.store(B.constInt(0), Hits);

  forLoop(B, B.constInt(0), B.constInt(Ops), [&](Value Op) {
    Value K = B.srem(lcgNext(B, Rng), B.constInt(40));
    B.store(B.add(B.load(Clock), B.constInt(1)), Clock);
    // Linear scan for the key.
    Value Found = B.alloca_(8);
    B.store(B.constInt(-1), Found);
    forLoop(B, B.constInt(0), B.constInt(Cap), [&](Value I) {
      ifThen(B, B.icmp(Pred::EQ, B.loadIdx(Keys, I), K),
             [&] { B.store(I, Found); });
    });
    ifThenElse(
        B, B.icmp(Pred::GE, B.load(Found), B.constInt(0)),
        [&] { // Hit: refresh age.
          B.store(B.add(B.load(Hits), B.constInt(1)), Hits);
          B.storeIdx(B.load(Clock), Age, B.load(Found));
        },
        [&] { // Miss: evict the LRU slot.
          Value Victim = B.alloca_(8);
          Value BestAge = B.alloca_(8);
          B.store(B.constInt(0), Victim);
          B.store(B.loadIdx(Age, B.constInt(0)), BestAge);
          forLoop(B, B.constInt(1), B.constInt(Cap), [&](Value I) {
            ifThen(B, B.icmp(Pred::LT, B.loadIdx(Age, I), B.load(BestAge)),
                   [&] {
                     B.store(I, Victim);
                     B.store(B.loadIdx(Age, I), BestAge);
                   });
          });
          B.storeIdx(K, Keys, B.load(Victim));
          B.storeIdx(B.mul(K, Op), Vals, B.load(Victim));
          B.storeIdx(B.load(Clock), Age, B.load(Victim));
        });
  });
  Value VSum = B.alloca_(8);
  B.store(B.constInt(0), VSum);
  forLoop(B, B.constInt(0), B.constInt(Cap), [&](Value I) {
    B.store(B.add(B.load(VSum), B.srem(B.loadIdx(Vals, I),
                                       B.constInt(1000))),
            VSum);
  });
  B.ret(B.add(B.mul(B.load(Hits), B.constInt(100000)), B.load(VSum)));
  B.finish();
  return M;
}

ir::IRModule bench::buildOctTree() {
  IRModule M;
  M.Name = "OctTree";
  IRBuilder B(M, "bench_main", 0);
  const int64_t MaxNodes = 1600, Points = 128, Depth = 4;
  Value Children = B.alloca_(8 * MaxNodes * 8);
  Value CountVar = B.alloca_(8);
  Value Rng = lcgInit(B, 111);
  forLoop(B, B.constInt(0), B.constInt(MaxNodes * 8), [&](Value I) {
    B.storeIdx(B.constInt(0), Children, I);
  });
  B.store(B.constInt(2), CountVar); // 0 unused, 1 = root.

  Value OctSum = B.alloca_(8);
  B.store(B.constInt(0), OctSum);
  forLoop(B, B.constInt(0), B.constInt(Points), [&](Value) {
    Value X = B.srem(lcgNext(B, Rng), B.constInt(64));
    Value Y = B.srem(lcgNext(B, Rng), B.constInt(64));
    Value Z = B.srem(lcgNext(B, Rng), B.constInt(64));
    Value Node = B.alloca_(8);
    Value Cx = B.alloca_(8), Cy = B.alloca_(8), Cz = B.alloca_(8);
    Value Half = B.alloca_(8);
    B.store(B.constInt(1), Node);
    B.store(B.constInt(32), Cx);
    B.store(B.constInt(32), Cy);
    B.store(B.constInt(32), Cz);
    B.store(B.constInt(16), Half);
    forLoop(B, B.constInt(0), B.constInt(Depth), [&](Value) {
      Value Ox = B.icmp(Pred::GE, X, B.load(Cx));
      Value Oy = B.icmp(Pred::GE, Y, B.load(Cy));
      Value Oz = B.icmp(Pred::GE, Z, B.load(Cz));
      Value Oct = B.add(Ox, B.add(B.mul(Oy, B.constInt(2)),
                                  B.mul(Oz, B.constInt(4))));
      Value Slot = B.add(B.mul(B.load(Node), B.constInt(8)), Oct);
      Value Child = B.loadIdx(Children, Slot);
      ifThen(B, B.icmp(Pred::EQ, Child, B.constInt(0)), [&] {
        B.storeIdx(B.load(CountVar), Children, Slot);
        B.store(B.add(B.load(CountVar), B.constInt(1)), CountVar);
      });
      B.store(B.loadIdx(Children, Slot), Node);
      // Move the centre toward the point.
      auto Step = [&](Value C, Value Flag) {
        Value Delta = B.select(B.icmp(Pred::NE, Flag, B.constInt(0)),
                               B.load(Half),
                               B.sub(B.constInt(0), B.load(Half)));
        B.store(B.add(B.load(C), Delta), C);
      };
      Step(Cx, Ox);
      Step(Cy, Oy);
      Step(Cz, Oz);
      B.store(B.ashr(B.load(Half), B.constInt(1)), Half);
      B.store(B.add(B.load(OctSum), Oct), OctSum);
    });
  });
  B.ret(B.add(B.mul(B.load(CountVar), B.constInt(31)), B.load(OctSum)));
  B.finish();
  return M;
}
