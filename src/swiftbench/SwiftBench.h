//===- swiftbench/SwiftBench.h - The 26 Table IV benchmarks -----*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 26 algorithm benchmarks of the paper's Table IV ("a set of 26 swift
/// benchmarks that implement popular algorithms"), written against the
/// mid-level IR and compiled by src/codegen, so outlining operates on
/// organically generated machine code. Each benchmark exposes a
/// `bench_main` entry returning a checksum; the checksums are asserted
/// stable across 0..5 rounds of outlining, proving semantic preservation.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SWIFTBENCH_SWIFTBENCH_H
#define MCO_SWIFTBENCH_SWIFTBENCH_H

#include "ir/IR.h"
#include "mir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mco {

/// One Table IV benchmark.
struct SwiftBenchmark {
  std::string Name;
  /// Builds the benchmark's IR module. The entry function is "bench_main"
  /// (no parameters, returns the checksum).
  ir::IRModule (*Build)();
  /// Golden checksum (validated in the test suite).
  int64_t Expected;
};

/// \returns all 26 benchmarks in Table IV order.
const std::vector<SwiftBenchmark> &allSwiftBenchmarks();

/// The pathological micro-benchmark from Section VII-E3: a long-running
/// tight loop whose straight-line body also occurs (cold) elsewhere in the
/// module, so the outliner replaces the *hot* body with a call. Built
/// directly in machine IR so the hot and cold copies are exact clones.
/// The entry function is "bench_main".
void buildPathologicalProgram(Program &Prog, Module &M);

} // namespace mco

#endif // MCO_SWIFTBENCH_SWIFTBENCH_H
