//===- swiftbench/GraphBenches.cpp - BFS/DFS/Dijkstra/Topo ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "swiftbench/Builders.h"

#include "swiftbench/BenchSupport.h"

using namespace mco;
using namespace mco::ir;
using namespace mco::bench;

namespace {

/// Emits the deterministic edge predicate ((u*17 + v*23 + 3) % 7) < 2 with
/// u != v, shared by BFS and DFS.
Value emitEdge(IRBuilder &B, Value U, Value V) {
  Value T = B.add(B.add(B.mul(U, B.constInt(17)), B.mul(V, B.constInt(23))),
                  B.constInt(3));
  Value M = B.srem(T, B.constInt(7));
  Value Dense = B.icmp(Pred::LT, M, B.constInt(2));
  Value Diff = B.icmp(Pred::NE, U, V);
  return B.and_(Dense, Diff);
}

} // namespace

ir::IRModule bench::buildBFS() {
  IRModule M;
  M.Name = "BFS";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 24;
  Value NV = B.constInt(N);
  Value Dist = B.alloca_(8 * N);
  Value Queue = B.alloca_(8 * N);
  Value Head = B.alloca_(8);
  Value Tail = B.alloca_(8);

  forLoop(B, B.constInt(0), NV, [&](Value I) {
    B.storeIdx(B.constInt(-1), Dist, I);
  });
  B.store(B.constInt(0), Head);
  B.store(B.constInt(1), Tail);
  B.storeIdx(B.constInt(0), Queue, B.constInt(0));
  B.storeIdx(B.constInt(0), Dist, B.constInt(0));

  whileLoop(
      B,
      [&] { return B.icmp(Pred::LT, B.load(Head), B.load(Tail)); },
      [&] {
        Value U = B.loadIdx(Queue, B.load(Head));
        B.store(B.add(B.load(Head), B.constInt(1)), Head);
        forLoop(B, B.constInt(0), NV, [&](Value V) {
          Value IsEdge = emitEdge(B, U, V);
          Value Unseen =
              B.icmp(Pred::LT, B.loadIdx(Dist, V), B.constInt(0));
          ifThen(B, B.and_(IsEdge, Unseen), [&] {
            B.storeIdx(B.add(B.loadIdx(Dist, U), B.constInt(1)), Dist, V);
            B.storeIdx(V, Queue, B.load(Tail));
            B.store(B.add(B.load(Tail), B.constInt(1)), Tail);
          });
        });
      });

  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), NV, [&](Value I) {
    Value D = B.add(B.loadIdx(Dist, I), B.constInt(1));
    B.store(B.add(B.load(Sum), B.mul(D, B.add(I, B.constInt(1)))), Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}

ir::IRModule bench::buildDFS() {
  IRModule M;
  M.Name = "DFS";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 24;
  Value NV = B.constInt(N);
  Value Visited = B.alloca_(8 * N);
  Value Order = B.alloca_(8 * N);
  Value Stack = B.alloca_(8 * N * N); // Generous: duplicates allowed.
  Value Sp = B.alloca_(8);
  Value Counter = B.alloca_(8);

  forLoop(B, B.constInt(0), NV, [&](Value I) {
    B.storeIdx(B.constInt(0), Visited, I);
    B.storeIdx(B.constInt(0), Order, I);
  });
  B.store(B.constInt(1), Sp);
  B.storeIdx(B.constInt(0), Stack, B.constInt(0));
  B.store(B.constInt(0), Counter);

  whileLoop(
      B, [&] { return B.icmp(Pred::GT, B.load(Sp), B.constInt(0)); },
      [&] {
        B.store(B.sub(B.load(Sp), B.constInt(1)), Sp);
        Value U = B.loadIdx(Stack, B.load(Sp));
        ifThen(B,
               B.icmp(Pred::EQ, B.loadIdx(Visited, U), B.constInt(0)),
               [&] {
                 B.storeIdx(B.constInt(1), Visited, U);
                 B.storeIdx(B.load(Counter), Order, U);
                 B.store(B.add(B.load(Counter), B.constInt(1)), Counter);
                 // Push unvisited neighbours in increasing order.
                 forLoop(B, B.constInt(0), NV, [&](Value V) {
                   Value IsEdge = emitEdge(B, U, V);
                   Value Unseen = B.icmp(Pred::EQ, B.loadIdx(Visited, V),
                                         B.constInt(0));
                   ifThen(B, B.and_(IsEdge, Unseen), [&] {
                     B.storeIdx(V, Stack, B.load(Sp));
                     B.store(B.add(B.load(Sp), B.constInt(1)), Sp);
                   });
                 });
               });
      });

  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), NV, [&](Value I) {
    Value Term = B.mul(B.loadIdx(Order, I), B.add(I, B.constInt(3)));
    B.store(B.add(B.load(Sum), Term), Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}

ir::IRModule bench::buildDijkstra() {
  IRModule M;
  M.Name = "Dijkstra";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 20;
  const int64_t Inf = 1 << 28;
  Value NV = B.constInt(N);
  Value InfV = B.constInt(Inf);
  Value Dist = B.alloca_(8 * N);
  Value Used = B.alloca_(8 * N);

  auto EmitWeight = [&](Value U, Value V) -> Value {
    // Edge if (u+v) % 3 != 0 with weight ((u*31 + v*17) % 9) + 1.
    Value S = B.srem(B.add(U, V), B.constInt(3));
    Value HasEdge = B.icmp(Pred::NE, S, B.constInt(0));
    Value W = B.add(
        B.srem(B.add(B.mul(U, B.constInt(31)), B.mul(V, B.constInt(17))),
               B.constInt(9)),
        B.constInt(1));
    return B.select(HasEdge, W, InfV);
  };

  forLoop(B, B.constInt(0), NV, [&](Value I) {
    B.storeIdx(InfV, Dist, I);
    B.storeIdx(B.constInt(0), Used, I);
  });
  B.storeIdx(B.constInt(0), Dist, B.constInt(0));

  forLoop(B, B.constInt(0), NV, [&](Value) {
    // Select the unused vertex with minimum distance.
    Value Best = B.alloca_(8);
    Value BestD = B.alloca_(8);
    B.store(B.constInt(-1), Best);
    B.store(B.add(InfV, B.constInt(1)), BestD);
    forLoop(B, B.constInt(0), NV, [&](Value I) {
      Value Free = B.icmp(Pred::EQ, B.loadIdx(Used, I), B.constInt(0));
      Value Less = B.icmp(Pred::LT, B.loadIdx(Dist, I), B.load(BestD));
      ifThen(B, B.and_(Free, Less), [&] {
        B.store(I, Best);
        B.store(B.loadIdx(Dist, I), BestD);
      });
    });
    ifThen(B, B.icmp(Pred::GE, B.load(Best), B.constInt(0)), [&] {
      Value U = B.load(Best);
      B.storeIdx(B.constInt(1), Used, U);
      forLoop(B, B.constInt(0), NV, [&](Value V) {
        Value Cand = B.add(B.loadIdx(Dist, U), EmitWeight(U, V));
        ifThen(B, B.icmp(Pred::LT, Cand, B.loadIdx(Dist, V)), [&] {
          B.storeIdx(Cand, Dist, V);
        });
      });
    });
  });

  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), NV, [&](Value I) {
    B.store(B.add(B.load(Sum), B.loadIdx(Dist, I)), Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}

ir::IRModule bench::buildTopologicalSort() {
  IRModule M;
  M.Name = "TopologicalSort";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 32;
  Value NV = B.constInt(N);
  Value InDeg = B.alloca_(8 * N);
  Value Pos = B.alloca_(8 * N);
  Value Queue = B.alloca_(8 * N);
  Value Head = B.alloca_(8);
  Value Tail = B.alloca_(8);

  auto EmitDagEdge = [&](Value U, Value V) -> Value {
    // u -> v iff u < v and (u*5 + v*11) % 4 == 0.
    Value Lt = B.icmp(Pred::LT, U, V);
    Value H = B.srem(B.add(B.mul(U, B.constInt(5)), B.mul(V, B.constInt(11))),
                     B.constInt(4));
    return B.and_(Lt, B.icmp(Pred::EQ, H, B.constInt(0)));
  };

  forLoop(B, B.constInt(0), NV, [&](Value I) {
    B.storeIdx(B.constInt(0), InDeg, I);
    B.storeIdx(B.constInt(-1), Pos, I);
  });
  // Compute in-degrees.
  forLoop(B, B.constInt(0), NV, [&](Value U) {
    forLoop(B, B.constInt(0), NV, [&](Value V) {
      ifThen(B, EmitDagEdge(U, V), [&] {
        B.storeIdx(B.add(B.loadIdx(InDeg, V), B.constInt(1)), InDeg, V);
      });
    });
  });
  // Kahn's algorithm.
  B.store(B.constInt(0), Head);
  B.store(B.constInt(0), Tail);
  forLoop(B, B.constInt(0), NV, [&](Value I) {
    ifThen(B, B.icmp(Pred::EQ, B.loadIdx(InDeg, I), B.constInt(0)), [&] {
      B.storeIdx(I, Queue, B.load(Tail));
      B.store(B.add(B.load(Tail), B.constInt(1)), Tail);
    });
  });
  Value Counter = B.alloca_(8);
  B.store(B.constInt(0), Counter);
  whileLoop(
      B, [&] { return B.icmp(Pred::LT, B.load(Head), B.load(Tail)); },
      [&] {
        Value U = B.loadIdx(Queue, B.load(Head));
        B.store(B.add(B.load(Head), B.constInt(1)), Head);
        B.storeIdx(B.load(Counter), Pos, U);
        B.store(B.add(B.load(Counter), B.constInt(1)), Counter);
        forLoop(B, B.constInt(0), NV, [&](Value V) {
          ifThen(B, EmitDagEdge(U, V), [&] {
            Value D = B.sub(B.loadIdx(InDeg, V), B.constInt(1));
            B.storeIdx(D, InDeg, V);
            ifThen(B, B.icmp(Pred::EQ, D, B.constInt(0)), [&] {
              B.storeIdx(V, Queue, B.load(Tail));
              B.store(B.add(B.load(Tail), B.constInt(1)), Tail);
            });
          });
        });
      });

  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), NV, [&](Value I) {
    Value Term = B.mul(B.add(B.loadIdx(Pos, I), B.constInt(1)),
                       B.add(I, B.constInt(1)));
    B.store(B.add(B.load(Sum), Term), Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}
