//===- swiftbench/SwiftBench.cpp - Benchmark registry ---------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "swiftbench/SwiftBench.h"

#include "swiftbench/Builders.h"
#include "swiftbench/BenchSupport.h"
#include "mir/MIRBuilder.h"

using namespace mco;
using namespace mco::bench;

namespace {
static constexpr int64_t GOLDEN_BFS = 891;
static constexpr int64_t GOLDEN_BMH = 3797;
static constexpr int64_t GOLDEN_BUCKET = 1001361374;
static constexpr int64_t GOLDEN_CLOSEST = 11152;
static constexpr int64_t GOLDEN_COMB = 976423262;
static constexpr int64_t GOLDEN_COUNTOCC = 2981;
static constexpr int64_t GOLDEN_COUNTSORT = 1003749375;
static constexpr int64_t GOLDEN_DFS = 3276;
static constexpr int64_t GOLDEN_DIJKSTRA = 80;
static constexpr int64_t GOLDEN_EDT = 100868789;
static constexpr int64_t GOLDEN_GCD = 828;
static constexpr int64_t GOLDEN_HASH = 75150;
static constexpr int64_t GOLDEN_HUFFMAN = 2531;
static constexpr int64_t GOLDEN_JSON = 84200;
static constexpr int64_t GOLDEN_KMP = 3;
static constexpr int64_t GOLDEN_LCS = 22;
static constexpr int64_t GOLDEN_LRU = 19108445;
static constexpr int64_t GOLDEN_OCT = 11339;
static constexpr int64_t GOLDEN_QUICK = 1006196551;
static constexpr int64_t GOLDEN_RBT = 40876614;
static constexpr int64_t GOLDEN_RLE = 1074000;
static constexpr int64_t GOLDEN_SA = 90374;
static constexpr int64_t GOLDEN_SPLAY = 38430;
static constexpr int64_t GOLDEN_STRASSEN = 1310470;
static constexpr int64_t GOLDEN_TOPO = 11440;
static constexpr int64_t GOLDEN_Z = 298;
} // namespace

// Golden checksums, produced once with the reference interpreter at zero
// rounds of outlining and asserted in the test suite for every build
// configuration (rounds 0..5, both pipelines). A value of 0 here means
// "not yet pinned" and is rejected by the tests.
const std::vector<SwiftBenchmark> &mco::allSwiftBenchmarks() {
  static const std::vector<SwiftBenchmark> Benchmarks = {
      {"BFS", buildBFS, GOLDEN_BFS},
      {"BoyerMooreHorspool", buildBoyerMooreHorspool, GOLDEN_BMH},
      {"BucketSort", buildBucketSort, GOLDEN_BUCKET},
      {"ClosestPair", buildClosestPair, GOLDEN_CLOSEST},
      {"Combinatorics", buildCombinatorics, GOLDEN_COMB},
      {"CountingSort", buildCountingSort, GOLDEN_COUNTSORT},
      {"CountOccurrences", buildCountOccurrences, GOLDEN_COUNTOCC},
      {"DFS", buildDFS, GOLDEN_DFS},
      {"Dijkstra", buildDijkstra, GOLDEN_DIJKSTRA},
      {"EncodeAndDecodeTree", buildEncodeAndDecodeTree, GOLDEN_EDT},
      {"GCD", buildGCD, GOLDEN_GCD},
      {"HashTable", buildHashTable, GOLDEN_HASH},
      {"Huffman", buildHuffman, GOLDEN_HUFFMAN},
      {"JSON", buildJSON, GOLDEN_JSON},
      {"KnuthMorrisPratt", buildKnuthMorrisPratt, GOLDEN_KMP},
      {"LCS", buildLCS, GOLDEN_LCS},
      {"LRUCache", buildLRUCache, GOLDEN_LRU},
      {"OctTree", buildOctTree, GOLDEN_OCT},
      {"QuickSort", buildQuickSort, GOLDEN_QUICK},
      {"RedBlackTree", buildRedBlackTree, GOLDEN_RBT},
      {"RunLengthEncoding", buildRunLengthEncoding, GOLDEN_RLE},
      {"SimulatedAnnealing", buildSimulatedAnnealing, GOLDEN_SA},
      {"SplayTree", buildSplayTree, GOLDEN_SPLAY},
      {"StrassenMM", buildStrassenMM, GOLDEN_STRASSEN},
      {"TopologicalSort", buildTopologicalSort, GOLDEN_TOPO},
      {"ZAlgorithm", buildZAlgorithm, GOLDEN_Z},
  };
  return Benchmarks;
}

void mco::buildPathologicalProgram(Program &Prog, Module &M) {
  // A 20-instruction straight-line "body" appears in a hot 50k-iteration
  // loop and in three cold functions. With LR dead inside the loop (the
  // function spills LR for an unrelated call), the outliner replaces the
  // hot body with a bare BL, adding one call + one return per iteration:
  // ~2 extra instructions on a ~23-instruction loop, the paper's ~8.7%.
  auto EmitBody = [](MIRBuilder &B) {
    for (int K = 0; K < 10; ++K) {
      B.addri(Reg::X2, Reg::X2, 3 + K);
      B.eorrr(Reg::X2, Reg::X2, Reg::X3);
    }
  };
  for (int Clone = 0; Clone < 3; ++Clone) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol("cold_" + std::to_string(Clone));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X9, 1000 + Clone); // Unique so the pattern is body-only.
    EmitBody(B);
    B.movrr(Reg::X0, Reg::X2);
    B.ret();
    M.Functions.push_back(MF);
  }
  {
    MachineFunction MF;
    MF.Name = Prog.internSymbol("helper_leaf");
    MIRBuilder B(MF.addBlock());
    B.addri(Reg::X0, Reg::X0, 1);
    B.ret();
    M.Functions.push_back(MF);
  }
  MachineFunction MF;
  MF.Name = Prog.internSymbol("bench_main");
  MIRBuilder B(MF.addBlock());
  // Prologue: spill LR around an unrelated call so LR is dead in the loop.
  B.strpre(LR, Reg::SP, -16);
  B.movri(Reg::X0, 0);
  B.bl(Prog.internSymbol("helper_leaf"));
  B.movri(Reg::X2, 7);
  B.movri(Reg::X3, 0x55);
  B.movri(Reg::X4, 50000);
  B.b(1);
  MIRBuilder LB(MF.addBlock()); // Block 1: the hot loop.
  EmitBody(LB);
  LB.subri(Reg::X4, Reg::X4, 1);
  LB.cbnz(Reg::X4, 1);
  MIRBuilder TB(MF.addBlock()); // Block 2: epilogue.
  TB.movrr(Reg::X0, Reg::X2);
  TB.ldrpost(LR, Reg::SP, 16);
  TB.ret();
  M.Functions.push_back(MF);
}
