//===- swiftbench/MathBenches.cpp - Numeric benchmarks --------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "swiftbench/Builders.h"

#include "swiftbench/BenchSupport.h"

using namespace mco;
using namespace mco::ir;
using namespace mco::bench;

ir::IRModule bench::buildGCD() {
  IRModule M;
  M.Name = "GCD";
  {
    IRBuilder B(M, "gcd", 2);
    Value AVar = B.alloca_(8), BVar = B.alloca_(8);
    B.store(B.param(0), AVar);
    B.store(B.param(1), BVar);
    whileLoop(
        B,
        [&] { return B.icmp(Pred::NE, B.load(BVar), B.constInt(0)); },
        [&] {
          Value T = B.load(BVar);
          B.store(B.srem(B.load(AVar), T), BVar);
          B.store(T, AVar);
        });
    B.ret(B.load(AVar));
    B.finish();
  }
  IRBuilder B(M, "bench_main", 0);
  Value Rng = lcgInit(B, 314159);
  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), B.constInt(300), [&](Value) {
    Value A = B.add(B.srem(lcgNext(B, Rng), B.constInt(100000)),
                    B.constInt(1));
    Value Bv = B.add(B.srem(lcgNext(B, Rng), B.constInt(100000)),
                     B.constInt(1));
    B.store(B.add(B.load(Sum), B.call("gcd", {A, Bv})), Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}

ir::IRModule bench::buildCombinatorics() {
  IRModule M;
  M.Name = "Combinatorics";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 40;
  // Pascal's triangle row by row, mod a prime to avoid overflow.
  const int64_t Mod = 1000000007;
  Value Row = B.alloca_(8 * (N + 1));
  Value Prev = B.alloca_(8 * (N + 1));
  Value Check = B.alloca_(8);
  B.store(B.constInt(0), Check);
  forLoop(B, B.constInt(0), B.constInt(N + 1), [&](Value I) {
    B.storeIdx(B.constInt(0), Prev, I);
    B.storeIdx(B.constInt(0), Row, I);
  });
  B.storeIdx(B.constInt(1), Prev, B.constInt(0));
  forLoop(B, B.constInt(1), B.constInt(N + 1), [&](Value RowIdx) {
    B.storeIdx(B.constInt(1), Row, B.constInt(0));
    forLoop(B, B.constInt(1), B.add(RowIdx, B.constInt(1)), [&](Value K) {
      Value A = B.loadIdx(Prev, B.sub(K, B.constInt(1)));
      Value Bv = B.loadIdx(Prev, K);
      B.storeIdx(B.srem(B.add(A, Bv), B.constInt(Mod)), Row, K);
    });
    // Fold the row into the checksum, then swap via copy.
    forLoop(B, B.constInt(0), B.add(RowIdx, B.constInt(1)), [&](Value K) {
      Value Term = B.mul(B.loadIdx(Row, K), B.add(K, B.constInt(1)));
      B.store(B.srem(B.add(B.load(Check), Term), B.constInt(Mod)), Check);
      B.storeIdx(B.loadIdx(Row, K), Prev, K);
    });
  });
  B.ret(B.load(Check));
  B.finish();
  return M;
}

ir::IRModule bench::buildClosestPair() {
  IRModule M;
  M.Name = "ClosestPair";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 80;
  Value Xs = B.alloca_(8 * N);
  Value Ys = B.alloca_(8 * N);
  Value Rng = lcgInit(B, 9999);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    B.storeIdx(B.srem(lcgNext(B, Rng), B.constInt(10000)), Xs, I);
    B.storeIdx(B.srem(lcgNext(B, Rng), B.constInt(10000)), Ys, I);
  });
  Value Best = B.alloca_(8);
  B.store(B.constInt(1ll << 60), Best);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    forLoop(B, B.add(I, B.constInt(1)), B.constInt(N), [&](Value J) {
      Value Dx = B.sub(B.loadIdx(Xs, I), B.loadIdx(Xs, J));
      Value Dy = B.sub(B.loadIdx(Ys, I), B.loadIdx(Ys, J));
      Value D2 = B.add(B.mul(Dx, Dx), B.mul(Dy, Dy));
      ifThen(B, B.icmp(Pred::LT, D2, B.load(Best)),
             [&] { B.store(D2, Best); });
    });
  });
  B.ret(B.load(Best));
  B.finish();
  return M;
}

ir::IRModule bench::buildSimulatedAnnealing() {
  IRModule M;
  M.Name = "SimulatedAnnealing";
  {
    // Energy landscape: (x - 377)^2 + 25 * ((x * 31) % 17).
    IRBuilder B(M, "energy", 1);
    Value X = B.param(0);
    Value D = B.sub(X, B.constInt(377));
    Value Rough = B.srem(B.mul(X, B.constInt(31)), B.constInt(17));
    B.ret(B.add(B.mul(D, D), B.mul(Rough, B.constInt(25))));
    B.finish();
  }
  IRBuilder B(M, "bench_main", 0);
  Value Rng = lcgInit(B, 7131);
  Value XVar = B.alloca_(8);
  B.store(B.constInt(900), XVar);
  Value Temp = B.alloca_(8);
  B.store(B.constInt(4000), Temp);
  forLoop(B, B.constInt(0), B.constInt(3000), [&](Value) {
    // Propose x' = clamp(x + delta, 0, 1023), delta in [-10, 10].
    Value Delta = B.sub(B.srem(lcgNext(B, Rng), B.constInt(21)),
                        B.constInt(10));
    Value Cand = B.add(B.load(XVar), Delta);
    Cand = emitMax(B, Cand, B.constInt(0));
    Cand = emitMin(B, Cand, B.constInt(1023));
    Value ECur = B.call("energy", {B.load(XVar)});
    Value ENew = B.call("energy", {Cand});
    // Accept when the new energy beats the current plus temperature slack.
    Value Slack = B.srem(lcgNext(B, Rng), B.add(B.load(Temp),
                                                B.constInt(1)));
    ifThen(B, B.icmp(Pred::LT, ENew, B.add(ECur, Slack)),
           [&] { B.store(Cand, XVar); });
    // Cool: T = T * 999 / 1000.
    B.store(B.sdiv(B.mul(B.load(Temp), B.constInt(999)),
                   B.constInt(1000)),
            Temp);
  });
  Value EFinal = B.call("energy", {B.load(XVar)});
  B.ret(B.add(B.mul(EFinal, B.constInt(10000)), B.load(XVar)));
  B.finish();
  return M;
}

ir::IRModule bench::buildStrassenMM() {
  IRModule M;
  M.Name = "StrassenMM";
  // All matrices are stored row-major; helpers take (ptr, rowStride).

  // add8/sub8(pa, sa, pb, sb, pc, sc): C = A +/- B over 8x8.
  for (bool IsAdd : {true, false}) {
    IRBuilder B(M, IsAdd ? "mat_add8" : "mat_sub8", 6);
    Value Pa = B.param(0), Sa = B.param(1), Pb = B.param(2),
          Sb = B.param(3), Pc = B.param(4), Sc = B.param(5);
    forLoop(B, B.constInt(0), B.constInt(8), [&](Value I) {
      forLoop(B, B.constInt(0), B.constInt(8), [&](Value J) {
        Value A = B.loadIdx(Pa, B.add(B.mul(I, Sa), J));
        Value Bv = B.loadIdx(Pb, B.add(B.mul(I, Sb), J));
        Value C = IsAdd ? B.add(A, Bv) : B.sub(A, Bv);
        B.storeIdx(C, Pc, B.add(B.mul(I, Sc), J));
      });
    });
    B.ret(B.constInt(0));
    B.finish();
  }
  // mat_mul8: naive 8x8 base case.
  {
    IRBuilder B(M, "mat_mul8", 6);
    Value Pa = B.param(0), Sa = B.param(1), Pb = B.param(2),
          Sb = B.param(3), Pc = B.param(4), Sc = B.param(5);
    forLoop(B, B.constInt(0), B.constInt(8), [&](Value I) {
      forLoop(B, B.constInt(0), B.constInt(8), [&](Value J) {
        Value Acc = B.alloca_(8);
        B.store(B.constInt(0), Acc);
        forLoop(B, B.constInt(0), B.constInt(8), [&](Value K) {
          Value A = B.loadIdx(Pa, B.add(B.mul(I, Sa), K));
          Value Bv = B.loadIdx(Pb, B.add(B.mul(K, Sb), J));
          B.store(B.add(B.load(Acc), B.mul(A, Bv)), Acc);
        });
        B.storeIdx(B.load(Acc), Pc, B.add(B.mul(I, Sc), J));
      });
    });
    B.ret(B.constInt(0));
    B.finish();
  }
  // mat_mul16_naive: reference result.
  {
    IRBuilder B(M, "mat_mul16_naive", 3);
    Value Pa = B.param(0), Pb = B.param(1), Pc = B.param(2);
    forLoop(B, B.constInt(0), B.constInt(16), [&](Value I) {
      forLoop(B, B.constInt(0), B.constInt(16), [&](Value J) {
        Value Acc = B.alloca_(8);
        B.store(B.constInt(0), Acc);
        forLoop(B, B.constInt(0), B.constInt(16), [&](Value K) {
          Value A = B.loadIdx(Pa, B.add(B.mul(I, B.constInt(16)), K));
          Value Bv = B.loadIdx(Pb, B.add(B.mul(K, B.constInt(16)), J));
          B.store(B.add(B.load(Acc), B.mul(A, Bv)), Acc);
        });
        B.storeIdx(B.load(Acc), Pc, B.add(B.mul(I, B.constInt(16)), J));
      });
    });
    B.ret(B.constInt(0));
    B.finish();
  }
  // mat_strassen16(a, b, c): one level of Strassen over 8x8 quadrants.
  {
    IRBuilder B(M, "mat_strassen16", 3);
    Value Pa = B.param(0), Pb = B.param(1), Pc = B.param(2);
    Value S16 = B.constInt(16);
    Value S8 = B.constInt(8);
    auto Quad = [&](Value P, int64_t R, int64_t C) {
      return B.add(P, B.constInt(8 * (R * 16 * 8 + C * 8)));
    };
    Value A11 = Quad(Pa, 0, 0), A12 = Quad(Pa, 0, 1), A21 = Quad(Pa, 1, 0),
          A22 = Quad(Pa, 1, 1);
    Value B11 = Quad(Pb, 0, 0), B12 = Quad(Pb, 0, 1), B21 = Quad(Pb, 1, 0),
          B22 = Quad(Pb, 1, 1);
    Value C11 = Quad(Pc, 0, 0), C12 = Quad(Pc, 0, 1), C21 = Quad(Pc, 1, 0),
          C22 = Quad(Pc, 1, 1);
    // Temporaries: 2 operand buffers + 7 products, 8x8 each (stride 8).
    Value T1 = B.alloca_(8 * 64), T2 = B.alloca_(8 * 64);
    Value Ms[7];
    for (auto &Mp : Ms)
      Mp = B.alloca_(8 * 64);
    auto Add = [&](Value X, Value Sx, Value Y, Value Sy, Value D,
                   Value Sd) { B.call("mat_add8", {X, Sx, Y, Sy, D, Sd}); };
    auto Sub = [&](Value X, Value Sx, Value Y, Value Sy, Value D,
                   Value Sd) { B.call("mat_sub8", {X, Sx, Y, Sy, D, Sd}); };
    auto Mul = [&](Value X, Value Sx, Value Y, Value Sy, Value D,
                   Value Sd) { B.call("mat_mul8", {X, Sx, Y, Sy, D, Sd}); };
    // M1 = (A11 + A22)(B11 + B22)
    Add(A11, S16, A22, S16, T1, S8);
    Add(B11, S16, B22, S16, T2, S8);
    Mul(T1, S8, T2, S8, Ms[0], S8);
    // M2 = (A21 + A22) B11
    Add(A21, S16, A22, S16, T1, S8);
    Mul(T1, S8, B11, S16, Ms[1], S8);
    // M3 = A11 (B12 - B22)
    Sub(B12, S16, B22, S16, T2, S8);
    Mul(A11, S16, T2, S8, Ms[2], S8);
    // M4 = A22 (B21 - B11)
    Sub(B21, S16, B11, S16, T2, S8);
    Mul(A22, S16, T2, S8, Ms[3], S8);
    // M5 = (A11 + A12) B22
    Add(A11, S16, A12, S16, T1, S8);
    Mul(T1, S8, B22, S16, Ms[4], S8);
    // M6 = (A21 - A11)(B11 + B12)
    Sub(A21, S16, A11, S16, T1, S8);
    Add(B11, S16, B12, S16, T2, S8);
    Mul(T1, S8, T2, S8, Ms[5], S8);
    // M7 = (A12 - A22)(B21 + B22)
    Sub(A12, S16, A22, S16, T1, S8);
    Add(B21, S16, B22, S16, T2, S8);
    Mul(T1, S8, T2, S8, Ms[6], S8);
    // C11 = M1 + M4 - M5 + M7
    Add(Ms[0], S8, Ms[3], S8, T1, S8);
    Sub(T1, S8, Ms[4], S8, T2, S8);
    Add(T2, S8, Ms[6], S8, C11, S16);
    // C12 = M3 + M5
    Add(Ms[2], S8, Ms[4], S8, C12, S16);
    // C21 = M2 + M4
    Add(Ms[1], S8, Ms[3], S8, C21, S16);
    // C22 = M1 - M2 + M3 + M6
    Sub(Ms[0], S8, Ms[1], S8, T1, S8);
    Add(T1, S8, Ms[2], S8, T2, S8);
    Add(T2, S8, Ms[5], S8, C22, S16);
    B.ret(B.constInt(0));
    B.finish();
  }

  IRBuilder B(M, "bench_main", 0);
  Value A = B.alloca_(8 * 256);
  Value Bm = B.alloca_(8 * 256);
  Value C1 = B.alloca_(8 * 256);
  Value C2 = B.alloca_(8 * 256);
  Value Rng = lcgInit(B, 2718);
  forLoop(B, B.constInt(0), B.constInt(256), [&](Value I) {
    B.storeIdx(B.srem(lcgNext(B, Rng), B.constInt(10)), A, I);
    B.storeIdx(B.srem(lcgNext(B, Rng), B.constInt(10)), Bm, I);
  });
  B.call("mat_strassen16", {A, Bm, C1});
  B.call("mat_mul16_naive", {A, Bm, C2});
  // Equality flag and weighted checksum.
  Value Equal = B.alloca_(8);
  Value Sum = B.alloca_(8);
  B.store(B.constInt(1), Equal);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), B.constInt(256), [&](Value I) {
    Value V1 = B.loadIdx(C1, I);
    Value V2 = B.loadIdx(C2, I);
    ifThen(B, B.icmp(Pred::NE, V1, V2),
           [&] { B.store(B.constInt(0), Equal); });
    Value W = B.add(B.srem(I, B.constInt(7)), B.constInt(1));
    B.store(B.add(B.load(Sum), B.srem(B.mul(V1, W), B.constInt(10007))),
            Sum);
  });
  B.ret(B.add(B.mul(B.load(Equal), B.constInt(1000000)), B.load(Sum)));
  B.finish();
  return M;
}

ir::IRModule bench::buildHuffman() {
  IRModule M;
  M.Name = "Huffman";
  IRBuilder B(M, "bench_main", 0);
  const int64_t Symbols = 16, Slots = 2 * Symbols;
  Value Freq = B.alloca_(8 * Slots);
  Value Alive = B.alloca_(8 * Slots);
  Value CountV = B.alloca_(8);
  Value Cost = B.alloca_(8);
  forLoop(B, B.constInt(0), B.constInt(Slots), [&](Value I) {
    B.storeIdx(B.constInt(0), Alive, I);
    B.storeIdx(B.constInt(0), Freq, I);
  });
  forLoop(B, B.constInt(0), B.constInt(Symbols), [&](Value I) {
    // freq = (i*i*7) % 100 + 1
    Value F = B.add(B.srem(B.mul(B.mul(I, I), B.constInt(7)),
                           B.constInt(100)),
                    B.constInt(1));
    B.storeIdx(F, Freq, I);
    B.storeIdx(B.constInt(1), Alive, I);
  });
  B.store(B.constInt(Symbols), CountV);
  B.store(B.constInt(0), Cost);

  // Optimal-merge construction: total cost == weighted path length.
  Value Remaining = B.alloca_(8);
  B.store(B.constInt(Symbols), Remaining);
  whileLoop(
      B,
      [&] { return B.icmp(Pred::GT, B.load(Remaining), B.constInt(1)); },
      [&] {
        // Find the two smallest alive frequencies.
        Value Min1 = B.alloca_(8), Min2 = B.alloca_(8);
        B.store(B.constInt(-1), Min1);
        B.store(B.constInt(-1), Min2);
        forLoop(B, B.constInt(0), B.load(CountV), [&](Value I) {
          ifThen(B, B.icmp(Pred::NE, B.loadIdx(Alive, I), B.constInt(0)),
                 [&] {
                   Value F = B.loadIdx(Freq, I);
                   Value NoM1 =
                       B.icmp(Pred::LT, B.load(Min1), B.constInt(0));
                   Value Better1 = B.or_(
                       NoM1,
                       B.icmp(Pred::LT, F,
                              B.loadIdx(Freq,
                                        emitMax(B, B.load(Min1),
                                                B.constInt(0)))));
                   ifThenElse(
                       B, Better1,
                       [&] {
                         B.store(B.load(Min1), Min2);
                         B.store(I, Min1);
                       },
                       [&] {
                         Value NoM2 = B.icmp(Pred::LT, B.load(Min2),
                                             B.constInt(0));
                         Value Better2 = B.or_(
                             NoM2,
                             B.icmp(Pred::LT, F,
                                    B.loadIdx(Freq,
                                              emitMax(B, B.load(Min2),
                                                      B.constInt(0)))));
                         ifThen(B, Better2, [&] { B.store(I, Min2); });
                       });
                 });
        });
        // Merge them.
        Value F1 = B.loadIdx(Freq, B.load(Min1));
        Value F2 = B.loadIdx(Freq, B.load(Min2));
        Value Merged = B.add(F1, F2);
        B.store(B.add(B.load(Cost), Merged), Cost);
        B.storeIdx(B.constInt(0), Alive, B.load(Min1));
        B.storeIdx(B.constInt(0), Alive, B.load(Min2));
        B.storeIdx(Merged, Freq, B.load(CountV));
        B.storeIdx(B.constInt(1), Alive, B.load(CountV));
        B.store(B.add(B.load(CountV), B.constInt(1)), CountV);
        B.store(B.sub(B.load(Remaining), B.constInt(1)), Remaining);
      });
  B.ret(B.load(Cost));
  B.finish();
  return M;
}
