//===- swiftbench/StringBenches.cpp - String & encoding benchmarks --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "swiftbench/Builders.h"

#include "swiftbench/BenchSupport.h"

#include <string>

using namespace mco;
using namespace mco::ir;
using namespace mco::bench;

namespace {

/// Fills Arr[0..N) with LCG symbols in [0, Alphabet).
void emitFillText(IRBuilder &B, Value Arr, int64_t N, int64_t Alphabet,
                  Value Rng) {
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    B.storeIdx(B.srem(lcgNext(B, Rng), B.constInt(Alphabet)), Arr, I);
  });
}

} // namespace

ir::IRModule bench::buildBoyerMooreHorspool() {
  IRModule M;
  M.Name = "BoyerMooreHorspool";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 800, PatLen = 5, Alphabet = 4;
  Value Text = B.alloca_(8 * N);
  Value Pat = B.alloca_(8 * PatLen);
  Value Shift = B.alloca_(8 * Alphabet);
  Value Rng = lcgInit(B, 9001);
  emitFillText(B, Text, N, Alphabet, Rng);
  // Pattern = text[100..100+PatLen).
  forLoop(B, B.constInt(0), B.constInt(PatLen), [&](Value I) {
    B.storeIdx(B.loadIdx(Text, B.add(I, B.constInt(100))), Pat, I);
  });
  // Bad-character shift table.
  forLoop(B, B.constInt(0), B.constInt(Alphabet), [&](Value C) {
    B.storeIdx(B.constInt(PatLen), Shift, C);
  });
  forLoop(B, B.constInt(0), B.constInt(PatLen - 1), [&](Value I) {
    B.storeIdx(B.sub(B.constInt(PatLen - 1), I), Shift, B.loadIdx(Pat, I));
  });
  // Search.
  Value Matches = B.alloca_(8);
  Value PosV = B.alloca_(8);
  B.store(B.constInt(0), Matches);
  B.store(B.constInt(0), PosV);
  whileLoop(
      B,
      [&] {
        return B.icmp(Pred::LE, B.load(PosV), B.constInt(N - PatLen));
      },
      [&] {
        Value Pos = B.load(PosV);
        // Compare right-to-left.
        Value J = B.alloca_(8);
        B.store(B.constInt(PatLen - 1), J);
        whileLoop(
            B,
            [&] {
              Value InRange =
                  B.icmp(Pred::GE, B.load(J), B.constInt(0));
              Value Tc = B.loadIdx(Text, B.add(Pos, emitMax(B, B.load(J),
                                                            B.constInt(0))));
              Value Pc = B.loadIdx(Pat, emitMax(B, B.load(J), B.constInt(0)));
              return B.and_(InRange, B.icmp(Pred::EQ, Tc, Pc));
            },
            [&] { B.store(B.sub(B.load(J), B.constInt(1)), J); });
        ifThen(B, B.icmp(Pred::LT, B.load(J), B.constInt(0)), [&] {
          B.store(B.add(B.load(Matches), B.constInt(1)), Matches);
        });
        Value Last = B.loadIdx(Text, B.add(Pos, B.constInt(PatLen - 1)));
        B.store(B.add(Pos, B.loadIdx(Shift, Last)), PosV);
      });
  B.ret(B.add(B.mul(B.load(Matches), B.constInt(1000)), B.load(PosV)));
  B.finish();
  return M;
}

ir::IRModule bench::buildKnuthMorrisPratt() {
  IRModule M;
  M.Name = "KnuthMorrisPratt";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 900, PatLen = 6, Alphabet = 3;
  Value Text = B.alloca_(8 * N);
  Value Pat = B.alloca_(8 * PatLen);
  Value Fail = B.alloca_(8 * PatLen);
  Value Rng = lcgInit(B, 31337);
  emitFillText(B, Text, N, Alphabet, Rng);
  forLoop(B, B.constInt(0), B.constInt(PatLen), [&](Value I) {
    B.storeIdx(B.loadIdx(Text, B.add(I, B.constInt(50))), Pat, I);
  });
  // Failure function.
  B.storeIdx(B.constInt(0), Fail, B.constInt(0));
  Value K = B.alloca_(8);
  B.store(B.constInt(0), K);
  forLoop(B, B.constInt(1), B.constInt(PatLen), [&](Value I) {
    whileLoop(
        B,
        [&] {
          Value Pos = B.icmp(Pred::GT, B.load(K), B.constInt(0));
          Value Ne = B.icmp(Pred::NE, B.loadIdx(Pat, B.load(K)),
                            B.loadIdx(Pat, I));
          return B.and_(Pos, Ne);
        },
        [&] {
          B.store(B.loadIdx(Fail, B.sub(B.load(K), B.constInt(1))), K);
        });
    ifThen(B,
           B.icmp(Pred::EQ, B.loadIdx(Pat, B.load(K)), B.loadIdx(Pat, I)),
           [&] { B.store(B.add(B.load(K), B.constInt(1)), K); });
    B.storeIdx(B.load(K), Fail, I);
  });
  // Search.
  Value Matches = B.alloca_(8);
  B.store(B.constInt(0), Matches);
  B.store(B.constInt(0), K);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    whileLoop(
        B,
        [&] {
          Value Pos = B.icmp(Pred::GT, B.load(K), B.constInt(0));
          Value Ne = B.icmp(Pred::NE, B.loadIdx(Pat, B.load(K)),
                            B.loadIdx(Text, I));
          return B.and_(Pos, Ne);
        },
        [&] {
          B.store(B.loadIdx(Fail, B.sub(B.load(K), B.constInt(1))), K);
        });
    ifThen(B,
           B.icmp(Pred::EQ, B.loadIdx(Pat, B.load(K)), B.loadIdx(Text, I)),
           [&] { B.store(B.add(B.load(K), B.constInt(1)), K); });
    ifThen(B, B.icmp(Pred::EQ, B.load(K), B.constInt(PatLen)), [&] {
      B.store(B.add(B.load(Matches), B.constInt(1)), Matches);
      B.store(B.loadIdx(Fail, B.constInt(PatLen - 1)), K);
    });
  });
  B.ret(B.load(Matches));
  B.finish();
  return M;
}

ir::IRModule bench::buildZAlgorithm() {
  IRModule M;
  M.Name = "ZAlgorithm";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 600, Alphabet = 3;
  Value S = B.alloca_(8 * N);
  Value Z = B.alloca_(8 * N);
  Value Rng = lcgInit(B, 555);
  emitFillText(B, S, N, Alphabet, Rng);

  Value L = B.alloca_(8), R = B.alloca_(8);
  B.store(B.constInt(0), L);
  B.store(B.constInt(0), R);
  B.storeIdx(B.constInt(0), Z, B.constInt(0));
  forLoop(B, B.constInt(1), B.constInt(N), [&](Value I) {
    Value ZI = B.alloca_(8);
    B.store(B.constInt(0), ZI);
    ifThen(B, B.icmp(Pred::LT, I, B.load(R)), [&] {
      Value Mirror = B.loadIdx(Z, B.sub(I, B.load(L)));
      Value Cap = B.sub(B.load(R), I);
      B.store(emitMin(B, Mirror, Cap), ZI);
    });
    whileLoop(
        B,
        [&] {
          Value InRange =
              B.icmp(Pred::LT, B.add(I, B.load(ZI)), B.constInt(N));
          Value Idx = emitMin(B, B.add(I, B.load(ZI)), B.constInt(N - 1));
          Value Eq = B.icmp(Pred::EQ, B.loadIdx(S, B.load(ZI)),
                            B.loadIdx(S, Idx));
          return B.and_(InRange, Eq);
        },
        [&] { B.store(B.add(B.load(ZI), B.constInt(1)), ZI); });
    B.storeIdx(B.load(ZI), Z, I);
    ifThen(B, B.icmp(Pred::GT, B.add(I, B.load(ZI)), B.load(R)), [&] {
      B.store(I, L);
      B.store(B.add(I, B.load(ZI)), R);
    });
  });
  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    B.store(B.add(B.load(Sum), B.loadIdx(Z, I)), Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}

ir::IRModule bench::buildLCS() {
  IRModule M;
  M.Name = "LCS";
  IRBuilder B(M, "bench_main", 0);
  const int64_t NA = 40, NB = 36, Alphabet = 4;
  Value A = B.alloca_(8 * NA);
  Value Bs = B.alloca_(8 * NB);
  Value Dp = B.alloca_(8 * (NA + 1) * (NB + 1));
  Value Rng = lcgInit(B, 2468);
  emitFillText(B, A, NA, Alphabet, Rng);
  emitFillText(B, Bs, NB, Alphabet, Rng);

  const int64_t Stride = NB + 1;
  auto DpIdx = [&](Value I, Value J) {
    return B.add(B.mul(I, B.constInt(Stride)), J);
  };
  forLoop(B, B.constInt(0), B.constInt((NA + 1) * (NB + 1)), [&](Value I) {
    B.storeIdx(B.constInt(0), Dp, I);
  });
  forLoop(B, B.constInt(1), B.constInt(NA + 1), [&](Value I) {
    forLoop(B, B.constInt(1), B.constInt(NB + 1), [&](Value J) {
      Value Ca = B.loadIdx(A, B.sub(I, B.constInt(1)));
      Value Cb = B.loadIdx(Bs, B.sub(J, B.constInt(1)));
      Value Diag = B.loadIdx(
          Dp, DpIdx(B.sub(I, B.constInt(1)), B.sub(J, B.constInt(1))));
      Value Up = B.loadIdx(Dp, DpIdx(B.sub(I, B.constInt(1)), J));
      Value Left = B.loadIdx(Dp, DpIdx(I, B.sub(J, B.constInt(1))));
      Value Match = B.add(Diag, B.constInt(1));
      Value Best = B.select(B.icmp(Pred::EQ, Ca, Cb), Match,
                            emitMax(B, Up, Left));
      B.storeIdx(Best, Dp, DpIdx(I, J));
    });
  });
  B.ret(B.loadIdx(Dp, DpIdx(B.constInt(NA), B.constInt(NB))));
  B.finish();
  return M;
}

ir::IRModule bench::buildRunLengthEncoding() {
  IRModule M;
  M.Name = "RunLengthEncoding";
  IRBuilder B(M, "bench_main", 0);
  const int64_t N = 512;
  Value In = B.alloca_(8 * N);
  Value Vals = B.alloca_(8 * N);
  Value Lens = B.alloca_(8 * N);
  Value Out = B.alloca_(8 * N);
  // Runs: value (i/7) % 5.
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    B.storeIdx(B.srem(B.sdiv(I, B.constInt(7)), B.constInt(5)), In, I);
  });
  // Encode.
  Value Pairs = B.alloca_(8);
  B.store(B.constInt(0), Pairs);
  Value Pos = B.alloca_(8);
  B.store(B.constInt(0), Pos);
  whileLoop(
      B, [&] { return B.icmp(Pred::LT, B.load(Pos), B.constInt(N)); },
      [&] {
        Value V = B.loadIdx(In, B.load(Pos));
        Value RunLen = B.alloca_(8);
        B.store(B.constInt(0), RunLen);
        whileLoop(
            B,
            [&] {
              Value P = B.add(B.load(Pos), B.load(RunLen));
              Value InRange = B.icmp(Pred::LT, P, B.constInt(N));
              Value Idx = emitMin(B, P, B.constInt(N - 1));
              Value Same = B.icmp(Pred::EQ, B.loadIdx(In, Idx), V);
              return B.and_(InRange, Same);
            },
            [&] { B.store(B.add(B.load(RunLen), B.constInt(1)), RunLen); });
        B.storeIdx(V, Vals, B.load(Pairs));
        B.storeIdx(B.load(RunLen), Lens, B.load(Pairs));
        B.store(B.add(B.load(Pairs), B.constInt(1)), Pairs);
        B.store(B.add(B.load(Pos), B.load(RunLen)), Pos);
      });
  // Decode.
  Value OutPos = B.alloca_(8);
  B.store(B.constInt(0), OutPos);
  forLoop(B, B.constInt(0), B.load(Pairs), [&](Value P) {
    forLoop(B, B.constInt(0), B.loadIdx(Lens, P), [&](Value) {
      B.storeIdx(B.loadIdx(Vals, P), Out, B.load(OutPos));
      B.store(B.add(B.load(OutPos), B.constInt(1)), OutPos);
    });
  });
  // Verify round trip.
  Value Equal = B.alloca_(8);
  B.store(B.constInt(1), Equal);
  forLoop(B, B.constInt(0), B.constInt(N), [&](Value I) {
    ifThen(B,
           B.icmp(Pred::NE, B.loadIdx(In, I), B.loadIdx(Out, I)),
           [&] { B.store(B.constInt(0), Equal); });
  });
  Value Check = B.add(B.mul(B.load(Pairs), B.constInt(1000)),
                      B.mul(B.load(Equal), B.constInt(1000000)));
  B.ret(Check);
  B.finish();
  return M;
}

ir::IRModule bench::buildJSON() {
  IRModule M;
  M.Name = "JSON";

  // Input document as one character word per element.
  const std::string Doc =
      "[12,[3,45,[6,789],1],[22,[33,[44,[55]]]],9,[1,2,3,4,5],[[[[8]]]]]";
  {
    std::vector<int64_t> Words;
    for (char C : Doc)
      Words.push_back(C);
    Words.push_back(0); // NUL terminator.
    M.Globals.push_back(ir::IRGlobal::fromWords("json_doc", Words));
  }

  // parse_value(s, posPtr, depth) -> sum of integers weighted by depth.
  {
    IRBuilder B(M, "parse_value", 3);
    Value S = B.param(0), PosPtr = B.param(1), Depth = B.param(2);
    auto Cur = [&]() { return B.loadIdx(S, B.load(PosPtr)); };
    auto Advance = [&]() {
      B.store(B.add(B.load(PosPtr), B.constInt(1)), PosPtr);
    };

    Value Sum = B.alloca_(8);
    B.store(B.constInt(0), Sum);
    Value IsArray = B.icmp(Pred::EQ, Cur(), B.constInt('['));
    ifThenElse(
        B, IsArray,
        [&] {
          Advance(); // Consume '['.
          whileLoop(
              B,
              [&] { return B.icmp(Pred::NE, Cur(), B.constInt(']')); },
              [&] {
                Value Sub = B.call(
                    "parse_value",
                    {S, PosPtr, B.add(Depth, B.constInt(1))});
                B.store(B.add(B.load(Sum), Sub), Sum);
                ifThen(B, B.icmp(Pred::EQ, Cur(), B.constInt(',')),
                       [&] { Advance(); });
              });
          Advance(); // Consume ']'.
        },
        [&] {
          // Parse an integer literal.
          Value Num = B.alloca_(8);
          B.store(B.constInt(0), Num);
          whileLoop(
              B,
              [&] {
                Value Ge = B.icmp(Pred::GE, Cur(), B.constInt('0'));
                Value Le = B.icmp(Pred::LE, Cur(), B.constInt('9'));
                return B.and_(Ge, Le);
              },
              [&] {
                Value Digit = B.sub(Cur(), B.constInt('0'));
                B.store(B.add(B.mul(B.load(Num), B.constInt(10)), Digit),
                        Num);
                Advance();
              });
          B.store(B.mul(B.load(Num), Depth), Sum);
        });
    B.ret(B.load(Sum));
    B.finish();
  }

  IRBuilder B(M, "bench_main", 0);
  Value Doc2 = B.globalAddr("json_doc");
  Value Sum = B.alloca_(8);
  B.store(B.constInt(0), Sum);
  // Parse repeatedly to give the benchmark some weight.
  forLoop(B, B.constInt(0), B.constInt(20), [&](Value) {
    Value PosPtr = B.alloca_(8);
    B.store(B.constInt(0), PosPtr);
    Value V = B.call("parse_value", {Doc2, PosPtr, B.constInt(1)});
    B.store(B.add(B.load(Sum), V), Sum);
  });
  B.ret(B.load(Sum));
  B.finish();
  return M;
}
