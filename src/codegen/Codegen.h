//===- codegen/Codegen.h - IR to machine-code lowering ----------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the mid-level IR to the AArch64-flavoured machine IR. The code
/// generator is deliberately -O0-shaped: every value lives in a stack slot
/// and is loaded into scratch registers around each operation. Besides
/// being simple and obviously correct, this style produces exactly the
/// highly repetitive machine code (argument marshalling, slot traffic,
/// call sequences) that the paper shows outlining thrives on.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_CODEGEN_CODEGEN_H
#define MCO_CODEGEN_CODEGEN_H

#include "ir/IR.h"
#include "mir/Program.h"

namespace mco {

/// Lowers every function and global of \p IRM into machine module \p M
/// (owned by \p Prog). Function and global symbols are interned in \p Prog.
///
/// \param OriginModule recorded on emitted functions/globals for the
///        linker's data-affinity layout.
void lowerModule(Program &Prog, Module &M, const ir::IRModule &IRM,
                 uint32_t OriginModule = 0);

/// Lowers one function (exposed for tests).
MachineFunction lowerFunction(Program &Prog, const ir::IRFunction &F,
                              uint32_t OriginModule = 0);

} // namespace mco

#endif // MCO_CODEGEN_CODEGEN_H
