//===- codegen/Codegen.cpp - IR to machine-code lowering ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "mir/MIRBuilder.h"

#include <cassert>
#include <unordered_map>

using namespace mco;
using namespace mco::ir;

namespace {

Cond predToCond(Pred P) {
  switch (P) {
  case Pred::EQ:  return Cond::EQ;
  case Pred::NE:  return Cond::NE;
  case Pred::LT:  return Cond::LT;
  case Pred::LE:  return Cond::LE;
  case Pred::GT:  return Cond::GT;
  case Pred::GE:  return Cond::GE;
  case Pred::ULT: return Cond::LO;
  case Pred::UGE: return Cond::HS;
  }
  return Cond::EQ;
}

int64_t alignTo16(int64_t N) { return (N + 15) & ~int64_t(15); }

/// Per-function lowering state.
class FunctionLowering {
public:
  FunctionLowering(Program &Prog, const IRFunction &F) : Prog(Prog), F(F) {
    // Assign alloca offsets and detect calls.
    for (const IRBlock &B : F.Blocks)
      for (const IRInstr &I : B.Instrs) {
        if (I.Op == IROp::Alloca) {
          AllocaOffsets[I.Result] = AllocaBytes;
          AllocaBytes += (I.Imm + 7) & ~int64_t(7);
        } else if (I.Op == IROp::Call) {
          HasCalls = true;
        }
      }
    SlotBase = AllocaBytes;
    SavedLROffset = SlotBase + 8 * int64_t(F.NumValues);
    FrameSize = alignTo16(SavedLROffset + (HasCalls ? 8 : 0));
    if (FrameSize == 0)
      FrameSize = 16;
  }

  MachineFunction run(uint32_t OriginModule) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol(F.Name);
    MF.OriginModule = OriginModule;
    for (size_t I = 0; I < F.Blocks.size(); ++I)
      MF.addBlock();

    for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
      MIRBuilder MB(MF.Blocks[B]);
      if (B == 0)
        emitPrologue(MB);
      for (const IRInstr &I : F.Blocks[B].Instrs)
        emitInstr(MB, I);
    }
    return MF;
  }

private:
  int64_t slot(Value V) const { return SlotBase + 8 * int64_t(V); }

  void emitPrologue(MIRBuilder &B) {
    B.subri(Reg::SP, Reg::SP, FrameSize);
    if (HasCalls)
      B.str(LR, Reg::SP, SavedLROffset);
    for (uint32_t I = 0; I < F.NumParams; ++I)
      B.str(xreg(I), Reg::SP, slot(I));
  }

  void emitEpilogue(MIRBuilder &B) {
    if (HasCalls)
      B.ldr(LR, Reg::SP, SavedLROffset);
    B.addri(Reg::SP, Reg::SP, FrameSize);
    B.ret();
  }

  /// Loads value \p V into register \p R.
  void loadVal(MIRBuilder &B, Reg R, Value V) {
    B.ldr(R, Reg::SP, slot(V));
  }
  /// Stores register \p R into value \p V's slot.
  void storeVal(MIRBuilder &B, Reg R, Value V) {
    B.str(R, Reg::SP, slot(V));
  }

  void emitInstr(MIRBuilder &B, const IRInstr &I) {
    switch (I.Op) {
    case IROp::Const:
      B.movri(Reg::X8, I.Imm);
      storeVal(B, Reg::X8, I.Result);
      break;
    case IROp::Add:
    case IROp::Sub:
    case IROp::Mul:
    case IROp::SDiv:
    case IROp::And:
    case IROp::Or:
    case IROp::Xor:
    case IROp::Shl:
    case IROp::AShr: {
      loadVal(B, Reg::X8, I.Args[0]);
      loadVal(B, Reg::X9, I.Args[1]);
      switch (I.Op) {
      case IROp::Add:  B.addrr(Reg::X8, Reg::X8, Reg::X9); break;
      case IROp::Sub:  B.subrr(Reg::X8, Reg::X8, Reg::X9); break;
      case IROp::Mul:  B.mulrr(Reg::X8, Reg::X8, Reg::X9); break;
      case IROp::SDiv: B.sdivrr(Reg::X8, Reg::X8, Reg::X9); break;
      case IROp::And:  B.andrr(Reg::X8, Reg::X8, Reg::X9); break;
      case IROp::Or:   B.orrrr(Reg::X8, Reg::X8, Reg::X9); break;
      case IROp::Xor:  B.eorrr(Reg::X8, Reg::X8, Reg::X9); break;
      case IROp::Shl:  B.lslrr(Reg::X8, Reg::X8, Reg::X9); break;
      case IROp::AShr: B.asrrr(Reg::X8, Reg::X8, Reg::X9); break;
      default: break;
      }
      storeVal(B, Reg::X8, I.Result);
      break;
    }
    case IROp::SRem:
      // r = a - (a / b) * b via sdiv + msub.
      loadVal(B, Reg::X8, I.Args[0]);
      loadVal(B, Reg::X9, I.Args[1]);
      B.sdivrr(Reg::X10, Reg::X8, Reg::X9);
      B.msub(Reg::X8, Reg::X10, Reg::X9, Reg::X8);
      storeVal(B, Reg::X8, I.Result);
      break;
    case IROp::ICmp:
      loadVal(B, Reg::X8, I.Args[0]);
      loadVal(B, Reg::X9, I.Args[1]);
      B.cmprr(Reg::X8, Reg::X9);
      B.cset(Reg::X8, predToCond(I.P));
      storeVal(B, Reg::X8, I.Result);
      break;
    case IROp::Select:
      loadVal(B, Reg::X8, I.Args[0]);
      loadVal(B, Reg::X9, I.Args[1]);
      loadVal(B, Reg::X10, I.Args[2]);
      B.cmpri(Reg::X8, 0);
      B.csel(Reg::X8, Reg::X9, Reg::X10, Cond::NE);
      storeVal(B, Reg::X8, I.Result);
      break;
    case IROp::Alloca:
      B.addri(Reg::X8, Reg::SP, AllocaOffsets.at(I.Result));
      storeVal(B, Reg::X8, I.Result);
      break;
    case IROp::Load:
      loadVal(B, Reg::X8, I.Args[0]);
      B.ldr(Reg::X8, Reg::X8, 0);
      storeVal(B, Reg::X8, I.Result);
      break;
    case IROp::Store:
      loadVal(B, Reg::X8, I.Args[0]);
      loadVal(B, Reg::X9, I.Args[1]);
      B.str(Reg::X8, Reg::X9, 0);
      break;
    case IROp::GlobalAddr:
      B.adr(Reg::X8, Prog.internSymbol(I.Callee));
      storeVal(B, Reg::X8, I.Result);
      break;
    case IROp::Call: {
      assert(I.Args.size() <= 8 && "too many call arguments");
      for (size_t A = 0; A < I.Args.size(); ++A)
        loadVal(B, xreg(static_cast<unsigned>(A)), I.Args[A]);
      B.bl(Prog.internSymbol(I.Callee));
      storeVal(B, Reg::X0, I.Result);
      break;
    }
    case IROp::Ret:
      loadVal(B, Reg::X0, I.Args[0]);
      emitEpilogue(B);
      break;
    case IROp::Br:
      B.b(I.B0);
      break;
    case IROp::CondBr:
      loadVal(B, Reg::X8, I.Args[0]);
      B.cbnz(Reg::X8, I.B0);
      B.b(I.B1);
      break;
    }
  }

  Program &Prog;
  const IRFunction &F;
  std::unordered_map<Value, int64_t> AllocaOffsets;
  int64_t AllocaBytes = 0;
  int64_t SlotBase = 0;
  int64_t SavedLROffset = 0;
  int64_t FrameSize = 0;
  bool HasCalls = false;
};

} // namespace

MachineFunction mco::lowerFunction(Program &Prog, const IRFunction &F,
                                   uint32_t OriginModule) {
  return FunctionLowering(Prog, F).run(OriginModule);
}

void mco::lowerModule(Program &Prog, Module &M, const IRModule &IRM,
                      uint32_t OriginModule) {
  for (const IRFunction &F : IRM.Functions)
    M.Functions.push_back(lowerFunction(Prog, F, OriginModule));
  for (const IRGlobal &G : IRM.Globals) {
    GlobalData GD;
    GD.Name = Prog.internSymbol(G.Name);
    GD.Bytes = G.Bytes;
    GD.OriginModule = OriginModule;
    M.Globals.push_back(GD);
  }
}
