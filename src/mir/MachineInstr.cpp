//===- mir/MachineInstr.cpp - Machine instruction queries ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/MachineInstr.h"
#include "mir/MachineFunction.h"

using namespace mco;

const char *mco::regName(Reg R) {
  static const char *Names[] = {
      "x0",  "x1",  "x2",  "x3",  "x4",  "x5",  "x6",  "x7",  "x8",
      "x9",  "x10", "x11", "x12", "x13", "x14", "x15", "x16", "x17",
      "x18", "x19", "x20", "x21", "x22", "x23", "x24", "x25", "x26",
      "x27", "x28", "x29", "x30", "sp",  "xzr", "nzcv"};
  if (R == Reg::None)
    return "<none>";
  return Names[regIndex(R)];
}

const char *mco::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::MOVri:   return "mov";
  case Opcode::MOVrr:   return "orr";
  case Opcode::ADDri:   return "add";
  case Opcode::ADDrr:   return "add";
  case Opcode::SUBri:   return "sub";
  case Opcode::SUBrr:   return "sub";
  case Opcode::MULrr:   return "mul";
  case Opcode::SDIVrr:  return "sdiv";
  case Opcode::MSUBrr:  return "msub";
  case Opcode::ANDrr:   return "and";
  case Opcode::ORRrr:   return "orr";
  case Opcode::EORrr:   return "eor";
  case Opcode::LSLri:   return "lsl";
  case Opcode::ASRri:   return "asr";
  case Opcode::LSLrr:   return "lsl";
  case Opcode::ASRrr:   return "asr";
  case Opcode::CMPri:   return "cmp";
  case Opcode::CMPrr:   return "cmp";
  case Opcode::CSET:    return "cset";
  case Opcode::CSEL:    return "csel";
  case Opcode::LDRui:   return "ldr";
  case Opcode::STRui:   return "str";
  case Opcode::LDPui:   return "ldp";
  case Opcode::STPui:   return "stp";
  case Opcode::STRpre:  return "str!";
  case Opcode::LDRpost: return "ldr+";
  case Opcode::ADR:     return "adr";
  case Opcode::B:       return "b";
  case Opcode::Bcc:     return "b.cc";
  case Opcode::CBZ:     return "cbz";
  case Opcode::CBNZ:    return "cbnz";
  case Opcode::Btail:   return "b.tail";
  case Opcode::BL:      return "bl";
  case Opcode::BLR:     return "blr";
  case Opcode::BR:      return "br";
  case Opcode::RET:     return "ret";
  case Opcode::NOP:     return "nop";
  }
  return "<bad-opcode>";
}

const char *mco::condName(Cond C) {
  switch (C) {
  case Cond::EQ: return "eq";
  case Cond::NE: return "ne";
  case Cond::LT: return "lt";
  case Cond::LE: return "le";
  case Cond::GT: return "gt";
  case Cond::GE: return "ge";
  case Cond::LO: return "lo";
  case Cond::HS: return "hs";
  }
  return "<bad-cond>";
}

Cond mco::invertCond(Cond C) {
  switch (C) {
  case Cond::EQ: return Cond::NE;
  case Cond::NE: return Cond::EQ;
  case Cond::LT: return Cond::GE;
  case Cond::LE: return Cond::GT;
  case Cond::GT: return Cond::LE;
  case Cond::GE: return Cond::LT;
  case Cond::LO: return Cond::HS;
  case Cond::HS: return Cond::LO;
  }
  return Cond::EQ;
}

RegMask MachineInstr::defs() const {
  auto R = [this](unsigned I) { return Ops[I].getReg(); };
  switch (Op) {
  case Opcode::MOVri:
  case Opcode::ADR:
  case Opcode::CSET:
    return regBit(R(0));
  case Opcode::MOVrr:
  case Opcode::ADDri:
  case Opcode::SUBri:
  case Opcode::LSLri:
  case Opcode::ASRri:
  case Opcode::ADDrr:
  case Opcode::SUBrr:
  case Opcode::MULrr:
  case Opcode::SDIVrr:
  case Opcode::ANDrr:
  case Opcode::ORRrr:
  case Opcode::EORrr:
  case Opcode::LSLrr:
  case Opcode::ASRrr:
  case Opcode::MSUBrr:
  case Opcode::CSEL:
  case Opcode::LDRui:
    return regBit(R(0));
  case Opcode::LDPui:
    return regBit(R(0)) | regBit(R(1));
  case Opcode::CMPri:
  case Opcode::CMPrr:
    return regBit(Reg::NZCV);
  case Opcode::STRui:
  case Opcode::STPui:
    return 0;
  case Opcode::STRpre:
    return regBit(R(1)); // Base register write-back.
  case Opcode::LDRpost:
    return regBit(R(0)) | regBit(R(1));
  case Opcode::BL:
  case Opcode::BLR:
    return callClobberedMask();
  case Opcode::B:
  case Opcode::Bcc:
  case Opcode::CBZ:
  case Opcode::CBNZ:
  case Opcode::Btail:
  case Opcode::BR:
  case Opcode::RET:
  case Opcode::NOP:
    return 0;
  }
  return 0;
}

RegMask MachineInstr::uses() const {
  auto R = [this](unsigned I) { return Ops[I].getReg(); };
  auto Bit = [](Reg Rg) { return Rg == Reg::XZR ? RegMask(0) : regBit(Rg); };
  switch (Op) {
  case Opcode::MOVri:
  case Opcode::ADR:
    return 0;
  case Opcode::CSET:
    return regBit(Reg::NZCV);
  case Opcode::MOVrr:
  case Opcode::ADDri:
  case Opcode::SUBri:
  case Opcode::LSLri:
  case Opcode::ASRri:
    return Bit(R(1));
  case Opcode::ADDrr:
  case Opcode::SUBrr:
  case Opcode::MULrr:
  case Opcode::SDIVrr:
  case Opcode::ANDrr:
  case Opcode::ORRrr:
  case Opcode::EORrr:
  case Opcode::LSLrr:
  case Opcode::ASRrr:
    return Bit(R(1)) | Bit(R(2));
  case Opcode::MSUBrr:
    return Bit(R(1)) | Bit(R(2)) | Bit(R(3));
  case Opcode::CSEL:
    return Bit(R(1)) | Bit(R(2)) | regBit(Reg::NZCV);
  case Opcode::CMPri:
    return Bit(R(0));
  case Opcode::CMPrr:
    return Bit(R(0)) | Bit(R(1));
  case Opcode::LDRui:
    return Bit(R(1));
  case Opcode::STRui:
    return Bit(R(0)) | Bit(R(1));
  case Opcode::LDPui:
    return Bit(R(2));
  case Opcode::STPui:
    return Bit(R(0)) | Bit(R(1)) | Bit(R(2));
  case Opcode::STRpre:
    return Bit(R(0)) | Bit(R(1));
  case Opcode::LDRpost:
    return Bit(R(1));
  case Opcode::BL:
    return callUsedMask();
  case Opcode::BLR:
    return Bit(R(0)) | callUsedMask();
  case Opcode::Btail:
    // A tail call transfers the caller's return address: the callee
    // returns through LR, so LR is live at (used by) the tail call.
    return callUsedMask() | regBit(LR);
  case Opcode::B:
    return 0;
  case Opcode::Bcc:
    return regBit(Reg::NZCV);
  case Opcode::CBZ:
  case Opcode::CBNZ:
    return Bit(R(0));
  case Opcode::BR:
    return Bit(R(0));
  case Opcode::RET:
    return retUsedMask();
  case Opcode::NOP:
    return 0;
  }
  return 0;
}

bool MachineInstr::usesOrModifiesSP() const {
  for (unsigned I = 0; I < NumOps; ++I)
    if (Ops[I].isReg() && Ops[I].getReg() == Reg::SP)
      return true;
  return false;
}

uint64_t MachineInstr::hash() const {
  // FNV-1a over the structural content.
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001B3ull;
  };
  Mix(static_cast<uint64_t>(Op));
  Mix(NumOps);
  for (unsigned I = 0; I < NumOps; ++I) {
    const MachineOperand &O = Ops[I];
    Mix(static_cast<uint64_t>(O.K));
    switch (O.K) {
    case MachineOperand::Kind::Register:
      Mix(regIndex(O.R));
      break;
    case MachineOperand::Kind::CondK:
      Mix(static_cast<uint64_t>(O.C));
      break;
    default:
      Mix(static_cast<uint64_t>(O.Val));
      break;
    }
  }
  return H;
}

std::vector<uint32_t> MachineFunction::successors(uint32_t BlockIdx) const {
  assert(BlockIdx < Blocks.size() && "block index out of range");
  const MachineBasicBlock &MBB = Blocks[BlockIdx];
  std::vector<uint32_t> Succs;
  bool FallsThrough = true;
  for (const MachineInstr &MI : MBB.Instrs) {
    switch (MI.opcode()) {
    case Opcode::B:
      Succs.push_back(MI.operand(0).getBlock());
      FallsThrough = false;
      break;
    case Opcode::Bcc:
      Succs.push_back(MI.operand(1).getBlock());
      break;
    case Opcode::CBZ:
    case Opcode::CBNZ:
      Succs.push_back(MI.operand(1).getBlock());
      break;
    case Opcode::Btail:
    case Opcode::BR:
    case Opcode::RET:
      FallsThrough = false;
      break;
    default:
      break;
    }
  }
  if (FallsThrough && BlockIdx + 1 < Blocks.size())
    Succs.push_back(BlockIdx + 1);
  return Succs;
}
