//===- mir/MIRParser.h - Textual MIR parsing --------------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the assembly-like text emitted by MIRPrinter back into machine
/// modules, closing the round trip: modules can be dumped, stored as test
/// fixtures, edited by hand, and reloaded. The grammar is exactly the
/// printer's output format:
///
///   ; module <name>
///   <function>:
///     <mnemonic> <operands...>
///   .LBB<k>:
///     ...
///   <global>: .space <bytes>
///
/// Operands: registers (x0..x30, sp, xzr), immediates (#N), block labels
/// (.LBBk), condition codes (eq, ne, ...), and symbol names.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_MIRPARSER_H
#define MCO_MIR_MIRPARSER_H

#include "mir/Program.h"

#include <string>
#include <vector>

namespace mco {

/// One parse diagnostic with its source position (1-based line and
/// column, pointing at the offending token where known).
struct ParseDiag {
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Message;

  std::string render() const {
    return "line " + std::to_string(Line) + ", col " +
           std::to_string(Column) + ": " + Message;
  }
};

/// Result of a parse: the module (appended to \p Prog) or diagnostics.
/// The parser recovers at the next function header after an error, so a
/// single parse can report every broken function, not just the first.
struct ParseResult {
  Module *M = nullptr;
  /// Empty on success; otherwise the first diagnostic, rendered.
  std::string Error;
  /// Every diagnostic, in source order (empty on success).
  std::vector<ParseDiag> Diags;

  explicit operator bool() const { return Error.empty(); }
};

/// Parses \p Text as one module and appends it to \p Prog.
ParseResult parseModule(Program &Prog, const std::string &Text);

} // namespace mco

#endif // MCO_MIR_MIRPARSER_H
