//===- mir/MIRParser.h - Textual MIR parsing --------------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the assembly-like text emitted by MIRPrinter back into machine
/// modules, closing the round trip: modules can be dumped, stored as test
/// fixtures, edited by hand, and reloaded. The grammar is exactly the
/// printer's output format:
///
///   ; module <name>
///   <function>:
///     <mnemonic> <operands...>
///   .LBB<k>:
///     ...
///   <global>: .space <bytes>
///
/// Operands: registers (x0..x30, sp, xzr), immediates (#N), block labels
/// (.LBBk), condition codes (eq, ne, ...), and symbol names.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_MIRPARSER_H
#define MCO_MIR_MIRPARSER_H

#include "mir/Program.h"

#include <string>

namespace mco {

/// Result of a parse: the module (appended to \p Prog) or a diagnostic.
struct ParseResult {
  Module *M = nullptr;
  /// Empty on success; otherwise "line N: message".
  std::string Error;

  explicit operator bool() const { return Error.empty(); }
};

/// Parses \p Text as one module and appends it to \p Prog.
ParseResult parseModule(Program &Prog, const std::string &Text);

} // namespace mco

#endif // MCO_MIR_MIRPARSER_H
