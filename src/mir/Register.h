//===- mir/Register.h - AArch64-flavoured register model --------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The physical register file of our AArch64-flavoured machine IR. The
/// outliner's legality and cost decisions (LR clobbering by BL, free-register
/// search for RegSave, SP-relative fixups) are all phrased in terms of this
/// model, mirroring the AAPCS64 conventions the paper relies on.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_REGISTER_H
#define MCO_MIR_REGISTER_H

#include <cassert>
#include <cstdint>

namespace mco {

/// A physical register. X0..X30 are the general-purpose registers; SP is the
/// stack pointer, XZR the zero register, and NZCV the condition flags.
enum class Reg : uint8_t {
  X0 = 0,  X1,  X2,  X3,  X4,  X5,  X6,  X7,
  X8,      X9,  X10, X11, X12, X13, X14, X15,
  X16,     X17, X18, X19, X20, X21, X22, X23,
  X24,     X25, X26, X27, X28, X29, X30,
  SP,
  XZR,
  NZCV,
  NumRegs,
  None = 255
};

/// The link register (holds the return address after BL).
inline constexpr Reg LR = Reg::X30;
/// The frame pointer.
inline constexpr Reg FP = Reg::X29;

inline unsigned regIndex(Reg R) {
  assert(R != Reg::None && "no index for Reg::None");
  return static_cast<unsigned>(R);
}

inline Reg regFromIndex(unsigned Idx) {
  assert(Idx < static_cast<unsigned>(Reg::NumRegs) && "register index OOB");
  return static_cast<Reg>(Idx);
}

/// \returns the general-purpose register Xn. \pre N <= 30.
inline Reg xreg(unsigned N) {
  assert(N <= 30 && "no such GPR");
  return static_cast<Reg>(N);
}

/// \returns true for X19..X28: preserved across calls per AAPCS64.
inline bool isCalleeSaved(Reg R) {
  unsigned I = regIndex(R);
  return I >= 19 && I <= 28;
}

/// \returns true for registers a call may clobber (X0..X17, LR, NZCV).
inline bool isCallerSaved(Reg R) {
  unsigned I = regIndex(R);
  return I <= 17 || R == LR || R == Reg::NZCV;
}

/// \returns true for the integer argument/result registers X0..X7.
inline bool isArgReg(Reg R) { return regIndex(R) <= 7; }

/// A set of physical registers as a bitmask (NumRegs < 64).
using RegMask = uint64_t;

inline RegMask regBit(Reg R) { return RegMask(1) << regIndex(R); }

inline bool maskContains(RegMask M, Reg R) { return (M & regBit(R)) != 0; }

/// Registers a call clobbers: X0..X17, X30 (LR), NZCV.
inline RegMask callClobberedMask() {
  RegMask M = 0;
  for (unsigned I = 0; I <= 17; ++I)
    M |= regBit(xreg(I));
  M |= regBit(LR);
  M |= regBit(Reg::NZCV);
  return M;
}

/// Registers conservatively read by a call: arguments X0..X7 plus SP.
inline RegMask callUsedMask() {
  RegMask M = 0;
  for (unsigned I = 0; I <= 7; ++I)
    M |= regBit(xreg(I));
  M |= regBit(Reg::SP);
  return M;
}

/// Registers conservatively live at a return: result X0, LR, SP, and the
/// callee-saved registers the function must have preserved.
inline RegMask retUsedMask() {
  RegMask M = regBit(Reg::X0) | regBit(LR) | regBit(Reg::SP);
  for (unsigned I = 19; I <= 28; ++I)
    M |= regBit(xreg(I));
  M |= regBit(FP);
  return M;
}

/// \returns a printable name ("x0".."x30", "sp", "xzr", "nzcv").
const char *regName(Reg R);

} // namespace mco

#endif // MCO_MIR_REGISTER_H
