//===- mir/MachineInstr.h - Machine instructions ----------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine instructions of the AArch64-flavoured target. Every instruction
/// encodes to exactly 4 bytes (fixed-width ISA), which is why, as the paper
/// notes, single-instruction "outlining" can never be profitable: the
/// replacement call is the same size as the original instruction.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_MACHINEINSTR_H
#define MCO_MIR_MACHINEINSTR_H

#include "mir/Register.h"

#include <array>
#include <cassert>
#include <cstdint>

namespace mco {

/// Size in bytes of every machine instruction (fixed-width ISA).
inline constexpr unsigned InstrBytes = 4;

/// Machine opcodes.
enum class Opcode : uint8_t {
  // Moves / arithmetic / logic.
  MOVri,  ///< MOVri  dst, imm            : dst = imm
  MOVrr,  ///< MOVrr  dst, src            : dst = src (ORR dst, xzr, src)
  ADDri,  ///< ADDri  dst, src, imm       : dst = src + imm
  ADDrr,  ///< ADDrr  dst, a, b           : dst = a + b
  SUBri,  ///< SUBri  dst, src, imm       : dst = src - imm
  SUBrr,  ///< SUBrr  dst, a, b           : dst = a - b
  MULrr,  ///< MULrr  dst, a, b           : dst = a * b
  SDIVrr, ///< SDIVrr dst, a, b           : dst = a / b (signed, trap-free)
  MSUBrr, ///< MSUBrr dst, a, b, c        : dst = c - a * b
  ANDrr,  ///< ANDrr  dst, a, b           : dst = a & b
  ORRrr,  ///< ORRrr  dst, a, b           : dst = a | b
  EORrr,  ///< EORrr  dst, a, b           : dst = a ^ b
  LSLri,  ///< LSLri  dst, src, imm       : dst = src << imm
  ASRri,  ///< ASRri  dst, src, imm       : dst = src >> imm (arithmetic)
  LSLrr,  ///< LSLrr  dst, a, b           : dst = a << (b & 63)
  ASRrr,  ///< ASRrr  dst, a, b           : dst = a >> (b & 63)

  // Compares / conditional materialization (NZCV flags).
  CMPri,  ///< CMPri  a, imm              : set NZCV from a - imm
  CMPrr,  ///< CMPrr  a, b                : set NZCV from a - b
  CSET,   ///< CSET   dst, cond           : dst = cond ? 1 : 0
  CSEL,   ///< CSEL   dst, a, b, cond     : dst = cond ? a : b

  // Memory. Offsets are in bytes; accesses are 8 bytes wide.
  LDRui,  ///< LDRui  dst, base, imm      : dst = mem[base + imm]
  STRui,  ///< STRui  src, base, imm      : mem[base + imm] = src
  LDPui,  ///< LDPui  d1, d2, base, imm   : d1 = mem[b+i]; d2 = mem[b+i+8]
  STPui,  ///< STPui  s1, s2, base, imm   : mem[b+i] = s1; mem[b+i+8] = s2
  STRpre, ///< STRpre src, base, imm      : base += imm; mem[base] = src
  LDRpost,///< LDRpost dst, base, imm     : dst = mem[base]; base += imm

  // Address materialization.
  ADR,    ///< ADR    dst, sym            : dst = address of global symbol

  // Control flow.
  B,      ///< B      block               : unconditional branch
  Bcc,    ///< Bcc    cond, block         : conditional branch
  CBZ,    ///< CBZ    reg, block          : branch if reg == 0
  CBNZ,   ///< CBNZ   reg, block          : branch if reg != 0
  Btail,  ///< Btail  sym                 : tail-call branch to a function
  BL,     ///< BL     sym                 : call; LR = return address
  BLR,    ///< BLR    reg                 : indirect call; LR = return addr
  BR,     ///< BR     reg                 : indirect branch
  RET,    ///< RET                        : return through LR

  NOP,    ///< NOP
};

/// Condition codes for Bcc/CSET/CSEL.
enum class Cond : uint8_t { EQ, NE, LT, LE, GT, GE, LO, HS };

/// \returns the textual mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// \returns the textual name for \p C.
const char *condName(Cond C);

/// \returns the inverse condition.
Cond invertCond(Cond C);

/// One operand of a machine instruction.
struct MachineOperand {
  enum class Kind : uint8_t { None, Register, Immediate, Symbol, Block, CondK };

  Kind K = Kind::None;
  Reg R = Reg::None;
  Cond C = Cond::EQ;
  /// Immediate value, symbol id, or block index depending on K.
  int64_t Val = 0;

  static MachineOperand reg(Reg R) {
    MachineOperand O;
    O.K = Kind::Register;
    O.R = R;
    return O;
  }
  static MachineOperand imm(int64_t V) {
    MachineOperand O;
    O.K = Kind::Immediate;
    O.Val = V;
    return O;
  }
  static MachineOperand sym(uint32_t SymbolId) {
    MachineOperand O;
    O.K = Kind::Symbol;
    O.Val = SymbolId;
    return O;
  }
  static MachineOperand block(uint32_t BlockIdx) {
    MachineOperand O;
    O.K = Kind::Block;
    O.Val = BlockIdx;
    return O;
  }
  static MachineOperand cond(Cond C) {
    MachineOperand O;
    O.K = Kind::CondK;
    O.C = C;
    return O;
  }

  bool isReg() const { return K == Kind::Register; }
  bool isImm() const { return K == Kind::Immediate; }
  bool isSym() const { return K == Kind::Symbol; }
  bool isBlock() const { return K == Kind::Block; }
  bool isCond() const { return K == Kind::CondK; }

  Reg getReg() const {
    assert(isReg() && "not a register operand");
    return R;
  }
  int64_t getImm() const {
    assert(isImm() && "not an immediate operand");
    return Val;
  }
  uint32_t getSym() const {
    assert(isSym() && "not a symbol operand");
    return static_cast<uint32_t>(Val);
  }
  uint32_t getBlock() const {
    assert(isBlock() && "not a block operand");
    return static_cast<uint32_t>(Val);
  }
  Cond getCond() const {
    assert(isCond() && "not a condition operand");
    return C;
  }

  friend bool operator==(const MachineOperand &A, const MachineOperand &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::None:
      return true;
    case Kind::Register:
      return A.R == B.R;
    case Kind::CondK:
      return A.C == B.C;
    case Kind::Immediate:
    case Kind::Symbol:
    case Kind::Block:
      return A.Val == B.Val;
    }
    return false;
  }
};

/// A machine instruction: an opcode plus up to four operands.
class MachineInstr {
public:
  static constexpr unsigned MaxOperands = 4;

  MachineInstr() = default;
  explicit MachineInstr(Opcode Op) : Op(Op) {}
  MachineInstr(Opcode Op, MachineOperand A) : Op(Op), NumOps(1) {
    Ops[0] = A;
  }
  MachineInstr(Opcode Op, MachineOperand A, MachineOperand B)
      : Op(Op), NumOps(2) {
    Ops[0] = A;
    Ops[1] = B;
  }
  MachineInstr(Opcode Op, MachineOperand A, MachineOperand B, MachineOperand C)
      : Op(Op), NumOps(3) {
    Ops[0] = A;
    Ops[1] = B;
    Ops[2] = C;
  }
  MachineInstr(Opcode Op, MachineOperand A, MachineOperand B, MachineOperand C,
               MachineOperand D)
      : Op(Op), NumOps(4) {
    Ops[0] = A;
    Ops[1] = B;
    Ops[2] = C;
    Ops[3] = D;
  }

  Opcode opcode() const { return Op; }
  unsigned numOperands() const { return NumOps; }

  const MachineOperand &operand(unsigned I) const {
    assert(I < NumOps && "operand index out of range");
    return Ops[I];
  }
  MachineOperand &operand(unsigned I) {
    assert(I < NumOps && "operand index out of range");
    return Ops[I];
  }

  /// \returns true if this is any kind of branch/terminator-like control
  /// transfer (B, Bcc, CBZ, CBNZ, Btail, BR, RET).
  bool isBranch() const {
    switch (Op) {
    case Opcode::B:
    case Opcode::Bcc:
    case Opcode::CBZ:
    case Opcode::CBNZ:
    case Opcode::Btail:
    case Opcode::BR:
    case Opcode::RET:
      return true;
    default:
      return false;
    }
  }

  /// \returns true if control never falls through this instruction.
  bool isUnconditionalTransfer() const {
    return Op == Opcode::B || Op == Opcode::Btail || Op == Opcode::BR ||
           Op == Opcode::RET;
  }

  bool isCall() const { return Op == Opcode::BL || Op == Opcode::BLR; }
  bool isReturn() const { return Op == Opcode::RET; }

  /// \returns the registers this instruction defines (writes).
  RegMask defs() const;
  /// \returns the registers this instruction uses (reads).
  RegMask uses() const;

  /// \returns true if the instruction reads or writes memory relative to SP,
  /// or adjusts SP. Such instructions cannot be outlined under a class that
  /// saves LR to the stack (the save shifts every SP offset by 16).
  bool usesOrModifiesSP() const;

  /// Exact structural equality (opcode and all operands).
  friend bool operator==(const MachineInstr &A, const MachineInstr &B) {
    if (A.Op != B.Op || A.NumOps != B.NumOps)
      return false;
    for (unsigned I = 0; I < A.NumOps; ++I)
      if (!(A.Ops[I] == B.Ops[I]))
        return false;
    return true;
  }

  /// A stable structural hash (used by the instruction mapper).
  uint64_t hash() const;

private:
  Opcode Op = Opcode::NOP;
  uint8_t NumOps = 0;
  std::array<MachineOperand, MaxOperands> Ops;
};

} // namespace mco

#endif // MCO_MIR_MACHINEINSTR_H
