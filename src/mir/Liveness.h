//===- mir/Liveness.h - Physical register liveness --------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward dataflow liveness over physical registers, per function. The
/// machine outliner depends on liveness in three places (paper Section V-B
/// notes the candidate liveness update as the key engineering change for
/// repeated outlining):
///   - deciding whether LR's value is live across a candidate (call class),
///   - finding a free register to save LR into (RegSave class),
///   - re-validating candidates after call instructions are inserted.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_LIVENESS_H
#define MCO_MIR_LIVENESS_H

#include "mir/MachineFunction.h"

#include <vector>

namespace mco {

/// Liveness information for one machine function.
///
/// The analysis is conservative: calls clobber the caller-saved set and use
/// the argument registers; returns use the result, LR, SP, and callee-saved
/// registers.
class Liveness {
public:
  /// Empty liveness; call recompute() before querying. Lets callers hold
  /// pre-sized vectors of Liveness that parallel workers fill in place.
  Liveness() = default;

  explicit Liveness(const MachineFunction &MF) { recompute(MF); }

  /// Recomputes everything; called once per outlining round (liveness must
  /// be up to date after calls are introduced — paper Section V-B).
  void recompute(const MachineFunction &MF);

  /// \returns the registers live immediately *before* instruction
  /// \p InstrIdx of block \p BlockIdx.
  RegMask liveBefore(uint32_t BlockIdx, uint32_t InstrIdx) const {
    return LiveBefore[BlockIdx][InstrIdx];
  }

  /// \returns the registers live immediately *after* instruction
  /// \p InstrIdx of block \p BlockIdx.
  RegMask liveAfter(uint32_t BlockIdx, uint32_t InstrIdx) const {
    return LiveAfter[BlockIdx][InstrIdx];
  }

  /// \returns the live-out set of block \p BlockIdx.
  RegMask blockLiveOut(uint32_t BlockIdx) const {
    return BlockLiveOut[BlockIdx];
  }

private:
  std::vector<RegMask> BlockLiveOut;
  std::vector<std::vector<RegMask>> LiveBefore;
  std::vector<std::vector<RegMask>> LiveAfter;
};

} // namespace mco

#endif // MCO_MIR_LIVENESS_H
