//===- mir/MIRPrinter.h - Textual MIR dumps ---------------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders machine instructions, functions, and modules as AArch64-style
/// assembly text, used by the examples, tests, and the statistics pass's
/// pattern listings (paper Listings 1-8).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_MIRPRINTER_H
#define MCO_MIR_MIRPRINTER_H

#include "mir/Program.h"

#include <string>

namespace mco {

/// \returns one-line assembly text for \p MI. \p Prog resolves symbol ids.
std::string printInstr(const MachineInstr &MI, const Program &Prog);

/// \returns a full textual listing of \p MF.
std::string printFunction(const MachineFunction &MF, const Program &Prog);

/// \returns a full textual listing of \p M (functions then globals).
std::string printModule(const Module &M, const Program &Prog);

} // namespace mco

#endif // MCO_MIR_MIRPRINTER_H
