//===- mir/MIRBuilder.h - Convenience instruction emission ------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin builder over a MachineBasicBlock used by the code generator, the
/// corpus synthesizer, and the tests. Each method emits one instruction.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_MIRBUILDER_H
#define MCO_MIR_MIRBUILDER_H

#include "mir/MachineFunction.h"

namespace mco {

/// Emits instructions at the end of a block. Reposition with setBlock().
class MIRBuilder {
public:
  explicit MIRBuilder(MachineBasicBlock &MBB) : MBB(&MBB) {}

  void setBlock(MachineBasicBlock &B) { MBB = &B; }
  MachineBasicBlock &block() { return *MBB; }

  using MO = MachineOperand;

  void movri(Reg D, int64_t Imm) {
    MBB->push(MachineInstr(Opcode::MOVri, MO::reg(D), MO::imm(Imm)));
  }
  void movrr(Reg D, Reg S) {
    MBB->push(MachineInstr(Opcode::MOVrr, MO::reg(D), MO::reg(S)));
  }
  void addri(Reg D, Reg S, int64_t Imm) {
    MBB->push(
        MachineInstr(Opcode::ADDri, MO::reg(D), MO::reg(S), MO::imm(Imm)));
  }
  void addrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::ADDrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void subri(Reg D, Reg S, int64_t Imm) {
    MBB->push(
        MachineInstr(Opcode::SUBri, MO::reg(D), MO::reg(S), MO::imm(Imm)));
  }
  void subrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::SUBrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void mulrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::MULrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void sdivrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::SDIVrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void msub(Reg D, Reg A, Reg B, Reg C) {
    MBB->push(MachineInstr(Opcode::MSUBrr, MO::reg(D), MO::reg(A), MO::reg(B),
                           MO::reg(C)));
  }
  void andrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::ANDrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void orrrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::ORRrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void eorrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::EORrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void lslri(Reg D, Reg S, int64_t Imm) {
    MBB->push(
        MachineInstr(Opcode::LSLri, MO::reg(D), MO::reg(S), MO::imm(Imm)));
  }
  void asrri(Reg D, Reg S, int64_t Imm) {
    MBB->push(
        MachineInstr(Opcode::ASRri, MO::reg(D), MO::reg(S), MO::imm(Imm)));
  }
  void lslrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::LSLrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void asrrr(Reg D, Reg A, Reg B) {
    MBB->push(
        MachineInstr(Opcode::ASRrr, MO::reg(D), MO::reg(A), MO::reg(B)));
  }
  void cmpri(Reg A, int64_t Imm) {
    MBB->push(MachineInstr(Opcode::CMPri, MO::reg(A), MO::imm(Imm)));
  }
  void cmprr(Reg A, Reg B) {
    MBB->push(MachineInstr(Opcode::CMPrr, MO::reg(A), MO::reg(B)));
  }
  void cset(Reg D, Cond C) {
    MBB->push(MachineInstr(Opcode::CSET, MO::reg(D), MO::cond(C)));
  }
  void csel(Reg D, Reg A, Reg B, Cond C) {
    MBB->push(MachineInstr(Opcode::CSEL, MO::reg(D), MO::reg(A), MO::reg(B),
                           MO::cond(C)));
  }
  void ldr(Reg D, Reg Base, int64_t Off) {
    MBB->push(
        MachineInstr(Opcode::LDRui, MO::reg(D), MO::reg(Base), MO::imm(Off)));
  }
  void str(Reg S, Reg Base, int64_t Off) {
    MBB->push(
        MachineInstr(Opcode::STRui, MO::reg(S), MO::reg(Base), MO::imm(Off)));
  }
  void ldp(Reg D1, Reg D2, Reg Base, int64_t Off) {
    MBB->push(MachineInstr(Opcode::LDPui, MO::reg(D1), MO::reg(D2),
                           MO::reg(Base), MO::imm(Off)));
  }
  void stp(Reg S1, Reg S2, Reg Base, int64_t Off) {
    MBB->push(MachineInstr(Opcode::STPui, MO::reg(S1), MO::reg(S2),
                           MO::reg(Base), MO::imm(Off)));
  }
  void strpre(Reg S, Reg Base, int64_t Off) {
    MBB->push(MachineInstr(Opcode::STRpre, MO::reg(S), MO::reg(Base),
                           MO::imm(Off)));
  }
  void ldrpost(Reg D, Reg Base, int64_t Off) {
    MBB->push(MachineInstr(Opcode::LDRpost, MO::reg(D), MO::reg(Base),
                           MO::imm(Off)));
  }
  void adr(Reg D, uint32_t Sym) {
    MBB->push(MachineInstr(Opcode::ADR, MO::reg(D), MO::sym(Sym)));
  }
  void b(uint32_t Block) {
    MBB->push(MachineInstr(Opcode::B, MO::block(Block)));
  }
  void bcc(Cond C, uint32_t Block) {
    MBB->push(MachineInstr(Opcode::Bcc, MO::cond(C), MO::block(Block)));
  }
  void cbz(Reg R, uint32_t Block) {
    MBB->push(MachineInstr(Opcode::CBZ, MO::reg(R), MO::block(Block)));
  }
  void cbnz(Reg R, uint32_t Block) {
    MBB->push(MachineInstr(Opcode::CBNZ, MO::reg(R), MO::block(Block)));
  }
  void bl(uint32_t Sym) {
    MBB->push(MachineInstr(Opcode::BL, MO::sym(Sym)));
  }
  void blr(Reg R) { MBB->push(MachineInstr(Opcode::BLR, MO::reg(R))); }
  void btail(uint32_t Sym) {
    MBB->push(MachineInstr(Opcode::Btail, MO::sym(Sym)));
  }
  void br(Reg R) { MBB->push(MachineInstr(Opcode::BR, MO::reg(R))); }
  void ret() { MBB->push(MachineInstr(Opcode::RET)); }
  void nop() { MBB->push(MachineInstr(Opcode::NOP)); }

private:
  MachineBasicBlock *MBB;
};

} // namespace mco

#endif // MCO_MIR_MIRBUILDER_H
