//===- mir/MIRPrinter.cpp - Textual MIR dumps ----------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/MIRPrinter.h"

using namespace mco;

std::string mco::printInstr(const MachineInstr &MI, const Program &Prog) {
  std::string S = opcodeName(MI.opcode());
  // Pad mnemonics for readability.
  while (S.size() < 6)
    S += ' ';
  for (unsigned I = 0; I < MI.numOperands(); ++I) {
    S += I == 0 ? " " : ", ";
    const MachineOperand &O = MI.operand(I);
    switch (O.K) {
    case MachineOperand::Kind::Register:
      S += regName(O.getReg());
      break;
    case MachineOperand::Kind::Immediate:
      S += "#" + std::to_string(O.getImm());
      break;
    case MachineOperand::Kind::Symbol:
      S += Prog.symbolName(O.getSym());
      break;
    case MachineOperand::Kind::Block:
      S += ".LBB" + std::to_string(O.getBlock());
      break;
    case MachineOperand::Kind::CondK:
      S += condName(O.getCond());
      break;
    case MachineOperand::Kind::None:
      S += "<none>";
      break;
    }
  }
  return S;
}

std::string mco::printFunction(const MachineFunction &MF, const Program &Prog) {
  std::string S = Prog.symbolName(MF.Name) + ":\n";
  for (size_t B = 0; B < MF.Blocks.size(); ++B) {
    if (B != 0)
      S += ".LBB" + std::to_string(B) + ":\n";
    for (const MachineInstr &MI : MF.Blocks[B].Instrs) {
      S += "  ";
      S += printInstr(MI, Prog);
      S += '\n';
    }
  }
  return S;
}

std::string mco::printModule(const Module &M, const Program &Prog) {
  std::string S = "; module " + M.Name + "\n";
  for (const MachineFunction &MF : M.Functions) {
    S += printFunction(MF, Prog);
    S += '\n';
  }
  for (const GlobalData &G : M.Globals) {
    S += Prog.symbolName(G.Name) + ": .space " +
         std::to_string(G.Bytes.size()) + "\n";
  }
  return S;
}
