//===- mir/MIRVerifier.cpp - Machine-code structural verifier -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/MIRVerifier.h"

#include <unordered_set>

using namespace mco;

namespace {

using OK = MachineOperand::Kind;

/// Expected operand signature per opcode; N = None terminates.
struct Signature {
  OK Ops[4];
  unsigned Count;
};

bool signatureFor(Opcode Op, Signature &Sig) {
  auto Make = [&Sig](std::initializer_list<OK> Kinds) {
    Sig.Count = 0;
    for (OK K : Kinds)
      Sig.Ops[Sig.Count++] = K;
    return true;
  };
  switch (Op) {
  case Opcode::MOVri:
    return Make({OK::Register, OK::Immediate});
  case Opcode::MOVrr:
    return Make({OK::Register, OK::Register});
  case Opcode::ADDri:
  case Opcode::SUBri:
  case Opcode::LSLri:
  case Opcode::ASRri:
    return Make({OK::Register, OK::Register, OK::Immediate});
  case Opcode::ADDrr:
  case Opcode::SUBrr:
  case Opcode::MULrr:
  case Opcode::SDIVrr:
  case Opcode::ANDrr:
  case Opcode::ORRrr:
  case Opcode::EORrr:
  case Opcode::LSLrr:
  case Opcode::ASRrr:
    return Make({OK::Register, OK::Register, OK::Register});
  case Opcode::MSUBrr:
    return Make({OK::Register, OK::Register, OK::Register, OK::Register});
  case Opcode::CMPri:
    return Make({OK::Register, OK::Immediate});
  case Opcode::CMPrr:
    return Make({OK::Register, OK::Register});
  case Opcode::CSET:
    return Make({OK::Register, OK::CondK});
  case Opcode::CSEL:
    return Make({OK::Register, OK::Register, OK::Register, OK::CondK});
  case Opcode::LDRui:
  case Opcode::STRui:
  case Opcode::STRpre:
  case Opcode::LDRpost:
    return Make({OK::Register, OK::Register, OK::Immediate});
  case Opcode::LDPui:
  case Opcode::STPui:
    return Make({OK::Register, OK::Register, OK::Register, OK::Immediate});
  case Opcode::ADR:
    return Make({OK::Register, OK::Symbol});
  case Opcode::B:
    return Make({OK::Block});
  case Opcode::Bcc:
    return Make({OK::CondK, OK::Block});
  case Opcode::CBZ:
  case Opcode::CBNZ:
    return Make({OK::Register, OK::Block});
  case Opcode::Btail:
  case Opcode::BL:
    return Make({OK::Symbol});
  case Opcode::BLR:
  case Opcode::BR:
    return Make({OK::Register});
  case Opcode::RET:
  case Opcode::NOP:
    return Make({});
  }
  return false;
}

/// Runtime symbols the simulator provides.
bool isRuntimeBuiltin(const std::string &Name) {
  static const std::unordered_set<std::string> Builtins = {
      "swift_retain",      "swift_release", "objc_retain",
      "objc_release",      "swift_allocObject",
      "swift_deallocObject", "malloc",      "free"};
  return Builtins.count(Name) != 0;
}

/// Renders \p Id for diagnostics without assuming it is interned: ids from
/// a live DeferredSymbolBatch are outside the program's pool.
std::string displayName(const Program &Prog, uint32_t Id) {
  if (Id < Prog.numSymbols())
    return Prog.symbolName(Id);
  return "<sym#" + std::to_string(Id) + ">";
}

} // namespace

std::string mco::verifyFunction(const Program &Prog,
                                const MachineFunction &MF,
                                const VerifyOptions &Opts) {
  const std::string FnName = displayName(Prog, MF.Name);
  if (MF.Blocks.empty())
    return "function '" + FnName + "' has no blocks";

  for (uint32_t B = 0; B < MF.Blocks.size(); ++B) {
    const MachineBasicBlock &MBB = MF.Blocks[B];
    std::string Where = "function '" + FnName + "' block " +
                        std::to_string(B);
    bool SeenUnconditional = false;
    for (uint32_t I = 0; I < MBB.size(); ++I) {
      const MachineInstr &MI = MBB.Instrs[I];
      std::string At = Where + " instr " + std::to_string(I);

      if (SeenUnconditional)
        return At + " is unreachable (follows an unconditional transfer)";

      Signature Sig;
      if (!signatureFor(MI.opcode(), Sig))
        return At + " has an unknown opcode";
      if (MI.numOperands() != Sig.Count)
        return At + " has " + std::to_string(MI.numOperands()) +
               " operands, expected " + std::to_string(Sig.Count);
      for (unsigned O = 0; O < Sig.Count; ++O) {
        if (MI.operand(O).K != Sig.Ops[O])
          return At + " operand " + std::to_string(O) +
                 " has the wrong kind";
        if (MI.operand(O).isReg() && MI.operand(O).getReg() == Reg::None)
          return At + " operand " + std::to_string(O) + " is Reg::None";
        if (MI.operand(O).isBlock() &&
            MI.operand(O).getBlock() >= MF.Blocks.size())
          return At + " branches to nonexistent block " +
                 std::to_string(MI.operand(O).getBlock());
        if (MI.operand(O).isSym() &&
            MI.operand(O).getSym() >= Prog.numSymbols() &&
            !(Opts.AllowPlaceholderSymbols &&
              MI.operand(O).getSym() >= DeferredSymbolBatch::TempBase))
          return At + " references an uninterned symbol id";
      }
      if (MI.isUnconditionalTransfer())
        SeenUnconditional = true;
    }
  }

  // Outlined-frame shape consistency.
  if (MF.IsOutlined) {
    const MachineBasicBlock &Body = MF.Blocks.front();
    if (Body.empty())
      return "outlined function '" + FnName + "' is empty";
    const MachineInstr &Last = Body.Instrs.back();
    switch (MF.FrameKind) {
    case OutlinedFrameKind::NotOutlined:
      return "outlined function '" + FnName + "' lacks a frame kind";
    case OutlinedFrameKind::TailCall:
    case OutlinedFrameKind::AppendedRet:
      // A later outlining round may have turned the trailing [seq, RET]
      // into a tail call to another outlined function that returns on
      // this function's behalf.
      if (!Last.isReturn() && Last.opcode() != Opcode::Btail)
        return "outlined function '" + FnName + "' must end with RET";
      break;
    case OutlinedFrameKind::Thunk:
      if (Last.opcode() != Opcode::Btail)
        return "thunk '" + FnName + "' must end with a tail call";
      break;
    case OutlinedFrameKind::SavesLRInFrame:
      if (!Last.isReturn() || Body.size() < 3 ||
          Body.Instrs.front().opcode() != Opcode::STRpre ||
          Body.Instrs[Body.size() - 2].opcode() != Opcode::LDRpost)
        return "LR-saving frame of '" + FnName + "' is malformed";
      break;
    }
  }
  return "";
}

std::string mco::verifyModule(const Program &Prog, const Module &M,
                              const VerifyOptions &Opts) {
  for (const MachineFunction &MF : M.Functions) {
    std::string Err = verifyFunction(Prog, MF, Opts);
    if (!Err.empty())
      return Err;
  }

  if (Opts.CheckSymbolResolution) {
    std::unordered_set<uint32_t> Defined;
    for (const MachineFunction &MF : M.Functions)
      Defined.insert(MF.Name);
    for (const GlobalData &G : M.Globals)
      Defined.insert(G.Name);
    for (const MachineFunction &MF : M.Functions)
      for (const MachineBasicBlock &MBB : MF.Blocks)
        for (const MachineInstr &MI : MBB.Instrs)
          for (unsigned O = 0; O < MI.numOperands(); ++O) {
            if (!MI.operand(O).isSym())
              continue;
            uint32_t Sym = MI.operand(O).getSym();
            if (!Defined.count(Sym) &&
                !isRuntimeBuiltin(displayName(Prog, Sym)))
              return "function '" + displayName(Prog, MF.Name) +
                     "' references undefined symbol '" +
                     displayName(Prog, Sym) + "'";
          }
  }
  return "";
}
