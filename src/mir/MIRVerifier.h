//===- mir/MIRVerifier.h - Machine-code structural verifier -----*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of machine modules, run after synthesis,
/// lowering, and every outlining round in the test suite. Checks:
///
///  - every operand kind matches its opcode's expected signature;
///  - block operands reference existing blocks of the same function;
///  - no instruction follows an unconditional control transfer in a block
///    (unreachable tails indicate a broken rewrite);
///  - every referenced symbol is either defined in the module or one of
///    the known runtime builtins (a whole-program check used after
///    linking);
///  - outlined functions carry a frame shape consistent with their
///    recorded OutlinedFrameKind.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_MIRVERIFIER_H
#define MCO_MIR_MIRVERIFIER_H

#include "mir/Program.h"

#include <string>

namespace mco {

/// Options for verification strictness.
struct VerifyOptions {
  /// Require every BL/Btail/ADR symbol to resolve to a module definition
  /// or a runtime builtin (enable after linking; per-module code may
  /// legitimately reference other modules).
  bool CheckSymbolResolution = false;
  /// Accept placeholder symbol ids (>= DeferredSymbolBatch::TempBase)
  /// instead of flagging them as uninterned. Needed when verifying a
  /// module mid-fan-out, before its symbol batch commits.
  bool AllowPlaceholderSymbols = false;
};

/// Verifies \p MF in isolation. \returns "" when valid, else a diagnostic
/// naming the function, block, and instruction.
std::string verifyFunction(const Program &Prog, const MachineFunction &MF,
                           const VerifyOptions &Opts);
inline std::string verifyFunction(const Program &Prog,
                                  const MachineFunction &MF) {
  return verifyFunction(Prog, MF, VerifyOptions{});
}

/// Verifies every function of \p M (plus symbol resolution if requested).
/// \returns "" when valid, else the first diagnostic.
std::string verifyModule(const Program &Prog, const Module &M,
                         const VerifyOptions &Opts = {});

} // namespace mco

#endif // MCO_MIR_MIRVERIFIER_H
